package trace

import "errors"

// ErrCorrupt marks decode failures caused by damaged trace bytes: bad
// magic, invalid flag or class encodings, varint overflow, or a stream that
// ends mid-record. Wrapped errors carry the byte offset or field so callers
// can report exactly where the damage was found. Decoders never panic on
// corrupt input; they stop the stream and surface an ErrCorrupt through
// their Err method.
var ErrCorrupt = errors.New("trace: corrupt data")

// ErrSource is implemented by sources that can fail mid-stream (decoders
// over files or captured buffers). After Next returns false, Err
// distinguishes a clean end of trace (nil) from a decode failure.
type ErrSource interface {
	Source
	// Err returns the first decode error encountered, or nil.
	Err() error
}

// SourceErr returns the decode error src has encountered, or nil if src
// cannot fail or has not failed. Simulation drivers call this after
// draining a source so a damaged capture surfaces as an error instead of a
// silently short run.
func SourceErr(src Source) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}
