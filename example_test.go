package repro_test

import (
	"fmt"

	"repro"
)

// Example reproduces the paper's headline comparison in a few lines: the
// BTB versus a 512-entry gshare-indexed target cache on the interpreter
// workload. Workloads and predictors are fully deterministic, so the
// output is stable.
func Example() {
	w, err := repro.WorkloadByName("perl")
	if err != nil {
		panic(err)
	}
	base := repro.RunAccuracy(w, 500_000, repro.BaselineConfig())

	cfg := repro.BaselineConfig().WithTargetCache(
		func() repro.TargetCache {
			return repro.NewTagless(repro.TaglessConfig{
				Entries: 512, Scheme: repro.SchemeGshare,
			})
		},
		func() repro.History { return repro.NewPatternHistory(9) },
	)
	tc := repro.RunAccuracy(w, 500_000, cfg)

	fmt.Printf("BTB:          %.1f%%\n", 100*base.IndirectMispredictRate())
	fmt.Printf("target cache: %.1f%%\n", 100*tc.IndirectMispredictRate())
	fmt.Println("target cache wins:", tc.IndirectMispredictRate() < base.IndirectMispredictRate())
	// Output:
	// BTB:          77.1%
	// target cache: 55.3%
	// target cache wins: true
}

// ExampleRunTimelineDiagram shows the pipeline-diagram facility: the
// timing of the first few instructions of a run.
func ExampleRunTimelineDiagram() {
	w, err := repro.WorkloadByName("compress")
	if err != nil {
		panic(err)
	}
	_, tl := repro.RunTimelineDiagram(w, 1_000, repro.BaselineConfig(),
		repro.DefaultMachine(), 3)
	fmt.Println(len(tl.Entries), "instructions captured")
	// Output:
	// 3 instructions captured
}
