// Package isa defines the small load/store register instruction set the
// synthetic workloads are written in. It exists so the interpreter-,
// compiler- and lisp-like workloads are *real programs* whose indirect
// jumps arise from jump tables and function pointers the same way the
// paper's SPECint95 benchmarks' do, rather than statistically sampled
// streams.
//
// The machine has 32 integer registers, a word-addressed data memory
// separate from code, direct and indirect control flow, and a hardware call
// stack (calls and returns do not consume data memory; the simulators only
// observe the control-flow trace).
package isa

import "fmt"

// Reg names a register, 0..31. Register 0 is a normal register (not
// hardwired to zero).
type Reg uint8

// NumRegs is the register-file size.
const NumRegs = 32

// Op is the instruction opcode.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpALU computes Dst = Src1 <AluOp> Src2.
	OpALU
	// OpALUI computes Dst = Src1 <AluOp> Imm.
	OpALUI
	// OpLoadImm sets Dst = Imm.
	OpLoadImm
	// OpLoad loads Dst = mem[Src1 + Imm] (byte address, word aligned).
	OpLoad
	// OpStore stores mem[Src1 + Imm] = Src2.
	OpStore
	// OpBr branches to Target when Cond(Src1, Src2) holds.
	OpBr
	// OpJmp jumps unconditionally to Target.
	OpJmp
	// OpCall calls the subroutine at Target, pushing the return address.
	OpCall
	// OpRet returns to the most recent pushed return address.
	OpRet
	// OpJmpInd jumps to the code address in Src1. Src2, if nonzero when
	// encoded via WithSelector, names the register holding the dispatch
	// selector value (recorded in the trace for the CBT comparator).
	OpJmpInd
	// OpCallInd calls the code address in Src1, pushing the return
	// address. Src2 optionally names the selector register.
	OpCallInd
	// OpHalt stops the machine.
	OpHalt
)

// AluOp selects the ALU function for OpALU/OpALUI.
type AluOp uint8

const (
	AluAdd AluOp = iota
	AluSub
	AluAnd
	AluOr
	AluXor
	AluMul
	AluDiv
	AluSll
	AluSrl
)

// Cond selects the comparison for OpBr.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
)

// Eval applies the condition to two operand values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	default:
		return a >= b
	}
}

// Instr is one machine instruction. Target holds a resolved instruction
// index for direct control flow.
type Instr struct {
	Op     Op
	Alu    AluOp
	Cond   Cond
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int
	// Sel names the selector register for indirect jumps, plus one
	// (0 = none); the VM exposes its value to the trace for the CBT.
	Sel uint8
}

// Program is an assembled program: code plus initial data memory.
type Program struct {
	Name string
	// Base is the byte address of instruction 0; instruction i lives at
	// Base + 4*i.
	Base uint64
	Code []Instr
	// Data is the initial data memory image in 8-byte words. Byte address
	// 8*i refers to Data[i].
	Data []int64
	// Entry is the index of the first instruction executed.
	Entry int
}

// AddrOf returns the byte address of instruction index i.
func (p *Program) AddrOf(i int) uint64 { return p.Base + uint64(i)*4 }

// IndexOf returns the instruction index for byte address a.
func (p *Program) IndexOf(a uint64) (int, error) {
	if a < p.Base || (a-p.Base)%4 != 0 {
		return 0, fmt.Errorf("isa: address %#x outside code segment", a)
	}
	i := int((a - p.Base) / 4)
	if i >= len(p.Code) {
		return 0, fmt.Errorf("isa: address %#x outside code segment", a)
	}
	return i, nil
}
