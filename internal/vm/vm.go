// Package vm executes isa.Program values, emitting one trace.Record per
// retired instruction. It is the functional half of the methodology: the
// timing and prediction simulators consume its traces.
package vm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// VM is a running instance of a program. It implements trace.Source: each
// Next call executes one instruction.
//
// The VM also supports speculative (wrong-path) execution for the timing
// models: StartWrongPath snapshots architectural state and redirects the
// machine to an arbitrary (usually mispredicted) address; subsequent Next
// calls execute real wrong-path instructions — with real, register-derived
// memory addresses — and EndWrongPath rolls everything back via an undo
// log, exactly like a checkpoint-repair machine squashing its window.
type VM struct {
	prog      *isa.Program
	regs      [isa.NumRegs]int64
	mem       []int64
	pc        int
	callStack []int
	halted    bool
	err       error
	steps     int64

	// Speculative-execution state (StartWrongPath/EndWrongPath).
	spec          bool
	specDead      bool // wrong path ran off the rails (fault/halt)
	specRegs      [isa.NumRegs]int64
	specPC        int
	specSteps     int64
	specCallStack []int
	specMemLen    int
	specUndo      []memUndo
}

type memUndo struct {
	index int64
	old   int64
}

// New returns a VM at the program's entry point with a private copy of the
// initial data memory.
func New(p *isa.Program) *VM {
	m := &VM{prog: p, pc: p.Entry}
	m.mem = make([]int64, len(p.Data))
	copy(m.mem, p.Data)
	return m
}

// Err returns the fault that halted the machine, if any.
func (m *VM) Err() error { return m.err }

// Halted reports whether the machine has stopped (OpHalt or fault).
func (m *VM) Halted() bool { return m.halted }

// Steps returns the number of instructions retired so far.
func (m *VM) Steps() int64 { return m.steps }

// Reg returns the value of register r (for tests).
func (m *VM) Reg(r isa.Reg) int64 { return m.regs[r] }

func (m *VM) fault(format string, args ...any) bool {
	if m.spec {
		// Wrong-path execution ran into garbage; real hardware fetches on
		// regardless, but there is nothing sensible left to model, so the
		// wrong path simply ends. Architectural state is untouched.
		m.specDead = true
		return false
	}
	m.err = fmt.Errorf("vm: %s: pc=%d: %s", m.prog.Name, m.pc,
		fmt.Sprintf(format, args...))
	m.halted = true
	return false
}

func (m *VM) loadWord(addr int64) (int64, bool) {
	if addr < 0 || addr%8 != 0 {
		return 0, false
	}
	i := addr / 8
	if i >= int64(len(m.mem)) {
		return 0, true // unwritten memory reads as zero
	}
	return m.mem[i], true
}

func (m *VM) storeWord(addr, v int64) bool {
	if addr < 0 || addr%8 != 0 {
		return false
	}
	i := addr / 8
	for i >= int64(len(m.mem)) {
		m.mem = append(m.mem, make([]int64, i-int64(len(m.mem))+1)...)
	}
	if m.spec && i < int64(m.specMemLen) {
		m.specUndo = append(m.specUndo, memUndo{index: i, old: m.mem[i]})
	}
	m.mem[i] = v
	return true
}

func aluOpClass(op isa.AluOp) trace.OpClass {
	switch op {
	case isa.AluMul:
		return trace.OpMul
	case isa.AluDiv:
		return trace.OpDiv
	case isa.AluSll, isa.AluSrl, isa.AluAnd, isa.AluOr, isa.AluXor:
		return trace.OpBitField
	default:
		return trace.OpInt
	}
}

func alu(op isa.AluOp, a, b int64) int64 {
	switch op {
	case isa.AluAdd:
		return a + b
	case isa.AluSub:
		return a - b
	case isa.AluAnd:
		return a & b
	case isa.AluOr:
		return a | b
	case isa.AluXor:
		return a ^ b
	case isa.AluMul:
		return a * b
	case isa.AluDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.AluSll:
		return a << (uint64(b) & 63)
	case isa.AluSrl:
		return int64(uint64(a) >> (uint64(b) & 63))
	default:
		return 0
	}
}

// Next implements trace.Source, executing one instruction and describing it
// in *r. It returns false once the machine halts or faults (or, during
// wrong-path execution, when the wrong path dies).
func (m *VM) Next(r *trace.Record) bool {
	if m.halted || m.specDead {
		return false
	}
	if m.pc < 0 || m.pc >= len(m.prog.Code) {
		return m.fault("pc out of range")
	}
	in := &m.prog.Code[m.pc]
	*r = trace.Record{PC: m.prog.AddrOf(m.pc)}
	next := m.pc + 1

	switch in.Op {
	case isa.OpNop:
		r.Op = trace.OpInt
	case isa.OpALU:
		r.Op = aluOpClass(in.Alu)
		r.Dst, r.Src1, r.Src2 = uint8(in.Dst)+1, uint8(in.Src1)+1, uint8(in.Src2)+1
		m.regs[in.Dst] = alu(in.Alu, m.regs[in.Src1], m.regs[in.Src2])
	case isa.OpALUI:
		r.Op = aluOpClass(in.Alu)
		r.Dst, r.Src1 = uint8(in.Dst)+1, uint8(in.Src1)+1
		m.regs[in.Dst] = alu(in.Alu, m.regs[in.Src1], in.Imm)
	case isa.OpLoadImm:
		r.Op = trace.OpInt
		r.Dst = uint8(in.Dst) + 1
		m.regs[in.Dst] = in.Imm
	case isa.OpLoad:
		r.Op = trace.OpLoad
		r.Dst, r.Src1 = uint8(in.Dst)+1, uint8(in.Src1)+1
		addr := m.regs[in.Src1] + in.Imm
		v, ok := m.loadWord(addr)
		if !ok {
			return m.fault("bad load address %#x", addr)
		}
		r.Addr = uint64(addr)
		m.regs[in.Dst] = v
	case isa.OpStore:
		r.Op = trace.OpStore
		r.Src1, r.Src2 = uint8(in.Src1)+1, uint8(in.Src2)+1
		addr := m.regs[in.Src1] + in.Imm
		if !m.storeWord(addr, m.regs[in.Src2]) {
			return m.fault("bad store address %#x", addr)
		}
		r.Addr = uint64(addr)
	case isa.OpBr:
		r.Op = trace.OpBranch
		r.Class = trace.ClassCondDirect
		r.Src1, r.Src2 = uint8(in.Src1)+1, uint8(in.Src2)+1
		r.Target = m.prog.AddrOf(in.Target)
		if in.Cond.Eval(m.regs[in.Src1], m.regs[in.Src2]) {
			r.Taken = true
			next = in.Target
		}
	case isa.OpJmp:
		r.Op = trace.OpBranch
		r.Class = trace.ClassUncondDirect
		r.Taken = true
		r.Target = m.prog.AddrOf(in.Target)
		next = in.Target
	case isa.OpCall:
		r.Op = trace.OpBranch
		r.Class = trace.ClassCall
		r.Taken = true
		r.Target = m.prog.AddrOf(in.Target)
		m.callStack = append(m.callStack, m.pc+1)
		next = in.Target
	case isa.OpRet:
		r.Op = trace.OpBranch
		r.Class = trace.ClassReturn
		r.Taken = true
		if len(m.callStack) == 0 {
			return m.fault("return with empty call stack")
		}
		next = m.callStack[len(m.callStack)-1]
		m.callStack = m.callStack[:len(m.callStack)-1]
		r.Target = m.prog.AddrOf(next)
	case isa.OpJmpInd, isa.OpCallInd:
		r.Op = trace.OpBranch
		r.Taken = true
		r.Src1 = uint8(in.Src1) + 1
		tgt := uint64(m.regs[in.Src1])
		idx, err := m.prog.IndexOf(tgt)
		if err != nil {
			return m.fault("indirect jump through r%d: %v", in.Src1, err)
		}
		r.Target = tgt
		if in.Sel != 0 {
			r.Addr = uint64(m.regs[in.Sel-1])
		} else {
			r.Addr = tgt
		}
		if in.Op == isa.OpCallInd {
			r.Class = trace.ClassIndCall
			m.callStack = append(m.callStack, m.pc+1)
		} else {
			r.Class = trace.ClassIndJump
		}
		next = idx
	case isa.OpHalt:
		if m.spec {
			m.specDead = true
			return false
		}
		r.Op = trace.OpInt
		m.halted = true
	default:
		return m.fault("bad opcode %d", in.Op)
	}

	m.pc = next
	m.steps++
	return true
}

// InWrongPath reports whether the machine is executing speculatively.
func (m *VM) InWrongPath() bool { return m.spec }

// StartWrongPath snapshots architectural state and redirects execution to
// addr (typically a mispredicted branch target). It reports whether addr
// is a fetchable code address; on false the machine is unchanged. Nesting
// is not supported: a second call before EndWrongPath returns false.
func (m *VM) StartWrongPath(addr uint64) bool {
	if m.spec || m.halted {
		return false
	}
	idx, err := m.prog.IndexOf(addr)
	if err != nil {
		return false
	}
	m.spec = true
	m.specDead = false
	m.specRegs = m.regs
	m.specPC = m.pc
	m.specSteps = m.steps
	m.specCallStack = append(m.specCallStack[:0], m.callStack...)
	m.specMemLen = len(m.mem)
	m.specUndo = m.specUndo[:0]
	m.pc = idx
	return true
}

// EndWrongPath squashes all speculative state: registers, PC, call stack,
// step count and memory (via the undo log) return to their values at
// StartWrongPath. It is a no-op if no wrong path is active.
func (m *VM) EndWrongPath() {
	if !m.spec {
		return
	}
	m.regs = m.specRegs
	m.pc = m.specPC
	m.steps = m.specSteps
	m.callStack = append(m.callStack[:0], m.specCallStack...)
	// Undo in reverse so multiply-written words restore their oldest value.
	for i := len(m.specUndo) - 1; i >= 0; i-- {
		u := m.specUndo[i]
		m.mem[u.index] = u.old
	}
	m.mem = m.mem[:m.specMemLen]
	m.specUndo = m.specUndo[:0]
	m.spec = false
	m.specDead = false
}

// Run executes until halt or fault, discarding the trace, and returns the
// number of instructions retired. Useful in tests.
func (m *VM) Run(maxSteps int64) (int64, error) {
	var r trace.Record
	start := m.steps
	for m.Next(&r) {
		if m.steps-start >= maxSteps {
			break
		}
	}
	return m.steps - start, m.err
}

// Looping is a trace.Source that restarts the program whenever it halts,
// producing an arbitrarily long stationary trace from a finite program.
// Faults terminate the stream (visible via Err).
type Looping struct {
	Prog *isa.Program
	cur  *VM
	err  error
}

// NewLooping returns a looping source over p.
func NewLooping(p *isa.Program) *Looping { return &Looping{Prog: p} }

// Next implements trace.Source.
func (l *Looping) Next(r *trace.Record) bool {
	for {
		if l.err != nil {
			return false
		}
		if l.cur == nil {
			l.cur = New(l.Prog)
		}
		if l.cur.Next(r) {
			return true
		}
		if l.cur.InWrongPath() {
			// The wrong path died; the architectural machine is intact and
			// resumes after EndWrongPath. Never restart here.
			return false
		}
		if err := l.cur.Err(); err != nil {
			l.err = err
			return false
		}
		l.cur = nil // clean halt: restart
	}
}

// Err returns the fault that terminated the stream, if any.
func (l *Looping) Err() error { return l.err }

// StartWrongPath delegates to the current program instance; it fails when
// the stream is between restarts.
func (l *Looping) StartWrongPath(addr uint64) bool {
	if l.cur == nil {
		return false
	}
	return l.cur.StartWrongPath(addr)
}

// EndWrongPath delegates to the current program instance.
func (l *Looping) EndWrongPath() {
	if l.cur != nil {
		l.cur.EndWrongPath()
	}
}
