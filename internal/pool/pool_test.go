package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]atomic.Int32, n)
			Run(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times, want 1", workers, n, i, got)
				}
			}
		}
	}
}

func TestRunSerialPreservesOrder(t *testing.T) {
	var order []int
	Run(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int32
	Run(workers, 200, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}
