// Package history implements the branch-history registers of the paper's
// Section 3.1: the global pattern history register (the last n conditional
// branch outcomes, shared with the two-level direction predictor) and path
// history registers (bits of the target addresses of recent branches),
// either one global register with a branch-type filter or one register per
// static indirect jump.
package history

import "fmt"

// Pattern is a global pattern history register: a shift register of the
// outcomes of the last n conditional branches, most recent in the least
// significant bit. This is the same register a two-level branch predictor
// maintains, so "no extra hardware is required to maintain the branch
// history for the target cache".
type Pattern struct {
	bits uint64
	n    int
	mask uint64
}

// NewPattern returns a pattern history register of n bits (1..64).
func NewPattern(n int) *Pattern {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("history: invalid pattern length %d", n))
	}
	mask := ^uint64(0)
	if n < 64 {
		mask = (uint64(1) << n) - 1
	}
	return &Pattern{n: n, mask: mask}
}

// Update shifts one conditional-branch outcome into the register.
func (p *Pattern) Update(taken bool) {
	p.bits <<= 1
	if taken {
		p.bits |= 1
	}
	p.bits &= p.mask
}

// Value returns the current history value (n bits).
func (p *Pattern) Value() uint64 { return p.bits }

// Len returns the register length in bits.
func (p *Pattern) Len() int { return p.n }

// Reset clears the register.
func (p *Pattern) Reset() { p.bits = 0 }
