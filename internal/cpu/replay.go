package cpu

// Batched timing kernel: RunReplayCtx is RunCtx over a memoized capture's
// decode-once batches. The fetch path iterates structure-of-arrays blocks,
// reading each record's operand and class bytes with plain slice loads
// instead of re-decoding varints, and only branch records materialize a
// Record (for the prediction structures). Like the accuracy kernel in
// internal/sim, the per-branch Predict/Resolve sequence is inlined and
// instantiated per concrete (target cache, history) pair so the hot path
// avoids interface dispatch. Results are identical to RunCtx over
// rep.Open(); TestRunReplayMatchesCursor pins the equivalence.

import (
	"context"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/trace"
)

// targetCache and historySource mirror the constraint interfaces of the
// accuracy kernel: the hot subsets of core.TargetCache and history.Provider.
type targetCache interface {
	Predict(pc, hist uint64) (target uint64, ok bool)
	Update(pc, hist, target uint64)
}

type historySource interface {
	Value(pc uint64) uint64
	Observe(r *trace.Record)
}

// noTC and noHist instantiate the kernel for the BTB-only baseline; their
// no-op methods inline to nothing, reproducing the nil guards in
// Engine.Predict/Resolve.
type noTC struct{}

func (noTC) Predict(pc, hist uint64) (uint64, bool) { return 0, false }
func (noTC) Update(pc, hist, target uint64)         {}

type noHist struct{}

func (noHist) Value(pc uint64) uint64  { return 0 }
func (noHist) Observe(r *trace.Record) {}

// RunReplayCtx simulates up to budget instructions from a capture's
// decoded batches — a memoized Replay, explicit Blocks, or an out-of-core
// Store. It may be called once per Machine.
func (m *Machine) RunReplayCtx(ctx context.Context, bs trace.BlockSource, budget int64) Result {
	switch tc := m.engine.TC.(type) {
	case nil:
		return replayKernel(ctx, m, bs, budget, noTC{}, noHist{})
	case *core.Tagless:
		return replayDispatchHist(ctx, m, bs, budget, tc)
	case *core.Tagged:
		return replayDispatchHist(ctx, m, bs, budget, tc)
	case *core.Cascaded:
		return replayDispatchHist(ctx, m, bs, budget, tc)
	case *core.ITTAGE:
		return replayDispatchHist(ctx, m, bs, budget, tc)
	case *core.Chooser:
		return replayDispatchHist(ctx, m, bs, budget, tc)
	}
	return replayKernel[core.TargetCache, history.Provider](ctx, m, bs, budget, m.engine.TC, m.engine.Hist)
}

// replayDispatchHist instantiates the kernel over the engine's concrete
// history type for an already-resolved target cache.
func replayDispatchHist[TC targetCache](ctx context.Context, m *Machine, bs trace.BlockSource, budget int64, tc TC) Result {
	switch h := m.engine.Hist.(type) {
	case history.PatternProvider:
		return replayKernel(ctx, m, bs, budget, tc, h)
	case *history.Path:
		return replayKernel(ctx, m, bs, budget, tc, h)
	}
	return replayKernel[TC, history.Provider](ctx, m, bs, budget, tc, m.engine.Hist)
}

// replayKernel is the batched, devirtualized timing loop. tc and hist are
// the engine's own target cache and history at their concrete types; the
// BTB, RAS, direction predictor and telemetry collector are read off the
// engine once. The scheduling model is line-for-line the one in RunCtx.
func replayKernel[TC targetCache, H historySource](
	ctx context.Context, m *Machine, bs trace.BlockSource, budget int64, tc TC, hist H,
) Result {
	cfg := m.cfg
	btbT, ras, dir, tel := m.engine.BTB, m.engine.RAS, m.engine.Dir, m.engine.Tel
	dcache, observer := m.dcache, m.observer
	var res Result

	var (
		fetchCycle   int64 // cycle the next instruction is fetched
		fetchedThis  int   // instructions fetched in fetchCycle
		lastRetire   int64 // retire cycle of the previous instruction
		retiredThis  int   // instructions retired in lastRetire
		regReady     [64]int64
		windowRetire = make([]int64, cfg.Window) // ring: retire cycle per slot
		idx          int64
		r            trace.Record
	)

	// Functional-unit occupancy ring, inlined from fuRing: entries are
	// tagged with their cycle and lazily reset (see fuRing.at).
	fuCycle := make([]int64, 8192)
	fuCount := make([]int, 8192)
	fuMask := int64(len(fuCount) - 1)

	// The window ring is indexed idx mod Window; every shipped geometry is
	// a power of two, indexed with a mask (winMask < 0 falls back to mod).
	winMask := int64(-1)
	if cfg.Window&(cfg.Window-1) == 0 {
		winMask = int64(cfg.Window - 1)
	}
	winMod := int64(cfg.Window)

	lineShift := 0
	for 1<<lineShift < cfg.DCacheLine {
		lineShift++
	}

	// Specialized data-cache state, replacing cache.Cache[struct{}] on the
	// hot path. The LRU stream is identical to Cache.Touch: one tick per
	// access, hit refreshes lastUse, miss victimizes the first invalid way
	// else the first minimum-lastUse way. lastUse==0 encodes invalid (the
	// tick pre-increments, so live lines always carry a positive stamp).
	dways := cfg.DCacheWays
	dsets := cfg.DCacheBytes / (cfg.DCacheLine * cfg.DCacheWays)
	dtags := make([]uint64, dsets*dways)
	dlast := make([]int64, dsets*dways)
	var dtick int64

	limit := budget
	if limit < 0 {
		limit = 0
	}
	effEnd := limit
	if clean := bs.CleanLen(); clean < effEnd {
		effEnd = clean
	}
	stopped := false
	for bi := 0; idx < effEnd && !stopped; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			res.Err = err
			break
		}
		meta := blk.Meta
		n := len(meta)
		if rem := effEnd - idx; int64(n) > rem {
			n = int(rem)
		}
		// Reslice every column to the iteration length once: the i < n
		// bound then proves each index in range, eliding per-access bounds
		// checks and slice-header reloads.
		meta = meta[:n]
		pcs := blk.PC[:n]
		tgts := blk.Target[:n]
		addrs := blk.Addr[:n]
		dsts := blk.Dst[:n]
		src1s := blk.Src1[:n]
		src2s := blk.Src2[:n]
		for i := 0; i < n; i++ {
			if idx&ctxCheckMask == ctxCheckMask {
				if err := ctx.Err(); err != nil {
					res.Err = err
					stopped = true
					break
				}
			}
			mb := meta[i]
			op := trace.OpClass(mb >> trace.MetaOpShift & trace.MetaOpMask)
			dst, src1, src2 := dsts[i], src1s[i], src2s[i]
			var winSlot int64
			if winMask >= 0 {
				winSlot = idx & winMask
			} else {
				winSlot = idx % winMod
			}

			// Fetch: width and window constraints.
			if fetchedThis >= cfg.Width {
				fetchCycle++
				fetchedThis = 0
			}
			if oldest := windowRetire[winSlot]; oldest > fetchCycle {
				// The slot's previous occupant retires at `oldest`; we can
				// occupy it the following cycle.
				res.WindowStallCycles += oldest + 1 - fetchCycle
				fetchCycle = oldest + 1
				fetchedThis = 0
			}
			fetched := fetchCycle
			fetchedThis++

			// Issue: operands, then a free functional unit.
			issue := fetched + int64(cfg.FrontEndDepth)
			if src1 != 0 && regReady[src1] > issue {
				issue = regReady[src1]
			}
			if src2 != 0 && regReady[src2] > issue {
				issue = regReady[src2]
			}
			fi := issue & fuMask
			if fuCycle[fi] != issue {
				fuCycle[fi] = issue
				fuCount[fi] = 0
			}
			for fuCount[fi] >= cfg.Width {
				issue++
				fi = issue & fuMask
				if fuCycle[fi] != issue {
					fuCycle[fi] = issue
					fuCount[fi] = 0
				}
			}
			fuCount[fi]++

			// Execute.
			lat := cfg.Latencies[op]
			if op == trace.OpLoad || op == trace.OpStore {
				res.DCacheAccesses++
				set, tag := dcache.IndexOf(addrs[i] >> lineShift)
				dtick++
				base := set * dways
				hit := false
				vic := base
				for w := base; w < base+dways; w++ {
					if dlast[w] != 0 && dtags[w] == tag {
						dlast[w] = dtick
						hit = true
						break
					}
					if dlast[w] < dlast[vic] {
						vic = w
					}
				}
				if !hit {
					res.DCacheMisses++
					dtags[vic] = tag
					dlast[vic] = dtick
					if op == trace.OpLoad {
						lat += cfg.MemLatency
					}
				}
			}
			complete := issue + lat
			if dst != 0 {
				regReady[dst] = complete
			}

			// Branch prediction and checkpoint repair.
			mispredicted := false
			if cls := trace.Class(mb & trace.MetaClassMask); cls != trace.ClassOther {
				res.Branches++
				// Lean materialization: only the fields the predictors
				// read (the register operands stay zero; no consumer
				// below looks at them).
				r.PC = pcs[i]
				r.Target = tgts[i]
				r.Addr = addrs[i]
				r.Class = cls
				r.Op = op
				r.Taken = mb&trace.MetaTaken != 0

				// ---- Engine.Predict, inlined at concrete types ----
				// (Prediction.FromTC is not tracked: the timing model has
				// no coverage counter.) The history value is computed
				// lazily: only indirect jumps consume it, and hist is not
				// mutated until Observe below.
				var pTaken, pHasTarget, phOK bool
				var pTarget, ph uint64
				entry, bref, hit := btbT.Probe(r.PC)
				if hit {
					if entry.Class == trace.ClassCondDirect {
						pTaken = dir.Predict(r.PC)
					} else {
						pTaken = true
					}
					if pTaken {
						switch entry.Class {
						case trace.ClassReturn:
							if addr, ok := ras.Peek(); ok {
								pTarget, pHasTarget = addr, true
							}
						case trace.ClassIndJump, trace.ClassIndCall:
							ph = hist.Value(r.PC)
							phOK = true
							if tgt, ok := tc.Predict(r.PC, ph); ok {
								pTarget, pHasTarget = tgt, true
							} else {
								pTarget, pHasTarget = entry.Target, true
							}
						default:
							pTarget, pHasTarget = entry.Target, true
						}
					}
				}
				correct := pTaken == r.Taken && (!r.Taken || (pHasTarget && pTarget == r.Target))

				// ---- Engine.Resolve, inlined at concrete types ----
				// Telemetry events from timing runs carry the branch's
				// resolve cycle.
				if (cls == trace.ClassIndJump || cls == trace.ClassIndCall) && !phOK {
					ph = hist.Value(r.PC)
				}
				if tel != nil {
					tel.SetClock(complete)
					if cls == trace.ClassIndJump || cls == trace.ClassIndCall {
						tel.Indirect(r.PC, ph, pTarget, pTaken && pHasTarget, r.Target, correct)
					}
				}
				if cls == trace.ClassCall || cls == trace.ClassIndCall {
					ras.Push(r.FallThrough())
				}
				if cls == trace.ClassReturn {
					ras.Pop()
				}
				if cls == trace.ClassCondDirect {
					dir.Update(r.PC, r.Taken)
				}
				if cls == trace.ClassIndJump || cls == trace.ClassIndCall {
					tc.Update(r.PC, ph, r.Target)
				}
				hist.Observe(&r)
				if hit {
					btbT.UpdateHit(bref, &r)
				} else {
					btbT.Update(&r)
				}

				switch cls {
				case trace.ClassIndJump, trace.ClassIndCall:
					res.IndirectCount++
					if !correct {
						res.IndirectMispredicts++
					}
				case trace.ClassCondDirect:
					if !correct {
						res.CondMispredicts++
					}
				case trace.ClassReturn:
					if !correct {
						res.ReturnMispredicts++
					}
				}
				if !correct {
					res.Mispredicts++
					mispredicted = true
					// Checkpoint repair: correct-path fetch resumes the
					// cycle after the branch resolves.
					if complete+1 > fetchCycle {
						res.MispredictStallCycles += complete + 1 - fetchCycle
						fetchCycle = complete + 1
						fetchedThis = 0
					}
				} else if r.Taken {
					// A predicted-taken branch ends the fetch group.
					fetchedThis = cfg.Width
				}
			}

			// Retire: in order, Width per cycle.
			retire := complete
			if retire < lastRetire {
				retire = lastRetire
			}
			if retire == lastRetire {
				if retiredThis >= cfg.Width {
					retire++
					retiredThis = 1
				} else {
					retiredThis++
				}
			} else {
				retiredThis = 1
			}
			lastRetire = retire
			windowRetire[winSlot] = retire

			if observer != nil {
				blk.Record(i, &r)
				observer(TimelineEntry{
					Record:     r,
					Fetch:      fetched,
					Issue:      issue,
					Complete:   complete,
					Retire:     retire,
					Mispredict: mispredicted,
				})
			}

			idx++
		}
	}

	res.Instructions = idx
	res.Cycles = lastRetire + 1
	if res.Err == nil && limit > bs.CleanLen() {
		res.Err = bs.TailErr()
	}
	return res
}
