package history

import (
	"fmt"

	"repro/internal/trace"
)

// PathFilter selects which control-flow instructions contribute their
// targets to a global path history register (the paper's four global-scheme
// variations).
type PathFilter uint8

const (
	// FilterControl records the target of every instruction that can
	// redirect the instruction stream.
	FilterControl PathFilter = iota
	// FilterBranch records only the targets of conditional branches.
	FilterBranch
	// FilterCallRet records only the targets of procedure calls and
	// returns.
	FilterCallRet
	// FilterIndJmp records only the targets of indirect jumps.
	FilterIndJmp
)

// String returns the paper's name for the filter.
func (f PathFilter) String() string {
	switch f {
	case FilterControl:
		return "control"
	case FilterBranch:
		return "branch"
	case FilterCallRet:
		return "call/ret"
	case FilterIndJmp:
		return "ind jmp"
	default:
		return fmt.Sprintf("PathFilter(%d)", uint8(f))
	}
}

// Matches reports whether a record of class c passes the filter.
func (f PathFilter) Matches(c trace.Class) bool {
	switch f {
	case FilterControl:
		return c.IsBranch()
	case FilterBranch:
		return c == trace.ClassCondDirect
	case FilterCallRet:
		return c == trace.ClassCall || c == trace.ClassReturn ||
			c == trace.ClassIndCall
	case FilterIndJmp:
		return c == trace.ClassIndJump || c == trace.ClassIndCall
	default:
		return false
	}
}

// PathConfig describes a path history register file.
type PathConfig struct {
	// Bits is the register length n; when a branch is recorded,
	// BitsPerTarget bits from its target are shifted in, so the register
	// remembers roughly n/BitsPerTarget recent branches.
	Bits int
	// BitsPerTarget is how many bits of each recorded target enter the
	// register (the paper sweeps 1..3 in Table 6).
	BitsPerTarget int
	// AddrBitOffset is the bit position within the target address where
	// extraction starts. The paper finds lower bits work best; instructions
	// are word aligned, so offset 2 is the lowest useful bit (Table 5).
	AddrBitOffset int
	// PerAddress selects the per-address scheme: one register per static
	// indirect jump, recording that jump's own recent targets. When false
	// the scheme is global and Filter selects what is recorded.
	PerAddress bool
	// Filter is the global-scheme branch-type filter (ignored when
	// PerAddress is set).
	Filter PathFilter
}

// Validate checks the configuration.
func (c PathConfig) Validate() error {
	if c.Bits < 1 || c.Bits > 64 {
		return fmt.Errorf("history: invalid path length %d", c.Bits)
	}
	if c.BitsPerTarget < 1 || c.BitsPerTarget > c.Bits {
		return fmt.Errorf("history: invalid bits-per-target %d for %d-bit register",
			c.BitsPerTarget, c.Bits)
	}
	if c.AddrBitOffset < 0 || c.AddrBitOffset > 62 {
		return fmt.Errorf("history: invalid address bit offset %d", c.AddrBitOffset)
	}
	return nil
}

// Name returns the paper's name for the scheme ("per-addr" or the global
// filter name).
func (c PathConfig) Name() string {
	if c.PerAddress {
		return "per-addr"
	}
	return c.Filter.String()
}

// Path is a path history register file configured by PathConfig.
type Path struct {
	cfg     PathConfig
	mask    uint64
	chunk   uint64
	global  uint64
	perAddr *addrTable
}

// NewPath returns a register file for cfg. It panics on invalid
// configuration (configs are static experiment inputs).
func NewPath(cfg PathConfig) *Path {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Path{
		cfg:   cfg,
		mask:  (uint64(1)<<cfg.Bits - 1),
		chunk: (uint64(1)<<cfg.BitsPerTarget - 1),
	}
	if cfg.Bits == 64 {
		p.mask = ^uint64(0)
	}
	if cfg.PerAddress {
		p.perAddr = newAddrTable()
	}
	return p
}

// Config returns the configuration.
func (p *Path) Config() PathConfig { return p.cfg }

// extract pulls BitsPerTarget bits of addr starting at AddrBitOffset.
func (p *Path) extract(addr uint64) uint64 {
	return (addr >> uint(p.cfg.AddrBitOffset)) & p.chunk
}

// Observe records a resolved instruction. For the global scheme, the
// targets of instructions passing the filter are shifted in; a not-taken
// conditional branch contributes its fall-through address (the next basic
// block on the path, as in Nair's path-based correlation). For the
// per-address scheme, only indirect jumps update their own registers, with
// the computed target.
func (p *Path) Observe(r *trace.Record) {
	if p.cfg.PerAddress {
		if r.Class.IsTargetCachePredicted() {
			h := p.perAddr.get(r.PC)
			h = (h<<uint(p.cfg.BitsPerTarget) | p.extract(r.Target)) & p.mask
			p.perAddr.put(r.PC, h)
		}
		return
	}
	if !p.cfg.Filter.Matches(r.Class) {
		return
	}
	p.global = (p.global<<uint(p.cfg.BitsPerTarget) | p.extract(r.NextPC())) & p.mask
}

// Value returns the history used to predict the indirect jump at pc.
func (p *Path) Value(pc uint64) uint64 {
	if p.cfg.PerAddress {
		return p.perAddr.get(pc)
	}
	return p.global
}

// Len returns the register length in bits.
func (p *Path) Len() int { return p.cfg.Bits }

// Reset clears all registers.
func (p *Path) Reset() {
	p.global = 0
	if p.perAddr != nil {
		p.perAddr.reset()
	}
}
