package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func runTiming(t *testing.T, w *workload.Workload, budget int64, cfg sim.Config) Result {
	t.Helper()
	eng := sim.NewEngine(cfg)
	return Run(w.Open(), budget, eng, DefaultConfig())
}

// TestTimingBasics checks structural properties of the timing model on a
// real workload: cycles are positive, IPC is plausible for an 8-wide
// machine, and the counters are consistent.
func TestTimingBasics(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	res := runTiming(t, w, 200_000, sim.DefaultConfig())
	if res.Instructions != 200_000 {
		t.Fatalf("instructions = %d, want 200000", res.Instructions)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	ipc := res.IPC()
	if ipc < 0.3 || ipc > 8 {
		t.Errorf("IPC %.2f implausible for an 8-wide machine", ipc)
	}
	if res.Mispredicts == 0 || res.IndirectMispredicts == 0 {
		t.Errorf("expected mispredictions, got %+v", res)
	}
	if res.IndirectMispredicts > res.IndirectCount {
		t.Errorf("more indirect mispredicts (%d) than indirect jumps (%d)",
			res.IndirectMispredicts, res.IndirectCount)
	}
	t.Logf("perl baseline: cycles=%d IPC=%.2f indMP=%d/%d condMP=%d dmiss=%d/%d",
		res.Cycles, ipc, res.IndirectMispredicts, res.IndirectCount,
		res.CondMispredicts, res.DCacheMisses, res.DCacheAccesses)
}

// TestTargetCacheSpeedsUpPerlAndGcc reproduces the paper's headline timing
// claim directionally: adding a target cache reduces execution time on the
// two indirect-jump-heavy benchmarks.
func TestTargetCacheSpeedsUpPerlAndGcc(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is slow")
	}
	const budget = 500_000
	for _, name := range []string{"perl", "gcc"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := runTiming(t, w, budget, sim.DefaultConfig())
		tcCfg := sim.DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
			},
			func() history.Provider { return history.NewPatternProvider(9) },
		)
		tc := runTiming(t, w, budget, tcCfg)
		red := stats.Reduction(float64(base.Cycles), float64(tc.Cycles))
		t.Logf("%s: base=%d cycles (IPC %.2f), tc=%d cycles (IPC %.2f), reduction=%.2f%%",
			name, base.Cycles, base.IPC(), tc.Cycles, tc.IPC(), red*100)
		if tc.Cycles >= base.Cycles {
			t.Errorf("%s: target cache did not reduce execution time (%d -> %d)",
				name, base.Cycles, tc.Cycles)
		}
	}
}

// TestDCacheGeometry checks the miss path adds latency only for loads and
// that a tiny cache misses more than the default.
func TestDCacheGeometry(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	big := DefaultConfig()
	small := DefaultConfig()
	small.DCacheBytes = 512
	resBig := New(big, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 100_000)
	resSmall := New(small, sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 100_000)
	if resSmall.DCacheMisses <= resBig.DCacheMisses {
		t.Errorf("small cache misses (%d) should exceed big cache misses (%d)",
			resSmall.DCacheMisses, resBig.DCacheMisses)
	}
	if resSmall.Cycles <= resBig.Cycles {
		t.Errorf("small cache should cost cycles: %d vs %d", resSmall.Cycles, resBig.Cycles)
	}
}

var _ = trace.Record{} // keep the import for test helpers that may grow
