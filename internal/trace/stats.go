package trace

// Stats accumulates the trace-level statistics reported in Table 1 and
// Figures 1-8 of the paper: dynamic instruction and branch counts, indirect
// jump counts, and the number of distinct dynamic targets seen per static
// indirect jump.
type Stats struct {
	Instructions int64
	Branches     int64 // all control-flow instructions
	CondDirect   int64
	UncondDirect int64
	Calls        int64
	Returns      int64
	IndJumps     int64 // ClassIndJump + ClassIndCall (target-cache predicted)

	// OpMix counts instructions per functional-unit class (Table 3's
	// population in this trace).
	OpMix [NumOpClasses]int64

	// targets maps each static indirect jump PC to its set of dynamic
	// targets; dynCount holds that jump's dynamic execution count.
	targets  map[uint64]map[uint64]struct{}
	dynCount map[uint64]int64
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{
		targets:  make(map[uint64]map[uint64]struct{}),
		dynCount: make(map[uint64]int64),
	}
}

// Observe accumulates one record.
func (s *Stats) Observe(r *Record) {
	s.Instructions++
	if int(r.Op) < NumOpClasses {
		s.OpMix[r.Op]++
	}
	switch r.Class {
	case ClassOther:
		return
	case ClassCondDirect:
		s.CondDirect++
	case ClassUncondDirect:
		s.UncondDirect++
	case ClassCall:
		s.Calls++
	case ClassReturn:
		s.Returns++
	case ClassIndJump, ClassIndCall:
		s.IndJumps++
		set := s.targets[r.PC]
		if set == nil {
			set = make(map[uint64]struct{})
			s.targets[r.PC] = set
		}
		set[r.Target] = struct{}{}
		s.dynCount[r.PC]++
	}
	s.Branches++
}

// Consume drains src through the accumulator and returns s for chaining.
func (s *Stats) Consume(src Source) *Stats {
	var r Record
	for src.Next(&r) {
		s.Observe(&r)
	}
	return s
}

// ConsumeBlocks accumulates every record of a decoded capture, equivalent
// to Consume over bs.Open() but without materializing Records: the class
// and op come from the packed meta byte, and only indirect jumps touch the
// pc/target columns.
func (s *Stats) ConsumeBlocks(bs *Blocks) *Stats {
	for bi := 0; bi < bs.NumBlocks(); bi++ {
		blk := bs.Block(bi)
		meta := blk.Meta
		pcs := blk.PC[:len(meta)]
		tgts := blk.Target[:len(meta)]
		for i, mb := range meta {
			s.Instructions++
			s.OpMix[mb>>MetaOpShift&MetaOpMask]++
			cls := Class(mb & MetaClassMask)
			switch cls {
			case ClassOther:
				continue
			case ClassCondDirect:
				s.CondDirect++
			case ClassUncondDirect:
				s.UncondDirect++
			case ClassCall:
				s.Calls++
			case ClassReturn:
				s.Returns++
			case ClassIndJump, ClassIndCall:
				s.IndJumps++
				pc := pcs[i]
				set := s.targets[pc]
				if set == nil {
					set = make(map[uint64]struct{})
					s.targets[pc] = set
				}
				set[tgts[i]] = struct{}{}
				s.dynCount[pc]++
			}
			s.Branches++
		}
	}
	return s
}

// ConsumeBatches is ConsumeBlocks over any BlockSource, stopping after
// limit records (limit <= 0 means all). It mirrors the kernel tail
// contract: the clean prefix is always accumulated, and an error is
// returned only when the limit reaches past it.
func (s *Stats) ConsumeBatches(bs BlockSource, limit int64) (*Stats, error) {
	budget := bs.Len()
	if limit > 0 && limit < budget {
		budget = limit
	} else {
		limit = budget
	}
	effN := budget
	if clean := bs.CleanLen(); clean < effN {
		effN = clean
	}
	var done int64
	for bi := 0; done < effN; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			return s, err
		}
		meta := blk.Meta
		if rem := effN - done; rem < int64(len(meta)) {
			meta = meta[:rem]
		}
		pcs := blk.PC[:len(meta)]
		tgts := blk.Target[:len(meta)]
		for i, mb := range meta {
			s.Instructions++
			s.OpMix[mb>>MetaOpShift&MetaOpMask]++
			cls := Class(mb & MetaClassMask)
			switch cls {
			case ClassOther:
				continue
			case ClassCondDirect:
				s.CondDirect++
			case ClassUncondDirect:
				s.UncondDirect++
			case ClassCall:
				s.Calls++
			case ClassReturn:
				s.Returns++
			case ClassIndJump, ClassIndCall:
				s.IndJumps++
				pc := pcs[i]
				set := s.targets[pc]
				if set == nil {
					set = make(map[uint64]struct{})
					s.targets[pc] = set
				}
				set[tgts[i]] = struct{}{}
				s.dynCount[pc]++
			}
			s.Branches++
		}
		done += int64(len(meta))
	}
	if limit > bs.CleanLen() {
		return s, bs.TailErr()
	}
	return s, nil
}

// StaticIndJumps returns the number of distinct static indirect jumps seen.
func (s *Stats) StaticIndJumps() int { return len(s.targets) }

// TargetHistogramCap is the largest per-jump target count tracked
// individually by TargetHistogram; larger counts fall into the final
// ">= TargetHistogramCap" bucket, matching the ">=30" bucket of Figures 1-8.
const TargetHistogramCap = 30

// TargetHistogram returns the distribution of "number of distinct dynamic
// targets per static indirect jump" reported in Figures 1-8.
//
// Bucket i (1 <= i < TargetHistogramCap) counts jumps with exactly i
// targets; bucket TargetHistogramCap counts jumps with that many or more.
// Bucket 0 is unused. If dynamicWeighted is true, each static jump is
// weighted by its dynamic execution count (the fraction of *executed*
// indirect jumps whose site has i targets); otherwise each static site
// counts once.
func (s *Stats) TargetHistogram(dynamicWeighted bool) [TargetHistogramCap + 1]int64 {
	var h [TargetHistogramCap + 1]int64
	for pc, set := range s.targets {
		n := len(set)
		if n > TargetHistogramCap {
			n = TargetHistogramCap
		}
		if dynamicWeighted {
			h[n] += s.dynCount[pc]
		} else {
			h[n]++
		}
	}
	return h
}

// MaxTargets returns the largest number of distinct targets seen at any
// single static indirect jump.
func (s *Stats) MaxTargets() int {
	max := 0
	for _, set := range s.targets {
		if len(set) > max {
			max = len(set)
		}
	}
	return max
}

// PolymorphicFraction returns the fraction of dynamic indirect jumps whose
// static site exhibited more than one target — the population a BTB
// fundamentally cannot capture.
func (s *Stats) PolymorphicFraction() float64 {
	if s.IndJumps == 0 {
		return 0
	}
	var poly int64
	for pc, set := range s.targets {
		if len(set) > 1 {
			poly += s.dynCount[pc]
		}
	}
	return float64(poly) / float64(s.IndJumps)
}
