package isa_test

import (
	"os"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TestDispatchExample assembles the shipped example program, runs it, and
// checks both its functional result and the predictor behaviour it was
// written to demonstrate: a BTB cannot predict an alternating jump-table
// dispatch, a history-indexed target cache can.
func TestDispatchExample(t *testing.T) {
	src, err := os.ReadFile("testdata/dispatch.s")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	if _, err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	// 100 even iterations add 2, 100 odd iterations add 3.
	if got := m.Reg(6); got != 500 {
		t.Fatalf("r6 = %d, want 500", got)
	}

	factory := trace.FactoryFunc(func() trace.Source {
		return trace.NewLimit(vm.NewLooping(prog), 50_000)
	})
	res := sim.RunAccuracy(factory, 50_000, sim.DefaultConfig())
	if res.IndirectMispredictRate() < 0.95 {
		t.Errorf("BTB should mispredict the alternating dispatch: %.2f%%",
			100*res.IndirectMispredictRate())
	}
}
