package trace

import (
	"testing"
	"testing/quick"
)

func mkRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: uint64(0x1000 + 4*i), Op: OpInt}
		if i%3 == 0 {
			recs[i].Class = ClassCondDirect
			recs[i].Taken = i%2 == 0
			recs[i].Target = uint64(0x2000 + 4*i)
		}
	}
	return recs
}

func TestSliceSource(t *testing.T) {
	recs := mkRecords(10)
	src := NewSliceSource(recs)
	got := Collect(src)
	if len(got) != 10 {
		t.Fatalf("collected %d records, want 10", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	var r Record
	if src.Next(&r) {
		t.Fatal("exhausted source produced a record")
	}
	src.Reset()
	if !src.Next(&r) || r != recs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	for _, n := range []int64{-1, 0, 3, 10, 20} {
		src := NewLimit(NewSliceSource(mkRecords(10)), n)
		got := int64(len(Collect(src)))
		want := n
		if want < 0 {
			want = 0
		}
		if want > 10 {
			want = 10
		}
		if got != want {
			t.Errorf("Limit(%d) produced %d records, want %d", n, got, want)
		}
	}
}

func TestFilterBranches(t *testing.T) {
	src := FilterBranches{Src: NewSliceSource(mkRecords(12))}
	got := Collect(src)
	if len(got) != 4 {
		t.Fatalf("filtered %d branches, want 4", len(got))
	}
	for _, r := range got {
		if !r.Class.IsBranch() {
			t.Fatalf("non-branch record passed filter: %+v", r)
		}
	}
}

func TestConcat(t *testing.T) {
	a := mkRecords(3)
	b := mkRecords(2)
	c := &Concat{Srcs: []Source{NewSliceSource(a), NewSliceSource(b)}}
	got := Collect(c)
	if len(got) != 5 {
		t.Fatalf("concat produced %d records, want 5", len(got))
	}
	if got[3] != b[0] {
		t.Fatalf("concat order wrong")
	}
}

// Property: Limit(n) then Collect never yields more than n records and is a
// prefix of the unlimited stream.
func TestLimitPrefixProperty(t *testing.T) {
	f := func(n uint8, size uint8) bool {
		recs := mkRecords(int(size))
		limited := Collect(NewLimit(NewSliceSource(recs), int64(n)))
		if len(limited) > int(n) || len(limited) > len(recs) {
			return false
		}
		for i := range limited {
			if limited[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
