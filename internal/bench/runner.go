package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/stats"
)

// The suite runner executes experiments in canonical order with the fault
// tolerance the individual cell scheduler provides, plus run-level
// concerns: per-experiment deadlines, graceful cancellation (partial
// output + a summary instead of a dead terminal), and checkpoint/resume
// through a manifest file. The runner owns all rendering so that a chunk
// replayed from a manifest is byte-identical to one computed fresh.

// SuiteOptions configure RunSuite.
type SuiteOptions struct {
	// Experiments to run, in order; nil means All().
	Experiments []*Experiment
	// Params are the experiment parameters. The runner installs its own
	// context and failure log; callers set budgets/model/parallelism.
	Params Params
	// Format is "text", "csv" or "json".
	Format string
	// Timeout bounds each experiment's wall time; 0 means no deadline.
	// A timed-out experiment renders with ERR rows and is retried on
	// resume.
	Timeout time.Duration
	// ManifestPath, when non-empty, enables checkpoint/resume: completed
	// experiments' rendered output is recorded there and replayed instead
	// of re-simulated on the next run. Only fully clean experiments are
	// recorded, so failed or interrupted ones re-run.
	ManifestPath string
	// Out receives the rendered experiment output (stdout in tcsim).
	Out io.Writer
	// Log, when non-nil, receives one summary line per experiment.
	Log io.Writer
	// OnExperiment, when non-nil, is called after each experiment with
	// its execution report (the -benchjson hook).
	OnExperiment func(ExperimentReport)
}

// ExperimentReport summarises one experiment's execution.
type ExperimentReport struct {
	ID           string  `json:"-"`
	WallMS       float64 `json:"wall_ms"`
	Cells        int64   `json:"cells"`
	Instructions int64   `json:"instructions"`
	// Resumed marks experiments replayed from the manifest; their
	// counters are the recorded ones from the run that computed them.
	Resumed bool `json:"resumed,omitempty"`
}

// SuiteResult reports what a RunSuite call did.
type SuiteResult struct {
	// Completed counts experiments whose output was emitted, whether
	// computed or resumed.
	Completed int
	// Resumed lists experiment ids replayed from the manifest.
	Resumed []string
	// Failures are all cell-level and experiment-level errors, in
	// deterministic (experiment, enqueue) order.
	Failures []*CellError
	// Interrupted is set when the run context was cancelled before every
	// experiment ran; the remaining experiments were skipped.
	Interrupted bool
	// Skipped lists experiment ids not run because of the interruption.
	Skipped []string
}

// Digest renders the run's failure summary for stderr: one line per
// failed cell plus the interruption note, suitable for a non-zero exit.
func (r *SuiteResult) Digest() string {
	var b bytes.Buffer
	if len(r.Failures) > 0 {
		byExp := map[string]bool{}
		for _, ce := range r.Failures {
			byExp[ce.Experiment] = true
		}
		fmt.Fprintf(&b, "%d cell(s) failed across %d experiment(s):\n", len(r.Failures), len(byExp))
		for _, ce := range r.Failures {
			fmt.Fprintf(&b, "  %s: %v\n", ce.CellLabel(), ce.Err)
		}
	}
	if r.Interrupted {
		fmt.Fprintf(&b, "interrupted: %d experiment(s) skipped", len(r.Skipped))
		for i, id := range r.Skipped {
			sep := " "
			if i > 0 {
				sep = ", "
			}
			fmt.Fprintf(&b, "%s%s", sep, id)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// manifestFingerprint identifies the run configuration a manifest's
// recorded output is valid for. Parallelism is deliberately absent: the
// cell scheduler's output is byte-identical at any worker count.
type manifestFingerprint struct {
	AccuracyBudget int64  `json:"accuracy_budget"`
	TimingBudget   int64  `json:"timing_budget"`
	EventModel     bool   `json:"event_model"`
	Format         string `json:"format"`
}

// manifestEntry records one completed experiment: its rendered chunk
// (verbatim for text/csv, a JSON array element for json) and the work
// counters for reporting.
type manifestEntry struct {
	Output       string          `json:"output,omitempty"`
	JSON         json.RawMessage `json:"json,omitempty"`
	WallMS       float64         `json:"wall_ms"`
	Cells        int64           `json:"cells"`
	Instructions int64           `json:"instructions"`
}

type manifest struct {
	Fingerprint manifestFingerprint       `json:"fingerprint"`
	Experiments map[string]*manifestEntry `json:"experiments"`
}

func loadManifest(path string, want manifestFingerprint) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &manifest{Fingerprint: want, Experiments: map[string]*manifestEntry{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("bench: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("bench: corrupt manifest %s: %w", path, err)
	}
	if m.Fingerprint != want {
		return nil, fmt.Errorf("bench: manifest %s was recorded with different settings (%+v, want %+v); delete it or rerun with the original flags",
			path, m.Fingerprint, want)
	}
	if m.Experiments == nil {
		m.Experiments = map[string]*manifestEntry{}
	}
	return &m, nil
}

// save writes the manifest atomically (temp file + rename) so a crash
// mid-save never leaves a truncated manifest behind.
func (m *manifest) save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// jsonExperiment is the element shape of the suite's JSON output.
type jsonExperiment struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Tables []*stats.Table `json:"tables"`
}

// runExperiment executes e with panic isolation at the experiment level:
// a panic escaping Run outside any cell (e.g. workload resolution) becomes
// a CellError instead of killing the suite.
func runExperiment(e *Experiment, p Params) (tables []*stats.Table, expErr *CellError) {
	defer func() {
		if v := recover(); v != nil {
			err, stack := recoveredErr(v)
			expErr = &CellError{Experiment: e.ID, Err: err, Stack: stack}
			p.fails.add(expErr)
		}
	}()
	return e.Run(p), nil
}

// renderChunk renders one experiment's output for text or csv format.
func renderChunk(format string, e *Experiment, tables []*stats.Table, expErr *CellError) (string, error) {
	var b bytes.Buffer
	switch format {
	case "text":
		fmt.Fprintf(&b, "== %s: %s ==\n\n", e.ID, e.Title)
		if expErr != nil {
			fmt.Fprintf(&b, "experiment failed: %v\n\n", expErr.Err)
		}
		for _, table := range tables {
			table.Render(&b)
			fmt.Fprintln(&b)
		}
	case "csv":
		for _, table := range tables {
			fmt.Fprintf(&b, "# %s: %s\n", e.ID, table.Title)
			if err := table.WriteCSV(&b); err != nil {
				return "", err
			}
		}
		if expErr != nil {
			fmt.Fprintf(&b, "# %s: experiment failed: %v\n", e.ID, expErr.Err)
		}
	default:
		return "", fmt.Errorf("bench: unknown output format %q", format)
	}
	return b.String(), nil
}

// RunSuite executes opts.Experiments under ctx and writes rendered output
// to opts.Out. It always finishes the experiment list unless ctx is
// cancelled; individual failures are isolated, rendered as ERR rows, and
// collected in the result. The returned error covers setup problems
// (unusable manifest, unknown format), not experiment failures.
func RunSuite(ctx context.Context, opts SuiteOptions) (*SuiteResult, error) {
	experiments := opts.Experiments
	if experiments == nil {
		experiments = All()
	}
	switch opts.Format {
	case "text", "csv", "json":
	default:
		return nil, fmt.Errorf("bench: unknown output format %q", opts.Format)
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}

	var man *manifest
	if opts.ManifestPath != "" {
		fp := manifestFingerprint{
			AccuracyBudget: opts.Params.AccuracyBudget,
			TimingBudget:   opts.Params.TimingBudget,
			EventModel:     opts.Params.EventModel,
			Format:         opts.Format,
		}
		var err error
		man, err = loadManifest(opts.ManifestPath, fp)
		if err != nil {
			return nil, err
		}
	}

	fails := &failureLog{}
	res := &SuiteResult{}
	// JSON output cannot stream per experiment: elements accumulate and
	// the array is encoded once at the end, so resumed and fresh chunks
	// are indented identically.
	var jsonElems []json.RawMessage

	report := func(r ExperimentReport) {
		if opts.OnExperiment != nil {
			opts.OnExperiment(r)
		}
	}

	for _, e := range experiments {
		if ctx.Err() != nil {
			res.Interrupted = true
			res.Skipped = append(res.Skipped, e.ID)
			continue
		}

		if man != nil {
			if ent, ok := man.Experiments[e.ID]; ok {
				if opts.Format == "json" {
					jsonElems = append(jsonElems, ent.JSON)
				} else if _, err := io.WriteString(opts.Out, ent.Output); err != nil {
					return nil, err
				}
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "tcsim: %-16s resumed from %s\n", e.ID, opts.ManifestPath)
				}
				report(ExperimentReport{
					ID: e.ID, WallMS: ent.WallMS, Cells: ent.Cells,
					Instructions: ent.Instructions, Resumed: true,
				})
				res.Completed++
				res.Resumed = append(res.Resumed, e.ID)
				continue
			}
		}

		expCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			expCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		p := opts.Params.WithContext(expCtx).forExperiment(e.ID, fails)

		nBefore := len(fails.all())
		before := SnapshotStats()
		start := time.Now()
		tables, expErr := runExperiment(e, p)
		wall := time.Since(start)
		work := SnapshotStats().Sub(before)
		cancel()
		failed := len(fails.all()) > nBefore || expErr != nil

		var ent manifestEntry
		if opts.Format == "json" {
			raw, err := json.Marshal(jsonExperiment{e.ID, e.Title, tables})
			if err != nil {
				return nil, err
			}
			jsonElems = append(jsonElems, raw)
			ent.JSON = raw
		} else {
			chunk, err := renderChunk(opts.Format, e, tables, expErr)
			if err != nil {
				return nil, err
			}
			if _, err := io.WriteString(opts.Out, chunk); err != nil {
				return nil, err
			}
			ent.Output = chunk
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "tcsim: %-16s %8.1f ms  %4d cells  %12d instructions\n",
				e.ID, float64(wall.Microseconds())/1000, work.Cells, work.Instructions)
		}
		ent.WallMS = float64(wall.Microseconds()) / 1000
		ent.Cells = work.Cells
		ent.Instructions = work.Instructions
		report(ExperimentReport{
			ID: e.ID, WallMS: ent.WallMS, Cells: ent.Cells, Instructions: ent.Instructions,
		})
		res.Completed++

		// Checkpoint only clean experiments: failed or interrupted ones
		// must re-run on resume so the resumed output matches a healthy
		// uninterrupted run byte for byte.
		if man != nil && !failed {
			man.Experiments[e.ID] = &ent
			if err := man.save(opts.ManifestPath); err != nil {
				return nil, fmt.Errorf("bench: saving manifest: %w", err)
			}
		}
	}

	if opts.Format == "json" {
		enc := json.NewEncoder(opts.Out)
		enc.SetIndent("", "  ")
		var arr any
		if jsonElems != nil {
			arr = jsonElems
		}
		if err := enc.Encode(arr); err != nil {
			return nil, err
		}
	}

	res.Failures = fails.all()
	sortFailures(res.Failures, experiments)
	return res, nil
}

// sortFailures orders failures by experiment position (cell order within
// an experiment is already deterministic enqueue order).
func sortFailures(errs []*CellError, experiments []*Experiment) {
	rank := make(map[string]int, len(experiments))
	for i, e := range experiments {
		rank[e.ID] = i
	}
	sort.SliceStable(errs, func(i, j int) bool {
		return rank[errs[i].Experiment] < rank[errs[j].Experiment]
	})
}
