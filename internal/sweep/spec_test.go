package sweep

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAxis(t *testing.T) {
	tests := []struct {
		in   string
		want []int
	}{
		{"512", []int{512}},
		{" 7 ", []int{7}},
		{"1,2,4,8", []int{1, 2, 4, 8}},
		{"1, 2 , 4", []int{1, 2, 4}},
		{"64..1024*2", []int{64, 128, 256, 512, 1024}},
		{"64..1000*2", []int{64, 128, 256, 512}},
		{"3..3*2", []int{3}},
		{"2..10+4", []int{2, 6, 10}},
		{"2..11+4", []int{2, 6, 10}},
		{"5..5+1", []int{5}},
		{"1..4+1", []int{1, 2, 3, 4}},
	}
	for _, tt := range tests {
		got, err := ParseAxis(tt.in)
		if err != nil {
			t.Errorf("ParseAxis(%q): %v", tt.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ParseAxis(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseAxisRejects(t *testing.T) {
	for _, in := range []string{
		"", "x", "0", "-4", "1..8", "8..1*2", "4..16*1", "1..8*0",
		"1,2,x", "1..1073741825+1", "1073741825",
		"1..1000000+1", // expands past maxAxisValues
	} {
		if got, err := ParseAxis(in); err == nil {
			t.Errorf("ParseAxis(%q) = %v, want error", in, got)
		}
	}
}

func TestParseSpecExample(t *testing.T) {
	spec, err := ParseSpec([]byte(ExampleSpec))
	if err != nil {
		t.Fatalf("ExampleSpec does not parse: %v", err)
	}
	ex, err := spec.Expand()
	if err != nil {
		t.Fatalf("ExampleSpec does not expand: %v", err)
	}
	if len(ex.Points) == 0 {
		t.Fatal("ExampleSpec expands to no points")
	}
	// The expansion covers every family the example names.
	families := map[string]bool{}
	for _, p := range ex.Points {
		families[p.Family] = true
	}
	for _, f := range []string{"btb", "tagless", "tagged", "cascaded", "ittage"} {
		if !families[f] {
			t.Errorf("ExampleSpec expansion has no %s points", f)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	tests := []struct {
		name, spec, errSub string
	}{
		{"unknown field",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb","entriez":[4]}]}`,
			"unknown field"},
		{"trailing data",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb"}]} {"again":1}`,
			"trailing data"},
		{"unknown family",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"tage"}]}`,
			"unknown family"},
		{"unknown scheme",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb","schemes":["3bit"]}]}`,
			"unknown scheme"},
		{"inapplicable axis",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"tagless","ways":[2]}]}`,
			"does not apply"},
		{"history on btb",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb","history":["pattern"]}]}`,
			"does not apply"},
		{"unknown history",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"tagless","history":["global"]}]}`,
			"unknown history"},
		{"zero budget",
			`{"name":"x","budget":0,"workloads":["perl"],"grids":[{"family":"btb"}]}`,
			"budget"},
		{"no workloads",
			`{"name":"x","budget":1,"workloads":[],"grids":[{"family":"btb"}]}`,
			"workload"},
		{"duplicate workload",
			`{"name":"x","budget":1,"workloads":["perl","perl"],"grids":[{"family":"btb"}]}`,
			"duplicate"},
		{"no grids",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[]}`,
			"grid"},
		{"bad name",
			`{"name":"a b","budget":1,"workloads":["perl"],"grids":[{"family":"btb"}]}`,
			"name"},
		{"axis value zero",
			`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb","entries":[0]}]}`,
			"out of range"},
		{"not json",
			`nonsense`,
			"bad spec"},
	}
	for _, tt := range tests {
		_, err := ParseSpec([]byte(tt.spec))
		if err == nil {
			t.Errorf("%s: parsed, want error containing %q", tt.name, tt.errSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.errSub) {
			t.Errorf("%s: error %q does not contain %q", tt.name, err, tt.errSub)
		}
	}
}

// TestExpandSkipsInvalidCombinations pins the skip-and-count policy: a
// range axis may sweep past a family constraint at some corners, and
// those corners are dropped and counted rather than failing the sweep.
func TestExpandSkipsInvalidCombinations(t *testing.T) {
	// GAs over 64 entries (6 index bits) with history depths 4..8: depths
	// 7 and 8 cannot fit and are skipped.
	spec, err := ParseSpec([]byte(`{
		"name": "gas-corner", "budget": 1000, "workloads": ["perl"],
		"grids": [{"family": "tagless", "schemes": ["gas"], "entries": [64], "hist_bits": "4..8+1"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points) != 3 || ex.SkippedInvalid != 2 {
		t.Fatalf("got %d points, %d skipped; want 3 points, 2 skipped", len(ex.Points), ex.SkippedInvalid)
	}
}

// TestExpandAllInvalid pins that a spec whose every combination is
// invalid errors out instead of yielding an empty sweep.
func TestExpandAllInvalid(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "impossible", "budget": 1000, "workloads": ["perl"],
		"grids": [{"family": "btb", "entries": [4], "ways": [8]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); err == nil || !strings.Contains(err.Error(), "no runnable points") {
		t.Fatalf("Expand = %v, want no-runnable-points error", err)
	}
}

// TestExpandDeterministicOrder pins the canonical expansion order that
// shard indices, manifests and reports all key off.
func TestExpandDeterministicOrder(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "order", "budget": 1000, "workloads": ["perl", "gcc"],
		"grids": [
			{"family": "btb", "entries": [1024, 2048], "ways": [4]},
			{"family": "tagless", "schemes": ["gag", "gshare"], "entries": [512]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, p := range ex.Points {
		keys = append(keys, p.Key())
	}
	want := []string{
		"perl/btb-default-e1024-w4",
		"perl/btb-default-e2048-w4",
		"perl/tagless-gag-e512-h9-pattern",
		"perl/tagless-gshare-e512-h9-pattern",
		"gcc/btb-default-e1024-w4",
		"gcc/btb-default-e2048-w4",
		"gcc/tagless-gag-e512-h9-pattern",
		"gcc/tagless-gshare-e512-h9-pattern",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("expansion order:\n got %v\nwant %v", keys, want)
	}
}

// TestFingerprintSensitivity: the resume fingerprint must change when the
// spec or the shard size changes, and must NOT depend on anything else.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Spec {
		s, err := ParseSpec([]byte(`{
			"name": "fp", "budget": 1000, "workloads": ["perl"],
			"grids": [{"family": "btb", "entries": [1024]}]
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := base()
	if a.Fingerprint(32) != base().Fingerprint(32) {
		t.Error("identical specs produced different fingerprints")
	}
	if a.Fingerprint(32) == a.Fingerprint(16) {
		t.Error("shard size does not affect the fingerprint")
	}
	b := base()
	b.Budget = 2000
	if a.Fingerprint(32) == b.Fingerprint(32) {
		t.Error("budget does not affect the fingerprint")
	}
}
