package sweep

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the spec parser — the axis range DSL, the JSON
// shapes, the validation tables — with arbitrary bytes. The property:
// ParseSpec either errors or returns a spec whose expansion terminates
// within the documented bounds; it never panics and never silently
// accepts a spec that then fails its own Validate.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(ExampleSpec))
	f.Add([]byte(diffSpec))
	f.Add([]byte(resumeSpec))
	f.Add([]byte(`{"name":"x","budget":1,"workloads":["perl"],"grids":[{"family":"btb"}]}`))
	f.Add([]byte(`{"name":"x","budget":1,"workloads":["w"],"grids":[{"family":"tagless","schemes":["gas"],"entries":"64..4096*2","hist_bits":"1..16+1"}]}`))
	f.Add([]byte(`{"name":"x","budget":1,"workloads":["w"],"grids":[{"family":"ittage","tables":"1..6+1","tag_bits":[4,32]}]}`))
	f.Add([]byte(`{"name":"x","budget":9,"workloads":["a","b"],"grids":[{"family":"cascaded","history":["path-peraddr"],"stage1_entries":[64]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted a spec its own Validate rejects: %v", err)
		}
		ex, err := spec.Expand()
		if err != nil {
			// Expansion may legitimately reject (all-invalid grids, point
			// bound) — but only with a sweep error, not a panic.
			if !strings.Contains(err.Error(), "sweep:") {
				t.Fatalf("Expand error without package prefix: %v", err)
			}
			return
		}
		if len(ex.Points) == 0 || len(ex.Points) > maxPoints {
			t.Fatalf("Expand returned %d points outside (0, %d]", len(ex.Points), maxPoints)
		}
		// Every expanded point must be individually valid and priceable.
		for _, p := range ex.Points[:min(len(ex.Points), 64)] {
			if err := p.Validate(); err != nil {
				t.Fatalf("expansion emitted invalid point %s: %v", p.Key(), err)
			}
			if bits, err := p.StorageBits(); err != nil || bits <= 0 {
				t.Fatalf("point %s: StorageBits = %d, %v", p.Key(), bits, err)
			}
		}
	})
}

// FuzzParseAxis exercises the compact range DSL on its own: whatever the
// input, ParseAxis must terminate and either error or return values
// inside the documented bounds.
func FuzzParseAxis(f *testing.F) {
	for _, seed := range []string{
		"512", "1,2,4,8", "64..1024*2", "2..10+4", "1..4096+1",
		"..", "*", "+", "5..5*2", "1..1073741824*2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := ParseAxis(s)
		if err != nil {
			return
		}
		if len(vals) == 0 || len(vals) > maxAxisValues {
			t.Fatalf("ParseAxis(%q) returned %d values", s, len(vals))
		}
		for _, v := range vals {
			if v < 1 || v > maxAxisValue {
				t.Fatalf("ParseAxis(%q) returned out-of-range %d", s, v)
			}
		}
	})
}
