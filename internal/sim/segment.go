package sim

// Segment-parallel accuracy replay: one capture's block stream is split
// into K segments simulated concurrently inside a single cell. Every
// predictor structure (BTB, RAS, direction predictor, history register,
// target cache) is a deterministic function of the branch stream consumed
// so far, so a worker that first *primes* its engine over the full prefix
// [0, seam) — performing exactly the state mutations the real kernel
// would, but accumulating no results — and then simulates [seam, next)
// produces byte-identical per-record outcomes to the streaming run.
// Results join in segment order; TestSegmentedMatchesStreaming pins the
// equivalence across segment counts, seam positions and predictor
// configurations.
//
// Priming costs strictly less than simulating (no counters, no direction
// lookup, no result bookkeeping), but every worker still walks the whole
// prefix: total work grows with K even as the critical path shrinks. The
// seams are therefore placed geometrically (early segments long, late
// segments short) so each worker's prime+simulate cost is equal; see
// planSegments. The timing model is not segmented: its pipeline rings and
// data cache are consumed by the very instructions that build them, so a
// "prime" would have to run the full scheduling model anyway, saving
// nothing.

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/trace"
)

// primeCostRatio is the measured cost of priming one record relative to
// simulating it (the mutation-only walk skips result bookkeeping but
// still probes every structure). Only seam placement depends on it;
// correctness does not.
const primeCostRatio = 0.75

// minSegmentSpan is the smallest worthwhile segment: below two blocks the
// goroutine and priming overhead dwarfs the simulated span.
const minSegmentSpan = 2 * trace.BlockLen

// Package-wide segment counters for run-level telemetry.
var (
	segmentedRuns      atomic.Int64
	segmentsExecuted   atomic.Int64
	warmupInstructions atomic.Int64
)

// SegmentStats is a snapshot of the process-wide segmented-replay
// counters: runs that took the segmented path, segments executed, and
// total warm-up (priming) instructions replayed before seams.
type SegmentStats struct {
	SegmentedRuns      int64
	SegmentsExecuted   int64
	WarmupInstructions int64
}

// SegmentCounters returns process-wide segmented-replay activity.
func SegmentCounters() SegmentStats {
	return SegmentStats{
		SegmentedRuns:      segmentedRuns.Load(),
		SegmentsExecuted:   segmentsExecuted.Load(),
		WarmupInstructions: warmupInstructions.Load(),
	}
}

// RunAccuracySegmented is RunAccuracy with the capture split into up to
// `segments` concurrently simulated segments.
func RunAccuracySegmented(factory trace.Factory, budget int64, segments int, cfg Config) AccuracyResult {
	return RunAccuracySegmentedCtx(context.Background(), factory, budget, segments, cfg)
}

// RunAccuracySegmentedCtx runs the accuracy model over factory's first
// budget instructions using up to `segments` concurrent workers, joining
// their results in order. The merged result is byte-identical to
// RunAccuracyCtx over the same inputs. Runs that cannot be segmented
// without observable differences fall back to the plain path untouched:
// telemetry collection (events carry stream-order clocks), periodic
// flushes (Reset is a global stream position effect), non-batched
// factories, and captures too small to split.
func RunAccuracySegmentedCtx(ctx context.Context, factory trace.Factory, budget int64, segments int, cfg Config) AccuracyResult {
	bs, ok := blocksFor(factory)
	if !ok || segments <= 1 || cfg.Telemetry != nil {
		return RunAccuracyCtx(ctx, factory, budget, cfg)
	}
	limit := budget
	if limit < 0 {
		limit = 0
	}
	effN := limit
	if clean := bs.CleanLen(); clean < effN {
		effN = clean
	}
	seams := planSegments(effN, segments)
	if len(seams) < 3 {
		return RunAccuracyCtx(ctx, factory, budget, cfg)
	}

	segmentedRuns.Add(1)
	nseg := len(seams) - 1
	segmentsExecuted.Add(int64(nseg))
	results := make([]AccuracyResult, nseg)
	var wg sync.WaitGroup
	for k := 0; k < nseg; k++ {
		start, end := seams[k], seams[k+1]
		if k == nseg-1 {
			// The last segment carries the caller's full budget so the
			// kernel's tail check (budget reaching past the clean prefix)
			// fires exactly as it does on the streaming path.
			end = limit
		}
		warmupInstructions.Add(start)
		wg.Add(1)
		go func(k int, start, end int64) {
			defer wg.Done()
			results[k] = runSegment(ctx, bs, start, end, cfg)
		}(k, start, end)
	}
	wg.Wait()
	return mergeSegments(results)
}

// planSegments places K-1 seams over [0, effN) so that every worker's
// prime-plus-simulate cost is equal. Worker k primes [0, s_k) at
// primeCostRatio per record and simulates [s_k, s_k+1) at unit cost;
// balancing gives the geometric recurrence s_k+1 = β·s_k + C with
// β = 1-primeCostRatio and C = effN·(1-β)/(1-β^K). Seams are rounded
// down to block boundaries (the kernel seeks by whole blocks) and
// degenerate segments are dropped. The returned boundaries start at 0 and
// end at effN; fewer than three boundaries means segmentation is not
// worth it for this capture.
func planSegments(effN int64, segments int) []int64 {
	if maxSeg := int(effN / minSegmentSpan); segments > maxSeg {
		segments = maxSeg
	}
	if segments < 2 {
		return nil
	}
	const beta = 1 - primeCostRatio
	// C = effN·(1-β)/(1-β^K)
	betaK := 1.0
	for i := 0; i < segments; i++ {
		betaK *= beta
	}
	c := float64(effN) * (1 - beta) / (1 - betaK)
	seams := make([]int64, 0, segments+1)
	seams = append(seams, 0)
	s := 0.0
	for k := 1; k < segments; k++ {
		s = beta*s + c
		seam := (int64(s) / trace.BlockLen) * trace.BlockLen
		if prev := seams[len(seams)-1]; seam < prev+minSegmentSpan {
			continue
		}
		if seam > effN-minSegmentSpan {
			break
		}
		seams = append(seams, seam)
	}
	return append(seams, effN)
}

// mergeSegments joins per-segment results in order, stopping at the
// first segment that ended early (cancellation or a corrupt tail): its
// partial counts are included, later segments are discarded, mirroring
// how far a streaming run would have progressed.
func mergeSegments(results []AccuracyResult) AccuracyResult {
	var merged AccuracyResult
	for _, res := range results {
		merged.Instructions += res.Instructions
		merged.Branches += res.Branches
		merged.TCCovered += res.TCCovered
		merged.Conditional.Add(res.Conditional)
		merged.Direct.Add(res.Direct)
		merged.Returns.Add(res.Returns)
		merged.Indirect.Add(res.Indirect)
		merged.Overall.Add(res.Overall)
		if res.Err != nil {
			merged.Err = res.Err
			break
		}
	}
	return merged
}

// runSegment builds a fresh engine, primes it over [0, start) and
// simulates [start, end), dispatching over the engine's concrete types
// exactly like runAccuracyEngine so prime and simulate devirtualize the
// same instances.
func runSegment(ctx context.Context, bs trace.BlockSource, start, end int64, cfg Config) AccuracyResult {
	engine := NewEngine(cfg)
	switch tc := engine.TC.(type) {
	case nil:
		return segmentKernel(ctx, bs, start, end, engine, noTC{}, noHist{}, false)
	case *core.Tagless:
		return segDispatchHist(ctx, bs, start, end, engine, tc, false)
	case *core.Tagged:
		return segDispatchHist(ctx, bs, start, end, engine, tc, true)
	case *core.Cascaded:
		return segDispatchHist(ctx, bs, start, end, engine, tc, true)
	case *core.ITTAGE:
		return segDispatchHist(ctx, bs, start, end, engine, tc, false)
	case *core.Chooser:
		return segDispatchHist(ctx, bs, start, end, engine, tc, true)
	}
	// Unknown target-cache implementations are primed conservatively, as
	// if their Predict mutated internal state.
	return segmentKernel[core.TargetCache, history.Provider](ctx, bs, start, end, engine, engine.TC, engine.Hist, true)
}

func segDispatchHist[TC targetCache](ctx context.Context, bs trace.BlockSource, start, end int64, engine *Engine, tc TC, tcMutates bool) AccuracyResult {
	switch h := engine.Hist.(type) {
	case history.PatternProvider:
		return segmentKernel(ctx, bs, start, end, engine, tc, h, tcMutates)
	case *history.Path:
		return segmentKernel(ctx, bs, start, end, engine, tc, h, tcMutates)
	}
	return segmentKernel[TC, history.Provider](ctx, bs, start, end, engine, tc, engine.Hist, tcMutates)
}

func segmentKernel[TC targetCache, H historySource](
	ctx context.Context, bs trace.BlockSource, start, end int64,
	engine *Engine, tc TC, hist H, tcMutates bool,
) AccuracyResult {
	if start > 0 {
		if err := primeKernel(ctx, bs, start, engine, tc, hist, tcMutates); err != nil {
			return AccuracyResult{Err: err}
		}
	}
	return accuracyKernel(ctx, bs, start, end, 0, engine, tc, hist)
}

// primeKernel replays records [0, end) through the engine's predictor
// structures performing every state mutation the accuracy kernel would —
// and nothing else. Per branch the full kernel mutates:
//
//   - the BTB, on every probe (replacement tick) and on update;
//   - the target cache, on Predict for implementations whose lookup
//     ticks internal replacement state (tagged/cascaded/chooser;
//     tcMutates selects this) and on Update for indirect jumps;
//   - the RAS on calls and returns, the direction predictor on
//     conditionals, and the history register on every branch.
//
// The full kernel reaches tc.Predict exactly when the BTB hit and the
// hit entry's class is indirect: for those classes the predicted-taken
// flag is unconditionally true, so the direction predictor (whose
// Predict is pure) cannot gate it. Everything else the kernel computes —
// direction lookups, RAS peeks, correctness checks, counters — reads
// state without writing it and is skipped here.
func primeKernel[TC targetCache, H historySource](
	ctx context.Context, bs trace.BlockSource, end int64,
	engine *Engine, tc TC, hist H, tcMutates bool,
) error {
	btbT, ras, dir := engine.BTB, engine.RAS, engine.Dir
	if clean := bs.CleanLen(); clean < end {
		end = clean
	}
	var insns int64
	var r trace.Record
	for bi := 0; insns < end; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			return err
		}
		base := int64(bi) * trace.BlockLen
		meta := blk.Meta
		m := len(meta)
		if rem := end - base; int64(m) > rem {
			m = int(rem)
		}
		meta = meta[:m]
		pcs := blk.PC[:m]
		tgts := blk.Target[:m]
		addrs := blk.Addr[:m]
		for i := 0; i < m; i++ {
			insns = base + int64(i) + 1
			if insns&ctxCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			mb := meta[i]
			cls := trace.Class(mb & trace.MetaClassMask)
			if cls == trace.ClassOther {
				continue
			}
			r.PC = pcs[i]
			r.Target = tgts[i]
			r.Addr = addrs[i]
			r.Class = cls
			r.Op = trace.OpClass(mb >> trace.MetaOpShift & trace.MetaOpMask)
			r.Taken = mb&trace.MetaTaken != 0

			entry, bref, hit := btbT.Probe(r.PC)
			indirect := cls == trace.ClassIndJump || cls == trace.ClassIndCall
			var ph uint64
			if indirect {
				ph = hist.Value(r.PC)
			}
			if tcMutates && hit && (entry.Class == trace.ClassIndJump || entry.Class == trace.ClassIndCall) {
				tc.Predict(r.PC, hist.Value(r.PC))
			}
			if cls == trace.ClassCall || cls == trace.ClassIndCall {
				ras.Push(r.FallThrough())
			}
			if cls == trace.ClassReturn {
				ras.Pop()
			}
			if cls == trace.ClassCondDirect {
				dir.Update(r.PC, r.Taken)
			}
			if indirect {
				tc.Update(r.PC, ph, r.Target)
			}
			hist.Observe(&r)
			if hit {
				btbT.UpdateHit(bref, &r)
			} else {
				btbT.Update(&r)
			}
		}
	}
	return nil
}
