// Design-space exploration: the tagged-vs-tagless trade at equal hardware
// budget (the paper's Figures 12-13 plus the Section 4.2 cost model).
//
// A tagless target cache spends its entire budget on entries; a tagged
// cache spends part of it on tags in exchange for immunity to
// interference. The paper's finding: tagless beats tagged at low
// associativity (conflict misses dominate), but a tagged cache with four
// or more ways beats the tagless cache. This example sweeps associativity
// for both structures on every workload and prints misprediction and cost.
package main

import (
	"fmt"

	"repro"
)

const budget = 1_000_000

func main() {
	// Cost accounting (Section 4.2 of the paper).
	tagless := repro.NewTagless(repro.TaglessConfig{Entries: 512, Scheme: repro.SchemeGshare})
	fmt.Printf("tagless 512 entries: %d bits\n", tagless.CostBits())
	for _, ways := range []int{1, 4, 16} {
		tagged := repro.NewTagged(repro.TaggedConfig{
			Entries: 256, Ways: ways, Scheme: repro.SchemeHistoryXor, HistBits: 9,
		})
		fmt.Printf("tagged 256 entries %2d-way: %d bits\n", ways, tagged.CostBits())
	}

	fmt.Printf("\n%-10s %14s", "benchmark", "tagless(512)")
	assocs := []int{1, 2, 4, 8, 16}
	for _, a := range assocs {
		fmt.Printf(" %8s", fmt.Sprintf("tag/%dw", a))
	}
	fmt.Println()

	for _, w := range repro.Workloads() {
		taglessCfg := repro.BaselineConfig().WithTargetCache(
			func() repro.TargetCache {
				return repro.NewTagless(repro.TaglessConfig{Entries: 512, Scheme: repro.SchemeGshare})
			},
			func() repro.History { return repro.NewPatternHistory(9) },
		)
		res := repro.RunAccuracy(w, budget, taglessCfg)
		fmt.Printf("%-10s %13.2f%%", w.Name, 100*res.IndirectMispredictRate())
		for _, ways := range assocs {
			ways := ways
			cfg := repro.BaselineConfig().WithTargetCache(
				func() repro.TargetCache {
					return repro.NewTagged(repro.TaggedConfig{
						Entries: 256, Ways: ways,
						Scheme: repro.SchemeHistoryXor, HistBits: 9,
					})
				},
				func() repro.History { return repro.NewPatternHistory(9) },
			)
			r := repro.RunAccuracy(w, budget, cfg)
			fmt.Printf(" %7.2f%%", 100*r.IndirectMispredictRate())
		}
		fmt.Println()
	}
	fmt.Println("\npaper: tagless beats 1-way tagged; tagged with >=4 ways beats tagless")
}
