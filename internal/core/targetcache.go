// Package core implements the paper's primary contribution: the target
// cache, a prediction mechanism for indirect-jump targets (Section 3).
//
// A target cache is indexed with the indirect jump's fetch address combined
// with branch history, so that different dynamic occurrences of the same
// jump — which tend to go to different targets — map to different entries.
// When the jump is fetched the selected entry supplies the predicted
// target; when the jump retires, the entry selected by the same index is
// updated with the computed target.
//
// Two structures are provided, matching Sections 3.2 and 4:
//
//   - Tagless: a direct table of targets, analogous to the pattern history
//     table of a two-level direction predictor but recording target
//     addresses instead of directions. Index hashing variants: GAg, GAs,
//     gshare.
//   - Tagged: a set-associative cache of targets with tags, eliminating
//     interference between unrelated branches at the cost of storage.
//     Index/tag split variants: Address, History-Concatenate, History-XOR.
package core

import (
	"fmt"
	"math/bits"
)

// TargetCache is the interface shared by the tagless and tagged variants,
// used by the simulation drivers.
type TargetCache interface {
	// Predict returns the predicted target for the indirect jump at pc
	// given the current branch history. ok is false when the cache has no
	// prediction (tagged miss, or never-written tagless entry).
	Predict(pc, hist uint64) (target uint64, ok bool)
	// Update records the computed target for the jump at pc under the
	// history value that was current when the jump was fetched.
	Update(pc, hist, target uint64)
	// CostBits returns the storage cost in bits under the paper's
	// accounting.
	CostBits() int
	// Reset clears all entries.
	Reset()
}

func log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("core: %d is not a positive power of two", n))
	}
	return bits.TrailingZeros(uint(n))
}
