// Quickstart: predict the indirect jumps of the perl-like interpreter
// workload with a BTB alone and with a target cache, and print the
// misprediction rates — the paper's headline comparison in a dozen lines.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	w, err := repro.WorkloadByName("perl")
	if err != nil {
		log.Fatal(err)
	}
	const budget = 1_000_000

	// Baseline: the paper's 1K-entry 4-way BTB predicts each indirect jump
	// as its last computed target.
	base := repro.RunAccuracy(w, budget, repro.BaselineConfig())

	// Target cache: 512-entry tagless table, gshare-indexed with 9 bits of
	// global pattern history.
	cfg := repro.BaselineConfig().WithTargetCache(
		func() repro.TargetCache {
			return repro.NewTagless(repro.TaglessConfig{
				Entries: 512,
				Scheme:  repro.SchemeGshare,
			})
		},
		func() repro.History { return repro.NewPatternHistory(9) },
	)
	tc := repro.RunAccuracy(w, budget, cfg)

	fmt.Printf("workload: %s (%d indirect jumps in %d instructions)\n",
		w.Name, base.Indirect.Predictions, base.Instructions)
	fmt.Printf("BTB indirect misprediction rate:          %6.2f%%\n",
		100*base.IndirectMispredictRate())
	fmt.Printf("target cache indirect misprediction rate: %6.2f%%\n",
		100*tc.IndirectMispredictRate())
	fmt.Printf("relative reduction:                       %6.2f%%\n",
		100*(1-tc.IndirectMispredictRate()/base.IndirectMispredictRate()))
}
