package main

// The diff engine: load N-repetition snapshots per side, group them into
// per-experiment samples, and compare old vs. new with real statistics —
// median + order-statistic confidence interval per side, Mann-Whitney U
// p-value per row, and a gate that fires only on statistically
// significant regressions past a practical-significance floor.
//
// The retired gate compared two single runs against a 10% threshold,
// which conflates two questions the statistics here separate:
//
//   - is the difference real? (significance: the p-value against -alpha)
//   - is it big enough to care? (practical floor: delta against -tolerance)
//
// A single pair of runs can easily differ by 14% of pure scheduler
// noise (the seeded-noise test proves it); five quiet runs per side can
// confidently call a 2% shift.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/benchmath"
	"repro/internal/benchproc"
)

// options carry every flag runDiff needs, so tests drive it directly.
type options struct {
	alpha      float64 // significance level for the Mann-Whitney test
	tolerance  float64 // practical floor: smaller significant regressions do not gate
	confidence float64 // level for the per-side confidence intervals
	maxNoise   float64 // CI half-width fraction above which a row is too noisy to call
	filter     string  // benchproc filter expression
	groupBy    string  // benchproc projection for row keys
	uploadURL  string
	commit     string
	experiment string
}

func defaultOptions() options {
	return options{
		alpha:      0.05,
		tolerance:  0.01,
		confidence: 0.95,
		maxNoise:   0.25,
		groupBy:    "exp",
	}
}

// verdict classifies one row's comparison.
type verdict string

const (
	verdictRegression  verdict = "regression"  // significant and past the tolerance floor: gates
	verdictImprovement verdict = "improvement" // significant and faster
	verdictSmall       verdict = "small"       // significant but under the tolerance floor
	verdictNone        verdict = "none"        // no significant difference
	verdictNoisy       verdict = "noisy"       // CI too wide to support any call
	verdictFewRuns     verdict = "few-runs"    // n < 2 on a side: no interval, no test power
	verdictGone        verdict = "gone"        // experiment only in OLD
	verdictNew         verdict = "new"         // experiment only in NEW
)

// row is one rendered comparison.
type row struct {
	Key     string             `json:"key"`
	Old     *benchmath.Summary `json:"old,omitempty"` // ms
	New     *benchmath.Summary `json:"new,omitempty"` // ms
	P       float64            `json:"p"`             // NaN when no test ran
	Delta   float64            `json:"delta"`         // fractional change of medians
	Verdict verdict            `json:"verdict"`
}

// runDiff is the whole program behind flag parsing; it returns the
// process exit code. Each side argument is a comma-separated list of
// snapshot files, every file either Go benchmark format (`tcsim
// -benchfmt`, possibly with `-count` reps) or legacy bench JSON
// (`tcsim -benchjson`). Every (file, rep) contributes one sample.
func runDiff(opts options, oldArg, newArg string, stdout, stderr io.Writer) int {
	filter, err := benchproc.NewFilter(opts.filter)
	if err != nil {
		fmt.Fprintln(stderr, "tcbenchdiff:", err)
		return 2
	}
	proj, err := benchproc.NewProjection(opts.groupBy)
	if err != nil {
		fmt.Fprintln(stderr, "tcbenchdiff:", err)
		return 2
	}
	oldS, err := loadSide(oldArg, filter, proj, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "tcbenchdiff:", err)
		return 1
	}
	newS, err := loadSide(newArg, filter, proj, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "tcbenchdiff:", err)
		return 1
	}

	rows := compare(opts, oldS, newS)
	render(rows, stdout)

	// Upload before the verdict: a regressed measurement is still a
	// measurement, and the trend endpoint is how cross-commit regressions
	// get spotted in the first place.
	if opts.uploadURL != "" {
		if err := uploadAll(opts, newArg, rows); err != nil {
			fmt.Fprintln(stderr, "tcbenchdiff: upload:", err)
			return 1
		}
	}

	var regressions []string
	for _, r := range rows {
		if r.Verdict == verdictRegression {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s -> %s (%+.1f%%, p=%.3f)", r.Key,
					formatMS(r.Old.Center), formatMS(r.New.Center), 100*r.Delta, r.P))
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "tcbenchdiff: %d statistically significant regression(s) (p < %g, slowdown >= %.0f%%):\n",
			len(regressions), opts.alpha, opts.tolerance*100)
		for _, r := range regressions {
			fmt.Fprintln(stderr, "  "+r)
		}
		return 1
	}
	return 0
}

// loadSide reads one side's snapshot list into per-key samples of wall
// milliseconds.
func loadSide(arg string, filter *benchproc.Filter, proj *benchproc.Projection, stderr io.Writer) (map[string][]float64, error) {
	samples := map[string][]float64{}
	for _, path := range strings.Split(arg, ",") {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		results, err := parseSnapshot(path, data, stderr)
		if err != nil {
			return nil, err
		}
		for i := range results {
			r := &results[i]
			if !filter.Match(r) {
				continue
			}
			ns, ok := r.Value("ns/op")
			if !ok {
				continue
			}
			key := proj.Project(r)
			samples[key] = append(samples[key], ns/1e6)
		}
	}
	return samples, nil
}

// legacyEntry mirrors one experiment's record in `tcsim -benchjson`
// output, the pre-benchfmt snapshot format this tool keeps accepting.
type legacyEntry struct {
	WallMS       float64 `json:"wall_ms"`
	Cells        int64   `json:"cells"`
	Instructions int64   `json:"instructions"`
}

// parseSnapshot turns one snapshot file into benchfmt results. Legacy
// JSON entries are synthesized into the same shape benchfmt yields
// ("BenchmarkSuite/exp=<id>"), so filters and projections treat both
// formats identically.
func parseSnapshot(path string, data []byte, stderr io.Writer) ([]benchfmt.Result, error) {
	if isLegacyJSON(data) {
		var m map[string]legacyEntry
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		results := make([]benchfmt.Result, 0, len(m))
		for _, name := range names {
			e := m[name]
			results = append(results, benchfmt.Result{
				FullName: "BenchmarkSuite/exp=" + name,
				Iters:    1,
				Values: []benchfmt.Value{
					{Value: e.WallMS * 1e6, Unit: "ns/op"},
					{Value: float64(e.Cells), Unit: "cells/op"},
					{Value: float64(e.Instructions), Unit: "instrs/op"},
				},
			})
		}
		return results, nil
	}
	results, problems, err := benchfmt.ReadAll(bytes.NewReader(data), path)
	if err != nil {
		return nil, err
	}
	for _, p := range problems {
		fmt.Fprintln(stderr, "tcbenchdiff: warning:", p)
	}
	return results, nil
}

// isLegacyJSON sniffs a snapshot: benchjson documents are a JSON object.
func isLegacyJSON(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// compare builds the comparison rows for the union of keys, sorted.
func compare(opts options, oldS, newS map[string][]float64) []row {
	keys := map[string]bool{}
	for k := range oldS {
		keys[k] = true
	}
	for k := range newS {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	rows := make([]row, 0, len(sorted))
	for _, key := range sorted {
		rows = append(rows, compareKey(opts, key, oldS[key], newS[key]))
	}
	return rows
}

// compareKey classifies one experiment. The decision order matters:
// missing sides first, then sample-size sufficiency, then the
// variance-aware noise skip, then the significance test. The noise skip
// comes before significance because a test over garbage samples can
// still produce a small p — "too noisy to call" must win.
func compareKey(opts options, key string, oldV, newV []float64) row {
	r := row{Key: key, P: math.NaN()}
	if len(newV) == 0 {
		sum := benchmath.NewSample(oldV).Summary(opts.confidence)
		r.Old, r.Verdict = &sum, verdictGone
		return r
	}
	if len(oldV) == 0 {
		sum := benchmath.NewSample(newV).Summary(opts.confidence)
		r.New, r.Verdict = &sum, verdictNew
		return r
	}
	oldSum := benchmath.NewSample(oldV).Summary(opts.confidence)
	newSum := benchmath.NewSample(newV).Summary(opts.confidence)
	r.Old, r.New = &oldSum, &newSum
	if oldSum.Center != 0 {
		r.Delta = newSum.Center/oldSum.Center - 1
	}
	if test, err := benchmath.MannWhitneyUTest(oldV, newV); err == nil {
		r.P = test.P
	}
	switch {
	case oldSum.N < 2 || newSum.N < 2:
		// One run is a point, not a distribution: no interval, and the
		// rank test cannot reach significance. Report, never gate.
		r.Verdict = verdictFewRuns
	case oldSum.Noise() > opts.maxNoise || newSum.Noise() > opts.maxNoise:
		r.Verdict = verdictNoisy
	case r.P < opts.alpha && r.Delta >= opts.tolerance:
		r.Verdict = verdictRegression
	case r.P < opts.alpha && r.Delta < 0:
		r.Verdict = verdictImprovement
	case r.P < opts.alpha:
		r.Verdict = verdictSmall
	default:
		r.Verdict = verdictNone
	}
	return r
}

// render prints the comparison table.
func render(rows []row, w io.Writer) {
	fmt.Fprintf(w, "%-18s %22s %22s %8s %7s\n", "experiment", "old", "new", "delta", "p")
	var oldTotal, newTotal float64
	bothSides := 0
	for _, r := range rows {
		note := ""
		switch r.Verdict {
		case verdictGone:
			fmt.Fprintf(w, "%-18s %22s %22s %8s %7s  (gone)\n", r.Key, formatSide(r.Old), "-", "-", "-")
			continue
		case verdictNew:
			fmt.Fprintf(w, "%-18s %22s %22s %8s %7s  (new)\n", r.Key, "-", formatSide(r.New), "-", "-")
			continue
		case verdictRegression:
			note = "  REGRESSION"
		case verdictImprovement:
			note = "  improvement"
		case verdictSmall:
			note = "  (significant but within tolerance)"
		case verdictNoisy:
			note = fmt.Sprintf("  (too noisy to call: old %s, new %s)", r.Old.FormatCI(), r.New.FormatCI())
		case verdictFewRuns:
			note = "  (need >= 2 runs per side to call)"
		case verdictNone:
			note = "  ~"
		}
		oldTotal += r.Old.Center
		newTotal += r.New.Center
		bothSides++
		fmt.Fprintf(w, "%-18s %22s %22s %8s %7s%s\n",
			r.Key, formatSide(r.Old), formatSide(r.New), formatDelta(r.Delta), formatP(r.P), note)
	}
	if bothSides > 0 && newTotal > 0 {
		fmt.Fprintf(w, "%-18s %22s %22s %7.2fx\n", "TOTAL(medians)",
			formatMS(oldTotal), formatMS(newTotal), oldTotal/newTotal)
	}
}

// formatSide renders one side's summary: "22.0ms ±3.1% (n=5)".
func formatSide(s *benchmath.Summary) string {
	return fmt.Sprintf("%s %s (n=%d)", formatMS(s.Center), s.FormatCI(), s.N)
}

// formatMS renders a millisecond quantity at a tidy scale.
func formatMS(ms float64) string {
	return benchmath.FormatValue(ms*1e6, "ns")
}

func formatDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", 100*d)
}

func formatP(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.3f", p)
}
