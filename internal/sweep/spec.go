// Package sweep is the design-space exploration engine: it expands a
// declarative grid specification into thousands of fully-resolved
// (predictor configuration, workload) points, schedules them with
// work-stealing over the shared bounded worker pool, reuses the memoized
// capture store so every workload's trace decodes once per process, and
// checkpoints completed shards to an atomic resume manifest. Results
// aggregate into a Pareto frontier report — indirect-jump misprediction
// rate versus storage bits versus simulated work — rendered as text or
// CSV and publishable to a tcperf server as a sweep/v1 document.
//
// The paper itself is a design-space study (tables of target-cache
// geometries, history depths and predictor variants compared on accuracy);
// this package industrializes that method over every predictor family the
// repository has grown: the paper's tagless and tagged target caches, the
// BTB baselines (including modern multi-thousand-entry geometries), the
// cascaded predictor and ITTAGE.
package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Axis limits: a single axis may not expand beyond maxAxisValues values
// and every value must lie in [1, maxAxisValue]. The bounds reject
// degenerate specs (and fuzzer-constructed bombs) before any cross
// product is taken.
const (
	maxAxisValues = 4096
	maxAxisValue  = 1 << 30
)

// maxPoints bounds a spec's total expansion; crossing it is a spec error,
// not a truncation, so a sweep never silently drops part of its grid.
const maxPoints = 1 << 20

// Axis is one integer dimension of a grid: a set of values swept in
// order. In a spec file an axis is either a JSON number, a JSON array of
// numbers, or a string in the compact range syntax parsed by ParseAxis:
//
//	"512"          one value
//	"1,2,4,8"      an explicit list
//	"64..1024*2"   geometric: 64, 128, 256, 512, 1024
//	"2..10+4"      arithmetic: 2, 6, 10
type Axis struct {
	Values []int
}

// IsZero reports whether the axis was absent from the spec.
func (a Axis) IsZero() bool { return a.Values == nil }

// UnmarshalJSON accepts a number, an array of numbers, or a range string.
func (a *Axis) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return fmt.Errorf("sweep: empty axis")
	}
	switch trimmed[0] {
	case '"':
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		vals, err := ParseAxis(s)
		if err != nil {
			return err
		}
		a.Values = vals
		return nil
	case '[':
		var vals []int
		if err := json.Unmarshal(data, &vals); err != nil {
			return err
		}
		if err := checkAxisValues(vals); err != nil {
			return err
		}
		a.Values = vals
		return nil
	default:
		var v int
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if err := checkAxisValues([]int{v}); err != nil {
			return err
		}
		a.Values = []int{v}
		return nil
	}
}

// MarshalJSON renders the axis as its value list.
func (a Axis) MarshalJSON() ([]byte, error) { return json.Marshal(a.Values) }

// or returns the axis values, or the given defaults when the axis was
// absent from the spec.
func (a Axis) or(defaults ...int) []int {
	if a.IsZero() {
		return defaults
	}
	return a.Values
}

func checkAxisValues(vals []int) error {
	if len(vals) == 0 {
		return fmt.Errorf("sweep: axis expands to no values")
	}
	if len(vals) > maxAxisValues {
		return fmt.Errorf("sweep: axis expands to %d values (max %d)", len(vals), maxAxisValues)
	}
	for _, v := range vals {
		if v < 1 || v > maxAxisValue {
			return fmt.Errorf("sweep: axis value %d out of range [1, %d]", v, maxAxisValue)
		}
	}
	return nil
}

// ParseAxis parses the compact axis syntax: a single integer, a
// comma-separated list, or a range "lo..hi*step" (geometric) /
// "lo..hi+step" (arithmetic). Whitespace around tokens is ignored.
func ParseAxis(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("sweep: empty axis")
	}
	if strings.Contains(s, ",") {
		var vals []int
		for _, part := range strings.Split(s, ",") {
			v, err := parseAxisInt(part)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if len(vals) > maxAxisValues {
				return nil, fmt.Errorf("sweep: axis expands to more than %d values", maxAxisValues)
			}
		}
		if err := checkAxisValues(vals); err != nil {
			return nil, err
		}
		return vals, nil
	}
	if lo, rest, ok := strings.Cut(s, ".."); ok {
		loV, err := parseAxisInt(lo)
		if err != nil {
			return nil, err
		}
		var geometric bool
		var hiS, stepS string
		if h, st, ok := strings.Cut(rest, "*"); ok {
			geometric, hiS, stepS = true, h, st
		} else if h, st, ok := strings.Cut(rest, "+"); ok {
			geometric, hiS, stepS = false, h, st
		} else {
			return nil, fmt.Errorf("sweep: range %q needs a step: lo..hi*k (geometric) or lo..hi+k (arithmetic)", s)
		}
		hiV, err := parseAxisInt(hiS)
		if err != nil {
			return nil, err
		}
		stepV, err := parseAxisInt(stepS)
		if err != nil {
			return nil, err
		}
		if hiV < loV {
			return nil, fmt.Errorf("sweep: range %q is empty (hi < lo)", s)
		}
		if geometric && stepV < 2 {
			return nil, fmt.Errorf("sweep: geometric step must be >= 2 in %q", s)
		}
		var vals []int
		for v := loV; v <= hiV; {
			vals = append(vals, v)
			if len(vals) > maxAxisValues {
				return nil, fmt.Errorf("sweep: range %q expands to more than %d values", s, maxAxisValues)
			}
			if geometric {
				if v > maxAxisValue/stepV {
					break
				}
				v *= stepV
			} else {
				v += stepV
			}
		}
		if err := checkAxisValues(vals); err != nil {
			return nil, err
		}
		return vals, nil
	}
	v, err := parseAxisInt(s)
	if err != nil {
		return nil, err
	}
	if err := checkAxisValues([]int{v}); err != nil {
		return nil, err
	}
	return []int{v}, nil
}

func parseAxisInt(s string) (int, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("sweep: bad axis integer %q", s)
	}
	if v < 1 || v > maxAxisValue {
		return 0, fmt.Errorf("sweep: axis value %d out of range [1, %d]", v, maxAxisValue)
	}
	return v, nil
}

// Grid is one family's slice of the design space; absent axes take the
// family's canonical defaults (documented on Expand). Axes that a family
// does not use must be absent — a spec that sets, say, ways on a tagless
// grid is rejected rather than silently ignored.
type Grid struct {
	// Family is the predictor family: "btb", "tagless", "tagged",
	// "cascaded" or "ittage".
	Family string `json:"family"`
	// Schemes are family-specific variants:
	//   btb:      "default", "2bit"        (BTB update strategy)
	//   tagless:  "gag", "gas", "gshare"   (index hash)
	//   tagged:   "addr", "concat", "xor"  (index/tag split)
	//   cascaded: "filtered", "unfiltered" (stage-2 allocation filter)
	//   ittage:   (none)
	Schemes []string `json:"schemes,omitempty"`
	// History selects the branch-history providers indexing the target
	// cache: "pattern", "path-branch", "path-control", "path-indjmp",
	// "path-callret", "path-peraddr". Not applicable to btb.
	History []string `json:"history,omitempty"`
	// Entries is the table size: total entries for tagless/tagged/btb,
	// stage-2 entries for cascaded, per-table entries for ittage.
	Entries Axis `json:"entries,omitempty"`
	// Ways is the set associativity (tagged, cascaded stage 2, btb).
	Ways Axis `json:"ways,omitempty"`
	// HistBits is the history depth in bits.
	HistBits Axis `json:"hist_bits,omitempty"`
	// TagBits bounds stored tag width (tagged, cascaded, ittage); for
	// tagged and cascaded grids 32 means a full tag.
	TagBits Axis `json:"tag_bits,omitempty"`
	// Stage1Entries is the cascaded first-stage size, or the ittage base
	// last-target table size.
	Stage1Entries Axis `json:"stage1_entries,omitempty"`
	// Tables is the ittage tagged-table count (1..6); history lengths are
	// the geometric tail of {2,4,8,16,32,64}.
	Tables Axis `json:"tables,omitempty"`
}

// Spec is a declarative sweep: the cross product of each grid's axes,
// against each workload, at one instruction budget.
type Spec struct {
	// Name labels the sweep in reports and uploads.
	Name string `json:"name"`
	// Budget is the per-point accuracy-simulation instruction budget.
	Budget int64 `json:"budget"`
	// Workloads are the benchmark names to sweep (see workload.Names).
	Workloads []string `json:"workloads"`
	// Grids are the family slices; the sweep is their union.
	Grids []Grid `json:"grids"`
}

// ParseSpec parses and validates a JSON grid spec. Unknown fields are
// errors, so a typoed axis name cannot silently run a different sweep
// than the one written down.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	// Trailing garbage after the spec object is an error, not ignored.
	if dec.More() {
		return nil, fmt.Errorf("sweep: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// knownFamilies maps each family to the axes it accepts.
var knownFamilies = map[string]struct {
	schemes []string
	axes    map[string]bool // accepted axis names
	history bool
}{
	"btb":      {schemes: []string{"default", "2bit"}, axes: map[string]bool{"entries": true, "ways": true}},
	"tagless":  {schemes: []string{"gag", "gas", "gshare"}, axes: map[string]bool{"entries": true, "hist_bits": true}, history: true},
	"tagged":   {schemes: []string{"addr", "concat", "xor"}, axes: map[string]bool{"entries": true, "ways": true, "hist_bits": true, "tag_bits": true}, history: true},
	"cascaded": {schemes: []string{"filtered", "unfiltered"}, axes: map[string]bool{"entries": true, "ways": true, "hist_bits": true, "tag_bits": true, "stage1_entries": true}, history: true},
	"ittage":   {schemes: nil, axes: map[string]bool{"entries": true, "hist_bits": true, "tag_bits": true, "stage1_entries": true, "tables": true}, history: true},
}

// historyKinds are the accepted history-provider names.
var historyKinds = map[string]bool{
	"pattern": true, "path-branch": true, "path-control": true,
	"path-indjmp": true, "path-callret": true, "path-peraddr": true,
}

// Validate checks the spec's shape: known families and schemes, axes
// meaningful for their family, positive budget, non-empty workload list.
// Workload names are checked against the registry when the engine
// resolves them, so Validate itself stays a pure function of the spec
// bytes.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sweep: spec needs a name")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("sweep: spec name %q may only contain [A-Za-z0-9._-]", s.Name)
		}
	}
	if s.Budget < 1 {
		return fmt.Errorf("sweep: budget must be positive, got %d", s.Budget)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("sweep: spec needs at least one workload")
	}
	seenW := map[string]bool{}
	for _, w := range s.Workloads {
		if w == "" {
			return fmt.Errorf("sweep: empty workload name")
		}
		if seenW[w] {
			return fmt.Errorf("sweep: duplicate workload %q", w)
		}
		seenW[w] = true
	}
	if len(s.Grids) == 0 {
		return fmt.Errorf("sweep: spec needs at least one grid")
	}
	for gi, g := range s.Grids {
		fam, ok := knownFamilies[g.Family]
		if !ok {
			return fmt.Errorf("sweep: grid %d: unknown family %q (have %v)", gi, g.Family, familyNames())
		}
		for _, sc := range g.Schemes {
			if !contains(fam.schemes, sc) {
				return fmt.Errorf("sweep: grid %d (%s): unknown scheme %q (have %v)", gi, g.Family, sc, fam.schemes)
			}
		}
		if len(g.History) > 0 && !fam.history {
			return fmt.Errorf("sweep: grid %d (%s): history axis does not apply", gi, g.Family)
		}
		for _, h := range g.History {
			if !historyKinds[h] {
				return fmt.Errorf("sweep: grid %d (%s): unknown history kind %q", gi, g.Family, h)
			}
		}
		for name, axis := range map[string]Axis{
			"entries": g.Entries, "ways": g.Ways, "hist_bits": g.HistBits,
			"tag_bits": g.TagBits, "stage1_entries": g.Stage1Entries, "tables": g.Tables,
		} {
			if !axis.IsZero() && !fam.axes[name] {
				return fmt.Errorf("sweep: grid %d (%s): axis %q does not apply", gi, g.Family, name)
			}
		}
	}
	return nil
}

func familyNames() []string {
	names := make([]string, 0, len(knownFamilies))
	for n := range knownFamilies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// ExampleSpec is a small but representative spec, printed by
// `tcsweep -example` and used as the fuzz seed corpus.
const ExampleSpec = `{
  "name": "frontier-demo",
  "budget": 200000,
  "workloads": ["perl", "gcc"],
  "grids": [
    {"family": "btb", "schemes": ["default", "2bit"], "entries": "1024..4096*2", "ways": [4, 8]},
    {"family": "tagless", "schemes": ["gshare"], "entries": "128..1024*2", "hist_bits": "6..12+3"},
    {"family": "tagged", "schemes": ["xor"], "entries": [256, 512], "ways": [1, 4], "hist_bits": [9, 16], "tag_bits": [8, 32]},
    {"family": "cascaded", "entries": [256], "ways": [4], "hist_bits": [9], "history": ["pattern", "path-indjmp"]},
    {"family": "ittage", "entries": [64, 128], "tables": [3, 5], "tag_bits": [9]}
  ]
}
`
