package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quick-start does, and checks the paper's headline result end to end:
// the target cache substantially reduces indirect-jump mispredictions and
// execution time on perl and gcc.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	const budget = 500_000

	gshare := func() repro.TargetCache {
		return repro.NewTagless(repro.TaglessConfig{
			Entries: 512, Scheme: repro.SchemeGshare,
		})
	}
	pat9 := func() repro.History { return repro.NewPatternHistory(9) }
	machine := repro.DefaultMachine()

	for _, name := range []string{"perl", "gcc"} {
		w, err := repro.WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := repro.RunAccuracy(w, budget, repro.BaselineConfig())
		tc := repro.RunAccuracy(w, budget, repro.BaselineConfig().WithTargetCache(gshare, pat9))
		if tc.IndirectMispredictRate() >= base.IndirectMispredictRate() {
			t.Errorf("%s: target cache (%.1f%%) did not beat BTB (%.1f%%)",
				name, 100*tc.IndirectMispredictRate(), 100*base.IndirectMispredictRate())
		}

		baseT := repro.RunTiming(w, budget, repro.BaselineConfig(), machine)
		tcT := repro.RunTiming(w, budget, repro.BaselineConfig().WithTargetCache(gshare, pat9), machine)
		if tcT.Cycles >= baseT.Cycles {
			t.Errorf("%s: no execution-time reduction (%d -> %d cycles)",
				name, baseT.Cycles, tcT.Cycles)
		}
		if baseT.IPC() <= 0 || baseT.IPC() > float64(machine.Width) {
			t.Errorf("%s: implausible IPC %.2f", name, baseT.IPC())
		}
	}
}

func TestFacadeRegistries(t *testing.T) {
	if got := len(repro.Workloads()); got != 8 {
		t.Fatalf("workloads = %d, want 8", got)
	}
	if got := len(repro.Experiments()); got < 11 {
		t.Fatalf("experiments = %d, want >= 11", got)
	}
	if _, err := repro.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := repro.ExperimentByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	p := repro.DefaultExperimentParams()
	if p.AccuracyBudget <= 0 || p.TimingBudget <= 0 {
		t.Fatalf("bad default params %+v", p)
	}
}

// TestPathHistoryWinsOnPerl pins the paper's Section 4.2.3 observation via
// the public API: the Ind-jmp global path history beats pattern history on
// the interpreter workload.
func TestPathHistoryWinsOnPerl(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	const budget = 500_000
	w, err := repro.WorkloadByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	gshare := func() repro.TargetCache {
		return repro.NewTagless(repro.TaglessConfig{Entries: 512, Scheme: repro.SchemeGshare})
	}
	pat := repro.RunAccuracy(w, budget, repro.BaselineConfig().WithTargetCache(
		gshare, func() repro.History { return repro.NewPatternHistory(9) }))
	path := repro.RunAccuracy(w, budget, repro.BaselineConfig().WithTargetCache(
		gshare, func() repro.History {
			return repro.NewPathHistory(repro.PathConfig{
				Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2,
				Filter: repro.FilterIndJmp,
			})
		}))
	if path.IndirectMispredictRate() >= pat.IndirectMispredictRate() {
		t.Errorf("path history (%.1f%%) should beat pattern history (%.1f%%) on perl",
			100*path.IndirectMispredictRate(), 100*pat.IndirectMispredictRate())
	}
}
