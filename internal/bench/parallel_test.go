package bench

import (
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestParallelMatchesSerial is the cell scheduler's core contract: every
// experiment must render byte-identical tables (text and JSON) whether its
// cells run serially or on a worker pool. Two parameter sets guard against
// a budget-dependent ordering sneaking in.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice per parameter set")
	}
	paramSets := []Params{
		{AccuracyBudget: 60_000, TimingBudget: 40_000},
		{AccuracyBudget: 90_000, TimingBudget: 50_000},
	}
	for _, base := range paramSets {
		for _, e := range All() {
			serial, parallel := base, base
			serial.Parallel = 1
			serial.Segments = 1
			parallel.Parallel = 8
			parallel.Segments = 4
			a := e.Run(serial)
			b := e.Run(parallel)
			if len(a) != len(b) {
				t.Fatalf("%s: %d tables serial vs %d parallel", e.ID, len(a), len(b))
			}
			for i := range a {
				if a[i].String() != b[i].String() {
					t.Errorf("%s (n=%d): table %d differs at -parallel 8:\n--- serial\n%s\n--- parallel\n%s",
						e.ID, base.AccuracyBudget, i, a[i], b[i])
				}
				aj, err := json.Marshal(a[i])
				if err != nil {
					t.Fatal(err)
				}
				bj, err := json.Marshal(b[i])
				if err != nil {
					t.Fatal(err)
				}
				if string(aj) != string(bj) {
					t.Errorf("%s: table %d JSON differs at -parallel 8", e.ID, i)
				}
			}
		}
	}
}

// TestTraceCapturedOncePerKey pins the memoization guarantee: across an
// experiment's parallel cells the VM runs at most once per (workload,
// budget) key, and a repeat run at the same budgets captures nothing new.
func TestTraceCapturedOncePerKey(t *testing.T) {
	workload.ResetMemo()
	t.Cleanup(workload.ResetMemo)
	base := workload.CaptureCount()

	p := Params{AccuracyBudget: 60_000, TimingBudget: 40_000, Parallel: 8}

	// table2 is accuracy-only over every workload: exactly one key per
	// workload despite two configurations per workload racing for it.
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(p)
	want := int64(len(workload.All()))
	if got := workload.CaptureCount() - base; got != want {
		t.Fatalf("table2 captured %d traces, want %d (one per workload)", got, want)
	}

	// table5 adds timing cells over perl and gcc — but timing budgets are
	// below the accuracy budget, so prefix sharing serves them from the
	// captures table2 already made: no workload may re-capture.
	e, err = ByID("table5")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(p)
	if got := workload.CaptureCount() - base; got != want {
		t.Fatalf("after table5, %d traces captured, want still %d (timing cells share the accuracy captures)", got, want)
	}

	// Re-running both experiments must not execute any VM again.
	mustRun(t, "table2", p)
	mustRun(t, "table5", p)
	if got := workload.CaptureCount() - base; got != want {
		t.Fatalf("re-run captured %d traces, want still %d", got, want)
	}

	keys, bytes := workload.MemoStats()
	if keys != int(want) || bytes <= 0 {
		t.Fatalf("MemoStats() = %d keys, %d bytes; want %d keys and positive size", keys, bytes, want)
	}
}

func mustRun(t *testing.T, id string, p Params) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if tables := e.Run(p); len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
}
