# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race fault fuzz bench bench-smoke bench-json bench-fmt bench-diff bench-gate bench-sweep experiments perf-smoke sweep-smoke fmt cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The race pass runs the concurrency-sensitive packages in -short mode so
# the heavy experiment sweeps are not repeated under the race detector;
# the dedicated race tests in these packages do not skip on -short.
test: race fault fuzz
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/workload ./internal/sim ./internal/trace ./internal/telemetry ./internal/cpu \
		./internal/perfstore ./internal/perfstore/perfserver ./internal/perfstore/client

# The fault-injection suite always runs under the race detector: it is the
# one place panics, corrupted captures, and worker cancellation all cross
# goroutine boundaries at once.
fault:
	$(GO) test -race ./internal/faultinject

# Short mutation pass over every decoder/parser fuzz target (the seed
# corpus alone is already replayed by plain `go test`). `go test -fuzz`
# accepts one target at a time, hence the loops. Raise FUZZTIME for a real
# fuzzing session.
FUZZTIME ?= 2s
fuzz:
	for t in FuzzReaderV1 FuzzReaderV2 FuzzAutoReader FuzzCursor FuzzBlocks FuzzStore; do \
		$(GO) test -run '^$$' -fuzz "^$${t}$$" -fuzztime $(FUZZTIME) ./internal/trace || exit 1; \
	done
	for t in FuzzSegmentScan FuzzRecordRoundTrip; do \
		$(GO) test -run '^$$' -fuzz "^$${t}$$" -fuzztime $(FUZZTIME) ./internal/perfstore || exit 1; \
	done
	for t in FuzzParseUploadMeta FuzzUploadHandler; do \
		$(GO) test -run '^$$' -fuzz "^$${t}$$" -fuzztime $(FUZZTIME) ./internal/perfstore/perfserver || exit 1; \
	done
	$(GO) test -run '^$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./internal/benchfmt
	for t in FuzzParseSpec FuzzParseAxis; do \
		$(GO) test -run '^$$' -fuzz "^$${t}$$" -fuzztime $(FUZZTIME) ./internal/sweep || exit 1; \
	done

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration benchmark smoke pass over the hot-path packages: catches
# benchmarks that no longer compile or crash, without the timing cost.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/trace ./internal/sim

# Write a legacy single-run benchjson snapshot (the committed baseline is
# the benchfmt one below; this format remains for tooling interop).
BENCH_JSON ?= /tmp/bench.json
bench-json:
	$(GO) run ./cmd/tcsim -exp all -benchjson $(BENCH_JSON) > /dev/null

# Write an N-repetition snapshot in the standard Go benchmark format —
# the statistically useful sibling of bench-json. The first (warm-up)
# repetition is discarded so the one-time capture build does not pollute
# the samples; the result interops with stock benchstat.
BENCH_FMT ?= BENCH_baseline.txt
bench-fmt:
	$(GO) run ./cmd/tcsim -exp all -count 5 -warmup 1 -benchfmt $(BENCH_FMT) > /dev/null

# Compare bench snapshots with real statistics: per experiment, medians
# with order-statistic confidence intervals, a Mann-Whitney p-value, and
# an exit code that fires only on statistically significant regressions
# past the tolerance floor. Either side accepts a comma-separated list of
# snapshots; files may be benchfmt (tcsim -benchfmt -count N) or legacy
# benchjson — every (file, repetition) contributes one sample. Override
# BENCH_NEW with a fresh `make bench-fmt BENCH_FMT=...` snapshot to gate a
# change against the committed baseline.
BENCH_OLD ?= BENCH_baseline.txt
BENCH_NEW ?= BENCH_baseline.txt
bench-diff:
	$(GO) run ./cmd/tcbenchdiff $(BENCH_OLD) $(BENCH_NEW)

# The CI significance gate, runnable locally: two 5-rep short-budget
# snapshots of the same build must not differ significantly. -tolerance
# is loose here because short budgets amplify relative jitter.
bench-gate:
	$(GO) build -o /tmp/tcsim ./cmd/tcsim
	$(GO) build -o /tmp/tcbenchdiff ./cmd/tcbenchdiff
	/tmp/tcsim -exp table2 -n 300000 -count 5 -warmup 1 -benchfmt /tmp/bench-old.txt -quiet > /dev/null
	/tmp/tcsim -exp table2 -n 300000 -count 5 -warmup 1 -benchfmt /tmp/bench-new.txt -quiet > /dev/null
	/tmp/tcbenchdiff -tolerance 0.05 /tmp/bench-old.txt /tmp/bench-new.txt

# Sweep wall-clock snapshot in the standard benchmark format: 5 recorded
# reps (after one warm-up) of the 568-point smoke grid, serial workers so
# the number measures the replay kernel rather than the scheduler.
# Committed baselines: BENCH_sweep.txt (auto gang width) and
# BENCH_sweep_direct.txt (SWEEP_GANG=1, fusion off). Diff them with
#   make bench-diff BENCH_OLD=BENCH_sweep_direct.txt BENCH_NEW=BENCH_sweep.txt
# to see the fusion win, or regenerate one side to significance-gate a
# sweep-performance change like the suite's bench-gate.
BENCH_SWEEP ?= BENCH_sweep.txt
SWEEP_GANG ?= 0
bench-sweep:
	$(GO) build -o /tmp/tcsweep ./cmd/tcsweep
	/tmp/tcsweep -spec sweep_smoke.json -workers 1 -gang $(SWEEP_GANG) -count 5 -warmup 1 -benchfmt $(BENCH_SWEEP) -quiet > /dev/null

# Regenerate every paper table and figure at full budgets.
experiments:
	$(GO) run ./cmd/tcsim -exp all

# The tcperf crash-safety smoke: builds the real binary, uploads through
# the retrying client, SIGTERMs and SIGKILLs the server mid-stream, and
# verifies every acknowledged upload survives restart with a clean fsck.
perf-smoke:
	$(GO) test -run 'TestE2E' -v ./cmd/tcperf

# The sweep engine smoke: builds the real tcsweep binary, interrupts a
# checkpointed run with SIGINT and with kill -9, resumes it, requires the
# resumed frontier report byte-identical to an uninterrupted run, and
# publishes a sweep/v1 document to a live tcperf server.
sweep-smoke:
	$(GO) test -run 'TestE2E' -v ./cmd/tcsweep

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.prof mem.prof
