// Package stats provides the small measurement and reporting helpers shared
// by the experiment harness: prediction counters, rates, and plain-text
// table rendering in the style of the paper's tables.
package stats

import "fmt"

// Counter tallies prediction outcomes for one predictor/population.
type Counter struct {
	Predictions int64
	Mispredicts int64
}

// Record adds one prediction outcome.
func (c *Counter) Record(correct bool) {
	c.Predictions++
	if !correct {
		c.Mispredicts++
	}
}

// Add merges another counter into c.
func (c *Counter) Add(o Counter) {
	c.Predictions += o.Predictions
	c.Mispredicts += o.Mispredicts
}

// MispredictRate returns the fraction of predictions that were wrong,
// or 0 if nothing was predicted.
func (c Counter) MispredictRate() float64 {
	if c.Predictions == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Predictions)
}

// Accuracy returns 1 - MispredictRate (0 if nothing was predicted).
func (c Counter) Accuracy() float64 {
	if c.Predictions == 0 {
		return 0
	}
	return 1 - c.MispredictRate()
}

// Percent formats v (a fraction) as a percentage with two decimals,
// e.g. 0.6603 -> "66.03%".
func Percent(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Reduction returns the fractional reduction going from base to improved
// (positive when improved < base), the paper's "reduction in execution
// time" metric: (base-improved)/base.
func Reduction(base, improved float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - improved) / base
}
