# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race fault fuzz bench bench-json experiments fmt cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The race pass runs the concurrency-sensitive packages in -short mode so
# the heavy experiment sweeps are not repeated under the race detector;
# the dedicated race tests in these packages do not skip on -short.
test: race fault fuzz
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/workload ./internal/sim ./internal/trace ./internal/telemetry

# The fault-injection suite always runs under the race detector: it is the
# one place panics, corrupted captures, and worker cancellation all cross
# goroutine boundaries at once.
fault:
	$(GO) test -race ./internal/faultinject

# Short mutation pass over every trace-decoder fuzz target (the seed
# corpus alone is already replayed by plain `go test`). `go test -fuzz`
# accepts one target at a time, hence the loop. Raise FUZZTIME for a real
# fuzzing session.
FUZZTIME ?= 2s
fuzz:
	for t in FuzzReaderV1 FuzzReaderV2 FuzzAutoReader FuzzCursor; do \
		$(GO) test -run '^$$' -fuzz "^$${t}$$" -fuzztime $(FUZZTIME) ./internal/trace || exit 1; \
	done

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the per-experiment wall-time/work baseline used to track the
# parallel runner's performance.
bench-json:
	$(GO) run ./cmd/tcsim -exp all -benchjson BENCH_baseline.json > /dev/null

# Regenerate every paper table and figure at full budgets.
experiments:
	$(GO) run ./cmd/tcsim -exp all

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.prof mem.prof
