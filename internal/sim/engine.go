// Package sim wires the prediction structures into a front-end engine and
// provides the trace-driven accuracy driver (Section 4.1's methodology).
// The cycle-level timing driver lives in internal/cpu and reuses the same
// Engine so accuracy and timing experiments see identical predictor
// behaviour.
package sim

import (
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/dirpred"
	"repro/internal/history"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config assembles a front end: the baseline BTB + RAS + direction
// predictor, optionally augmented with a target cache fed by a branch
// history.
type Config struct {
	BTB      btb.Config
	RASDepth int
	Dir      dirpred.Config

	// NewTargetCache constructs the target cache; nil runs the BTB-only
	// baseline the paper measures in Table 1.
	NewTargetCache func() core.TargetCache
	// NewHistory constructs the branch history indexing the target cache
	// (required when NewTargetCache is set).
	NewHistory func() history.Provider

	// Telemetry, when non-nil, receives every resolved indirect jump
	// (site, history, predicted vs actual target). The collector is owned
	// by the goroutine driving the engine; nil costs one pointer check
	// per resolved indirect jump.
	Telemetry *telemetry.Collector
}

// DefaultConfig returns the paper's baseline front end (no target cache).
func DefaultConfig() Config {
	return Config{
		BTB:      btb.DefaultConfig(),
		RASDepth: 32,
		Dir:      dirpred.DefaultConfig(),
	}
}

// WithTargetCache returns a copy of cfg using the given target cache and
// history constructors.
func (c Config) WithTargetCache(tc func() core.TargetCache, h func() history.Provider) Config {
	c.NewTargetCache = tc
	c.NewHistory = h
	return c
}

// Engine is an instantiated front end.
type Engine struct {
	BTB  *btb.BTB
	RAS  *btb.RAS
	Dir  *dirpred.Predictor
	TC   core.TargetCache // nil for the baseline
	Hist history.Provider // nil when TC is nil
	// Tel is the engine's telemetry collector (nil when disabled). The
	// timing drivers read it to stamp events with their cycle clock.
	Tel *telemetry.Collector
}

// NewEngine instantiates cfg.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		BTB: btb.New(cfg.BTB),
		RAS: btb.NewRAS(cfg.RASDepth),
		Dir: dirpred.New(cfg.Dir),
		Tel: cfg.Telemetry,
	}
	if cfg.NewTargetCache != nil {
		e.TC = cfg.NewTargetCache()
		if cfg.NewHistory == nil {
			panic("sim: target cache configured without a history")
		}
		e.Hist = cfg.NewHistory()
	}
	return e
}

// Prediction is the front end's fetch-time decision for one branch.
type Prediction struct {
	// Taken is the predicted direction (always true for unconditional
	// branches the BTB detects).
	Taken bool
	// Target is the predicted target when Taken && HasTarget.
	Target uint64
	// HasTarget reports whether any structure supplied a target.
	HasTarget bool
	// FromTC reports whether the target came from the target cache.
	FromTC bool
	// hist is the history value the target cache was indexed with,
	// replayed at update time ("the target cache is accessed again using
	// index A").
	hist uint64
}

// Correct reports whether the prediction matches the resolved record.
func (p Prediction) Correct(r *trace.Record) bool {
	if p.Taken != r.Taken {
		return false
	}
	if !r.Taken {
		return true
	}
	return p.HasTarget && p.Target == r.Target
}

// Predict models the fetch stage for the branch described by r (only
// r.PC and r.Class are inspected; the resolved fields are untouched).
//
// The BTB and target cache are examined concurrently: if the BTB detects an
// indirect branch, the target cache entry supplies the target; a tagged
// target-cache miss falls back to the BTB's last-computed target. A BTB
// miss leaves the front end blind: it predicts fall-through (correct only
// for a not-taken conditional branch).
func (e *Engine) Predict(r *trace.Record) Prediction {
	var p Prediction
	if e.TC != nil {
		// Capture the fetch-time history; the update replays this index
		// even when the BTB fails to detect the branch.
		p.hist = e.Hist.Value(r.PC)
	}
	entry, hit := e.BTB.Lookup(r.PC)
	if !hit {
		// Undetected branch: the fetch engine falls through.
		return p
	}
	// The BTB supplies the detected class; use it (not the trace's) so a
	// stale entry misclassifying the instruction behaves as hardware
	// would. Direction:
	switch entry.Class {
	case trace.ClassCondDirect:
		p.Taken = e.Dir.Predict(r.PC)
	default:
		p.Taken = true
	}
	if !p.Taken {
		return p
	}
	switch entry.Class {
	case trace.ClassReturn:
		if addr, ok := e.RAS.Peek(); ok {
			p.Target, p.HasTarget = addr, true
		}
	case trace.ClassIndJump, trace.ClassIndCall:
		if e.TC != nil {
			if tgt, ok := e.TC.Predict(r.PC, p.hist); ok {
				p.Target, p.HasTarget, p.FromTC = tgt, true, true
				return p
			}
		}
		p.Target, p.HasTarget = entry.Target, true
	default:
		p.Target, p.HasTarget = entry.Target, true
	}
	return p
}

// Resolve trains every structure with the resolved branch r, given the
// fetch-time prediction p. It must be called exactly once per branch, in
// program order.
func (e *Engine) Resolve(r *trace.Record, p Prediction) {
	// Telemetry first, on the fetch-time prediction, before any structure
	// trains. Resolve is the one point every driver (accuracy, flush,
	// fast timing, event timing) passes through, so instrumenting here
	// keeps all of them consistent.
	if e.Tel != nil && r.Class.IsTargetCachePredicted() {
		e.Tel.Indirect(r.PC, p.hist, p.Target, p.Taken && p.HasTarget, r.Target, p.Correct(r))
	}
	// Return address stack: calls push at resolve (in-order driver), and
	// returns consume the speculatively peeked entry.
	if r.Class.IsCall() {
		e.RAS.Push(r.FallThrough())
	}
	if r.Class == trace.ClassReturn {
		e.RAS.Pop()
	}
	if r.Class == trace.ClassCondDirect {
		e.Dir.Update(r.PC, r.Taken)
	}
	if e.TC != nil {
		if r.Class.IsTargetCachePredicted() {
			// Re-access with the fetch-time index and write the computed
			// target.
			e.TC.Update(r.PC, p.hist, r.Target)
		}
		e.Hist.Observe(r)
	}
	e.BTB.Update(r)
}

// Reset clears all predictor state.
func (e *Engine) Reset() {
	e.BTB.Reset()
	e.RAS.Reset()
	e.Dir.Reset()
	if e.TC != nil {
		e.TC.Reset()
	}
	if e.Hist != nil {
		e.Hist.Reset()
	}
}
