package sim

import (
	"repro/internal/cbt"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunCBT measures the case block table's indirect-jump target prediction
// accuracy over a trace. The CBT is consulted for indirect jumps only; a
// CBT miss counts as a misprediction (no BTB fallback), isolating the
// mechanism itself as the paper's Section 2 discussion does.
func RunCBT(factory trace.Factory, budget int64, cfg cbt.Config) stats.Counter {
	table := cbt.New(cfg)
	var c stats.Counter
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	for src.Next(&r) {
		if !r.Class.IsTargetCachePredicted() {
			continue
		}
		tgt, ok := table.Predict(r.PC, r.Addr)
		c.Record(ok && tgt == r.Target)
		table.Update(&r)
	}
	return c
}
