package core

import (
	"testing"
	"testing/quick"
)

func TestTaggedConfigValidate(t *testing.T) {
	good := []TaggedConfig{
		{Entries: 256, Ways: 1, Scheme: SchemeHistoryXor, HistBits: 9},
		{Entries: 256, Ways: 256, Scheme: SchemeAddress, HistBits: 16},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s rejected: %v", c.Name(), err)
		}
	}
	bad := []TaggedConfig{
		{Entries: 0, Ways: 1, HistBits: 9},
		{Entries: 255, Ways: 1, HistBits: 9},
		{Entries: 256, Ways: 3, HistBits: 9},
		{Entries: 256, Ways: 512, HistBits: 9},
		{Entries: 256, Ways: 4, HistBits: 0},
		{Entries: 256, Ways: 4, HistBits: 9, TagBits: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestTaggedMissReturnsNoPrediction(t *testing.T) {
	for _, scheme := range []TaggedScheme{SchemeAddress, SchemeHistoryConcat, SchemeHistoryXor} {
		tc := NewTagged(TaggedConfig{Entries: 256, Ways: 4, Scheme: scheme, HistBits: 9})
		if _, ok := tc.Predict(0x1000, 3); ok {
			t.Errorf("%v: prediction from empty cache", scheme)
		}
		tc.Update(0x1000, 3, 0x4444)
		got, ok := tc.Predict(0x1000, 3)
		if !ok || got != 0x4444 {
			t.Errorf("%v: predict = %#x, %v", scheme, got, ok)
		}
		// A different jump must not see this entry (no interference).
		if tgt, ok := tc.Predict(0x9000, 3); ok && tgt == 0x4444 {
			t.Errorf("%v: interference across addresses", scheme)
		}
	}
}

func TestTaggedNoInterferenceAcrossHistories(t *testing.T) {
	tc := NewTagged(TaggedConfig{Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9})
	tc.Update(0x1000, 0x11, 0xAAAA)
	tc.Update(0x1000, 0x22, 0xBBBB)
	a, okA := tc.Predict(0x1000, 0x11)
	b, okB := tc.Predict(0x1000, 0x22)
	if !okA || !okB || a != 0xAAAA || b != 0xBBBB {
		t.Fatalf("history-separated entries wrong: %#x/%v %#x/%v", a, okA, b, okB)
	}
}

func TestTaggedAddressSchemeConflicts(t *testing.T) {
	// With Address set-selection, every history of one jump maps to the
	// same set: a 1-way cache thrashes between two histories — the
	// conflict-miss behaviour Table 7 shows.
	tc := NewTagged(TaggedConfig{Entries: 256, Ways: 1, Scheme: SchemeAddress, HistBits: 9})
	tc.Update(0x1000, 0x11, 0xAAAA)
	tc.Update(0x1000, 0x22, 0xBBBB) // evicts the first
	if _, ok := tc.Predict(0x1000, 0x11); ok {
		t.Fatal("Address-indexed 1-way cache kept both histories of one jump")
	}
	// History Xor spreads them across sets: both survive.
	xor := NewTagged(TaggedConfig{Entries: 256, Ways: 1, Scheme: SchemeHistoryXor, HistBits: 9})
	xor.Update(0x1000, 0x11, 0xAAAA)
	xor.Update(0x1000, 0x22, 0xBBBB)
	a, okA := xor.Predict(0x1000, 0x11)
	b, okB := xor.Predict(0x1000, 0x22)
	if !okA || !okB || a != 0xAAAA || b != 0xBBBB {
		t.Fatal("History-Xor 1-way cache lost one of two histories")
	}
}

func TestTaggedLRUWithinSet(t *testing.T) {
	// Fully associative single set: filling past capacity evicts LRU.
	tc := NewTagged(TaggedConfig{Entries: 4, Ways: 4, Scheme: SchemeAddress, HistBits: 4})
	for h := uint64(0); h < 4; h++ {
		tc.Update(0x1000, h, 0x100+h)
	}
	tc.Predict(0x1000, 0) // refresh history 0
	tc.Update(0x1000, 9, 0x999)
	if _, ok := tc.Predict(0x1000, 0); !ok {
		t.Fatal("most recently used entry evicted")
	}
	hits := 0
	for h := uint64(1); h < 4; h++ {
		if _, ok := tc.Predict(0x1000, h); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("expected exactly one eviction among histories 1-3, got %d survivors", hits)
	}
}

func TestTaggedCostBits(t *testing.T) {
	tc := NewTagged(TaggedConfig{Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9})
	// 32 target + 32 (full tag, capped) + 2 LRU + 1 valid = 67 per entry.
	if got := tc.CostBits(); got != 256*67 {
		t.Fatalf("CostBits = %d, want %d", got, 256*67)
	}
	narrow := NewTagged(TaggedConfig{Entries: 256, Ways: 1, Scheme: SchemeHistoryXor,
		HistBits: 9, TagBits: 10})
	if got := narrow.CostBits(); got != 256*(32+10+0+1) {
		t.Fatalf("narrow CostBits = %d", got)
	}
}

func TestTaggedNarrowTagsAdmitFalseHits(t *testing.T) {
	// A 2-bit tag cannot distinguish many jumps: a false hit is possible
	// by construction. Verify at least that read-your-write still holds.
	tc := NewTagged(TaggedConfig{Entries: 16, Ways: 2, Scheme: SchemeHistoryXor,
		HistBits: 4, TagBits: 2})
	tc.Update(0x1000, 1, 0x42)
	if got, ok := tc.Predict(0x1000, 1); !ok || got != 0x42 {
		t.Fatalf("read-your-write with narrow tags: %#x %v", got, ok)
	}
}

// Property: read-your-write for all schemes and geometries.
func TestTaggedReadYourWriteProperty(t *testing.T) {
	for _, scheme := range []TaggedScheme{SchemeAddress, SchemeHistoryConcat, SchemeHistoryXor} {
		tc := NewTagged(TaggedConfig{Entries: 64, Ways: 4, Scheme: scheme, HistBits: 9})
		f := func(pc, hist, target uint64) bool {
			tc.Update(pc, hist, target)
			got, ok := tc.Predict(pc, hist)
			return ok && got == target
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestTaggedReset(t *testing.T) {
	tc := NewTagged(TaggedConfig{Entries: 64, Ways: 2, Scheme: SchemeHistoryXor, HistBits: 9})
	tc.Update(0x100, 1, 5)
	tc.Reset()
	if _, ok := tc.Predict(0x100, 1); ok {
		t.Fatal("entry survived reset")
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeGshare.String() != "gshare" || SchemeGAg.String() != "GAg" || SchemeGAs.String() != "GAs" {
		t.Fatal("tagless scheme names wrong")
	}
	if SchemeAddress.String() != "Addr" ||
		SchemeHistoryConcat.String() != "History Conc" ||
		SchemeHistoryXor.String() != "History Xor" {
		t.Fatal("tagged scheme names wrong")
	}
	cfg := TaggedConfig{Entries: 256, Ways: 8, Scheme: SchemeHistoryXor, HistBits: 9}
	if cfg.Name() != "History Xor 8-way" {
		t.Fatalf("Name = %q", cfg.Name())
	}
}
