package isa

import "fmt"

// Builder assembles a Program with symbolic labels. Methods append
// instructions; Build resolves label references. Builder methods panic on
// misuse (duplicate or unknown labels) at Build time via returned error.
type Builder struct {
	name     string
	base     uint64
	code     []Instr
	labels   map[string]int
	fixups   []fixup
	data     []int64
	dataSyms map[string]int64
	entry    string
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns a Builder for a program named name whose code segment
// starts at byte address base.
func NewBuilder(name string, base uint64) *Builder {
	return &Builder{
		name:     name,
		base:     base,
		labels:   make(map[string]int),
		dataSyms: make(map[string]int64),
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fixups = append(b.fixups, fixup{-1, "duplicate label " + name})
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// SetEntry sets the entry-point label (default: instruction 0).
func (b *Builder) SetEntry(label string) *Builder {
	b.entry = label
	return b
}

// Here returns the current instruction index.
func (b *Builder) Here() int { return len(b.code) }

// AddrOfLabel returns the final byte address a label will have; it may be
// called only after the label is defined (used to build jump tables).
func (b *Builder) AddrOfLabel(name string) (uint64, bool) {
	i, ok := b.labels[name]
	if !ok {
		return 0, false
	}
	return b.base + uint64(i)*4, true
}

// Word appends one word to data memory and returns its byte address.
func (b *Builder) Word(v int64) int64 {
	b.data = append(b.data, v)
	return int64(len(b.data)-1) * 8
}

// Words appends n zero words, returning the byte address of the first.
func (b *Builder) Words(n int) int64 {
	addr := int64(len(b.data)) * 8
	b.data = append(b.data, make([]int64, n)...)
	return addr
}

// DataSym names a data address for later retrieval with DataAddr.
func (b *Builder) DataSym(name string, addr int64) *Builder {
	b.dataSyms[name] = addr
	return b
}

// DataAddr returns a named data address.
func (b *Builder) DataAddr(name string) int64 { return b.dataSyms[name] }

// SetWord patches data memory at byte address addr.
func (b *Builder) SetWord(addr, v int64) { b.data[addr/8] = v }

func (b *Builder) emit(i Instr) *Builder {
	b.code = append(b.code, i)
	return b
}

func (b *Builder) emitTarget(i Instr, label string) *Builder {
	i.Target = -1
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	return b.emit(i)
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// ALU appends dst = s1 <op> s2.
func (b *Builder) ALU(op AluOp, dst, s1, s2 Reg) *Builder {
	return b.emit(Instr{Op: OpALU, Alu: op, Dst: dst, Src1: s1, Src2: s2})
}

// ALUI appends dst = s1 <op> imm.
func (b *Builder) ALUI(op AluOp, dst, s1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpALUI, Alu: op, Dst: dst, Src1: s1, Imm: imm})
}

// LoadImm appends dst = imm.
func (b *Builder) LoadImm(dst Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLoadImm, Dst: dst, Imm: imm})
}

// Load appends dst = mem[s1+imm].
func (b *Builder) Load(dst, s1 Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLoad, Dst: dst, Src1: s1, Imm: imm})
}

// Store appends mem[s1+imm] = s2.
func (b *Builder) Store(s1 Reg, imm int64, s2 Reg) *Builder {
	return b.emit(Instr{Op: OpStore, Src1: s1, Src2: s2, Imm: imm})
}

// Br appends a conditional branch to label.
func (b *Builder) Br(c Cond, s1, s2 Reg, label string) *Builder {
	return b.emitTarget(Instr{Op: OpBr, Cond: c, Src1: s1, Src2: s2}, label)
}

// Jmp appends an unconditional direct jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTarget(Instr{Op: OpJmp}, label)
}

// Call appends a direct call to label.
func (b *Builder) Call(label string) *Builder {
	return b.emitTarget(Instr{Op: OpCall}, label)
}

// Ret appends a subroutine return.
func (b *Builder) Ret() *Builder { return b.emit(Instr{Op: OpRet}) }

// JmpInd appends an indirect jump through register r.
func (b *Builder) JmpInd(r Reg) *Builder {
	return b.emit(Instr{Op: OpJmpInd, Src1: r})
}

// JmpIndSel appends an indirect jump through r, recording sel as the
// dispatch selector register for the trace.
func (b *Builder) JmpIndSel(r, sel Reg) *Builder {
	return b.emit(Instr{Op: OpJmpInd, Src1: r, Sel: uint8(sel) + 1})
}

// CallInd appends an indirect call through register r.
func (b *Builder) CallInd(r Reg) *Builder {
	return b.emit(Instr{Op: OpCallInd, Src1: r})
}

// CallIndSel appends an indirect call through r, recording sel as the
// dispatch selector register for the trace.
func (b *Builder) CallIndSel(r, sel Reg) *Builder {
	return b.emit(Instr{Op: OpCallInd, Src1: r, Sel: uint8(sel) + 1})
}

// Halt appends a halt.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		if f.instr < 0 {
			return nil, fmt.Errorf("isa: %s: %s", b.name, f.label)
		}
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: %s: undefined label %q", b.name, f.label)
		}
		b.code[f.instr].Target = idx
	}
	entry := 0
	if b.entry != "" {
		idx, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("isa: %s: undefined entry %q", b.name, b.entry)
		}
		entry = idx
	}
	if len(b.code) == 0 {
		return nil, fmt.Errorf("isa: %s: empty program", b.name)
	}
	return &Program{
		Name:  b.name,
		Base:  b.base,
		Code:  b.code,
		Data:  b.data,
		Entry: entry,
	}, nil
}

// MustBuild is Build that panics on error; workload construction is static
// so errors are programming mistakes.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
