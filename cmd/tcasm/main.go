// Command tcasm is the toy-ISA toolchain driver: it assembles a program
// from the textual assembly syntax (see internal/isa.Assemble) and then
// runs it, disassembles it, emits its trace, or measures predictor
// accuracy on it — so new workloads can be written as .s files without
// touching Go.
//
// Usage:
//
//	tcasm -s prog.s -run                 ; execute, print register state
//	tcasm -s prog.s -dis                 ; disassemble
//	tcasm -s prog.s -o prog.trace -n 1e6 ; emit a trace file
//	tcasm -s prog.s -predict -n 1000000  ; predictor accuracy on the program
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	var (
		srcPath = flag.String("s", "", "assembly source file (required)")
		doRun   = flag.Bool("run", false, "execute and print machine state")
		doDis   = flag.Bool("dis", false, "disassemble")
		predict = flag.Bool("predict", false, "run predictor accuracy over the looping trace")
		pipe    = flag.Int("pipe", 0, "render a pipeline diagram of the first N instructions")
		out     = flag.String("o", "", "emit a v2 trace file")
		n       = flag.Int64("n", 1_000_000, "instruction budget for -o/-predict/-run")
	)
	flag.Parse()
	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcasm:", err)
		os.Exit(1)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcasm:", err)
		os.Exit(1)
	}
	fmt.Printf("assembled %s: %d instructions, %d data words, entry %#x\n",
		prog.Name, len(prog.Code), len(prog.Data), prog.AddrOf(prog.Entry))

	switch {
	case *pipe > 0:
		res, tl := cpu.RunTimeline(vm.NewLooping(prog), *n,
			sim.NewEngine(sim.DefaultConfig()), cpu.DefaultConfig(), *pipe)
		fmt.Print(tl.String())
		fmt.Printf("total: %d instructions in %d cycles (IPC %.2f, %d mispredicts)\n",
			res.Instructions, res.Cycles, res.IPC(), res.Mispredicts)
	case *doDis:
		fmt.Print(isa.Disassemble(prog))
	case *doRun:
		m := vm.New(prog)
		steps, err := m.Run(*n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcasm:", err)
			os.Exit(1)
		}
		fmt.Printf("retired %d instructions (halted=%v)\n", steps, m.Halted())
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if v := m.Reg(r); v != 0 {
				fmt.Printf("  r%-2d = %d\n", r, v)
			}
		}
	case *out != "":
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcasm:", err)
			os.Exit(1)
		}
		count, err := trace.CopyV2(trace.NewWriterV2(f),
			trace.NewLimit(vm.NewLooping(prog), *n))
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcasm:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", count, *out)
	case *predict:
		factory := trace.FactoryFunc(func() trace.Source {
			return trace.NewLimit(vm.NewLooping(prog), *n)
		})
		res := sim.RunAccuracy(factory, *n, sim.DefaultConfig())
		fmt.Printf("BTB baseline over %d instructions:\n", res.Instructions)
		fmt.Printf("  conditional mispred:   %6.2f%%\n", 100*res.Conditional.MispredictRate())
		fmt.Printf("  indirect jump mispred: %6.2f%%  (%d jumps)\n",
			100*res.IndirectMispredictRate(), res.Indirect.Predictions)
	default:
		fmt.Println("nothing to do: pass -run, -dis, -predict or -o (see -help)")
	}
}
