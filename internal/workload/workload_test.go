package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

const smokeBudget = 300_000

func runStats(t *testing.T, w *Workload, budget int64) *trace.Stats {
	t.Helper()
	src := w.Open()
	st := trace.NewStats().Consume(trace.NewLimit(src, budget))
	if l, ok := src.(*vm.Looping); ok {
		if err := l.Err(); err != nil {
			t.Fatalf("%s: VM fault: %v", w.Name, err)
		}
	}
	return st
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			st := runStats(t, w, smokeBudget)
			if st.Instructions != smokeBudget {
				t.Fatalf("got %d instructions, want %d (program halted early or faulted)",
					st.Instructions, smokeBudget)
			}
			if st.Branches == 0 || st.IndJumps == 0 {
				t.Fatalf("no control flow: %+v", st)
			}
			branchFrac := float64(st.Branches) / float64(st.Instructions)
			if branchFrac < 0.05 || branchFrac > 0.45 {
				t.Errorf("branch fraction %.3f out of plausible range", branchFrac)
			}
			indFrac := float64(st.IndJumps) / float64(st.Instructions)
			if indFrac < 0.0005 || indFrac > 0.10 {
				t.Errorf("indirect jump fraction %.4f out of plausible range", indFrac)
			}
			t.Logf("%s: instr=%d branches=%d (%.1f%%) ind=%d (%.2f%%) static=%d maxTargets=%d poly=%.2f",
				w.Name, st.Instructions, st.Branches, 100*branchFrac,
				st.IndJumps, 100*indFrac, st.StaticIndJumps(), st.MaxTargets(),
				st.PolymorphicFraction())
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a := trace.Collect(trace.NewLimit(w.Open(), 20_000))
			b := trace.Collect(trace.NewLimit(w.Open(), 20_000))
			if len(a) != len(b) {
				t.Fatalf("pass lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("perl"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if got := len(All()); got != 8 {
		t.Fatalf("got %d workloads, want 8", got)
	}
	pg := PerlGcc()
	if pg[0].Name != "perl" || pg[1].Name != "gcc" {
		t.Fatalf("PerlGcc returned %s, %s", pg[0].Name, pg[1].Name)
	}
}
