package workload

import (
	"math/rand"

	"repro/internal/isa"
)

// The perl workload is a bytecode interpreter, the program shape the paper
// singles out: "the main loop of the interpreter parses the perl script...
// this parser consists of a set of indirect jumps whose targets are decided
// by the tokens which make up the current line of the perl script", and the
// script "contains a loop that executes for many iterations", so the
// interpreter processes the same token sequence over and over. The dispatch
// jump is one hot static indirect jump with ~24 targets whose sequence is
// periodic — exactly the case where recording the recent indirect-jump
// targets (path history) pins down the position in the script.
//
// Handlers do data-dependent work driven by an ever-advancing pseudo-random
// table, so conditional-branch outcomes (pattern history) vary between
// script-loop iterations while the token path stays stable.

// Interpreter token opcodes.
const (
	tokNop = iota
	tokAdd
	tokSub
	tokMul
	tokDiv
	tokLoadV
	tokStoreV
	tokPrint
	tokIf
	tokLoopStart
	tokLoopEnd
	tokMatch
	tokConcat
	tokIndex
	tokSplit
	tokChop
	tokPush
	tokPop
	tokShift
	tokJoin
	tokSprintf
	tokHex
	tokOrd
	tokEnd

	numTokens
)

// Perl program register conventions.
const (
	pZ    = isa.Reg(31) // always zero
	pScr  = isa.Reg(1)  // script base (byte address)
	pTI   = isa.Reg(2)  // token index
	pTok  = isa.Reg(3)  // current token
	pJT   = isa.Reg(4)  // jump table base
	pH    = isa.Reg(5)  // handler address
	pAcc  = isa.Reg(6)  // interpreter accumulator
	pT1   = isa.Reg(7)  // scratch
	pRC   = isa.Reg(8)  // random cursor (word index)
	pRB   = isa.Reg(9)  // random table base
	pT2   = isa.Reg(10) // work-loop trip counter
	pT3   = isa.Reg(11) // scratch
	pArgB = isa.Reg(12) // token-argument table base
	pAV   = isa.Reg(13) // argument value
	pLSP  = isa.Reg(14) // loop-stack pointer (byte offset)
	pLSB  = isa.Reg(15) // loop-stack base
	pVar  = isa.Reg(16) // variable table base
	pT4   = isa.Reg(17) // scratch
	pT5   = isa.Reg(18) // scratch
	pLen  = isa.Reg(20) // script length in tokens
)

const perlRandWords = 4096

// perlEmitRand advances the random cursor and loads the next pseudo-random
// word into dst. The cursor advances monotonically (mod table size) so
// consecutive script-loop iterations observe different data.
func perlEmitRand(b *isa.Builder, dst isa.Reg) {
	b.ALUI(isa.AluAdd, pRC, pRC, 1)
	b.ALUI(isa.AluAnd, pRC, pRC, perlRandWords-1)
	b.ALUI(isa.AluSll, pT1, pRC, 3)
	b.ALU(isa.AluAdd, pT1, pRB, pT1)
	b.Load(dst, pT1, 0)
}

// perlEmitWork emits a fixed-trip work loop folding random *data* into the
// accumulator. Trip counts are per-handler constants: the data varies
// between script-loop iterations but the control flow does not, so the
// handler contributes work and a learnable branch pattern rather than
// history-polluting noise (data-dependent *branches* are injected
// deliberately and sparingly by the IF and MATCH tokens).
func perlEmitWork(b *isa.Builder, label string, flavor isa.AluOp, trips int64) {
	b.LoadImm(pT2, trips)
	b.Label(label)
	perlEmitRand(b, pT4)
	b.ALU(flavor, pAcc, pAcc, pT4)
	b.ALUI(isa.AluSub, pT2, pT2, 1)
	b.Br(isa.CondNE, pT2, pZ, label)
}

// perlScript generates the interpreted token program: a prologue, an outer
// loop of many iterations over a fixed body (with one small nested loop),
// and an epilogue.
func perlScript(rng *rand.Rand) (tokens, args []int64) {
	emit := func(tok, arg int64) {
		tokens = append(tokens, tok)
		args = append(args, arg)
	}
	// Tokens eligible for random positions, weighted roughly like an
	// interpreter's opcode mix.
	alphabet := []int64{
		tokAdd, tokAdd, tokSub, tokMul, tokLoadV, tokLoadV, tokStoreV,
		tokPrint, tokConcat, tokIndex, tokSplit, tokChop, tokPush, tokPop,
		tokShift, tokJoin, tokSprintf, tokHex, tokOrd, tokNop, tokDiv,
		tokMatch, tokMatch,
	}
	prev := int64(tokNop)
	pick := func() int64 {
		// Scripts repeat operations: ~22% of tokens continue a run, which
		// is what gives the BTB its (few) correct indirect predictions.
		if rng.Float64() < 0.22 {
			return prev
		}
		prev = alphabet[rng.Intn(len(alphabet))]
		return prev
	}

	for i := 0; i < 6; i++ {
		emit(pick(), 0)
	}
	emit(tokLoopStart, 150) // the script's hot loop
	body := 40
	for i := 0; i < body; i++ {
		switch i {
		case 12:
			// One IF whose data-dependent skip perturbs the token path.
			emit(tokIf, 0)
			emit(tokChop, 0) // skippable simple token
		case 25:
			// A nested loop, as scripts tend to have.
			emit(tokLoopStart, 4)
			for j := 0; j < 6; j++ {
				emit(pick(), 0)
			}
			emit(tokLoopEnd, 0)
		default:
			emit(pick(), 0)
		}
	}
	emit(tokLoopEnd, 0)
	for i := 0; i < 4; i++ {
		emit(pick(), 0)
	}
	emit(tokEnd, 0)
	return tokens, args
}

func buildPerl() *isa.Program {
	rng := rand.New(rand.NewSource(0x9e1) /* fixed: deterministic workload */)
	b := isa.NewBuilder("perl", 0x10000)

	tokens, args := perlScript(rng)
	scriptBase := b.Word(tokens[0])
	for _, t := range tokens[1:] {
		b.Word(t)
	}
	argsBase := b.Word(args[0])
	for _, a := range args[1:] {
		b.Word(a)
	}
	jmptabBase := b.Words(numTokens)
	mtabBase := b.Words(4) // MATCH sub-dispatch table
	randBase := b.Words(perlRandWords)
	for i := 0; i < perlRandWords; i++ {
		b.SetWord(randBase+int64(i)*8, int64(rng.Uint64()>>1))
	}
	varBase := b.Words(16)
	loopStackBase := b.Words(64)

	// Initialisation.
	b.Label("init")
	b.LoadImm(pZ, 0)
	b.LoadImm(pScr, scriptBase)
	b.LoadImm(pArgB, argsBase)
	b.LoadImm(pJT, jmptabBase)
	b.LoadImm(pRB, randBase)
	b.LoadImm(pVar, varBase)
	b.LoadImm(pLSB, loopStackBase)
	b.LoadImm(pLSP, 0)
	b.LoadImm(pRC, 0)
	b.LoadImm(pAcc, 1)
	b.LoadImm(pTI, 0)
	b.LoadImm(pLen, int64(len(tokens)))

	// The interpreter's fetch-dispatch loop. The JmpIndSel below is the
	// hot static indirect jump the paper's perl discussion is about.
	b.Label("loop")
	b.Br(isa.CondGE, pTI, pLen, "done")
	b.ALUI(isa.AluSll, pT1, pTI, 3)
	b.ALU(isa.AluAdd, pT1, pScr, pT1)
	b.Load(pTok, pT1, 0)
	// Token-class checks before dispatch (operator vs operand vs control),
	// the guard tests an interpreter performs — and the mechanism that
	// puts token bits into the global pattern history.
	b.LoadImm(pT5, 4)
	b.Br(isa.CondLT, pTok, pT5, "cls1")
	b.ALUI(isa.AluAdd, pAcc, pAcc, 1)
	b.Label("cls1")
	b.LoadImm(pT5, 8)
	b.Br(isa.CondLT, pTok, pT5, "cls2")
	b.ALUI(isa.AluXor, pAcc, pAcc, 7)
	b.Label("cls2")
	b.LoadImm(pT5, 16)
	b.Br(isa.CondLT, pTok, pT5, "cls3")
	b.ALUI(isa.AluAdd, pAcc, pAcc, 3)
	b.Label("cls3")
	b.ALUI(isa.AluSll, pT1, pTok, 3)
	b.ALU(isa.AluAdd, pT1, pJT, pT1)
	b.Load(pH, pT1, 0)
	b.ALUI(isa.AluAdd, pTI, pTI, 1)
	b.JmpIndSel(pH, pTok)

	b.Label("done")
	b.Halt()

	// Token handlers.
	handler := func(name string, body func()) {
		b.Label(name)
		body()
		b.Jmp("loop")
	}

	handler("h_nop", func() {
		b.ALUI(isa.AluAdd, pAcc, pAcc, 1)
	})
	handler("h_add", func() { perlEmitWork(b, "w_add", isa.AluAdd, 4) })
	handler("h_sub", func() { perlEmitWork(b, "w_sub", isa.AluSub, 4) })
	handler("h_mul", func() {
		perlEmitWork(b, "w_mul", isa.AluMul, 3)
		b.ALUI(isa.AluAdd, pAcc, pAcc, 17)
	})
	handler("h_div", func() {
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluOr, pT3, pT3, 1) // avoid zero divisor
		b.ALU(isa.AluDiv, pAcc, pAcc, pT3)
		perlEmitWork(b, "w_div", isa.AluAdd, 2)
	})
	handler("h_loadv", func() {
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 15)
		b.ALUI(isa.AluSll, pT3, pT3, 3)
		b.ALU(isa.AluAdd, pT3, pVar, pT3)
		b.Load(pT4, pT3, 0)
		b.ALU(isa.AluAdd, pAcc, pAcc, pT4)
		perlEmitWork(b, "w_loadv", isa.AluXor, 2)
	})
	handler("h_storev", func() {
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 15)
		b.ALUI(isa.AluSll, pT3, pT3, 3)
		b.ALU(isa.AluAdd, pT3, pVar, pT3)
		b.Store(pT3, 0, pAcc)
		perlEmitWork(b, "w_storev", isa.AluAdd, 2)
	})
	handler("h_print", func() {
		perlEmitWork(b, "w_print1", isa.AluAdd, 4)
		b.Call("fmtval") // shared formatting helper (RAS traffic)
		perlEmitWork(b, "w_print2", isa.AluXor, 2)
	})
	handler("h_if", func() {
		// Data-dependent skip of the next token (~25% of instances).
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 3)
		b.Br(isa.CondNE, pT3, pZ, "if_noskip")
		b.ALUI(isa.AluAdd, pTI, pTI, 1)
		b.Label("if_noskip")
		b.ALUI(isa.AluAdd, pAcc, pAcc, 3)
	})
	handler("h_loopstart", func() {
		// args[pTI-1] is the trip count; push (resume pos, count).
		b.ALUI(isa.AluSub, pT3, pTI, 1)
		b.ALUI(isa.AluSll, pT3, pT3, 3)
		b.ALU(isa.AluAdd, pT3, pArgB, pT3)
		b.Load(pAV, pT3, 0)
		b.ALU(isa.AluAdd, pT3, pLSB, pLSP)
		b.Store(pT3, 0, pTI)
		b.Store(pT3, 8, pAV)
		b.ALUI(isa.AluAdd, pLSP, pLSP, 16)
	})
	handler("h_loopend", func() {
		b.ALU(isa.AluAdd, pT3, pLSB, pLSP)
		b.Load(pAV, pT3, -8)
		b.ALUI(isa.AluSub, pAV, pAV, 1)
		b.Br(isa.CondEQ, pAV, pZ, "le_done")
		b.Store(pT3, -8, pAV)
		b.Load(pTI, pT3, -16)
		b.Jmp("loop")
		b.Label("le_done")
		b.ALUI(isa.AluSub, pLSP, pLSP, 16)
	})
	handler("h_match", func() {
		// Regex-engine-like sub-dispatch: the second static indirect jump,
		// four targets selected by data.
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 3)
		b.ALUI(isa.AluSll, pT4, pT3, 3)
		b.ALUI(isa.AluAdd, pT4, pT4, mtabBase)
		b.Load(pH, pT4, 0)
		b.JmpIndSel(pH, pT3)
	})
	// MATCH sub-handlers. All four run the same trip count so the
	// (randomly selected) sub-handler does not shift pattern-history
	// alignment for the tokens that follow.
	for i, flavor := range []isa.AluOp{isa.AluAdd, isa.AluXor, isa.AluOr, isa.AluSub} {
		b.Label(matchLabel(i))
		perlEmitWork(b, "w_"+matchLabel(i), flavor, 2)
		b.Jmp("loop")
	}
	handler("h_concat", func() { perlEmitWork(b, "w_concat", isa.AluOr, 3) })
	handler("h_index", func() {
		perlEmitWork(b, "w_index", isa.AluAnd, 3)
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 1)
		b.Br(isa.CondEQ, pT3, pZ, "index_z")
		b.ALUI(isa.AluAdd, pAcc, pAcc, 5)
		b.Label("index_z")
	})
	handler("h_split", func() { perlEmitWork(b, "w_split", isa.AluAdd, 5) })
	handler("h_chop", func() {
		b.ALUI(isa.AluSrl, pAcc, pAcc, 1)
		b.ALUI(isa.AluAdd, pAcc, pAcc, 2)
	})
	handler("h_push", func() {
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 15)
		b.ALUI(isa.AluSll, pT3, pT3, 3)
		b.ALU(isa.AluAdd, pT3, pVar, pT3)
		b.Store(pT3, 0, pAcc)
	})
	handler("h_pop", func() {
		perlEmitRand(b, pT3)
		b.ALUI(isa.AluAnd, pT3, pT3, 15)
		b.ALUI(isa.AluSll, pT3, pT3, 3)
		b.ALU(isa.AluAdd, pT3, pVar, pT3)
		b.Load(pAcc, pT3, 0)
	})
	handler("h_shift", func() {
		b.ALUI(isa.AluSll, pT3, pAcc, 2)
		b.ALU(isa.AluXor, pAcc, pAcc, pT3)
		perlEmitWork(b, "w_shift", isa.AluXor, 2)
	})
	handler("h_join", func() { perlEmitWork(b, "w_join", isa.AluXor, 4) })
	handler("h_sprintf", func() {
		// Straight-line formatting plus the shared helper.
		for i := int64(0); i < 6; i++ {
			b.ALUI(isa.AluAdd, pT3, pAcc, i)
			b.ALUI(isa.AluSll, pT4, pT3, 1)
			b.ALU(isa.AluXor, pAcc, pAcc, pT4)
		}
		b.Call("fmtval")
	})
	handler("h_hex", func() {
		b.ALUI(isa.AluSrl, pT3, pAcc, 4)
		b.ALUI(isa.AluAnd, pT3, pT3, 0xff)
		b.ALU(isa.AluAdd, pAcc, pAcc, pT3)
	})
	handler("h_ord", func() {
		b.ALUI(isa.AluAnd, pT3, pAcc, 0x7f)
		b.ALU(isa.AluAdd, pAcc, pAcc, pT3)
	})
	b.Label("h_end")
	b.Halt()

	// fmtval: shared value-formatting subroutine used by PRINT and SPRINTF.
	b.Label("fmtval")
	b.ALUI(isa.AluSrl, pT3, pAcc, 8)
	b.ALUI(isa.AluAnd, pT3, pT3, 0xff)
	b.ALU(isa.AluAdd, pAcc, pAcc, pT3)
	b.ALUI(isa.AluSll, pT4, pAcc, 2)
	b.ALU(isa.AluXor, pAcc, pAcc, pT4)
	b.Ret()

	prog := b.SetEntry("init").MustBuild()

	// Patch the dispatch tables now that handler addresses are known.
	handlers := []string{
		"h_nop", "h_add", "h_sub", "h_mul", "h_div", "h_loadv", "h_storev",
		"h_print", "h_if", "h_loopstart", "h_loopend", "h_match", "h_concat",
		"h_index", "h_split", "h_chop", "h_push", "h_pop", "h_shift",
		"h_join", "h_sprintf", "h_hex", "h_ord", "h_end",
	}
	for i, name := range handlers {
		addr, ok := b.AddrOfLabel(name)
		if !ok {
			panic("perl: missing handler " + name)
		}
		prog.Data[(jmptabBase+int64(i)*8)/8] = int64(addr)
	}
	for i := 0; i < 4; i++ {
		addr, ok := b.AddrOfLabel(matchLabel(i))
		if !ok {
			panic("perl: missing match handler")
		}
		prog.Data[(mtabBase+int64(i)*8)/8] = int64(addr)
	}
	return prog
}

func matchLabel(i int) string {
	return "m_case" + string(rune('0'+i))
}

var perlWorkload = register(&Workload{
	Name:        "perl",
	Description: "bytecode interpreter: one hot jump-table dispatch over a looping token script",
	build:       buildPerl,
})
