package faultinject

// Filesystem fault injection for the perfstore durability protocol. An
// FSPlan wraps a perfstore.VFS and fails chosen operations — short
// writes, ENOSPC, fsync errors, truncate errors, rename errors — on the
// exact syscalls the store's ack barrier depends on. Like Plan, an FSPlan
// is inert until wrapped around a live VFS, and Triggered lets tests
// assert the faults actually fired.
//
// Operations are counted 1-based per kind across the whole plan (write #1
// is the first Write on a path matching PathSubstr, and so on), so a test
// that serialises its Puts can aim a fault at one specific append.

import (
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
	"syscall"

	"repro/internal/perfstore"
)

// FSPlan describes filesystem faults to inject into a perfstore run. The
// zero value injects nothing. Fault fields name the 1-based occurrence of
// the operation that fails; 0 disables that fault.
type FSPlan struct {
	// PathSubstr restricts counting and faulting to paths containing this
	// substring ("" matches everything). Use "seg-" to fault segment
	// appends without touching the manifest, or "MANIFEST" for the
	// opposite.
	PathSubstr string

	// ShortWriteAt makes the Nth matching Write persist only the first
	// half of its buffer and return io.ErrShortWrite — a torn append.
	ShortWriteAt int
	// WriteErrAt makes the Nth matching Write fail with ENOSPC before
	// writing anything.
	WriteErrAt int
	// SyncErrAt makes the Nth matching Sync fail with EIO. The data may
	// have reached the file — exactly the ambiguity real fsync failures
	// leave behind.
	SyncErrAt int
	// TruncateErrAt makes the Nth matching Truncate fail with EIO,
	// blocking the store's in-process rollback after a failed append.
	TruncateErrAt int
	// RenameErrAt makes the Nth matching Rename fail with EIO, breaking
	// atomic manifest installation.
	RenameErrAt int

	mu     sync.Mutex
	counts map[string]int
	hits   []string
}

// Wrap returns a VFS that applies the plan's faults on top of inner.
func (p *FSPlan) Wrap(inner perfstore.VFS) perfstore.VFS {
	return &faultFS{plan: p, inner: inner}
}

// Triggered returns descriptions of the faults that actually fired, in
// firing order.
func (p *FSPlan) Triggered() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.hits...)
}

// tick counts one occurrence of op on path, returning its 1-based index,
// or 0 when the path is outside the plan's scope.
func (p *FSPlan) tick(op, path string) int {
	if p.PathSubstr != "" && !strings.Contains(path, p.PathSubstr) {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counts == nil {
		p.counts = make(map[string]int)
	}
	p.counts[op]++
	return p.counts[op]
}

// fire reports whether occurrence n is the one fault `at` targets, and
// records the hit if so.
func (p *FSPlan) fire(op, path string, n, at int) bool {
	if at <= 0 || n == 0 || n != at {
		return false
	}
	p.mu.Lock()
	p.hits = append(p.hits, fmt.Sprintf("%s:%s#%d", op, path, n))
	p.mu.Unlock()
	return true
}

type faultFS struct {
	plan  *FSPlan
	inner perfstore.VFS
}

func (f *faultFS) MkdirAll(path string, perm fs.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *faultFS) OpenFile(path string, flag int, perm fs.FileMode) (perfstore.File, error) {
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{plan: f.plan, inner: file, path: path}, nil
}

func (f *faultFS) Open(path string) (perfstore.File, error) {
	// Read-side opens pass through unfaulted: the plans model write-path
	// failures, and reads are already guarded by CRCs and content hashes.
	return f.inner.Open(path)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if n := f.plan.tick("rename", newpath); f.plan.fire("rename", newpath, n, f.plan.RenameErrAt) {
		return &fs.PathError{Op: "rename", Path: newpath, Err: syscall.EIO}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(path string) error                   { return f.inner.Remove(path) }
func (f *faultFS) ReadDir(path string) ([]fs.DirEntry, error) { return f.inner.ReadDir(path) }
func (f *faultFS) Stat(path string) (fs.FileInfo, error)      { return f.inner.Stat(path) }
func (f *faultFS) SyncDir(path string) error                  { return f.inner.SyncDir(path) }

type faultFile struct {
	plan  *FSPlan
	inner perfstore.File
	path  string
}

func (f *faultFile) Write(b []byte) (int, error) {
	n := f.plan.tick("write", f.path)
	if f.plan.fire("write", f.path, n, f.plan.ShortWriteAt) {
		// Persist half the buffer for real: the torn bytes must actually
		// be on disk for the reopen scan to have something to repair.
		w, _ := f.inner.Write(b[:len(b)/2])
		return w, io.ErrShortWrite
	}
	if f.plan.fire("write", f.path, n, f.plan.WriteErrAt) {
		return 0, &fs.PathError{Op: "write", Path: f.path, Err: syscall.ENOSPC}
	}
	return f.inner.Write(b)
}

func (f *faultFile) Sync() error {
	n := f.plan.tick("sync", f.path)
	if f.plan.fire("sync", f.path, n, f.plan.SyncErrAt) {
		return &fs.PathError{Op: "sync", Path: f.path, Err: syscall.EIO}
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	n := f.plan.tick("truncate", f.path)
	if f.plan.fire("truncate", f.path, n, f.plan.TruncateErrAt) {
		return &fs.PathError{Op: "truncate", Path: f.path, Err: syscall.EIO}
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) ReadAt(b []byte, off int64) (int, error) { return f.inner.ReadAt(b, off) }
func (f *faultFile) Close() error                            { return f.inner.Close() }
func (f *faultFile) Name() string                            { return f.inner.Name() }
func (f *faultFile) Stat() (fs.FileInfo, error)              { return f.inner.Stat() }
