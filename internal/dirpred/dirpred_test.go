package dirpred

import (
	"math/rand"
	"testing"
)

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("always-taken branch predicted not-taken")
	}
	for i := 0; i < 100; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("always-not-taken branch predicted taken")
	}
}

func TestLearnsAlternatingBranchViaHistory(t *testing.T) {
	// An alternating branch defeats a 2-bit counter but is perfectly
	// predictable with global history: after warmup the gshare predictor
	// should be nearly always right.
	p := New(Config{HistoryBits: 8, Scheme: SchemeGshare})
	pc := uint64(0x4000)
	taken := false
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		taken = !taken
		pred := p.Predict(pc)
		if i >= 1000 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Fatalf("alternating-branch accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestLearnsPeriodicPatternGAg(t *testing.T) {
	p := New(Config{HistoryBits: 8, Scheme: SchemeGAg})
	pattern := []bool{true, true, false, true, false, false}
	correct, total := 0, 0
	for i := 0; i < 6000; i++ {
		want := pattern[i%len(pattern)]
		pred := p.Predict(0x100)
		if i > 3000 {
			total++
			if pred == want {
				correct++
			}
		}
		p.Update(0x100, want)
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Fatalf("periodic-pattern accuracy = %.3f, want >= 0.98", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		want := rng.Intn(2) == 0
		if p.Predict(0x200) == want {
			correct++
		}
		total++
		p.Update(0x200, want)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.6 {
		t.Fatalf("random branch accuracy %.3f suspiciously high", acc)
	}
}

func TestPAgIsolatesBranches(t *testing.T) {
	// Two interleaved branches: one alternating, one always-taken. A
	// per-address scheme learns both without cross-pollution even though
	// they interleave (which would scramble a pure GAg history).
	p := New(Config{HistoryBits: 6, Scheme: SchemePAg})
	alt := uint64(0x100)
	always := uint64(0x204)
	altTaken := false
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		altTaken = !altTaken
		if i > 2000 {
			total += 2
			if p.Predict(alt) == altTaken {
				correct++
			}
			if p.Predict(always) {
				correct++
			}
		}
		p.Update(alt, altTaken)
		p.Update(always, true)
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Fatalf("PAg accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestPAgPeriodicPerBranch(t *testing.T) {
	p := New(Config{HistoryBits: 8, Scheme: SchemePAg})
	pattern := []bool{true, true, true, false}
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		want := pattern[i%len(pattern)]
		if i > 2000 {
			total++
			if p.Predict(0x400) == want {
				correct++
			}
		}
		p.Update(0x400, want)
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Fatalf("PAg periodic accuracy = %.3f", acc)
	}
	p.Reset()
	// After reset the per-address registers must be cleared too.
	if p.index(0x400) != 0 {
		t.Fatal("per-address history survived reset")
	}
}

func TestHistoryShared(t *testing.T) {
	p := New(DefaultConfig())
	if p.History().Len() != DefaultConfig().HistoryBits {
		t.Fatal("exposed history register has wrong length")
	}
	p.Update(0x100, true)
	if p.History().Value() != 1 {
		t.Fatal("history register not updated")
	}
	p.Reset()
	if p.History().Value() != 0 {
		t.Fatal("reset did not clear history")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid history length did not panic")
		}
	}()
	New(Config{HistoryBits: 0})
}
