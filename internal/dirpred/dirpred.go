// Package dirpred implements the two-level adaptive conditional-branch
// direction predictor (Yeh & Patt; gshare variant after McFarling) that the
// simulated fetch engine uses for conditional branches. Its global history
// register is the same pattern history the target cache indexes with, so
// the target cache "can use the branch predictor's branch history register".
package dirpred

import (
	"fmt"

	"repro/internal/history"
)

// Scheme selects how the pattern history table is indexed.
type Scheme uint8

const (
	// SchemeGshare XORs the branch address with the global history.
	SchemeGshare Scheme = iota
	// SchemeGAg indexes with global history alone.
	SchemeGAg
	// SchemePAg keeps a history register per static branch (the paper's
	// BTB stores "3 branch history bits" per entry for exactly this) and
	// indexes a shared pattern table with it.
	SchemePAg
)

// perAddrSlots is the per-address history table size for SchemePAg.
const perAddrSlots = 1024

// Config describes a two-level direction predictor.
type Config struct {
	// HistoryBits is the global history register length and the log2 of
	// the pattern history table size.
	HistoryBits int
	Scheme      Scheme
}

// DefaultConfig returns a 12-bit gshare predictor, accurate enough that
// conditional branches are not the bottleneck in the timing experiments
// (the paper's focus is indirect jumps).
func DefaultConfig() Config {
	return Config{HistoryBits: 12, Scheme: SchemeGshare}
}

// Predictor is a two-level direction predictor with 2-bit saturating
// counters in its pattern history table.
type Predictor struct {
	cfg     Config
	hist    *history.Pattern
	table   []uint8 // 2-bit counters, initialised weakly taken
	mask    uint64
	perAddr []uint64 // per-branch history registers (SchemePAg)
}

// New returns a predictor for cfg.
func New(cfg Config) *Predictor {
	if cfg.HistoryBits < 1 || cfg.HistoryBits > 30 {
		panic(fmt.Sprintf("dirpred: invalid history length %d", cfg.HistoryBits))
	}
	size := 1 << cfg.HistoryBits
	p := &Predictor{
		cfg:   cfg,
		hist:  history.NewPattern(cfg.HistoryBits),
		table: make([]uint8, size),
		mask:  uint64(size - 1),
	}
	for i := range p.table {
		p.table[i] = 2 // weakly taken
	}
	if cfg.Scheme == SchemePAg {
		p.perAddr = make([]uint64, perAddrSlots)
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	switch p.cfg.Scheme {
	case SchemeGAg:
		return p.hist.Value() & p.mask
	case SchemePAg:
		return p.perAddr[(pc>>2)%perAddrSlots] & p.mask
	default:
		return (p.hist.Value() ^ (pc >> 2)) & p.mask
	}
}

// Predict returns the predicted direction for the conditional branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts the
// outcome into the global history register.
func (p *Predictor) Update(pc uint64, taken bool) {
	idx := p.index(pc)
	ctr := p.table[idx]
	if taken {
		if ctr < 3 {
			ctr++
		}
	} else if ctr > 0 {
		ctr--
	}
	p.table[idx] = ctr
	if p.perAddr != nil {
		slot := (pc >> 2) % perAddrSlots
		h := p.perAddr[slot] << 1
		if taken {
			h |= 1
		}
		p.perAddr[slot] = h & p.mask
	}
	p.hist.Update(taken)
}

// History exposes the global history register (shared with the target
// cache, as in the paper).
func (p *Predictor) History() *history.Pattern { return p.hist }

// Reset clears tables and history.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 2
	}
	for i := range p.perAddr {
		p.perAddr[i] = 0
	}
	p.hist.Reset()
}
