package perfstore

// Offline integrity checking for a store directory: fsck walks every
// shard segment read-only, re-validates every CRC and every content hash,
// and classifies damage. `tcperf fsck` prints the report; with -fix it
// truncates torn tails the same way a store reopen would, so a crashed
// server's directory can be certified clean without starting the server.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckIssue is one problem found in a segment file.
type FsckIssue struct {
	Path string `json:"path"`
	// Kind is "torn-tail" (undecodable bytes after the last good record —
	// normal crash damage, repairable by truncation), "hash-mismatch" (a
	// record whose body no longer matches its content-hash ID — real
	// corruption), or "stray-file" (an unexpected file in a shard dir).
	Kind string `json:"kind"`
	// Offset is where the clean prefix ends (torn-tail) or the record
	// starts (hash-mismatch).
	Offset int64 `json:"offset"`
	// LostBytes counts bytes past the clean prefix for torn tails.
	LostBytes int64  `json:"lost_bytes,omitempty"`
	Detail    string `json:"detail"`
	// Fixed is set when FsckOptions.Fix truncated the damage away.
	Fixed bool `json:"fixed,omitempty"`
}

// FsckReport summarises one fsck pass.
type FsckReport struct {
	Dir        string      `json:"dir"`
	Shards     int         `json:"shards"`
	Segments   int         `json:"segments"`
	Records    int64       `json:"records"`
	BodyBytes  int64       `json:"body_bytes"`
	Duplicates int64       `json:"duplicate_rows"`
	Issues     []FsckIssue `json:"issues,omitempty"`
}

// Clean reports whether the store needs no attention: no issues at all,
// or only torn tails that were fixed.
func (r *FsckReport) Clean() bool {
	for _, is := range r.Issues {
		if !is.Fixed {
			return false
		}
	}
	return true
}

// Summary renders a one-line human digest.
func (r *FsckReport) Summary() string {
	state := "clean"
	if !r.Clean() {
		state = fmt.Sprintf("%d issue(s)", len(r.Issues))
	} else if len(r.Issues) > 0 {
		state = fmt.Sprintf("clean after %d fix(es)", len(r.Issues))
	}
	return fmt.Sprintf("%s: %d records in %d segments across %d shards (%d body bytes, %d duplicate rows): %s",
		r.Dir, r.Records, r.Segments, r.Shards, r.BodyBytes, r.Duplicates, state)
}

// FsckOptions configure Fsck.
type FsckOptions struct {
	// Fix truncates torn tails back to the clean prefix, exactly as a
	// store reopen would. Hash mismatches are never auto-fixed.
	Fix bool
	// FS overrides the filesystem; nil means the real one.
	FS VFS
}

// Fsck verifies the store directory at dir without opening it for
// writing. It is safe to run against a directory no server is using; a
// running server's active appends would be reported as torn tails.
func Fsck(dir string, opts FsckOptions) (*FsckReport, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS()
	}
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{Dir: dir, Shards: m.Shards}
	seen := make(map[string]string) // content ID -> first path holding it
	for i := 0; i < m.Shards; i++ {
		shardDir := filepath.Join(dir, shardName(i))
		entries, err := fsys.ReadDir(shardDir)
		if err != nil {
			if os.IsNotExist(err) {
				continue // shard never received an upload
			}
			return nil, err
		}
		var segs []int
		for _, e := range entries {
			n := parseSegName(e.Name())
			if n == 0 || e.IsDir() {
				rep.Issues = append(rep.Issues, FsckIssue{
					Path:   filepath.Join(shardDir, e.Name()),
					Kind:   "stray-file",
					Detail: "unexpected entry in shard directory",
				})
				continue
			}
			segs = append(segs, n)
		}
		sort.Ints(segs)
		for _, n := range segs {
			path := filepath.Join(shardDir, segName(n))
			if err := fsckSegment(fsys, path, opts.Fix, rep, seen); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// readManifest loads the manifest without creating one.
func readManifest(fsys VFS, dir string) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(path); err != nil {
		return manifest{}, fmt.Errorf("perfstore: %s is not a store (no %s): %w", dir, manifestName, err)
	}
	return loadOrInitManifest(fsys, dir, 0)
}

// fsckSegment scans one segment, verifying CRCs and content hashes.
func fsckSegment(fsys VFS, path string, fix bool, rep *FsckReport, seen map[string]string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := st.Size()
	rep.Segments++
	cleanLen, scanErr := scanSegment(io.NewSectionReader(f, 0, size), func(rec scannedRecord) error {
		m := rec.Meta
		rep.Records++
		rep.BodyBytes += int64(len(rec.Body))
		if got := ContentID(m.Kind, m.Machine, m.Commit, m.Experiment, rec.Body); got != m.ID {
			rep.Issues = append(rep.Issues, FsckIssue{
				Path:   path,
				Kind:   "hash-mismatch",
				Offset: rec.Off,
				Detail: fmt.Sprintf("record claims ID %s but content hashes to %s", short(m.ID), short(got)),
			})
			return nil
		}
		if _, dup := seen[m.ID]; dup {
			// Byte-identical re-append from a crash-retry window; harmless.
			rep.Duplicates++
		} else {
			seen[m.ID] = path
		}
		return nil
	})
	f.Close()
	if scanErr != nil {
		issue := FsckIssue{
			Path:      path,
			Kind:      "torn-tail",
			Offset:    cleanLen,
			LostBytes: size - cleanLen,
			Detail:    scanErr.Error(),
		}
		if fix {
			wf, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("perfstore: fsck fix %s: %w", path, err)
			}
			terr := wf.Truncate(cleanLen)
			if cerr := wf.Close(); terr == nil {
				terr = cerr
			}
			if terr != nil {
				return fmt.Errorf("perfstore: fsck truncating %s: %w", path, terr)
			}
			issue.Fixed = true
		}
		rep.Issues = append(rep.Issues, issue)
	}
	return nil
}

// short abbreviates a content hash for human-facing messages.
func short(id string) string {
	if len(id) > 12 {
		return id[:12] + "…"
	}
	return id
}

// WriteText renders the report for terminals: the summary line, then one
// line per issue.
func (r *FsckReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, r.Summary())
	for _, is := range r.Issues {
		status := ""
		if is.Fixed {
			status = " [fixed]"
		}
		extra := ""
		if is.LostBytes > 0 {
			extra = fmt.Sprintf(", %d bytes lost", is.LostBytes)
		}
		fmt.Fprintf(w, "  %-13s %s @%d%s: %s%s\n", is.Kind, is.Path, is.Offset, extra, strings.TrimPrefix(is.Detail, "perfstore: corrupt data: "), status)
	}
}
