package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/workload"
)

// probe helper for interactive calibration; kept as a skipped-by-default
// diagnostic (run with -run TestHistoryProbe -v).
func TestHistoryProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	const n = 500_000
	itt := func() core.TargetCache { return core.NewITTAGE(core.DefaultITTAGEConfig()) }
	mk := func(f history.PathFilter) func() history.Provider {
		return path(history.PathConfig{Bits: 64, BitsPerTarget: 1, AddrBitOffset: 2, Filter: f})
	}
	ws := workload.All()
	ws = append(ws, workload.Extras()...)
	for _, w := range ws {
		a := sim.RunAccuracy(w, n, tcConfig(itt, mk(history.FilterIndJmp)))
		b := sim.RunAccuracy(w, n, tcConfig(itt, mk(history.FilterControl)))
		c := sim.RunAccuracy(w, n, tcConfig(itt, pattern(64)))
		t.Logf("%-9s ittage: indjmp %6.2f%% control %6.2f%% pattern %6.2f%%",
			w.Name, 100*a.IndirectMispredictRate(), 100*b.IndirectMispredictRate(),
			100*c.IndirectMispredictRate())
	}
}
