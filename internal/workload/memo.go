package workload

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Trace memoization: every simulation cell in the experiment suite is a
// pure function of (workload trace prefix, predictor config), and the
// trace prefix depends only on (workload, budget) because workloads are
// deterministic. Re-running the VM per cell therefore pays the toy
// machine's interpretation cost dozens of times for byte-identical
// streams. The memo below captures each (name, budget) prefix exactly once
// process-wide into a compact trace.Replay and hands out independent
// cursors, making concurrent cells race-free (the capture buffer is
// immutable) and VM-execution-free after first touch.
//
// The memo never evicts: tcsim runs use at most two budgets per workload
// (accuracy and timing), roughly 4 bytes per instruction. Library users
// sweeping many budgets can call ResetMemo between sweeps.

type memoKey struct {
	name   string
	budget int64
}

type memoEntry struct {
	once sync.Once
	rep  *trace.Replay
}

var (
	memoMu   sync.Mutex
	memos    = map[memoKey]*memoEntry{}
	captures atomic.Int64
	replays  atomic.Int64
)

// TestCaptureTransform, when non-nil, post-processes every captured
// replay before it enters the memo. It exists for the fault-injection
// harness (internal/faultinject), which uses it to hand corrupted or
// truncated captures to chosen workloads. Install and clear it only from
// tests, bracketed by ResetMemo calls so no transformed capture leaks
// into or out of the faulty window.
var TestCaptureTransform func(name string, budget int64, rep *trace.Replay) *trace.Replay

// Replay returns the workload's first budget instructions as an immutable
// in-memory trace, capturing them from a fresh VM at most once per
// (workload, budget) key for the life of the process. The result
// implements trace.Factory; every Open returns an independent
// allocation-free cursor, safe for concurrent use.
func (w *Workload) Replay(budget int64) *trace.Replay {
	replays.Add(1)
	key := memoKey{w.Name, budget}
	memoMu.Lock()
	e, ok := memos[key]
	if !ok {
		e = &memoEntry{}
		memos[key] = e
	}
	memoMu.Unlock()
	e.once.Do(func() {
		captures.Add(1)
		e.rep = trace.CaptureSized(trace.NewLimit(w.Open(), budget), budget)
		if tf := TestCaptureTransform; tf != nil {
			e.rep = tf(w.Name, budget, e.rep)
		}
	})
	return e.rep
}

// CaptureCount returns the number of VM trace captures performed so far;
// tests assert its delta to prove each (workload, budget) key executes the
// VM at most once.
func CaptureCount() int64 { return captures.Load() }

// MemoCounters returns the number of Replay calls and the number of VM
// captures those calls performed; the difference is the memo's hit count,
// reported in the run-level telemetry.
func MemoCounters() (replayCalls, captureCount int64) {
	return replays.Load(), captures.Load()
}

// MemoStats reports the number of memoized (workload, budget) keys and
// their total encoded size in bytes.
func MemoStats() (keys int, bytes int64) {
	memoMu.Lock()
	defer memoMu.Unlock()
	for _, e := range memos {
		keys++
		if e.rep != nil {
			bytes += int64(e.rep.Size())
		}
	}
	return keys, bytes
}

// ResetMemo drops all memoized traces (tests; budget sweeps that would
// otherwise accumulate unbounded captures). In-flight Replay calls holding
// old entries are unaffected.
func ResetMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memos = map[memoKey]*memoEntry{}
}
