package benchmath

import (
	"math"
	"math/rand"
	"testing"
)

// --- Summary fixtures -------------------------------------------------

func TestSummaryFixture(t *testing.T) {
	s := NewSample([]float64{12, 10, 14, 11, 13})
	sum := s.Summary(0.95)
	if sum.N != 5 || sum.Center != 12 || sum.Mean != 12 || sum.Min != 10 || sum.Max != 14 {
		t.Fatalf("summary = %+v, want N=5 center=12 mean=12 min=10 max=14", sum)
	}
	// n=5 at 95%: even [min, max] only reaches 1 - 2/32 = 0.9375, the
	// tabulated exact coverage for the extreme order statistics.
	if sum.Lo != 10 || sum.Hi != 14 {
		t.Errorf("CI = [%v, %v], want [10, 14]", sum.Lo, sum.Hi)
	}
	if math.Abs(sum.Confidence-0.9375) > 1e-12 {
		t.Errorf("achieved confidence = %v, want 0.9375", sum.Confidence)
	}
}

func TestSummaryMedianEvenN(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 10})
	if got := s.Median(); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
}

func TestSummaryLargeNReachesConfidence(t *testing.T) {
	// n=30: the order-statistic interval must reach the requested 95%
	// and tighten well inside [min, max].
	vs := make([]float64, 30)
	for i := range vs {
		vs[i] = float64(i)
	}
	sum := NewSample(vs).Summary(0.95)
	if sum.Confidence < 0.95 {
		t.Errorf("achieved confidence = %v, want >= 0.95", sum.Confidence)
	}
	if sum.Lo <= sum.Min || sum.Hi >= sum.Max {
		t.Errorf("CI [%v, %v] should be strictly inside [%v, %v] at n=30", sum.Lo, sum.Hi, sum.Min, sum.Max)
	}
	if sum.Lo > sum.Center || sum.Hi < sum.Center {
		t.Errorf("CI [%v, %v] must contain the center %v", sum.Lo, sum.Hi, sum.Center)
	}
}

func TestSummarySingleton(t *testing.T) {
	sum := NewSample([]float64{7}).Summary(0.95)
	if sum.Lo != 7 || sum.Hi != 7 || sum.Confidence != 0 {
		t.Errorf("singleton summary = %+v, want degenerate CI with 0 confidence", sum)
	}
	if sum.Noise() != 0 {
		t.Errorf("singleton Noise = %v, want 0", sum.Noise())
	}
}

func TestNoise(t *testing.T) {
	sum := Summary{Center: 10, Lo: 9, Hi: 12}
	if got := sum.Noise(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Noise = %v, want 0.2", got)
	}
}

// --- Mann-Whitney fixtures --------------------------------------------
//
// Exact two-sided p-values below are textbook values, hand-derivable
// from the null distribution of U (C(n1+n2, n1) equally likely rank
// arrangements).

func TestMannWhitneyExactFixtures(t *testing.T) {
	cases := []struct {
		name  string
		x, y  []float64
		wantU float64
		wantP float64
	}{
		// Complete separation, n=3 vs 3: U=0, p = 2 * 1/C(6,3) = 0.1.
		{"separated3v3", []float64{1, 2, 3}, []float64{4, 5, 6}, 0, 0.1},
		// Complete separation, n=2 vs 2: p = 2 * 1/6.
		{"separated2v2", []float64{1, 2}, []float64{3, 4}, 0, 2.0 / 6},
		// Interleaved, n=2 vs 2: U1=1; P(U<=1) = 2/6, two-sided 4/6.
		{"interleaved2v2", []float64{1, 3}, []float64{2, 4}, 1, 4.0 / 6},
		// Singletons can never be significant: p is exactly 1.
		{"singletons", []float64{1}, []float64{2}, 0, 1},
		// Complete separation, n=5 vs 5: p = 2/C(10,5) = 2/252.
		{"separated5v5", []float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10}, 0, 2.0 / 252},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := MannWhitneyUTest(c.x, c.y)
			if err != nil {
				t.Fatal(err)
			}
			if res.Method != "exact" {
				t.Errorf("method = %q, want exact", res.Method)
			}
			if res.U != c.wantU {
				t.Errorf("U = %v, want %v", res.U, c.wantU)
			}
			if math.Abs(res.P-c.wantP) > 1e-12 {
				t.Errorf("p = %v, want %v", res.P, c.wantP)
			}
		})
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1, 4, 6, 9}
	y := []float64{2, 3, 7, 12, 15}
	a, err := MannWhitneyUTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MannWhitneyUTest(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.P-b.P) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", a.P, b.P)
	}
	if a.U+b.U != float64(len(x)*len(y)) {
		t.Errorf("U1 + U2 = %v, want n1*n2 = %d", a.U+b.U, len(x)*len(y))
	}
}

func TestMannWhitneyTiesUseNormal(t *testing.T) {
	x := []float64{1, 1, 2, 3, 5, 5, 5}
	y := []float64{1, 2, 2, 4, 5, 6, 7}
	res, err := MannWhitneyUTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "normal" {
		t.Errorf("method = %q, want normal (ties present)", res.Method)
	}
	if res.P <= 0 || res.P > 1 {
		t.Errorf("p = %v out of range", res.P)
	}
	if res.P < 0.3 {
		t.Errorf("p = %v, near-identical tied samples should not look significant", res.P)
	}
}

func TestMannWhitneyAllEqual(t *testing.T) {
	x := []float64{3, 3, 3}
	y := []float64{3, 3, 3, 3}
	res, err := MannWhitneyUTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("p = %v, want exactly 1 for indistinguishable samples", res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitneyUTest(nil, []float64{1}); err == nil {
		t.Error("want error for empty sample")
	}
}

// TestMannWhitneyExactVsNormal checks the two methods agree where both
// apply: for tie-free moderate samples the normal approximation with
// continuity correction should land within a couple of percent of the
// exact tail probability.
func TestMannWhitneyExactVsNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + 0.5
		}
		exact, err := MannWhitneyUTest(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Method != "exact" {
			t.Fatalf("trial %d: method = %q, want exact", trial, exact.Method)
		}
		// Recompute via the normal path by exceeding exactLimit with
		// duplicated logic: call the internal pieces through a bigger
		// sample is not possible here, so approximate instead: compare
		// the exact p to the normal formula evaluated directly.
		approx := normalApproxP(exact)
		if math.Abs(exact.P-approx) > 0.03 {
			t.Errorf("trial %d: exact p = %.4f, normal approx = %.4f (|diff| > 0.03)", trial, exact.P, approx)
		}
	}
}

// normalApproxP applies the tie-free normal approximation to a test
// result, mirroring the production formula.
func normalApproxP(r TestResult) float64 {
	mu := float64(r.N1) * float64(r.N2) / 2
	nf := float64(r.N1 + r.N2)
	sigma := math.Sqrt(float64(r.N1) * float64(r.N2) / 12 * (nf + 1))
	d := r.U - mu
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	return math.Erfc(math.Abs(d/sigma) / math.Sqrt2)
}

// --- Property tests against known distributions -----------------------

// TestPropertyIdenticalDistributions draws both samples from the same
// distribution many times and checks the false-positive rate at
// alpha=0.05 stays near 5% — the defining property of a calibrated test.
// Deterministic seed, so this never flakes.
func TestPropertyIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	rejections := 0
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = 10 + rng.NormFloat64()
		}
		for i := range y {
			y[i] = 10 + rng.NormFloat64()
		}
		res, err := MannWhitneyUTest(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejections++
		}
	}
	// Binomial(400, ~0.05) stays comfortably under 40 (double the rate);
	// the exact test is if anything conservative.
	if rejections > 40 {
		t.Errorf("identical distributions rejected %d/%d times at alpha=0.05 (false-positive rate %.1f%%)",
			rejections, trials, 100*float64(rejections)/trials)
	}
	if rejections == 0 {
		t.Log("note: zero rejections in 400 trials — test may be overly conservative")
	}
}

// TestPropertyShiftDetected draws the second sample shifted by five
// standard deviations and requires near-certain detection.
func TestPropertyShiftDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const trials = 200
	detected := 0
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = 10 + rng.NormFloat64()
		}
		for i := range y {
			y[i] = 15 + rng.NormFloat64() // 5 sigma shift
		}
		res, err := MannWhitneyUTest(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			detected++
		}
	}
	if detected < trials*95/100 {
		t.Errorf("5-sigma shift detected only %d/%d times", detected, trials)
	}
}

// TestPropertyCICoversTrueMedian samples from a distribution with known
// median and checks the order-statistic interval covers it at roughly
// its achieved confidence.
func TestPropertyCICoversTrueMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const trials = 400
	covered, sumConf := 0, 0.0
	for trial := 0; trial < trials; trial++ {
		vs := make([]float64, 15)
		for i := range vs {
			vs[i] = 100 + 10*rng.NormFloat64() // true median 100
		}
		sum := NewSample(vs).Summary(0.95)
		sumConf += sum.Confidence
		if sum.Lo <= 100 && 100 <= sum.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	want := sumConf / trials
	if rate < want-0.05 {
		t.Errorf("true median covered %.1f%% of the time, want about %.1f%%", 100*rate, 100*want)
	}
}

// --- Tidy units -------------------------------------------------------

func TestTidy(t *testing.T) {
	cases := []struct {
		v        float64
		unit     string
		wantV    float64
		wantUnit string
	}{
		{10352000000, "ns/op", 10.352, "s/op"},
		{123456, "ns/op", 123.456, "µs/op"},
		{512, "ns/op", 512, "ns/op"},
		{3.2e6, "ns", 3.2, "ms"},
		{2000000, "instrs/op", 2, "Minstrs/op"},
		{42, "cells/op", 42, "cells/op"},
		{12500, "cells", 12.5, "kcells"},
		{0, "ns/op", 0, "ns/op"},
	}
	for _, c := range cases {
		gotV, gotUnit := Tidy(c.v, c.unit)
		if math.Abs(gotV-c.wantV) > 1e-9 || gotUnit != c.wantUnit {
			t.Errorf("Tidy(%v, %q) = (%v, %q), want (%v, %q)", c.v, c.unit, gotV, gotUnit, c.wantV, c.wantUnit)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{10352000000, "ns/op", "10.4s/op"},
		{123456, "ns/op", "123µs/op"},
		{2000000, "instrs/op", "2.00Minstrs/op"},
		{1.5, "ns/op", "1.50ns/op"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v, c.unit); got != c.want {
			t.Errorf("FormatValue(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
