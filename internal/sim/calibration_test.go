package sim

import (
	"testing"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/workload"
)

// TestCalibrationSnapshot logs the indirect-jump misprediction rates of the
// main predictor variants on every workload. It asserts only the paper's
// coarse qualitative ordering; the logged numbers are the raw material for
// EXPERIMENTS.md.
func TestCalibrationSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	const budget = 1_000_000
	gshare := func() core.TargetCache {
		return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
	}
	pat9 := func() history.Provider { return history.NewPatternProvider(9) }
	pathInd := func() history.Provider {
		return history.NewPath(history.PathConfig{
			Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2, Filter: history.FilterIndJmp,
		})
	}
	taggedXor := func() core.TargetCache {
		return core.NewTagged(core.TaggedConfig{
			Entries: 256, Ways: 4, Scheme: core.SchemeHistoryXor, HistBits: 9,
		})
	}

	for _, w := range workload.All() {
		base := RunAccuracy(w, budget, DefaultConfig())
		twoBitCfg := DefaultConfig()
		twoBitCfg.BTB.Strategy = btb.StrategyTwoBit
		twoBit := RunAccuracy(w, budget, twoBitCfg)
		tcPat := RunAccuracy(w, budget, DefaultConfig().WithTargetCache(gshare, pat9))
		tcPath := RunAccuracy(w, budget, DefaultConfig().WithTargetCache(gshare, pathInd))
		tcTag := RunAccuracy(w, budget, DefaultConfig().WithTargetCache(taggedXor, pat9))

		t.Logf("%-9s ind=%7d | BTB %6.2f%% | 2bit %6.2f%% | gshare/pat9 %6.2f%% | gshare/path %6.2f%% | tagged4w %6.2f%% | cond %5.2f%% ret %5.2f%%",
			w.Name, base.Indirect.Predictions,
			100*base.IndirectMispredictRate(),
			100*twoBit.IndirectMispredictRate(),
			100*tcPat.IndirectMispredictRate(),
			100*tcPath.IndirectMispredictRate(),
			100*tcTag.IndirectMispredictRate(),
			100*base.Conditional.MispredictRate(),
			100*base.Returns.MispredictRate())

		if w.Name == "perl" || w.Name == "gcc" {
			if tcPat.IndirectMispredictRate() >= base.IndirectMispredictRate() {
				t.Errorf("%s: pattern-history target cache (%.2f%%) should beat the BTB (%.2f%%)",
					w.Name, 100*tcPat.IndirectMispredictRate(), 100*base.IndirectMispredictRate())
			}
		}
	}
}
