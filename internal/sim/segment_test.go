package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSegmentedMatchesStreaming is the tentpole equivalence pin: the
// segment-parallel driver must return a byte-identical AccuracyResult to
// the plain kernel for every dispatch arm, across segment counts (and
// with them, seam positions).
func TestSegmentedMatchesStreaming(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 30 * trace.BlockLen
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	ctx := context.Background()
	for name, cfg := range kernelConfigs() {
		want := RunAccuracyCtx(ctx, rep, budget, cfg)
		for _, segments := range []int{1, 2, 3, 5, 8} {
			got := RunAccuracySegmentedCtx(ctx, rep, budget, segments, cfg)
			if got != want {
				t.Errorf("%s segments=%d: result diverges\n  segmented %+v\n  streaming %+v", name, segments, got, want)
			}
		}
		// A budget short of the capture, so the final seam is interior.
		partial := int64(budget - 3*trace.BlockLen/2)
		want = RunAccuracyCtx(ctx, rep, partial, cfg)
		if got := RunAccuracySegmentedCtx(ctx, rep, partial, 4, cfg); got != want {
			t.Errorf("%s partial budget: result diverges\n  segmented %+v\n  streaming %+v", name, got, want)
		}
	}
}

// TestSegmentedOverStore runs the same equivalence over the out-of-core
// trace store with a cache small enough to evict continuously, covering
// the segmented kernel's only other BlockSource.
func TestSegmentedOverStore(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 20 * trace.BlockLen
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	var img bytes.Buffer
	if _, err := trace.WriteStore(&img, rep.Open(), trace.StoreOptions{Compress: true, GroupRecords: 2 * trace.BlockLen}); err != nil {
		t.Fatal(err)
	}
	store, err := trace.OpenStore(bytes.NewReader(img.Bytes()), int64(img.Len()), 3*trace.BlockLen*(3*8+4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := kernelConfigs()["tagged-path"]
	want := RunAccuracyCtx(ctx, rep, budget, cfg)
	if got := RunAccuracyCtx(ctx, store, budget, cfg); got != want {
		t.Fatalf("store plain run diverges\n  store  %+v\n  memory %+v", got, want)
	}
	if got := RunAccuracySegmentedCtx(ctx, store, budget, 4, cfg); got != want {
		t.Fatalf("store segmented run diverges\n  store  %+v\n  memory %+v", got, want)
	}
	if st := store.CacheStats(); st.Evictions == 0 {
		t.Fatalf("store cache never evicted (stats %+v); cache bound too loose for the test", st)
	}
}

// TestSegmentedCorruptTail pins the damaged-capture contract: the
// segmented run must surface the same ErrCorrupt as the streaming run
// when the budget reaches past the clean prefix, and stay silent when it
// stops short.
func TestSegmentedCorruptTail(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 20 * trace.BlockLen
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	buf := rep.Bytes()
	damaged := trace.NewReplayBytes(buf[:len(buf)-40], rep.Len())
	clean := damaged.CleanLen()
	if clean >= rep.Len() || clean < 8*trace.BlockLen {
		t.Fatalf("clean prefix %d of %d unsuitable for the test", clean, rep.Len())
	}
	cfg := kernelConfigs()["tagless-pattern"]
	ctx := context.Background()

	want := RunAccuracyCtx(ctx, damaged, budget, cfg)
	if !errors.Is(want.Err, trace.ErrCorrupt) {
		t.Fatalf("streaming run over damaged capture: err=%v", want.Err)
	}
	got := RunAccuracySegmentedCtx(ctx, damaged, budget, 3, cfg)
	if !errors.Is(got.Err, trace.ErrCorrupt) {
		t.Fatalf("segmented run over damaged capture: err=%v", got.Err)
	}
	got.Err, want.Err = nil, nil
	if got != want {
		t.Fatalf("partial counters diverge\n  segmented %+v\n  streaming %+v", got, want)
	}

	within := (clean / trace.BlockLen) * trace.BlockLen
	want = RunAccuracyCtx(ctx, damaged, within, cfg)
	if want.Err != nil {
		t.Fatalf("streaming run within clean prefix: err=%v", want.Err)
	}
	if got := RunAccuracySegmentedCtx(ctx, damaged, within, 3, cfg); got != want {
		t.Fatalf("clean-prefix run diverges\n  segmented %+v\n  streaming %+v", got, want)
	}
}

// TestSegmentedFallbacks asserts the runs that cannot be segmented take
// the plain path: one segment, tiny captures, non-batched factories and
// telemetry-collecting configs.
func TestSegmentedFallbacks(t *testing.T) {
	w, err := workload.ByName("go")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := DefaultConfig()
	before := SegmentCounters().SegmentedRuns

	tiny := trace.Capture(trace.NewLimit(w.Open(), trace.BlockLen))
	if got, want := RunAccuracySegmentedCtx(ctx, tiny, trace.BlockLen, 8, cfg), RunAccuracyCtx(ctx, tiny, trace.BlockLen, cfg); got != want {
		t.Fatalf("tiny capture diverges: %+v vs %+v", got, want)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 8*trace.BlockLen))
	if got, want := RunAccuracySegmentedCtx(ctx, rep, 8*trace.BlockLen, 1, cfg), RunAccuracyCtx(ctx, rep, 8*trace.BlockLen, cfg); got != want {
		t.Fatalf("segments=1 diverges: %+v vs %+v", got, want)
	}
	if got, want := RunAccuracySegmentedCtx(ctx, opaqueFactory{rep}, 8*trace.BlockLen, 4, cfg), RunAccuracyCtx(ctx, rep, 8*trace.BlockLen, cfg); got != want {
		t.Fatalf("streaming factory diverges: %+v vs %+v", got, want)
	}
	if after := SegmentCounters().SegmentedRuns; after != before {
		t.Fatalf("fallback runs incremented SegmentedRuns by %d", after-before)
	}
}

// TestSegmentedCancellation: a cancelled segmented run reports the
// context error and partial counts, like the plain path.
func TestSegmentedCancellation(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 24 * trace.BlockLen
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunAccuracySegmentedCtx(ctx, rep, budget, 4, DefaultConfig())
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled run: err=%v", res.Err)
	}
	if res.Instructions >= budget {
		t.Fatalf("cancelled run processed the full budget (%d)", res.Instructions)
	}
}

// TestPlanSegments checks the seam planner's invariants: block-aligned,
// strictly increasing boundaries from 0 to effN, never more than asked.
func TestPlanSegments(t *testing.T) {
	for _, tc := range []struct {
		effN     int64
		segments int
	}{
		{100 * trace.BlockLen, 4},
		{100 * trace.BlockLen, 8},
		{5 * trace.BlockLen, 2},
		{3 * trace.BlockLen, 8},
		{2*trace.BlockLen + 17, 2},
		{trace.BlockLen, 4},
		{0, 4},
	} {
		seams := planSegments(tc.effN, tc.segments)
		if seams == nil {
			if tc.effN >= int64(tc.segments)*minSegmentSpan {
				t.Errorf("planSegments(%d, %d) declined a splittable capture", tc.effN, tc.segments)
			}
			continue
		}
		if seams[0] != 0 || seams[len(seams)-1] != tc.effN {
			t.Errorf("planSegments(%d, %d) = %v: bad endpoints", tc.effN, tc.segments, seams)
		}
		if len(seams)-1 > tc.segments {
			t.Errorf("planSegments(%d, %d) produced %d segments", tc.effN, tc.segments, len(seams)-1)
		}
		for i := 1; i < len(seams); i++ {
			if seams[i] <= seams[i-1] {
				t.Errorf("planSegments(%d, %d) = %v: not increasing", tc.effN, tc.segments, seams)
			}
			if i < len(seams)-1 && seams[i]%trace.BlockLen != 0 {
				t.Errorf("planSegments(%d, %d) = %v: seam %d not block-aligned", tc.effN, tc.segments, seams, seams[i])
			}
		}
		// Geometric placement: spans must not grow from one segment to
		// the next (later workers pay more priming, so they simulate
		// less), within a block of rounding slack.
		for i := 2; i < len(seams); i++ {
			prev := seams[i-1] - seams[i-2]
			cur := seams[i] - seams[i-1]
			if cur > prev+trace.BlockLen {
				t.Errorf("planSegments(%d, %d) = %v: span %d grew", tc.effN, tc.segments, seams, i-1)
			}
		}
	}
}
