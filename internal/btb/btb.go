// Package btb implements the branch target buffer the paper uses as its
// baseline target predictor, including the default target-update strategy
// and Calder & Grunwald's 2-bit strategy (Section 2, Tables 1 and 2), plus
// the return address stack used for return instructions.
package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Strategy selects the BTB's target-update policy for indirect jumps.
type Strategy uint8

const (
	// StrategyDefault updates the stored target on every indirect-jump
	// misprediction, so the BTB always predicts the last computed target.
	StrategyDefault Strategy = iota
	// StrategyTwoBit (Calder & Grunwald) does not replace a BTB entry's
	// target address until two consecutive predictions with that target
	// have been incorrect.
	StrategyTwoBit
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyDefault:
		return "default"
	case StrategyTwoBit:
		return "2-bit"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Config describes a BTB. The paper's baseline is 256 sets, 4 ways
// (a 1K-entry 4-way set-associative BTB).
type Config struct {
	Sets     int
	Ways     int
	Strategy Strategy
}

// DefaultConfig returns the paper's baseline BTB geometry.
func DefaultConfig() Config {
	return Config{Sets: 256, Ways: 4, Strategy: StrategyDefault}
}

// CostBits returns the BTB's storage cost in bits, pricing per entry a
// 32-bit target, a 3-bit branch class, the word-address tag left over
// after set selection (30 bits minus log2(Sets)), per-way LRU state and a
// valid bit, plus the 2-bit replacement counter under StrategyTwoBit. The
// paper treats the BTB as an unpriced baseline; this accounting exists so
// design-space sweeps can place BTB geometries on the same
// accuracy-vs-storage axis as the target caches. Sets and Ways must be
// positive powers of two.
func (c Config) CostBits() int {
	tagBits := 30 - bits.TrailingZeros(uint(c.Sets))
	if tagBits < 0 {
		tagBits = 0
	}
	per := 32 + 3 + tagBits + bits.TrailingZeros(uint(c.Ways)) + 1
	if c.Strategy == StrategyTwoBit {
		per += 2
	}
	return c.Sets * c.Ways * per
}

// Entry is the payload stored per BTB entry: the predicted (taken) target,
// the branch class so the fetch engine knows how to treat the instruction,
// and the 2-bit strategy's consecutive-misprediction counter.
type Entry struct {
	Target    uint64
	Class     trace.Class
	missCount uint8
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	cfg Config
	c   *cache.Cache[Entry]
}

// New returns a BTB for cfg.
func New(cfg Config) *BTB {
	return &BTB{cfg: cfg, c: cache.New[Entry](cfg.Sets, cfg.Ways)}
}

// Config returns the BTB configuration.
func (b *BTB) Config() Config { return b.cfg }

func (b *BTB) index(pc uint64) (set int, tag uint64) {
	// The shared cache owns the set/tag split; its power-of-two fast path
	// covers the paper's 256-set geometry with a mask and shift.
	return b.c.IndexOf(pc >> 2)
}

// Lookup probes the BTB at fetch time. A hit returns the stored entry
// (by value) so the fetch engine can detect the branch and predict the
// last-computed target.
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	set, tag := b.index(pc)
	e, ok := b.c.Lookup(set, tag)
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Hit is an opaque reference to the BTB line a Probe hit; UpdateHit uses
// it to skip re-scanning the set at resolve time.
type Hit struct {
	set, way int
}

// Probe is Lookup returning, additionally, a Hit reference for a
// subsequent UpdateHit on the same PC.
func (b *BTB) Probe(pc uint64) (Entry, Hit, bool) {
	set, tag := b.index(pc)
	e, way, ok := b.c.LookupWay(set, tag)
	if !ok {
		return Entry{}, Hit{set, -1}, false
	}
	return *e, Hit{set, way}, true
}

// UpdateHit is Update for a record whose fetch-time Probe hit the BTB and
// whose set has not been touched since: the entry is refreshed in place,
// with the same LRU/stats stream Update's find-or-allocate scan produces
// on a hit.
func (b *BTB) UpdateHit(h Hit, r *trace.Record) {
	if !r.Class.IsBranch() || !r.Taken {
		return
	}
	e := b.c.TouchWay(h.set, h.way)
	e.Class = r.Class
	if !r.Class.IsIndirect() {
		e.Target = r.Target
		e.missCount = 0
		return
	}
	if e.Target == r.Target {
		e.missCount = 0
		return
	}
	switch b.cfg.Strategy {
	case StrategyDefault:
		e.Target = r.Target
	case StrategyTwoBit:
		e.missCount++
		if e.missCount >= 2 {
			e.Target = r.Target
			e.missCount = 0
		}
	}
}

// Update records a resolved control-flow instruction. Entries are
// allocated for every taken branch (an entry whose branch was never taken
// would never redirect fetch). For indirect jumps the stored target evolves
// according to the configured strategy; for direct branches the target is
// static and simply (re)written.
func (b *BTB) Update(r *trace.Record) {
	if !r.Class.IsBranch() || !r.Taken {
		return
	}
	set, tag := b.index(r.PC)
	e, existed := b.c.Touch(set, tag)
	e.Class = r.Class
	if !existed || !r.Class.IsIndirect() {
		e.Target = r.Target
		e.missCount = 0
		return
	}
	// Indirect jump with an existing entry: apply the update strategy.
	if e.Target == r.Target {
		e.missCount = 0
		return
	}
	switch b.cfg.Strategy {
	case StrategyDefault:
		e.Target = r.Target
	case StrategyTwoBit:
		e.missCount++
		if e.missCount >= 2 {
			e.Target = r.Target
			e.missCount = 0
		}
	}
}

// Reset invalidates all entries.
func (b *BTB) Reset() { b.c.Reset() }

// CostBits returns the storage cost of the BTB in bits, using the paper's
// accounting: each entry consists of a valid bit, 2 least-recently-used
// bits, 22 tag bits, 30 target address bits, 2 branch type bits, 30
// fall-through address bits, and 3 branch history bits (90 bits/entry; the
// paper's 1K-entry BTB is "1024 x 90 bits").
func (b *BTB) CostBits() int {
	const bitsPerEntry = 1 + 2 + 22 + 30 + 2 + 30 + 3
	return b.cfg.Sets * b.cfg.Ways * bitsPerEntry
}
