package core

import "fmt"

// TaglessScheme selects how branch address and history are hashed into a
// tagless target cache (Section 4.2.1).
type TaglessScheme uint8

const (
	// SchemeGAg indexes with history bits alone; GAg(9) uses 9 bits of
	// pattern history to select among 512 entries.
	SchemeGAg TaglessScheme = iota
	// SchemeGAs conceptually partitions the table: address bits select the
	// table, history bits select the entry within it.
	SchemeGAs
	// SchemeGshare XORs the branch address with the history to form the
	// index, utilising the table entries more effectively.
	SchemeGshare
)

// String names the scheme.
func (s TaglessScheme) String() string {
	switch s {
	case SchemeGAg:
		return "GAg"
	case SchemeGAs:
		return "GAs"
	case SchemeGshare:
		return "gshare"
	default:
		return fmt.Sprintf("TaglessScheme(%d)", uint8(s))
	}
}

// TaglessConfig describes a tagless target cache.
type TaglessConfig struct {
	// Entries is the table size; must be a power of two. The paper's
	// tagless caches have 512 entries.
	Entries int
	Scheme  TaglessScheme
	// HistBits and AddrBits apply to SchemeGAs and must sum to
	// log2(Entries): GAs(8,1) uses 8 history bits and 1 address bit,
	// GAs(7,2) uses 7 and 2. For GAg and gshare all index bits come from
	// history (XORed with the address for gshare) and these fields are
	// ignored.
	HistBits int
	AddrBits int
}

// Name returns the paper's notation for the configuration, e.g. "GAg(9)",
// "GAs(7,2)", "gshare".
func (c TaglessConfig) Name() string {
	switch c.Scheme {
	case SchemeGAg:
		return fmt.Sprintf("GAg(%d)", log2(c.Entries))
	case SchemeGAs:
		return fmt.Sprintf("GAs(%d,%d)", c.HistBits, c.AddrBits)
	default:
		return "gshare"
	}
}

// Validate checks the configuration.
func (c TaglessConfig) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("core: tagless entries %d not a power of two", c.Entries)
	}
	if c.Scheme == SchemeGAs {
		if c.HistBits < 0 || c.AddrBits < 0 || c.HistBits+c.AddrBits != log2(c.Entries) {
			return fmt.Errorf("core: GAs(%d,%d) does not index %d entries",
				c.HistBits, c.AddrBits, c.Entries)
		}
	}
	return nil
}

// CostBits returns the configuration's storage cost in bits under the
// paper's accounting of 32 bits per entry ("target cache(n) = 32 x n
// bits"); it is a pure function of the configuration so design-space
// sweeps can price a geometry without instantiating it.
func (c TaglessConfig) CostBits() int { return 32 * c.Entries }

// Tagless is a tagless target cache (Figure 10): a flat table of target
// addresses selected by a hash of fetch address and branch history.
// Interference between branches that alias to the same entry is possible
// and is the motivation for the tagged variant.
type Tagless struct {
	cfg   TaglessConfig
	table []uint64
	mask  uint64
}

// NewTagless returns a tagless target cache. It panics on invalid
// configuration.
func NewTagless(cfg TaglessConfig) *Tagless {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tagless{
		cfg:   cfg,
		table: make([]uint64, cfg.Entries),
		mask:  uint64(cfg.Entries - 1),
	}
}

// Config returns the configuration.
func (t *Tagless) Config() TaglessConfig { return t.cfg }

func (t *Tagless) index(pc, hist uint64) uint64 {
	word := pc >> 2
	switch t.cfg.Scheme {
	case SchemeGAg:
		return hist & t.mask
	case SchemeGAs:
		addr := word & (uint64(1)<<t.cfg.AddrBits - 1)
		h := hist & (uint64(1)<<t.cfg.HistBits - 1)
		return (addr<<t.cfg.HistBits | h) & t.mask
	default: // gshare
		return (hist ^ word) & t.mask
	}
}

// Predict implements TargetCache. A zero entry (never written) yields
// ok=false; any other value is returned as the prediction. Aliased entries
// written by other branches are returned too — that interference is
// inherent to the tagless structure.
func (t *Tagless) Predict(pc, hist uint64) (uint64, bool) {
	tgt := t.table[t.index(pc, hist)]
	return tgt, tgt != 0
}

// Update implements TargetCache.
func (t *Tagless) Update(pc, hist, target uint64) {
	t.table[t.index(pc, hist)] = target
}

// CostBits implements TargetCache via the configuration's accounting.
func (t *Tagless) CostBits() int { return t.cfg.CostBits() }

// Reset implements TargetCache.
func (t *Tagless) Reset() {
	for i := range t.table {
		t.table[i] = 0
	}
}

var _ TargetCache = (*Tagless)(nil)
