package core

import (
	"fmt"
	"math/rand"
)

// ITTAGE is a scaled-down ITTAGE-style indirect target predictor (Seznec,
// "A 64-Kbytes ITTAGE indirect branch predictor", CBP-2 2011), included as
// a beyond-the-paper comparator: the target cache's modern descendant.
// A base last-target table backs several tagged tables indexed with
// geometrically increasing history lengths; the longest-history hit
// provides the prediction, with confidence counters arbitrating against
// the alternate prediction and useful counters guarding allocation.
//
// The history supplied through the TargetCache interface is a single
// uint64, so geometric lengths are capped at 64 bits — far shorter than a
// production ITTAGE, but enough to dominate a fixed-length target cache on
// workloads with long-range correlation.
type ITTAGE struct {
	cfg    ITTAGEConfig
	base   []uint64 // last-target table, pc-indexed
	tables []ittageTable
	rng    *rand.Rand
}

type ittageTable struct {
	histLen int
	mask    uint64
	entries []ittageEntry
}

type ittageEntry struct {
	valid  bool
	tag    uint32
	target uint64
	conf   uint8 // 0..3 confidence
	useful uint8 // 0..3 usefulness
}

// ITTAGEConfig describes the predictor.
type ITTAGEConfig struct {
	// BaseEntries is the size of the last-target base table (power of 2).
	BaseEntries int
	// TableEntries is the size of each tagged table (power of 2).
	TableEntries int
	// HistLens are the per-table history lengths, shortest first; values
	// are capped at 64.
	HistLens []int
	// TagBits is the stored tag width.
	TagBits int
}

// DefaultITTAGEConfig returns a small five-table predictor with geometric
// history lengths, sized near the paper's target-cache budget.
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{
		BaseEntries:  256,
		TableEntries: 128,
		HistLens:     []int{4, 8, 16, 32, 64},
		TagBits:      9,
	}
}

// Validate checks the configuration.
func (c ITTAGEConfig) Validate() error {
	for _, n := range []int{c.BaseEntries, c.TableEntries} {
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("core: ITTAGE table size %d not a power of two", n)
		}
	}
	if len(c.HistLens) == 0 {
		return fmt.Errorf("core: ITTAGE needs at least one tagged table")
	}
	prev := 0
	for _, l := range c.HistLens {
		if l <= prev || l > 64 {
			return fmt.Errorf("core: ITTAGE history lengths must be increasing and <= 64")
		}
		prev = l
	}
	if c.TagBits < 4 || c.TagBits > 32 {
		return fmt.Errorf("core: invalid ITTAGE tag width %d", c.TagBits)
	}
	return nil
}

// NewITTAGE builds the predictor. It panics on invalid configuration.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &ITTAGE{
		cfg:  cfg,
		base: make([]uint64, cfg.BaseEntries),
		rng:  rand.New(rand.NewSource(0x17a6e)), // fixed: deterministic
	}
	for _, l := range cfg.HistLens {
		mask := ^uint64(0)
		if l < 64 {
			mask = uint64(1)<<l - 1
		}
		p.tables = append(p.tables, ittageTable{
			histLen: l,
			mask:    mask,
			entries: make([]ittageEntry, cfg.TableEntries),
		})
	}
	return p
}

// mix hashes pc and masked history into an index and a tag for table ti.
func (p *ITTAGE) mix(ti int, pc, hist uint64) (int, uint32) {
	h := hist & p.tables[ti].mask
	x := (pc >> 2) * 0x9e3779b97f4a7c15
	x ^= h * 0xbf58476d1ce4e5b9
	x ^= uint64(ti+1) * 0x94d049bb133111eb
	x ^= x >> 29
	idx := int(x) & (p.cfg.TableEntries - 1)
	tag := uint32(x>>13) & (uint32(1)<<p.cfg.TagBits - 1)
	return idx, tag
}

func (p *ITTAGE) baseIndex(pc uint64) int {
	return int(pc>>2) & (p.cfg.BaseEntries - 1)
}

// lookup returns the provider (longest hitting table) and alternate
// predictions.
func (p *ITTAGE) lookup(pc, hist uint64) (provider int, providerEntry *ittageEntry, alt uint64, altOK bool) {
	provider = -1
	for ti := len(p.tables) - 1; ti >= 0; ti-- {
		idx, tag := p.mix(ti, pc, hist)
		e := &p.tables[ti].entries[idx]
		if e.valid && e.tag == tag {
			if provider < 0 {
				provider = ti
				providerEntry = e
				continue
			}
			alt, altOK = e.target, true
			return
		}
	}
	if b := p.base[p.baseIndex(pc)]; b != 0 {
		alt, altOK = b, true
	}
	return
}

// Predict implements TargetCache.
func (p *ITTAGE) Predict(pc, hist uint64) (uint64, bool) {
	provider, e, alt, altOK := p.lookup(pc, hist)
	if provider >= 0 {
		// A freshly allocated entry (confidence 0) is less trustworthy
		// than the alternate prediction.
		if e.conf == 0 && altOK {
			return alt, true
		}
		return e.target, true
	}
	if altOK {
		return alt, true
	}
	return 0, false
}

// Update implements TargetCache.
func (p *ITTAGE) Update(pc, hist, target uint64) {
	// Judge the (pre-update) final prediction first.
	predicted, ok := p.Predict(pc, hist)
	mispredicted := !ok || predicted != target

	provider, e, alt, altOK := p.lookup(pc, hist)
	if provider >= 0 {
		if e.target == target {
			if e.conf < 3 {
				e.conf++
			}
			// Useful only when the provider beat the alternate.
			if (!altOK || alt != target) && e.useful < 3 {
				e.useful++
			}
		} else if e.conf > 0 {
			e.conf--
		} else {
			e.target = target
		}
	}

	// Allocate into a longer-history table on a misprediction.
	if mispredicted && provider < len(p.tables)-1 {
		p.allocate(provider+1, pc, hist, target)
	}

	p.base[p.baseIndex(pc)] = target
}

// allocate installs target in one not-useful entry of a table with history
// length index >= from; failing that, it decays usefulness so future
// allocations succeed.
func (p *ITTAGE) allocate(from int, pc, hist, target uint64) {
	// Randomise the starting table to avoid ping-ponging on one table.
	start := from
	if n := len(p.tables) - from; n > 1 && p.rng.Intn(2) == 1 {
		start = from + 1 + p.rng.Intn(n-1)
	}
	for ti := start; ti < len(p.tables); ti++ {
		idx, tag := p.mix(ti, pc, hist)
		e := &p.tables[ti].entries[idx]
		if !e.valid || e.useful == 0 {
			*e = ittageEntry{valid: true, tag: tag, target: target, conf: 0}
			return
		}
	}
	for ti := from; ti < len(p.tables); ti++ {
		idx, _ := p.mix(ti, pc, hist)
		e := &p.tables[ti].entries[idx]
		if e.useful > 0 {
			e.useful--
		}
	}
}

// CostBits returns the configuration's storage cost in bits: a 32-bit
// last-target base table, and per tagged entry a 32-bit target plus
// tag + 2-bit confidence + 2-bit usefulness + valid.
func (c ITTAGEConfig) CostBits() int {
	per := 32 + c.TagBits + 2 + 2 + 1
	return c.BaseEntries*32 + len(c.HistLens)*c.TableEntries*per
}

// CostBits implements TargetCache via the configuration's accounting.
func (p *ITTAGE) CostBits() int { return p.cfg.CostBits() }

// Reset implements TargetCache.
func (p *ITTAGE) Reset() {
	for i := range p.base {
		p.base[i] = 0
	}
	for ti := range p.tables {
		for i := range p.tables[ti].entries {
			p.tables[ti].entries[i] = ittageEntry{}
		}
	}
	p.rng = rand.New(rand.NewSource(0x17a6e))
}

var _ TargetCache = (*ITTAGE)(nil)
