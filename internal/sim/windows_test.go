package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/workload"
)

func TestRunAccuracyWindows(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 400_000
	cfg := DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(9) },
	)
	res := RunAccuracyWindows(w, budget, 8, cfg)
	if len(res.Windows) != 8 {
		t.Fatalf("got %d windows, want 8", len(res.Windows))
	}
	whole := RunAccuracy(w, budget, cfg)
	if res.Overall.Indirect != whole.Indirect {
		t.Fatalf("windowed accounting diverges from plain run: %+v vs %+v",
			res.Overall.Indirect, whole.Indirect)
	}
	// The steady-state rate must be stable: the last windows should sit
	// within a few points of each other.
	last := res.Windows[len(res.Windows)-1]
	prev := res.Windows[len(res.Windows)-2]
	if d := last - prev; d > 0.08 || d < -0.08 {
		t.Errorf("steady-state windows differ by %.3f: %v", d, res.Windows)
	}
	// Warm-up: the first window (cold predictor) is the worst or near it.
	if res.Windows[0] < res.Mean() {
		t.Errorf("first (cold) window %.3f below the mean %.3f: %v",
			res.Windows[0], res.Mean(), res.Windows)
	}
	if res.StdDev() < 0 {
		t.Error("negative standard deviation")
	}
	t.Logf("windows=%v mean=%.4f stddev=%.4f warmup=%d",
		res.Windows, res.Mean(), res.StdDev(), res.WarmupWindows(0.01))
}

func TestWindowedResultStatsEdgeCases(t *testing.T) {
	var empty WindowedResult
	if empty.Mean() != 0 || empty.StdDev() != 0 || empty.WarmupWindows(0.1) != 0 {
		t.Fatal("empty result statistics should be zero")
	}
	one := WindowedResult{Windows: []float64{0.5}}
	if one.Mean() != 0.5 || one.StdDev() != 0 {
		t.Fatal("single-window statistics wrong")
	}
	warm := WindowedResult{Windows: []float64{0.9, 0.6, 0.3, 0.3}}
	if got := warm.WarmupWindows(0.1); got != 2 {
		t.Fatalf("warmup = %d, want 2", got)
	}
}
