package stats

import (
	"fmt"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart, used for the
// targets-per-jump histograms of Figures 1-8.
type BarChart struct {
	Title string
	// Width is the maximum bar length in characters (default 50).
	Width  int
	labels []string
	values []float64
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	b.labels = append(b.labels, label)
	b.values = append(b.values, value)
}

// String renders the chart; bars scale to the maximum value.
func (b *BarChart) String() string {
	width := b.Width
	if width <= 0 {
		width = 50
	}
	max := 0.0
	labelWidth := 0
	for i, v := range b.values {
		if v > max {
			max = v
		}
		if len(b.labels[i]) > labelWidth {
			labelWidth = len(b.labels[i])
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintln(&sb, b.Title)
	}
	if max == 0 {
		fmt.Fprintln(&sb, "(no data)")
		return sb.String()
	}
	for i, v := range b.values {
		n := int(v / max * float64(width))
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%*s |%s %.1f%%\n",
			labelWidth, b.labels[i], strings.Repeat("#", n), 100*v)
	}
	return sb.String()
}
