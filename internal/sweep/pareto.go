package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Row is one sweep result annotated for reporting: its misprediction rate
// and whether it sits on its workload's Pareto frontier.
type Row struct {
	Result
	// MispredictRate is the indirect-jump misprediction rate (0..1).
	MispredictRate float64 `json:"mispredict_rate"`
	// Frontier marks the point Pareto-optimal within its workload under
	// (minimize mispredict rate, minimize storage bits).
	Frontier bool `json:"frontier"`
}

// Report is a sweep's result set with frontiers computed, ready to render
// or publish.
type Report struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Budget      int64  `json:"budget"`
	// Workloads preserves the spec's workload order for rendering.
	Workloads      []string `json:"workloads"`
	Points         int      `json:"points"`
	SkippedInvalid int      `json:"skipped_invalid,omitempty"`
	// Rows are all results in canonical expansion order.
	Rows []Row `json:"rows"`
}

// Report computes the per-workload Pareto frontiers over the outcome.
//
// Dominance is non-strict: point a dominates b when a is no worse on both
// axes and strictly better on at least one. Ties on both axes dominate
// neither way, so geometries with identical accuracy and cost all appear
// on the frontier.
func (o *Outcome) Report() *Report {
	rep := &Report{
		Name:           o.Spec.Name,
		Fingerprint:    o.Fingerprint,
		Budget:         o.Spec.Budget,
		Workloads:      append([]string(nil), o.Spec.Workloads...),
		Points:         len(o.Results),
		SkippedInvalid: o.SkippedInvalid,
		Rows:           make([]Row, len(o.Results)),
	}
	byWorkload := map[string][]int{}
	for i, r := range o.Results {
		rep.Rows[i] = Row{Result: r, MispredictRate: r.Rate()}
		byWorkload[r.Point.Workload] = append(byWorkload[r.Point.Workload], i)
	}
	for _, idxs := range byWorkload {
		markFrontier(rep.Rows, idxs)
	}
	return rep
}

// markFrontier sets Frontier on the Pareto-optimal subset of rows[idxs].
// One sorted sweep: visiting storage-bit groups in ascending order, a row
// survives iff it has the minimum rate within its group and that rate
// beats (strictly) every smaller-storage group's best.
func markFrontier(rows []Row, idxs []int) {
	order := append([]int(nil), idxs...)
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rows[order[a]], rows[order[b]]
		if ra.StorageBits != rb.StorageBits {
			return ra.StorageBits < rb.StorageBits
		}
		return ra.MispredictRate < rb.MispredictRate
	})
	best := 2.0 // above any possible rate
	for gi := 0; gi < len(order); {
		ge := gi
		groupMin := rows[order[gi]].MispredictRate
		for ge < len(order) && rows[order[ge]].StorageBits == rows[order[gi]].StorageBits {
			if r := rows[order[ge]].MispredictRate; r < groupMin {
				groupMin = r
			}
			ge++
		}
		if groupMin < best {
			for i := gi; i < ge; i++ {
				if rows[order[i]].MispredictRate == groupMin {
					rows[order[i]].Frontier = true
				}
			}
			best = groupMin
		}
		gi = ge
	}
}

// FrontierRows returns the frontier rows for one workload, cheapest
// storage first, in deterministic order.
func (r *Report) FrontierRows(workload string) []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Frontier && row.Point.Workload == workload {
			out = append(out, row)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StorageBits != out[b].StorageBits {
			return out[a].StorageBits < out[b].StorageBits
		}
		return out[a].Point.Key() < out[b].Point.Key()
	})
	return out
}

// Tables renders the report as one frontier table per workload, in the
// spec's workload order. The output is a pure function of the result set:
// counts and derived rates only, so it is byte-identical across runs.
func (r *Report) Tables() []*stats.Table {
	var tables []*stats.Table
	for _, w := range r.Workloads {
		t := stats.NewTable(
			fmt.Sprintf("Pareto frontier: %s (%s, budget %d)", w, r.Name, r.Budget),
			"configuration", "storage (bits)", "indirect", "mispredicts", "miss rate")
		total, dominated := 0, 0
		for _, row := range r.Rows {
			if row.Point.Workload != w {
				continue
			}
			total++
			if !row.Frontier {
				dominated++
			}
		}
		for _, row := range r.FrontierRows(w) {
			t.AddRow(
				row.Point.ConfigLabel(),
				fmt.Sprintf("%d", row.StorageBits),
				fmt.Sprintf("%d", row.Indirect),
				fmt.Sprintf("%d", row.IndirectMiss),
				fmt.Sprintf("%.4f%%", 100*row.MispredictRate),
			)
		}
		t.AddNote("%d of %d swept configurations are Pareto-optimal (%d dominated).",
			total-dominated, total, dominated)
		tables = append(tables, t)
	}
	return tables
}

// Render writes the frontier tables as text.
func (r *Report) Render(w io.Writer) {
	for i, t := range r.Tables() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		t.Render(w)
	}
	if r.SkippedInvalid > 0 {
		fmt.Fprintf(w, "\nnote: %d grid combinations were skipped as invalid for their family.\n", r.SkippedInvalid)
	}
}

// WriteCSV writes every swept point (not just the frontier) as CSV, one
// row per point in canonical expansion order, with the frontier flag as a
// column.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "workload,configuration,family,storage_bits,instructions,indirect,indirect_miss,miss_rate,frontier"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%.6f,%t\n",
			row.Point.Workload, row.Point.ConfigLabel(), row.Point.Family,
			row.StorageBits, row.Instructions, row.Indirect, row.IndirectMiss,
			row.MispredictRate, row.Frontier)
		if err != nil {
			return err
		}
	}
	return nil
}

// DocumentSchema is the perfstore schema identifier for published sweeps.
const DocumentSchema = "sweep/v1"

// Document is the published form of a report: the Report shape plus the
// schema tag, so a perfstore query can identify and parse it.
type Document struct {
	Schema string `json:"schema"`
	Report
}

// Document wraps the report for publication.
func (r *Report) Document() *Document {
	return &Document{Schema: DocumentSchema, Report: *r}
}

// Encode renders the document as deterministic JSON.
func (d *Document) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseDocument decodes and sanity-checks a sweep/v1 document.
func ParseDocument(data []byte) (*Document, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("sweep: bad document: %w", err)
	}
	if d.Schema != DocumentSchema {
		return nil, fmt.Errorf("sweep: document schema %q, want %q", d.Schema, DocumentSchema)
	}
	if d.Points != len(d.Rows) {
		return nil, fmt.Errorf("sweep: document claims %d points but carries %d rows", d.Points, len(d.Rows))
	}
	return &d, nil
}
