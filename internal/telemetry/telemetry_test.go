package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCollectorSiteStats(t *testing.T) {
	c := NewCollector(Config{})
	// Site 0x100: 4 executions, 2 targets (0x200 hot), 1 mispredict.
	c.Indirect(0x100, 7, 0x200, true, 0x200, true)
	c.Indirect(0x100, 7, 0x200, true, 0x200, true)
	c.Indirect(0x100, 9, 0x200, true, 0x200, true)
	c.Indirect(0x100, 9, 0x200, true, 0x300, false)
	// Site 0x110: 1 execution, no front-end prediction at all.
	c.Indirect(0x110, 0, 0, false, 0x400, false)

	rec := NewRecorder(Config{})
	rec.Merge(Key{Workload: "w", Config: "c"}, c)
	rep := rec.Report(RunInfo{})
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	sites := rep.Cells[0].Sites
	if len(sites) != 2 {
		t.Fatalf("want 2 sites, got %d", len(sites))
	}
	s := sites[0]
	if s.PC != "0x100" || s.Executions != 4 || s.Mispredicts != 1 {
		t.Errorf("site 0x100: got %+v", s)
	}
	if s.MispredictRate != 0.25 {
		t.Errorf("mispredict rate: got %v, want 0.25", s.MispredictRate)
	}
	if s.DistinctTargets != 2 {
		t.Errorf("distinct targets: got %d, want 2", s.DistinctTargets)
	}
	if len(s.TopTargets) != 2 || s.TopTargets[0].Target != "0x200" || s.TopTargets[0].Count != 3 {
		t.Errorf("top targets: got %+v", s.TopTargets)
	}
	if s.DominantShare != 0.75 {
		t.Errorf("dominant share: got %v, want 0.75", s.DominantShare)
	}
	// Two histories, two each: exactly 1 bit of history entropy.
	if math.Abs(s.HistoryEntropy-1.0) > 1e-12 {
		t.Errorf("history entropy: got %v, want 1.0", s.HistoryEntropy)
	}
	if sites[1].PC != "0x110" || sites[1].MispredictRate != 1.0 {
		t.Errorf("site 0x110: got %+v", sites[1])
	}
}

func TestTopKOrdering(t *testing.T) {
	c := NewCollector(Config{TopK: 2})
	// Tie between 0x30 and 0x20 on count: lower address must win the tie.
	for range 3 {
		c.Indirect(0x1, 0, 0x30, true, 0x30, true)
		c.Indirect(0x1, 0, 0x20, true, 0x20, true)
	}
	c.Indirect(0x1, 0, 0x10, true, 0x10, true)
	rec := NewRecorder(Config{TopK: 2})
	rec.Merge(Key{}, c)
	tops := rec.Report(RunInfo{}).Cells[0].Sites[0].TopTargets
	if len(tops) != 2 {
		t.Fatalf("want top-2, got %d entries", len(tops))
	}
	if tops[0].Target != "0x20" || tops[1].Target != "0x30" {
		t.Errorf("tie must break by address: got %+v", tops)
	}
}

func TestEventRing(t *testing.T) {
	c := NewCollector(Config{Events: 3})
	for i := range 5 {
		c.SetClock(int64(i))
		// All mispredictions: actual differs from predicted.
		c.Indirect(0x1, 0, 0xaa, true, uint64(0x100+i), false)
	}
	events, dropped := c.Events()
	if dropped != 2 {
		t.Errorf("dropped: got %d, want 2", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("retained: got %d, want 3", len(events))
	}
	for i, ev := range events {
		if want := int64(i + 2); ev.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (most recent, chronological)", i, ev.Cycle, want)
		}
	}
	if events[0].Actual != 0x102 || events[0].Predicted != 0xaa {
		t.Errorf("event contents: %+v", events[0])
	}
}

func TestEventRingDisabled(t *testing.T) {
	c := NewCollector(Config{})
	c.Indirect(0x1, 0, 0x2, true, 0x3, false)
	if events, dropped := c.Events(); events != nil || dropped != 0 {
		t.Errorf("disabled ring must report nothing, got %v/%d", events, dropped)
	}
}

func TestBoundedTargetTracking(t *testing.T) {
	c := NewCollector(Config{})
	for i := range maxTrackedTargets + 10 {
		c.Indirect(0x1, 0, 0, false, uint64(0x1000+i), false)
	}
	rec := NewRecorder(Config{})
	rec.Merge(Key{}, c)
	s := rec.Report(RunInfo{}).Cells[0].Sites[0]
	if s.DistinctTargets != maxTrackedTargets {
		t.Errorf("distinct targets: got %d, want %d", s.DistinctTargets, maxTrackedTargets)
	}
	if s.TargetOverflow != 10 {
		t.Errorf("target overflow: got %d, want 10", s.TargetOverflow)
	}
	if s.Executions != maxTrackedTargets+10 {
		t.Errorf("executions: got %d", s.Executions)
	}
}

func TestMergeAccumulates(t *testing.T) {
	rec := NewRecorder(Config{Events: 2})
	k := Key{Workload: "w"}
	for range 2 {
		c := rec.NewCollector()
		c.Indirect(0x1, 5, 0x2, true, 0x2, true)
		c.Indirect(0x1, 5, 0x2, true, 0x9, false)
		rec.Merge(k, c)
	}
	rep := rec.Report(RunInfo{})
	s := rep.Cells[0].Sites[0]
	if s.Executions != 4 || s.Mispredicts != 2 {
		t.Errorf("merged site: %+v", s)
	}
	if len(rep.Cells[0].Events) != 2 {
		t.Errorf("merged events: got %d, want 2", len(rep.Cells[0].Events))
	}
}

func TestEntropy(t *testing.T) {
	counts := map[uint64]int64{1: 5, 2: 5, 3: 5, 4: 5}
	if h := entropy(counts, 0); math.Abs(h-2.0) > 1e-12 {
		t.Errorf("uniform-4 entropy: got %v, want 2.0", h)
	}
	if h := entropy(map[uint64]int64{1: 7}, 0); h != 0 {
		t.Errorf("single-value entropy: got %v, want 0", h)
	}
	if h := entropy(nil, 0); h != 0 {
		t.Errorf("empty entropy: got %v, want 0", h)
	}
	// Overflow acts as one extra bucket.
	if h := entropy(map[uint64]int64{1: 1}, 1); math.Abs(h-1.0) > 1e-12 {
		t.Errorf("overflow entropy: got %v, want 1.0", h)
	}
}

func TestKeyString(t *testing.T) {
	cases := []struct {
		k    Key
		want string
	}{
		{Key{"e", "w", "c"}, "e/w/c"},
		{Key{"", "w", "c"}, "w/c"},
		{Key{"e", "", "c"}, "e/c"},
		{Key{}, ""},
	}
	for _, tc := range cases {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("%+v: got %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.NewCollector() != nil {
		t.Error("nil recorder must hand out nil collectors")
	}
	rec.Merge(Key{}, nil)
	rec.CellStarted()
	rec.CellFailed()
	rec.CellRecovered()
	rec.AddBusy(time.Second)
	if rep := rec.Report(RunInfo{Workers: 2}); rep == nil || rep.Run.Workers != 2 {
		t.Error("nil recorder must still report run info")
	}
	var col *Collector
	col.SetClock(3)
	if events, dropped := col.Events(); events != nil || dropped != 0 {
		t.Error("nil collector must report no events")
	}
}

// TestConcurrentMergeDeterminism is the race-detector coverage for the
// recorder: many goroutines record cells concurrently, and the final
// report must be byte-identical no matter how the merges interleave.
func TestConcurrentMergeDeterminism(t *testing.T) {
	build := func() *Report {
		rec := NewRecorder(Config{Events: 4})
		var wg sync.WaitGroup
		for range 8 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range 4 {
					rec.CellStarted()
					c := rec.NewCollector()
					for pc := uint64(1); pc <= 8; pc++ {
						c.SetClock(int64(i))
						c.Indirect(pc<<4, uint64(i), 0x2, true, uint64(0x100+i), i%2 == 0)
					}
					// Every goroutine merges into the same four keys, so the
					// report exercises cross-goroutine accumulation.
					k := Key{Workload: "shared", Config: fmt.Sprintf("cfg%d", i)}
					rec.Merge(k, c)
					rec.AddBusy(time.Millisecond)
				}
			}()
		}
		wg.Wait()
		return rec.Report(RunInfo{Workers: 8})
	}
	a, b := build(), build()
	// Busy time is wall-clock and may differ; everything else must not.
	a.Run.BusyMS, b.Run.BusyMS = 0, 0
	a.Run.Occupancy, b.Run.Occupancy = 0, 0
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("concurrent merges must be deterministic\n a: %s\n b: %s", ja, jb)
	}
	if got := a.Run.CellsStarted; got != 32 {
		t.Errorf("cells started: got %d, want 32", got)
	}
}
