package stats

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders small ASCII line charts for the paper's figures: one or two
// series over a shared categorical x-axis.
type Plot struct {
	Title  string
	YLabel string
	XLabel string
	Series []Series
	// Height is the number of chart rows (default 12).
	Height int
}

// Series is one named line.
type Series struct {
	Name   string
	Marker byte
	X      []string
	Y      []float64
}

// AddSeries appends a series; markers default to '*', '+', 'o', 'x'.
func (p *Plot) AddSeries(name string, x []string, y []float64) {
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	m := markers[len(p.Series)%len(markers)]
	p.Series = append(p.Series, Series{Name: name, Marker: m, X: x, Y: y})
}

// String renders the chart.
func (p *Plot) String() string {
	height := p.Height
	if height <= 0 {
		height = 12
	}
	var lo, hi float64
	first := true
	maxPoints := 0
	for _, s := range p.Series {
		for _, v := range s.Y {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Y) > maxPoints {
			maxPoints = len(s.Y)
		}
	}
	if first || maxPoints == 0 {
		return p.Title + "\n(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom.
	span := hi - lo
	lo -= span * 0.05
	hi += span * 0.05

	const colWidth = 7
	width := maxPoints * colWidth
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.Series {
		for i, v := range s.Y {
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := i*colWidth + colWidth/2
			if col < width {
				grid[row][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintln(&b, p.Title)
	}
	for i, row := range grid {
		yv := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yv, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	// X labels.
	var xrow strings.Builder
	for i := 0; i < maxPoints; i++ {
		label := ""
		for _, s := range p.Series {
			if i < len(s.X) {
				label = s.X[i]
				break
			}
		}
		xrow.WriteString(fmt.Sprintf("%*s", colWidth, label))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.TrimRight(xrow.String(), " "))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", p.XLabel)
	}
	for _, s := range p.Series {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", s.Marker, s.Name)
	}
	return b.String()
}
