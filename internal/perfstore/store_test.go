package perfstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testMeta(i int) Meta {
	return Meta{
		Kind:       "benchjson",
		Machine:    "mach-a",
		Commit:     fmt.Sprintf("commit-%03d", i),
		Experiment: "table2",
		Time:       int64(1000 + i),
	}
}

func testBody(i int) []byte {
	return []byte(fmt.Sprintf(`{"table2":{"wall_ms":%d.5,"cells":%d}}`, 100+i, i))
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 20; i++ {
		m, dup, err := s.Put(testMeta(i), testBody(i))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if dup {
			t.Fatalf("Put %d: unexpected duplicate", i)
		}
		if m.ID == "" || m.Bytes != int64(len(testBody(i))) {
			t.Fatalf("Put %d: bad stamped meta %+v", i, m)
		}
		ids = append(ids, m.ID)
	}
	for i, id := range ids {
		m, body, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(body, testBody(i)) {
			t.Fatalf("Get %d: body %q, want %q", i, body, testBody(i))
		}
		if m.Commit != testMeta(i).Commit {
			t.Fatalf("Get %d: meta %+v", i, m)
		}
	}
	if _, _, err := s.Get("no-such-id"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v, want ErrNotFound", err)
	}
}

func TestPutIdempotent(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m1, dup, err := s.Put(testMeta(1), testBody(1))
	if err != nil || dup {
		t.Fatalf("first Put: %v dup=%v", err, dup)
	}
	// Same content, different timestamp: must collapse onto the first row.
	later := testMeta(1)
	later.Time = 999999
	m2, dup, err := s.Put(later, testBody(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dup || m2.ID != m1.ID || m2.Time != m1.Time {
		t.Fatalf("retry: dup=%v meta=%+v, want original %+v", dup, m2, m1)
	}
	if st := s.Stats(); st.Records != 1 || st.DupPuts != 1 {
		t.Fatalf("stats after dup: %+v", st)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 30; i++ {
		m, _, err := s.Put(testMeta(i), testBody(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen ignores Options.Shards in favour of the manifest.
	s2, err := Open(dir, Options{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Records != 30 || st.Shards != 4 || st.Repairs != 0 {
		t.Fatalf("reopened stats: %+v", st)
	}
	for i, id := range ids {
		_, body, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get %d after reopen: %v", i, err)
		}
		if !bytes.Equal(body, testBody(i)) {
			t.Fatalf("Get %d after reopen: wrong body", i)
		}
	}
	// And appends still work after a reopen.
	if _, dup, err := s2.Put(testMeta(99), testBody(99)); err != nil || dup {
		t.Fatalf("Put after reopen: %v dup=%v", err, dup)
	}
}

// TestTornTailTruncatedOnReopen simulates a crash mid-append: garbage
// bytes after the last acknowledged record must be truncated away, and
// every acknowledged record must still be readable.
func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		m, _, err := s.Put(testMeta(i), testBody(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	s.Close()

	seg := filepath.Join(dir, shardName(0), segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: half a header and some payload bytes.
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	notes := s2.RepairNotes()
	if len(notes) != 1 || notes[0].LostBytes != 7 {
		t.Fatalf("repair notes: %+v", notes)
	}
	after, _ := os.Stat(seg)
	if after.Size() != before.Size()-7 {
		t.Fatalf("segment size %d, want %d", after.Size(), before.Size()-7)
	}
	for i, id := range ids {
		if _, body, err := s2.Get(id); err != nil || !bytes.Equal(body, testBody(i)) {
			t.Fatalf("acknowledged record %d lost after torn-tail repair: %v", i, err)
		}
	}
	// New appends after repair land cleanly.
	if _, _, err := s2.Put(testMeta(50), testBody(50)); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptRecordDropsSuffix flips a byte inside an early record: the
// clean-prefix contract keeps everything before it and drops the rest of
// that segment.
func TestCorruptRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := s.Put(testMeta(0), testBody(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if _, _, err := s.Put(testMeta(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := filepath.Join(dir, shardName(0), segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the second record's payload (the first record occupies
	// [len(magic), len(magic)+rec0); rec0 spans header+meta+body).
	scanOff := int64(0)
	_, scanErr := scanSegment(bytes.NewReader(raw), func(rec scannedRecord) error {
		if rec.Off > int64(len(segMagic)) {
			scanOff = rec.BodyOff
			return errors.New("stop")
		}
		return nil
	})
	if scanErr == nil || scanOff == 0 {
		t.Fatalf("could not locate second record (off=%d err=%v)", scanOff, scanErr)
	}
	raw[scanOff] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Records != 1 {
		t.Fatalf("records after mid-file damage: %+v, want 1 survivor", st)
	}
	if _, _, err := s2.Get(first.ID); err != nil {
		t.Fatalf("clean-prefix record lost: %v", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1, SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := s.Put(testMeta(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	entries, err := os.ReadDir(filepath.Join(dir, shardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("rotation produced %d segments, want several", len(entries))
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Records != 10 {
		t.Fatalf("records across rotated segments: %+v", st)
	}
}

func TestQueryFilters(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		m := testMeta(i)
		if i%2 == 0 {
			m.Machine = "mach-b"
		}
		if i%3 == 0 {
			m.Kind = "telemetry"
		}
		if _, _, err := s.Put(m, testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Query(Query{})); got != 6 {
		t.Fatalf("unfiltered query: %d", got)
	}
	if got := len(s.Query(Query{Machine: "mach-b"})); got != 3 {
		t.Fatalf("machine filter: %d", got)
	}
	if got := len(s.Query(Query{Kind: "benchjson", Machine: "mach-a"})); got != 2 {
		t.Fatalf("kind+machine filter: %d", got)
	}
	res := s.Query(Query{Limit: 2})
	if len(res) != 2 || res[0].Time < res[1].Time {
		t.Fatalf("limit/newest-first: %+v", res)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Shards: 8, SegmentMaxBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Half the keys collide across writers to exercise the
				// duplicate path under contention.
				key := w*each + i
				if i%2 == 0 {
					key = i
				}
				if _, _, err := s.Put(testMeta(key), testBody(key)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records == 0 || st.PutErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Every recorded row must read back hash-clean.
	for _, m := range s.Query(Query{}) {
		if _, _, err := s.Get(m.ID); err != nil {
			t.Fatalf("Get %s: %v", m.ID, err)
		}
	}
}

func TestPutRequiresKind(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Put(Meta{}, []byte("{}")); err == nil {
		t.Fatal("Put without kind succeeded")
	}
}
