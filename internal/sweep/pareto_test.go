package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// row builds a synthetic result row for frontier tests.
func mkResult(workload string, bits int, indirect, miss int64) Result {
	return Result{
		Point:        Point{Workload: workload, Family: "btb", Scheme: "default", Entries: bits, Ways: 1},
		StorageBits:  bits,
		Indirect:     indirect,
		IndirectMiss: miss,
	}
}

func frontierKeys(rep *Report) map[int]bool {
	out := map[int]bool{}
	for i, r := range rep.Rows {
		if r.Frontier {
			out[i] = true
		}
	}
	return out
}

func TestFrontierDominance(t *testing.T) {
	o := &Outcome{
		Spec: &Spec{Name: "t", Budget: 1, Workloads: []string{"w"}},
		Results: []Result{
			mkResult("w", 100, 1000, 100), // 10% at 100 bits: frontier
			mkResult("w", 200, 1000, 50),  // 5% at 200 bits: frontier
			mkResult("w", 300, 1000, 80),  // 8% at 300 bits: dominated by the 200-bit point
			mkResult("w", 400, 1000, 50),  // 5% at 400 bits: dominated (same rate, more bits)
			mkResult("w", 50, 1000, 300),  // 30% at 50 bits: frontier (cheapest)
		},
	}
	rep := o.Report()
	want := map[int]bool{0: true, 1: true, 4: true}
	got := frontierKeys(rep)
	for i := range o.Results {
		if got[i] != want[i] {
			t.Errorf("row %d: frontier = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFrontierTies pins non-strict dominance: identical (rate, bits)
// points are all on the frontier, but a point matched on one axis and
// beaten on the other is dominated.
func TestFrontierTies(t *testing.T) {
	o := &Outcome{
		Spec: &Spec{Name: "t", Budget: 1, Workloads: []string{"w"}},
		Results: []Result{
			mkResult("w", 100, 1000, 100), // twin A: frontier
			mkResult("w", 100, 1000, 100), // twin B: frontier
			mkResult("w", 100, 1000, 200), // same bits, worse rate: dominated
		},
	}
	got := frontierKeys(o.Report())
	if !got[0] || !got[1] || got[2] {
		t.Fatalf("tie frontier = %v, want rows 0 and 1 only", got)
	}
}

// TestFrontierPerWorkload pins that dominance is computed within each
// workload: a config that loses on an easy workload may still be optimal
// on a hard one.
func TestFrontierPerWorkload(t *testing.T) {
	o := &Outcome{
		Spec: &Spec{Name: "t", Budget: 1, Workloads: []string{"a", "b"}},
		Results: []Result{
			mkResult("a", 100, 1000, 100),
			mkResult("a", 200, 1000, 500), // dominated within a
			mkResult("b", 200, 1000, 500), // frontier within b (only point)
		},
	}
	got := frontierKeys(o.Report())
	if !got[0] || got[1] || !got[2] {
		t.Fatalf("per-workload frontier = %v, want rows 0 and 2", got)
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	o := &Outcome{
		Spec: &Spec{Name: "render", Budget: 123, Workloads: []string{"w"}},
		Results: []Result{
			mkResult("w", 100, 1000, 100),
			mkResult("w", 300, 1000, 500),
		},
	}
	rep := o.Report()
	var text bytes.Buffer
	rep.Render(&text)
	if !strings.Contains(text.String(), "Pareto frontier: w (render, budget 123)") {
		t.Errorf("render missing title:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "10.0000%") {
		t.Errorf("render missing rate:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "1 of 2 swept configurations are Pareto-optimal (1 dominated)") {
		t.Errorf("render missing summary note:\n%s", text.String())
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csv.String())
	}
	if !strings.HasSuffix(lines[1], ",true") || !strings.HasSuffix(lines[2], ",false") {
		t.Errorf("CSV frontier flags wrong:\n%s", csv.String())
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	o := &Outcome{
		Spec:        &Spec{Name: "doc", Budget: 5, Workloads: []string{"w"}},
		Fingerprint: "abc123",
		Results:     []Result{mkResult("w", 100, 1000, 100)},
	}
	data, err := o.Report().Document().Encode()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "doc" || doc.Fingerprint != "abc123" || len(doc.Rows) != 1 {
		t.Fatalf("round trip lost data: %+v", doc)
	}
	if !doc.Rows[0].Frontier || doc.Rows[0].MispredictRate != 0.1 {
		t.Fatalf("round trip lost row annotations: %+v", doc.Rows[0])
	}
	// Re-encoding an identical report is byte-identical.
	data2, err := o.Report().Document().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("document encoding is not deterministic")
	}
}

func TestParseDocumentRejects(t *testing.T) {
	for name, body := range map[string]string{
		"not json":     "nope",
		"wrong schema": `{"schema":"telemetry/v1","name":"x","points":0,"rows":[]}`,
		"row mismatch": `{"schema":"sweep/v1","name":"x","points":3,"rows":[]}`,
	} {
		if _, err := ParseDocument([]byte(body)); err == nil {
			t.Errorf("%s: parsed, want error", name)
		}
	}
}
