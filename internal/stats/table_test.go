package stats

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRender(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Table
		want  string
	}{
		{
			name: "basic alignment",
			build: func() *Table {
				tb := NewTable("T", "name", "value")
				tb.AddRow("a", "1")
				tb.AddRow("longer", "22")
				return tb
			},
			want: "" +
				"T\n" +
				"---------------\n" +
				"name    value\n" +
				"---------------\n" +
				"a           1\n" +
				"longer     22\n" +
				"---------------\n",
		},
		{
			name: "empty rows render headers only",
			build: func() *Table {
				return NewTable("Empty", "col1", "col2")
			},
			want: "" +
				"Empty\n" +
				"------------\n" +
				"col1  col2\n" +
				"------------\n" +
				"------------\n",
		},
		{
			name: "short rows pad, long rows extend",
			build: func() *Table {
				tb := NewTable("Ragged", "a", "b")
				tb.AddRow("x")
				tb.AddRow("y", "2", "extra")
				return tb
			},
			want: "" +
				"Ragged\n" +
				"-------------\n" +
				"a  b\n" +
				"-------------\n" +
				"x\n" +
				"y  2  extra\n" +
				"-------------\n",
		},
		{
			name: "notes and trailer",
			build: func() *Table {
				tb := NewTable("N", "h")
				tb.AddRow("v")
				tb.AddNote("count %d", 3)
				tb.Trailer = "chart\n"
				return tb
			},
			want: "" +
				"N\n" +
				"---\n" +
				"h\n" +
				"---\n" +
				"v\n" +
				"---\n" +
				"note: count 3\n" +
				"\n" +
				"chart\n",
		},
		{
			name: "no title no headers",
			build: func() *Table {
				tb := &Table{}
				tb.AddRow("only", "row")
				return tb
			},
			want: "" +
				"-----------\n" +
				"only  row\n" +
				"-----------\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.build().String()
			if got != tc.want {
				t.Errorf("render mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestTableWideRunes pins the rune-width fix: cells with multi-byte runes
// must align by visible characters, not bytes. Every data line of the
// rendered table has to come out the same visible width as the separator.
func TestTableWideRunes(t *testing.T) {
	tb := NewTable("Unicode", "scheme", "rate")
	tb.AddRow("Hölzle", "1.0%")
	tb.AddRow("µ-op", "22.5%")
	tb.AddRow("ascii", "100.0%")
	out := tb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	sep := lines[1]
	if strings.Trim(sep, "-") != "" {
		t.Fatalf("expected separator on line 2, got %q", sep)
	}
	for _, line := range lines[2:] {
		if strings.Trim(line, "-") == "" {
			continue
		}
		if w := utf8.RuneCountInString(line); w > len(sep) {
			t.Errorf("line %q is %d columns wide, separator only %d", line, w, len(sep))
		}
	}

	// The right-aligned data column must line up across rows: each data
	// line ends at the same visible column.
	var ends []int
	for _, line := range lines[3:] {
		if strings.Trim(line, "-") == "" {
			continue
		}
		ends = append(ends, utf8.RuneCountInString(line))
	}
	for _, e := range ends[1:] {
		if e != ends[0] {
			t.Errorf("right-aligned column ends differ: %v\noutput:\n%s", ends, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x", "1")
	tb.AddRow("with,comma", "2")
	tb.AddNote("notes are omitted from CSV")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\n\"with,comma\",2\n"
	if b.String() != want {
		t.Errorf("csv mismatch\ngot:  %q\nwant: %q", b.String(), want)
	}
}
