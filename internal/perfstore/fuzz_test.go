package perfstore

// Fuzzing the on-disk decoders. The segment scanner is the crash-recovery
// path: it runs over whatever bytes a killed process left behind, so it
// must never panic, never over-read, and always report a clean-prefix
// length no larger than the input. Seeds are built from realistic
// `tcsim -benchjson` and `-sites` payloads, then the fuzzer mutates the
// encodings themselves.

import (
	"bytes"
	"testing"
)

// seedBenchJSON mirrors the shape of a real `tcsim -benchjson` file.
const seedBenchJSON = `{
  "table2": {"wall_ms": 1042.7, "cells": 30, "instructions": 60000000},
  "table4": {"wall_ms": 2210.1, "cells": 42, "instructions": 84000000}
}`

// seedSitesJSON mirrors a `-telemetry`/`-sites` report fragment.
const seedSitesJSON = `{
  "run": {"workers": 8, "wall_ms": 10352, "instructions": 120000000},
  "cells": [{"experiment": "table2", "workload": "cxx", "sites": [
    {"pc": 4199088, "executions": 81234, "mispredictions": 1201,
     "target_entropy": 2.41, "history_entropy": 3.02}]}]
}`

// encodeSeedSegment builds a valid one- or two-record segment.
func encodeSeedSegment(tb testing.TB, bodies ...[]byte) []byte {
	tb.Helper()
	buf := []byte(segMagic)
	for i, body := range bodies {
		meta := Meta{
			Kind:       "benchjson",
			Machine:    "fuzz-machine",
			Commit:     "deadbeef",
			Experiment: "table2",
			Time:       int64(1700000000000 + i),
			Bytes:      int64(len(body)),
		}
		meta.ID = ContentID(meta.Kind, meta.Machine, meta.Commit, meta.Experiment, body)
		var err error
		buf, err = encodeRecord(buf, meta, body)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return buf
}

func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add(encodeSeedSegment(f, []byte(seedBenchJSON)))
	f.Add(encodeSeedSegment(f, []byte(seedBenchJSON), []byte(seedSitesJSON)))
	tr := encodeSeedSegment(f, []byte(seedSitesJSON))
	f.Add(tr[:len(tr)-3]) // torn tail
	f.Add([]byte("TCPLOG1\nnot a record at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var records int
		cleanLen, err := scanSegment(bytes.NewReader(data), func(rec scannedRecord) error {
			records++
			if rec.Off < int64(len(segMagic)) || rec.BodyOff > int64(len(data)) {
				t.Fatalf("record offsets out of range: %+v (input %d bytes)", rec, len(data))
			}
			return nil
		})
		if cleanLen < 0 || cleanLen > int64(len(data)) {
			t.Fatalf("clean length %d outside [0,%d]", cleanLen, len(data))
		}
		if err == nil && records > 0 && cleanLen != int64(len(data)) {
			t.Fatalf("clean scan of %d bytes stopped at %d", len(data), cleanLen)
		}
	})
}

func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("benchjson", "mach-1", "commitA", "table2", []byte(seedBenchJSON))
	f.Add("telemetry", "mach-2", "commitB", "all", []byte(seedSitesJSON))
	f.Add("sites", "", "", "", []byte("{}"))
	f.Fuzz(func(t *testing.T, kind, machine, commit, experiment string, body []byte) {
		// Schema reuses the machine bytes so the optional field is fuzzed
		// without changing the corpus signature.
		meta := Meta{Kind: kind, Machine: machine, Commit: commit, Experiment: experiment, Schema: machine, Time: 42, Bytes: int64(len(body))}
		meta.ID = ContentID(kind, machine, commit, experiment, body)
		enc, err := encodeRecord([]byte(segMagic), meta, body)
		if err != nil {
			t.Skip() // oversized inputs are rejected, not encoded
		}
		var got []scannedRecord
		if _, err := scanSegment(bytes.NewReader(enc), func(rec scannedRecord) error {
			got = append(got, scannedRecord{Meta: rec.Meta, Body: append([]byte(nil), rec.Body...)})
			return nil
		}); err != nil {
			t.Fatalf("decoding freshly encoded record: %v", err)
		}
		if len(got) != 1 || got[0].Meta != meta || !bytes.Equal(got[0].Body, body) {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	})
}
