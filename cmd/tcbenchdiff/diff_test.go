package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got against the named golden file, rewriting it
// under -update (same contract as internal/bench's golden test).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tcbenchdiff -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenBenchfmt pins the full table for a benchfmt diff that
// exercises every verdict: regression (table4), improvement (budget),
// no difference (table2), significant-but-small (cache), too noisy
// (flaky), single runs (micro), and one-sided rows (retired/fresh).
func TestGoldenBenchfmt(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runDiff(defaultOptions(), "testdata/old.txt", "testdata/new.txt", &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (table4 regressed); stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "table4") {
		t.Errorf("stderr does not name the regressed experiment:\n%s", errOut.String())
	}
	checkGolden(t, "golden_benchfmt.txt", out.String())
}

// TestGoldenLegacy pins the same table driven by comma-separated legacy
// `tcsim -benchjson` files, one repetition per file — the pre-benchfmt
// workflow keeps working and feeds the same statistics.
func TestGoldenLegacy(t *testing.T) {
	oldArg := "testdata/legacy_old_1.json,testdata/legacy_old_2.json,testdata/legacy_old_3.json,testdata/legacy_old_4.json"
	newArg := "testdata/legacy_new_1.json,testdata/legacy_new_2.json,testdata/legacy_new_3.json,testdata/legacy_new_4.json"
	var out, errOut bytes.Buffer
	code := runDiff(defaultOptions(), oldArg, newArg, &out, &errOut)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (table4 regressed); stderr:\n%s", code, errOut.String())
	}
	checkGolden(t, "golden_legacy.txt", out.String())
}

// TestSeededNoiseFalsePositive is the acceptance scenario for retiring
// the single-run threshold gate. Old and new draw from the SAME
// distribution (uniform ±20% around 10ms — scheduler-noise scale for
// short suite runs). The legacy rule, `new > old*1.10` on one run per
// side, fires constantly on this null distribution; the significance
// gate on 5 runs per side almost never does, and never more often than
// its alpha promises.
func TestSeededNoiseFalsePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	draw := func() float64 { return 10 * (0.8 + 0.4*rng.Float64()) }

	const trials = 100
	legacyFP, newFP := 0, 0
	opts := defaultOptions()
	for i := 0; i < trials; i++ {
		// Legacy gate: one run per side, fixed 10% threshold.
		if draw() > draw()*1.10 {
			legacyFP++
		}
		// New gate: five runs per side, Mann-Whitney against alpha.
		oldV := []float64{draw(), draw(), draw(), draw(), draw()}
		newV := []float64{draw(), draw(), draw(), draw(), draw()}
		if compareKey(opts, "null", oldV, newV).Verdict == verdictRegression {
			newFP++
		}
	}
	t.Logf("false positives over %d null trials: legacy=%d significance-gate=%d", trials, legacyFP, newFP)
	if legacyFP < 10 {
		t.Errorf("legacy single-run gate fired %d/%d times on pure noise; expected >= 10 — the noise model is too tame to prove the point", legacyFP, trials)
	}
	if newFP > trials/20 {
		t.Errorf("significance gate fired %d/%d times on pure noise, above its alpha=%.2f promise", newFP, trials, opts.alpha)
	}
	if newFP*2 >= legacyFP {
		t.Errorf("significance gate (%d) is not clearly better than the legacy gate (%d)", newFP, legacyFP)
	}
}

// writeBenchfmt writes a one-experiment benchfmt snapshot with the given
// per-rep wall times, for driving runDiff end to end from tests.
func writeBenchfmt(t *testing.T, path, exp string, ms []float64) {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("suite: tcsim\n\n")
	for _, v := range ms {
		fmt.Fprintf(&b, "BenchmarkSuite/exp=%s 1 %g ns/op\n", exp, v*1e6)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestNoiseSkipBothBranches pins both sides of the variance-aware skip
// that replaced the old point-estimate -min-ms floor.
//
// Noisy branch: the sides are completely separated (the rank test alone
// would call p=0.0079) but the old side's CI is enormous — one 50ms
// outlier among ~1ms runs. A gate must not turn that into a failure:
// the row reports "too noisy to call" and the exit stays 0.
//
// Quiet branch: tight 10ms runs against tight 11ms runs — the same
// configuration gates, proving the skip exempts noise, not regressions.
func TestNoiseSkipBothBranches(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")

	// Noisy: complete separation, but no CI tight enough to stand on.
	writeBenchfmt(t, oldPath, "jitter", []float64{1, 1.1, 1.2, 1.3, 50})
	writeBenchfmt(t, newPath, "jitter", []float64{60, 100, 101, 102, 103})
	var out, errOut bytes.Buffer
	if code := runDiff(defaultOptions(), oldPath, newPath, &out, &errOut); code != 0 {
		t.Errorf("noisy branch: exit = %d, want 0 (too noisy to call); stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "too noisy to call") {
		t.Errorf("noisy branch: row not marked too noisy:\n%s", out.String())
	}
	r := compareKey(defaultOptions(), "jitter", []float64{1, 1.1, 1.2, 1.3, 50}, []float64{60, 100, 101, 102, 103})
	if r.Verdict != verdictNoisy {
		t.Errorf("noisy branch: verdict = %s, want %s", r.Verdict, verdictNoisy)
	}
	if r.P >= 0.05 {
		t.Errorf("noisy branch: p = %g; the point of the test is that significance alone would have gated", r.P)
	}

	// Quiet: a real 10% regression with tight intervals must still gate.
	writeBenchfmt(t, oldPath, "jitter", []float64{10, 10.05, 10.1, 10.15, 10.2})
	writeBenchfmt(t, newPath, "jitter", []float64{11, 11.02, 11.04, 11.06, 11.08})
	out.Reset()
	errOut.Reset()
	if code := runDiff(defaultOptions(), oldPath, newPath, &out, &errOut); code != 1 {
		t.Errorf("quiet branch: exit = %d, want 1 (real regression); stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("quiet branch: row not marked REGRESSION:\n%s", out.String())
	}
}

// TestToleranceFloor: a shift can be statistically unambiguous yet too
// small to care about. Complete separation (p=0.0079) at +0.5% must not
// gate under the default 1% tolerance.
func TestToleranceFloor(t *testing.T) {
	oldV := []float64{10.00, 10.01, 10.02, 10.03, 10.04}
	newV := []float64{10.05, 10.06, 10.07, 10.08, 10.09}
	r := compareKey(defaultOptions(), "cache", oldV, newV)
	if r.Verdict != verdictSmall {
		t.Fatalf("verdict = %s (p=%g delta=%g), want %s", r.Verdict, r.P, r.Delta, verdictSmall)
	}
	if r.P >= 0.05 {
		t.Errorf("p = %g, want significant — otherwise this tests nothing", r.P)
	}
}

// TestFewRunsNeverGates: a single run per side is a point estimate; the
// row is informational no matter how large the delta.
func TestFewRunsNeverGates(t *testing.T) {
	r := compareKey(defaultOptions(), "micro", []float64{2.0}, []float64{9.0})
	if r.Verdict != verdictFewRuns {
		t.Fatalf("verdict = %s, want %s", r.Verdict, verdictFewRuns)
	}
}

// TestFilterAndGroupBy drives the benchproc expressions through runDiff.
func TestFilterAndGroupBy(t *testing.T) {
	opts := defaultOptions()
	opts.filter = "exp:table2"
	var out, errOut bytes.Buffer
	if code := runDiff(opts, "testdata/old.txt", "testdata/new.txt", &out, &errOut); code != 0 {
		t.Errorf("exit = %d, want 0 (table4 filtered out); stderr:\n%s", code, errOut.String())
	}
	if strings.Contains(out.String(), "table4") {
		t.Errorf("filtered experiment still present:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "table2") {
		t.Errorf("kept experiment missing:\n%s", out.String())
	}

	// Group by model: every result in the fixture shares model=bimodal,
	// so all experiments pool into one row per side.
	opts = defaultOptions()
	opts.groupBy = "model"
	out.Reset()
	errOut.Reset()
	runDiff(opts, "testdata/old.txt", "testdata/new.txt", &out, &errOut)
	if !strings.Contains(out.String(), "bimodal") {
		t.Errorf("group-by model produced no bimodal row:\n%s", out.String())
	}
}

// TestBadExpressionsExit2 pins the usage-error exit code.
func TestBadExpressionsExit2(t *testing.T) {
	opts := defaultOptions()
	opts.filter = "exp:" // empty value list is a syntax error
	var out, errOut bytes.Buffer
	if code := runDiff(opts, "testdata/old.txt", "testdata/new.txt", &out, &errOut); code != 2 {
		t.Errorf("bad filter: exit = %d, want 2", code)
	}
	opts = defaultOptions()
	opts.groupBy = ","
	if code := runDiff(opts, "testdata/old.txt", "testdata/new.txt", &out, &errOut); code != 2 {
		t.Errorf("bad projection: exit = %d, want 2", code)
	}
}

// TestMissingFileExit1 pins the load-error exit code.
func TestMissingFileExit1(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runDiff(defaultOptions(), "testdata/does-not-exist.txt", "testdata/new.txt", &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

// TestUploadAll runs the full diff with -upload against a fake tcperf
// server: the NEW snapshot must arrive byte-for-byte with its schema
// tag, followed by one benchdiff/v1 document whose rows carry CI bounds
// and p-values (null for one-sided rows, which have no test).
func TestUploadAll(t *testing.T) {
	type recorded struct {
		kind, schema, commit string
		body                 []byte
	}
	var mu sync.Mutex
	var got []recorded
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/upload" {
			http.NotFound(w, r)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		mu.Lock()
		got = append(got, recorded{q.Get("kind"), q.Get("schema"), q.Get("commit"), body})
		n := len(got)
		mu.Unlock()
		fmt.Fprintf(w, `{"id":"id-%d","duplicate":false}`, n)
	}))
	defer srv.Close()

	opts := defaultOptions()
	opts.uploadURL = srv.URL
	opts.commit = "deadbeef"
	opts.experiment = "all"
	var out, errOut bytes.Buffer
	// Exit 1: the fixture contains a real regression — but the upload
	// must happen anyway (a regressed measurement is still a measurement).
	if code := runDiff(opts, "testdata/old.txt", "testdata/new.txt", &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}

	if len(got) != 2 {
		t.Fatalf("got %d uploads, want 2 (snapshot + diff rows)", len(got))
	}
	snap, diff := got[0], got[1]
	if snap.kind != "benchfmt" || snap.schema != "go-benchfmt/v1" || snap.commit != "deadbeef" {
		t.Errorf("snapshot upload meta = %s/%s/%s", snap.kind, snap.schema, snap.commit)
	}
	raw, err := os.ReadFile("testdata/new.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.body, raw) {
		t.Error("snapshot upload is not byte-identical to the input file")
	}
	if diff.kind != "benchdiff" || diff.schema != "benchdiff/v1" {
		t.Errorf("diff upload meta = %s/%s", diff.kind, diff.schema)
	}
	var doc struct {
		Alpha float64 `json:"alpha"`
		Rows  []struct {
			Key     string   `json:"key"`
			P       *float64 `json:"p"`
			Verdict string   `json:"verdict"`
			New     *struct {
				N    int     `json:"n"`
				LoMS float64 `json:"lo_ms"`
				HiMS float64 `json:"hi_ms"`
			} `json:"new"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(diff.body, &doc); err != nil {
		t.Fatalf("diff rows are not valid JSON: %v\n%s", err, diff.body)
	}
	if doc.Alpha != opts.alpha || len(doc.Rows) != 8 {
		t.Fatalf("doc alpha=%g rows=%d, want alpha=%g rows=8", doc.Alpha, len(doc.Rows), opts.alpha)
	}
	byKey := map[string]int{}
	for i, r := range doc.Rows {
		byKey[r.Key] = i
	}
	if i, ok := byKey["retired"]; !ok || doc.Rows[i].P != nil || doc.Rows[i].Verdict != "gone" {
		t.Errorf("retired row: want p=null verdict=gone, got %+v", doc.Rows[byKey["retired"]])
	}
	if i, ok := byKey["table4"]; !ok || doc.Rows[i].P == nil || *doc.Rows[i].P >= 0.05 || doc.Rows[i].Verdict != "regression" {
		t.Errorf("table4 row: want p<0.05 verdict=regression, got %+v", doc.Rows[byKey["table4"]])
	}
	if i := byKey["table4"]; doc.Rows[i].New == nil || doc.Rows[i].New.N != 5 || doc.Rows[i].New.LoMS >= doc.Rows[i].New.HiMS {
		t.Errorf("table4 new-side summary missing CI bounds: %+v", doc.Rows[i].New)
	}
}
