package workload

import (
	"fmt"

	"repro/internal/isa"
)

// The gosearch workload (an extra, beyond the paper's benchmark set) is a
// real recursive alpha-beta game-tree search written for the toy ISA. It
// exists to stress the parts of the front end the event-loop workloads
// barely touch: deep call/return recursion (return address stack pressure,
// including overflow at small RAS depths), a move-kind switch inside the
// recursion (an indirect jump whose history context is the search path),
// and leaf evaluation through a function-pointer table (an indirect call).
//
// The game is abstract: a position is a 64-bit hash; each node offers
// 2 + (hash & 3) moves; applying move m routes through one of eight
// move-kind handlers that mix the hash differently; leaves are scored by
// one of four evaluators selected by the position. Everything is
// deterministic, so the trace is reproducible and the search tree is
// effectively unbounded across restarts.

// gosearch register conventions.
const (
	wZ     = isa.Reg(31)
	wH     = isa.Reg(3)  // argument: position hash
	wD     = isa.Reg(4)  // argument: remaining depth
	wVal   = isa.Reg(6)  // return: position value
	wT1    = isa.Reg(7)  // scratch
	wT2    = isa.Reg(10) // scratch
	wT3    = isa.Reg(11) // scratch
	wM     = isa.Reg(12) // current move index
	wN     = isa.Reg(13) // move count
	wBest  = isa.Reg(14) // best value so far
	wChild = isa.Reg(5)  // child hash under construction
	wRoot  = isa.Reg(2)  // root counter
	wSP    = isa.Reg(29) // software stack pointer
	wCut   = isa.Reg(21) // cutoff threshold
)

const (
	gosearchDepth = 5
	gosearchRoots = 64
)

func buildGosearch() *isa.Program {
	b := isa.NewBuilder("gosearch", 0x180000)

	mtabBase := b.Words(8) // move-kind handler table
	etabBase := b.Words(4) // evaluator table
	stackWords := 8192
	stackBase := b.Words(stackWords)
	stackTop := stackBase + int64(stackWords)*8

	b.Label("init")
	b.LoadImm(wZ, 0)
	b.LoadImm(wSP, stackTop)
	b.LoadImm(wCut, 1<<30)
	b.LoadImm(wRoot, 0)

	// Driver: search a sequence of root positions at fixed depth.
	b.Label("roots")
	b.LoadImm(wT1, gosearchRoots)
	b.Br(isa.CondGE, wRoot, wT1, "done")
	// root hash = (root*2654435761 + 12345) | 1
	b.ALUI(isa.AluMul, wH, wRoot, 2654435761)
	b.ALUI(isa.AluAdd, wH, wH, 12345)
	b.ALUI(isa.AluOr, wH, wH, 1)
	b.LoadImm(wD, gosearchDepth)
	b.Call("search")
	b.ALUI(isa.AluAdd, wRoot, wRoot, 1)
	b.Jmp("roots")
	b.Label("done")
	b.Halt()

	// search(wH, wD) -> wVal: negamax with a cutoff.
	b.Label("search")
	b.Br(isa.CondNE, wD, wZ, "expand")
	// Leaf: dispatch to an evaluator by position (indirect call site).
	b.ALUI(isa.AluAnd, wT1, wH, 3)
	b.ALUI(isa.AluSll, wT2, wT1, 3)
	b.ALUI(isa.AluAdd, wT2, wT2, etabBase)
	b.Load(wT3, wT2, 0)
	b.CallIndSel(wT3, wT1)
	b.Ret()

	b.Label("expand")
	b.ALUI(isa.AluAnd, wN, wH, 3)
	b.ALUI(isa.AluAdd, wN, wN, 2) // 2..5 moves
	b.LoadImm(wM, 0)
	b.LoadImm(wBest, -(1 << 40))

	b.Label("moves")
	b.Br(isa.CondGE, wM, wN, "moves_done")
	// Save live state across the recursive call.
	b.ALUI(isa.AluSub, wSP, wSP, 40)
	b.Store(wSP, 0, wH)
	b.Store(wSP, 8, wD)
	b.Store(wSP, 16, wM)
	b.Store(wSP, 24, wN)
	b.Store(wSP, 32, wBest)
	// Move application: dispatch on the position's move kind (indirect
	// jump site, 8 targets). Handlers compute the child hash in wChild.
	b.ALUI(isa.AluSrl, wT1, wH, 2)
	b.ALUI(isa.AluAnd, wT1, wT1, 7)
	b.ALUI(isa.AluSll, wT2, wT1, 3)
	b.ALUI(isa.AluAdd, wT2, wT2, mtabBase)
	b.Load(wT3, wT2, 0)
	b.JmpIndSel(wT3, wT1)
	// Handlers jump here with wChild set.
	b.Label("applied")
	b.ALU(isa.AluAdd, wH, wChild, wZ)
	b.ALUI(isa.AluSub, wD, wD, 1)
	b.Call("search")
	// Restore and fold: value = -child value (negamax).
	b.Load(wH, wSP, 0)
	b.Load(wD, wSP, 8)
	b.Load(wM, wSP, 16)
	b.Load(wN, wSP, 24)
	b.Load(wBest, wSP, 32)
	b.ALUI(isa.AluAdd, wSP, wSP, 40)
	b.ALU(isa.AluSub, wVal, wZ, wVal)
	b.Br(isa.CondGE, wBest, wVal, "no_improve")
	b.ALU(isa.AluAdd, wBest, wVal, wZ)
	b.Label("no_improve")
	// Cutoff: a strong move ends the node early (data-dependent).
	b.Br(isa.CondGE, wBest, wCut, "moves_done")
	b.ALUI(isa.AluAdd, wM, wM, 1)
	b.Jmp("moves")

	b.Label("moves_done")
	b.ALU(isa.AluAdd, wVal, wBest, wZ)
	b.Ret()

	// Move-kind handlers: mix the parent hash and the move index into a
	// child hash; each kind mixes differently so targets are real code.
	for k := 0; k < 8; k++ {
		b.Label(fmt.Sprintf("mv%d", k))
		b.ALUI(isa.AluMul, wChild, wH, int64(2*k+3))
		b.ALUI(isa.AluAdd, wChild, wChild, int64(k+1))
		b.ALU(isa.AluAdd, wChild, wChild, wM)
		b.ALUI(isa.AluSrl, wT3, wChild, int64(k%3+7))
		b.ALU(isa.AluXor, wChild, wChild, wT3)
		b.ALUI(isa.AluSrl, wChild, wChild, 1) // keep it positive
		b.Jmp("applied")
	}

	// Evaluators: distinct scoring functions (indirect call targets).
	for e := 0; e < 4; e++ {
		b.Label(fmt.Sprintf("ev%d", e))
		b.ALUI(isa.AluSrl, wVal, wH, int64(3+e))
		b.ALUI(isa.AluAnd, wVal, wVal, 1023)
		if e%2 == 1 {
			b.ALU(isa.AluSub, wVal, wZ, wVal)
		}
		b.ALUI(isa.AluAdd, wVal, wVal, int64(17*e))
		b.Ret()
	}

	prog := b.SetEntry("init").MustBuild()
	for k := 0; k < 8; k++ {
		addr, ok := b.AddrOfLabel(fmt.Sprintf("mv%d", k))
		if !ok {
			panic("gosearch: missing move handler")
		}
		prog.Data[(mtabBase+int64(k)*8)/8] = int64(addr)
	}
	for e := 0; e < 4; e++ {
		addr, ok := b.AddrOfLabel(fmt.Sprintf("ev%d", e))
		if !ok {
			panic("gosearch: missing evaluator")
		}
		prog.Data[(etabBase+int64(e)*8)/8] = int64(addr)
	}
	return prog
}

var gosearchWorkload = register(&Workload{
	Name:        "gosearch",
	Description: "recursive alpha-beta game-tree search: deep call/return recursion, move-kind switch, evaluator fn-pointers",
	Extra:       true,
	build:       buildGosearch,
})
