package telemetry

import "time"

// SweepInfo carries the run-level facts of a design-space sweep that only
// the driver knows (the engine cannot see the process clock or the memo).
type SweepInfo struct {
	Spec        string
	Fingerprint string
	Workers     int
	Wall        time.Duration
	// Points is the expanded point count; FrontierPoints is how many sit
	// on a Pareto frontier; SkippedInvalid counts grid combinations the
	// expansion rejected.
	Points, FrontierPoints, SkippedInvalid int
	// Shards/ResumedShards describe checkpointing: total checkpoint
	// shards, and how many were served from a resume manifest instead of
	// simulated.
	Shards, ResumedShards int
	// Instructions is the total simulated instruction count.
	Instructions int64
	// MemoCaptures and MemoHits describe the trace memo: captures
	// executed the VM, hits reused a capture.
	MemoCaptures, MemoHits int64
	// Interrupted marks a sweep cancelled before completing; the manifest
	// holds the shards that finished.
	Interrupted bool
}

// SweepMetrics is the exported run-metrics document of one sweep: how much
// design space was covered, how the work was scheduled, and how well the
// shared capture store amortized trace decoding across points.
type SweepMetrics struct {
	Spec           string `json:"spec"`
	Fingerprint    string `json:"fingerprint"`
	Points         int    `json:"points"`
	FrontierPoints int    `json:"frontier_points"`
	SkippedInvalid int    `json:"skipped_invalid,omitempty"`
	Shards         int    `json:"shards"`
	ResumedShards  int    `json:"resumed_shards,omitempty"`

	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`

	Instructions int64 `json:"instructions_simulated"`
	MemoCaptures int64 `json:"memo_captures"`
	MemoHits     int64 `json:"memo_hits"`
	// CaptureAmortization is points per capture: how many simulations
	// each decoded trace served. The sweep engine's whole point is to
	// keep this near points/workloads.
	CaptureAmortization float64 `json:"capture_amortization,omitempty"`

	Interrupted bool `json:"interrupted,omitempty"`
}

// NewSweepMetrics derives the exported document from the run facts.
func NewSweepMetrics(info SweepInfo) SweepMetrics {
	m := SweepMetrics{
		Spec:           info.Spec,
		Fingerprint:    info.Fingerprint,
		Points:         info.Points,
		FrontierPoints: info.FrontierPoints,
		SkippedInvalid: info.SkippedInvalid,
		Shards:         info.Shards,
		ResumedShards:  info.ResumedShards,
		Workers:        info.Workers,
		WallMS:         float64(info.Wall.Microseconds()) / 1e3,
		Instructions:   info.Instructions,
		MemoCaptures:   info.MemoCaptures,
		MemoHits:       info.MemoHits,
		Interrupted:    info.Interrupted,
	}
	if info.MemoCaptures > 0 {
		m.CaptureAmortization = float64(info.Points) / float64(info.MemoCaptures)
	}
	return m
}
