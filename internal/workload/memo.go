package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Trace memoization: every simulation cell in the experiment suite is a
// pure function of (workload trace prefix, predictor config), and the
// trace prefix depends only on (workload, budget) because workloads are
// deterministic. Re-running the VM per cell therefore pays the toy
// machine's interpretation cost dozens of times for byte-identical
// streams. The memo below captures each (name, budget) prefix exactly once
// process-wide and hands out independent cursors, making concurrent cells
// race-free (captures are immutable) and VM-execution-free after first
// touch.
//
// Two refinements keep capture cost and footprint bounded:
//
//   - Prefix sharing. A budget-b cell can run over any capture of >= b
//     records, because every driver clamps to its own budget. Callers
//     that know the largest budget in play use ReplayPrefix to fold all
//     smaller requests onto one capture per workload, halving VM work in
//     the common accuracy+timing suite. The fold is static (the caller
//     names the shared budget), so capture counts stay deterministic
//     regardless of cell scheduling order.
//
//   - Spilling. Above a configurable threshold the capture streams from
//     the VM straight into an out-of-core trace.Store file — the decoded
//     columns never exist in memory at once — and cells replay it through
//     the store's bounded block cache, so budgets far beyond RAM run in
//     flat memory. See ConfigureSpill.
//
// The memo never evicts: tcsim runs use at most two budgets per workload
// (accuracy and timing), roughly 4 bytes per instruction resident — or
// only the block cache when spilled. Library users sweeping many budgets
// can call ResetMemo between sweeps.

type memoKey struct {
	name   string
	budget int64
}

type memoEntry struct {
	once sync.Once
	bs   trace.BlockSource
}

// SpillConfig configures out-of-core capture spilling.
type SpillConfig struct {
	// Dir receives one <name>-<budget>.tcstore file per spilled capture.
	Dir string
	// Threshold is the smallest budget (in instructions) that spills;
	// 0 disables spilling.
	Threshold int64
	// CacheBytes bounds each spilled store's decoded-block LRU cache
	// (<= 0 selects the trace package default).
	CacheBytes int64
	// Compress flate-compresses the spilled files.
	Compress bool
}

var (
	memoMu   sync.Mutex
	memos    = map[memoKey]*memoEntry{}
	spillCfg SpillConfig

	captures      atomic.Int64
	replays       atomic.Int64
	spilled       atomic.Int64
	spilledOnDisk atomic.Int64
)

// ConfigureSpill installs the spill policy for subsequent captures
// (typically once at startup, from tcsim's -trace-store flag). Captures
// already memoized stay where they are.
func ConfigureSpill(cfg SpillConfig) {
	memoMu.Lock()
	spillCfg = cfg
	memoMu.Unlock()
}

// TestCaptureTransform, when non-nil, post-processes every captured
// replay before it enters the memo. It exists for the fault-injection
// harness (internal/faultinject), which uses it to hand corrupted or
// truncated captures to chosen workloads. Install and clear it only from
// tests, bracketed by ResetMemo calls so no transformed capture leaks
// into or out of the faulty window. While installed, prefix sharing and
// spilling are disabled so every cell sees exactly the capture the
// transform produced for its own budget.
var TestCaptureTransform func(name string, budget int64, rep *trace.Replay) *trace.Replay

// Replay returns the workload's first budget instructions as an immutable
// capture, running the VM at most once per (workload, budget) key for the
// life of the process. The result implements trace.Factory (every Open
// returns an independent allocation-free cursor, safe for concurrent use)
// and trace.BlockSource (the batched form the simulation kernels
// consume); it is an in-memory trace.Replay or, above the configured
// spill threshold, an out-of-core *trace.Store.
func (w *Workload) Replay(budget int64) trace.BlockSource {
	replays.Add(1)
	key := memoKey{w.Name, budget}
	memoMu.Lock()
	e, ok := memos[key]
	cfg := spillCfg
	if !ok {
		e = &memoEntry{}
		memos[key] = e
	}
	memoMu.Unlock()
	e.once.Do(func() {
		captures.Add(1)
		if tf := TestCaptureTransform; tf != nil {
			e.bs = tf(w.Name, budget, trace.CaptureSized(trace.NewLimit(w.Open(), budget), budget))
			return
		}
		if cfg.Threshold > 0 && budget >= cfg.Threshold {
			if bs, err := spillCapture(w, budget, cfg); err == nil {
				e.bs = bs
				return
			}
			// Spill failures (disk full, unwritable dir) fall back to the
			// in-memory path: slower or riskier for RAM, never wrong.
		}
		e.bs = trace.CaptureSized(trace.NewLimit(w.Open(), budget), budget)
	})
	return e.bs
}

// ReplayPrefix returns a capture of at least budget instructions,
// serving it from the single shared (workload, shareBudget) capture when
// the caller names a larger shared budget. Drivers clamp to their own
// budget, so any capture of >= budget records yields byte-identical
// results; tests pin this via the suite goldens.
func (w *Workload) ReplayPrefix(budget, shareBudget int64) trace.BlockSource {
	if TestCaptureTransform != nil || shareBudget <= budget {
		return w.Replay(budget)
	}
	return w.Replay(shareBudget)
}

// spillCapture streams the VM straight into a trace-store file and opens
// it lazily: peak memory is one block group plus the store's LRU cache,
// regardless of budget.
func spillCapture(w *Workload, budget int64, cfg SpillConfig) (trace.BlockSource, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(cfg.Dir, fmt.Sprintf("%s-%d.tcstore", w.Name, budget))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	_, werr := trace.WriteStore(f, trace.NewLimit(w.Open(), budget), trace.StoreOptions{Compress: cfg.Compress})
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(path)
		if werr != nil {
			return nil, werr
		}
		return nil, cerr
	}
	s, err := trace.OpenStoreFile(path, cfg.CacheBytes)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	spilled.Add(1)
	spilledOnDisk.Add(s.SizeBytes())
	return s, nil
}

// CaptureCount returns the number of VM trace captures performed so far;
// tests assert its delta to prove each (workload, budget) key executes the
// VM at most once.
func CaptureCount() int64 { return captures.Load() }

// MemoCounters returns the number of Replay calls and the number of VM
// captures those calls performed; the difference is the memo's hit count,
// reported in the run-level telemetry.
func MemoCounters() (replayCalls, captureCount int64) {
	return replays.Load(), captures.Load()
}

// SpillStats returns the number of captures spilled to trace-store files
// and their total on-disk size in bytes.
func SpillStats() (spilledCaptures, diskBytes int64) {
	return spilled.Load(), spilledOnDisk.Load()
}

// MemoStats reports the number of memoized (workload, budget) keys and
// their total resident size in bytes: decoded columns for in-memory
// captures, on-disk file size for spilled ones. Sizing never forces a
// lazy re-encode or decode.
func MemoStats() (keys int, bytes int64) {
	memoMu.Lock()
	defer memoMu.Unlock()
	for _, e := range memos {
		keys++
		switch bs := e.bs.(type) {
		case *trace.Replay:
			bytes += bs.MemBytes()
		case *trace.Store:
			bytes += bs.SizeBytes()
		}
	}
	return keys, bytes
}

// ResetMemo drops all memoized traces (tests; budget sweeps that would
// otherwise accumulate unbounded captures). In-flight Replay calls holding
// old entries are unaffected, so spilled stores are not closed here; their
// files remain readable until the process exits.
func ResetMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memos = map[memoKey]*memoEntry{}
}
