package isa

import (
	"strings"
	"testing"
)

const demoAsm = `
; a tiny dispatch loop exercising every construct
.name demo
.base 0x2000

.data
counter: .word 0
vals:    .word 7, 9, -1
jtab:    .word &h0, &h1
rnd:     .rand 16 0x42

.text
start:  li   r1, vals
        ld   r2, 0(r1)      ; 7
        ld   r3, 8(r1)      ; 9
        add  r4, r2, r3     ; 16
        subi r4, r4, 2      ; 14
        li   r9, jtab
        andi r5, r4, 1      ; selector 0
        slli r6, r5, 3
        add  r6, r9, r6
        ld   r7, 0(r6)
        jr   r7, r5
h0:     li   r10, 100
        j    out
h1:     li   r10, 200
out:    call fn
        st   r10, 0(r1)
        halt
fn:     addi r10, r10, 1
        ret
`

func TestAssembleAndRun(t *testing.T) {
	// The assembler spells immediate ops "addi" etc.; fix the source to
	// use the canonical mnemonics.
	src := strings.NewReplacer("subi", "subi", "andi", "andi", "slli", "slli").Replace(demoAsm)
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || p.Base != 0x2000 {
		t.Fatalf("metadata wrong: %q %#x", p.Name, p.Base)
	}
	if p.Data[1] != 7 || p.Data[2] != 9 || p.Data[3] != -1 {
		t.Fatalf("data wrong: %v", p.Data[:4])
	}
	// Jump table entries must hold code addresses of h0/h1.
	if p.Data[4] == 0 || p.Data[5] == 0 || p.Data[4] == p.Data[5] {
		t.Fatalf("jump table not patched: %v", p.Data[4:6])
	}
	if len(p.Data) != 6+16 {
		t.Fatalf("data length %d", len(p.Data))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-text", ".data\nx: .word 1\n", "no .text"},
		{"bad-op", ".text\nfrob r1, r2\n", "unknown instruction"},
		{"bad-reg", ".text\nadd r1, r99, r2\n", "bad operands"},
		{"bad-label", ".text\nj nowhere\n", "undefined label"},
		{"bad-word", ".data\nx: .word zork\n.text\nnop\n", "bad word"},
		{"bad-data-ref", ".data\nx: .word &nope\n.text\nnop\n", "undefined code label"},
		{"dup-data", ".data\nx: .word 1\nx: .word 2\n.text\nnop\n", "duplicate data label"},
		{"bad-directive", ".data\nx: .blob 3\n.text\nnop\n", "unknown data directive"},
		{"bad-mem", ".text\nld r1, r2\n", "bad operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestAssembleEntryDefaults(t *testing.T) {
	p, err := Assemble(".text\nnop\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 {
		t.Fatalf("entry = %d", p.Entry)
	}
	p2, err := Assemble(".text\nnop\nstart: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Entry != 1 {
		t.Fatalf("entry with start label = %d", p2.Entry)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble(demoAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	for _, want := range []string{"li", "jr", "call", "halt", "beq", ".base 0x2000"} {
		if want == "beq" {
			continue // demo has no conditional branch
		}
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Re-assembling the disassembly must produce the same code stream.
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("reassembly length %d, want %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, p.Code[i], p2.Code[i])
		}
	}
}

func TestDisassembleAllOps(t *testing.T) {
	b := NewBuilder("x", 0)
	b.Nop().Halt().Ret()
	b.ALU(AluAdd, 1, 2, 3)
	b.ALUI(AluSrl, 1, 2, 5)
	b.LoadImm(4, -9)
	b.Load(5, 6, 16)
	b.Store(6, 24, 7)
	b.Label("l")
	b.Br(CondLT, 1, 2, "l")
	b.Jmp("l")
	b.Call("l")
	b.JmpInd(8)
	b.JmpIndSel(8, 9)
	b.CallInd(8)
	b.CallIndSel(8, 9)
	text := Disassemble(b.MustBuild())
	for _, want := range []string{
		"nop", "halt", "ret", "add", "srli", "li", "ld", "st",
		"blt", "j", "call", "jr    r8 ", "jr    r8, r9", "callr r8, r9",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}
