// Command tcexplore runs free-form design-space sweeps over the target
// cache beyond the paper's fixed tables: entry counts, associativity,
// history kind and length, against any workload. It also renders per-site
// misprediction reports, either live (-sweep sites) or from a telemetry
// JSON file written by tcsim -telemetry (-sites).
//
// Usage:
//
//	tcexplore -w perl -sweep entries
//	tcexplore -w gcc -sweep assoc -n 2000000
//	tcexplore -w perl -sweep history
//	tcexplore -w all -sweep predictors
//	tcexplore -w perl -sweep sites
//	tcexplore -sites telem.json -top 5
//	tcexplore -frontier sweep-doc.json
//	tcexplore -frontier sweep-doc.json -frontier-csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		wname = flag.String("w", "perl", "workload name, or \"all\"")
		sweep = flag.String("sweep", "predictors",
			"sweep kind: predictors | entries | assoc | history | pathlen | sites")
		n     = flag.Int64("n", 1_000_000, "instructions per simulation")
		sites = flag.String("sites", "", "render the per-site report from this telemetry JSON file (written by tcsim -telemetry) and exit")
		top   = flag.Int("top", 10, "sites shown per cell in per-site reports (0 = all)")

		frontier    = flag.String("frontier", "", "render the Pareto frontier from this sweep/v1 JSON document (written by tcsweep -doc) and exit")
		frontierCSV = flag.Bool("frontier-csv", false, "with -frontier: emit every swept point as CSV instead of the frontier tables")
	)
	flag.Parse()

	if *frontier != "" {
		if err := renderFrontierFile(*frontier, *frontierCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *sites != "" {
		if err := renderSitesFile(*sites, *top); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	var ws []*workload.Workload
	if *wname == "all" {
		ws = workload.All()
	} else {
		w, err := workload.ByName(*wname)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ws = append(ws, w)
	}

	if *sweep == "sites" {
		if err := sweepSites(ws, *n, *top); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	var t *stats.Table
	switch *sweep {
	case "predictors":
		t = sweepPredictors(ws, *n)
	case "entries":
		t = sweepEntries(ws, *n)
	case "assoc":
		t = sweepAssoc(ws, *n)
	case "history":
		t = sweepHistory(ws, *n)
	case "pathlen":
		t = sweepPathLen(ws, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	t.Render(os.Stdout)
}

// renderFrontierFile re-renders a sweep/v1 document previously written by
// tcsweep -doc (or fetched back from a tcperf server), so a recorded
// design-space sweep can be inspected without re-simulating.
func renderFrontierFile(path string, asCSV bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := sweep.ParseDocument(data)
	if err != nil {
		return fmt.Errorf("tcexplore: %s: %w", path, err)
	}
	if asCSV {
		return doc.WriteCSV(os.Stdout)
	}
	doc.Render(os.Stdout)
	return nil
}

// renderSitesFile re-renders the per-site report of a telemetry document
// previously written by tcsim -telemetry, so a saved run can be inspected
// without re-simulating.
func renderSitesFile(path string, top int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep telemetry.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("tcexplore: %s is not a telemetry report: %w", path, err)
	}
	return rep.WriteSites(os.Stdout, top)
}

// sweepSites simulates the baseline BTB and the canonical tagless gshare
// target cache on each workload with telemetry enabled and prints the
// per-site breakdown — Table 1's misprediction rates, resolved to the
// individual jump sites that produce them.
func sweepSites(ws []*workload.Workload, n int64, top int) error {
	rec := telemetry.NewRecorder(telemetry.Config{})
	for _, w := range ws {
		for _, v := range []struct {
			name string
			cfg  sim.Config
		}{
			{"btb", sim.DefaultConfig()},
			{"gshare-512", gshareCfg(512, 9)},
		} {
			col := rec.NewCollector()
			cfg := v.cfg
			cfg.Telemetry = col
			sim.RunAccuracy(w, n, cfg)
			rec.Merge(telemetry.Key{Workload: w.Name, Config: v.name}, col)
		}
	}
	return rec.Report(telemetry.RunInfo{}).WriteSites(os.Stdout, top)
}

func pct(v float64) string { return stats.Percent(v) }

func run(w *workload.Workload, n int64, cfg sim.Config) string {
	return pct(sim.RunAccuracy(w, n, cfg).IndirectMispredictRate())
}

func gshareCfg(entries, bits int) sim.Config {
	return sim.DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: entries, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(bits) })
}

func taggedCfg(entries, ways, bits int) sim.Config {
	return sim.DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagged(core.TaggedConfig{
				Entries: entries, Ways: ways, Scheme: core.SchemeHistoryXor, HistBits: bits,
			})
		},
		func() history.Provider { return history.NewPatternProvider(bits) })
}

// sweepPredictors compares every predictor family at its canonical size.
func sweepPredictors(ws []*workload.Workload, n int64) *stats.Table {
	t := stats.NewTable("Indirect-jump misprediction rate by predictor",
		"Benchmark", "BTB", "2-bit BTB", "tagless gshare(512)",
		"tagged xor 256/4w", "path ind-jmp(512)")
	for _, w := range ws {
		twoBit := sim.DefaultConfig()
		twoBit.BTB.Strategy = btb.StrategyTwoBit
		pathCfg := sim.DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
			},
			func() history.Provider {
				return history.NewPath(history.PathConfig{
					Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2,
					Filter: history.FilterIndJmp,
				})
			})
		t.AddRow(w.Name,
			run(w, n, sim.DefaultConfig()),
			run(w, n, twoBit),
			run(w, n, gshareCfg(512, 9)),
			run(w, n, taggedCfg(256, 4, 9)),
			run(w, n, pathCfg))
	}
	return t
}

// sweepEntries varies the tagless cache size.
func sweepEntries(ws []*workload.Workload, n int64) *stats.Table {
	t := stats.NewTable("Tagless gshare: misprediction rate by entry count",
		"Benchmark", "64", "128", "256", "512", "1024", "2048", "4096")
	for _, w := range ws {
		row := []string{w.Name}
		for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
			bits := 0
			for 1<<bits < e {
				bits++
			}
			row = append(row, run(w, n, gshareCfg(e, bits)))
		}
		t.AddRow(row...)
	}
	return t
}

// sweepAssoc varies tagged-cache associativity.
func sweepAssoc(ws []*workload.Workload, n int64) *stats.Table {
	t := stats.NewTable("Tagged History-Xor 256 entries: misprediction rate by associativity",
		"Benchmark", "1", "2", "4", "8", "16", "32")
	for _, w := range ws {
		row := []string{w.Name}
		for _, ways := range []int{1, 2, 4, 8, 16, 32} {
			row = append(row, run(w, n, taggedCfg(256, ways, 9)))
		}
		t.AddRow(row...)
	}
	return t
}

// sweepHistory varies pattern history length on the tagless cache.
func sweepHistory(ws []*workload.Workload, n int64) *stats.Table {
	t := stats.NewTable("Tagless gshare(512): misprediction rate by pattern history length",
		"Benchmark", "3", "6", "9", "12", "16", "20")
	for _, w := range ws {
		row := []string{w.Name}
		for _, bits := range []int{3, 6, 9, 12, 16, 20} {
			row = append(row, run(w, n, gshareCfg(512, bits)))
		}
		t.AddRow(row...)
	}
	return t
}

// sweepPathLen varies the path history register length (ind-jmp filter).
func sweepPathLen(ws []*workload.Workload, n int64) *stats.Table {
	t := stats.NewTable("Tagless gshare(512), ind-jmp path history: misprediction rate by register length",
		"Benchmark", "4", "6", "9", "12", "16", "24")
	for _, w := range ws {
		row := []string{w.Name}
		for _, bits := range []int{4, 6, 9, 12, 16, 24} {
			bits := bits
			cfg := sim.DefaultConfig().WithTargetCache(
				func() core.TargetCache {
					return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
				},
				func() history.Provider {
					return history.NewPath(history.PathConfig{
						Bits: bits, BitsPerTarget: 1, AddrBitOffset: 2,
						Filter: history.FilterIndJmp,
					})
				})
			row = append(row, run(w, n, cfg))
		}
		t.AddRow(row...)
	}
	return t
}
