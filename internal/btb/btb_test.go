package btb

import (
	"testing"

	"repro/internal/trace"
)

func taken(pc, target uint64, class trace.Class) trace.Record {
	return trace.Record{PC: pc, Target: target, Class: class, Taken: true}
}

func TestBTBMissThenHit(t *testing.T) {
	b := New(DefaultConfig())
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("hit in empty BTB")
	}
	r := taken(0x1000, 0x2000, trace.ClassUncondDirect)
	b.Update(&r)
	e, ok := b.Lookup(0x1000)
	if !ok || e.Target != 0x2000 || e.Class != trace.ClassUncondDirect {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
}

func TestBTBNotTakenNotAllocated(t *testing.T) {
	b := New(DefaultConfig())
	r := trace.Record{PC: 0x1000, Class: trace.ClassCondDirect, Taken: false}
	b.Update(&r)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("not-taken branch allocated a BTB entry")
	}
	nb := trace.Record{PC: 0x1000, Class: trace.ClassOther}
	b.Update(&nb)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("non-branch allocated a BTB entry")
	}
}

func TestDefaultStrategyTracksLastTarget(t *testing.T) {
	b := New(DefaultConfig())
	for _, tgt := range []uint64{0x2000, 0x3000, 0x4000} {
		r := taken(0x1000, tgt, trace.ClassIndJump)
		b.Update(&r)
		e, ok := b.Lookup(0x1000)
		if !ok || e.Target != tgt {
			t.Fatalf("after update to %#x: entry %+v ok=%v", tgt, e, ok)
		}
	}
}

func TestTwoBitStrategy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyTwoBit
	b := New(cfg)

	update := func(tgt uint64) {
		r := taken(0x1000, tgt, trace.ClassIndJump)
		b.Update(&r)
	}
	target := func() uint64 {
		e, ok := b.Lookup(0x1000)
		if !ok {
			t.Fatal("BTB miss")
		}
		return e.Target
	}

	update(0xA)
	if target() != 0xA {
		t.Fatal("initial target not installed")
	}
	// One deviation: target must be retained.
	update(0xB)
	if target() != 0xA {
		t.Fatal("2-bit strategy replaced target after one miss")
	}
	// Return to A resets the counter.
	update(0xA)
	update(0xB)
	if target() != 0xA {
		t.Fatal("counter did not reset on correct prediction")
	}
	// Two consecutive misses replace the target.
	update(0xB)
	if target() != 0xB {
		t.Fatal("2-bit strategy did not replace target after two misses")
	}
}

func TestTwoBitDirectBranchUnaffected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyTwoBit
	b := New(cfg)
	r := taken(0x1000, 0x2000, trace.ClassUncondDirect)
	b.Update(&r)
	r.Target = 0x3000 // a direct branch's target "changing" (e.g. re-use of PC)
	b.Update(&r)
	e, _ := b.Lookup(0x1000)
	if e.Target != 0x3000 {
		t.Fatal("direct branch target should always be rewritten")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := New(Config{Sets: 2, Ways: 1, Strategy: StrategyDefault})
	// Two PCs mapping to the same set (word index differs by Sets).
	pcA := uint64(0x1000)
	pcB := pcA + 2*4
	rA := taken(pcA, 0x2000, trace.ClassUncondDirect)
	rB := taken(pcB, 0x3000, trace.ClassUncondDirect)
	b.Update(&rA)
	b.Update(&rB)
	if _, ok := b.Lookup(pcA); ok {
		t.Fatal("conflicting entry was not evicted from 1-way set")
	}
	if e, ok := b.Lookup(pcB); !ok || e.Target != 0x3000 {
		t.Fatal("newest entry missing after conflict")
	}
}

func TestBTBCostBits(t *testing.T) {
	b := New(DefaultConfig())
	// 1024 entries x 90 bits, the paper's accounting.
	if got := b.CostBits(); got != 1024*90 {
		t.Fatalf("CostBits = %d, want %d", got, 1024*90)
	}
}

func TestBTBReset(t *testing.T) {
	b := New(DefaultConfig())
	r := taken(0x1000, 0x2000, trace.ClassUncondDirect)
	b.Update(&r)
	b.Reset()
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("entry survived reset")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyDefault.String() != "default" || StrategyTwoBit.String() != "2-bit" {
		t.Fatal("strategy names wrong")
	}
}
