// Package cache provides a generic set-associative tagged store with
// true-LRU replacement. It is the shared substrate for the BTB, the tagged
// target cache, and the timing model's data cache.
package cache

import "fmt"

type line[V any] struct {
	valid   bool
	tag     uint64
	lastUse uint64
	val     V
}

// Cache is a set-associative array of tagged entries holding payloads of
// type V. Callers own the index/tag split: Lookup and Insert take a set
// index (which must be < Sets()) and a full tag; IndexOf computes the
// canonical split for callers that map a word/line address across all
// sets.
//
// LRU tick semantics: the tick is a logical clock stamped into an entry's
// lastUse whenever that entry is refreshed — a Lookup hit or an Insert. It
// advances exactly once per refreshing operation and not on misses or
// Peeks, so equal tick streams always order evictions identically.
type Cache[V any] struct {
	sets [][]line[V]
	ways int
	tick uint64

	// Power-of-two set counts index with mask/shift instead of the
	// div/mod pair in IndexOf — the geometry every shipped configuration
	// (BTB, tagged target cache, data cache) uses.
	setMask  uint64
	setShift uint
	pow2     bool

	// Statistics.
	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache with numSets sets of ways entries each. It panics if
// either dimension is non-positive; set counts need not be powers of two.
func New[V any](numSets, ways int) *Cache[V] {
	if numSets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %dx%d", numSets, ways))
	}
	sets := make([][]line[V], numSets)
	backing := make([]line[V], numSets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	c := &Cache[V]{sets: sets, ways: ways}
	if numSets&(numSets-1) == 0 {
		c.pow2 = true
		c.setMask = uint64(numSets - 1)
		for 1<<c.setShift < numSets {
			c.setShift++
		}
	}
	return c
}

// IndexOf splits a word or line address into the set index (low bits,
// modulo the set count) and the tag (the remaining high bits). Power-of-
// two geometries take the mask/shift fast path; other set counts fall back
// to div/mod with identical results.
func (c *Cache[V]) IndexOf(addr uint64) (set int, tag uint64) {
	if c.pow2 {
		return int(addr & c.setMask), addr >> c.setShift
	}
	n := uint64(len(c.sets))
	return int(addr % n), addr / n
}

// Sets returns the number of sets.
func (c *Cache[V]) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache[V]) Ways() int { return c.ways }

// Entries returns the total entry count (sets × ways).
func (c *Cache[V]) Entries() int { return len(c.sets) * c.ways }

// Lookup searches set for tag. On a hit it refreshes the entry's LRU state
// and returns a pointer to the payload; the pointer is valid until the next
// Insert into the same set. The LRU tick advances only on hits: a miss
// refreshes nothing, so it must not consume a timestamp (relative entry
// ordering is unaffected either way, but the explicit rule keeps the tick
// a pure refresh counter).
func (c *Cache[V]) Lookup(set int, tag uint64) (*V, bool) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.tick++
			ln.lastUse = c.tick
			c.hits++
			return &ln.val, true
		}
	}
	c.misses++
	return nil, false
}

// LookupWay is Lookup that also reports which way the hit landed in, for
// callers that will refresh the same line via TouchWay without any
// intervening access to the set. The way index is -1 on a miss.
func (c *Cache[V]) LookupWay(set int, tag uint64) (*V, int, bool) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.tick++
			ln.lastUse = c.tick
			c.hits++
			return &ln.val, i, true
		}
	}
	c.misses++
	return nil, -1, false
}

// TouchWay refreshes a line located by a previous LookupWay hit on the
// same (set, tag) with no intervening accesses to the set: the tick,
// lastUse and stats stream is exactly what Touch produces on a hit, minus
// the rescan.
func (c *Cache[V]) TouchWay(set, way int) *V {
	c.tick++
	ln := &c.sets[set][way]
	ln.lastUse = c.tick
	c.hits++
	return &ln.val
}

// Peek searches set for tag without touching LRU state or statistics.
func (c *Cache[V]) Peek(set int, tag uint64) (*V, bool) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return &ln.val, true
		}
	}
	return nil, false
}

// Insert returns a pointer to the payload for tag in set, allocating an
// entry if absent. Allocation prefers an invalid way and otherwise evicts
// the least-recently-used entry (a fresh zero V is installed on allocation).
// The returned bool reports whether an existing valid entry was evicted.
func (c *Cache[V]) Insert(set int, tag uint64) (*V, bool) {
	c.tick++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			return &ln.val, false
		}
	}
	var victim *line[V]
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if !ln.valid {
			victim = ln
			break
		}
		if victim == nil || ln.lastUse < victim.lastUse {
			victim = ln
		}
	}
	evicted := victim.valid
	if evicted {
		c.evictions++
	}
	var zero V
	victim.valid = true
	victim.tag = tag
	victim.lastUse = c.tick
	victim.val = zero
	return &victim.val, evicted
}

// Touch finds or allocates the entry for tag in set with a single scan,
// reporting whether the entry already existed. A found entry is refreshed
// exactly like a Lookup hit (tick advance, hit count); an absent one is
// allocated exactly like an Insert that followed a Peek miss (tick advance,
// no miss count, eviction accounting). It is the one-pass equivalent of the
// Peek / Lookup-or-Insert pattern update paths use, with identical tick and
// statistics streams.
func (c *Cache[V]) Touch(set int, tag uint64) (*V, bool) {
	c.tick++
	var victim *line[V]
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			c.hits++
			return &ln.val, true
		}
		if !ln.valid {
			if victim == nil || victim.valid {
				victim = ln
			}
			continue
		}
		if victim == nil || (victim.valid && ln.lastUse < victim.lastUse) {
			victim = ln
		}
	}
	if victim.valid {
		c.evictions++
	}
	var zero V
	victim.valid = true
	victim.tag = tag
	victim.lastUse = c.tick
	victim.val = zero
	return &victim.val, false
}

// Invalidate removes tag from set, reporting whether it was present.
func (c *Cache[V]) Invalidate(set int, tag uint64) bool {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return true
		}
	}
	return false
}

// Reset invalidates every entry and clears statistics.
func (c *Cache[V]) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line[V]{}
		}
	}
	c.tick, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}

// Stats returns lookup hits, lookup misses and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}
