// Package cpu is the cycle-level timing model standing in for the paper's
// HPS simulator: a wide-issue out-of-order machine with register-dependence
// scheduling (Tomasulo-style wakeup), per-class execution latencies
// (Table 3), a 16KB data cache, and checkpoint repair — once a branch
// misprediction is resolved, instructions from the correct path are fetched
// in the next cycle.
//
// The model is a one-pass trace-driven approximation: for each retired
// instruction it computes fetch, issue, completion and retire cycles under
// fetch-width, window-occupancy, operand-readiness, functional-unit and
// retire-width constraints. Branch outcomes come from a sim.Engine, so the
// timing experiments see exactly the predictor behaviour the accuracy
// experiments measure. (The engine trains on committed state; wrong-path
// effects on predictor contents are not modelled, as is usual for
// trace-driven studies.)
package cpu

import (
	"context"
	"strconv"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes the machine.
type Config struct {
	// Width is the fetch, issue and retire bandwidth per cycle.
	Width int
	// Window is the maximum number of in-flight instructions ("the maximum
	// number of instructions that can exist in the machine at one time").
	Window int
	// FrontEndDepth is the number of cycles between fetch and earliest
	// issue; it sets the floor of the misprediction penalty.
	FrontEndDepth int
	// Latencies maps each functional-unit class to its execution latency
	// in cycles (Table 3).
	Latencies [trace.NumOpClasses]int64
	// MemLatency is the additional latency of a data-cache miss
	// ("latency for fetching data from memory is 10 cycles").
	MemLatency int64
	// DCacheBytes, DCacheWays and DCacheLine describe the data cache
	// (16KB in the paper; the instruction cache is perfect).
	DCacheBytes, DCacheWays, DCacheLine int
	// ModelWrongPath makes the event-driven model fetch and execute real
	// wrong-path instructions after a misprediction (requires a source
	// that implements WrongPathFetcher, e.g. vm.Looping): the wrong path
	// occupies fetch/issue bandwidth and pollutes the data cache with the
	// speculative machine's actual addresses, then is squashed at
	// resolution. The fast model ignores this flag.
	ModelWrongPath bool
	// DeadlockCycles is the event model's liveness guard: if no
	// instruction retires for this many consecutive cycles the run stops
	// with Result.Err describing the stall. 0 uses DefaultDeadlockCycles.
	DeadlockCycles int64
}

// DefaultDeadlockCycles is the event model's default liveness threshold.
const DefaultDeadlockCycles = 1_000_000

// DefaultConfig returns the paper's machine: 8-wide, 128-entry window,
// Table 3 latencies, 16KB 4-way data cache with a 10-cycle memory latency.
func DefaultConfig() Config {
	cfg := Config{
		Width:         8,
		Window:        128,
		FrontEndDepth: 5,
		MemLatency:    10,
		DCacheBytes:   16 * 1024,
		DCacheWays:    4,
		DCacheLine:    32,
	}
	cfg.Latencies[trace.OpInt] = 1
	cfg.Latencies[trace.OpFPAdd] = 3
	cfg.Latencies[trace.OpMul] = 3
	cfg.Latencies[trace.OpDiv] = 8
	cfg.Latencies[trace.OpLoad] = 1
	cfg.Latencies[trace.OpStore] = 1
	cfg.Latencies[trace.OpBitField] = 1
	cfg.Latencies[trace.OpBranch] = 1
	return cfg
}

// LatencyTable returns (class name, latency) rows for Table 3 reporting.
func (c Config) LatencyTable() [][2]string {
	rows := make([][2]string, 0, trace.NumOpClasses)
	for op := 0; op < trace.NumOpClasses; op++ {
		rows = append(rows, [2]string{
			trace.OpClass(op).String(),
			strconv.FormatInt(c.Latencies[op], 10),
		})
	}
	return rows
}

// Result reports one timing run.
type Result struct {
	Instructions int64
	Cycles       int64

	Branches            int64
	Mispredicts         int64
	IndirectCount       int64
	IndirectMispredicts int64
	CondMispredicts     int64
	ReturnMispredicts   int64

	DCacheAccesses int64
	DCacheMisses   int64

	// MispredictStallCycles counts fetch cycles lost to branch
	// misprediction (checkpoint-repair redirects); WindowStallCycles
	// counts fetch cycles lost waiting for window slots. Together they
	// locate where execution time goes — the breakdown behind the paper's
	// "reduction in execution time" results.
	MispredictStallCycles int64
	WindowStallCycles     int64

	// Err is non-nil when the run stopped early: a corrupt trace source
	// (wrapping trace.ErrCorrupt), a cancelled context, or the event
	// model's deadlock guard. The counters above cover the work done
	// before the stop.
	Err error
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// fuRing tracks per-cycle functional-unit occupancy without unbounded
// storage: entries are tagged with their cycle and lazily reset.
type fuRing struct {
	cycle []int64
	count []int
}

func newFURing(size int) *fuRing {
	return &fuRing{cycle: make([]int64, size), count: make([]int, size)}
}

func (f *fuRing) at(cycle int64) *int {
	i := int(cycle) & (len(f.count) - 1)
	if f.cycle[i] != cycle {
		f.cycle[i] = cycle
		f.count[i] = 0
	}
	return &f.count[i]
}

// Machine is a reusable timing simulator instance.
type Machine struct {
	cfg    Config
	engine *sim.Engine
	dcache *cache.Cache[struct{}]
	// observer, when set, receives every instruction's timing (used by
	// RunTimeline for pipeline diagrams).
	observer func(TimelineEntry)
}

// New returns a machine using cfg and the given prediction engine.
func New(cfg Config, engine *sim.Engine) *Machine {
	sets := cfg.DCacheBytes / (cfg.DCacheLine * cfg.DCacheWays)
	return &Machine{
		cfg:    cfg,
		engine: engine,
		dcache: cache.New[struct{}](sets, cfg.DCacheWays),
	}
}

// Run simulates up to budget instructions from src and returns the timing
// result. It may be called once per Machine.
func (m *Machine) Run(src trace.Source, budget int64) Result {
	return m.RunCtx(context.Background(), src, budget)
}

// ctxCheckMask sets how often the timing loop polls ctx.Err: every 8192
// instructions.
const ctxCheckMask = 1<<13 - 1

// RunCtx is Run under a context: the loop polls ctx on instruction-count
// boundaries and stops early with Err set to ctx.Err() when cancelled,
// returning the partial result accumulated so far.
func (m *Machine) RunCtx(ctx context.Context, src trace.Source, budget int64) Result {
	cfg := m.cfg
	var res Result

	var (
		fetchCycle   int64 // cycle the next instruction is fetched
		fetchedThis  int   // instructions fetched in fetchCycle
		lastRetire   int64 // retire cycle of the previous instruction
		retiredThis  int   // instructions retired in lastRetire
		regReady     [64]int64
		windowRetire = make([]int64, cfg.Window) // ring: retire cycle per slot
		fus          = newFURing(8192)
		idx          int64
		r            trace.Record
	)

	lineShift := 0
	for 1<<lineShift < cfg.DCacheLine {
		lineShift++
	}

	for idx < budget && src.Next(&r) {
		if idx&ctxCheckMask == ctxCheckMask {
			if err := ctx.Err(); err != nil {
				res.Err = err
				break
			}
		}
		// Fetch: width and window constraints.
		if fetchedThis >= cfg.Width {
			fetchCycle++
			fetchedThis = 0
		}
		if oldest := windowRetire[idx%int64(cfg.Window)]; oldest > fetchCycle {
			// The slot's previous occupant retires at `oldest`; we can
			// occupy it the following cycle.
			res.WindowStallCycles += oldest + 1 - fetchCycle
			fetchCycle = oldest + 1
			fetchedThis = 0
		}
		fetched := fetchCycle
		fetchedThis++

		// Issue: operands, then a free functional unit.
		issue := fetched + int64(cfg.FrontEndDepth)
		if r.Src1 != 0 && regReady[r.Src1] > issue {
			issue = regReady[r.Src1]
		}
		if r.Src2 != 0 && regReady[r.Src2] > issue {
			issue = regReady[r.Src2]
		}
		for *fus.at(issue) >= cfg.Width {
			issue++
		}
		*fus.at(issue)++

		// Execute.
		lat := cfg.Latencies[r.Op]
		if r.Op == trace.OpLoad || r.Op == trace.OpStore {
			res.DCacheAccesses++
			set, tag := m.dcache.IndexOf(r.Addr >> lineShift)
			if _, hit := m.dcache.Lookup(set, tag); !hit {
				res.DCacheMisses++
				m.dcache.Insert(set, tag)
				if r.Op == trace.OpLoad {
					lat += cfg.MemLatency
				}
			}
		}
		complete := issue + lat
		if r.Dst != 0 {
			regReady[r.Dst] = complete
		}

		// Branch prediction and checkpoint repair.
		mispredicted := false
		if r.Class.IsBranch() {
			res.Branches++
			p := m.engine.Predict(&r)
			correct := p.Correct(&r)
			// Telemetry events from timing runs carry the branch's resolve
			// cycle. Nil-safe, one call per branch when enabled.
			m.engine.Tel.SetClock(complete)
			m.engine.Resolve(&r, p)
			switch r.Class {
			case trace.ClassIndJump, trace.ClassIndCall:
				res.IndirectCount++
				if !correct {
					res.IndirectMispredicts++
				}
			case trace.ClassCondDirect:
				if !correct {
					res.CondMispredicts++
				}
			case trace.ClassReturn:
				if !correct {
					res.ReturnMispredicts++
				}
			}
			if !correct {
				res.Mispredicts++
				mispredicted = true
				// Checkpoint repair: correct-path fetch resumes the cycle
				// after the branch resolves.
				if complete+1 > fetchCycle {
					res.MispredictStallCycles += complete + 1 - fetchCycle
					fetchCycle = complete + 1
					fetchedThis = 0
				}
			} else if r.Taken {
				// A predicted-taken branch ends the fetch group.
				fetchedThis = cfg.Width
			}
		}

		// Retire: in order, Width per cycle.
		retire := complete
		if retire < lastRetire {
			retire = lastRetire
		}
		if retire == lastRetire {
			if retiredThis >= cfg.Width {
				retire++
				retiredThis = 1
			} else {
				retiredThis++
			}
		} else {
			retiredThis = 1
		}
		lastRetire = retire
		windowRetire[idx%int64(cfg.Window)] = retire

		if m.observer != nil {
			m.observer(TimelineEntry{
				Record:     r,
				Fetch:      fetched,
				Issue:      issue,
				Complete:   complete,
				Retire:     retire,
				Mispredict: mispredicted,
			})
		}

		idx++
	}

	res.Instructions = idx
	res.Cycles = lastRetire + 1
	if res.Err == nil {
		res.Err = trace.SourceErr(src)
	}
	return res
}

// Run is a convenience wrapper: build a machine over cfg and engine, run
// src for budget instructions.
func Run(src trace.Source, budget int64, engine *sim.Engine, cfg Config) Result {
	return New(cfg, engine).Run(src, budget)
}
