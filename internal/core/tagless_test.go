package core

import (
	"testing"
	"testing/quick"
)

func TestTaglessConfigValidate(t *testing.T) {
	good := []TaglessConfig{
		{Entries: 512, Scheme: SchemeGAg},
		{Entries: 512, Scheme: SchemeGshare},
		{Entries: 512, Scheme: SchemeGAs, HistBits: 8, AddrBits: 1},
		{Entries: 512, Scheme: SchemeGAs, HistBits: 7, AddrBits: 2},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s rejected: %v", c.Name(), err)
		}
	}
	bad := []TaglessConfig{
		{Entries: 0},
		{Entries: 500, Scheme: SchemeGAg},
		{Entries: 512, Scheme: SchemeGAs, HistBits: 8, AddrBits: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTaglessNames(t *testing.T) {
	cases := []struct {
		cfg  TaglessConfig
		want string
	}{
		{TaglessConfig{Entries: 512, Scheme: SchemeGAg}, "GAg(9)"},
		{TaglessConfig{Entries: 512, Scheme: SchemeGAs, HistBits: 8, AddrBits: 1}, "GAs(8,1)"},
		{TaglessConfig{Entries: 512, Scheme: SchemeGshare}, "gshare"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestTaglessPredictUpdate(t *testing.T) {
	tc := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGshare})
	if _, ok := tc.Predict(0x1000, 0x5); ok {
		t.Fatal("prediction from empty table")
	}
	tc.Update(0x1000, 0x5, 0x4242)
	got, ok := tc.Predict(0x1000, 0x5)
	if !ok || got != 0x4242 {
		t.Fatalf("predict = %#x, %v", got, ok)
	}
	// A different history selects a different entry.
	if _, ok := tc.Predict(0x1000, 0x6); ok {
		t.Fatal("different history should not hit a written entry")
	}
}

func TestTaglessInterference(t *testing.T) {
	// GAg ignores the address entirely: two different jumps with the same
	// history share an entry — the interference the tagged variant fixes.
	tc := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGAg})
	tc.Update(0x1000, 0x7, 0xAAAA)
	got, ok := tc.Predict(0x2000, 0x7)
	if !ok || got != 0xAAAA {
		t.Fatalf("GAg should alias across addresses: %#x, %v", got, ok)
	}
	// gshare separates addresses that differ within the index width.
	gs := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGshare})
	gs.Update(0x1000, 0x7, 0xAAAA)
	if tgt, ok := gs.Predict(0x1004, 0x7); ok && tgt == 0xAAAA {
		t.Fatal("gshare aliased two nearby addresses with identical history")
	}
	// ...but addresses that differ only above the index width still alias
	// (that residual interference is inherent to the tagless structure).
	if tgt, ok := gs.Predict(0x1000+512*4, 0x7); !ok || tgt != 0xAAAA {
		t.Fatal("expected high-bit aliasing in gshare")
	}
}

func TestTaglessGAsPartitioning(t *testing.T) {
	// GAs(8,1): bit 2 of the PC selects the half-table; two jumps that
	// differ in that bit never interfere.
	tc := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGAs, HistBits: 8, AddrBits: 1})
	tc.Update(0x1000, 0x7, 0xAAAA)
	if _, ok := tc.Predict(0x1004, 0x7); ok {
		t.Fatal("GAs jumps in different partitions interfered")
	}
	if got, ok := tc.Predict(0x1008, 0x7); !ok || got != 0xAAAA {
		t.Fatalf("GAs same-partition lookup missed: %#x %v", got, ok)
	}
}

func TestTaglessResetAndCost(t *testing.T) {
	tc := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGshare})
	tc.Update(0x1000, 1, 0x42)
	tc.Reset()
	if _, ok := tc.Predict(0x1000, 1); ok {
		t.Fatal("entry survived reset")
	}
	if got := tc.CostBits(); got != 512*32 {
		t.Fatalf("CostBits = %d, want %d", got, 512*32)
	}
}

// Property: an Update followed immediately by a Predict with the same
// (pc, hist) always returns the written target.
func TestTaglessReadYourWriteProperty(t *testing.T) {
	schemes := []TaglessConfig{
		{Entries: 256, Scheme: SchemeGAg},
		{Entries: 256, Scheme: SchemeGshare},
		{Entries: 256, Scheme: SchemeGAs, HistBits: 6, AddrBits: 2},
	}
	for _, cfg := range schemes {
		tc := NewTagless(cfg)
		f := func(pc, hist uint64, target uint64) bool {
			target |= 1 // zero means "never written"
			tc.Update(pc, hist, target)
			got, ok := tc.Predict(pc, hist)
			return ok && got == target
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
	}
}
