# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench experiments fmt cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure at full budgets.
experiments:
	$(GO) run ./cmd/tcsim -exp all

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
