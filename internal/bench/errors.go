package bench

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// CellError describes one failed simulation cell: which experiment,
// workload and predictor configuration it belonged to, the underlying
// error, and — for raw panics only — the goroutine stack at the point of
// failure. Cells fail without taking down the run: the experiment renders
// their rows as ERR and the suite runner exits non-zero with a digest
// after every experiment has finished.
type CellError struct {
	// Experiment is the owning experiment's id ("table4"); empty when the
	// experiment ran outside the suite runner.
	Experiment string
	// Workload names the benchmark the cell simulated, if any.
	Workload string
	// Config describes the predictor/machine configuration the cell ran.
	Config string
	// Err is the underlying failure: a corrupt-trace error (wrapping
	// trace.ErrCorrupt), a cancelled context, a model liveness error, or a
	// wrapped panic value.
	Err error
	// Stack is the goroutine stack for raw panics; empty for structured
	// errors raised with abortCell.
	Stack string
}

// CellLabel returns the cell's "experiment/workload/config" label, the
// same label TestCellHook receives.
func (e *CellError) CellLabel() string {
	parts := make([]string, 0, 3)
	for _, p := range []string{e.Experiment, e.Workload, e.Config} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "/")
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("bench: cell %s: %v", e.CellLabel(), e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// cellAbort carries an expected, structured error (corrupt trace,
// cancellation, model deadlock) out of a cell body. The cell executor
// converts it into a CellError without recording a stack trace, keeping
// rendered failure footers deterministic.
type cellAbort struct{ err error }

// abortCell stops the current simulation cell with err. It must only be
// called from inside a cell body (or a helper the cell calls).
func abortCell(err error) { panic(cellAbort{err}) }

// recoveredErr normalises a recovered panic value into an error.
func recoveredErr(v any) (err error, stack string) {
	switch x := v.(type) {
	case cellAbort:
		return x.err, ""
	case error:
		return x, string(debug.Stack())
	default:
		return fmt.Errorf("panic: %v", x), string(debug.Stack())
	}
}

// failureLog collects CellErrors across an entire run; the suite runner
// attaches one to Params so every experiment's failures end up in the exit
// digest.
type failureLog struct {
	mu   sync.Mutex
	errs []*CellError
}

func (l *failureLog) add(errs ...*CellError) {
	if l == nil || len(errs) == 0 {
		return
	}
	l.mu.Lock()
	l.errs = append(l.errs, errs...)
	l.mu.Unlock()
}

func (l *failureLog) all() []*CellError {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*CellError(nil), l.errs...)
}
