package cache

import (
	"math/rand"
	"testing"
)

func TestBasicInsertLookup(t *testing.T) {
	c := New[int](4, 2)
	if c.Sets() != 4 || c.Ways() != 2 || c.Entries() != 8 {
		t.Fatalf("geometry wrong: %d sets %d ways", c.Sets(), c.Ways())
	}
	if _, ok := c.Lookup(0, 1); ok {
		t.Fatal("lookup hit in empty cache")
	}
	v, evicted := c.Insert(0, 1)
	if evicted {
		t.Fatal("insert into empty set evicted")
	}
	*v = 42
	got, ok := c.Lookup(0, 1)
	if !ok || *got != 42 {
		t.Fatalf("lookup after insert: ok=%v v=%v", ok, got)
	}
	// Re-insert keeps the payload.
	v2, evicted := c.Insert(0, 1)
	if evicted || *v2 != 42 {
		t.Fatalf("re-insert: evicted=%v v=%d", evicted, *v2)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](1, 2)
	*must(c.Insert(0, 10)) = 10
	*must(c.Insert(0, 20)) = 20
	c.Lookup(0, 10) // make 10 most recently used
	_, evicted := c.Insert(0, 30)
	if !evicted {
		t.Fatal("full set insert did not evict")
	}
	if _, ok := c.Peek(0, 20); ok {
		t.Fatal("LRU entry 20 survived eviction")
	}
	if _, ok := c.Peek(0, 10); !ok {
		t.Fatal("MRU entry 10 was evicted")
	}
}

func must[V any](v *V, _ bool) *V { return v }

func TestInvalidate(t *testing.T) {
	c := New[int](2, 2)
	c.Insert(1, 7)
	if !c.Invalidate(1, 7) {
		t.Fatal("invalidate missed present entry")
	}
	if c.Invalidate(1, 7) {
		t.Fatal("invalidate hit absent entry")
	}
	if _, ok := c.Lookup(1, 7); ok {
		t.Fatal("invalidated entry still present")
	}
}

func TestReset(t *testing.T) {
	c := New[int](2, 2)
	c.Insert(0, 1)
	c.Lookup(0, 1)
	c.Lookup(0, 9)
	c.Reset()
	if _, ok := c.Peek(0, 1); ok {
		t.Fatal("entry survived reset")
	}
	h, m, e := c.Stats()
	if h != 0 || m != 0 || e != 0 {
		t.Fatalf("stats survived reset: %d/%d/%d", h, m, e)
	}
}

func TestStatsCounting(t *testing.T) {
	c := New[int](1, 1)
	c.Lookup(0, 1) // miss
	c.Insert(0, 1)
	c.Lookup(0, 1) // hit
	c.Insert(0, 2) // evict
	h, m, e := c.Stats()
	if h != 1 || m != 1 || e != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", h, m, e)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 1) did not panic")
		}
	}()
	New[int](0, 1)
}

// referenceSet is a naive model of one set used to cross-check LRU
// behaviour under random operations.
type referenceSet struct {
	order []uint64 // most recent last
	ways  int
}

func (r *referenceSet) touch(tag uint64) bool {
	for i, t := range r.order {
		if t == tag {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), tag)
			return true
		}
	}
	return false
}

func (r *referenceSet) insert(tag uint64) {
	if r.touch(tag) {
		return
	}
	if len(r.order) == r.ways {
		r.order = r.order[1:]
	}
	r.order = append(r.order, tag)
}

// TestLRUAgainstReferenceModel drives the cache and a reference model with
// the same random operation stream and checks hit/miss agreement.
func TestLRUAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ways := range []int{1, 2, 4, 8} {
		c := New[struct{}](1, ways)
		ref := &referenceSet{ways: ways}
		for op := 0; op < 10000; op++ {
			tag := uint64(rng.Intn(ways * 3))
			if rng.Intn(2) == 0 {
				_, hit := c.Lookup(0, tag)
				refHit := ref.touch(tag)
				if hit != refHit {
					t.Fatalf("ways=%d op=%d lookup(%d): cache %v, reference %v",
						ways, op, tag, hit, refHit)
				}
			} else {
				c.Insert(0, tag)
				ref.insert(tag)
			}
		}
	}
}
