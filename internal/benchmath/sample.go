// Package benchmath computes statistics over distributions of benchmark
// measurements, in the spirit of golang.org/x/perf/benchmath: sample
// summaries with assumption-free confidence intervals on the median, the
// Mann-Whitney U significance test for comparing two samples, and
// tidy-unit formatting for rendering measurements at a human scale.
//
// The summary statistics are deliberately non-parametric. Benchmark
// wall-time distributions are not normal — they are a floor (the code's
// actual cost) plus a long right tail of scheduler and cache interference
// — so means and t-tests systematically overweight the tail. The median
// with an order-statistic confidence interval and a rank test are robust
// to that shape without assuming any other.
package benchmath

import (
	"fmt"
	"math"
	"sort"
)

// A Sample is a set of measurements of one thing (one experiment, one
// unit), held sorted ascending.
type Sample struct {
	// Values are the measurements, sorted ascending.
	Values []float64
}

// NewSample copies values into a sorted Sample.
func NewSample(values []float64) Sample {
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	return Sample{Values: vs}
}

// A Summary describes a sample's distribution: the median with a
// confidence interval, plus the usual scalar statistics.
type Summary struct {
	// N is the sample size.
	N int
	// Center is the sample median.
	Center float64
	// Lo and Hi bound the confidence interval on the median, taken from
	// the order statistics (no distributional assumption).
	Lo, Hi float64
	// Confidence is the interval's achieved coverage. Small samples
	// cannot reach a requested 0.95 — five runs cap out at 0.9375 even
	// using [min, max] — so callers gate decisions on this, not on the
	// level they asked for.
	Confidence float64
	Mean       float64
	Min, Max   float64
}

// Summary summarises the sample at the requested confidence level
// (e.g. 0.95). It panics on an empty sample.
func (s Sample) Summary(confidence float64) Summary {
	n := len(s.Values)
	if n == 0 {
		panic("benchmath: Summary of empty sample")
	}
	sum := Summary{
		N:      n,
		Center: s.Median(),
		Min:    s.Values[0],
		Max:    s.Values[n-1],
	}
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	sum.Mean = total / float64(n)
	lo, hi, cov := medianCI(n, confidence)
	sum.Lo, sum.Hi, sum.Confidence = s.Values[lo], s.Values[hi], cov
	return sum
}

// Median returns the sample median (mean of the middle two for even n).
func (s Sample) Median() float64 {
	n := len(s.Values)
	if n == 0 {
		panic("benchmath: Median of empty sample")
	}
	if n%2 == 1 {
		return s.Values[n/2]
	}
	return (s.Values[n/2-1] + s.Values[n/2]) / 2
}

// medianCI picks the tightest symmetric order-statistic interval
// [lo, hi] (0-based, inclusive) whose coverage of the true median is at
// least confidence, using the exact binomial distribution:
//
//	P(X(r) <= median <= X(s)) = sum_{k=r}^{s-1} C(n,k) / 2^n
//
// with 1-based r and symmetric s = n-r+1. When even [min, max] cannot
// reach the requested level (n <= 5 for 0.95), it returns [min, max]
// with the smaller achieved coverage; callers that need the requested
// level must collect more runs.
func medianCI(n int, confidence float64) (lo, hi int, coverage float64) {
	// pmf[k] = C(n,k) / 2^n, built incrementally to avoid overflow.
	pmf := make([]float64, n+1)
	pmf[0] = math.Pow(0.5, float64(n))
	for k := 1; k <= n; k++ {
		pmf[k] = pmf[k-1] * float64(n-k+1) / float64(k)
	}
	cover := func(r int) float64 { // 1-based lower order statistic
		s := n - r + 1
		c := 0.0
		for k := r; k <= s-1; k++ {
			c += pmf[k]
		}
		return c
	}
	best := 1
	for r := 1; 2*r <= n; r++ {
		if cover(r) >= confidence {
			best = r
		} else {
			break
		}
	}
	return best - 1, n - best, cover(best)
}

// Noise is the confidence interval's half-width as a fraction of the
// center: max(Hi-Center, Center-Lo) / |Center|. It is the "can this
// sample support a 1-2% claim?" number — a sample whose Noise is 0.25
// cannot distinguish a 5% shift from jitter. Zero-width intervals (n=1,
// or all values equal) report 0; a zero center with nonzero width
// reports +Inf.
func (s Summary) Noise() float64 {
	w := math.Max(s.Hi-s.Center, s.Center-s.Lo)
	if w == 0 {
		return 0
	}
	if s.Center == 0 {
		return math.Inf(1)
	}
	return w / math.Abs(s.Center)
}

// FormatCI renders the interval as a relative half-width, benchstat
// style: "±3.2%". n=1 samples have no interval and render "± ∞".
func (s Summary) FormatCI() string {
	if s.N < 2 {
		return "± ∞"
	}
	return fmt.Sprintf("±%.1f%%", s.Noise()*100)
}
