package core

import (
	"math/rand"
	"testing"
)

func TestCascadedConfigValidate(t *testing.T) {
	if err := DefaultCascadedConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []CascadedConfig{
		{Stage1Entries: 0, Stage1Ways: 1, Stage2: TaggedConfig{Entries: 64, Ways: 1, HistBits: 9}},
		{Stage1Entries: 7, Stage1Ways: 2, Stage2: TaggedConfig{Entries: 64, Ways: 1, HistBits: 9}},
		{Stage1Entries: 64, Stage1Ways: 2, Stage2: TaggedConfig{Entries: 63, Ways: 1, HistBits: 9}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCascadedMonomorphicStaysInStage1(t *testing.T) {
	c := NewCascaded(DefaultCascadedConfig())
	// A monomorphic jump: stage 1 learns it; with filtering on, stage 2
	// must never allocate for it.
	for h := uint64(0); h < 50; h++ {
		c.Update(0x100, h, 0x4000)
	}
	if got, ok := c.Predict(0x100, 99); !ok || got != 0x4000 {
		t.Fatalf("monomorphic jump not predicted: %#x %v", got, ok)
	}
	if tgt, ok := c.stage2.Predict(0x100, 7); ok && tgt == 0x4000 {
		t.Fatal("filtered cascade allocated a monomorphic jump in stage 2")
	}
}

func TestCascadedPolymorphicUsesStage2(t *testing.T) {
	c := NewCascaded(DefaultCascadedConfig())
	// A jump alternating between two targets keyed by history.
	for i := 0; i < 200; i++ {
		h := uint64(i % 2)
		tgt := uint64(0x1000 + 0x100*h)
		c.Update(0x200, h, tgt)
	}
	for h := uint64(0); h < 2; h++ {
		want := uint64(0x1000 + 0x100*h)
		got, ok := c.Predict(0x200, h)
		if !ok || got != want {
			t.Fatalf("hist %d: predict = %#x, %v (want %#x)", h, got, ok, want)
		}
	}
}

func TestCascadedUnfilteredAllocatesEverything(t *testing.T) {
	cfg := DefaultCascadedConfig()
	cfg.Filtered = false
	c := NewCascaded(cfg)
	c.Update(0x100, 5, 0x4000)
	if _, ok := c.stage2.Predict(0x100, 5); !ok {
		t.Fatal("unfiltered cascade did not allocate in stage 2")
	}
}

func TestCascadedResetAndCost(t *testing.T) {
	c := NewCascaded(DefaultCascadedConfig())
	c.Update(0x100, 5, 0x4000)
	if c.CostBits() <= 0 {
		t.Fatal("cost must be positive")
	}
	c.Reset()
	if _, ok := c.Predict(0x100, 5); ok {
		t.Fatal("entry survived reset")
	}
}

func TestITTAGEConfigValidate(t *testing.T) {
	if err := DefaultITTAGEConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []ITTAGEConfig{
		{BaseEntries: 0, TableEntries: 64, HistLens: []int{4}, TagBits: 9},
		{BaseEntries: 64, TableEntries: 63, HistLens: []int{4}, TagBits: 9},
		{BaseEntries: 64, TableEntries: 64, HistLens: nil, TagBits: 9},
		{BaseEntries: 64, TableEntries: 64, HistLens: []int{8, 4}, TagBits: 9},
		{BaseEntries: 64, TableEntries: 64, HistLens: []int{4, 80}, TagBits: 9},
		{BaseEntries: 64, TableEntries: 64, HistLens: []int{4}, TagBits: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestITTAGEBasePrediction(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	if _, ok := p.Predict(0x100, 0); ok {
		t.Fatal("prediction from empty predictor")
	}
	p.Update(0x100, 0, 0x4000)
	// The base table predicts last-target for any history.
	if got, ok := p.Predict(0x100, 0xdead); !ok || got != 0x4000 {
		t.Fatalf("base prediction = %#x, %v", got, ok)
	}
}

func TestITTAGELearnsHistoryKeyedTargets(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	// Targets keyed to four distinct (long) history values.
	hists := []uint64{0x1111, 0x2222, 0x3333_0000_0000, 0x4444_0000_0000_0001}
	misses := 0
	for i := 0; i < 4000; i++ {
		h := hists[i%len(hists)]
		want := 0x1000 + h&0xffff
		got, ok := p.Predict(0x300, h)
		if i > 2000 && (!ok || got != want) {
			misses++
		}
		p.Update(0x300, h, want)
	}
	if misses > 40 {
		t.Fatalf("ITTAGE failed to learn history-keyed targets: %d misses", misses)
	}
}

// TestITTAGEBeatsFixedHistoryOnLongPeriod exercises the geometric-history
// advantage. The periodic target sequence is built so its 1-bit-per-target
// path string contains an 18-position run of zeros: inside the run, every
// 9-bit history window looks identical, so a fixed 9-bit predictor must
// mispredict there, while a 64-bit window spans the whole period.
func TestITTAGEBeatsFixedHistoryOnLongPeriod(t *testing.T) {
	const period = 40
	bits := make([]uint64, period)
	rng := rand.New(rand.NewSource(9))
	for i := 18; i < period; i++ {
		bits[i] = uint64(rng.Intn(2))
	}
	target := func(i int) uint64 {
		p := i % period
		return uint64(0x1000 + 8*p + 4*int(bits[p]))
	}
	run := func(predict func(hist uint64) (uint64, bool), update func(hist, tgt uint64), histBits int) float64 {
		var hist uint64
		mask := uint64(1)<<histBits - 1
		if histBits >= 64 {
			mask = ^uint64(0)
		}
		misses, total := 0, 0
		for i := 0; i < 20000; i++ {
			tgt := target(i)
			got, ok := predict(hist & mask)
			if i > 10000 {
				total++
				if !ok || got != tgt {
					misses++
				}
			}
			update(hist&mask, tgt)
			hist = hist<<1 | (tgt>>2)&1
		}
		return float64(misses) / float64(total)
	}

	tagless := NewTagless(TaglessConfig{Entries: 512, Scheme: SchemeGshare})
	taglessRate := run(
		func(h uint64) (uint64, bool) { return tagless.Predict(0x100, h) },
		func(h, tgt uint64) { tagless.Update(0x100, h, tgt) }, 9)

	itt := NewITTAGE(DefaultITTAGEConfig())
	ittRate := run(
		func(h uint64) (uint64, bool) { return itt.Predict(0x100, h) },
		func(h, tgt uint64) { itt.Update(0x100, h, tgt) }, 64)

	if ittRate > 0.05 {
		t.Errorf("ITTAGE should learn a period-40 sequence: rate %.3f", ittRate)
	}
	if ittRate >= taglessRate {
		t.Errorf("ITTAGE (%.3f) should beat the 9-bit tagless cache (%.3f)",
			ittRate, taglessRate)
	}
}

func TestITTAGEReset(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p.Update(uint64(rng.Intn(64))<<2, rng.Uint64(), uint64(rng.Intn(1024))<<2)
	}
	p.Reset()
	if _, ok := p.Predict(0x40, 12345); ok {
		t.Fatal("state survived reset")
	}
}

func TestITTAGECost(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	cfg := DefaultITTAGEConfig()
	want := cfg.BaseEntries*32 +
		len(cfg.HistLens)*cfg.TableEntries*(32+cfg.TagBits+2+2+1)
	if got := p.CostBits(); got != want {
		t.Fatalf("CostBits = %d, want %d", got, want)
	}
}
