package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// The xlisp workload is a recursive expression evaluator over a forest of
// fixed trees, the shape of a Lisp interpreter's eval: dispatch on cell
// type through a jump table (one hot indirect jump with ~10 targets),
// a second small indirect call site for user-defined functions, and heavy
// call/return traffic exercising the return address stack. Symbol values
// mutate between sweeps so IF-node branches vary while the tree structure
// (and hence the dispatch sequence skeleton) repeats.

// Cell types.
const (
	cellNum = iota
	cellAdd
	cellSub
	cellMul
	cellIf
	cellNeg
	cellSym
	cellCall
	cellArg
	cellMax

	numCellTypes
)

// xlisp register conventions.
const (
	xZ    = isa.Reg(31)
	xRoot = isa.Reg(1)  // roots array base
	xRI   = isa.Reg(2)  // root index
	xNode = isa.Reg(3)  // eval argument: node byte address
	xVal  = isa.Reg(6)  // eval result
	xT1   = isa.Reg(7)  // scratch
	xT2   = isa.Reg(10) // scratch
	xT3   = isa.Reg(11) // scratch
	xT4   = isa.Reg(12) // scratch
	xVars = isa.Reg(16) // symbol table base
	xNR   = isa.Reg(20) // number of roots
	xSwp  = isa.Reg(21) // sweep counter
	xSP   = isa.Reg(29) // software stack pointer (byte address, grows down)
)

const (
	xlispRoots    = 48
	xlispUserFns  = 4
	xlispMaxDepth = 7
)

// xlispTreeGen builds expression trees into the data image. Each node is
// three words: [type, a, b]; a and b hold child byte addresses or
// immediates depending on type.
type xlispTreeGen struct {
	b         *isa.Builder
	rng       *rand.Rand
	allowCall bool
	// spine is the operator type a chain in progress repeats, 0 if none.
	spine int64
}

// gen emits one tree of at most the given depth and returns its byte
// address.
func (g *xlispTreeGen) gen(depth int) int64 {
	leafP := 0.15 + 0.12*float64(xlispMaxDepth-depth)
	if depth <= 0 || g.rng.Float64() < leafP {
		if g.rng.Float64() < 0.35 {
			addr := g.b.Words(3)
			g.b.SetWord(addr, cellSym)
			g.b.SetWord(addr+8, int64(g.rng.Intn(14))) // symbol index
			return addr
		}
		addr := g.b.Words(3)
		g.b.SetWord(addr, cellNum)
		g.b.SetWord(addr+8, int64(g.rng.Intn(1000)+1))
		return addr
	}
	types := []int64{cellAdd, cellAdd, cellSub, cellMul, cellMul, cellIf,
		cellNeg, cellMax}
	if g.allowCall && depth >= xlispMaxDepth-2 {
		types = append(types, cellCall, cellCall)
	}
	t := types[g.rng.Intn(len(types))]
	// Operator spines: arithmetic on lists compiles to chains of the same
	// operator (a+(b+(c+...))), giving the dispatch its runs.
	if g.spine != 0 && g.rng.Float64() < 0.62 {
		t = g.spine
	}
	if t == cellAdd || t == cellMul {
		g.spine = t
	} else {
		g.spine = 0
	}
	addr := g.b.Words(3)
	g.b.SetWord(addr, t)
	switch t {
	case cellNeg:
		g.b.SetWord(addr+8, g.gen(depth-1))
	case cellCall:
		g.b.SetWord(addr+8, int64(g.rng.Intn(xlispUserFns)))
		g.b.SetWord(addr+16, g.gen(depth-1))
	default:
		g.b.SetWord(addr+8, g.gen(depth-1))
		g.b.SetWord(addr+16, g.gen(depth-1))
	}
	return addr
}

func buildXlisp() *isa.Program {
	rng := rand.New(rand.NewSource(0x115b) /* fixed: deterministic workload */)
	b := isa.NewBuilder("xlisp", 0x80000)

	varsBase := b.Words(16)
	for i := 0; i < 16; i++ {
		b.SetWord(varsBase+int64(i)*8, int64(rng.Intn(512)))
	}
	evtabBase := b.Words(numCellTypes)
	fntabBase := b.Words(xlispUserFns) // code stubs for user functions
	argVar := varsBase + 15*8          // vars[15] doubles as the argument slot

	// User-function body trees (no nested calls).
	g := &xlispTreeGen{b: b, rng: rng, allowCall: false}
	fnBodies := make([]int64, xlispUserFns)
	for i := range fnBodies {
		// Bodies reference the argument via cellArg leaves: rewrite some
		// Num leaves into Arg by generating with a dedicated marker pass.
		fnBodies[i] = g.genWithArgs(4)
	}
	// The evaluated "program": a small pool of shared expression trees (a
	// Lisp program's function bodies), referenced repeatedly — with runs —
	// by the root script. Re-evaluating shared structure is what makes a
	// Lisp interpreter's dispatch sequences learnable: the same node
	// sequence recurs every time a body is evaluated.
	g.allowCall = true
	const poolSize = 12
	pool := make([]int64, poolSize)
	for i := range pool {
		pool[i] = g.gen(xlispMaxDepth)
	}
	rootsBase := b.Words(xlispRoots)
	cur := 0
	for i := 0; i < xlispRoots; i++ {
		switch r := rng.Float64(); {
		case r < 0.35:
			// repeat the previous body (eval called in loops)
		case r < 0.85:
			cur = (cur + 1 + rng.Intn(2)) % poolSize
		default:
			cur = rng.Intn(poolSize)
		}
		b.SetWord(rootsBase+int64(i)*8, pool[cur])
	}

	stackWords := 4096
	stackBase := b.Words(stackWords)
	stackTop := stackBase + int64(stackWords)*8

	b.Label("init")
	b.LoadImm(xZ, 0)
	b.LoadImm(xRoot, rootsBase)
	b.LoadImm(xVars, varsBase)
	b.LoadImm(xSP, stackTop)
	b.LoadImm(xSwp, 0)
	b.LoadImm(xRI, 0)
	b.LoadImm(xNR, xlispRoots)

	// Driver: evaluate every root, then perturb the symbol table so the
	// next sweep's IF decisions differ, and halt (the looping source
	// restarts for stationarity).
	b.Label("sweep")
	b.Br(isa.CondGE, xRI, xNR, "endsweep")
	b.ALUI(isa.AluSll, xT1, xRI, 3)
	b.ALU(isa.AluAdd, xT1, xRoot, xT1)
	b.Load(xNode, xT1, 0)
	b.Call("eval")
	// Fold the result into a rotating symbol so values evolve.
	b.ALUI(isa.AluAnd, xT1, xRI, 7)
	b.ALUI(isa.AluSll, xT1, xT1, 3)
	b.ALU(isa.AluAdd, xT1, xVars, xT1)
	b.Load(xT2, xT1, 0)
	b.ALU(isa.AluAdd, xT2, xT2, xVal)
	b.ALUI(isa.AluSrl, xT3, xT2, 3)
	b.ALU(isa.AluXor, xT2, xT2, xT3)
	b.Store(xT1, 0, xT2)
	b.ALUI(isa.AluAdd, xRI, xRI, 1)
	b.Jmp("sweep")
	b.Label("endsweep")
	b.Halt()

	// eval: xNode -> xVal. Dispatches on cell type — the hot indirect
	// jump of the workload. The leaf/operator class checks before the
	// dispatch are eval's fast-path guards; they also put type bits into
	// the pattern history.
	b.Label("eval")
	b.Load(xT1, xNode, 0)
	b.LoadImm(xT2, 1)
	b.Br(isa.CondLT, xT1, xT2, "evc1") // numbers: the hot leaf
	b.ALUI(isa.AluAdd, xT4, xT1, 1)
	b.Label("evc1")
	b.LoadImm(xT2, 4)
	b.Br(isa.CondLT, xT1, xT2, "evc2") // arithmetic operators
	b.ALUI(isa.AluXor, xT4, xT1, 2)
	b.Label("evc2")
	b.ALUI(isa.AluSll, xT2, xT1, 3)
	b.ALUI(isa.AluAdd, xT2, xT2, evtabBase)
	b.Load(xT3, xT2, 0)
	b.JmpIndSel(xT3, xT1)

	b.Label("ev_num")
	b.Load(xVal, xNode, 8)
	b.Ret()

	binop := func(name string, combine func()) {
		b.Label(name)
		b.ALUI(isa.AluSub, xSP, xSP, 16)
		b.Store(xSP, 0, xNode)
		b.Load(xNode, xNode, 8)
		b.Call("eval")
		b.Load(xT1, xSP, 0)
		b.Store(xSP, 8, xVal)
		b.Load(xNode, xT1, 16)
		b.Call("eval")
		b.Load(xT1, xSP, 8)
		combine()
		b.ALUI(isa.AluAdd, xSP, xSP, 16)
		b.Ret()
	}
	binop("ev_add", func() { b.ALU(isa.AluAdd, xVal, xT1, xVal) })
	binop("ev_sub", func() { b.ALU(isa.AluSub, xVal, xT1, xVal) })
	binop("ev_mul", func() {
		b.ALU(isa.AluMul, xVal, xT1, xVal)
		b.ALUI(isa.AluSrl, xVal, xVal, 1)
	})
	binop("ev_max", func() {
		b.Br(isa.CondGE, xT1, xVal, "max_left")
		b.Jmp("max_out")
		b.Label("max_left")
		b.ALU(isa.AluAdd, xVal, xT1, xZ)
		b.Label("max_out")
	})

	b.Label("ev_if")
	b.ALUI(isa.AluSub, xSP, xSP, 8)
	b.Store(xSP, 0, xNode)
	b.Load(xNode, xNode, 8)
	b.Call("eval")
	b.Load(xT1, xSP, 0)
	b.ALUI(isa.AluAdd, xSP, xSP, 8)
	b.ALUI(isa.AluAnd, xT2, xVal, 1)
	b.Br(isa.CondEQ, xT2, xZ, "if_false")
	b.Load(xNode, xT1, 16)
	b.Call("eval")
	b.Ret()
	b.Label("if_false")
	b.ALUI(isa.AluSrl, xVal, xVal, 1)
	b.Ret()

	b.Label("ev_neg")
	b.ALUI(isa.AluSub, xSP, xSP, 8)
	b.Store(xSP, 0, xNode)
	b.Load(xNode, xNode, 8)
	b.Call("eval")
	b.ALUI(isa.AluAdd, xSP, xSP, 8)
	b.ALU(isa.AluSub, xVal, xZ, xVal)
	b.Ret()

	b.Label("ev_sym")
	b.Load(xT1, xNode, 8)
	b.ALUI(isa.AluSll, xT1, xT1, 3)
	b.ALU(isa.AluAdd, xT1, xVars, xT1)
	b.Load(xVal, xT1, 0)
	b.Ret()

	b.Label("ev_call")
	// Evaluate the argument, bind it, then dispatch to the user-function
	// stub — the second indirect (call) site.
	b.ALUI(isa.AluSub, xSP, xSP, 8)
	b.Store(xSP, 0, xNode)
	b.Load(xNode, xNode, 16)
	b.Call("eval")
	b.Load(xT1, xSP, 0)
	b.ALUI(isa.AluAdd, xSP, xSP, 8)
	b.LoadImm(xT2, argVar)
	b.Store(xT2, 0, xVal)
	b.Load(xT3, xT1, 8) // function index
	b.ALUI(isa.AluSll, xT2, xT3, 3)
	b.ALUI(isa.AluAdd, xT2, xT2, fntabBase)
	b.Load(xT4, xT2, 0)
	b.CallIndSel(xT4, xT3)
	b.Ret()

	b.Label("ev_arg")
	b.LoadImm(xT1, argVar)
	b.Load(xVal, xT1, 0)
	b.Ret()

	// User-function stubs: load the body tree root and evaluate it.
	for i := 0; i < xlispUserFns; i++ {
		b.Label(fmt.Sprintf("fnstub%d", i))
		b.LoadImm(xNode, fnBodies[i])
		b.Call("eval")
		b.Ret()
	}

	prog := b.SetEntry("init").MustBuild()

	evalHandlers := []string{
		"ev_num", "ev_add", "ev_sub", "ev_mul", "ev_if", "ev_neg",
		"ev_sym", "ev_call", "ev_arg", "ev_max",
	}
	for i, name := range evalHandlers {
		addr, ok := b.AddrOfLabel(name)
		if !ok {
			panic("xlisp: missing handler " + name)
		}
		prog.Data[(evtabBase+int64(i)*8)/8] = int64(addr)
	}
	for i := 0; i < xlispUserFns; i++ {
		addr, ok := b.AddrOfLabel(fmt.Sprintf("fnstub%d", i))
		if !ok {
			panic("xlisp: missing stub")
		}
		prog.Data[(fntabBase+int64(i)*8)/8] = int64(addr)
	}
	return prog
}

// genWithArgs emits a user-function body tree whose leaves are a mix of
// numbers, symbols and argument references.
func (g *xlispTreeGen) genWithArgs(depth int) int64 {
	if depth <= 0 || g.rng.Float64() < 0.3 {
		addr := g.b.Words(3)
		switch g.rng.Intn(3) {
		case 0:
			g.b.SetWord(addr, cellArg)
		case 1:
			g.b.SetWord(addr, cellSym)
			g.b.SetWord(addr+8, int64(g.rng.Intn(14)))
		default:
			g.b.SetWord(addr, cellNum)
			g.b.SetWord(addr+8, int64(g.rng.Intn(100)+1))
		}
		return addr
	}
	types := []int64{cellAdd, cellSub, cellMul, cellIf, cellNeg, cellMax}
	t := types[g.rng.Intn(len(types))]
	addr := g.b.Words(3)
	g.b.SetWord(addr, t)
	if t == cellNeg {
		g.b.SetWord(addr+8, g.genWithArgs(depth-1))
	} else {
		g.b.SetWord(addr+8, g.genWithArgs(depth-1))
		g.b.SetWord(addr+16, g.genWithArgs(depth-1))
	}
	return addr
}

var xlispWorkload = register(&Workload{
	Name:        "xlisp",
	Description: "recursive expression evaluator: type-dispatch eval, user-fn stubs, call/return heavy",
	build:       buildXlisp,
})
