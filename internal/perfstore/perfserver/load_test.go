package perfserver

// Load test: a thousand simulated clients hammering the query, trend,
// record, and upload endpoints at once. The assertions are the service's
// robustness contract under overload: every request gets a well-formed
// answer (200 from reads, 200-or-429 from writes — never a 5xx, never a
// hang), no acknowledged upload is lost, and the process's heap stays
// bounded because the admission queue is the only place request bodies
// can pile up.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfstore"
)

func TestLoadThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	store, err := perfstore.Open(t.TempDir(), perfstore.Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{QueueDepth: 16, MaxBodyBytes: 1 << 20})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed a history the read endpoints can chew on.
	for i := 0; i < 50; i++ {
		body := fmt.Sprintf(`{"table2":{"wall_ms":%d.5},"table4":{"wall_ms":%d.5}}`, 1000+i, 2000+i)
		resp, err := http.Post(
			fmt.Sprintf("%s/api/v1/upload?kind=benchjson&machine=seed&commit=c%03d&experiment=all", ts.URL, i),
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed upload %d: %d", i, resp.StatusCode)
		}
	}

	httpc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	const clients = 1000
	const reqsPerClient = 4
	var (
		wg          sync.WaitGroup
		ackedIDs    sync.Map
		badStatus   atomic.Int64
		netErrs     atomic.Int64
		shed        atomic.Int64
		readOK      atomic.Int64
		exampleFail atomic.Value
	)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			for r := 0; r < reqsPerClient; r++ {
				switch (cid + r) % 4 {
				case 0: // query
					resp, err := httpc.Get(ts.URL + "/api/v1/query?kind=benchjson&limit=20")
					if err != nil {
						netErrs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						badStatus.Add(1)
						exampleFail.Store(fmt.Sprintf("query: %d", resp.StatusCode))
					} else {
						readOK.Add(1)
					}
				case 1: // trend
					resp, err := httpc.Get(ts.URL + "/api/v1/trend?bench=table2&machine=seed&limit=50")
					if err != nil {
						netErrs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						badStatus.Add(1)
						exampleFail.Store(fmt.Sprintf("trend: %d", resp.StatusCode))
					} else {
						readOK.Add(1)
					}
				case 2: // upload (unique content per client)
					body := fmt.Sprintf(`{"load":{"client":%d,"r":%d}}`, cid, r)
					resp, err := httpc.Post(
						fmt.Sprintf("%s/api/v1/upload?kind=loadtest&machine=lt%02d&commit=x%d&experiment=load", ts.URL, cid%8, cid),
						"application/json", strings.NewReader(body))
					if err != nil {
						netErrs.Add(1)
						continue
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						var ack UploadResponse
						if err := jsonDecode(raw, &ack); err == nil {
							ackedIDs.Store(ack.ID, body)
						}
					case http.StatusTooManyRequests:
						shed.Add(1) // shedding is correct behaviour under load
					default:
						badStatus.Add(1)
						exampleFail.Store(fmt.Sprintf("upload: %d %s", resp.StatusCode, raw))
					}
				case 3: // statsz keeps the counters path hot
					resp, err := httpc.Get(ts.URL + "/statsz")
					if err != nil {
						netErrs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						badStatus.Add(1)
					} else {
						readOK.Add(1)
					}
				}
			}
		}(cid)
	}
	wg.Wait()

	if n := badStatus.Load(); n > 0 {
		t.Fatalf("%d non-contract statuses under load (e.g. %v)", n, exampleFail.Load())
	}
	// A few dials may fail under FD pressure on tiny CI machines, but the
	// overwhelming majority must get real answers.
	total := int64(clients * reqsPerClient)
	if n := netErrs.Load(); n > total/20 {
		t.Fatalf("%d/%d network errors", n, total)
	}
	if readOK.Load() == 0 {
		t.Fatal("no successful reads")
	}

	// Zero dropped-but-acknowledged records: every acked upload reads
	// back byte-identical.
	var checked int
	ackedIDs.Range(func(k, v any) bool {
		resp, err := httpc.Get(ts.URL + "/api/v1/record/" + k.(string))
		if err != nil {
			t.Fatalf("record %s: %v", k, err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(got) != v.(string) {
			t.Fatalf("acknowledged record %s: status %d body %q want %q", k, resp.StatusCode, got, v)
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("no uploads were acknowledged at all")
	}

	// Bounded RSS proxy: heap growth across the whole campaign stays far
	// below what unbounded body buffering would cost. 4000 requests with
	// 1 MB body caps and a 16-deep queue must not balloon the heap.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const budget = 192 << 20
	if growth > budget {
		t.Fatalf("heap grew %d bytes across load test (budget %d)", growth, budget)
	}
	t.Logf("load: %d clients × %d reqs, %d acked, %d shed(429), %d net errs, heap growth %.1f MB",
		clients, reqsPerClient, checked, shed.Load(), netErrs.Load(), float64(growth)/(1<<20))
}
