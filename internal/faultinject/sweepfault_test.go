package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/sweep"
)

const sweepFaultSpec = `{
	"name": "fault",
	"budget": 20000,
	"workloads": ["perl"],
	"grids": [
		{"family": "btb", "entries": [1024], "ways": [4]},
		{"family": "tagless", "schemes": ["gshare"], "entries": [64, 128, 256, 512], "hist_bits": [9]}
	]
}`

// TestSweepSurvivesPanickingPoint drives the sweep engine's robustness
// contract through the fault plan: a point that panics mid-sweep (fused
// or direct) surfaces as a structured PointError naming the point — the
// process survives, and with a manifest the healthy shards stay
// checkpointed for resume.
func TestSweepSurvivesPanickingPoint(t *testing.T) {
	spec, err := sweep.ParseSpec([]byte(sweepFaultSpec))
	if err != nil {
		t.Fatal(err)
	}
	const victim = "perl/tagless-gshare-e256-h9-pattern"
	plan := &Plan{PanicPoints: map[string]string{victim: "injected sweep fault"}}
	restore := plan.Install()
	defer restore()

	for _, width := range []int{1, 0} {
		_, err := sweep.Run(context.Background(), spec, sweep.Options{Workers: 2, GangWidth: width})
		if err == nil {
			t.Fatalf("gang=%d: sweep survived the fault without reporting it", width)
		}
		var pe *sweep.PointError
		if !errors.As(err, &pe) {
			t.Fatalf("gang=%d: error is not a PointError: %v", width, err)
		}
		if !strings.Contains(err.Error(), "injected sweep fault") || !strings.Contains(err.Error(), victim) {
			t.Errorf("gang=%d: error does not name the fault and point: %v", width, err)
		}
	}
	hits := plan.Triggered()
	if len(hits) < 2 {
		t.Fatalf("fault fired %d times %v, want once per run", len(hits), hits)
	}
	for _, h := range hits {
		if h != "point:"+victim {
			t.Errorf("unexpected fault hit %q", h)
		}
	}

	// The uninstalled plan leaves the sweep healthy.
	restore()
	if _, err := sweep.Run(context.Background(), spec, sweep.Options{Workers: 2}); err != nil {
		t.Fatalf("sweep after restore: %v", err)
	}
}
