package bench

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenExperiments is the slice of the suite the golden file pins: an
// accuracy table, a target-cache accuracy table, a timing figure and a
// no-simulation table, so every kernel family is covered without running
// the whole suite.
var goldenExperiments = []string{"table1", "table4", "figures12-13", "budget"}

// renderGolden runs the golden experiment slice with telemetry enabled at
// the given worker count and returns the full text artifact: the rendered
// experiment tables followed by the per-site telemetry report — exactly
// the byte stream `tcsim -exp ... -sites` prints.
func renderGolden(t *testing.T, parallel int) string {
	t.Helper()
	rec := telemetry.NewRecorder(telemetry.Config{Events: 4})
	p := Params{
		AccuracyBudget: 200_000,
		TimingBudget:   100_000,
		Parallel:       parallel,
		Telemetry:      rec,
	}
	var exps []*Experiment
	for _, id := range goldenExperiments {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	var out bytes.Buffer
	res, err := RunSuite(context.Background(), SuiteOptions{
		Experiments: exps,
		Params:      p,
		Format:      "text",
		Out:         &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("golden run had %d cell failure(s): %v", len(res.Failures), res.Failures[0])
	}
	out.WriteString("== telemetry: per-site indirect-jump report ==\n\n")
	// Run-level metrics (wall time, occupancy) are deliberately absent
	// from WriteSites, so the artifact is reproducible.
	if err := rec.Report(telemetry.RunInfo{}).WriteSites(&out, 10); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestGoldenReport pins the full text report — experiment tables plus the
// -sites telemetry tables — against testdata/golden_report.txt. Run with
// -update to accept intentional output changes; the diff then shows up in
// review instead of silently drifting.
func TestGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run simulates several million instructions")
	}
	got := renderGolden(t, 1)
	path := filepath.Join("testdata", "golden_report.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/bench -run TestGoldenReport -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s (rerun with -update if intentional)\n%s",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenReportParallel asserts the whole artifact — including the
// telemetry site tables, whose collectors are merged from racing workers —
// is byte-identical at any worker count.
func TestGoldenReportParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run simulates several million instructions")
	}
	serial := renderGolden(t, 1)
	parallel := renderGolden(t, 8)
	if serial != parallel {
		t.Errorf("parallel output differs from serial\n%s", firstDiff(parallel, serial))
	}
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	n := min(len(g), len(w))
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first diff at line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: got %d lines, want %d", len(g), len(w))
}
