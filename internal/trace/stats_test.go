package trace

import "testing"

func indJump(pc, target uint64) Record {
	return Record{PC: pc, Target: target, Class: ClassIndJump, Taken: true}
}

func TestStatsCounts(t *testing.T) {
	st := NewStats()
	recs := []Record{
		{Class: ClassOther},
		{Class: ClassCondDirect, Taken: true},
		{Class: ClassUncondDirect, Taken: true},
		{Class: ClassCall, Taken: true},
		{Class: ClassReturn, Taken: true},
		indJump(0x100, 0x200),
		{PC: 0x104, Target: 0x300, Class: ClassIndCall, Taken: true},
	}
	for i := range recs {
		st.Observe(&recs[i])
	}
	if st.Instructions != 7 || st.Branches != 6 {
		t.Fatalf("instructions=%d branches=%d", st.Instructions, st.Branches)
	}
	if st.CondDirect != 1 || st.UncondDirect != 1 || st.Calls != 1 || st.Returns != 1 {
		t.Fatalf("per-class counts wrong: %+v", st)
	}
	if st.IndJumps != 2 || st.StaticIndJumps() != 2 {
		t.Fatalf("indirect counts wrong: dyn=%d static=%d", st.IndJumps, st.StaticIndJumps())
	}
}

func TestStatsTargetHistogram(t *testing.T) {
	st := NewStats()
	// Site A: 1 target, executed 5 times. Site B: 3 targets, executed 6x.
	for i := 0; i < 5; i++ {
		r := indJump(0xa00, 0x1000)
		st.Observe(&r)
	}
	for i := 0; i < 6; i++ {
		r := indJump(0xb00, uint64(0x2000+4*(i%3)))
		st.Observe(&r)
	}
	static := st.TargetHistogram(false)
	if static[1] != 1 || static[3] != 1 {
		t.Fatalf("static histogram wrong: %v", static[:5])
	}
	dyn := st.TargetHistogram(true)
	if dyn[1] != 5 || dyn[3] != 6 {
		t.Fatalf("dynamic histogram wrong: %v", dyn[:5])
	}
	if st.MaxTargets() != 3 {
		t.Fatalf("MaxTargets = %d, want 3", st.MaxTargets())
	}
	poly := st.PolymorphicFraction()
	if want := 6.0 / 11.0; poly < want-1e-9 || poly > want+1e-9 {
		t.Fatalf("PolymorphicFraction = %v, want %v", poly, want)
	}
}

func TestStatsHistogramCap(t *testing.T) {
	st := NewStats()
	for i := 0; i < TargetHistogramCap+10; i++ {
		r := indJump(0xc00, uint64(0x4000+4*i))
		st.Observe(&r)
	}
	h := st.TargetHistogram(false)
	if h[TargetHistogramCap] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", h[TargetHistogramCap])
	}
}

func TestStatsEmpty(t *testing.T) {
	st := NewStats()
	if st.PolymorphicFraction() != 0 {
		t.Fatal("empty stats should report 0 polymorphic fraction")
	}
	if st.MaxTargets() != 0 {
		t.Fatal("empty stats should report 0 max targets")
	}
}
