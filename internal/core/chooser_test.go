package core

import "testing"

func TestLastTargetBasics(t *testing.T) {
	l := NewLastTarget(128, 2)
	if _, ok := l.Predict(0x100, 7); ok {
		t.Fatal("prediction from empty table")
	}
	l.Update(0x100, 7, 0x4000)
	// History must be irrelevant.
	if got, ok := l.Predict(0x100, 999); !ok || got != 0x4000 {
		t.Fatalf("predict = %#x, %v", got, ok)
	}
	l.Update(0x100, 1, 0x5000)
	if got, _ := l.Predict(0x100, 7); got != 0x5000 {
		t.Fatalf("last-target not updated: %#x", got)
	}
	if l.CostBits() != 128*32 {
		t.Fatalf("CostBits = %d", l.CostBits())
	}
	l.Reset()
	if _, ok := l.Predict(0x100, 7); ok {
		t.Fatal("entry survived reset")
	}
}

// alwaysPredictor is a test stub returning a fixed target.
type alwaysPredictor struct {
	target uint64
	ok     bool
}

func (a *alwaysPredictor) Predict(pc, hist uint64) (uint64, bool) { return a.target, a.ok }
func (a *alwaysPredictor) Update(pc, hist, target uint64)         {}
func (a *alwaysPredictor) CostBits() int                          { return 0 }
func (a *alwaysPredictor) Reset()                                 {}

func TestChooserSelectsBetterComponent(t *testing.T) {
	right := &alwaysPredictor{target: 0x4000, ok: true}
	wrong := &alwaysPredictor{target: 0x9999, ok: true}

	// B right: meta should saturate toward B and predict 0x4000.
	c := NewChooser(wrong, right, 64)
	for i := 0; i < 10; i++ {
		c.Update(0x100, 0, 0x4000)
	}
	if got, ok := c.Predict(0x100, 0); !ok || got != 0x4000 {
		t.Fatalf("chooser did not learn B is right: %#x %v", got, ok)
	}

	// A right: meta should swing to A.
	c2 := NewChooser(right, wrong, 64)
	for i := 0; i < 10; i++ {
		c2.Update(0x100, 0, 0x4000)
	}
	if got, ok := c2.Predict(0x100, 0); !ok || got != 0x4000 {
		t.Fatalf("chooser did not learn A is right: %#x %v", got, ok)
	}
}

func TestChooserFallsBackAcrossComponents(t *testing.T) {
	silent := &alwaysPredictor{ok: false}
	speaks := &alwaysPredictor{target: 0x4000, ok: true}
	c := NewChooser(speaks, silent, 64) // meta starts preferring B (silent)
	if got, ok := c.Predict(0x100, 0); !ok || got != 0x4000 {
		t.Fatalf("chooser did not fall back to the speaking component: %#x %v", got, ok)
	}
}

func TestChooserPerJumpIndependence(t *testing.T) {
	a := NewLastTarget(64, 1)
	b := NewTagged(TaggedConfig{Entries: 64, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9})
	c := NewChooser(a, b, 64)
	// Jump X: monomorphic (A perfect after warmup). Jump Y: alternates by
	// history (B perfect, A always wrong).
	for i := 0; i < 300; i++ {
		c.Update(0x100, uint64(i%7), 0x4000)
		h := uint64(i % 2)
		c.Update(0x200, h, 0x5000+h*0x100)
	}
	if got, _ := c.Predict(0x100, 3); got != 0x4000 {
		t.Fatalf("monomorphic jump wrong: %#x", got)
	}
	for h := uint64(0); h < 2; h++ {
		if got, _ := c.Predict(0x200, h); got != 0x5000+h*0x100 {
			t.Fatalf("alternating jump wrong for hist %d: %#x", h, got)
		}
	}
}

func TestChooserMisc(t *testing.T) {
	c := DefaultChooser()
	if c.CostBits() <= 0 {
		t.Fatal("cost must be positive")
	}
	c.Update(0x100, 1, 0x4000)
	c.Reset()
	if _, ok := c.Predict(0x100, 1); ok {
		t.Fatal("state survived reset")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad meta size accepted")
		}
	}()
	NewChooser(&alwaysPredictor{}, &alwaysPredictor{}, 3)
}
