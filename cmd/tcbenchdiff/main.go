// tcbenchdiff compares two sets of benchmark snapshots with real
// statistics: per experiment it reports old and new medians with
// order-statistic confidence intervals, the delta between them, and a
// Mann-Whitney U p-value — and exits non-zero only when a regression is
// statistically significant (p < -alpha) AND past the practical floor
// (-tolerance). One noisy run can no longer fail a build, and a
// consistent 2% slowdown no longer hides under a 10% threshold.
//
// Each side is a comma-separated list of snapshot files. A file is
// either the standard Go benchmark format (`tcsim -benchfmt`, ideally
// with `-count N -warmup 1` so it carries N repetitions) or legacy
// `tcsim -benchjson` output. Every (file, repetition) contributes one
// sample, so all of these work:
//
//	tcbenchdiff old.txt new.txt                    # N-rep benchfmt sets
//	tcbenchdiff OLD1.json,OLD2.json NEW1.json,NEW2.json
//	tcbenchdiff -filter "exp:table4" -group-by exp old.txt new.txt
//
// Verdicts per experiment:
//
//	REGRESSION      significant slowdown >= tolerance: gates (exit 1)
//	improvement     significant speedup
//	~               no significant difference
//	too noisy       a side's CI is too wide to support any call (-max-noise)
//	need >= 2 runs  a side has a single sample: a point, not a distribution
//
// The "too noisy" skip replaces the old point-estimate -min-ms floor:
// instead of exempting experiments that were fast once, it exempts
// experiments whose measured variance genuinely cannot support a claim.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	opts := defaultOptions()
	flag.Float64Var(&opts.alpha, "alpha", opts.alpha, "significance level: regressions with p >= alpha do not gate")
	flag.Float64Var(&opts.tolerance, "tolerance", opts.tolerance, "practical floor: significant slowdowns below this fraction do not gate (0.01 = 1%)")
	flag.Float64Var(&opts.confidence, "confidence", opts.confidence, "confidence level for the per-side median intervals")
	flag.Float64Var(&opts.maxNoise, "max-noise", opts.maxNoise, "CI half-width fraction above which an experiment is too noisy to call")
	flag.StringVar(&opts.filter, "filter", "", `result filter, e.g. "exp:table4" or "workload:cxx !model:event"`)
	flag.StringVar(&opts.groupBy, "group-by", opts.groupBy, `projection for row keys, e.g. "exp" or ".name,workload"`)
	flag.StringVar(&opts.uploadURL, "upload", "", "tcperf server base URL; uploads the NEW snapshots and the diff rows after the comparison")
	flag.StringVar(&opts.commit, "commit", "", "commit id to tag uploads with (required by -upload)")
	flag.StringVar(&opts.experiment, "experiment", "all", "experiment tag for uploads")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tcbenchdiff [flags] OLD[,OLD2,...] NEW[,NEW2,...]\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Files are Go benchmark format (tcsim -benchfmt -count N) or legacy bench JSON.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if opts.uploadURL != "" && opts.commit == "" {
		fmt.Fprintln(os.Stderr, "tcbenchdiff: -upload needs -commit to tag the results")
		os.Exit(2)
	}
	if opts.alpha <= 0 || opts.alpha >= 1 {
		fmt.Fprintln(os.Stderr, "tcbenchdiff: -alpha must be in (0, 1)")
		os.Exit(2)
	}
	if opts.confidence <= 0 || opts.confidence >= 1 {
		fmt.Fprintln(os.Stderr, "tcbenchdiff: -confidence must be in (0, 1)")
		os.Exit(2)
	}
	if opts.tolerance < 0 || opts.maxNoise <= 0 {
		fmt.Fprintln(os.Stderr, "tcbenchdiff: -tolerance must be >= 0 and -max-noise > 0")
		os.Exit(2)
	}
	os.Exit(runDiff(opts, flag.Arg(0), flag.Arg(1), os.Stdout, os.Stderr))
}
