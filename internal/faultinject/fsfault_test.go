package faultinject

// The perfstore survival suite: drive the store through injected
// filesystem faults on a real temp directory and pin down the durability
// contract's two halves:
//
//   - every Put that returned nil (an acknowledged upload) survives a
//     clean-FS reopen byte-identical, whatever faults fired around it;
//   - a Put that returned an error is never half-applied — after reopen
//     its content is either absent or present as the full, byte-identical
//     record (when the bytes happened to reach disk before the fault);
//   - a client-style retry of the failed Put succeeds, and an offline
//     fsck after the reopen reports the store clean.
//
// Operation numbering (Shards:1, PathSubstr "seg-"): creating the first
// segment costs truncate#1 + write#1 (magic) + sync#1; each Put is then
// one write + one sync; a failed append rolls back with the next
// truncate. The plans below aim faults at the second Put ("B").

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"

	"repro/internal/perfstore"
)

func survivalMeta(commit string) perfstore.Meta {
	return perfstore.Meta{Kind: "benchjson", Machine: "fault", Commit: commit, Experiment: "survival"}
}

func TestFSPlanSurvival(t *testing.T) {
	cases := []struct {
		name string
		plan *FSPlan
		// wantErr is the errno/sentinel Put B's failure must wrap.
		wantErr error
		// wantRepair: the reopen must find (and truncate) a torn tail.
		wantRepair bool
	}{
		{
			name:    "short-write-rolled-back",
			plan:    &FSPlan{PathSubstr: "seg-", ShortWriteAt: 3},
			wantErr: io.ErrShortWrite,
		},
		{
			name:    "enospc",
			plan:    &FSPlan{PathSubstr: "seg-", WriteErrAt: 3},
			wantErr: syscall.ENOSPC,
		},
		{
			name:    "fsync-error",
			plan:    &FSPlan{PathSubstr: "seg-", SyncErrAt: 3},
			wantErr: syscall.EIO,
		},
		{
			// fsync fails AND the in-process rollback truncate fails too:
			// the store abandons the segment and rotates. B's bytes did
			// reach the file, so after reopen the unacked record shows up
			// complete — never torn.
			name:    "fsync-error-broken-rollback",
			plan:    &FSPlan{PathSubstr: "seg-", SyncErrAt: 3, TruncateErrAt: 2},
			wantErr: syscall.EIO,
		},
		{
			// A torn append that cannot be rolled back in-process: the
			// half-record stays on disk until the reopen scan repairs it.
			name:       "torn-tail-on-disk",
			plan:       &FSPlan{PathSubstr: "seg-", ShortWriteAt: 3, TruncateErrAt: 2},
			wantErr:    io.ErrShortWrite,
			wantRepair: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := perfstore.Open(dir, perfstore.Options{Shards: 1, FS: tc.plan.Wrap(perfstore.OS())})
			if err != nil {
				t.Fatal(err)
			}

			acked := map[string][]byte{} // id → body, only for Puts that returned nil
			put := func(commit string, body []byte) error {
				m, dup, err := st.Put(survivalMeta(commit), body)
				if err != nil {
					return err
				}
				if dup {
					t.Fatalf("put %s: unexpected duplicate", commit)
				}
				acked[m.ID] = body
				return nil
			}

			bodyA := []byte(`{"table2":{"wall_ms":100.5}}`)
			bodyB := []byte(`{"table2":{"wall_ms":200.5}}`)
			bodyC := []byte(`{"table2":{"wall_ms":300.5}}`)

			if err := put("cA", bodyA); err != nil {
				t.Fatalf("put A: %v", err)
			}
			errB := put("cB", bodyB)
			if errB == nil {
				t.Fatalf("put B survived the %s fault", tc.name)
			}
			if !errors.Is(errB, tc.wantErr) {
				t.Fatalf("put B error %v, want %v", errB, tc.wantErr)
			}
			if len(tc.plan.Triggered()) == 0 {
				t.Fatal("fault plan never triggered")
			}
			// The store must have recovered in-process: a retry of the
			// failed upload succeeds (this is what the HTTP client's retry
			// loop does), and an unrelated upload goes through.
			if err := put("cB", bodyB); err != nil {
				t.Fatalf("retry of put B: %v", err)
			}
			if err := put("cC", bodyC); err != nil {
				t.Fatalf("put C: %v", err)
			}
			st.Close()

			// Reopen on the clean filesystem, as a restarted server would.
			st2, err := perfstore.Open(dir, perfstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			repairs := st2.RepairNotes()
			if tc.wantRepair && len(repairs) == 0 {
				t.Fatal("expected a torn-tail repair on reopen, got none")
			}
			if !tc.wantRepair && len(repairs) != 0 {
				t.Fatalf("unexpected repairs on reopen: %+v", repairs)
			}
			for id, want := range acked {
				_, got, err := st2.Get(id)
				if err != nil {
					t.Fatalf("acknowledged record %s lost: %v", id, err)
				}
				if string(got) != string(want) {
					t.Fatalf("acknowledged record %s: %q want %q", id, got, want)
				}
			}
			st2.Close()

			// Offline verification agrees the store is healthy again.
			rep, err := perfstore.Fsck(dir, perfstore.FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("fsck not clean after recovery: %s", rep.Summary())
			}
		})
	}
}

// TestFSPlanManifestRenameFailure breaks the atomic manifest install: the
// first Open fails cleanly (no half-written manifest left behind), and a
// retry on the healthy filesystem creates the store as if nothing
// happened.
func TestFSPlanManifestRenameFailure(t *testing.T) {
	dir := t.TempDir()
	plan := &FSPlan{PathSubstr: "MANIFEST", RenameErrAt: 1}
	_, err := perfstore.Open(dir, perfstore.Options{Shards: 1, FS: plan.Wrap(perfstore.OS())})
	if err == nil {
		t.Fatal("open survived the rename fault")
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("open error %v, want EIO", err)
	}
	if len(plan.Triggered()) == 0 {
		t.Fatal("rename fault never triggered")
	}

	st, err := perfstore.Open(dir, perfstore.Options{Shards: 1})
	if err != nil {
		t.Fatalf("reopen after failed manifest install: %v", err)
	}
	m, _, err := st.Put(survivalMeta("c1"), []byte(`{"ok":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(m.ID); err != nil {
		t.Fatal(err)
	}
	st.Close()
	rep, err := perfstore.Fsck(dir, perfstore.FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck not clean: %s", rep.Summary())
	}
}

// TestFSPlanAckedUnderRandomFaultStorm hammers a single store while a
// fault fires on every 5th segment write, interleaving failures with
// successes, then verifies the global invariant the same way the e2e
// crash test does: everything acked survives, nothing is mangled.
func TestFSPlanAckedUnderRandomFaultStorm(t *testing.T) {
	dir := t.TempDir()
	// One plan per round: each Open gets a fresh counter so the fault
	// lands mid-stream every time.
	const rounds = 4
	const putsPerRound = 10
	acked := map[string][]byte{}
	var faults int
	for round := 0; round < rounds; round++ {
		plan := &FSPlan{PathSubstr: "seg-", WriteErrAt: 5}
		if round%2 == 1 {
			plan = &FSPlan{PathSubstr: "seg-", ShortWriteAt: 5}
		}
		st, err := perfstore.Open(dir, perfstore.Options{Shards: 2, FS: plan.Wrap(perfstore.OS())})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < putsPerRound; i++ {
			body := []byte(fmt.Sprintf(`{"round":%d,"i":%d}`, round, i))
			m, _, err := st.Put(survivalMeta(fmt.Sprintf("r%dc%d", round, i)), body)
			if err != nil {
				faults++
				continue
			}
			acked[m.ID] = body
		}
		st.Close()
	}
	if faults == 0 {
		t.Fatal("no faults fired across the storm")
	}
	st, err := perfstore.Open(dir, perfstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for id, want := range acked {
		_, got, err := st.Get(id)
		if err != nil {
			t.Fatalf("acknowledged record %s lost after storm: %v", id, err)
		}
		if string(got) != string(want) {
			t.Fatalf("record %s mangled: %q want %q", id, got, want)
		}
	}
	t.Logf("storm: %d acked survived, %d faulted puts", len(acked), faults)
}
