package cpu

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestTimelineCapture(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	res, tl := RunTimeline(w.Open(), 5_000, sim.NewEngine(sim.DefaultConfig()),
		DefaultConfig(), 40)
	if res.Instructions != 5_000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if len(tl.Entries) != 40 {
		t.Fatalf("captured %d entries, want 40", len(tl.Entries))
	}
	prevFetch := int64(-1)
	for i, e := range tl.Entries {
		if e.Fetch < prevFetch {
			t.Fatalf("entry %d: fetch goes backwards (%d < %d)", i, e.Fetch, prevFetch)
		}
		prevFetch = e.Fetch
		if e.Issue < e.Fetch || e.Complete < e.Issue || e.Retire < e.Complete {
			t.Fatalf("entry %d: stage ordering violated: %+v", i, e)
		}
		if e.Issue-e.Fetch < int64(DefaultConfig().FrontEndDepth) {
			t.Fatalf("entry %d: issue before the front end could deliver it", i)
		}
	}
	out := tl.String()
	for _, want := range []string{"F", "R", "instruction"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineShowsMispredictPenalty(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	// With a cold BTB the first indirect dispatch mispredicts; its
	// successor's fetch must be pushed past the branch's completion.
	_, tl := RunTimeline(w.Open(), 2_000, sim.NewEngine(sim.DefaultConfig()),
		DefaultConfig(), 500)
	found := false
	for i := 0; i+1 < len(tl.Entries); i++ {
		e := tl.Entries[i]
		if e.Mispredict {
			next := tl.Entries[i+1]
			if next.Fetch <= e.Complete {
				t.Fatalf("instruction after mispredict fetched at %d, before resolution at %d",
					next.Fetch, e.Complete)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no misprediction in the first 500 instructions of a cold run")
	}
	if !strings.Contains(tl.String(), "!") {
		t.Error("diagram does not flag the misprediction")
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := &Timeline{}
	if !strings.Contains(tl.String(), "empty") {
		t.Error("empty timeline should say so")
	}
}
