package workload

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestReplayCapturesOncePerKey hammers one (workload, budget) key from many
// goroutines and asserts the VM ran exactly once and every caller saw the
// same capture.
func TestReplayCapturesOncePerKey(t *testing.T) {
	ResetMemo()
	w, err := ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 20_000
	before := CaptureCount()
	reps := make([]trace.BlockSource, 16)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i] = w.Replay(budget)
		}()
	}
	wg.Wait()
	if got := CaptureCount() - before; got != 1 {
		t.Fatalf("capture count = %d, want 1", got)
	}
	for i, rep := range reps {
		if rep != reps[0] {
			t.Fatalf("goroutine %d got a different Replay pointer", i)
		}
	}
	if reps[0].Len() != budget {
		t.Fatalf("captured %d records, want %d", reps[0].Len(), budget)
	}
	// A different budget is a different key: one more capture.
	w.Replay(budget / 2)
	if got := CaptureCount() - before; got != 2 {
		t.Fatalf("capture count after second key = %d, want 2", got)
	}
	keys, bytes := MemoStats()
	if keys != 2 || bytes <= 0 {
		t.Fatalf("MemoStats = %d keys, %d bytes; want 2 keys and nonzero bytes", keys, bytes)
	}
}

// TestReplayMatchesLiveVM asserts the memoized capture is record-for-record
// identical to a fresh VM pass — the invariant that makes replay-backed
// experiment cells byte-identical to VM-backed ones.
func TestReplayMatchesLiveVM(t *testing.T) {
	for _, name := range []string{"perl", "gcc", "compress"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const budget = 10_000
		live := trace.Collect(trace.NewLimit(w.Open(), budget))
		replayed := trace.Collect(w.Replay(budget).Open())
		if len(live) != len(replayed) {
			t.Fatalf("%s: live %d records, replay %d", name, len(live), len(replayed))
		}
		for i := range live {
			if live[i] != replayed[i] {
				t.Fatalf("%s: record %d: live %+v, replay %+v", name, i, live[i], replayed[i])
			}
		}
	}
}

// TestConcurrentProgramBuild races Program/Open/Replay across all
// workloads; under -race this is the audit that build-once program state
// (including synth.go's post-build jump-table patching) is safely
// published.
func TestConcurrentProgramBuild(t *testing.T) {
	ws := append(All(), Extras()...)
	var wg sync.WaitGroup
	for _, w := range ws {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if p := w.Program(); p == nil {
					t.Error("nil program")
				}
				var r trace.Record
				src := trace.NewLimit(w.Open(), 2_000)
				for src.Next(&r) {
				}
				if rep := w.Replay(1_000); rep.Len() != 1_000 {
					t.Errorf("%s: replay len %d", w.Name, rep.Len())
				}
			}()
		}
	}
	wg.Wait()
}

// TestReplayPrefixShares pins the static prefix fold: requests below the
// shared budget are served from the single shared capture, requests at or
// above it (or with a capture transform installed) keep their own key.
func TestReplayPrefixShares(t *testing.T) {
	ResetMemo()
	t.Cleanup(ResetMemo)
	w, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	base := CaptureCount()
	shared := w.ReplayPrefix(30_000, 50_000)
	if shared.Len() != 50_000 {
		t.Fatalf("shared capture Len = %d, want 50000", shared.Len())
	}
	if got := w.ReplayPrefix(50_000, 50_000); got != shared {
		t.Fatal("full-budget request did not reuse the shared capture")
	}
	if got := w.ReplayPrefix(10_000, 50_000); got != shared {
		t.Fatal("smaller request did not reuse the shared capture")
	}
	if got := CaptureCount() - base; got != 1 {
		t.Fatalf("capture count = %d, want 1", got)
	}

	// The prefix really is the prefix: simulating budget records over the
	// shared capture equals a dedicated budget-sized capture.
	dedicated := trace.CaptureSized(trace.NewLimit(w.Open(), 30_000), 30_000)
	sharedRecs := trace.Collect(trace.NewLimit(shared.Open(), 30_000))
	dedRecs := trace.Collect(dedicated.Open())
	if len(sharedRecs) != len(dedRecs) {
		t.Fatalf("prefix lengths differ: %d vs %d", len(sharedRecs), len(dedRecs))
	}
	for i := range dedRecs {
		if sharedRecs[i] != dedRecs[i] {
			t.Fatalf("record %d differs between shared and dedicated capture", i)
		}
	}

	// Fault injection must see exact-budget captures.
	TestCaptureTransform = func(name string, budget int64, rep *trace.Replay) *trace.Replay { return rep }
	t.Cleanup(func() { TestCaptureTransform = nil })
	ResetMemo()
	if got := w.ReplayPrefix(30_000, 50_000); got.Len() != 30_000 {
		t.Fatalf("with transform installed, capture Len = %d, want 30000", got.Len())
	}
}

// TestSpillCapture pins the out-of-core path: above the threshold a
// capture streams to a trace-store file and replays from it, below it the
// in-memory path is untouched.
func TestSpillCapture(t *testing.T) {
	ResetMemo()
	t.Cleanup(func() {
		ConfigureSpill(SpillConfig{})
		ResetMemo()
	})
	w, err := ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ConfigureSpill(SpillConfig{Dir: dir, Threshold: 40_000, CacheBytes: 1 << 20, Compress: true})

	sc0, _ := SpillStats()
	small := w.Replay(20_000)
	if _, ok := small.(*trace.Replay); !ok {
		t.Fatalf("below-threshold capture is %T, want *trace.Replay", small)
	}
	big := w.Replay(60_000)
	store, ok := big.(*trace.Store)
	if !ok {
		t.Fatalf("above-threshold capture is %T, want *trace.Store", big)
	}
	if store.Len() != 60_000 {
		t.Fatalf("spilled capture Len = %d, want 60000", store.Len())
	}
	sc1, disk := SpillStats()
	if sc1-sc0 != 1 || disk <= 0 {
		t.Fatalf("SpillStats = %d captures, %d bytes; want 1 capture, positive size", sc1-sc0, disk)
	}
	if keys, bytes := MemoStats(); keys != 2 || bytes <= 0 {
		t.Fatalf("MemoStats = %d keys, %d bytes", keys, bytes)
	}

	// The spilled stream equals the in-memory capture record for record.
	mem := trace.CaptureSized(trace.NewLimit(w.Open(), 60_000), 60_000)
	got := trace.Collect(big.Open())
	want := trace.Collect(mem.Open())
	if len(got) != len(want) {
		t.Fatalf("spilled capture has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs between spilled and in-memory capture", i)
		}
	}
}
