package perfstore

// The store never touches the os package directly: every filesystem
// operation goes through a VFS so the fault-injection harness
// (internal/faultinject) can interpose short writes, ENOSPC, fsync
// failures, and rename failures on the exact syscalls the durability
// protocol depends on. Production code always uses OS(), which is a thin
// pass-through to the os package.

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the store writes and reads through.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file to stable storage; an upload is acknowledged
	// only after its record's Sync returns nil.
	Sync() error
	// Truncate discards bytes past size; the store uses it to cut a torn
	// tail back to the last durable record.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
	Stat() (fs.FileInfo, error)
}

// VFS is the filesystem surface the store depends on. The zero store uses
// OS(); tests swap in a fault-injecting implementation.
type VFS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens for writing/appending with the given flags.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// Open opens for reading.
	Open(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so freshly created or renamed entries
	// survive a crash.
	SyncDir(path string) error
}

// osFS is the production VFS: direct pass-through to the os package.
type osFS struct{}

// OS returns the production VFS backed by the os package.
func OS() VFS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) {
	return os.ReadDir(path)
}
func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
