package sim

import (
	"context"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fused gang replay: one pass over a decoded block stream drives K
// predictor configurations in lockstep. The sweep engine's grids multiply
// hundreds of points over the same handful of captures, and before this
// kernel every point re-traversed its capture end to end; here the
// traversal — and everything in the front end that evolves identically
// for every member — happens once per gang instead of once per point.
//
// What makes fusion sound: the baseline front-end structures (BTB, return
// address stack, direction predictor) and the branch-history registers
// train purely on the resolved record stream, never on prediction
// outcomes, so two runs differing only in their target cache hold
// bit-identical front-end state at every instruction. A gang therefore
// shares
//
//   - one block iteration: record fields (pc/target/class byte) are read
//     once per block for the whole gang;
//   - one front end: every member must carry the same BTB geometry, RAS
//     depth and direction-predictor config (the sweep's target-cache
//     families all use the paper's baseline front end, so this holds by
//     construction); probe, direction prediction and training run once;
//   - per-scheme history registers: members naming the same HistShare key
//     provably construct identical providers, so the register is computed
//     and trained once and its Value is read by every member using that
//     scheme.
//
// Per member there remains only the target cache itself — flat tables
// allocated per member, with the member bookkeeping (history index,
// divergence counters) laid out contiguously in one slice — touched only
// on records whose prediction or update actually consults it: indirect
// jumps and calls, plus the rare record whose stale BTB entry
// misclassifies it as indirect. Everything else is accumulated once in
// shared counters and added into every member's result at the end, so the
// per-record marginal cost of a gang member is zero on the ~95% of
// branches that never touch a target cache.
//
// Equivalence contract: for every member, the returned AccuracyResult is
// struct-identical to sim.RunAccuracy over the same factory, budget and
// config. TestGangMatchesSolo and the sweep package's differential
// harness pin this at gang widths 1, 4 and K across worker counts.

// GangPoint is one member of a fused gang: a full simulation config plus
// an optional history-sharing key.
type GangPoint struct {
	Config Config
	// HistShare, when non-empty, identifies the member's history
	// configuration: members with equal keys are guaranteed by the caller
	// to construct identical history providers (same kind, same depth,
	// same path parameters) and share a single register. An empty key
	// gives the member a private provider, which is always safe.
	HistShare string
}

// gangMember is the per-member state of a fused run. The slice of these
// is the gang's only per-member allocation besides the target caches
// themselves; counters here record only the records whose outcome
// diverged per member (their prediction consulted the member's target
// cache) — the shared skeleton counters live once in the kernel.
type gangMember struct {
	hist int32 // index into the shared provider table

	cond, direct, returns, indirect, overall stats.Counter
	tcCovered                                int64
}

// RunAccuracyGang is RunAccuracyGangCtx under context.Background.
func RunAccuracyGang(factory trace.Factory, budget int64, pts []GangPoint) ([]AccuracyResult, bool) {
	return RunAccuracyGangCtx(context.Background(), factory, budget, pts)
}

// RunAccuracyGangCtx simulates every member of pts over a single pass of
// factory's decoded block stream and returns one AccuracyResult per
// member, in order, each struct-identical to what RunAccuracyCtx would
// report for that member alone.
//
// The second return is false — and no simulation runs — when the gang
// cannot be fused: the factory exposes no decoded BlockSource, a member
// lacks a target cache (the BTB-only family sweeps its front-end geometry,
// which is exactly the state fusion shares), a member carries a telemetry
// collector (collectors are single-run), or the members disagree on
// front-end configuration. Callers fall back to per-point runs.
func RunAccuracyGangCtx(ctx context.Context, factory trace.Factory, budget int64, pts []GangPoint) ([]AccuracyResult, bool) {
	if len(pts) == 0 {
		return nil, false
	}
	bs, ok := blocksFor(factory)
	if !ok {
		return nil, false
	}
	front := pts[0].Config
	for _, pt := range pts {
		cfg := pt.Config
		if cfg.NewTargetCache == nil || cfg.NewHistory == nil || cfg.Telemetry != nil {
			return nil, false
		}
		if cfg.BTB != front.BTB || cfg.RASDepth != front.RASDepth || cfg.Dir != front.Dir {
			return nil, false
		}
	}

	// One shared front end, built from the common config with the
	// per-member structures stripped.
	front.NewTargetCache, front.NewHistory, front.Telemetry = nil, nil, nil
	engine := NewEngine(front)

	members := make([]gangMember, len(pts))
	tcs := make([]core.TargetCache, len(pts))
	var providers []history.Provider
	shared := make(map[string]int32, len(pts))
	for i, pt := range pts {
		tcs[i] = pt.Config.NewTargetCache()
		if key := pt.HistShare; key != "" {
			if idx, ok := shared[key]; ok {
				members[i].hist = idx
				continue
			}
			shared[key] = int32(len(providers))
		}
		members[i].hist = int32(len(providers))
		providers = append(providers, pt.Config.NewHistory())
	}

	// Monomorphize the kernel over the members' concrete target-cache type
	// when the gang is family-homogeneous. Grid expansion emits points
	// family by family, so shards — and the gangs cut from them — mix
	// families only at grid boundaries; the homogeneous instantiations make
	// the per-member Predict/Update calls direct (and inlinable) exactly
	// like the solo kernel's, and the rare mixed gang takes the
	// interface-typed instantiation of the same kernel.
	switch {
	case allOf[*core.Tagless](tcs):
		return dispatchGangHist(ctx, bs, budget, engine, members, cast[*core.Tagless](tcs), providers), true
	case allOf[*core.Tagged](tcs):
		return dispatchGangHist(ctx, bs, budget, engine, members, cast[*core.Tagged](tcs), providers), true
	case allOf[*core.Cascaded](tcs):
		return dispatchGangHist(ctx, bs, budget, engine, members, cast[*core.Cascaded](tcs), providers), true
	case allOf[*core.ITTAGE](tcs):
		return dispatchGangHist(ctx, bs, budget, engine, members, cast[*core.ITTAGE](tcs), providers), true
	}
	return dispatchGangHist(ctx, bs, budget, engine, members, tcs, providers), true
}

// dispatchGangHist monomorphizes over the providers' concrete type for an
// already-resolved target-cache type. The sweep groups gangs by history
// scheme, so gangs are history-homogeneous in practice; heterogeneous
// gangs take the interface-typed instantiation.
func dispatchGangHist[TC targetCache](
	ctx context.Context, bs trace.BlockSource, budget int64,
	engine *Engine, members []gangMember, tcs []TC, providers []history.Provider,
) []AccuracyResult {
	if hs, ok := homogeneous[history.PatternProvider](providers); ok {
		return gangKernel(ctx, bs, budget, engine, members, tcs, hs)
	}
	if hs, ok := homogeneous[*history.Path](providers); ok {
		return gangKernel(ctx, bs, budget, engine, members, tcs, hs)
	}
	return gangKernel(ctx, bs, budget, engine, members, tcs, providers)
}

// homogeneous converts the provider slice to its concrete element type
// when every element has it.
func homogeneous[H historySource](providers []history.Provider) ([]H, bool) {
	hs := make([]H, len(providers))
	for i, p := range providers {
		h, ok := p.(H)
		if !ok {
			return nil, false
		}
		hs[i] = h
	}
	return hs, true
}

// allOf reports whether every target cache has concrete type TC.
func allOf[TC targetCache](tcs []core.TargetCache) bool {
	for _, tc := range tcs {
		if _, ok := tc.(TC); !ok {
			return false
		}
	}
	return true
}

// cast converts the target-cache slice to its concrete element type;
// callers check allOf first.
func cast[TC targetCache](tcs []core.TargetCache) []TC {
	out := make([]TC, len(tcs))
	for i, tc := range tcs {
		out[i] = tc.(TC)
	}
	return out
}

// gangKernel is the fused accuracy loop. It mirrors accuracyKernel record
// for record — same context-poll positions, same lean materialization,
// same clean-prefix error contract — with the per-branch work split into
// a shared skeleton (run once) and a per-member tail (run only when a
// member's target cache is consulted).
func gangKernel[TC targetCache, H historySource](
	ctx context.Context, bs trace.BlockSource, budget int64,
	engine *Engine, members []gangMember, tcs []TC, hists []H,
) []AccuracyResult {
	var res AccuracyResult // shared skeleton counters
	// sharedInd counts indirect-class records whose prediction never
	// consulted a target cache (BTB miss, not-taken direction, or a stale
	// non-indirect BTB class): their outcome is identical for every
	// member.
	var sharedInd stats.Counter
	btbT, ras, dir := engine.BTB, engine.RAS, engine.Dir
	phVals := make([]uint64, len(hists))

	limit := budget
	if limit < 0 {
		limit = 0
	}
	effEnd := limit
	if clean := bs.CleanLen(); clean < effEnd {
		effEnd = clean
	}
	var insns int64
	var r trace.Record

	// finish assembles the per-member results: the shared skeleton plus
	// each member's divergence counters, every member reporting the same
	// instruction count and error a solo run stopped at this record would.
	finish := func(err error) []AccuracyResult {
		out := make([]AccuracyResult, len(members))
		for mi := range members {
			m := &members[mi]
			mr := res
			mr.Instructions = insns
			mr.Conditional.Add(m.cond)
			mr.Direct.Add(m.direct)
			mr.Returns.Add(m.returns)
			mr.Indirect = sharedInd
			mr.Indirect.Add(m.indirect)
			mr.Overall.Add(m.overall)
			mr.TCCovered = m.tcCovered
			mr.Err = err
			out[mi] = mr
		}
		return out
	}

	for bi := 0; insns < effEnd; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			return finish(err)
		}
		base := int64(bi) * trace.BlockLen
		meta := blk.Meta
		m := len(meta)
		if rem := effEnd - base; int64(m) > rem {
			m = int(rem)
		}
		meta = meta[:m]
		pcs := blk.PC[:m]
		tgts := blk.Target[:m]
		addrs := blk.Addr[:m]
		for i := 0; i < m; i++ {
			insns = base + int64(i) + 1
			if insns&ctxCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return finish(err)
				}
			}
			mb := meta[i]
			cls := trace.Class(mb & trace.MetaClassMask)
			if cls == trace.ClassOther {
				continue
			}
			res.Branches++
			r.PC = pcs[i]
			r.Target = tgts[i]
			r.Addr = addrs[i]
			r.Class = cls
			r.Op = trace.OpClass(mb >> trace.MetaOpShift & trace.MetaOpMask)
			r.Taken = mb&trace.MetaTaken != 0

			// ---- shared fetch skeleton: BTB probe and direction ----
			entry, bref, hit := btbT.Probe(r.PC)
			var pTaken bool
			if hit {
				if entry.Class == trace.ClassCondDirect {
					pTaken = dir.Predict(r.PC)
				} else {
					pTaken = true
				}
			}
			indirectCls := cls == trace.ClassIndJump || cls == trace.ClassIndCall
			// perMember: the prediction consults the target cache, so the
			// outcome can differ per member. This keys on the BTB's
			// *detected* class, exactly like the solo kernels.
			perMember := hit && pTaken &&
				(entry.Class == trace.ClassIndJump || entry.Class == trace.ClassIndCall)

			if perMember || indirectCls {
				// Value is pure and providers are not trained until the
				// resolve phase below, so one read per scheme serves every
				// member — the same value a solo run would see.
				for pi := range hists {
					phVals[pi] = hists[pi].Value(r.PC)
				}
			}

			if perMember {
				for mi := range members {
					mem := &members[mi]
					pTarget, pFromTC := entry.Target, false
					if tgt, ok := tcs[mi].Predict(r.PC, phVals[mem.hist]); ok {
						pTarget, pFromTC = tgt, true
					}
					correct := pTaken == r.Taken && (!r.Taken || pTarget == r.Target)
					switch cls {
					case trace.ClassCondDirect:
						mem.cond.Record(correct)
					case trace.ClassUncondDirect, trace.ClassCall:
						mem.direct.Record(correct)
					case trace.ClassReturn:
						mem.returns.Record(correct)
					case trace.ClassIndJump, trace.ClassIndCall:
						mem.indirect.Record(correct)
						if pFromTC {
							mem.tcCovered++
						}
					}
					mem.overall.Record(correct)
				}
			} else {
				// No target cache consulted: the prediction — and its
				// correctness — is identical for every member. Count once.
				var pTarget uint64
				var pHasTarget bool
				if hit && pTaken {
					switch entry.Class {
					case trace.ClassReturn:
						if addr, ok := ras.Peek(); ok {
							pTarget, pHasTarget = addr, true
						}
					default:
						pTarget, pHasTarget = entry.Target, true
					}
				}
				correct := pTaken == r.Taken && (!r.Taken || (pHasTarget && pTarget == r.Target))
				switch cls {
				case trace.ClassCondDirect:
					res.Conditional.Record(correct)
				case trace.ClassUncondDirect, trace.ClassCall:
					res.Direct.Record(correct)
				case trace.ClassReturn:
					res.Returns.Record(correct)
				case trace.ClassIndJump, trace.ClassIndCall:
					sharedInd.Record(correct)
				}
				res.Overall.Record(correct)
			}

			// ---- resolve: per-member target-cache training, then the
			// shared structures, in the solo kernels' exact order ----
			if indirectCls {
				for mi := range members {
					tcs[mi].Update(r.PC, phVals[members[mi].hist], r.Target)
				}
			}
			if cls == trace.ClassCall || cls == trace.ClassIndCall {
				ras.Push(r.FallThrough())
			}
			if cls == trace.ClassReturn {
				ras.Pop()
			}
			if cls == trace.ClassCondDirect {
				dir.Update(r.PC, r.Taken)
			}
			for pi := range hists {
				hists[pi].Observe(&r)
			}
			if hit {
				btbT.UpdateHit(bref, &r)
			} else {
				btbT.Update(&r)
			}
		}
	}
	var tailErr error
	// Same clean-prefix contract as the solo kernels: damage past the
	// budget is never surfaced.
	if limit > bs.CleanLen() {
		tailErr = bs.TailErr()
	}
	return finish(tailErr)
}
