package telemetry

import "time"

// SweepInfo carries the run-level facts of a design-space sweep that only
// the driver knows (the engine cannot see the process clock or the memo).
type SweepInfo struct {
	Spec        string
	Fingerprint string
	Workers     int
	Wall        time.Duration
	// Points is the expanded point count; FrontierPoints is how many sit
	// on a Pareto frontier; SkippedInvalid counts grid combinations the
	// expansion rejected.
	Points, FrontierPoints, SkippedInvalid int
	// Shards/ResumedShards describe checkpointing: total checkpoint
	// shards, and how many were served from a resume manifest instead of
	// simulated.
	Shards, ResumedShards int
	// Instructions is the total simulated instruction count.
	Instructions int64
	// MemoCaptures and MemoHits describe the trace memo: captures
	// executed the VM, hits reused a capture.
	MemoCaptures, MemoHits int64
	// GangWidth is the configured fusion width (0 = auto, 1 = off).
	GangWidth int
	// FusedGangs/FusedPoints count fused trace passes and the points
	// simulated inside them; DirectPoints ran one pass each; GangFallbacks
	// counts gangs the fused kernel refused and re-ran per point.
	FusedGangs, FusedPoints, DirectPoints, GangFallbacks int64
	// Interrupted marks a sweep cancelled before completing; the manifest
	// holds the shards that finished.
	Interrupted bool
}

// SweepMetrics is the exported run-metrics document of one sweep: how much
// design space was covered, how the work was scheduled, and how well the
// shared capture store amortized trace decoding across points.
type SweepMetrics struct {
	Spec           string `json:"spec"`
	Fingerprint    string `json:"fingerprint"`
	Points         int    `json:"points"`
	FrontierPoints int    `json:"frontier_points"`
	SkippedInvalid int    `json:"skipped_invalid,omitempty"`
	Shards         int    `json:"shards"`
	ResumedShards  int    `json:"resumed_shards,omitempty"`

	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`

	Instructions int64 `json:"instructions_simulated"`
	MemoCaptures int64 `json:"memo_captures"`
	MemoHits     int64 `json:"memo_hits"`
	// CaptureAmortization is points per capture: how many simulations
	// each decoded trace served. The sweep engine's whole point is to
	// keep this near points/workloads.
	CaptureAmortization float64 `json:"capture_amortization,omitempty"`

	// Gang fusion counters: how the run's points were scheduled onto
	// trace passes. GangWidth is the configured width (0 = auto, 1 =
	// fusion off). FusedGangs passes updated FusedPoints points in
	// lockstep; DirectPoints took one pass each; GangFallbacks counts
	// gangs the fused kernel refused to fuse (re-run per point — always 0
	// unless a fallback condition appears). PassesAvoided is the headline:
	// trace passes a per-point sweep would have made that fusion did not.
	GangWidth     int   `json:"gang_width,omitempty"`
	FusedGangs    int64 `json:"fused_gangs,omitempty"`
	FusedPoints   int64 `json:"fused_points,omitempty"`
	DirectPoints  int64 `json:"direct_points,omitempty"`
	GangFallbacks int64 `json:"gang_fallbacks,omitempty"`
	PassesAvoided int64 `json:"passes_avoided,omitempty"`

	Interrupted bool `json:"interrupted,omitempty"`
}

// NewSweepMetrics derives the exported document from the run facts.
func NewSweepMetrics(info SweepInfo) SweepMetrics {
	m := SweepMetrics{
		Spec:           info.Spec,
		Fingerprint:    info.Fingerprint,
		Points:         info.Points,
		FrontierPoints: info.FrontierPoints,
		SkippedInvalid: info.SkippedInvalid,
		Shards:         info.Shards,
		ResumedShards:  info.ResumedShards,
		Workers:        info.Workers,
		WallMS:         float64(info.Wall.Microseconds()) / 1e3,
		Instructions:   info.Instructions,
		MemoCaptures:   info.MemoCaptures,
		MemoHits:       info.MemoHits,
		GangWidth:      info.GangWidth,
		FusedGangs:     info.FusedGangs,
		FusedPoints:    info.FusedPoints,
		DirectPoints:   info.DirectPoints,
		GangFallbacks:  info.GangFallbacks,
		PassesAvoided:  info.FusedPoints - info.FusedGangs,
		Interrupted:    info.Interrupted,
	}
	if info.MemoCaptures > 0 {
		m.CaptureAmortization = float64(info.Points) / float64(info.MemoCaptures)
	}
	return m
}
