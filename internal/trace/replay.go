package trace

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Trace memoization: the experiment suite replays each workload's
// deterministic trace many times (once per predictor configuration), and
// re-running the VM for every pass dominates wall-clock. A Recorder
// captures one pass into a compact in-memory buffer — the v2 codec's
// delta/varint record layout, without the file header — and the resulting
// Replay hands out any number of independent, allocation-free Cursors over
// it. The buffer is immutable once Finish returns, so concurrent cursors
// are race-free by construction.

// Recorder encodes records into an in-memory buffer in the v2 record
// layout. Use Capture for the common drain-a-source case.
type Recorder struct {
	buf      []byte
	n        int64
	prevPC   uint64
	prevAddr uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{buf: make([]byte, 0, 1<<16)} }

// Record appends one record.
func (rec *Recorder) Record(r *Record) {
	var flags byte
	if r.Taken {
		flags |= 1
	}
	hasTarget := r.Target != 0
	if hasTarget {
		flags |= 2
	}
	hasAddr := r.Addr != 0
	if hasAddr {
		flags |= 4
	}
	hasRegs := r.Dst != 0 || r.Src1 != 0 || r.Src2 != 0
	if hasRegs {
		flags |= 8
	}
	b := append(rec.buf, flags, byte(r.Class)|byte(r.Op)<<4)
	b = binary.AppendUvarint(b, zigzag(int64(r.PC-rec.prevPC)))
	if hasTarget {
		b = binary.AppendUvarint(b, zigzag(int64(r.Target-r.PC)))
	}
	if hasAddr {
		b = binary.AppendUvarint(b, zigzag(int64(r.Addr-rec.prevAddr)))
		rec.prevAddr = r.Addr
	}
	if hasRegs {
		b = append(b, r.Dst, r.Src1, r.Src2)
	}
	rec.prevPC = r.PC
	rec.buf = b
	rec.n++
}

// Finish seals the recorder into an immutable Replay. The recorder must
// not be used afterwards.
func (rec *Recorder) Finish() *Replay {
	rep := &Replay{buf: rec.buf, n: rec.n}
	rec.buf = nil
	return rep
}

// Capture drains src into a new Replay.
func Capture(src Source) *Replay {
	return CaptureSized(src, 0)
}

// CaptureSized is Capture with a record-count hint, kept for API
// compatibility: the arena-backed block builder sizes itself, so the hint
// is no longer consulted. Any n (including 0) is correct.
//
// Capture builds only the decoded Blocks form — the representation every
// simulation kernel consumes. The compact v2 buffer is re-encoded lazily
// on first Bytes/Size/Cursor use (encoding is deterministic, so the bytes
// are identical to recording the source directly; replay_test pins this),
// which removes the varint-encode pass from the capture hot path entirely.
func CaptureSized(src Source, n int64) *Replay {
	var bb blockBuilder
	var r Record
	for src.Next(&r) {
		bb.add(&r)
	}
	rep := &Replay{fromBlocks: true}
	rep.blocks = bb.finish()
	rep.n = rep.blocks.Len()
	rep.blocksOnce.Do(func() {})
	return rep
}

// Replay is an immutable captured trace. It implements Factory: each Open
// returns an independent cursor positioned at the first record, so one
// capture serves any number of concurrent simulation passes. Blocks
// returns the capture decoded once into batched structure-of-arrays form
// for the hot simulation kernels; the decode is lazy and cached, shared by
// every concurrent caller. A capture-born Replay holds the batched form
// from the start and materializes the compact buffer lazily instead.
type Replay struct {
	buf []byte
	n   int64

	// fromBlocks marks a capture-born Replay: blocks is authoritative and
	// immutable from construction, buf is built on demand under bufOnce.
	// A buffer-born Replay (NewReplayBytes, Recorder.Finish) is the
	// inverse: buf authoritative, blocks decoded under blocksOnce.
	fromBlocks bool
	bufOnce    sync.Once

	blocksOnce sync.Once
	blocks     *Blocks
}

// Len returns the number of records captured.
func (rep *Replay) Len() int64 { return rep.n }

// ensureBuf materializes the compact v2 buffer of a capture-born Replay.
// The Recorder derives every flag bit from Record field values, and the
// batched columns round-trip those values exactly, so re-encoding from
// blocks yields byte-for-byte the buffer a capture-time Recorder would
// have produced.
func (rep *Replay) ensureBuf() {
	rep.bufOnce.Do(func() {
		if !rep.fromBlocks {
			return
		}
		rec := NewRecorder()
		// ~8 bytes covers the common record shape (2-byte header, short
		// pc delta, register bytes) with a little slack.
		if hint := rep.n * 8; hint > int64(cap(rec.buf)) && hint <= 1<<31 {
			rec.buf = make([]byte, 0, hint)
		}
		var r Record
		for bi := 0; bi < rep.blocks.NumBlocks(); bi++ {
			blk := rep.blocks.Block(bi)
			for i := 0; i < blk.Len(); i++ {
				blk.Record(i, &r)
				rec.Record(&r)
			}
		}
		rep.buf = rec.buf
	})
}

// Size returns the encoded buffer size in bytes, encoding a capture-born
// Replay on first call.
func (rep *Replay) Size() int {
	rep.ensureBuf()
	return len(rep.buf)
}

// MemBytes returns the resident size of the representation the Replay
// actually holds: decoded columns for a capture-born Replay, the encoded
// buffer otherwise. Unlike Size it never forces an encode or decode.
func (rep *Replay) MemBytes() int64 {
	if rep.fromBlocks {
		return rep.blocks.ByteSize()
	}
	return int64(len(rep.buf))
}

// Bytes returns a copy of the encoded record buffer. It exists so tests
// and the fault-injection harness can build deliberately damaged captures
// with NewReplayBytes; the Replay itself stays immutable.
func (rep *Replay) Bytes() []byte {
	rep.ensureBuf()
	return append([]byte(nil), rep.buf...)
}

// NewReplayBytes reconstructs a Replay from an encoded record buffer (the
// v2 record layout, no header) and the record count the buffer claims to
// hold. Cursors over the result report ErrCorrupt instead of panicking
// when the bytes do not decode to exactly n records.
func NewReplayBytes(buf []byte, n int64) *Replay { return &Replay{buf: buf, n: n} }

// Open implements Factory, returning a fresh cursor over the capture: a
// BatchCursor straight over the batched columns for a capture-born Replay
// (no encoded buffer needed), a decoding Cursor otherwise. Both yield the
// identical record stream.
func (rep *Replay) Open() Source {
	if rep.fromBlocks {
		return &BatchCursor{bs: rep.blocks}
	}
	return &Cursor{rep: rep}
}

// NumBlocks implements BlockSource over the decoded batches.
func (rep *Replay) NumBlocks() int { return rep.Blocks().NumBlocks() }

// BlockAt implements BlockSource; in-memory batches never fail.
func (rep *Replay) BlockAt(i int) (*Block, error) { return rep.Blocks().Block(i), nil }

// CleanLen implements BlockSource: the cleanly decodable record count,
// smaller than Len when the underlying buffer is damaged.
func (rep *Replay) CleanLen() int64 { return rep.Blocks().Len() }

// TailErr implements BlockSource: the decode error after the clean
// prefix, nil for an undamaged capture.
func (rep *Replay) TailErr() error { return rep.Blocks().Err() }

var (
	_ Factory     = (*Replay)(nil)
	_ BlockSource = (*Replay)(nil)
)

// Cursor is a read-only decoding position within a Replay. Next performs
// no allocation; distinct cursors over one Replay may be advanced from
// different goroutines concurrently.
//
// A damaged buffer (bit flips, truncation) never panics: Next returns
// false and Err reports an ErrCorrupt with the failing byte offset. A
// cursor also fails if the buffer ends before the Replay's full record
// count has been decoded, so truncated captures are always detected.
type Cursor struct {
	rep      *Replay
	pos      int
	decoded  int64
	prevPC   uint64
	prevAddr uint64
	err      error
}

// Reset rewinds the cursor to the start of the capture and clears any
// decode error.
func (c *Cursor) Reset() { *c = Cursor{rep: c.rep} }

// Err returns the first decode error encountered, or nil on clean end.
func (c *Cursor) Err() error { return c.err }

var _ ErrSource = (*Cursor)(nil)

func (c *Cursor) fail(offset int, format string, args ...any) bool {
	c.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), offset)
	return false
}

func (c *Cursor) uvarint(buf []byte) (uint64, bool) {
	v, n := binary.Uvarint(buf[c.pos:])
	if n <= 0 {
		return 0, false
	}
	c.pos += n
	return v, true
}

// Next implements Source.
func (c *Cursor) Next(r *Record) bool {
	if c.err != nil {
		return false
	}
	buf := c.rep.buf
	if c.pos >= len(buf) {
		if c.decoded != c.rep.n {
			return c.fail(c.pos, "truncated replay (%d of %d records)", c.decoded, c.rep.n)
		}
		return false
	}
	if c.decoded >= c.rep.n {
		return c.fail(c.pos, "replay decodes past %d records", c.rep.n)
	}
	start := c.pos
	if c.pos+2 > len(buf) {
		return c.fail(start, "truncated record header")
	}
	flags, classOp := buf[c.pos], buf[c.pos+1]
	if flags&0xf0 != 0 {
		return c.fail(start, "invalid flags %#x", flags)
	}
	if int(classOp&0xf) >= numClasses || int(classOp>>4) >= NumOpClasses {
		return c.fail(start, "invalid class byte %#x", classOp)
	}
	c.pos += 2
	*r = Record{
		Class: Class(classOp & 0xf),
		Op:    OpClass(classOp >> 4),
		Taken: flags&1 != 0,
	}
	d, ok := c.uvarint(buf)
	if !ok {
		return c.fail(c.pos, "invalid pc varint")
	}
	r.PC = c.prevPC + uint64(unzig(d))
	c.prevPC = r.PC
	if flags&2 != 0 {
		if d, ok = c.uvarint(buf); !ok {
			return c.fail(c.pos, "invalid target varint")
		}
		r.Target = r.PC + uint64(unzig(d))
	}
	if flags&4 != 0 {
		if d, ok = c.uvarint(buf); !ok {
			return c.fail(c.pos, "invalid addr varint")
		}
		r.Addr = c.prevAddr + uint64(unzig(d))
		c.prevAddr = r.Addr
	}
	if flags&8 != 0 {
		if c.pos+3 > len(buf) {
			return c.fail(c.pos, "truncated register bytes")
		}
		r.Dst, r.Src1, r.Src2 = buf[c.pos], buf[c.pos+1], buf[c.pos+2]
		c.pos += 3
	}
	c.decoded++
	return true
}
