package trace

import (
	"bytes"
	"sync"
	"testing"
)

func TestReplayRoundTrip(t *testing.T) {
	recs := randomRecords(5000, 42)
	rep := Capture(NewSliceSource(recs))
	if rep.Len() != int64(len(recs)) {
		t.Fatalf("Len = %d, want %d", rep.Len(), len(recs))
	}
	got := Collect(rep.Open())
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestReplayMatchesCodecV2 pins the Recorder to the v2 codec's record
// layout: the in-memory buffer must equal a v2 file minus its 8-byte
// header.
func TestReplayMatchesCodecV2(t *testing.T) {
	recs := randomRecords(2000, 7)
	var file bytes.Buffer
	w := NewWriterV2(&file)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	for i := range recs {
		rec.Record(&recs[i])
	}
	rep := rec.Finish()
	if want := file.Bytes()[8:]; !bytes.Equal(rep.buf, want) {
		t.Fatalf("replay buffer (%d bytes) differs from v2 stream body (%d bytes)",
			len(rep.buf), len(want))
	}
}

// TestCaptureLazyEncodeMatchesRecorder pins the capture-born Replay's
// lazily re-encoded buffer byte-for-byte against recording the same
// source directly, the guarantee that lets Capture skip the encode pass.
func TestCaptureLazyEncodeMatchesRecorder(t *testing.T) {
	recs := randomRecords(3*BlockLen+17, 11)
	rec := NewRecorder()
	for i := range recs {
		rec.Record(&recs[i])
	}
	want := rec.Finish().Bytes()
	rep := Capture(NewSliceSource(recs))
	if !rep.fromBlocks {
		t.Fatal("Capture no longer builds a blocks-first Replay")
	}
	if got := rep.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("lazy encode: %d bytes differ from recorder's %d", len(got), len(want))
	}
}

// TestConcurrentCursors advances many cursors over one Replay from
// separate goroutines; run under -race this asserts the shared buffer is
// read-only.
func TestConcurrentCursors(t *testing.T) {
	recs := randomRecords(3000, 99)
	rep := Capture(NewSliceSource(recs))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := Collect(rep.Open())
			if len(got) != len(recs) {
				t.Errorf("decoded %d records, want %d", len(got), len(recs))
				return
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Errorf("record %d mismatch", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCursorReset(t *testing.T) {
	recs := randomRecords(100, 3)
	rep := Capture(NewSliceSource(recs))
	c := rep.Open().(*BatchCursor)
	first := Collect(c)
	c.Reset()
	second := Collect(c)
	if len(first) != len(recs) || len(second) != len(recs) {
		t.Fatalf("pass lengths %d/%d, want %d", len(first), len(second), len(recs))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after Reset", i)
		}
	}
}

func TestEmptyReplay(t *testing.T) {
	rep := Capture(NewSliceSource(nil))
	if rep.Len() != 0 || rep.Size() != 0 {
		t.Fatalf("empty capture: Len=%d Size=%d", rep.Len(), rep.Size())
	}
	var r Record
	if rep.Open().Next(&r) {
		t.Fatal("empty replay produced a record")
	}
}

func BenchmarkCursorNext(b *testing.B) {
	rep := Capture(NewSliceSource(randomRecords(4096, 1)))
	var r Record
	src := NewReplayBytes(rep.Bytes(), rep.Len()).Open().(*Cursor)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !src.Next(&r) {
			src.Reset()
		}
	}
}

// BenchmarkBatchCursor is BenchmarkCursorNext over the decode-once batched
// form: the per-record cost is a column copy instead of a varint decode.
func BenchmarkBatchCursor(b *testing.B) {
	bs := Capture(NewSliceSource(randomRecords(4096, 1))).Blocks()
	var r Record
	src := bs.Open().(*BatchCursor)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !src.Next(&r) {
			src.Reset()
		}
	}
}

// BenchmarkDecodeBlocks measures the one-time cost of batching an encoded
// capture (the path taken for buffers reconstructed with NewReplayBytes;
// fresh captures build their blocks inline during Capture).
func BenchmarkDecodeBlocks(b *testing.B) {
	rep := Capture(NewSliceSource(randomRecords(BlockLen*4, 1)))
	buf, n := rep.Bytes(), rep.Len()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if NewReplayBytes(buf, n).Blocks().Len() != n {
			b.Fatal("short decode")
		}
	}
}
