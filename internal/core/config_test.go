package core

import "testing"

// Exercise the config accessors and remaining small surfaces.
func TestConfigAccessors(t *testing.T) {
	tl := NewTagless(TaglessConfig{Entries: 128, Scheme: SchemeGshare})
	if tl.Config().Entries != 128 {
		t.Fatal("tagless Config() wrong")
	}
	tg := NewTagged(TaggedConfig{Entries: 64, Ways: 2, Scheme: SchemeAddress, HistBits: 9})
	if tg.Config().Ways != 2 {
		t.Fatal("tagged Config() wrong")
	}
}

func TestLog2Panics(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 12} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("log2(%d) did not panic", bad)
				}
			}()
			log2(bad)
		}()
	}
	if log2(1) != 0 || log2(256) != 8 {
		t.Fatal("log2 values wrong")
	}
}

func TestNewTaglessPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tagless config accepted")
		}
	}()
	NewTagless(TaglessConfig{Entries: 100, Scheme: SchemeGshare})
}

func TestNewTaggedPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tagged config accepted")
		}
	}()
	NewTagged(TaggedConfig{Entries: 256, Ways: 3, HistBits: 9})
}
