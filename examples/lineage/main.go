// Lineage: from the 1997 target cache to a modern ITTAGE-style predictor.
//
// The target cache introduced the idea that branch history should select
// among an indirect jump's targets. Its descendants refined *which*
// history and *how much*: the cascaded predictor (Driesen & Hölzle) added
// allocation filtering so monomorphic jumps don't consume history-indexed
// capacity, and ITTAGE (Seznec) replaced the single fixed history length
// with a geometric series of tagged tables, letting each jump use as much
// history as it needs.
//
// This example runs all three generations (plus the BTB baseline) over
// every workload and prints a misprediction-rate table with each
// predictor's storage budget, so the accuracy/cost trajectory of 15 years
// of indirect-branch prediction is visible in one screen.
package main

import (
	"fmt"

	"repro"
)

const budget = 1_000_000

func main() {
	gens := []struct {
		name string
		year string
		mk   func() repro.TargetCache
		hist func() repro.History
	}{
		{
			"target cache (tagless gshare)", "1997",
			func() repro.TargetCache {
				return repro.NewTagless(repro.TaglessConfig{
					Entries: 512, Scheme: repro.SchemeGshare,
				})
			},
			func() repro.History { return repro.NewPatternHistory(9) },
		},
		{
			"cascaded (filtered 2-stage)", "1998",
			func() repro.TargetCache {
				return repro.NewCascaded(repro.DefaultCascadedConfig())
			},
			func() repro.History { return repro.NewPatternHistory(9) },
		},
		{
			"ittage (geometric histories)", "2011",
			func() repro.TargetCache {
				return repro.NewITTAGE(repro.DefaultITTAGEConfig())
			},
			func() repro.History {
				return repro.NewPathHistory(repro.PathConfig{
					Bits: 64, BitsPerTarget: 1, AddrBitOffset: 2,
					Filter: repro.FilterControl,
				})
			},
		},
	}

	fmt.Printf("storage budgets: ")
	for _, g := range gens {
		fmt.Printf("%s=%d bits  ", g.name, g.mk().CostBits())
	}
	fmt.Println()

	fmt.Printf("\n%-10s %10s", "benchmark", "BTB")
	for _, g := range gens {
		fmt.Printf(" %28s", fmt.Sprintf("%s (%s)", g.name[:20], g.year))
	}
	fmt.Println()

	ws := repro.Workloads()
	if cxx, err := repro.WorkloadByName("cxx"); err == nil {
		ws = append(ws, cxx)
	}
	for _, w := range ws {
		base := repro.RunAccuracy(w, budget, repro.BaselineConfig())
		fmt.Printf("%-10s %9.2f%%", w.Name, 100*base.IndirectMispredictRate())
		for _, g := range gens {
			cfg := repro.BaselineConfig().WithTargetCache(g.mk, g.hist)
			res := repro.RunAccuracy(w, budget, cfg)
			fmt.Printf(" %27.2f%%", 100*res.IndirectMispredictRate())
		}
		fmt.Println()
	}
	fmt.Println("\neach generation trades a little storage for history reach; the 1997 insight — index targets by branch history — is unchanged")
}
