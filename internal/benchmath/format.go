package benchmath

import (
	"fmt"
	"math"
	"strings"
)

// Tidy-unit formatting: pick the scale a human would pick. Benchmark
// values arrive in base units (ns/op, bytes, plain counts) whose
// magnitudes are unreadable — 10352000000 ns/op is 10.4 s. Tidy picks a
// prefix so the mantissa lands in [1, 1000) and rewrites the unit to
// match.

// timeScales are the time prefixes, smallest first, as factors of 1 ns.
var timeScales = []struct {
	factor float64
	unit   string
}{
	{1, "ns"},
	{1e3, "µs"},
	{1e6, "ms"},
	{1e9, "s"},
}

// countScales are SI prefixes for dimensionless counts.
var countScales = []struct {
	factor float64
	prefix string
}{
	{1, ""},
	{1e3, "k"},
	{1e6, "M"},
	{1e9, "G"},
	{1e12, "T"},
}

// Tidy rescales v, expressed in unit, to a human scale and returns the
// scaled value with its rewritten unit. Time units ("ns", "ns/op") walk
// ns→µs→ms→s; other units get SI count prefixes ("instrs/op" →
// "Minstrs/op"). Zero, NaN and infinite values pass through unscaled.
func Tidy(v float64, unit string) (float64, string) {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v, unit
	}
	base, suffix := unit, ""
	if i := strings.IndexByte(unit, '/'); i >= 0 {
		base, suffix = unit[:i], unit[i:]
	}
	a := math.Abs(v)
	if base == "ns" {
		best := timeScales[0]
		for _, s := range timeScales {
			if a >= s.factor {
				best = s
			}
		}
		return v / best.factor, best.unit + suffix
	}
	best := countScales[0]
	for _, s := range countScales {
		if a >= s.factor {
			best = s
		}
	}
	return v / best.factor, best.prefix + base + suffix
}

// FormatValue renders v in unit at a tidy scale with three significant
// digits — "10.4ms", "2.00Minstrs/op".
func FormatValue(v float64, unit string) string {
	sv, su := Tidy(v, unit)
	return fmt.Sprintf("%s%s", formatMantissa(sv), su)
}

// formatMantissa renders a tidy-scaled value (|v| in [1, 1000) unless
// tiny) with three significant digits.
func formatMantissa(v float64) string {
	a := math.Abs(v)
	switch {
	case a == 0 || math.IsNaN(v) || math.IsInf(v, 0):
		return fmt.Sprintf("%g", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
