package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Format v2 is a compact delta/varint encoding. Instruction streams are
// highly regular — PCs usually advance by 4, most instructions are not
// branches, and addresses cluster — so v2 traces are typically 4-6x
// smaller than the fixed-width v1 format. The two formats share the magic
// number and are distinguished by the version field; NewAutoReader picks
// the right decoder.
//
// Record layout (after the shared 8-byte header):
//
//	flags  byte    bit0 taken, bit1 has-target, bit2 has-addr,
//	               bit3 has-regs, bits 4-7 reserved
//	class  byte    Class | OpClass<<4
//	pc     varint  zig-zag delta from previous record's PC
//	target varint  zig-zag delta from PC (if has-target)
//	addr   varint  zig-zag delta from previous addr (if has-addr)
//	regs   3 bytes dst, src1, src2 (if any is nonzero)
const codecVersion2 = 2

// WriterV2 encodes records in the v2 format.
type WriterV2 struct {
	w        *bufio.Writer
	buf      []byte
	wrote    bool
	prevPC   uint64
	prevAddr uint64
}

// NewWriterV2 returns a compact-format writer.
func NewWriterV2(w io.Writer) *WriterV2 {
	return &WriterV2{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (tw *WriterV2) writeHeader() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], codecVersion2)
	_, err := tw.w.Write(hdr[:])
	tw.wrote = true
	return err
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(v uint64) int64  { return int64(v>>1) ^ -int64(v&1) }

// Write appends one record.
func (tw *WriterV2) Write(r *Record) error {
	if !tw.wrote {
		if err := tw.writeHeader(); err != nil {
			return err
		}
	}
	var flags byte
	if r.Taken {
		flags |= 1
	}
	hasTarget := r.Target != 0
	if hasTarget {
		flags |= 2
	}
	hasAddr := r.Addr != 0
	if hasAddr {
		flags |= 4
	}
	hasRegs := r.Dst != 0 || r.Src1 != 0 || r.Src2 != 0
	if hasRegs {
		flags |= 8
	}
	b := tw.buf[:0]
	b = append(b, flags, byte(r.Class)|byte(r.Op)<<4)
	b = binary.AppendUvarint(b, zigzag(int64(r.PC-tw.prevPC)))
	if hasTarget {
		b = binary.AppendUvarint(b, zigzag(int64(r.Target-r.PC)))
	}
	if hasAddr {
		b = binary.AppendUvarint(b, zigzag(int64(r.Addr-tw.prevAddr)))
		tw.prevAddr = r.Addr
	}
	if hasRegs {
		b = append(b, r.Dst, r.Src1, r.Src2)
	}
	tw.prevPC = r.PC
	_, err := tw.w.Write(b)
	return err
}

// Flush writes buffered data (and the header for an empty trace).
func (tw *WriterV2) Flush() error {
	if !tw.wrote {
		if err := tw.writeHeader(); err != nil {
			return err
		}
	}
	return tw.w.Flush()
}

// ReaderV2 decodes v2 traces. It implements Source.
type ReaderV2 struct {
	r        *bufio.Reader
	err      error
	header   bool
	prevPC   uint64
	prevAddr uint64
}

// NewReaderV2 returns a v2 decoder (header validated on first Next).
func NewReaderV2(r io.Reader) *ReaderV2 {
	return &ReaderV2{r: bufio.NewReaderSize(r, 1<<16)}
}

// NewAutoReader sniffs the version field and returns the matching decoder.
func NewAutoReader(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case codecVersion:
		return NewReader(br), nil
	case codecVersion2:
		return NewReaderV2(br), nil
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
}

func (tr *ReaderV2) readHeader() error {
	var hdr [8]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != codecMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != codecVersion2 {
		return fmt.Errorf("%w: not a v2 trace (version %d)", ErrCorrupt, got)
	}
	tr.header = true
	return nil
}

func (tr *ReaderV2) fail(err error, context string) bool {
	if errors.Is(err, io.EOF) && context == "flags" {
		return false // clean end of trace between records
	}
	tr.err = fmt.Errorf("%w: reading %s: %v", ErrCorrupt, context, err)
	return false
}

// Next implements Source.
func (tr *ReaderV2) Next(r *Record) bool {
	if tr.err != nil {
		return false
	}
	if !tr.header {
		if err := tr.readHeader(); err != nil {
			tr.err = err
			return false
		}
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		// Clean EOF between records terminates the stream silently.
		return tr.fail(err, "flags")
	}
	if flags&0xf0 != 0 {
		tr.err = fmt.Errorf("%w: invalid flags %#x", ErrCorrupt, flags)
		return false
	}
	classOp, err := tr.r.ReadByte()
	if err != nil {
		return tr.fail(err, "class")
	}
	*r = Record{
		Class: Class(classOp & 0xf),
		Op:    OpClass(classOp >> 4),
		Taken: flags&1 != 0,
	}
	if int(r.Class) >= numClasses || int(r.Op) >= NumOpClasses {
		tr.err = fmt.Errorf("%w: invalid class byte %#x", ErrCorrupt, classOp)
		return false
	}
	d, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return tr.fail(err, "pc")
	}
	r.PC = tr.prevPC + uint64(unzig(d))
	tr.prevPC = r.PC
	if flags&2 != 0 {
		d, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return tr.fail(err, "target")
		}
		r.Target = r.PC + uint64(unzig(d))
	}
	if flags&4 != 0 {
		d, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return tr.fail(err, "addr")
		}
		r.Addr = tr.prevAddr + uint64(unzig(d))
		tr.prevAddr = r.Addr
	}
	if flags&8 != 0 {
		var regs [3]byte
		if _, err := io.ReadFull(tr.r, regs[:]); err != nil {
			return tr.fail(err, "regs")
		}
		r.Dst, r.Src1, r.Src2 = regs[0], regs[1], regs[2]
	}
	return true
}

// Err returns the first decode error, or nil on clean EOF.
func (tr *ReaderV2) Err() error { return tr.err }

// CopyV2 drains src into a v2 writer, returning the record count.
func CopyV2(w *WriterV2, src Source) (int64, error) {
	var r Record
	var n int64
	for src.Next(&r) {
		if err := w.Write(&r); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Flush()
}
