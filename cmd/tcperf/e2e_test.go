package main

// End-to-end crash-safety campaign against the real tcperf binary. These
// tests build cmd/tcperf, run it as a child process, and exercise the
// durability contract the package doc promises:
//
//   - graceful restart: upload, SIGTERM, exit 0, fsck clean, restart,
//     every acknowledged upload reads back byte-identical;
//   - hard crash: SIGKILL mid-upload-stream, restart (the server repairs
//     torn tails on open), every acknowledged upload survives and a
//     subsequent offline fsck is clean.
//
// CI runs these as the tcperf smoke job (go test -run TestE2E ./cmd/tcperf).

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/perfstore"
	"repro/internal/perfstore/client"
)

var binOnce struct {
	sync.Once
	path string
	err  error
}

// buildBinary compiles cmd/tcperf once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tcperf-e2e-*")
		if err != nil {
			binOnce.err = err
			return
		}
		bin := filepath.Join(dir, "tcperf")
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/tcperf").CombinedOutput()
		if err != nil {
			binOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		binOnce.path = bin
	})
	if binOnce.err != nil {
		t.Fatal(binOnce.err)
	}
	return binOnce.path
}

// serverProc is a running tcperf serve child.
type serverProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
	mu     *sync.Mutex
}

func (p *serverProc) baseURL() string { return "http://" + p.addr }

func (p *serverProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// startServer launches `tcperf serve` on a random port and waits for the
// "listening on" line the binary prints exactly for this purpose.
func startServer(t *testing.T, bin, dir string, extra ...string) *serverProc {
	t.Helper()
	args := append([]string{"serve", "-dir", dir, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, stderr: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(p.stderr, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "tcperf: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.addr = addr
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("server never announced its address; stderr:\n%s", p.stderrText())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

// stop signals the server and waits for it to exit, returning the exit code.
func (p *serverProc) stop(t *testing.T, sig syscall.Signal) int {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatalf("signal %v: %v", sig, err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		return p.cmd.ProcessState.ExitCode()
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("server did not exit after %v; stderr:\n%s", sig, p.stderrText())
		return -1
	}
}

// runFsckCmd runs `tcperf fsck -dir` and returns exit code + output.
func runFsckCmd(t *testing.T, bin, dir string, extra ...string) (int, string) {
	t.Helper()
	args := append([]string{"fsck", "-dir", dir}, extra...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("fsck: %v\n%s", err, out)
	}
	return code, string(out)
}

func newE2EClient(t *testing.T, baseURL string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		BaseURL:     baseURL,
		MaxAttempts: 3,
		BaseBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// verifyAcked asserts every (id → body) pair reads back byte-identical.
func verifyAcked(t *testing.T, c *client.Client, acked *sync.Map) int {
	t.Helper()
	ctx := context.Background()
	n := 0
	acked.Range(func(k, v any) bool {
		got, err := c.Record(ctx, k.(string))
		if err != nil {
			t.Fatalf("acknowledged record %s lost: %v", k, err)
		}
		if !bytes.Equal(got, v.([]byte)) {
			t.Fatalf("acknowledged record %s: got %q want %q", k, got, v)
		}
		n++
		return true
	})
	return n
}

// TestE2EGracefulRestart is the CI smoke flow: start the server, run N
// concurrent uploads, query them back byte-identical, SIGTERM, restart,
// fsck clean, everything still present.
func TestE2EGracefulRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e skipped in -short mode")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	srv := startServer(t, bin, dir, "-shards", "4")

	c := newE2EClient(t, srv.baseURL())
	ctx := context.Background()

	const n = 40
	var acked sync.Map
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(`{"table2":{"wall_ms":%d.5}}`, 1000+i))
			res, err := c.Do(ctx, client.Upload{
				Kind: "benchjson", Machine: "e2e", Commit: fmt.Sprintf("c%03d", i),
				Experiment: "table2", Body: body,
			})
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			acked.Store(res.ID, body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("uploads failed; server stderr:\n%s", srv.stderrText())
	}
	if got := verifyAcked(t, c, &acked); got != n {
		t.Fatalf("verified %d records before restart, want %d", got, n)
	}
	metas, err := c.Query(ctx, perfstore.Query{Kind: "benchjson", Machine: "e2e", Limit: n * 2})
	if err != nil || len(metas) != n {
		t.Fatalf("query: %d rows, err %v", len(metas), err)
	}

	// Graceful shutdown on SIGTERM: exit 0, drain summary printed.
	if code := srv.stop(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("SIGTERM exit code %d; stderr:\n%s", code, srv.stderrText())
	}
	if !strings.Contains(srv.stderrText(), "drained") {
		t.Fatalf("no drain summary in stderr:\n%s", srv.stderrText())
	}

	// Offline fsck: clean store, all records accounted for.
	code, out := runFsckCmd(t, bin, dir)
	if code != 0 || !strings.Contains(out, "clean") {
		t.Fatalf("fsck after graceful stop: exit %d\n%s", code, out)
	}

	// Restart: everything acknowledged is still there, byte-identical.
	srv2 := startServer(t, bin, dir)
	c2 := newE2EClient(t, srv2.baseURL())
	if got := verifyAcked(t, c2, &acked); got != n {
		t.Fatalf("verified %d records after restart, want %d", got, n)
	}
	if code := srv2.stop(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("second SIGTERM exit code %d", code)
	}
}

// TestE2EKillNineMidUpload SIGKILLs the server while uploads are in
// flight — no drain, no fsync-on-close, the worst crash short of power
// loss. The contract: every upload acknowledged before the kill survives
// the restart byte-identical, and after the restarted server repairs any
// torn tail, an offline fsck is clean.
func TestE2EKillNineMidUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e skipped in -short mode")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	srv := startServer(t, bin, dir, "-shards", "4", "-queue", "64")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Hammer the server from many goroutines; record every ack we see.
	var (
		acked   sync.Map
		wg      sync.WaitGroup
		counter struct {
			sync.Mutex
			n int
		}
	)
	const writers = 16
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One non-retrying client per writer: a retry that lands after
			// the kill would just hang the test, and ambiguous outcomes are
			// exactly what this test does NOT record as acked.
			c, err := client.New(client.Config{BaseURL: srv.baseURL(), MaxAttempts: 1})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; ctx.Err() == nil; i++ {
				body := []byte(fmt.Sprintf(`{"crash":{"writer":%d,"seq":%d}}`, w, i))
				res, err := c.Do(ctx, client.Upload{
					Kind: "crashtest", Machine: fmt.Sprintf("w%02d", w),
					Commit: fmt.Sprintf("s%06d", i), Experiment: "kill9", Body: body,
				})
				if err != nil {
					continue // connection died (kill landed) or shed: not acked
				}
				acked.Store(res.ID, body)
				counter.Lock()
				counter.n++
				counter.Unlock()
			}
		}(w)
	}

	// Let acks accumulate, then kill -9 while the stream is hot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		counter.Lock()
		n := counter.n
		counter.Unlock()
		if n >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d acks after 10s; stderr:\n%s", n, srv.stderrText())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	srv.cmd.Wait()
	cancel()
	wg.Wait()

	counter.Lock()
	ackedCount := counter.n
	counter.Unlock()
	t.Logf("kill -9 landed after %d acknowledged uploads", ackedCount)

	// A crash may leave a torn tail; that is damage fsck recognises as
	// repairable, never data loss. Exit 0 (clean) and exit 1 with only
	// torn-tail issues are both within contract here.
	code, out := runFsckCmd(t, bin, dir)
	if code == 2 {
		t.Fatalf("fsck errored after kill -9:\n%s", out)
	}
	if strings.Contains(out, "hash-mismatch") {
		t.Fatalf("fsck found real corruption after kill -9:\n%s", out)
	}

	// Restart: the server truncates any torn tail on open, then every
	// acknowledged upload must read back byte-identical.
	srv2 := startServer(t, bin, dir)
	c2 := newE2EClient(t, srv2.baseURL())
	got := verifyAcked(t, c2, &acked)
	if got < ackedCount {
		t.Fatalf("verified %d acked records after kill -9, want at least %d", got, ackedCount)
	}
	if code := srv2.stop(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("post-crash restart SIGTERM exit code %d; stderr:\n%s", code, srv2.stderrText())
	}

	// After the restarted server repaired the store, offline fsck is clean.
	code, out = runFsckCmd(t, bin, dir)
	if code != 0 || !strings.Contains(out, "clean") {
		t.Fatalf("fsck after repair: exit %d\n%s", code, out)
	}
}
