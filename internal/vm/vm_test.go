package vm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func run(t *testing.T, p *isa.Program, maxSteps int64) *VM {
	t.Helper()
	m := New(p)
	if _, err := m.Run(maxSteps); err != nil {
		t.Fatalf("vm fault: %v", err)
	}
	return m
}

func TestALUOps(t *testing.T) {
	b := isa.NewBuilder("alu", 0)
	b.LoadImm(1, 20)
	b.LoadImm(2, 6)
	b.ALU(isa.AluAdd, 3, 1, 2)
	b.ALU(isa.AluSub, 4, 1, 2)
	b.ALU(isa.AluMul, 5, 1, 2)
	b.ALU(isa.AluDiv, 6, 1, 2)
	b.ALU(isa.AluAnd, 7, 1, 2)
	b.ALU(isa.AluOr, 8, 1, 2)
	b.ALU(isa.AluXor, 9, 1, 2)
	b.ALUI(isa.AluSll, 10, 1, 2)
	b.ALUI(isa.AluSrl, 11, 1, 2)
	b.Halt()
	m := run(t, b.MustBuild(), 100)
	want := map[isa.Reg]int64{
		3: 26, 4: 14, 5: 120, 6: 3, 7: 4, 8: 22, 9: 18, 10: 80, 11: 5,
	}
	for r, v := range want {
		if got := m.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivByZero(t *testing.T) {
	b := isa.NewBuilder("div0", 0)
	b.LoadImm(1, 7)
	b.LoadImm(2, 0)
	b.ALU(isa.AluDiv, 3, 1, 2)
	b.Halt()
	m := run(t, b.MustBuild(), 10)
	if m.Reg(3) != 0 {
		t.Fatalf("div by zero = %d, want 0", m.Reg(3))
	}
}

func TestLoadStore(t *testing.T) {
	b := isa.NewBuilder("mem", 0)
	addr := b.Word(99)
	b.LoadImm(1, addr)
	b.Load(2, 1, 0)
	b.ALUI(isa.AluAdd, 2, 2, 1)
	b.Store(1, 8, 2) // one word past
	b.Load(3, 1, 8)
	b.Halt()
	m := run(t, b.MustBuild(), 100)
	if m.Reg(2) != 100 || m.Reg(3) != 100 {
		t.Fatalf("r2=%d r3=%d, want 100", m.Reg(2), m.Reg(3))
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	b := isa.NewBuilder("zero", 0)
	b.LoadImm(1, 8000)
	b.Load(2, 1, 0)
	b.Halt()
	m := run(t, b.MustBuild(), 10)
	if m.Reg(2) != 0 {
		t.Fatalf("unwritten memory = %d", m.Reg(2))
	}
}

func TestBranchRecords(t *testing.T) {
	b := isa.NewBuilder("br", 0x100)
	b.LoadImm(1, 1)
	b.LoadImm(2, 2)
	b.Br(isa.CondEQ, 1, 2, "skip") // not taken
	b.Br(isa.CondNE, 1, 2, "skip") // taken
	b.Nop()                        // skipped
	b.Label("skip")
	b.Halt()
	m := New(b.MustBuild())
	recs := trace.Collect(m)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	// LoadImm, LoadImm, Br(NT), Br(T), Halt = 5 records.
	if len(recs) != 5 {
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	nt, tk := recs[2], recs[3]
	if nt.Class != trace.ClassCondDirect || nt.Taken {
		t.Fatalf("record 2 = %+v, want not-taken conditional", nt)
	}
	if !tk.Taken || tk.Target != 0x100+5*4 {
		t.Fatalf("record 3 = %+v, want taken to %#x", tk, 0x100+5*4)
	}
	if tk.NextPC() != recs[4].PC {
		t.Fatal("trace PC discontinuity across taken branch")
	}
}

func TestCallReturn(t *testing.T) {
	b := isa.NewBuilder("call", 0)
	b.Call("sub")
	b.Halt()
	b.Label("sub")
	b.LoadImm(1, 42)
	b.Ret()
	m := New(b.MustBuild())
	recs := trace.Collect(m)
	if m.Reg(1) != 42 {
		t.Fatal("subroutine did not run")
	}
	if recs[0].Class != trace.ClassCall || recs[0].Target != 8 {
		t.Fatalf("call record = %+v", recs[0])
	}
	ret := recs[2]
	if ret.Class != trace.ClassReturn || ret.Target != 4 {
		t.Fatalf("return record = %+v", ret)
	}
}

func TestIndirectJumpRecord(t *testing.T) {
	b := isa.NewBuilder("ind", 0)
	b.LoadImm(1, 4*4) // address of "dest"
	b.LoadImm(2, 7)   // selector value
	b.JmpIndSel(1, 2)
	b.Nop() // skipped
	b.Label("dest")
	b.Halt()
	m := New(b.MustBuild())
	recs := trace.Collect(m)
	j := recs[2]
	if j.Class != trace.ClassIndJump || j.Target != 16 || j.Addr != 7 {
		t.Fatalf("indirect record = %+v", j)
	}
}

func TestIndirectCallPushesReturn(t *testing.T) {
	b := isa.NewBuilder("indcall", 0)
	b.LoadImm(1, 3*4)
	b.CallInd(1)
	b.Halt()
	b.Label("f")
	b.LoadImm(2, 9)
	b.Ret()
	m := New(b.MustBuild())
	recs := trace.Collect(m)
	if m.Reg(2) != 9 {
		t.Fatal("indirect callee did not run")
	}
	if recs[1].Class != trace.ClassIndCall {
		t.Fatalf("record = %+v", recs[1])
	}
	// Without a selector register, Addr falls back to the target.
	if recs[1].Addr != recs[1].Target {
		t.Fatalf("selector fallback wrong: %+v", recs[1])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *isa.Builder)
		want  string
	}{
		{"ret-empty", func(b *isa.Builder) { b.Ret() }, "empty call stack"},
		{"bad-ind", func(b *isa.Builder) {
			b.LoadImm(1, 0x999999)
			b.JmpInd(1)
		}, "indirect jump"},
		{"bad-load", func(b *isa.Builder) {
			b.LoadImm(1, -16)
			b.Load(2, 1, 0)
		}, "bad load"},
		{"bad-store", func(b *isa.Builder) {
			b.LoadImm(1, 3) // unaligned
			b.Store(1, 0, 2)
		}, "bad store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := isa.NewBuilder(tc.name, 0)
			tc.build(b)
			b.Halt()
			m := New(b.MustBuild())
			var r trace.Record
			for m.Next(&r) {
			}
			if m.Err() == nil || !strings.Contains(m.Err().Error(), tc.want) {
				t.Fatalf("fault = %v, want %q", m.Err(), tc.want)
			}
		})
	}
}

func TestLoopingRestarts(t *testing.T) {
	b := isa.NewBuilder("short", 0)
	b.LoadImm(1, 1)
	b.Nop()
	b.Halt()
	l := NewLooping(b.MustBuild())
	recs := trace.Collect(trace.NewLimit(l, 7))
	if len(recs) != 7 {
		t.Fatalf("looping produced %d records", len(recs))
	}
	// Halt emits a record; the stream restarts from PC 0 afterwards.
	if recs[0].PC != recs[3].PC {
		t.Fatalf("restart PC mismatch: %#x vs %#x", recs[0].PC, recs[3].PC)
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
}

func TestLoopingPropagatesFault(t *testing.T) {
	b := isa.NewBuilder("faulty", 0)
	b.Ret() // immediate fault
	l := NewLooping(b.MustBuild())
	var r trace.Record
	if l.Next(&r) {
		t.Fatal("faulting program produced a record")
	}
	if l.Err() == nil {
		t.Fatal("fault not propagated")
	}
}

func TestStepBudget(t *testing.T) {
	b := isa.NewBuilder("inf", 0)
	b.Label("l")
	b.Jmp("l")
	m := New(b.MustBuild())
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("ran %d steps, want 1000", n)
	}
	if m.Halted() {
		t.Fatal("infinite loop halted")
	}
}
