package perfstore

import (
	"bytes"
	"testing"
)

// TestSchemaMetaRoundTrip pins the optional Schema metadata: it survives
// the record encoding bit-for-bit, and it does not participate in the
// content hash — the same body with a different schema tag is still the
// same record identity.
func TestSchemaMetaRoundTrip(t *testing.T) {
	body := []byte(`BenchmarkSuite/exp=table2 1 1e9 ns/op` + "\n")
	meta := Meta{
		Kind:       "benchfmt",
		Machine:    "mach-1",
		Commit:     "abc123",
		Experiment: "all",
		Schema:     "go-benchfmt/v1",
		Time:       42,
		Bytes:      int64(len(body)),
	}
	meta.ID = ContentID(meta.Kind, meta.Machine, meta.Commit, meta.Experiment, body)

	enc, err := encodeRecord([]byte(segMagic), meta, body)
	if err != nil {
		t.Fatal(err)
	}
	var got []scannedRecord
	if _, err := scanSegment(bytes.NewReader(enc), func(rec scannedRecord) error {
		got = append(got, scannedRecord{Meta: rec.Meta, Body: append([]byte(nil), rec.Body...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Meta != meta {
		t.Fatalf("schema lost in round trip: %+v", got)
	}
	if got[0].Meta.Schema != "go-benchfmt/v1" {
		t.Fatalf("schema = %q", got[0].Meta.Schema)
	}

	// Identity is schema-independent: correcting a tag later must not
	// mint a new row.
	other := meta
	other.Schema = "benchdiff/v1"
	if ContentID(other.Kind, other.Machine, other.Commit, other.Experiment, body) != meta.ID {
		t.Error("ContentID changed with schema, want schema excluded from identity")
	}

	// Invalid UTF-8 in the schema is refused like any other meta field,
	// protecting the decode-to-identical-meta guarantee.
	bad := meta
	bad.Schema = "v1\xff\xfe"
	if _, err := encodeRecord(nil, bad, body); err == nil {
		t.Error("encodeRecord accepted non-UTF-8 schema")
	}
}
