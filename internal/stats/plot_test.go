package stats

import (
	"strings"
	"testing"
)

func TestPlotRendering(t *testing.T) {
	p := &Plot{Title: "T", XLabel: "ways"}
	p.AddSeries("a", []string{"1", "2", "4"}, []float64{1, 2, 3})
	p.AddSeries("b", []string{"1", "2", "4"}, []float64{3, 2, 1})
	out := p.String()
	for _, want := range []string{"T", "ways", "* = a", "+ = b", "|", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The highest value should land within the top two chart rows (the
	// 5% headroom keeps it off the very top line).
	lines := strings.Split(out, "\n")
	if !strings.ContainsAny(lines[1], "*+") && !strings.ContainsAny(lines[2], "*+") {
		t.Errorf("no marker near the top:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestPlotFlatSeries(t *testing.T) {
	p := &Plot{}
	p.AddSeries("flat", []string{"a", "b"}, []float64{5, 5})
	out := p.String()
	if !strings.Contains(out, "flat") {
		t.Errorf("flat series output: %q", out)
	}
}

func TestPlotMarkerCycle(t *testing.T) {
	p := &Plot{}
	for i := 0; i < 7; i++ {
		p.AddSeries("s", []string{"x"}, []float64{float64(i)})
	}
	if p.Series[0].Marker != p.Series[6].Marker {
		t.Error("marker cycle should wrap after six series")
	}
	if p.Series[0].Marker == p.Series[1].Marker {
		t.Error("adjacent series share a marker")
	}
}
