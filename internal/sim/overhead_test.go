package sim_test

// Telemetry cost guard: the instrumentation layer promises that DISABLED
// telemetry costs the accuracy kernel essentially nothing (one nil check
// per resolved indirect jump plus a nil-safe clock call). The test below
// holds the instrumented kernel to within 2% of a telemetry-free copy of
// the same loop; the benchmarks report the enabled cost for profiling.

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// plainAccuracyLoop is sim.RunAccuracyCtx with every telemetry touchpoint
// deleted — the pre-instrumentation kernel, kept here as the throughput
// reference. If the two drift apart structurally, update this copy.
func plainAccuracyLoop(factory trace.Factory, budget int64, cfg sim.Config) sim.AccuracyResult {
	ctx := context.Background()
	engine := sim.NewEngine(cfg)
	var res sim.AccuracyResult
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	for src.Next(&r) {
		res.Instructions++
		if res.Instructions&(1<<14-1) == 0 {
			if err := ctx.Err(); err != nil {
				res.Err = err
				return res
			}
		}
		if !r.Class.IsBranch() {
			continue
		}
		res.Branches++
		p := engine.Predict(&r)
		correct := p.Correct(&r)
		switch r.Class {
		case trace.ClassCondDirect:
			res.Conditional.Record(correct)
		case trace.ClassUncondDirect, trace.ClassCall:
			res.Direct.Record(correct)
		case trace.ClassReturn:
			res.Returns.Record(correct)
		case trace.ClassIndJump, trace.ClassIndCall:
			res.Indirect.Record(correct)
			if p.FromTC {
				res.TCCovered++
			}
		}
		res.Overall.Record(correct)
		engine.Resolve(&r, p)
	}
	res.Err = trace.SourceErr(src)
	return res
}

// TestDisabledTelemetryOverhead pins the <2% disabled-cost budget. Both
// kernels run interleaved and best-of-N, which suppresses one-off noise
// (GC, scheduler) well enough for a regression guard; the whole
// measurement retries a few times before declaring a failure.
func TestDisabledTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement simulates tens of millions of instructions")
	}
	const budget = 2_000_000
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Replay(budget)
	cfg := sim.DefaultConfig()

	// Warm up: fault in the replay and JIT-warm both paths, and make sure
	// the two kernels still compute identical results (a drifted copy
	// would make the comparison meaningless).
	plain := plainAccuracyLoop(rep, budget, cfg)
	inst := sim.RunAccuracy(rep, budget, cfg)
	if plain != inst {
		t.Fatalf("reference kernel drifted from sim.RunAccuracy:\nplain: %+v\ninst:  %+v", plain, inst)
	}

	measure := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	const maxOverhead = 1.02
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base := measure(func() { plainAccuracyLoop(rep, budget, cfg) })
		with := measure(func() { sim.RunAccuracy(rep, budget, cfg) })
		ratio = float64(with) / float64(base)
		if ratio <= maxOverhead {
			return
		}
		t.Logf("attempt %d: disabled-telemetry ratio %.4f (base %v, instrumented %v)", attempt, ratio, base, with)
	}
	t.Errorf("disabled telemetry costs %.1f%% of accuracy throughput, budget is 2%%", (ratio-1)*100)
}

func benchmarkAccuracy(b *testing.B, col func() *telemetry.Collector) {
	const budget = 1_000_000
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	rep := w.Replay(budget)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Telemetry = col()
		sim.RunAccuracy(rep, budget, cfg)
	}
	b.ReportMetric(float64(budget*int64(b.N))/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkAccuracyTelemetryOff(b *testing.B) {
	benchmarkAccuracy(b, func() *telemetry.Collector { return nil })
}

func BenchmarkAccuracyTelemetryOn(b *testing.B) {
	benchmarkAccuracy(b, func() *telemetry.Collector {
		return telemetry.NewCollector(telemetry.Config{Events: 64})
	})
}
