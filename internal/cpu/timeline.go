package cpu

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Timeline captures per-instruction pipeline timing for a short window of
// execution, for debugging the model and for pipeline diagrams: where
// cycles go when an indirect jump mispredicts is the paper's whole
// subject, and a diagram shows it directly.
type Timeline struct {
	// Entries are in program order.
	Entries []TimelineEntry
}

// TimelineEntry is one instruction's passage through the machine.
type TimelineEntry struct {
	Record     trace.Record
	Fetch      int64
	Issue      int64
	Complete   int64
	Retire     int64
	Mispredict bool
}

// RunTimeline runs the fast model for budget instructions, recording the
// first maxEntries instructions' timing.
func RunTimeline(src trace.Source, budget int64, engine *sim.Engine, cfg Config, maxEntries int) (Result, *Timeline) {
	m := New(cfg, engine)
	tl := &Timeline{}
	m.observer = func(e TimelineEntry) {
		if len(tl.Entries) < maxEntries {
			tl.Entries = append(tl.Entries, e)
		}
	}
	res := m.Run(src, budget)
	return res, tl
}

// String renders the classic pipeline diagram: one row per instruction,
// one column per cycle, with F (fetch), I (issue), C (complete), R
// (retire) markers and dots for in-flight cycles. Mispredicted branches
// are flagged with '!'.
func (t *Timeline) String() string {
	if len(t.Entries) == 0 {
		return "(empty timeline)\n"
	}
	base := t.Entries[0].Fetch
	end := int64(0)
	for _, e := range t.Entries {
		if e.Retire > end {
			end = e.Retire
		}
	}
	width := int(end-base) + 1
	if width > 200 {
		width = 200
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %s\n", "instruction", "cycles (F fetch, I issue, C complete, R retire)")
	for _, e := range t.Entries {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		mark := func(cycle int64, c byte) {
			i := int(cycle - base)
			if i >= 0 && i < width {
				if row[i] != ' ' {
					// Stages sharing a cycle: keep the later-stage letter.
					switch {
					case c == 'R':
						row[i] = 'R'
					case c == 'C' && row[i] != 'R':
						row[i] = 'C'
					}
					return
				}
				row[i] = c
			}
		}
		for cy := e.Fetch + 1; cy < e.Retire; cy++ {
			mark(cy, '.')
		}
		mark(e.Fetch, 'F')
		mark(e.Issue, 'I')
		mark(e.Complete, 'C')
		mark(e.Retire, 'R')

		desc := describeRecord(&e.Record)
		flag := " "
		if e.Mispredict {
			flag = "!"
		}
		fmt.Fprintf(&b, "%s%-33s %s\n", flag, desc, strings.TrimRight(string(row), " "))
	}
	return b.String()
}

func describeRecord(r *trace.Record) string {
	if r.Class.IsBranch() {
		return fmt.Sprintf("%#07x %-11s ->%#x", r.PC, r.Class, r.Target)
	}
	return fmt.Sprintf("%#07x %s", r.PC, r.Op)
}
