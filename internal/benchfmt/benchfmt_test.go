package benchfmt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const sampleFile = `suite: tcsim
accuracy-budget: 2000000
model: fast

goos: linux
BenchmarkSuite/exp=table1 1 5.2104e+09 ns/op 40 cells/op 2e+06 instrs/op
BenchmarkSuite/exp=table2 1 1.0352e+10 ns/op 42 cells/op 2e+06 instrs/op
some stray log line the format says to ignore
model: event
BenchmarkSuite/exp=table2 1 1.04e+10 ns/op 42 cells/op 2e+06 instrs/op
`

func TestReaderBasics(t *testing.T) {
	results, probs, err := ReadAll(strings.NewReader(sampleFile), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("problems: %v", probs)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}

	r := results[0]
	if r.FullName != "BenchmarkSuite/exp=table1" || r.Iters != 1 {
		t.Errorf("result 0 = %+v", r)
	}
	if v, ok := r.Value("ns/op"); !ok || v != 5.2104e9 {
		t.Errorf("ns/op = %v, %v", v, ok)
	}
	if v, ok := r.Value("cells/op"); !ok || v != 40 {
		t.Errorf("cells/op = %v, %v", v, ok)
	}
	if got := r.BaseName(); got != "BenchmarkSuite" {
		t.Errorf("BaseName = %q", got)
	}
	if v, ok := r.Lookup("exp"); !ok || v != "table1" {
		t.Errorf("Lookup(exp) = %q, %v", v, ok)
	}
	if v, ok := r.Lookup("model"); !ok || v != "fast" {
		t.Errorf("Lookup(model) = %q, %v", v, ok)
	}
	if v, ok := r.Lookup("suite"); !ok || v != "tcsim" {
		t.Errorf("Lookup(suite) = %q, %v", v, ok)
	}

	// The third result follows a "model: event" override.
	if v, ok := results[2].Lookup("model"); !ok || v != "event" {
		t.Errorf("override: Lookup(model) = %q, %v", v, ok)
	}
	// Config snapshots are per-result: the first result keeps "fast".
	if v, _ := results[0].Lookup("model"); v != "fast" {
		t.Errorf("snapshot leaked: result 0 model = %q", v)
	}
}

func TestReaderGomaxprocs(t *testing.T) {
	in := "BenchmarkDecode/size=1024-8 100 12.5 ns/op\n"
	results, _, err := ReadAll(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	r := results[0]
	if got := r.BaseName(); got != "BenchmarkDecode" {
		t.Errorf("BaseName = %q", got)
	}
	if v, ok := r.Lookup("size"); !ok || v != "1024" {
		t.Errorf("size = %q, %v", v, ok)
	}
	if v, ok := r.Lookup("gomaxprocs"); !ok || v != "8" {
		t.Errorf("gomaxprocs = %q, %v", v, ok)
	}
}

func TestReaderProblems(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkTooFewFields 10",                              // no value pair
		"BenchmarkOddFields 10 12.5 ns/op 44",                   // value without unit
		"BenchmarkBadIters zero 12.5 ns/op",                     // non-integer count
		"BenchmarkNegIters -4 12.5 ns/op",                       // non-positive count
		"BenchmarkHugeIters 99999999999999999999999 12.5 ns/op", // overflows int64
		"BenchmarkBadValue 10 twelve ns/op",                     // non-numeric value
		"BenchmarkGood 10 12.5 ns/op",                           // fine
		"Benchmarklowercase 10 12.5 ns/op",                      // lowercase after prefix: plain text
	}, "\n")
	results, probs, err := ReadAll(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].FullName != "BenchmarkGood" {
		t.Fatalf("results = %+v, want only BenchmarkGood", results)
	}
	if len(probs) != 6 {
		t.Fatalf("got %d problems, want 6: %v", len(probs), probs)
	}
	if probs[0].Line != 1 || !strings.Contains(probs[0].String(), "t:1:") {
		t.Errorf("problem position: %v", probs[0])
	}
}

func TestReaderEmptyConfigValueClears(t *testing.T) {
	in := "commit: abc\ncommit:\nBenchmarkX 1 2 ns/op\n"
	results, _, err := ReadAll(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := results[0].Lookup("commit"); ok {
		t.Error("cleared config key should not resolve")
	}
}

func TestReaderNonUTF8(t *testing.T) {
	in := "Benchmark\xff\xfeGarbage 1 2 ns/op\nBenchmarkOK 1 2 ns/op\n"
	results, _, err := ReadAll(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	// The garbage name still parses as a name (the format is bytes, not
	// UTF-8); what matters is no panic and the clean line surviving.
	found := false
	for _, r := range results {
		if r.FullName == "BenchmarkOK" {
			found = true
		}
	}
	if !found {
		t.Error("clean line lost after non-UTF-8 line")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	results, _, err := ReadAll(strings.NewReader(sampleFile), "in")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range results {
		if err := w.Write(&results[i]); err != nil {
			t.Fatal(err)
		}
	}
	again, probs, err := ReadAll(bytes.NewReader(buf.Bytes()), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("round trip produced problems: %v", probs)
	}
	if !resultsEqual(results, again) {
		t.Errorf("round trip drifted:\n-- first --\n%s\n-- wrote --\n%s", sampleFile, buf.String())
	}
}

// resultsEqual compares parsed results ignoring line numbers, with
// bit-exact float comparison (NaN-safe).
func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.FullName != y.FullName || x.Iters != y.Iters ||
			len(x.Values) != len(y.Values) || len(x.Config) != len(y.Config) {
			return false
		}
		for j := range x.Values {
			if math.Float64bits(x.Values[j].Value) != math.Float64bits(y.Values[j].Value) ||
				x.Values[j].Unit != y.Values[j].Unit {
				return false
			}
		}
		for j := range x.Config {
			if x.Config[j] != y.Config[j] {
				return false
			}
		}
	}
	return true
}
