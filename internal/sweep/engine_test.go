package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// diffSpec is the differential-test grid: at least one point per
// predictor family, two workloads, small budget.
const diffSpec = `{
	"name": "differential",
	"budget": 30000,
	"workloads": ["perl", "gcc"],
	"grids": [
		{"family": "btb", "schemes": ["default", "2bit"], "entries": [1024], "ways": [4]},
		{"family": "tagless", "schemes": ["gag", "gshare"], "entries": [512], "hist_bits": [9]},
		{"family": "tagged", "schemes": ["xor"], "entries": [256], "ways": [4], "hist_bits": [9], "tag_bits": [32], "history": ["pattern", "path-indjmp"]},
		{"family": "cascaded", "entries": [256], "ways": [4], "hist_bits": [9]},
		{"family": "ittage", "entries": [128], "tables": [5]}
	]
}`

// TestDifferentialAgainstDirectSim pins the sweep engine bit-for-bit to
// direct single-config simulation: for every point, at worker counts 1
// and 8, the engine's counts must equal what sim.RunAccuracy reports for
// a freshly built config over a fresh streaming trace source. This is the
// harness that keeps the batched, memoized, work-stolen sweep path honest
// against the reference path.
func TestDifferentialAgainstDirectSim(t *testing.T) {
	spec, err := ParseSpec([]byte(diffSpec))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points) < 8 {
		t.Fatalf("differential grid too small: %d points", len(ex.Points))
	}

	direct := make([]Result, len(ex.Points))
	for i, p := range ex.Points {
		w, err := workload.ByName(p.Workload)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := p.SimConfig()
		if err != nil {
			t.Fatalf("%s: %v", p.Key(), err)
		}
		// The reference path: a fresh looping VM source through the
		// streaming kernel, no memo, no batching, no pool.
		res := sim.RunAccuracy(w, spec.Budget, cfg)
		if res.Err != nil {
			t.Fatalf("%s: %v", p.Key(), res.Err)
		}
		bits, err := p.StorageBits()
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = Result{
			Point:        p,
			StorageBits:  bits,
			Instructions: res.Instructions,
			Branches:     res.Branches,
			Indirect:     res.Indirect.Predictions,
			IndirectMiss: res.Indirect.Mispredicts,
			Overall:      res.Overall.Predictions,
			OverallMiss:  res.Overall.Mispredicts,
			TCCovered:    res.TCCovered,
		}
	}

	// Gang widths: 1 (fusion off), 4, auto (0), and max (every fusable
	// point of a (workload, history) group in one pass).
	for _, width := range []int{1, 4, 0, len(ex.Points)} {
		for _, workers := range []int{1, 8} {
			out, err := Run(context.Background(), spec, Options{Workers: workers, GangWidth: width})
			if err != nil {
				t.Fatalf("gang=%d workers=%d: %v", width, workers, err)
			}
			if len(out.Results) != len(direct) {
				t.Fatalf("gang=%d workers=%d: %d results, want %d", width, workers, len(out.Results), len(direct))
			}
			for i := range direct {
				if out.Results[i] != direct[i] {
					t.Errorf("gang=%d workers=%d point %s:\n sweep  %+v\n direct %+v",
						width, workers, direct[i].Point.Key(), out.Results[i], direct[i])
				}
			}
			if out.GangFallbacks != 0 {
				t.Errorf("gang=%d workers=%d: %d gangs fell back to per-point runs", width, workers, out.GangFallbacks)
			}
			if out.FusedPoints+out.DirectPoints != int64(len(direct)) {
				t.Errorf("gang=%d workers=%d: fused %d + direct %d points, want %d total",
					width, workers, out.FusedPoints, out.DirectPoints, len(direct))
			}
			if width == 1 && out.FusedPoints != 0 {
				t.Errorf("gang=1 fused %d points; width 1 must run everything direct", out.FusedPoints)
			}
			if width != 1 && out.PassesAvoided() == 0 {
				t.Errorf("gang=%d avoided no passes over this multi-family grid", width)
			}
		}
	}
}

const resumeSpec = `{
	"name": "resume",
	"budget": 20000,
	"workloads": ["perl"],
	"grids": [
		{"family": "tagless", "schemes": ["gshare"], "entries": "64..1024*2", "hist_bits": [6, 9]},
		{"family": "btb", "entries": [1024, 2048], "ways": [4]}
	]
}`

func renderAll(t *testing.T, o *Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	o.Report().Render(&buf)
	if err := o.Report().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeByteIdentical interrupts a sweep mid-run via context
// cancellation, resumes it from the manifest, and requires the final
// frontier report and CSV to be byte-identical to an uninterrupted run —
// at a different worker count, for good measure.
func TestResumeByteIdentical(t *testing.T) {
	spec, err := ParseSpec([]byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}

	// Reference: uninterrupted, serial, no manifest.
	ref, err := Run(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, ref)

	// Interrupted run: shard size 1 so progress is fine-grained; the
	// progress hook cancels the context partway through.
	manifest := filepath.Join(t.TempDir(), "sweep.manifest")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Workers: 2, ShardSize: 1, ManifestPath: manifest,
		Log: func(string, ...any) { cancel() },
	}
	if _, err := Run(ctx, spec, opts); err == nil {
		t.Fatal("interrupted run reported success")
	} else if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted run: %v", err)
	}

	// The manifest must hold some but not all shards, recorded cleanly.
	resumed, err := Run(context.Background(), spec, Options{
		Workers: 4, ShardSize: 1, ManifestPath: manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedShards == 0 {
		t.Error("resume simulated everything; no shards came from the manifest")
	}
	if got := renderAll(t, resumed); !bytes.Equal(got, want) {
		t.Errorf("resumed output differs from uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", got, want)
	}

	// A third run resumes everything and touches no simulation.
	again, err := Run(context.Background(), spec, Options{
		Workers: 2, ShardSize: 1, ManifestPath: manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.ResumedShards != again.Shards {
		t.Errorf("full resume ran %d/%d shards from scratch", again.Shards-again.ResumedShards, again.Shards)
	}
	if again.SimulatedInstructions != 0 {
		t.Errorf("full resume simulated %d instructions", again.SimulatedInstructions)
	}
	if got := renderAll(t, again); !bytes.Equal(got, want) {
		t.Error("fully resumed output differs from uninterrupted run")
	}
}

// TestResumeRejectsFingerprintMismatch: a manifest recorded for one sweep
// must not be consumed by a different one.
func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	spec, err := ParseSpec([]byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "sweep.manifest")
	if _, err := Run(context.Background(), spec, Options{Workers: 2, ManifestPath: manifest}); err != nil {
		t.Fatal(err)
	}

	changed := *spec
	changed.Budget = spec.Budget * 2
	_, err = Run(context.Background(), &changed, Options{Workers: 2, ManifestPath: manifest})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("budget change: err = %v, want fingerprint-mismatch error", err)
	}

	// Same spec, different shard size: also a different run shape.
	_, err = Run(context.Background(), spec, Options{Workers: 2, ShardSize: 4, ManifestPath: manifest})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("shard-size change: err = %v, want fingerprint-mismatch error", err)
	}

	// A corrupt manifest is an error, not silently ignored.
	if err := os.WriteFile(manifest, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), spec, Options{Workers: 2, ManifestPath: manifest})
	if err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Fatalf("corrupt manifest: err = %v, want corrupt-manifest error", err)
	}
}

// TestRunUnknownWorkload: a spec naming a workload the registry does not
// have fails before any simulation.
func TestRunUnknownWorkload(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "nope", "budget": 1000, "workloads": ["spice"],
		"grids": [{"family": "btb"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{}); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
}

// TestStorageBitsAcrossFamilies pins the cross-family pricing rule:
// btb-family points are priced as their own geometry, target-cache
// points as baseline BTB plus the cache.
func TestStorageBitsAcrossFamilies(t *testing.T) {
	baseline := 256 * 4 * (32 + 3 + 22 + 2 + 1) // default 256x4 BTB
	tests := []struct {
		p    Point
		want int
	}{
		{Point{Workload: "perl", Family: "btb", Scheme: "default", Entries: 1024, Ways: 4}, baseline},
		{Point{Workload: "perl", Family: "btb", Scheme: "2bit", Entries: 1024, Ways: 4}, 256 * 4 * (32 + 3 + 22 + 2 + 1 + 2)},
		{Point{Workload: "perl", Family: "tagless", Scheme: "gshare", Entries: 512, HistBits: 9, History: "pattern"}, baseline + 512*32},
		{Point{Workload: "perl", Family: "tagged", Scheme: "xor", Entries: 256, Ways: 4, HistBits: 9, TagBits: 32, History: "pattern"}, baseline + 256*(32+32+2+1)},
		{Point{Workload: "perl", Family: "cascaded", Scheme: "filtered", Stage1: 128, Entries: 256, Ways: 4, HistBits: 9, TagBits: 32, History: "pattern"}, baseline + 128*32 + 256*(32+32+2+1)},
		{Point{Workload: "perl", Family: "ittage", Stage1: 256, Entries: 128, Tables: 5, TagBits: 9, HistBits: 64, History: "pattern"}, baseline + 256*32 + 5*128*(32+9+2+2+1)},
	}
	for _, tt := range tests {
		got, err := tt.p.StorageBits()
		if err != nil {
			t.Errorf("%s: %v", tt.p.Key(), err)
			continue
		}
		if got != tt.want {
			t.Errorf("%s: StorageBits = %d, want %d", tt.p.Key(), got, tt.want)
		}
	}
}
