package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfstore"
	"repro/internal/perfstore/perfserver"
)

// newRealServer spins up a full store+handler stack.
func newRealServer(t *testing.T) (*perfstore.Store, *httptest.Server) {
	t.Helper()
	store, err := perfstore.Open(t.TempDir(), perfstore.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(perfserver.New(store, perfserver.Config{}).Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {} // tests never really wait
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testUpload(i byte) Upload {
	return Upload{
		Kind:       "benchjson",
		Machine:    "m1",
		Commit:     fmt.Sprintf("c%d", i),
		Experiment: "table2",
		Body:       []byte(fmt.Sprintf(`{"table2":{"wall_ms":%d}}`, 100+int(i))),
	}
}

func TestUploadHappyPath(t *testing.T) {
	store, ts := newRealServer(t)
	c := newClient(t, Config{BaseURL: ts.URL})
	res, err := c.Do(context.Background(), testUpload(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID == "" || res.Duplicate || res.Attempts != 1 || res.Spooled {
		t.Fatalf("result: %+v", res)
	}
	if _, body, err := store.Get(res.ID); err != nil || !bytes.Equal(body, testUpload(0).Body) {
		t.Fatalf("stored body mismatch: %v", err)
	}
}

// TestRetryAfter429 fronts the real server with a gate that sheds the
// first two attempts; the client must honor Retry-After and then land the
// upload exactly once.
func TestRetryAfter429(t *testing.T) {
	store, real := newRealServer(t)
	var rejected atomic.Int64
	var waits []time.Duration
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		req, _ := http.NewRequest(r.Method, real.URL+r.URL.String(), r.Body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), 502)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer gate.Close()

	c := newClient(t, Config{
		BaseURL: gate.URL,
		Sleep:   func(d time.Duration) { waits = append(waits, d) },
	})
	res, err := c.Do(context.Background(), testUpload(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 || res.Duplicate {
		t.Fatalf("result: %+v", res)
	}
	if len(waits) != 2 {
		t.Fatalf("waited %d times, want 2", len(waits))
	}
	for _, d := range waits {
		if d < 2*time.Second {
			t.Fatalf("backoff %v shorter than Retry-After 2s", d)
		}
	}
	if st := store.Stats(); st.Records != 1 {
		t.Fatalf("rows after retries: %+v", st)
	}
}

// TestRetryNoDuplicateAfterCommittedFailure covers the ambiguous-ack
// window: the server commits the row but the response is lost. The retry
// must return duplicate=true and leave exactly one row.
func TestRetryNoDuplicateAfterCommittedFailure(t *testing.T) {
	store, real := newRealServer(t)
	var calls atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, _ := http.NewRequest(r.Method, real.URL+r.URL.String(), r.Body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), 502)
			return
		}
		defer resp.Body.Close()
		if calls.Add(1) == 1 {
			// The store committed, but the client sees a 500.
			http.Error(w, "injected: response lost", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer gate.Close()

	c := newClient(t, Config{BaseURL: gate.URL})
	res, err := c.Do(context.Background(), testUpload(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.Attempts != 2 {
		t.Fatalf("result: %+v, want duplicate on attempt 2", res)
	}
	if st := store.Stats(); st.Records != 1 {
		t.Fatalf("rows: %+v, want exactly 1", st)
	}
}

// TestRetryConnectionReset kills the TCP connection mid-request for the
// first attempts, then lets the upload through.
func TestRetryConnectionReset(t *testing.T) {
	store, real := newRealServer(t)
	var calls atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // connection reset from the client's view
			return
		}
		req, _ := http.NewRequest(r.Method, real.URL+r.URL.String(), r.Body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), 502)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer gate.Close()

	c := newClient(t, Config{BaseURL: gate.URL})
	res, err := c.Do(context.Background(), testUpload(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", res.Attempts)
	}
	if st := store.Stats(); st.Records != 1 {
		t.Fatalf("rows: %+v", st)
	}
}

// TestRetryTimeout drives the client into its per-request timeout.
func TestRetryTimeout(t *testing.T) {
	var calls atomic.Int64
	store, real := newRealServer(t)
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // beyond the client timeout
			return
		}
		req, _ := http.NewRequest(r.Method, real.URL+r.URL.String(), r.Body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), 502)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer gate.Close()

	c := newClient(t, Config{
		BaseURL:    gate.URL,
		HTTPClient: &http.Client{Timeout: 50 * time.Millisecond},
	})
	res, err := c.Do(context.Background(), testUpload(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", res.Attempts)
	}
	if st := store.Stats(); st.Records != 1 {
		t.Fatalf("rows: %+v", st)
	}
}

func TestPermanentRejectionDoesNotRetryOrSpool(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()
	outbox := t.TempDir()
	c := newClient(t, Config{BaseURL: ts.URL, Outbox: outbox})
	if _, err := c.Do(context.Background(), testUpload(5)); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
	if entries, _ := os.ReadDir(outbox); len(entries) != 0 {
		t.Fatalf("4xx was spooled: %v", entries)
	}
}

func TestBoundedAttemptsThenError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 3})
	if _, err := c.Do(context.Background(), testUpload(6)); err == nil {
		t.Fatal("exhausted retries did not error")
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts: %d, want 3", calls.Load())
	}
}

// TestOutboxSpoolAndFlush exercises the offline path end to end: the
// server is unreachable, the upload spools; once the server is back,
// FlushOutbox delivers it and empties the spool.
func TestOutboxSpoolAndFlush(t *testing.T) {
	outbox := t.TempDir()
	// Point at a port nothing listens on.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	c := newClient(t, Config{BaseURL: dead.URL, MaxAttempts: 2, Outbox: outbox})
	up := testUpload(7)
	res, err := c.Do(context.Background(), up)
	if err != nil {
		t.Fatalf("spooling path errored: %v", err)
	}
	if !res.Spooled || res.SpoolPath == "" {
		t.Fatalf("result: %+v, want spooled", res)
	}
	if _, err := os.Stat(res.SpoolPath); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(res.SpoolPath), perfstore.ContentID(up.Kind, up.Machine, up.Commit, up.Experiment, up.Body)) {
		t.Fatalf("spool file not named by content hash: %s", res.SpoolPath)
	}

	// Server comes back; same outbox, working base URL.
	store, ts := newRealServer(t)
	c2 := newClient(t, Config{BaseURL: ts.URL, Outbox: outbox})
	sent, remaining, err := c2.FlushOutbox(context.Background())
	if err != nil || sent != 1 || remaining != 0 {
		t.Fatalf("flush: sent=%d remaining=%d err=%v", sent, remaining, err)
	}
	if entries, _ := os.ReadDir(outbox); len(entries) != 0 {
		t.Fatalf("outbox not emptied: %v", entries)
	}
	if st := store.Stats(); st.Records != 1 {
		t.Fatalf("rows after flush: %+v", st)
	}
	// Double flush is a no-op.
	if sent, remaining, err := c2.FlushOutbox(context.Background()); err != nil || sent != 0 || remaining != 0 {
		t.Fatalf("second flush: sent=%d remaining=%d err=%v", sent, remaining, err)
	}
}

func TestFlushOutboxKeepsUndeliverable(t *testing.T) {
	outbox := t.TempDir()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	c := newClient(t, Config{BaseURL: dead.URL, MaxAttempts: 1, Outbox: outbox})
	if res, err := c.Do(context.Background(), testUpload(8)); err != nil || !res.Spooled {
		t.Fatalf("spool: %+v err=%v", res, err)
	}
	// Still down: flush keeps the file and reports it.
	sent, remaining, err := c.FlushOutbox(context.Background())
	if sent != 0 || remaining != 1 || err == nil {
		t.Fatalf("flush against dead server: sent=%d remaining=%d err=%v", sent, remaining, err)
	}
}

func TestBackoffGrowsAndJitters(t *testing.T) {
	c := newClient(t, Config{BaseURL: "http://x", BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Rand: func() float64 { return 0.5 }})
	prev := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		d := c.backoff(attempt, 0)
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: backoff %v out of range", attempt, d)
		}
		if attempt <= 3 && d <= prev {
			t.Fatalf("attempt %d: backoff %v did not grow past %v", attempt, d, prev)
		}
		prev = d
	}
	// Retry-After floors the delay.
	if d := c.backoff(1, 3*time.Second); d < 3*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}

func TestFingerprintIsValidField(t *testing.T) {
	fp := Fingerprint()
	if fp == "" || strings.ContainsAny(fp, " \t\n") {
		t.Fatalf("fingerprint %q", fp)
	}
	// It must be usable as an upload field end to end.
	_, ts := newRealServer(t)
	c := newClient(t, Config{BaseURL: ts.URL})
	up := testUpload(9)
	up.Machine = fp
	if res, err := c.Do(context.Background(), up); err != nil || res.ID == "" {
		t.Fatalf("upload with fingerprint machine: %+v err=%v", res, err)
	}
}

func TestQueryAndRecordHelpers(t *testing.T) {
	_, ts := newRealServer(t)
	c := newClient(t, Config{BaseURL: ts.URL})
	up := testUpload(1)
	res, err := c.Do(context.Background(), up)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := c.Query(context.Background(), perfstore.Query{Kind: "benchjson"})
	if err != nil || len(metas) != 1 || metas[0].ID != res.ID {
		t.Fatalf("query: %+v err=%v", metas, err)
	}
	body, err := c.Record(context.Background(), res.ID)
	if err != nil || !bytes.Equal(body, up.Body) {
		t.Fatalf("record: %q err=%v", body, err)
	}
}
