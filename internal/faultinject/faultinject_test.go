package faultinject

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
)

// The tests run a small real slice of the experiment suite under each
// fault class and hold it to the runner's contract: the suite completes,
// exactly the affected rows render ERR, the failure digest names the
// faulty cells, and everything untouched is byte-identical to a healthy
// run at any worker count.

func testParams(parallel int) bench.Params {
	p := bench.DefaultParams()
	p.AccuracyBudget = 50_000
	p.TimingBudget = 20_000
	p.Parallel = parallel
	return p
}

func experiments(t *testing.T, ids ...string) []*bench.Experiment {
	t.Helper()
	var out []*bench.Experiment
	for _, id := range ids {
		e, err := bench.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func runSuite(t *testing.T, exps []*bench.Experiment, parallel int) (*bench.SuiteResult, string) {
	t.Helper()
	var buf bytes.Buffer
	res, err := bench.RunSuite(context.Background(), bench.SuiteOptions{
		Experiments: exps,
		Params:      testParams(parallel),
		Format:      "text",
		Out:         &buf,
	})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	return res, buf.String()
}

// filterLines drops every line containing any of the markers, leaving the
// lines a fault must not have touched.
func filterLines(s string, markers ...string) []string {
	var out []string
line:
	for _, l := range strings.Split(s, "\n") {
		for _, m := range markers {
			if strings.Contains(l, m) {
				continue line
			}
		}
		out = append(out, l)
	}
	return out
}

// assertHealthyRowsIntact compares the faulty output to the healthy one
// with all fault-marked lines removed: what remains must be identical, or
// the fault leaked into unrelated cells.
func assertHealthyRowsIntact(t *testing.T, healthy, faulty string, markers ...string) {
	t.Helper()
	h := filterLines(healthy, markers...)
	f := filterLines(faulty, append([]string{"ERR"}, markers...)...)
	if len(h) != len(f) {
		t.Fatalf("healthy rows changed shape: %d healthy lines vs %d faulty lines (markers %v)", len(h), len(f), markers)
	}
	for i := range h {
		if h[i] != f[i] {
			t.Fatalf("healthy row changed under fault:\n  healthy: %q\n  faulty:  %q", h[i], f[i])
		}
	}
}

func TestPanicInCellIsIsolated(t *testing.T) {
	exps := experiments(t, "table2", "cbt")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{PanicCells: map[string]string{"table2/gcc/btb-default": "injected panic"}}
	restore := plan.Install()
	defer restore()

	res, out1 := runSuite(t, exps, 1)
	_, out8 := runSuite(t, exps, 8)

	if out1 != out8 {
		t.Error("faulty output differs between 1 and 8 workers")
	}
	if len(plan.Triggered()) == 0 {
		t.Fatal("the fault never fired")
	}
	if len(res.Failures) != 1 {
		t.Fatalf("got %d failures, want exactly the injected one: %v", len(res.Failures), res.Failures)
	}
	ce := res.Failures[0]
	if ce.CellLabel() != "table2/gcc/btb-default" {
		t.Errorf("failure label %q, want table2/gcc/btb-default", ce.CellLabel())
	}
	if ce.Stack == "" {
		t.Error("a raw panic must carry a stack trace")
	}
	if !strings.Contains(out1, "ERR") {
		t.Error("affected row did not render ERR")
	}
	if digest := res.Digest(); !strings.Contains(digest, "table2/gcc/btb-default") {
		t.Errorf("digest does not name the failed cell: %q", digest)
	}
	// Only the gcc row of table2 may change; cbt and every other table2
	// row must be untouched.
	assertHealthyRowsIntact(t, healthy, out1, "gcc")
}

func TestCorruptReplayIsIsolated(t *testing.T) {
	exps := experiments(t, "table2", "cbt")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{CorruptReplays: map[string]Corruption{"perl": {Offset: 1024, Length: 16}}}
	restore := plan.Install()
	defer restore()

	res, out1 := runSuite(t, exps, 1)
	_, out8 := runSuite(t, exps, 8)

	if out1 != out8 {
		t.Error("faulty output differs between 1 and 8 workers")
	}
	if len(res.Failures) == 0 {
		t.Fatal("corrupt replay produced no failures")
	}
	for _, ce := range res.Failures {
		if ce.Workload != "perl" {
			t.Errorf("failure %v names workload %q, want perl only", ce, ce.Workload)
		}
		if !errors.Is(ce.Err, trace.ErrCorrupt) {
			t.Errorf("failure %v does not wrap trace.ErrCorrupt", ce)
		}
	}
	assertHealthyRowsIntact(t, healthy, out1, "perl")
}

func TestTruncatedReplayIsIsolated(t *testing.T) {
	exps := experiments(t, "table2")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{TruncateReplays: map[string]int{"gcc": 64}}
	restore := plan.Install()
	defer restore()

	res, out := runSuite(t, exps, 4)
	if len(res.Failures) == 0 {
		t.Fatal("truncated replay produced no failures")
	}
	for _, ce := range res.Failures {
		if ce.Workload != "gcc" {
			t.Errorf("failure %v names workload %q, want gcc only", ce, ce.Workload)
		}
		if !errors.Is(ce.Err, trace.ErrCorrupt) {
			t.Errorf("failure %v does not wrap trace.ErrCorrupt", ce)
		}
		if !strings.Contains(ce.Err.Error(), "truncated") {
			t.Errorf("failure %v does not identify truncation", ce)
		}
	}
	assertHealthyRowsIntact(t, healthy, out, "gcc")
}

func TestDelayedCellsDoNotChangeOutput(t *testing.T) {
	exps := experiments(t, "table2", "cbt")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{DelayCells: map[string]time.Duration{
		"table2/compress/btb-default": 30 * time.Millisecond,
		"cbt/perl/cbt-stale":          30 * time.Millisecond,
	}}
	restore := plan.Install()
	defer restore()

	res, out := runSuite(t, exps, 8)
	if len(plan.Triggered()) == 0 {
		t.Fatal("the delays never fired")
	}
	if len(res.Failures) != 0 {
		t.Fatalf("delays must not fail cells: %v", res.Failures)
	}
	if out != healthy {
		t.Error("delayed run's output differs from the healthy run")
	}
}

// TestCombinedFaultsSuiteSurvives is the issue's acceptance scenario: a
// panic in one cell plus a corrupted replay for one workload, across the
// whole sub-suite, at two worker counts.
func TestCombinedFaultsSuiteSurvives(t *testing.T) {
	exps := experiments(t, "table1", "table2", "cbt")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{
		PanicCells:     map[string]string{"table2/go/btb-2bit": "injected panic"},
		CorruptReplays: map[string]Corruption{"perl": {Offset: 2048, Length: 16}},
	}
	restore := plan.Install()
	defer restore()

	res, out1 := runSuite(t, exps, 1)
	_, out8 := runSuite(t, exps, 8)

	if out1 != out8 {
		t.Error("faulty output differs between 1 and 8 workers")
	}
	if res.Completed != len(exps) {
		t.Fatalf("suite completed %d of %d experiments", res.Completed, len(exps))
	}
	var panics, corrupts int
	for _, ce := range res.Failures {
		switch {
		case ce.CellLabel() == "table2/go/btb-2bit":
			panics++
		case ce.Workload == "perl" && errors.Is(ce.Err, trace.ErrCorrupt):
			corrupts++
		default:
			t.Errorf("unexpected failure: %v", ce)
		}
	}
	if panics != 1 || corrupts == 0 {
		t.Fatalf("failures: %d panic(s), %d corrupt(s); want 1 and >=1", panics, corrupts)
	}
	if res.Digest() == "" {
		t.Error("a faulty run must produce a non-empty digest (tcsim exits non-zero on it)")
	}
	// Healthy rows: everything not mentioning the panicked row's
	// workload-in-table2 or perl anywhere.
	assertHealthyRowsIntact(t, healthy, out1, "perl", "go ")
}

// TestRestoreStopsInjection proves a plan cannot leak past its restore:
// after restore, the same suite runs healthy again.
func TestRestoreStopsInjection(t *testing.T) {
	exps := experiments(t, "table2")
	_, healthy := runSuite(t, exps, 1)

	plan := &Plan{
		PanicCells:     map[string]string{"table2/gcc/btb-default": "injected panic"},
		CorruptReplays: map[string]Corruption{"perl": {Offset: 512, Length: 16}},
	}
	restore := plan.Install()
	res, _ := runSuite(t, exps, 1)
	if len(res.Failures) == 0 {
		t.Fatal("faults did not fire")
	}
	restore()

	res2, out := runSuite(t, exps, 1)
	if len(res2.Failures) != 0 {
		t.Fatalf("failures after restore: %v", res2.Failures)
	}
	if out != healthy {
		t.Error("post-restore output differs from the original healthy run")
	}
}
