package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The paper's future work, made concrete: "for object oriented programs
// where more indirect branches may be executed, tagged caches should
// provide even greater performance benefits. In the future, we will
// evaluate the performance benefit of target caches for C++ benchmarks."
var cxxExperiment = registerExperiment(&Experiment{
	ID:    "cxx",
	Title: "Future work: target caches on a C++-style virtual-call workload",
	Run: func(p Params) []*stats.Table {
		w, err := workload.ByName("cxx")
		if err != nil {
			panic(err)
		}
		tctx := newTimingContext(p)

		// Virtual-call targets correlate with the *path* of recent call
		// targets (composite object structure), so all variants here use
		// ind-jmp path history; tagged caches can store history beyond
		// the index width in their tags — the paper's conjecture.
		mkPath := func(bits, bitsPerTarget int) func() history.Provider {
			return path(history.PathConfig{
				Bits: bits, BitsPerTarget: bitsPerTarget, AddrBitOffset: 2,
				Filter: history.FilterIndJmp,
			})
		}
		mkTagged := func(ways, histBits int) func() core.TargetCache {
			return func() core.TargetCache {
				return core.NewTagged(core.TaggedConfig{
					Entries: 256, Ways: ways,
					Scheme: core.SchemeHistoryXor, HistBits: histBits,
				})
			}
		}
		variants := []struct {
			name string
			cfg  sim.Config
		}{
			{"tagless gshare (512), path 9x1", tcConfig(taglessGshare(512), mkPath(9, 1))},
			{"tagless gshare (512), path 9x3", tcConfig(taglessGshare(512), mkPath(9, 3))},
			{"tagged xor (256, 4-way), path 9x3", tcConfig(mkTagged(4, 9), mkPath(9, 3))},
			{"tagged xor (256, 4-way), path 16x4", tcConfig(mkTagged(4, 16), mkPath(16, 4))},
			{"tagged xor (256, 16-way), path 24x2", tcConfig(mkTagged(16, 24), mkPath(24, 2))},
			{"ittage, path 64x4", tcConfig(func() core.TargetCache {
				return core.NewITTAGE(core.DefaultITTAGEConfig())
			}, mkPath(64, 4))},
		}

		g := newCellGroup(p)
		warmBaselines(g, tctx, []*workload.Workload{w})
		baseRate := cell(g, cid(w, "btb"), func(p Params) float64 {
			return runAccuracy(w, p, sim.DefaultConfig()).IndirectMispredictRate()
		})
		accs := make([]*slot[float64], len(variants))
		reds := make([]*slot[float64], len(variants))
		for i, v := range variants {
			accs[i] = cell(g, cid(w, v.name+"/accuracy"), func(p Params) float64 {
				return runAccuracy(w, p, v.cfg).IndirectMispredictRate()
			})
			reds[i] = cell(g, cid(w, v.name+"/timing"), func(p Params) float64 { return tctx.reduction(p, w, v.cfg) })
		}
		g.run()

		t := stats.NewTable(
			"C++-style workload (virtual calls through vtables): misprediction and execution time",
			"Predictor", "ind mispred", "time saved")
		t.AddRow("BTB (1K, 4-way)", pctCell(baseRate), "-")
		for i, v := range variants {
			t.AddRow(v.name, pctCell(accs[i]), pctCell(reds[i]))
		}
		t.AddNote("paper conclusion: for OO programs, tagged caches should provide even greater benefits")
		t.AddNote("tags hold history beyond the index width: the 16-way/24-bit tagged cache and ITTAGE exploit it")
		return g.finish([]*stats.Table{t})
	},
})

// Follow-up designs that grew out of this paper: the cascaded predictor
// (Driesen & Hölzle 1998) and an ITTAGE-style predictor (Seznec 2011),
// compared on all nine workloads against the paper's structures.
var followupsExperiment = registerExperiment(&Experiment{
	ID:    "followups",
	Title: "Lineage: target cache vs cascaded predictor vs ITTAGE-style (misprediction rate)",
	Run: func(p Params) []*stats.Table {
		tcCfg := tcConfig(func() core.TargetCache {
			return core.NewTagged(core.TaggedConfig{
				Entries: 256, Ways: 4, Scheme: core.SchemeHistoryXor, HistBits: 9,
			})
		}, pattern(9))
		hybridCfg := tcConfig(func() core.TargetCache {
			return core.DefaultChooser()
		}, pattern(9))
		cascCfg := tcConfig(func() core.TargetCache {
			return core.NewCascaded(core.DefaultCascadedConfig())
		}, pattern(9))
		ittageCfg := tcConfig(func() core.TargetCache {
			return core.NewITTAGE(core.DefaultITTAGEConfig())
		}, path(history.PathConfig{
			Bits: 64, BitsPerTarget: 1, AddrBitOffset: 2,
			Filter: history.FilterControl,
		}))

		ws := workload.All()
		ws = append(ws, workload.Extras()...)
		configs := []sim.Config{sim.DefaultConfig(), tcCfg, hybridCfg, cascCfg, ittageCfg}
		cfgNames := []string{"btb", "target-cache", "hybrid", "cascaded", "ittage"}
		g := newCellGroup(p)
		rates := make([][]*slot[float64], len(ws))
		for i, w := range ws {
			rates[i] = make([]*slot[float64], len(configs))
			for j, cfg := range configs {
				rates[i][j] = cell(g, cid(w, cfgNames[j]), func(p Params) float64 {
					return runAccuracy(w, p, cfg).IndirectMispredictRate()
				})
			}
		}
		g.run()
		t := stats.NewTable(
			"Indirect-jump misprediction rate (all with 1K 4-way BTB front end)",
			"Benchmark", "BTB only", "target cache", "hybrid", "cascaded", "ittage")
		for i, w := range ws {
			row := []string{w.Name}
			for j := range configs {
				row = append(row, pctCell(rates[i][j]))
			}
			t.AddRow(row...)
		}
		t.AddNote("hybrid = last-target + tagged cache with a 2-bit meta chooser; cascaded = filtered 2-stage (Driesen & Hölzle); ittage = geometric-history tables (Seznec)")
		return g.finish([]*stats.Table{t})
	},
})

// Wrong-path execution: the event-driven model can fetch and execute real
// speculative instructions after each misprediction (vm-backed workloads
// expose checkpoint/rollback), so mispredicted indirect jumps also pollute
// the data cache. This experiment measures whether the paper's headline —
// the target cache's execution-time reduction — survives that added
// fidelity.
//
// These cells deliberately bypass the trace memo: wrong-path fetch needs a
// live VM (checkpoint/rollback through cpu.WrongPathFetcher), which a
// replay cursor cannot provide. Each cell opens its own VM instance, so
// the cells stay independent and race-free.
var wrongPathExperiment = registerExperiment(&Experiment{
	ID:    "wrongpath",
	Title: "Ablation: wrong-path fetch modeling (event-driven model)",
	Run: func(p Params) []*stats.Table {
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		ws := workload.PerlGcc()
		type wpCell struct{ baseClean, tcClean, baseWP, tcWP *slot[cpu.Result] }
		g := newCellGroup(p)
		cells := make([]wpCell, len(ws))
		for i, w := range ws {
			run := func(p Params, cfg sim.Config, wrongPath bool) cpu.Result {
				col := p.startCollector()
				defer p.mergeCollector(col)
				cfg.Telemetry = col
				mc := cpu.DefaultConfig()
				mc.ModelWrongPath = wrongPath
				res := cpu.NewEvent(mc, sim.NewEngine(cfg)).RunCtx(p.Context(), w.Open(), p.TimingBudget)
				instructionsSim.Add(res.Instructions)
				if res.Err != nil {
					abortCell(res.Err)
				}
				return res
			}
			cells[i] = wpCell{
				baseClean: cell(g, cid(w, "btb"), func(p Params) cpu.Result { return run(p, sim.DefaultConfig(), false) }),
				tcClean:   cell(g, cid(w, "tc"), func(p Params) cpu.Result { return run(p, tcCfg, false) }),
				baseWP:    cell(g, cid(w, "btb-wrongpath"), func(p Params) cpu.Result { return run(p, sim.DefaultConfig(), true) }),
				tcWP:      cell(g, cid(w, "tc-wrongpath"), func(p Params) cpu.Result { return run(p, tcCfg, true) }),
			}
		}
		g.run()
		// Each column needs two cells; an ERR in either blanks just that
		// column.
		redCol := func(a, b *slot[cpu.Result]) string {
			if !a.ok() || !b.ok() {
				return "ERR"
			}
			return pct(stats.Reduction(float64(a.val.Cycles), float64(b.val.Cycles)))
		}
		t := stats.NewTable(
			"Execution-time reduction with and without wrong-path fetch (event model)",
			"Benchmark", "reduction (no wrong path)", "reduction (wrong path)",
			"extra dcache accesses")
		for i, w := range ws {
			c := cells[i]
			extra := "ERR"
			if c.baseWP.ok() && c.baseClean.ok() {
				extra = pct(float64(c.baseWP.val.DCacheAccesses)/float64(c.baseClean.val.DCacheAccesses) - 1)
			}
			t.AddRow(w.Name,
				redCol(c.baseClean, c.tcClean),
				redCol(c.baseWP, c.tcWP),
				extra)
		}
		t.AddNote("wrong-path loads use the speculative machine's real addresses (VM checkpoint/rollback)")
		return g.finish([]*stats.Table{t})
	},
})

// Context switches wipe predictor state; this ablation resets the whole
// front end every N instructions and reports the indirect misprediction
// rate, quantifying how much of the target cache's advantage survives
// frequent switching (a standard objection to history-based predictors).
var contextSwitchExperiment = registerExperiment(&Experiment{
	ID:    "context-switch",
	Title: "Ablation: predictor flush interval vs indirect misprediction rate",
	Run: func(p Params) []*stats.Table {
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		ws := workload.PerlGcc()
		intervals := []int64{0, 1_000_000, 100_000, 10_000, 1_000}
		type csCell struct{ base, tc *slot[float64] }
		g := newCellGroup(p)
		cells := make([][]csCell, len(ws))
		for i, w := range ws {
			cells[i] = make([]csCell, len(intervals))
			for j, interval := range intervals {
				cells[i][j] = csCell{
					base: cell(g, cid(w, fmt.Sprintf("btb/flush-%d", interval)), func(p Params) float64 {
						return runAccuracyFlushes(w, p, interval, sim.DefaultConfig()).IndirectMispredictRate()
					}),
					tc: cell(g, cid(w, fmt.Sprintf("tc/flush-%d", interval)), func(p Params) float64 {
						return runAccuracyFlushes(w, p, interval, tcCfg).IndirectMispredictRate()
					}),
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Context switches (%s): flush interval vs indirect misprediction", w.Name),
				"flush every", "BTB", "target cache")
			for j, interval := range intervals {
				label := "never"
				if interval > 0 {
					label = fmt.Sprintf("%d instr", interval)
				}
				t.AddRow(label, pctCell(cells[i][j].base), pctCell(cells[i][j].tc))
			}
			t.AddNote("a history-indexed cache must re-learn one entry per (jump, history) pair after each flush")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// The paper handles returns with a return address stack rather than the
// target cache ("they are effectively handled with the return address
// stack"); this ablation quantifies that choice: how deep must the RAS be
// before return mispredictions vanish on recursion-heavy workloads?
var rasExperiment = registerExperiment(&Experiment{
	ID:    "ras",
	Title: "Ablation: return address stack depth vs return misprediction rate",
	Run: func(p Params) []*stats.Table {
		names := []string{"xlisp", "gosearch", "perl"}
		depths := []int{1, 2, 4, 8, 16, 32, 64}
		g := newCellGroup(p)
		rates := make([][]*slot[float64], len(depths))
		for i, depth := range depths {
			rates[i] = make([]*slot[float64], len(names))
			for j, name := range names {
				w, err := workload.ByName(name)
				if err != nil {
					panic(err)
				}
				rates[i][j] = cell(g, cid(w, fmt.Sprintf("ras-%d", depth)), func(p Params) float64 {
					cfg := sim.DefaultConfig()
					cfg.RASDepth = depth
					return runAccuracy(w, p, cfg).Returns.MispredictRate()
				})
			}
		}
		g.run()
		t := stats.NewTable(
			"Return misprediction rate by RAS depth",
			append([]string{"RAS depth"}, names...)...)
		for i, depth := range depths {
			row := []string{fmt.Sprintf("%d", depth)}
			for j := range names {
				row = append(row, pctCell(rates[i][j]))
			}
			t.AddRow(row...)
		}
		t.AddNote("the paper's decision to exclude returns from the target cache presumes a deep-enough RAS")
		return g.finish([]*stats.Table{t})
	},
})

// Sensitivity of the target cache's benefit to machine aggressiveness —
// the paper's introduction in experiment form: "as the issue rate and
// pipeline depth of high performance superscalar processors increase, the
// amount of speculative work issued also increases", so better indirect
// prediction matters more on wider, deeper machines.
var sensitivityExperiment = registerExperiment(&Experiment{
	ID:    "sensitivity",
	Title: "Ablation: execution-time reduction vs machine aggressiveness",
	Run: func(p Params) []*stats.Table {
		machines := []struct {
			name   string
			mutate func(*cpu.Config)
		}{
			{"2-wide, 32-window, depth 3", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 2, 32, 3
			}},
			{"4-wide, 64-window, depth 4", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 4, 64, 4
			}},
			{"8-wide, 128-window, depth 5 (paper)", func(c *cpu.Config) {}},
			{"16-wide, 256-window, depth 8", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 16, 256, 8
			}},
			{"16-wide, 256-window, depth 14", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 16, 256, 14
			}},
		}
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		ws := workload.PerlGcc()
		type sensCell struct{ base, tc *slot[cpu.Result] }
		g := newCellGroup(p)
		cells := make([][]sensCell, len(ws))
		for i, w := range ws {
			cells[i] = make([]sensCell, len(machines))
			for j, m := range machines {
				machineCfg := cpu.DefaultConfig()
				m.mutate(&machineCfg)
				cells[i][j] = sensCell{
					base: cell(g, cid(w, fmt.Sprintf("machine%d/btb", j)), func(p Params) cpu.Result {
						return runTiming(w, p, sim.DefaultConfig(), machineCfg)
					}),
					tc: cell(g, cid(w, fmt.Sprintf("machine%d/tc", j)), func(p Params) cpu.Result {
						return runTiming(w, p, tcCfg, machineCfg)
					}),
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Sensitivity (%s): target-cache benefit by machine", w.Name),
				"machine", "base IPC", "tc IPC", "time saved", "mispredict stall share")
			for j, m := range machines {
				c := cells[i][j]
				if !c.base.ok() || !c.tc.ok() {
					row := append([]string{m.name}, errRow(4)...)
					if c.base.ok() {
						row[1] = fmt.Sprintf("%.2f", c.base.val.IPC())
						row[4] = pct(float64(c.base.val.MispredictStallCycles) / float64(c.base.val.Cycles))
					} else if c.tc.ok() {
						row[2] = fmt.Sprintf("%.2f", c.tc.val.IPC())
					}
					t.AddRow(row...)
					continue
				}
				base, tc := c.base.val, c.tc.val
				t.AddRow(m.name,
					fmt.Sprintf("%.2f", base.IPC()),
					fmt.Sprintf("%.2f", tc.IPC()),
					pct(stats.Reduction(float64(base.Cycles), float64(tc.Cycles))),
					pct(float64(base.MispredictStallCycles)/float64(base.Cycles)))
			}
			t.AddNote("paper intro: wider/deeper machines lose more to indirect-jump mispredictions")
			out = append(out, t)
		}
		return g.finish(out)
	},
})
