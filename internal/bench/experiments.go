package bench

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/cbt"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Every experiment below follows the same shape: enqueue one cell per
// independent simulation (a pure function of a memoized trace replay and a
// predictor config), run the group on the bounded worker pool, then render
// the tables serially from the result slots in enqueue order — which keeps
// the output byte-identical to serial execution.

// Table 1: per-benchmark counts and the baseline BTB's indirect-jump
// misprediction rate.
var table1 = registerExperiment(&Experiment{
	ID:    "table1",
	Title: "Table 1: benchmark characteristics and BTB indirect-jump misprediction rates",
	Run: func(p Params) []*stats.Table {
		ws := workload.All()
		type t1cell struct {
			res    sim.AccuracyResult
			static int
		}
		g := newCellGroup(p)
		cells := make([]*slot[t1cell], len(ws))
		for i, w := range ws {
			cells[i] = cell(g, cid(w, "btb"), func(p Params) t1cell {
				return t1cell{
					res:    runAccuracy(w, p, sim.DefaultConfig()),
					static: runTraceStats(w, p).StaticIndJumps(),
				}
			})
		}
		g.run()
		t := stats.NewTable(
			"Table 1: 1K-entry 4-way BTB, default update strategy",
			"Benchmark", "#Instructions", "#Branches", "#Ind Jumps",
			"Static Ind", "Ind. Jump Mispred. Rate")
		for i, w := range ws {
			if !cells[i].ok() {
				t.AddRow(append([]string{w.Name}, errRow(5)...)...)
				continue
			}
			res := cells[i].val.res
			t.AddRow(w.Name,
				fmt.Sprintf("%d", res.Instructions),
				fmt.Sprintf("%d", res.Branches),
				fmt.Sprintf("%d", res.Indirect.Predictions),
				fmt.Sprintf("%d", cells[i].val.static),
				pct(res.IndirectMispredictRate()))
		}
		t.AddNote("paper: gcc 66.0%% and perl 76.4%% — the two benchmarks with significant indirect jumps")
		return g.finish([]*stats.Table{t})
	},
})

// Figures 1-8: number of distinct dynamic targets per static indirect jump.
var figures1to8 = registerExperiment(&Experiment{
	ID:    "figures1-8",
	Title: "Figures 1-8: number of targets per indirect jump",
	Run: func(p Params) []*stats.Table {
		ws := workload.All()
		g := newCellGroup(p)
		cells := make([]*slot[*trace.Stats], len(ws))
		for i, w := range ws {
			cells[i] = cell(g, cid(w, "trace-stats"), func(p Params) *trace.Stats { return runTraceStats(w, p) })
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			if !cells[i].ok() {
				t := stats.NewTable(
					fmt.Sprintf("Figure %d: targets per indirect jump (%s)", i+1, w.Name),
					"#Targets", "% of static jumps", "% of dynamic jumps")
				t.AddRow(errRow(3)...)
				out = append(out, t)
				continue
			}
			st := cells[i].val
			static := st.TargetHistogram(false)
			dynamic := st.TargetHistogram(true)
			var nStatic, nDynamic int64
			for b := 1; b <= trace.TargetHistogramCap; b++ {
				nStatic += static[b]
				nDynamic += dynamic[b]
			}
			t := stats.NewTable(
				fmt.Sprintf("Figure %d: targets per indirect jump (%s)", i+1, w.Name),
				"#Targets", "% of static jumps", "% of dynamic jumps")
			bar := &stats.BarChart{
				Title: fmt.Sprintf("Figure %d (%s): %% of dynamic indirect jumps by target count", i+1, w.Name),
			}
			for b := 1; b <= trace.TargetHistogramCap; b++ {
				if static[b] == 0 && dynamic[b] == 0 {
					continue
				}
				label := fmt.Sprintf("%d", b)
				if b == trace.TargetHistogramCap {
					label = fmt.Sprintf(">=%d", b)
				}
				dynFrac := float64(dynamic[b]) / float64(max64(nDynamic, 1))
				t.AddRow(label,
					pct(float64(static[b])/float64(max64(nStatic, 1))),
					pct(dynFrac))
				bar.Add(label, dynFrac)
			}
			t.Trailer = bar.String()
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Table 2: the Calder & Grunwald 2-bit BTB update strategy versus the
// default strategy.
var table2 = registerExperiment(&Experiment{
	ID:    "table2",
	Title: "Table 2: performance of the 2-bit BTB update strategy",
	Run: func(p Params) []*stats.Table {
		ws := workload.All()
		g := newCellGroup(p)
		defs := make([]*slot[float64], len(ws))
		twos := make([]*slot[float64], len(ws))
		for i, w := range ws {
			defs[i] = cell(g, cid(w, "btb-default"), func(p Params) float64 {
				return runAccuracy(w, p, sim.DefaultConfig()).IndirectMispredictRate()
			})
			twos[i] = cell(g, cid(w, "btb-2bit"), func(p Params) float64 {
				cfg := sim.DefaultConfig()
				cfg.BTB.Strategy = btb.StrategyTwoBit
				return runAccuracy(w, p, cfg).IndirectMispredictRate()
			})
		}
		g.run()
		t := stats.NewTable(
			"Table 2: indirect-jump misprediction rate by BTB update strategy",
			"Benchmark", "BTB", "2-bit BTB")
		for i, w := range ws {
			t.AddRow(w.Name, pctCell(defs[i]), pctCell(twos[i]))
		}
		t.AddNote("paper: the 2-bit strategy helps compress, gcc, ijpeg and perl but hurts m88ksim, vortex and xlisp")
		return g.finish([]*stats.Table{t})
	},
})

// Table 3: instruction classes and latencies (machine configuration echo).
// No simulation cells: the table echoes the configuration.
var table3 = registerExperiment(&Experiment{
	ID:    "table3",
	Title: "Table 3: instruction classes and latencies",
	Run: func(p Params) []*stats.Table {
		cfg := cpu.DefaultConfig()
		t := stats.NewTable("Table 3: instruction classes and latencies",
			"Instruction Class", "Exec. Lat.")
		for _, row := range cfg.LatencyTable() {
			t.AddRow(row[0], row[1])
		}
		t.AddNote("machine: %d-wide issue, %d-instruction window, %dKB %d-way data cache, %d-cycle memory latency",
			cfg.Width, cfg.Window, cfg.DCacheBytes/1024, cfg.DCacheWays, cfg.MemLatency)
		return []*stats.Table{t}
	},
})

// Table 4: tagless target caches indexed with pattern history.
var table4 = registerExperiment(&Experiment{
	ID:    "table4",
	Title: "Table 4: pattern-history tagless target caches (512 entries)",
	Run: func(p Params) []*stats.Table {
		configs := []core.TaglessConfig{
			{Entries: 512, Scheme: core.SchemeGAg},
			{Entries: 512, Scheme: core.SchemeGAs, HistBits: 8, AddrBits: 1},
			{Entries: 512, Scheme: core.SchemeGAs, HistBits: 7, AddrBits: 2},
			{Entries: 512, Scheme: core.SchemeGshare},
		}
		ws := workload.PerlGcc()
		g := newCellGroup(p)
		rates := make([][]*slot[float64], len(configs))
		for i, tcCfg := range configs {
			rates[i] = make([]*slot[float64], len(ws))
			for j, w := range ws {
				rates[i][j] = cell(g, cid(w, tcCfg.Name()), func(p Params) float64 {
					histBits := 9
					if tcCfg.Scheme == core.SchemeGAs {
						histBits = tcCfg.HistBits
					}
					cfg := tcConfig(
						func() core.TargetCache { return core.NewTagless(tcCfg) },
						pattern(histBits))
					return runAccuracy(w, p, cfg).IndirectMispredictRate()
				})
			}
		}
		g.run()
		t := stats.NewTable(
			"Table 4: indirect-jump misprediction rate, 512-entry tagless target caches",
			"Scheme", "perl", "gcc")
		for i, tcCfg := range configs {
			row := []string{tcCfg.Name()}
			// The table's column order is perl, gcc but PerlGcc returns
			// perl first already.
			for j := range ws {
				row = append(row, pctCell(rates[i][j]))
			}
			t.AddRow(row...)
		}
		t.AddNote("paper: gshare wins; a 512-entry target cache achieves 30.4%% (gcc) and 30.9%% (perl)")
		return g.finish([]*stats.Table{t})
	},
})

// warmBaselines enqueues one cell per workload that computes the BTB-only
// timing baseline, so reduction cells spend no pool time blocked on it.
func warmBaselines(g *cellGroup, tctx *timingContext, ws []*workload.Workload) {
	for _, w := range ws {
		g.do(cid(w, "btb-baseline"), func(Params) { tctx.baseline(w) })
	}
}

// Table 5: which target-address bits feed the path history register.
var table5 = registerExperiment(&Experiment{
	ID:    "table5",
	Title: "Table 5: path history — address bit selection (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		ws := workload.PerlGcc()
		offsets := []int{2, 3, 4, 5, 6, 8, 12}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		reds := make([][][]*slot[float64], len(ws))
		for i, w := range ws {
			reds[i] = make([][]*slot[float64], len(offsets))
			for j, offset := range offsets {
				for _, s := range pathSchemes(9, 1, offset) {
					cfg := tcConfig(taglessGshare(512), path(s.Cfg))
					reds[i][j] = append(reds[i][j], cell(g, cid(w, fmt.Sprintf("bit%d/%s", offset, s.Name)), func(p Params) float64 {
						return tctx.reduction(p, w, cfg)
					}))
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Table 5 (%s): reduction in execution time by path-history address bit", w.Name),
				"addr bit", "Per-addr", "branch", "control", "ind jmp", "call/ret")
			for j, offset := range offsets {
				row := []string{fmt.Sprintf("%d", offset)}
				for _, red := range reds[i][j] {
					row = append(row, pctCell(red))
				}
				t.AddRow(row...)
			}
			t.AddNote("paper: the lower address bits provide more information than the higher bits")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Table 6: how many bits of each target enter the path history register.
var table6 = registerExperiment(&Experiment{
	ID:    "table6",
	Title: "Table 6: path history — address bits per branch (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		ws := workload.PerlGcc()
		bitCounts := []int{1, 2, 3}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		reds := make([][][]*slot[float64], len(ws))
		for i, w := range ws {
			reds[i] = make([][]*slot[float64], len(bitCounts))
			for j, bits := range bitCounts {
				for _, s := range pathSchemes(9, bits, 2) {
					cfg := tcConfig(taglessGshare(512), path(s.Cfg))
					reds[i][j] = append(reds[i][j], cell(g, cid(w, fmt.Sprintf("%dbit/%s", bits, s.Name)), func(p Params) float64 {
						return tctx.reduction(p, w, cfg)
					}))
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Table 6 (%s): reduction in execution time by bits recorded per target", w.Name),
				"bits per addr", "Per-addr", "branch", "control", "ind jmp", "call/ret")
			for j, bits := range bitCounts {
				row := []string{fmt.Sprintf("%d", bits)}
				for _, red := range reds[i][j] {
					row = append(row, pctCell(red))
				}
				t.AddRow(row...)
			}
			t.AddNote("paper: with nine history bits, recording more bits per target generally hurts (fewer branches remembered)")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Table 7: tagged target cache indexing schemes across associativity.
var table7 = registerExperiment(&Experiment{
	ID:    "table7",
	Title: "Table 7: tagged target cache indexing schemes (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		schemes := []core.TaggedScheme{
			core.SchemeAddress, core.SchemeHistoryConcat, core.SchemeHistoryXor,
		}
		ws := workload.PerlGcc()
		wayCounts := []int{1, 2, 4, 8, 16, 32, 64}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		reds := make([][][]*slot[float64], len(ws))
		for i, w := range ws {
			reds[i] = make([][]*slot[float64], len(wayCounts))
			for j, ways := range wayCounts {
				for _, scheme := range schemes {
					cfg := tcConfig(func() core.TargetCache {
						return core.NewTagged(core.TaggedConfig{
							Entries: 256, Ways: ways, Scheme: scheme, HistBits: 9,
						})
					}, pattern(9))
					reds[i][j] = append(reds[i][j], cell(g, cid(w, fmt.Sprintf("%dway/scheme%d", ways, scheme)), func(p Params) float64 {
						return tctx.reduction(p, w, cfg)
					}))
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Table 7 (%s): 256-entry tagged target cache, 9 pattern history bits", w.Name),
				"set-assoc.", "Addr", "History Conc", "History Xor")
			for j, ways := range wayCounts {
				row := []string{fmt.Sprintf("%d", ways)}
				for _, red := range reds[i][j] {
					row = append(row, pctCell(red))
				}
				t.AddRow(row...)
			}
			t.AddNote("paper: Address indexing needs high associativity (conflict misses); History Xor does not")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Table 8: tagged target caches indexed with path history.
var table8 = registerExperiment(&Experiment{
	ID:    "table8",
	Title: "Table 8: tagged target caches with 9 path history bits (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		ws := workload.PerlGcc()
		wayCounts := []int{1, 2, 4, 8, 16}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		reds := make([][][]*slot[float64], len(ws))
		for i, w := range ws {
			reds[i] = make([][]*slot[float64], len(wayCounts))
			for j, ways := range wayCounts {
				for _, s := range pathSchemes(9, 1, 2) {
					cfg := tcConfig(func() core.TargetCache {
						return core.NewTagged(core.TaggedConfig{
							Entries: 256, Ways: ways, Scheme: core.SchemeHistoryXor, HistBits: 9,
						})
					}, path(s.Cfg))
					reds[i][j] = append(reds[i][j], cell(g, cid(w, fmt.Sprintf("%dway/%s", ways, s.Name)), func(p Params) float64 {
						return tctx.reduction(p, w, cfg)
					}))
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Table 8 (%s): 256-entry tagged target cache (History Xor), 9 path history bits, 1 bit per target", w.Name),
				"set-assoc.", "Per-addr", "branch", "control", "ind jmp", "call/ret")
			for j, ways := range wayCounts {
				row := []string{fmt.Sprintf("%d", ways)}
				for _, red := range reds[i][j] {
					row = append(row, pctCell(red))
				}
				t.AddRow(row...)
			}
			t.AddNote("paper: pattern history wins for gcc, global path history for perl (perl is an interpreter)")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Table 9: pattern history length for tagged caches (9 vs 16 bits).
var table9 = registerExperiment(&Experiment{
	ID:    "table9",
	Title: "Table 9: tagged target cache, 9 vs 16 pattern history bits (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		ws := workload.PerlGcc()
		wayCounts := []int{1, 2, 4, 8, 16, 32}
		histBits := []int{9, 16}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		reds := make([][][]*slot[float64], len(ws))
		for i, w := range ws {
			reds[i] = make([][]*slot[float64], len(wayCounts))
			for j, ways := range wayCounts {
				for _, bits := range histBits {
					cfg := tcConfig(func() core.TargetCache {
						return core.NewTagged(core.TaggedConfig{
							Entries: 256, Ways: ways, Scheme: core.SchemeHistoryXor, HistBits: bits,
						})
					}, pattern(bits))
					reds[i][j] = append(reds[i][j], cell(g, cid(w, fmt.Sprintf("%dway/%dbits", ways, bits)), func(p Params) float64 {
						return tctx.reduction(p, w, cfg)
					}))
				}
			}
		}
		g.run()
		var out []*stats.Table
		for i, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Table 9 (%s): 256-entry tagged target cache (History Xor)", w.Name),
				"set-assoc.", "9 bits", "16 bits")
			for j, ways := range wayCounts {
				row := []string{fmt.Sprintf("%d", ways)}
				for _, red := range reds[i][j] {
					row = append(row, pctCell(red))
				}
				t.AddRow(row...)
			}
			t.AddNote("paper: more history bits help high-associativity caches and hurt low-associativity ones")
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Figures 12-13: tagless (512 entries) versus tagged (256 entries) across
// set-associativity.
var figures12and13 = registerExperiment(&Experiment{
	ID:    "figures12-13",
	Title: "Figures 12-13: tagged vs tagless target cache (execution-time reduction)",
	Run: func(p Params) []*stats.Table {
		tctx := newTimingContext(p)
		ws := workload.PerlGcc()
		wayCounts := []int{1, 2, 4, 8, 16}
		g := newCellGroup(p)
		warmBaselines(g, tctx, ws)
		taglessReds := make([]*slot[float64], len(ws))
		taggedReds := make([][]*slot[float64], len(ws))
		for i, w := range ws {
			taglessReds[i] = cell(g, cid(w, "tagless-512"), func(p Params) float64 {
				return tctx.reduction(p, w, tcConfig(taglessGshare(512), pattern(9)))
			})
			taggedReds[i] = make([]*slot[float64], len(wayCounts))
			for j, ways := range wayCounts {
				cfg := tcConfig(func() core.TargetCache {
					return core.NewTagged(core.TaggedConfig{
						Entries: 256, Ways: ways, Scheme: core.SchemeHistoryXor, HistBits: 9,
					})
				}, pattern(9))
				taggedReds[i][j] = cell(g, cid(w, fmt.Sprintf("tagged-256/%dway", ways)), func(p Params) float64 {
					return tctx.reduction(p, w, cfg)
				})
			}
		}
		g.run()
		var out []*stats.Table
		for fi, w := range ws {
			t := stats.NewTable(
				fmt.Sprintf("Figure %d (%s): execution-time reduction vs set-associativity", 12+fi, w.Name),
				"set-assoc.", "w/o tags (512-entry)", "w/ tags (256-entry)")
			healthy := taglessReds[fi].ok()
			var xs []string
			var taglessYs, taggedYs []float64
			for j, ways := range wayCounts {
				t.AddRow(fmt.Sprintf("%d", ways),
					pctCell(taglessReds[fi]),
					pctCell(taggedReds[fi][j]))
				if !taggedReds[fi][j].ok() {
					healthy = false
					continue
				}
				xs = append(xs, fmt.Sprintf("%d", ways))
				taglessYs = append(taglessYs, 100*taglessReds[fi].val)
				taggedYs = append(taggedYs, 100*taggedReds[fi][j].val)
			}
			t.AddNote("paper: tagless beats low-associativity tagged; tagged with >=4 ways beats tagless")
			// The ASCII plot only renders when every point exists; with
			// failed cells the ERR rows above carry the information.
			if healthy {
				plot := &stats.Plot{
					Title:  fmt.Sprintf("Figure %d (%s): %% execution-time reduction", 12+fi, w.Name),
					XLabel: "set-associativity",
				}
				plot.AddSeries("w/o tags (512-entry)", xs, taglessYs)
				plot.AddSeries("w/ tags (256-entry)", xs, taggedYs)
				t.Trailer = plot.String()
			}
			out = append(out, t)
		}
		return g.finish(out)
	},
})

// Ablation beyond the paper: global pattern history length sweep on the
// tagless gshare cache (the design dimension Table 9 probes for tagged
// caches).
var ablationHistLen = registerExperiment(&Experiment{
	ID:    "ablation-history",
	Title: "Ablation: tagless gshare history length sweep (misprediction rate)",
	Run: func(p Params) []*stats.Table {
		bitCounts := []int{3, 6, 9, 12, 16}
		ws := workload.PerlGcc()
		g := newCellGroup(p)
		rates := make([][]*slot[float64], len(bitCounts))
		for i, bits := range bitCounts {
			rates[i] = make([]*slot[float64], len(ws))
			for j, w := range ws {
				rates[i][j] = cell(g, cid(w, fmt.Sprintf("gshare-%dbits", bits)), func(p Params) float64 {
					cfg := tcConfig(taglessGshare(512), pattern(bits))
					return runAccuracy(w, p, cfg).IndirectMispredictRate()
				})
			}
		}
		g.run()
		t := stats.NewTable(
			"Ablation: 512-entry tagless gshare, pattern history length",
			"history bits", "perl", "gcc")
		for i, bits := range bitCounts {
			row := []string{fmt.Sprintf("%d", bits)}
			for j := range ws {
				row = append(row, pctCell(rates[i][j]))
			}
			t.AddRow(row...)
		}
		return g.finish([]*stats.Table{t})
	},
})

// Ablation beyond the paper: predictor hardware budget accounting, the
// paper's cost model (Section 4.2). No simulation cells: pure arithmetic.
var budgetTable = registerExperiment(&Experiment{
	ID:    "budget",
	Title: "Cost model: predictor hardware budgets (Section 4.2 accounting)",
	Run: func(p Params) []*stats.Table {
		base := btb.New(btb.DefaultConfig())
		t := stats.NewTable("Predictor storage budgets", "Structure", "bits", "vs BTB")
		t.AddRow("1K-entry 4-way BTB", fmt.Sprintf("%d", base.CostBits()), "100.0%")
		tagless := core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
		t.AddRow("512-entry tagless target cache",
			fmt.Sprintf("%d", tagless.CostBits()),
			pct(float64(tagless.CostBits())/float64(base.CostBits())))
		for _, ways := range []int{1, 4, 16} {
			tagged := core.NewTagged(core.TaggedConfig{
				Entries: 256, Ways: ways, Scheme: core.SchemeHistoryXor, HistBits: 9,
			})
			t.AddRow(fmt.Sprintf("256-entry tagged target cache (%d-way)", ways),
				fmt.Sprintf("%d", tagged.CostBits()),
				pct(float64(tagged.CostBits())/float64(base.CostBits())))
		}
		t.AddNote("paper: the 512-entry tagless cache increases the predictor budget by ~18%%")
		return []*stats.Table{t}
	},
})

// Comparison beyond the paper's tables: the case block table (Section 2
// related work), in oracle and realistic (stale-value) modes, versus BTB
// and target cache.
var cbtComparison = registerExperiment(&Experiment{
	ID:    "cbt",
	Title: "Related work: case block table vs BTB vs target cache (misprediction rate)",
	Run: func(p Params) []*stats.Table {
		ws := workload.All()
		type cbtCell struct{ base, stale, oracle, tc *slot[float64] }
		g := newCellGroup(p)
		cells := make([]cbtCell, len(ws))
		for i, w := range ws {
			cells[i] = cbtCell{
				base: cell(g, cid(w, "btb"), func(p Params) float64 {
					return runAccuracy(w, p, sim.DefaultConfig()).IndirectMispredictRate()
				}),
				stale: cell(g, cid(w, "cbt-stale"), func(p Params) float64 {
					return runCBT(w, p, false)
				}),
				oracle: cell(g, cid(w, "cbt-oracle"), func(p Params) float64 {
					return runCBT(w, p, true)
				}),
				tc: cell(g, cid(w, "target-cache"), func(p Params) float64 {
					return runAccuracy(w, p,
						tcConfig(taglessGshare(512), pattern(9))).IndirectMispredictRate()
				}),
			}
		}
		g.run()
		t := stats.NewTable(
			"Case block table comparison (indirect-jump misprediction rate)",
			"Benchmark", "BTB", "CBT (stale value)", "CBT (oracle)", "target cache (gshare)")
		for i, w := range ws {
			c := cells[i]
			t.AddRow(w.Name, pctCell(c.base), pctCell(c.stale), pctCell(c.oracle), pctCell(c.tc))
		}
		t.AddNote("paper: the oracle CBT needs the dispatch value at fetch, which an out-of-order machine rarely has")
		return g.finish([]*stats.Table{t})
	},
})

// runCBT returns the CBT's indirect-jump misprediction rate on w, reading
// the memoized replay.
func runCBT(w *workload.Workload, p Params, oracle bool) float64 {
	cfg := cbt.DefaultConfig()
	cfg.Oracle = oracle
	c, err := sim.RunCBTCtx(p.Context(), w.ReplayPrefix(p.AccuracyBudget, p.shareBudget()), p.AccuracyBudget, cfg)
	instructionsSim.Add(p.AccuracyBudget)
	if err != nil {
		abortCell(err)
	}
	return c.MispredictRate()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
