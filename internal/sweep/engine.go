package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Result is the outcome of one grid point. Every field is deterministic —
// pure counts, never wall time — so a sweep's result set is byte-identical
// across runs, worker counts and resume boundaries.
type Result struct {
	Point        Point `json:"point"`
	StorageBits  int   `json:"storage_bits"`
	Instructions int64 `json:"instructions"`
	Branches     int64 `json:"branches"`
	// Indirect/IndirectMiss are the paper's headline population: indirect
	// jump and indirect call predictions and mispredictions.
	Indirect     int64 `json:"indirect"`
	IndirectMiss int64 `json:"indirect_miss"`
	// Overall/OverallMiss cover every control-transfer prediction.
	Overall     int64 `json:"overall"`
	OverallMiss int64 `json:"overall_miss"`
	// TCCovered counts indirect jumps the target cache predicted (vs the
	// BTB fallback); always zero for btb-family points.
	TCCovered int64 `json:"tc_covered,omitempty"`
}

// Rate returns the indirect-jump misprediction rate, the frontier's
// accuracy axis.
func (r Result) Rate() float64 {
	if r.Indirect == 0 {
		return 0
	}
	return float64(r.IndirectMiss) / float64(r.Indirect)
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds simulation concurrency; <= 1 runs serially.
	Workers int
	// ShardSize is the number of consecutive points per checkpoint shard
	// (default 32). It participates in the resume fingerprint: the same
	// spec at a different shard size is a different run shape.
	ShardSize int
	// ManifestPath enables crash-safe resume: completed shards are
	// recorded there atomically, and a later run with the same spec and
	// shard size skips them. Empty disables checkpointing.
	ManifestPath string
	// GangWidth bounds how many points one fused trace pass updates:
	// 0 picks a width per gang automatically from a memory budget, 1
	// disables fusion (every point runs its own pass), higher values force
	// that width. Results are byte-identical at any width — the gang
	// kernel is equivalence-pinned against per-point simulation — so the
	// width, like the worker count, is absent from the resume fingerprint.
	GangWidth int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// AfterShard, when non-nil, runs after each shard completes (and its
	// checkpoint, if any, is durable), with the completed and total shard
	// counts. Drivers use it for progress bars and for pacing in
	// interrupt/resume exercises.
	AfterShard func(completed, total int)
}

const defaultShardSize = 32

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return defaultShardSize
	}
	return o.ShardSize
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Outcome is a completed sweep: one Result per expanded point, in
// canonical expansion order.
type Outcome struct {
	Spec           *Spec
	Fingerprint    string
	Results        []Result
	SkippedInvalid int
	// ResumedShards counts shards served from the manifest rather than
	// simulated in this run.
	ResumedShards int
	// Shards is the total checkpoint-shard count.
	Shards int
	// SimulatedInstructions counts instructions simulated by this run
	// (resumed shards contribute nothing).
	SimulatedInstructions int64
	// FusedGangs/FusedPoints count fused trace passes this run made and
	// the points simulated inside them; DirectPoints ran one pass each
	// (btb-family points, gang width 1, singleton groups, or fallbacks);
	// GangFallbacks counts gangs the fused kernel refused and the engine
	// re-ran per point. FusedPoints - FusedGangs is the passes avoided.
	FusedGangs, FusedPoints, DirectPoints, GangFallbacks int64
}

// PassesAvoided reports the trace passes a per-point sweep would have
// made that fusion did not.
func (o *Outcome) PassesAvoided() int64 { return o.FusedPoints - o.FusedGangs }

// Fingerprint identifies the run shape a manifest's recorded shards are
// valid for: a digest of the canonical spec JSON plus the shard size.
// Worker count is deliberately absent — scheduling cannot change results.
func (s *Spec) Fingerprint(shardSize int) string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal can only fail on invalid values that
		// Validate already rejects.
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write(data)
	fmt.Fprintf(h, "\nshard=%d", shardSize)
	return hex.EncodeToString(h.Sum(nil))
}

// manifestShard records one completed shard's results, keyed by shard
// index over the canonical point order.
type manifestShard struct {
	Index   int      `json:"index"`
	Results []Result `json:"results"`
}

type manifestFile struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	ShardSize   int             `json:"shard_size"`
	Points      int             `json:"points"`
	Shards      []manifestShard `json:"shards"`
}

const manifestSchema = "sweep-manifest/v1"

func loadManifest(path, fingerprint string, shardSize, points int) (*manifestFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &manifestFile{
			Schema: manifestSchema, Fingerprint: fingerprint,
			ShardSize: shardSize, Points: points,
		}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading manifest: %w", err)
	}
	var m manifestFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: corrupt manifest %s: %w", path, err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("sweep: manifest %s has schema %q, want %q", path, m.Schema, manifestSchema)
	}
	if m.Fingerprint != fingerprint || m.ShardSize != shardSize || m.Points != points {
		return nil, fmt.Errorf("sweep: manifest %s was recorded for a different sweep (spec, shard size or point count changed); delete it or rerun the original spec", path)
	}
	return &m, nil
}

// save writes the manifest atomically (temp file + rename) so a crash —
// including kill -9 — mid-save never leaves a truncated manifest behind.
func (m *manifestFile) save(path string) error {
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Index < m.Shards[j].Index })
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sweep-manifest-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// runPoint simulates one point. The capture store hands every point of a
// workload the same decoded trace (one VM capture per workload per
// process), and RunAccuracyCtx's batched kernel consumes it block-wise.
func runPoint(ctx context.Context, w *workload.Workload, p Point, budget int64) (Result, error) {
	cfg, err := p.SimConfig()
	if err != nil {
		return Result{}, err
	}
	bits, err := p.StorageBits()
	if err != nil {
		return Result{}, err
	}
	res := sim.RunAccuracyCtx(ctx, w.Replay(budget), budget, cfg)
	if res.Err != nil {
		return Result{}, res.Err
	}
	return Result{
		Point:        p,
		StorageBits:  bits,
		Instructions: res.Instructions,
		Branches:     res.Branches,
		Indirect:     res.Indirect.Predictions,
		IndirectMiss: res.Indirect.Mispredicts,
		Overall:      res.Overall.Predictions,
		OverallMiss:  res.Overall.Mispredicts,
		TCCovered:    res.TCCovered,
	}, nil
}

// Run expands the spec and simulates every point, scheduling shards with
// work-stealing across Options.Workers. With a manifest path set, each
// completed shard is checkpointed atomically; an interrupted run (context
// cancellation, crash, kill -9) resumes from the recorded shards and the
// final result set is byte-identical to an uninterrupted run at any
// worker count.
func Run(ctx context.Context, spec *Spec, opts Options) (*Outcome, error) {
	ex, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	workloads := make(map[string]*workload.Workload, len(spec.Workloads))
	for _, name := range spec.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		workloads[name] = w
	}

	shardSize := opts.shardSize()
	fingerprint := spec.Fingerprint(shardSize)
	n := len(ex.Points)
	nShards := (n + shardSize - 1) / shardSize

	results := make([]Result, n)
	done := make([]bool, nShards)
	resumed := 0

	var man *manifestFile
	if opts.ManifestPath != "" {
		man, err = loadManifest(opts.ManifestPath, fingerprint, shardSize, n)
		if err != nil {
			return nil, err
		}
		for _, sh := range man.Shards {
			lo := sh.Index * shardSize
			if sh.Index < 0 || sh.Index >= nShards || len(sh.Results) != shardLen(n, shardSize, sh.Index) {
				return nil, fmt.Errorf("sweep: manifest %s shard %d does not match the expansion", opts.ManifestPath, sh.Index)
			}
			copy(results[lo:], sh.Results)
			done[sh.Index] = true
			resumed++
		}
		if resumed > 0 {
			opts.logf("resuming: %d/%d shards already recorded in %s", resumed, nShards, opts.ManifestPath)
		}
	}

	var (
		mu      sync.Mutex // guards man, saveErr, runErr, comp, instrs, units
		saveErr error
		runErr  error
		comp    int
		instrs  int64
		units   unitCounters
	)
	pool.Run(opts.Workers, nShards, func(si int) {
		if done[si] || ctx.Err() != nil {
			return
		}
		mu.Lock()
		stop := runErr != nil || saveErr != nil
		mu.Unlock()
		if stop {
			return
		}
		lo := si * shardSize
		hi := lo + shardLen(n, shardSize, si)
		shard := make([]Result, hi-lo)
		var uc unitCounters
		for _, unit := range planUnits(ex.Points, lo, hi, opts.GangWidth) {
			rs, key, err := runUnit(ctx, workloads[ex.Points[unit[0]].Workload], ex.Points, unit, spec.Budget, &uc)
			if err != nil {
				if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					mu.Lock()
					if runErr == nil {
						runErr = fmt.Errorf("sweep: point %s: %w", key, err)
					}
					mu.Unlock()
				}
				// A cancelled or failed shard is never recorded: only
				// clean shards enter the manifest, so a resumed run
				// re-simulates exactly the unfinished work.
				return
			}
			// Units place results positionally, so the recorded shard is
			// byte-identical to a per-point walk at any gang width.
			for ui, i := range unit {
				shard[i-lo] = rs[ui]
			}
		}
		copy(results[lo:hi], shard)
		var shardInstrs int64
		for _, r := range shard {
			shardInstrs += r.Instructions
		}
		mu.Lock()
		comp++
		instrs += shardInstrs
		units.fusedGangs += uc.fusedGangs
		units.fusedPoints += uc.fusedPoints
		units.directPoints += uc.directPoints
		units.fallbacks += uc.fallbacks
		completed := comp + resumed
		if man != nil && saveErr == nil {
			man.Shards = append(man.Shards, manifestShard{Index: si, Results: shard})
			if err := man.save(opts.ManifestPath); err != nil {
				saveErr = fmt.Errorf("sweep: checkpointing shard %d: %w", si, err)
			}
		}
		logNow := comp%8 == 0 || comp == nShards-resumed
		mu.Unlock()
		if logNow {
			opts.logf("sweep: %d/%d shards complete (%d points)", completed, nShards, n)
		}
		if opts.AfterShard != nil {
			opts.AfterShard(completed, nShards)
		}
	})

	if runErr != nil {
		return nil, runErr
	}
	if saveErr != nil {
		return nil, saveErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: interrupted with %d/%d shards recorded: %w", comp+resumed, nShards, err)
	}
	return &Outcome{
		Spec:                  spec,
		Fingerprint:           fingerprint,
		Results:               results,
		SkippedInvalid:        ex.SkippedInvalid,
		ResumedShards:         resumed,
		Shards:                nShards,
		SimulatedInstructions: instrs,
		FusedGangs:            units.fusedGangs,
		FusedPoints:           units.fusedPoints,
		DirectPoints:          units.directPoints,
		GangFallbacks:         units.fallbacks,
	}, nil
}

// shardLen returns the point count of shard si over n points.
func shardLen(n, shardSize, si int) int {
	lo := si * shardSize
	if lo >= n {
		return 0
	}
	if n-lo < shardSize {
		return n - lo
	}
	return shardSize
}
