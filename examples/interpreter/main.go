// Interpreter study: why path history beats pattern history on perl.
//
// The paper's Section 4.2.3 observes that perl is an interpreter: its main
// loop dispatches on script tokens through one indirect jump, and the
// script loops, so the token sequence — and hence the dispatch target
// sequence — is periodic. Recording the recent *indirect jump targets*
// (path history, Ind-jmp filter) identifies the position in that sequence
// directly; conditional-branch outcomes (pattern history) identify it only
// indirectly and are diluted by the handlers' data-dependent branches.
//
// This example measures all the history variants of the paper's Tables 5-6
// on the perl workload and on gcc (where the relationship inverts), and
// prints the two machines' execution-time reductions as well.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	accuracyBudget = 1_000_000
	timingBudget   = 500_000
)

func tcConfig(h func() repro.History) repro.FrontEndConfig {
	return repro.BaselineConfig().WithTargetCache(
		func() repro.TargetCache {
			return repro.NewTagless(repro.TaglessConfig{
				Entries: 512,
				Scheme:  repro.SchemeGshare,
			})
		}, h)
}

func main() {
	histories := []struct {
		name string
		mk   func() repro.History
	}{
		{"pattern(9)", func() repro.History { return repro.NewPatternHistory(9) }},
		{"path global ind-jmp", pathHistory(repro.FilterIndJmp, false)},
		{"path global branch", pathHistory(repro.FilterBranch, false)},
		{"path global control", pathHistory(repro.FilterControl, false)},
		{"path global call/ret", pathHistory(repro.FilterCallRet, false)},
		{"path per-address", pathHistory(0, true)},
	}

	machine := repro.DefaultMachine()
	for _, wname := range []string{"perl", "gcc"} {
		w, err := repro.WorkloadByName(wname)
		if err != nil {
			log.Fatal(err)
		}
		base := repro.RunAccuracy(w, accuracyBudget, repro.BaselineConfig())
		baseTime := repro.RunTiming(w, timingBudget, repro.BaselineConfig(), machine)
		fmt.Printf("\n%s: BTB indirect misprediction %.2f%% (baseline %d cycles, IPC %.2f)\n",
			wname, 100*base.IndirectMispredictRate(), baseTime.Cycles, baseTime.IPC())
		fmt.Printf("%-22s %12s %12s\n", "history", "ind mispred", "time saved")
		for _, h := range histories {
			cfg := tcConfig(h.mk)
			acc := repro.RunAccuracy(w, accuracyBudget, cfg)
			tim := repro.RunTiming(w, timingBudget, cfg, machine)
			saved := 1 - float64(tim.Cycles)/float64(baseTime.Cycles)
			fmt.Printf("%-22s %11.2f%% %11.2f%%\n",
				h.name, 100*acc.IndirectMispredictRate(), 100*saved)
		}
	}
	fmt.Println("\npaper: global path history wins on perl (interpreter); pattern history wins on gcc")
}

func pathHistory(filter repro.PathFilter, perAddress bool) func() repro.History {
	return func() repro.History {
		return repro.NewPathHistory(repro.PathConfig{
			Bits:          9,
			BitsPerTarget: 1,
			AddrBitOffset: 2,
			Filter:        filter,
			PerAddress:    perAddress,
		})
	}
}
