package perfstore

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore writes n records and closes the store, returning the dir.
func seedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := s.Put(testMeta(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFsckCleanStore(t *testing.T) {
	dir := seedStore(t, 12)
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 12 || len(rep.Issues) != 0 {
		t.Fatalf("clean store fsck: %s", rep.Summary())
	}
}

func TestFsckTornTailReportAndFix(t *testing.T) {
	dir := seedStore(t, 6)
	// Tear the tail of whichever segment holds records.
	var seg string
	for i := 0; i < 2; i++ {
		entries, _ := os.ReadDir(filepath.Join(dir, shardName(i)))
		for _, e := range entries {
			seg = filepath.Join(dir, shardName(i), e.Name())
		}
		if seg != "" {
			break
		}
	}
	if seg == "" {
		t.Fatal("no segments written")
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 9)) // zero header bytes: metaLen 0 → corrupt
	f.Close()

	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Issues) != 1 || rep.Issues[0].Kind != "torn-tail" {
		t.Fatalf("torn-tail fsck: %s", rep.Summary())
	}

	rep, err = Fsck(dir, FsckOptions{Fix: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.Issues[0].Fixed {
		t.Fatalf("fsck -fix: %s", rep.Summary())
	}
	// After the fix the store is pristine again.
	rep, err = Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Issues) != 0 {
		t.Fatalf("fsck after fix: %s", rep.Summary())
	}
}

func TestFsckHashMismatch(t *testing.T) {
	dir := seedStore(t, 1)
	var seg string
	for i := 0; i < 2; i++ {
		entries, _ := os.ReadDir(filepath.Join(dir, shardName(i)))
		for _, e := range entries {
			seg = filepath.Join(dir, shardName(i), e.Name())
		}
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a body byte AND refresh the CRC so the record still decodes:
	// only the content hash can catch this class of damage.
	var rec scannedRecord
	if _, err := scanSegment(strings.NewReader(string(raw)), func(r scannedRecord) error {
		rec = r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	raw[rec.BodyOff] ^= 0x01
	metaLen := rec.BodyOff - rec.Off - recHeaderLen
	payload := raw[rec.Off+recHeaderLen : rec.Off+recHeaderLen+metaLen+int64(len(rec.Body))]
	crc := crc32.ChecksumIEEE(payload)
	raw[rec.Off+8] = byte(crc)
	raw[rec.Off+9] = byte(crc >> 8)
	raw[rec.Off+10] = byte(crc >> 16)
	raw[rec.Off+11] = byte(crc >> 24)
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Issues) != 1 || rep.Issues[0].Kind != "hash-mismatch" {
		t.Fatalf("hash-mismatch fsck: %s", rep.Summary())
	}
}

func TestFsckNotAStore(t *testing.T) {
	if _, err := Fsck(t.TempDir(), FsckOptions{}); err == nil {
		t.Fatal("fsck of an empty dir succeeded")
	}
}

func TestFsckStrayFile(t *testing.T) {
	dir := seedStore(t, 2)
	if err := os.WriteFile(filepath.Join(dir, shardName(0), "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range rep.Issues {
		if is.Kind == "stray-file" {
			found = true
		}
	}
	if !found || rep.Clean() {
		t.Fatalf("stray file not reported: %s", rep.Summary())
	}
}
