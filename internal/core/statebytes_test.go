package core

import "testing"

// The gang planner divides a memory budget by ApproxStateBytes, so the
// estimates must be positive and grow with the geometry axes.
func TestApproxStateBytes(t *testing.T) {
	if got := (TaglessConfig{Entries: 512}).ApproxStateBytes(); got != 512*8 {
		t.Errorf("tagless 512 = %d bytes, want %d", got, 512*8)
	}
	small := TaggedConfig{Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9, TagBits: 32}
	big := small
	big.Entries *= 4
	if s, b := small.ApproxStateBytes(), big.ApproxStateBytes(); s <= 0 || b != 4*s {
		t.Errorf("tagged scaling: %d entries = %d bytes, %d entries = %d bytes", small.Entries, s, big.Entries, b)
	}
	ca := DefaultCascadedConfig()
	if got := ca.ApproxStateBytes(); got != int64(ca.Stage1Entries)*32+ca.Stage2.ApproxStateBytes() {
		t.Errorf("cascaded = %d bytes, want stage1 + stage2 sum", got)
	}
	it := DefaultITTAGEConfig()
	wider := it
	wider.TableEntries *= 2
	if s, w := it.ApproxStateBytes(), wider.ApproxStateBytes(); s <= 0 || w <= s {
		t.Errorf("ittage estimate not monotone in table entries: %d -> %d", s, w)
	}
}
