package sweep

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Gang planning: within each checkpoint shard, points are grouped by
// (workload, history scheme) into gangs that sim.RunAccuracyGangCtx fuses
// into a single trace pass. The grouping rule follows what fusion can
// share: one workload means one decoded block stream, one history scheme
// means the gang's history registers collapse to one per distinct depth
// (the share key is scheme + depth). Every target-cache family rides the
// paper's baseline front end, so front-end state is shared by
// construction; btb-family points sweep that front end itself and always
// run direct. Gangs never cross shard boundaries — the shard remains the
// checkpoint/resume unit and manifests stay byte-identical at any width.

// TestPointHook, when non-nil, runs just before each point is simulated,
// inside the per-unit recover scope. The fault-injection harness uses it
// to prove a panicking point surfaces as a structured PointError instead
// of killing the sweep.
var TestPointHook func(pointKey string)

// PointError is a panic during point simulation, recovered into a
// structured per-unit error: the sweep stops cleanly (completed shards
// stay checkpointed) instead of crashing the process.
type PointError struct {
	// Keys are the points of the poisoned unit — a fused gang shares one
	// pass, so a panic cannot be attributed more precisely than the unit.
	Keys  []string
	Value any    // the recovered panic value
	Stack string // the panicking goroutine's stack
}

func (e *PointError) Error() string {
	if len(e.Keys) > 1 {
		return fmt.Sprintf("panic in a %d-point gang (%s): %v\n%s",
			len(e.Keys), strings.Join(e.Keys, ", "), e.Value, e.Stack)
	}
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// gangable reports whether the point can join a fused gang: every
// target-cache family runs the baseline front end, while btb-family
// points sweep the front-end geometry fusion shares.
func gangable(p Point) bool { return p.Family != "btb" }

// histShareKey identifies the point's exact history-provider
// configuration (scheme + depth fully determine the provider, see
// historyProvider); equal keys within a gang share one register.
func histShareKey(p Point) string { return p.History + "#" + strconv.Itoa(p.HistBits) }

// gangKey is the grouping key: one workload (one trace pass) and one
// history scheme (registers shared across the gang's depths).
func gangKey(p Point) string { return p.Workload + "\x00" + p.History }

// StateBytes estimates the point's in-memory predictor footprint, the
// quantity the auto-width planner budgets: fusing K points holds K
// predictor states live at once.
func (p Point) StateBytes() int64 {
	switch p.Family {
	case "btb":
		// ~5 words per BTB entry (tag, target, class, strategy state, LRU).
		return int64(p.Entries) * 40
	case "tagless":
		cfg, err := p.taglessConfig()
		if err != nil {
			return 0
		}
		return cfg.ApproxStateBytes()
	case "tagged":
		return p.taggedConfig().ApproxStateBytes()
	case "cascaded":
		return p.cascadedConfig().ApproxStateBytes()
	case "ittage":
		return p.ittageConfig().ApproxStateBytes()
	}
	return 0
}

const (
	// gangMemBudget is the soft per-gang predictor-state budget the
	// auto-width planner divides by the gang's largest member.
	gangMemBudget = 64 << 20
	// maxAutoWidth caps automatic gang width. Wider gangs amortize the
	// trace pass further but with diminishing returns once per-member
	// target-cache work dominates, and they enlarge the blast radius of a
	// failing member (the whole gang's pass is discarded). 16 keeps the
	// smoke grid's shards fusing in at most two passes while the kernel's
	// width scaling is still near-linear.
	maxAutoWidth = 16
)

// autoWidth picks a gang width for a bucket of points: the memory budget
// divided by the largest member's predictor state, clamped to
// [1, maxAutoWidth].
func autoWidth(points []Point, idxs []int) int {
	var maxState int64 = 1
	for _, i := range idxs {
		if s := points[i].StateBytes(); s > maxState {
			maxState = s
		}
	}
	w := int(gangMemBudget / maxState)
	if w < 1 {
		w = 1
	}
	if w > maxAutoWidth {
		w = maxAutoWidth
	}
	return w
}

// planUnits groups the points of one shard [lo, hi) into execution units:
// singleton units for direct points, gangs of at most width points for
// the rest, grouped by gangKey in first-seen order. width 0 picks a width
// per gang automatically; width 1 forces every point direct.
func planUnits(points []Point, lo, hi, width int) [][]int {
	var units [][]int
	var order []string
	buckets := make(map[string][]int)
	for i := lo; i < hi; i++ {
		if width == 1 || !gangable(points[i]) {
			units = append(units, []int{i})
			continue
		}
		k := gangKey(points[i])
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], i)
	}
	for _, k := range order {
		idxs := buckets[k]
		w := width
		if w <= 0 {
			w = autoWidth(points, idxs)
		}
		for len(idxs) > 0 {
			n := w
			if n > len(idxs) {
				n = len(idxs)
			}
			units = append(units, idxs[:n])
			idxs = idxs[n:]
		}
	}
	return units
}

// unitCounters reports how a shard's units actually executed.
type unitCounters struct {
	fusedGangs   int64 // gangs that ran as one fused pass
	fusedPoints  int64 // points simulated inside those passes
	directPoints int64 // points simulated one pass each
	fallbacks    int64 // gangs the fused kernel refused (ran per point)
}

// passesAvoided is the headline amortization: trace passes a per-point
// sweep would have made that fusion did not.
func (c unitCounters) passesAvoided() int64 { return c.fusedPoints - c.fusedGangs }

// runUnit simulates one planned unit. Panics anywhere inside — predictor
// construction, the kernel, a fault-injection hook — are recovered into a
// *PointError naming the unit's points. On error, key names the failing
// point (or the unit's first point for a panic).
func runUnit(ctx context.Context, w *workload.Workload, points []Point, idxs []int, budget int64, c *unitCounters) (rs []Result, key string, err error) {
	defer func() {
		if v := recover(); v != nil {
			pe := &PointError{Value: v, Stack: string(debug.Stack())}
			for _, i := range idxs {
				pe.Keys = append(pe.Keys, points[i].Key())
			}
			rs, key, err = nil, pe.Keys[0], pe
		}
	}()

	runDirect := func() ([]Result, string, error) {
		out := make([]Result, 0, len(idxs))
		for _, i := range idxs {
			p := points[i]
			if TestPointHook != nil {
				TestPointHook(p.Key())
			}
			r, err := runPoint(ctx, w, p, budget)
			if err != nil {
				return nil, p.Key(), err
			}
			c.directPoints++
			out = append(out, r)
		}
		return out, "", nil
	}

	if len(idxs) == 1 {
		return runDirect()
	}

	gang := make([]sim.GangPoint, len(idxs))
	bits := make([]int, len(idxs))
	for gi, i := range idxs {
		p := points[i]
		if TestPointHook != nil {
			TestPointHook(p.Key())
		}
		cfg, err := p.SimConfig()
		if err != nil {
			return nil, p.Key(), err
		}
		if bits[gi], err = p.StorageBits(); err != nil {
			return nil, p.Key(), err
		}
		gang[gi] = sim.GangPoint{Config: cfg, HistShare: histShareKey(p)}
	}
	res, ok := sim.RunAccuracyGangCtx(ctx, w.Replay(budget), budget, gang)
	if !ok {
		c.fallbacks++
		return runDirect()
	}
	out := make([]Result, len(idxs))
	for gi, i := range idxs {
		p := points[i]
		if res[gi].Err != nil {
			return nil, p.Key(), res[gi].Err
		}
		out[gi] = Result{
			Point:        p,
			StorageBits:  bits[gi],
			Instructions: res[gi].Instructions,
			Branches:     res[gi].Branches,
			Indirect:     res[gi].Indirect.Predictions,
			IndirectMiss: res[gi].Indirect.Mispredicts,
			Overall:      res[gi].Overall.Predictions,
			OverallMiss:  res[gi].Overall.Mispredicts,
			TCCovered:    res[gi].TCCovered,
		}
	}
	c.fusedGangs++
	c.fusedPoints += int64(len(idxs))
	return out, "", nil
}

// GangPlan describes the planned grouping of one workload's points, for
// -expand: how many passes the sweep will make and how big each gang is.
type GangPlan struct {
	Workload string
	// Gangs[w] counts gangs of width w (passes updating w points each).
	Gangs map[int]int
	// Points/Passes summarize: Points simulations in Passes trace passes.
	Points, Passes int
	// MaxStateBytes is the largest single gang's summed predictor state —
	// the planner's memory-footprint prediction.
	MaxStateBytes int64
}

// PlanGangs simulates the engine's unit planning over a full expansion
// (shard by shard, exactly as Run schedules it) and summarizes per
// workload, preserving workload first-appearance order.
func PlanGangs(points []Point, shardSize, width int) []GangPlan {
	if shardSize <= 0 {
		shardSize = defaultShardSize
	}
	byWorkload := make(map[string]*GangPlan)
	var order []string
	n := len(points)
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		for _, unit := range planUnits(points, lo, hi, width) {
			wl := points[unit[0]].Workload
			plan, ok := byWorkload[wl]
			if !ok {
				plan = &GangPlan{Workload: wl, Gangs: make(map[int]int)}
				byWorkload[wl] = plan
				order = append(order, wl)
			}
			plan.Gangs[len(unit)]++
			plan.Points += len(unit)
			plan.Passes++
			var state int64
			for _, i := range unit {
				state += points[i].StateBytes()
			}
			if state > plan.MaxStateBytes {
				plan.MaxStateBytes = state
			}
		}
	}
	out := make([]GangPlan, 0, len(order))
	for _, wl := range order {
		out = append(out, *byWorkload[wl])
	}
	return out
}
