package bench

import (
	"fmt"

	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// A Claim is one of the paper's qualitative findings, stated as an
// executable check. Claims compare measured quantities with margins, so
// they hold across budgets and seeds; they are the reproduction's
// regression suite in experiment form (`tcsim -exp verify`).
type Claim struct {
	// ID numbers the claim as in DESIGN.md.
	ID int
	// Statement paraphrases the paper.
	Statement string
	// Check returns a human-readable measurement and whether the claim
	// held.
	Check func(p Params) (string, bool)
}

// mispredict measures the indirect misprediction rate of cfg on w over
// the memoized trace replay.
func mispredict(w *workload.Workload, p Params, cfg sim.Config) float64 {
	return runAccuracy(w, p, cfg).IndirectMispredictRate()
}

func mustWorkload(name string) *workload.Workload {
	w, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

func taglessCfg(scheme core.TaglessScheme, histBits, addrBits int) sim.Config {
	return tcConfig(func() core.TargetCache {
		return core.NewTagless(core.TaglessConfig{
			Entries: 512, Scheme: scheme, HistBits: histBits, AddrBits: addrBits,
		})
	}, pattern(9))
}

func taggedCfgN(scheme core.TaggedScheme, ways, histBits int) sim.Config {
	return tcConfig(func() core.TargetCache {
		return core.NewTagged(core.TaggedConfig{
			Entries: 256, Ways: ways, Scheme: scheme, HistBits: histBits,
		})
	}, pattern(histBits))
}

func pathCfg(filter history.PathFilter) sim.Config {
	return tcConfig(taglessGshare(512), path(history.PathConfig{
		Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2, Filter: filter,
	}))
}

// Claims returns the paper's checkable findings.
func Claims() []Claim {
	return []Claim{
		{
			ID:        1,
			Statement: "BTBs mispredict indirect jumps badly on indirect-heavy benchmarks (perl, gcc)",
			Check: func(p Params) (string, bool) {
				perl := mispredict(mustWorkload("perl"), p, sim.DefaultConfig())
				gcc := mispredict(mustWorkload("gcc"), p, sim.DefaultConfig())
				return fmt.Sprintf("perl %.1f%%, gcc %.1f%%", 100*perl, 100*gcc),
					perl > 0.5 && gcc > 0.4
			},
		},
		{
			ID:        2,
			Statement: "the 2-bit BTB strategy is a mixed bag (helps some, hurts others); the target cache beats both on perl and gcc",
			Check: func(p Params) (string, bool) {
				helps, hurts := 0, 0
				for _, w := range workload.All() {
					def := mispredict(w, p, sim.DefaultConfig())
					cfg := sim.DefaultConfig()
					cfg.BTB.Strategy = btb.StrategyTwoBit
					two := mispredict(w, p, cfg)
					if two < def {
						helps++
					} else if two > def {
						hurts++
					}
				}
				tcWins := true
				for _, name := range []string{"perl", "gcc"} {
					w := mustWorkload(name)
					def := mispredict(w, p, sim.DefaultConfig())
					cfg := sim.DefaultConfig()
					cfg.BTB.Strategy = btb.StrategyTwoBit
					two := mispredict(w, p, cfg)
					tc := mispredict(w, p, tcConfig(taglessGshare(512), pattern(9)))
					if tc >= def || tc >= two {
						tcWins = false
					}
				}
				return fmt.Sprintf("2-bit helps %d and hurts %d of 8; target cache beats both on perl+gcc: %v",
					helps, hurts, tcWins), helps >= 2 && hurts >= 2 && tcWins
			},
		},
		{
			ID:        3,
			Statement: "gshare is the best tagless index hash on perl and gcc",
			Check: func(p Params) (string, bool) {
				ok := true
				var msg string
				for _, name := range []string{"perl", "gcc"} {
					w := mustWorkload(name)
					gshare := mispredict(w, p, taglessCfg(core.SchemeGshare, 0, 0))
					gag := mispredict(w, p, taglessCfg(core.SchemeGAg, 0, 0))
					gas := mispredict(w, p, taglessCfg(core.SchemeGAs, 8, 1))
					if gshare > gag+0.01 || gshare > gas+0.01 {
						ok = false
					}
					msg += fmt.Sprintf("%s: gshare %.1f%% GAg %.1f%% GAs %.1f%%  ",
						name, 100*gshare, 100*gag, 100*gas)
				}
				return msg, ok
			},
		},
		{
			ID:        4,
			Statement: "pattern history wins on gcc; global ind-jmp path history wins on perl (perl is an interpreter)",
			Check: func(p Params) (string, bool) {
				perl := mustWorkload("perl")
				gcc := mustWorkload("gcc")
				perlPat := mispredict(perl, p, tcConfig(taglessGshare(512), pattern(9)))
				perlPath := mispredict(perl, p, pathCfg(history.FilterIndJmp))
				gccPat := mispredict(gcc, p, tcConfig(taglessGshare(512), pattern(9)))
				gccPath := mispredict(gcc, p, pathCfg(history.FilterIndJmp))
				return fmt.Sprintf("perl pat %.1f%% path %.1f%%; gcc pat %.1f%% path %.1f%%",
						100*perlPat, 100*perlPath, 100*gccPat, 100*gccPath),
					perlPath < perlPat && gccPat < gccPath
			},
		},
		{
			ID:        5,
			Statement: "lower target-address bits carry more path information than higher bits",
			Check: func(p Params) (string, bool) {
				w := mustWorkload("gcc")
				low := mispredict(w, p, tcConfig(taglessGshare(512), path(history.PathConfig{
					Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2, Filter: history.FilterBranch,
				})))
				high := mispredict(w, p, tcConfig(taglessGshare(512), path(history.PathConfig{
					Bits: 9, BitsPerTarget: 1, AddrBitOffset: 12, Filter: history.FilterBranch,
				})))
				return fmt.Sprintf("gcc branch-path: bit2 %.1f%% vs bit12 %.1f%%",
					100*low, 100*high), low < high
			},
		},
		{
			ID:        6,
			Statement: "Address-indexed tagged caches need associativity; History-XOR works direct-mapped",
			Check: func(p Params) (string, bool) {
				w := mustWorkload("perl")
				addr1 := mispredict(w, p, taggedCfgN(core.SchemeAddress, 1, 9))
				xor1 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 1, 9))
				return fmt.Sprintf("perl 1-way: Addr %.1f%% vs Xor %.1f%%",
					100*addr1, 100*xor1), xor1+0.05 < addr1
			},
		},
		{
			ID:        7,
			Statement: "longer history helps high-associativity tagged caches and hurts low-associativity ones (gcc)",
			Check: func(p Params) (string, bool) {
				w := mustWorkload("gcc")
				lo9 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 1, 9))
				lo16 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 1, 16))
				hi9 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 32, 9))
				hi16 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 32, 16))
				return fmt.Sprintf("1-way: 9b %.1f%% vs 16b %.1f%%; 32-way: 9b %.1f%% vs 16b %.1f%%",
						100*lo9, 100*lo16, 100*hi9, 100*hi16),
					lo16 > lo9-0.02 && hi16 < hi9
			},
		},
		{
			ID:        8,
			Statement: "tagless beats low-associativity tagged; tagged with >=4 ways is at least competitive",
			Check: func(p Params) (string, bool) {
				w := mustWorkload("perl")
				tagless := mispredict(w, p, tcConfig(taglessGshare(512), pattern(9)))
				tag1 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 1, 9))
				tag8 := mispredict(w, p, taggedCfgN(core.SchemeHistoryXor, 8, 9))
				return fmt.Sprintf("perl: tagless %.1f%%, tagged 1-way %.1f%%, tagged 8-way %.1f%%",
						100*tagless, 100*tag1, 100*tag8),
					tagless < tag1 && tag8 <= tagless+0.01
			},
		},
	}
}

// The verify experiment runs every claim and reports PASS/FAIL.
var verifyExperiment = registerExperiment(&Experiment{
	ID:    "verify",
	Title: "Verify the paper's qualitative claims against this reproduction",
	Run: func(p Params) []*stats.Table {
		claims := Claims()
		type claimCell struct {
			msg string
			ok  bool
		}
		// One cell per claim; the simulations inside share memoized
		// replays, so concurrent claims do not duplicate VM work.
		g := newCellGroup(p)
		cells := make([]*slot[claimCell], len(claims))
		for i, c := range claims {
			cells[i] = cell(g, cellID{Config: fmt.Sprintf("claim-%d", c.ID)}, func(p Params) claimCell {
				msg, ok := c.Check(p)
				return claimCell{msg, ok}
			})
		}
		g.run()
		t := stats.NewTable("Paper claims verification",
			"#", "claim", "measured", "verdict")
		passed := 0
		for i, c := range claims {
			if !cells[i].ok() {
				t.AddRow(fmt.Sprintf("%d", c.ID), c.Statement, "ERR", "ERR")
				continue
			}
			verdict := "PASS"
			if cells[i].val.ok {
				passed++
			} else {
				verdict = "FAIL"
			}
			t.AddRow(fmt.Sprintf("%d", c.ID), c.Statement, cells[i].val.msg, verdict)
		}
		t.AddNote("%d/%d claims reproduced", passed, len(claims))
		return g.finish([]*stats.Table{t})
	},
})
