package cpu

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// EventMachine is a second, structurally explicit implementation of the
// timing model: a cycle-by-cycle simulator with a reorder buffer, an issue
// stage with register scoreboarding and functional-unit arbitration,
// in-order retirement, and checkpoint-repair fetch redirection. It is
// slower than Machine's one-pass approximation and exists to validate it:
// the two models must agree on cycle counts within a small tolerance and
// on every experiment's orderings (see TestModelsAgree).
type EventMachine struct {
	cfg    Config
	engine *sim.Engine
	dc     *dcacheModel
}

// NewEvent returns an event-driven machine using cfg and engine.
func NewEvent(cfg Config, engine *sim.Engine) *EventMachine {
	return &EventMachine{cfg: cfg, engine: engine, dc: newDCacheModel(cfg)}
}

// WrongPathFetcher is the capability the event model needs from a trace
// source to model wrong-path execution (vm.VM and vm.Looping implement
// it): redirect the machine to a mispredicted address, stream real
// speculative instructions from there, and squash.
type WrongPathFetcher interface {
	trace.Source
	StartWrongPath(addr uint64) bool
	EndWrongPath()
}

// robEntry is one in-flight instruction.
type robEntry struct {
	issued     bool
	complete   int64 // completion cycle once issued
	dst        uint8
	src1, src2 uint8
	lat        int64
	readyAt    int64 // earliest issue cycle (fetch + front-end depth)
	isBranch   bool
	mispredict bool
	wrongPath  bool // speculative; squashed at redirect, never retired
	valid      bool
}

// Run simulates up to budget instructions and returns the timing result.
func (m *EventMachine) Run(src trace.Source, budget int64) Result {
	return m.RunCtx(context.Background(), src, budget)
}

// RunCtx is Run under a context: the cycle loop polls ctx periodically and
// stops early with Err set to ctx.Err() when cancelled, returning the
// partial result accumulated so far.
func (m *EventMachine) RunCtx(ctx context.Context, src trace.Source, budget int64) Result {
	cfg := m.cfg
	var res Result
	deadlockAfter := cfg.DeadlockCycles
	if deadlockAfter <= 0 {
		deadlockAfter = DefaultDeadlockCycles
	}

	rob := make([]robEntry, cfg.Window)
	head, tail, occupancy := 0, 0, 0
	// issuedPrefix counts entries at the head of the ROB known to have
	// issued; the issue scan starts past them. It is a conservative lower
	// bound maintained incrementally (retire shrinks it, the scan grows it
	// while the issued run from the head stays contiguous), so skipping the
	// prefix never changes which entries issue or in what order.
	issuedPrefix := 0

	var (
		cycle        int64
		regReady     [64]int64
		fetchStalled bool  // a mispredicted branch is in flight
		redirectAt   int64 = -1
		done         bool
		r            trace.Record
		hasRec       bool
		correctOcc   int // non-speculative entries in flight
	)

	// Wrong-path support: only when configured and the source can do it.
	var wf WrongPathFetcher
	if cfg.ModelWrongPath {
		wf, _ = src.(WrongPathFetcher)
	}
	wrongActive := false  // wrong-path records still streaming
	wrongStarted := false // EndWrongPath owed at redirect

	// Deadlock guard: the simulation must retire something regularly.
	lastProgress := int64(0)

	for res.Instructions < budget || occupancy > 0 {
		// Retire up to Width completed instructions from the head.
		for retired := 0; retired < cfg.Width && occupancy > 0; retired++ {
			e := &rob[head]
			if !e.issued || e.complete > cycle || e.wrongPath {
				break
			}
			e.valid = false
			head++
			if head == cfg.Window {
				head = 0
			}
			occupancy--
			correctOcc--
			res.Instructions++
			lastProgress = cycle
			if issuedPrefix > 0 {
				issuedPrefix--
			}
		}

		// Issue: oldest-first, bounded by Width functional units. The scan
		// starts past the issued prefix — entries it would only skip — and
		// wraps with a compare instead of a modulo.
		issued := 0
		idx := head + issuedPrefix
		if idx >= cfg.Window {
			idx -= cfg.Window
		}
		contig := true
		for i := issuedPrefix; i < occupancy && issued < cfg.Width; i++ {
			e := &rob[idx]
			idx++
			if idx == cfg.Window {
				idx = 0
			}
			if e.issued {
				if contig {
					issuedPrefix++
				}
				continue
			}
			if e.readyAt > cycle ||
				(e.src1 != 0 && regReady[e.src1] > cycle) ||
				(e.src2 != 0 && regReady[e.src2] > cycle) {
				contig = false
				continue
			}
			e.issued = true
			e.complete = cycle + e.lat
			// Wrong-path results are renamed away; they never become
			// architecturally visible.
			if e.dst != 0 && !e.wrongPath {
				regReady[e.dst] = e.complete
			}
			if e.mispredict {
				redirectAt = e.complete + 1
			}
			issued++
			if contig {
				issuedPrefix++
			}
		}

		// Redirect: once the mispredicted branch has resolved, squash the
		// wrong path and resume fetch at the (known-correct) next trace
		// instruction.
		if fetchStalled && redirectAt >= 0 && cycle >= redirectAt {
			fetchStalled = false
			redirectAt = -1
			if wrongStarted {
				wf.EndWrongPath()
				wrongStarted, wrongActive = false, false
				hasRec = false // drop any buffered wrong-path record
			}
			for occupancy > 0 {
				prev := tail - 1
				if prev < 0 {
					prev = cfg.Window - 1
				}
				if !rob[prev].wrongPath {
					break
				}
				rob[prev].valid = false
				tail = prev
				occupancy--
			}
			if issuedPrefix > occupancy {
				issuedPrefix = occupancy
			}
		}

		// Fetch up to Width instructions: from the correct path normally,
		// or from the live wrong path while a misprediction is pending.
		for fetched := 0; fetched < cfg.Width && !done; fetched++ {
			wrongFetch := fetchStalled
			if wrongFetch && !wrongActive {
				break
			}
			if !wrongFetch && res.Instructions+int64(correctOcc) >= budget {
				break
			}
			if occupancy >= cfg.Window {
				break
			}
			if !hasRec {
				if !src.Next(&r) {
					if wrongFetch {
						wrongActive = false // the wrong path died
						break
					}
					done = true
					break
				}
				hasRec = true
			}
			e := &rob[tail]
			*e = robEntry{
				valid:     true,
				wrongPath: wrongFetch,
				dst:       r.Dst,
				src1:      r.Src1,
				src2:      r.Src2,
				lat:       cfg.Latencies[r.Op],
				readyAt:   cycle + int64(cfg.FrontEndDepth),
			}
			if r.Op == trace.OpLoad || r.Op == trace.OpStore {
				// Wrong-path accesses use the speculative machine's real
				// addresses: this is the cache pollution the flag models.
				if miss := m.dc.access(r.Addr); miss {
					res.DCacheMisses++
					if r.Op == trace.OpLoad {
						e.lat += cfg.MemLatency
					}
				}
				res.DCacheAccesses++
			}
			endGroup := false
			if r.Class.IsBranch() {
				if wrongFetch {
					// Wrong-path branches follow the speculative machine's
					// own outcomes; predictors are neither consulted nor
					// trained (no wrong-path predictor pollution).
					e.isBranch = true
					if r.Taken {
						endGroup = true
					}
				} else {
					res.Branches++
					e.isBranch = true
					p := m.engine.Predict(&r)
					correct := p.Correct(&r)
					// The resolve cycle is unknown until issue; stamp
					// telemetry events with the fetch cycle instead.
					m.engine.Tel.SetClock(cycle)
					m.engine.Resolve(&r, p)
					switch r.Class {
					case trace.ClassIndJump, trace.ClassIndCall:
						res.IndirectCount++
						if !correct {
							res.IndirectMispredicts++
						}
					case trace.ClassCondDirect:
						if !correct {
							res.CondMispredicts++
						}
					case trace.ClassReturn:
						if !correct {
							res.ReturnMispredicts++
						}
					}
					if !correct {
						res.Mispredicts++
						e.mispredict = true
						fetchStalled = true
						redirectAt = -1 // resolved when the branch issues
						endGroup = true
						if wf != nil {
							predicted := r.FallThrough()
							if p.Taken && p.HasTarget {
								predicted = p.Target
							}
							if predicted != r.NextPC() && wf.StartWrongPath(predicted) {
								wrongStarted, wrongActive = true, true
							}
						}
					} else if r.Taken {
						endGroup = true
					}
				}
			}
			tail++
			if tail == cfg.Window {
				tail = 0
			}
			occupancy++
			if !wrongFetch {
				correctOcc++
			}
			hasRec = false
			if endGroup {
				break
			}
		}

		if done && occupancy == 0 {
			break
		}
		cycle++
		if cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				res.Err = err
				break
			}
		}
		if cycle-lastProgress > deadlockAfter {
			// A liveness failure is a model bug, not a crash: report it as
			// an error with enough machine state to debug, keeping the
			// partial counts.
			res.Err = fmt.Errorf("cpu: event model deadlock at cycle %d (occupancy %d, %d retired, window %d)",
				cycle, occupancy, res.Instructions, cfg.Window)
			break
		}
	}

	res.Cycles = cycle
	if res.Err == nil {
		res.Err = trace.SourceErr(src)
	}
	return res
}

// dcacheModel is the same 16KB data cache the fast model uses, factored so
// both models share behaviour exactly.
type dcacheModel struct {
	sets      int
	lineShift int
	tags      [][]uint64
	valid     [][]bool
	lru       [][]int64
	tick      int64
}

func newDCacheModel(cfg Config) *dcacheModel {
	sets := cfg.DCacheBytes / (cfg.DCacheLine * cfg.DCacheWays)
	d := &dcacheModel{sets: sets}
	for 1<<d.lineShift < cfg.DCacheLine {
		d.lineShift++
	}
	d.tags = make([][]uint64, sets)
	d.valid = make([][]bool, sets)
	d.lru = make([][]int64, sets)
	for i := range d.tags {
		d.tags[i] = make([]uint64, cfg.DCacheWays)
		d.valid[i] = make([]bool, cfg.DCacheWays)
		d.lru[i] = make([]int64, cfg.DCacheWays)
	}
	return d
}

// access touches addr and reports whether it missed.
func (d *dcacheModel) access(addr uint64) bool {
	d.tick++
	line := addr >> d.lineShift
	set := int(line % uint64(d.sets))
	tag := line / uint64(d.sets)
	victim := 0
	for w := range d.tags[set] {
		if d.valid[set][w] && d.tags[set][w] == tag {
			d.lru[set][w] = d.tick
			return false
		}
		if !d.valid[set][w] {
			victim = w
		} else if d.valid[set][victim] && d.lru[set][w] < d.lru[set][victim] {
			victim = w
		}
	}
	d.tags[set][victim] = tag
	d.valid[set][victim] = true
	d.lru[set][victim] = d.tick
	return true
}
