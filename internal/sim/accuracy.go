package sim

import (
	"context"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ctxCheckMask sets how often the accuracy drivers poll ctx.Err: every
// 16384 instructions, cheap enough to be invisible in profiles while
// keeping cancellation latency well under a millisecond.
const ctxCheckMask = 1<<14 - 1

// AccuracyResult reports prediction accuracy over one trace, split by
// branch class. Indirect is the paper's headline population: indirect
// jumps and indirect calls, excluding returns.
type AccuracyResult struct {
	Instructions int64
	Branches     int64

	Conditional stats.Counter // direction+target of conditional branches
	Direct      stats.Counter // unconditional direct jumps and calls
	Returns     stats.Counter
	Indirect    stats.Counter // target-cache population
	Overall     stats.Counter
	// TCCovered counts indirect jumps for which the target cache supplied
	// the prediction (vs falling back to the BTB), a coverage diagnostic
	// for tagged caches.
	TCCovered int64

	// Err is non-nil when the run stopped early: a corrupt trace source
	// (wrapping trace.ErrCorrupt) or a cancelled context. The counters
	// above cover the instructions processed before the stop.
	Err error
}

// IndirectMispredictRate returns the indirect-jump misprediction rate, the
// paper's primary accuracy metric.
func (r AccuracyResult) IndirectMispredictRate() float64 {
	return r.Indirect.MispredictRate()
}

// RunAccuracy drives up to budget instructions from factory through a fresh
// engine built from cfg, counting per-class mispredictions.
func RunAccuracy(factory trace.Factory, budget int64, cfg Config) AccuracyResult {
	return RunAccuracyCtx(context.Background(), factory, budget, cfg)
}

// RunAccuracyCtx is RunAccuracy under a context: the loop polls ctx on
// instruction-count boundaries and stops early with Err set to ctx.Err()
// when cancelled, returning the partial counts accumulated so far.
//
// When factory is a memoized trace.Replay (or pre-decoded trace.Blocks),
// the run uses the batched decode-once kernel with devirtualized predictor
// calls; results are identical to the streaming loop below, which remains
// the reference path for arbitrary sources.
func RunAccuracyCtx(ctx context.Context, factory trace.Factory, budget int64, cfg Config) AccuracyResult {
	if bs, ok := blocksFor(factory); ok {
		return runAccuracyBlocks(ctx, bs, budget, 0, cfg)
	}
	engine := NewEngine(cfg)
	var res AccuracyResult
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	for src.Next(&r) {
		res.Instructions++
		if res.Instructions&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				res.Err = err
				return res
			}
		}
		if !r.Class.IsBranch() {
			continue
		}
		res.Branches++
		p := engine.Predict(&r)
		correct := p.Correct(&r)
		switch r.Class {
		case trace.ClassCondDirect:
			res.Conditional.Record(correct)
		case trace.ClassUncondDirect, trace.ClassCall:
			res.Direct.Record(correct)
		case trace.ClassReturn:
			res.Returns.Record(correct)
		case trace.ClassIndJump, trace.ClassIndCall:
			res.Indirect.Record(correct)
			if p.FromTC {
				res.TCCovered++
			}
			// Accuracy runs have no cycle clock; telemetry events are
			// stamped with the instruction index instead. Nil-safe.
			engine.Tel.SetClock(res.Instructions)
		}
		res.Overall.Record(correct)
		engine.Resolve(&r, p)
	}
	res.Err = trace.SourceErr(src)
	return res
}
