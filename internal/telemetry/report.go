package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// hex renders an address the way the per-site report and the JSON export
// both use, so the two are greppable against each other.
func hex(v uint64) string { return fmt.Sprintf("0x%x", v) }

// WriteSites renders the report's per-site statistics as plain-text
// tables, one per cell, in the style of the paper's Table 1 but broken
// down by static jump site. topSites bounds the rows per cell (hottest
// sites first); 0 means all. The output depends only on the merged
// counters — never on wall time or scheduling — so it is byte-identical
// at any worker count.
func (rep *Report) WriteSites(w io.Writer, topSites int) error {
	for i, cell := range rep.Cells {
		t := stats.NewTable(
			fmt.Sprintf("Sites: %s", cell.Key.String()),
			"site", "execs", "mispred", "rate", "targets", "top target", "share", "H(target)", "H(hist)")
		rows := cell.Sites
		// Hottest sites first; the site list arrives PC-sorted, so the
		// stable sort breaks execution-count ties by address.
		rows = append([]SiteReport(nil), rows...)
		stableSortByExecutions(rows)
		shown := 0
		for _, s := range rows {
			if topSites > 0 && shown >= topSites {
				break
			}
			shown++
			top, share := "-", "-"
			if len(s.TopTargets) > 0 {
				top = s.TopTargets[0].Target
				share = stats.Percent(s.DominantShare)
			}
			targets := fmt.Sprintf("%d", s.DistinctTargets)
			if s.TargetOverflow > 0 {
				targets += "+"
			}
			t.AddRow(s.PC,
				fmt.Sprintf("%d", s.Executions),
				fmt.Sprintf("%d", s.Mispredicts),
				stats.Percent(s.MispredictRate),
				targets,
				top,
				share,
				fmt.Sprintf("%.3f", s.TargetEntropy),
				fmt.Sprintf("%.3f", s.HistoryEntropy))
		}
		if shown < len(cell.Sites) {
			t.AddNote("showing %d of %d sites (by dynamic execution count)", shown, len(cell.Sites))
		}
		if n := len(cell.Events); n > 0 {
			t.AddNote("event log: %d misprediction(s) retained, %d dropped", n, cell.EventsDropped)
		}
		t.Render(w)
		if i < len(rep.Cells)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func stableSortByExecutions(rows []SiteReport) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Executions > rows[j].Executions })
}
