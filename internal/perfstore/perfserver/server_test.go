package perfserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perfstore"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	store, err := perfstore.Open(t.TempDir(), perfstore.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func uploadURL(base string, i int) string {
	return fmt.Sprintf("%s/api/v1/upload?kind=benchjson&machine=m1&commit=c%03d&experiment=table2", base, i)
}

func benchfmtURL(base string, i int) string {
	return fmt.Sprintf("%s/api/v1/upload?kind=benchfmt&machine=m1&commit=c%03d&experiment=table2&schema=go-benchfmt/v1", base, i)
}

func doUpload(t *testing.T, base string, i int, body string) UploadResponse {
	t.Helper()
	resp, err := http.Post(uploadURL(base, i), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload %d: status %d: %s", i, resp.StatusCode, b)
	}
	var ack UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

func TestUploadQueryRecordRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bodies := map[string]string{}
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"table2":{"wall_ms":%d.25}}`, 100+i)
		ack := doUpload(t, ts.URL, i, body)
		if ack.Duplicate || ack.ID == "" {
			t.Fatalf("upload %d ack: %+v", i, ack)
		}
		bodies[ack.ID] = body
	}

	resp, err := http.Get(ts.URL + "/api/v1/query?kind=benchjson&machine=m1")
	if err != nil {
		t.Fatal(err)
	}
	var metas []perfstore.Meta
	if err := json.NewDecoder(resp.Body).Decode(&metas); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(metas) != 10 {
		t.Fatalf("query returned %d rows", len(metas))
	}

	// Every record must read back byte-identical.
	for id, want := range bodies {
		resp, err := http.Get(ts.URL + "/api/v1/record/" + id)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(got, []byte(want)) {
			t.Fatalf("record %s: status %d body %q, want %q", id, resp.StatusCode, got, want)
		}
	}
}

func TestUploadIdempotent(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	first := doUpload(t, ts.URL, 1, `{"a":1}`)
	second := doUpload(t, ts.URL, 1, `{"a":1}`)
	if !second.Duplicate || second.ID != first.ID {
		t.Fatalf("retry ack: %+v, want duplicate of %s", second, first.ID)
	}
	if st := srv.Snapshot(); st.Store.Records != 1 || st.Server.Duplicates != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"missing kind", ts.URL + "/api/v1/upload?machine=m&commit=c&experiment=e", "{}", 400},
		{"bad charset", ts.URL + "/api/v1/upload?kind=a%20b&machine=m&commit=c&experiment=e", "{}", 400},
		{"empty body", uploadURL(ts.URL, 0), "", 400},
		{"not json", uploadURL(ts.URL, 0), "not json", 400},
		{"field too long", ts.URL + "/api/v1/upload?kind=" + strings.Repeat("k", 200) + "&machine=m&commit=c&experiment=e", "{}", 400},
		// A go-benchfmt/* schema declares the benchmark TEXT format: plain
		// text is accepted, but it must still be UTF-8 and non-empty.
		{"benchfmt text ok", benchfmtURL(ts.URL, 1),
			"suite: tcsim\nBenchmarkSuite/exp=table2 1 1e9 ns/op\n", 200},
		{"benchfmt bad utf8", benchfmtURL(ts.URL, 2), "Benchmark\xff\xfe 1 1 ns/op", 400},
		{"benchfmt empty", benchfmtURL(ts.URL, 3), "", 400},
		{"text without schema", uploadURL(ts.URL, 4), "BenchmarkSuite 1 1 ns/op", 400},
	}
	for _, tc := range cases {
		resp, err := http.Post(tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestUploadBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := `{"pad":"` + strings.Repeat("x", 2048) + `"}`
	resp, err := http.Post(uploadURL(ts.URL, 0), "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestBackpressure floods a queue of depth 1 whose lone slot is blocked,
// and expects 429 + Retry-After rather than queueing.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{})
	store, err := perfstore.Open(t.TempDir(), perfstore.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{QueueDepth: 1, RetryAfter: 3 * time.Second})
	// Wrap the handler so the admitted upload parks inside the semaphore.
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	// Occupy the only queue slot with a slow body: the reader blocks until
	// release closes.
	go func() {
		pr, pw := io.Pipe()
		req, _ := http.NewRequest("POST", uploadURL(ts.URL, 0), pr)
		go func() {
			pw.Write([]byte(`{"a":`))
			close(blocked)
			<-release
			pw.Write([]byte(`1}`))
			pw.Close()
		}()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-blocked

	// While the slot is held, further uploads shed with 429.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(uploadURL(ts.URL, 1), "application/json", strings.NewReader(`{"b":2}`))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusTooManyRequests {
			if ra != "3" {
				t.Fatalf("Retry-After %q, want 3", ra)
			}
			break
		}
		// 200 can happen if the blocked upload has not yet acquired the
		// slot; retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429 (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	if srv.Snapshot().Server.Shed429 == 0 {
		t.Fatal("shed counter did not advance")
	}
}

func TestDrainRejectsNewUploads(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doUpload(t, ts.URL, 0, `{"a":1}`)
	srv.StartDrain()

	resp, err := http.Post(uploadURL(ts.URL, 1), "application/json", strings.NewReader(`{"b":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("upload during drain: status %d, want 503 + Retry-After", resp.StatusCode)
	}
	// Health reports draining too.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
}

func TestConcurrentUploads(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueDepth: 64})
	const n = 80
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"t":{"wall_ms":%d}}`, i)
			resp, err := http.Post(uploadURL(ts.URL, i), "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("upload %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.Store.Records == 0 || st.Store.Records != st.Server.Accepted {
		t.Fatalf("stats after concurrent uploads: %+v", st)
	}
}

func TestTrend(t *testing.T) {
	ms := int64(1000)
	_, ts := newTestServer(t, Config{Now: func() time.Time {
		ms += 1000
		return time.UnixMilli(ms)
	}})
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"table2":{"wall_ms":%d.0},"table4":{"wall_ms":%d.0}}`, 100-i, 500+i)
		doUpload(t, ts.URL, i, body)
	}
	resp, err := http.Get(ts.URL + "/api/v1/trend?bench=table2&machine=m1")
	if err != nil {
		t.Fatal(err)
	}
	var points []TrendPoint
	if err := json.NewDecoder(resp.Body).Decode(&points); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(points) != 5 {
		t.Fatalf("trend returned %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].UnixMS < points[i-1].UnixMS {
			t.Fatalf("trend not chronological: %+v", points)
		}
	}
	if points[0].WallMS != 100 || points[4].WallMS != 96 {
		t.Fatalf("trend values: %+v", points)
	}

	// Missing bench parameter is a 400.
	resp, err = http.Get(ts.URL + "/api/v1/trend")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trend without bench: %d", resp.StatusCode)
	}
}

func TestRecordNotFoundAndBadID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/api/v1/record/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing record: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/v1/record/" + url.PathEscape("../../etc/passwd"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: %d", resp.StatusCode)
	}
}

func TestStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doUpload(t, ts.URL, 0, `{"a":1}`)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Server.Accepted != 1 || st.Store.Records != 1 {
		t.Fatalf("statsz: %+v", st)
	}
}
