package workload

import (
	"testing"

	"repro/internal/trace"
)

// allIncludingExtras returns the paper's eight plus the extras.
func allIncludingExtras() []*Workload {
	return append(All(), Extras()...)
}

// TestTraceControlFlowConsistency checks the fundamental invariant every
// simulator relies on: the dynamic instruction stream is a valid walk of
// the program — each record's successor starts at NextPC() (modulo program
// restarts by the looping source, which re-enter at the entry point).
func TestTraceControlFlowConsistency(t *testing.T) {
	for _, w := range allIncludingExtras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Program()
			entry := prog.AddrOf(prog.Entry)
			src := trace.NewLimit(w.Open(), 150_000)
			var prev trace.Record
			havePrev := false
			var r trace.Record
			for src.Next(&r) {
				if havePrev {
					want := prev.NextPC()
					if r.PC != want && r.PC != entry {
						t.Fatalf("discontinuity: %#x (%v) -> %#x, want %#x",
							prev.PC, prev.Class, r.PC, want)
					}
				}
				prev, havePrev = r, true
			}
		})
	}
}

// TestTraceCallReturnBalance checks returns never outnumber calls and that
// every return target is the fall-through of some earlier call.
func TestTraceCallReturnBalance(t *testing.T) {
	for _, w := range allIncludingExtras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := trace.NewLimit(w.Open(), 150_000)
			var depth int
			expected := make([]uint64, 0, 64)
			var r trace.Record
			for src.Next(&r) {
				switch {
				case r.Class.IsCall():
					expected = append(expected, r.FallThrough())
					depth++
				case r.Class == trace.ClassReturn:
					if depth == 0 {
						t.Fatal("return without a matching call")
					}
					want := expected[len(expected)-1]
					expected = expected[:len(expected)-1]
					depth--
					if r.Target != want {
						t.Fatalf("return to %#x, expected %#x", r.Target, want)
					}
				}
			}
		})
	}
}

// TestTraceBranchFields checks field hygiene: branches are taken with
// valid word-aligned targets where required, non-branches carry no control
// fields, and indirect jumps record a selector.
func TestTraceBranchFields(t *testing.T) {
	for _, w := range allIncludingExtras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := trace.NewLimit(w.Open(), 150_000)
			var r trace.Record
			for src.Next(&r) {
				if r.PC%4 != 0 {
					t.Fatalf("unaligned PC %#x", r.PC)
				}
				switch {
				case r.Class == trace.ClassOther:
					if r.Taken || r.Target != 0 {
						t.Fatalf("non-branch with control fields: %+v", r)
					}
				case r.Class.IsBranch() && r.Class != trace.ClassCondDirect:
					if !r.Taken {
						t.Fatalf("unconditional branch not taken: %+v", r)
					}
				}
				if r.Class.IsBranch() && r.Taken {
					if r.Target%4 != 0 || r.Target == 0 {
						t.Fatalf("bad branch target: %+v", r)
					}
				}
				if r.Class.IsBranch() && r.Op != trace.OpBranch {
					t.Fatalf("branch with op class %v", r.Op)
				}
			}
		})
	}
}

// TestWorkloadProfileShapes pins each workload's defining population
// properties so calibration regressions are caught (values have slack;
// they are structure checks, not golden numbers).
func TestWorkloadProfileShapes(t *testing.T) {
	type shape struct {
		minStatic, maxStatic int
		minTargets           int
	}
	shapes := map[string]shape{
		"perl":     {2, 2, 20},   // one hot dispatch + MATCH sub-dispatch
		"gcc":      {60, 70, 30}, // many switch sites + fn dispatch
		"xlisp":    {2, 2, 8},    // eval dispatch + user-fn stubs
		"m88ksim":  {3, 3, 16},   // opcode dispatch
		"compress": {2, 6, 2},
		"ijpeg":    {2, 4, 2},
		"go":       {4, 6, 8},
		"vortex":   {3, 5, 4},
		"cxx":      {3, 3, 12}, // three virtual call sites, 12 classes
		"gosearch": {2, 2, 8},  // move-kind switch + evaluator fn table
	}
	for _, w := range allIncludingExtras() {
		w := w
		want, ok := shapes[w.Name]
		if !ok {
			t.Errorf("no shape entry for workload %s", w.Name)
			continue
		}
		t.Run(w.Name, func(t *testing.T) {
			st := trace.NewStats().Consume(trace.NewLimit(w.Open(), 400_000))
			if got := st.StaticIndJumps(); got < want.minStatic || got > want.maxStatic {
				t.Errorf("static indirect jumps = %d, want %d..%d",
					got, want.minStatic, want.maxStatic)
			}
			if got := st.MaxTargets(); got < want.minTargets {
				t.Errorf("max targets = %d, want >= %d", got, want.minTargets)
			}
		})
	}
}
