// Command tcpredict replays a saved trace file (produced by tracegen)
// through a chosen predictor configuration and reports per-class accuracy.
// It decouples trace generation from prediction, so external traces in the
// repository's format can be evaluated too.
//
// Usage:
//
//	tracegen -w perl -n 1000000 -o perl.trace
//	tcpredict -trace perl.trace -predictor tagless
//	tcpredict -trace perl.trace -predictor tagged -ways 8 -hist 16
//	tcpredict -trace perl.trace -predictor ittage -history path
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (required)")
		predictor = flag.String("predictor", "btb",
			"predictor: btb | tagless | tagged | hybrid | cascaded | ittage")
		histKind = flag.String("history", "pattern", "history: pattern | path")
		histBits = flag.Int("hist", 9, "history length in bits")
		entries  = flag.Int("entries", 512, "target cache entries")
		ways     = flag.Int("ways", 4, "tagged cache associativity")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := sim.DefaultConfig()
	if *predictor != "btb" {
		newTC, err := buildTC(*predictor, *entries, *ways, *histBits)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newHist, err := buildHistory(*histKind, *histBits)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = cfg.WithTargetCache(newTC, newHist)
	}

	factory := fileFactory(*tracePath)
	res := sim.RunAccuracy(factory, 1<<62, cfg)
	if res.Instructions == 0 {
		fmt.Fprintln(os.Stderr, "tcpredict: empty or unreadable trace")
		os.Exit(1)
	}

	fmt.Printf("trace:                 %s (%d instructions, %d branches)\n",
		*tracePath, res.Instructions, res.Branches)
	fmt.Printf("predictor:             %s\n", *predictor)
	fmt.Printf("conditional mispred:   %7.3f%%  (%d)\n",
		100*res.Conditional.MispredictRate(), res.Conditional.Predictions)
	fmt.Printf("direct mispred:        %7.3f%%  (%d)\n",
		100*res.Direct.MispredictRate(), res.Direct.Predictions)
	fmt.Printf("return mispred:        %7.3f%%  (%d)\n",
		100*res.Returns.MispredictRate(), res.Returns.Predictions)
	fmt.Printf("indirect jump mispred: %7.3f%%  (%d)\n",
		100*res.IndirectMispredictRate(), res.Indirect.Predictions)
	fmt.Printf("overall mispred:       %7.3f%%\n", 100*res.Overall.MispredictRate())
}

// fileFactory opens the trace file afresh per pass, sniffing the format.
func fileFactory(path string) trace.Factory {
	return trace.FactoryFunc(func() trace.Source {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcpredict:", err)
			os.Exit(1)
		}
		// The process exits after one pass; the OS reclaims the handle.
		src, err := trace.NewAutoReader(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcpredict:", err)
			os.Exit(1)
		}
		return src
	})
}

func buildTC(kind string, entries, ways, histBits int) (func() core.TargetCache, error) {
	switch kind {
	case "tagless":
		cfg := core.TaglessConfig{Entries: entries, Scheme: core.SchemeGshare}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return func() core.TargetCache { return core.NewTagless(cfg) }, nil
	case "tagged":
		cfg := core.TaggedConfig{
			Entries: entries, Ways: ways,
			Scheme: core.SchemeHistoryXor, HistBits: histBits,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return func() core.TargetCache { return core.NewTagged(cfg) }, nil
	case "hybrid":
		return func() core.TargetCache { return core.DefaultChooser() }, nil
	case "cascaded":
		return func() core.TargetCache {
			return core.NewCascaded(core.DefaultCascadedConfig())
		}, nil
	case "ittage":
		return func() core.TargetCache {
			return core.NewITTAGE(core.DefaultITTAGEConfig())
		}, nil
	default:
		return nil, fmt.Errorf("tcpredict: unknown predictor %q", kind)
	}
}

func buildHistory(kind string, bits int) (func() history.Provider, error) {
	switch kind {
	case "pattern":
		return func() history.Provider { return history.NewPatternProvider(bits) }, nil
	case "path":
		cfg := history.PathConfig{
			Bits: bits, BitsPerTarget: 1, AddrBitOffset: 2,
			Filter: history.FilterIndJmp,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return func() history.Provider { return history.NewPath(cfg) }, nil
	default:
		return nil, fmt.Errorf("tcpredict: unknown history %q", kind)
	}
}
