package sim

import (
	"math"

	"repro/internal/trace"
)

// WindowedResult reports a measurement split into fixed-size instruction
// windows, quantifying warm-up and steady-state variance — the
// methodology check behind "simulated to completion" claims: if the
// per-window rate still drifts, the budget is too small.
type WindowedResult struct {
	// Windows holds each window's indirect-jump misprediction rate, in
	// order.
	Windows []float64
	// Overall is the whole-run result.
	Overall AccuracyResult
}

// RunAccuracyWindows is RunAccuracy with the trace split into
// budget/windows-sized windows. The predictor state carries across
// windows (one continuous run); only the accounting is windowed.
func RunAccuracyWindows(factory trace.Factory, budget int64, windows int, cfg Config) WindowedResult {
	if windows < 1 {
		windows = 1
	}
	engine := NewEngine(cfg)
	var out WindowedResult
	perWindow := budget / int64(windows)
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	var winPred, winMiss int64
	for src.Next(&r) {
		out.Overall.Instructions++
		if r.Class.IsBranch() {
			out.Overall.Branches++
			p := engine.Predict(&r)
			correct := p.Correct(&r)
			if r.Class.IsTargetCachePredicted() {
				out.Overall.Indirect.Record(correct)
				winPred++
				if !correct {
					winMiss++
				}
			}
			out.Overall.Overall.Record(correct)
			engine.Resolve(&r, p)
		}
		if out.Overall.Instructions%perWindow == 0 && out.Overall.Instructions > 0 {
			if winPred > 0 {
				out.Windows = append(out.Windows, float64(winMiss)/float64(winPred))
			} else {
				out.Windows = append(out.Windows, 0)
			}
			winPred, winMiss = 0, 0
		}
	}
	return out
}

// Mean returns the average per-window misprediction rate.
func (w WindowedResult) Mean() float64 {
	if len(w.Windows) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range w.Windows {
		sum += v
	}
	return sum / float64(len(w.Windows))
}

// StdDev returns the sample standard deviation across windows.
func (w WindowedResult) StdDev() float64 {
	n := len(w.Windows)
	if n < 2 {
		return 0
	}
	mean := w.Mean()
	var ss float64
	for _, v := range w.Windows {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// WarmupWindows returns how many leading windows lie more than tol above
// the final window's rate — a crude but useful warm-up length estimate.
func (w WindowedResult) WarmupWindows(tol float64) int {
	if len(w.Windows) == 0 {
		return 0
	}
	final := w.Windows[len(w.Windows)-1]
	n := 0
	for _, v := range w.Windows {
		if v > final+tol {
			n++
		} else {
			break
		}
	}
	return n
}
