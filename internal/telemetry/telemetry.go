// Package telemetry is the simulation observability layer: per-jump-site
// prediction statistics, a bounded misprediction event log, and run-level
// execution metrics, all exported as machine-readable JSON and as the
// plain-text per-site report behind `tcsim -sites`.
//
// The paper's analysis (Table 1, Figures 1-8) is built from per-site
// statistics — dynamic counts, distinct targets per site, dominant-target
// skew — that the experiment pipeline otherwise aggregates away before
// rendering. A Collector recaptures them at the one point every simulation
// driver shares, sim.Engine.Resolve, so accuracy runs, flush runs and both
// timing models are instrumented identically.
//
// Cost model: a Collector is attached per simulation run (per cell) and is
// owned by exactly one goroutine; the disabled path is a single nil check
// per resolved indirect jump, verified to cost <2% of simulation
// throughput by TestDisabledTelemetryOverhead in internal/sim. Per-cell
// collectors are merged into a race-safe run-level Recorder when their
// cell completes; everything rendered from the merged state is sorted, so
// reports are byte-identical at any worker count.
package telemetry

import (
	"math"
	"sort"
)

// DefaultTopK is the number of targets reported per site when
// Config.TopK is unset.
const DefaultTopK = 8

// Per-site exact-tracking bounds: beyond these many distinct values the
// remainder is lumped into an overflow bucket (counted, not enumerated),
// keeping a pathological site from growing telemetry without bound. The
// bounds comfortably exceed the paper's ">=30 targets" histogram cap.
const (
	maxTrackedTargets   = 64
	maxTrackedHistories = 256
)

// Config sizes a telemetry collection.
type Config struct {
	// TopK is the number of top targets reported per site; 0 means
	// DefaultTopK.
	TopK int
	// Events is the capacity of each cell's misprediction event ring;
	// 0 disables the event log. When more mispredictions occur than fit,
	// the ring keeps the most recent Events of them.
	Events int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	return c
}

// Event is one logged misprediction: the site, the history the predictor
// was indexed with, what it said versus what happened, and when.
type Event struct {
	// PC is the indirect jump's address.
	PC uint64 `json:"pc"`
	// History is the fetch-time history value the target cache was
	// indexed with (0 for the BTB-only baseline).
	History uint64 `json:"history"`
	// Predicted is the front end's target; NoPrediction marks branches
	// the front end had no target for at all (BTB miss or predicted
	// not-taken), in which case Predicted is 0.
	Predicted    uint64 `json:"predicted"`
	NoPrediction bool   `json:"no_prediction,omitempty"`
	// Actual is the resolved target.
	Actual uint64 `json:"actual"`
	// Cycle is the driver's clock at resolution: the resolve cycle in
	// timing runs, the instruction index in accuracy runs.
	Cycle int64 `json:"cycle"`
}

// site accumulates one static indirect jump's statistics.
type site struct {
	executions  int64
	mispredicts int64
	// targets counts dynamic executions per resolved target; histories
	// counts occurrences per fetch-time history value. Both are bounded:
	// once full, further new values land in the overflow counters.
	targets         map[uint64]int64
	targetOverflow  int64
	histories       map[uint64]int64
	historyOverflow int64
}

// Collector gathers per-site statistics and the misprediction event log
// for ONE simulation run. It is single-goroutine by design (each
// simulation cell owns its collector); merging across cells goes through
// a Recorder. A nil *Collector is valid and records nothing.
type Collector struct {
	cfg   Config
	clock int64
	sites map[uint64]*site
	ring  []Event
	next  int   // ring write position
	seen  int64 // mispredictions offered to the ring
}

// NewCollector returns an empty collector sized by cfg.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg, sites: make(map[uint64]*site)}
	if cfg.Events > 0 {
		c.ring = make([]Event, 0, cfg.Events)
	}
	return c
}

// SetClock sets the timestamp recorded on subsequent events: simulation
// drivers call it with their notion of "now" (cycle or instruction index)
// before resolving a branch. Nil-safe.
func (c *Collector) SetClock(v int64) {
	if c != nil {
		c.clock = v
	}
}

// Indirect records one resolved indirect jump: the site, the history the
// predictor saw, the predicted target (hasPrediction false when the front
// end had none), the actual target, and whether the prediction was
// correct. The caller must be the collector's owning goroutine.
func (c *Collector) Indirect(pc, hist, predicted uint64, hasPrediction bool, actual uint64, correct bool) {
	s := c.sites[pc]
	if s == nil {
		s = &site{targets: make(map[uint64]int64), histories: make(map[uint64]int64)}
		c.sites[pc] = s
	}
	s.executions++
	bumpBounded(s.targets, &s.targetOverflow, actual, 1, maxTrackedTargets)
	bumpBounded(s.histories, &s.historyOverflow, hist, 1, maxTrackedHistories)
	if correct {
		return
	}
	s.mispredicts++
	if c.cfg.Events == 0 {
		return
	}
	ev := Event{PC: pc, History: hist, Predicted: predicted, NoPrediction: !hasPrediction, Actual: actual, Cycle: c.clock}
	if !hasPrediction {
		ev.Predicted = 0
	}
	c.push(ev)
}

// push appends ev to the ring, overwriting the oldest entry when full.
func (c *Collector) push(ev Event) {
	c.seen++
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, ev)
		c.next = len(c.ring) % cap(c.ring)
		return
	}
	c.ring[c.next] = ev
	c.next = (c.next + 1) % cap(c.ring)
}

// Events returns the logged mispredictions in chronological order and the
// number that no longer fit in the ring.
func (c *Collector) Events() (events []Event, dropped int64) {
	if c == nil || len(c.ring) == 0 {
		return nil, 0
	}
	events = make([]Event, 0, len(c.ring))
	if len(c.ring) == cap(c.ring) {
		events = append(events, c.ring[c.next:]...)
		events = append(events, c.ring[:c.next]...)
	} else {
		events = append(events, c.ring...)
	}
	return events, c.seen - int64(len(c.ring))
}

// bumpBounded adds n to m[k], unless m is full and k is new, in which
// case n lands in the overflow counter.
func bumpBounded(m map[uint64]int64, overflow *int64, k uint64, n int64, bound int) {
	if _, ok := m[k]; !ok && len(m) >= bound {
		*overflow += n
		return
	}
	m[k] += n
}

// merge folds o into c. Both collectors must be quiescent. To keep the
// bounded maps deterministic regardless of Go's map iteration order, o's
// entries are merged in sorted-key order (hottest targets first, so the
// most significant entries survive the bound).
func (c *Collector) merge(o *Collector) {
	for _, pc := range sortedKeys(o.sites) {
		os := o.sites[pc]
		s := c.sites[pc]
		if s == nil {
			s = &site{targets: make(map[uint64]int64), histories: make(map[uint64]int64)}
			c.sites[pc] = s
		}
		s.executions += os.executions
		s.mispredicts += os.mispredicts
		mergeBounded(s.targets, &s.targetOverflow, os.targets, maxTrackedTargets)
		s.targetOverflow += os.targetOverflow
		mergeBounded(s.histories, &s.historyOverflow, os.histories, maxTrackedHistories)
		s.historyOverflow += os.historyOverflow
	}
	events, dropped := o.Events()
	if c.cfg.Events > 0 {
		for _, ev := range events {
			c.push(ev)
		}
		c.seen += dropped
	}
}

// mergeBounded folds src into dst (bounded), hottest entries first so the
// survivors are deterministic and the most significant.
func mergeBounded(dst map[uint64]int64, overflow *int64, src map[uint64]int64, bound int) {
	keys := sortedKeys(src)
	sort.SliceStable(keys, func(i, j int) bool { return src[keys[i]] > src[keys[j]] })
	for _, k := range keys {
		bumpBounded(dst, overflow, k, src[k], bound)
	}
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// entropy returns the Shannon entropy (bits) of the distribution given by
// counts plus one overflow bucket. Keys are summed in sorted order so the
// floating-point result is bit-identical across runs.
func entropy(counts map[uint64]int64, overflow int64) float64 {
	var total int64 = overflow
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, k := range sortedKeys(counts) {
		if n := counts[k]; n > 0 {
			p := float64(n) / float64(total)
			h -= p * math.Log2(p)
		}
	}
	if overflow > 0 {
		p := float64(overflow) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}
