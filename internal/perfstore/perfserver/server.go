// Package perfserver is the HTTP layer of tcperf: stdlib net/http
// handlers over a perfstore.Store. Robustness is the contract:
//
//   - uploads pass through a bounded admission queue — when it is full
//     the server sheds load with 429 + Retry-After instead of buffering
//     unbounded request bodies in memory;
//   - request bodies are hard-capped (413 past the limit), and the
//     listener-level read/write timeouts live on the http.Server that
//     cmd/tcperf builds around this handler;
//   - an upload is acknowledged (200) only after the store has fsynced
//     it, so an acknowledged upload survives any crash;
//   - acknowledgements carry the content-hash ID, and re-uploading the
//     same content returns the same row with "duplicate": true — client
//     retries are idempotent by construction;
//   - during drain (SIGINT/SIGTERM) new uploads get 503 + Retry-After
//     while in-flight ones finish and ack normally.
package perfserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/perfstore"
)

// Config tunes the handler. The zero value selects the defaults.
type Config struct {
	// QueueDepth is the number of uploads admitted concurrently; further
	// uploads are shed with 429. 0 means 32.
	QueueDepth int
	// MaxBodyBytes caps one upload body. 0 means 16 MB.
	MaxBodyBytes int64
	// RetryAfter is the hint sent with 429/503 responses. 0 means 1s.
	RetryAfter time.Duration
	// Now overrides the upload timestamp clock in tests.
	Now func() time.Time
}

const (
	defaultQueueDepth = 32
	defaultMaxBody    = 16 << 20
	defaultRetryAfter = time.Second
)

// Server serves the tcperf HTTP API over one Store.
type Server struct {
	store *perfstore.Store
	cfg   Config
	sem   chan struct{}
	now   func() time.Time

	draining atomic.Bool

	accepted, duplicates atomic.Int64
	shed, badRequests    atomic.Int64
	tooLarge, storeErrs  atomic.Int64
	drainRejects         atomic.Int64
	queries, trends      atomic.Int64
}

// New builds a Server over store.
func New(store *perfstore.Store, cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	if cfg.MaxBodyBytes > perfstore.MaxBodyBytes {
		cfg.MaxBodyBytes = perfstore.MaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Server{
		store: store,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.QueueDepth),
		now:   now,
	}
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/upload", s.handleUpload)
	mux.HandleFunc("GET /api/v1/record/{id}", s.handleRecord)
	mux.HandleFunc("GET /api/v1/query", s.handleQuery)
	mux.HandleFunc("GET /api/v1/trend", s.handleTrend)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

// StartDrain flips the server into drain mode: new uploads are rejected
// with 503 + Retry-After while requests already admitted keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether drain mode is on.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) rejectRetryable(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	http.Error(w, msg, code)
}

// UploadResponse is the ack body for POST /api/v1/upload.
type UploadResponse struct {
	ID        string `json:"id"`
	Duplicate bool   `json:"duplicate"`
	Bytes     int64  `json:"bytes"`
	UnixMS    int64  `json:"unix_ms"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.drainRejects.Add(1)
		s.rejectRetryable(w, http.StatusServiceUnavailable, "tcperf: draining, retry against the restarted server")
		return
	}
	// Admission control before the body is read: the queue bounds how
	// many bodies (each itself capped) can sit in memory at once, so a
	// thundering herd degrades into 429s, not an OOM kill.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		s.rejectRetryable(w, http.StatusTooManyRequests, "tcperf: upload queue full, retry later")
		return
	}

	meta, err := parseUploadMeta(r.URL.Query())
	if err != nil {
		s.badRequests.Add(1)
		http.Error(w, "tcperf: "+err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.tooLarge.Add(1)
			http.Error(w, fmt.Sprintf("tcperf: body exceeds %d bytes", s.cfg.MaxBodyBytes), http.StatusRequestEntityTooLarge)
			return
		}
		s.badRequests.Add(1)
		http.Error(w, "tcperf: reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := validateBody(meta, body); err != nil {
		s.badRequests.Add(1)
		http.Error(w, "tcperf: "+err.Error(), http.StatusBadRequest)
		return
	}

	meta.Time = s.now().UnixMilli()
	stored, dup, err := s.store.Put(meta, body)
	if err != nil {
		// The append failed (disk fault, ENOSPC, …): nothing was
		// acknowledged, the store already cut any torn bytes, and the
		// client's retry is safe because a later success is idempotent.
		s.storeErrs.Add(1)
		http.Error(w, "tcperf: store append failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if dup {
		s.duplicates.Add(1)
	} else {
		s.accepted.Add(1)
	}
	writeJSON(w, UploadResponse{ID: stored.ID, Duplicate: dup, Bytes: stored.Bytes, UnixMS: stored.Time})
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validHash(id) {
		http.Error(w, "tcperf: malformed record id", http.StatusBadRequest)
		return
	}
	meta, body, err := s.store.Get(id)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, perfstore.ErrNotFound) {
			code = http.StatusNotFound
		}
		http.Error(w, "tcperf: "+err.Error(), code)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-TCPerf-Kind", meta.Kind)
	h.Set("X-TCPerf-Machine", meta.Machine)
	h.Set("X-TCPerf-Commit", meta.Commit)
	h.Set("X-TCPerf-Experiment", meta.Experiment)
	h.Set("X-TCPerf-Unix-Ms", strconv.FormatInt(meta.Time, 10))
	w.Write(body)
}

const maxQueryLimit = 10000

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	q, err := parseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, "tcperf: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, s.store.Query(q))
}

// TrendPoint is one sample in a GET /api/v1/trend response: the wall time
// of one benchmark in one uploaded benchjson snapshot.
type TrendPoint struct {
	ID     string  `json:"id"`
	Commit string  `json:"commit"`
	UnixMS int64   `json:"unix_ms"`
	WallMS float64 `json:"wall_ms"`
}

func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	s.trends.Add(1)
	vals := r.URL.Query()
	bench := vals.Get("bench")
	if bench == "" {
		http.Error(w, "tcperf: trend needs ?bench=<experiment table id>", http.StatusBadRequest)
		return
	}
	q, err := parseQuery(vals)
	if err != nil {
		http.Error(w, "tcperf: "+err.Error(), http.StatusBadRequest)
		return
	}
	q.Kind = "benchjson"
	if q.Limit == 0 {
		q.Limit = 50
	}
	var points []TrendPoint
	for _, m := range s.store.Query(q) {
		_, body, err := s.store.Get(m.ID)
		if err != nil {
			continue // a damaged row degrades the trend, not the endpoint
		}
		var rows map[string]struct {
			WallMS float64 `json:"wall_ms"`
		}
		if err := json.Unmarshal(body, &rows); err != nil {
			continue
		}
		row, ok := rows[bench]
		if !ok {
			continue
		}
		points = append(points, TrendPoint{ID: m.ID, Commit: m.Commit, UnixMS: m.Time, WallMS: row.WallMS})
	}
	// Query returns newest first; a trend reads left to right in time.
	sort.Slice(points, func(i, j int) bool {
		if points[i].UnixMS != points[j].UnixMS {
			return points[i].UnixMS < points[j].UnixMS
		}
		return points[i].ID < points[j].ID
	})
	if points == nil {
		points = []TrendPoint{}
	}
	writeJSON(w, points)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectRetryable(w, http.StatusServiceUnavailable, "draining")
		return
	}
	io.WriteString(w, "ok\n")
}

// StatsResponse is the /statsz payload.
type StatsResponse struct {
	Store  perfstore.Stats `json:"store"`
	Server struct {
		Accepted     int64 `json:"accepted"`
		Duplicates   int64 `json:"duplicates"`
		Shed429      int64 `json:"shed_429"`
		DrainReject  int64 `json:"drain_rejects"`
		BadRequests  int64 `json:"bad_requests"`
		TooLarge     int64 `json:"too_large"`
		StoreErrors  int64 `json:"store_errors"`
		Queries      int64 `json:"queries"`
		Trends       int64 `json:"trends"`
		QueueDepth   int   `json:"queue_depth"`
		QueueInUse   int   `json:"queue_in_use"`
		Draining     bool  `json:"draining"`
		MaxBodyBytes int64 `json:"max_body_bytes"`
	} `json:"server"`
}

// Snapshot returns current counters (also used by cmd/tcperf's drain log).
func (s *Server) Snapshot() StatsResponse {
	var resp StatsResponse
	resp.Store = s.store.Stats()
	resp.Server.Accepted = s.accepted.Load()
	resp.Server.Duplicates = s.duplicates.Load()
	resp.Server.Shed429 = s.shed.Load()
	resp.Server.DrainReject = s.drainRejects.Load()
	resp.Server.BadRequests = s.badRequests.Load()
	resp.Server.TooLarge = s.tooLarge.Load()
	resp.Server.StoreErrors = s.storeErrs.Load()
	resp.Server.Queries = s.queries.Load()
	resp.Server.Trends = s.trends.Load()
	resp.Server.QueueDepth = cap(s.sem)
	resp.Server.QueueInUse = len(s.sem)
	resp.Server.Draining = s.draining.Load()
	resp.Server.MaxBodyBytes = s.cfg.MaxBodyBytes
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ---- request parsing (fuzzed in fuzz_test.go) ----

// maxFieldLen bounds one meta field.
const maxFieldLen = 128

// validField accepts the conservative charset meta fields may use:
// letters, digits, and ._-/:+ — enough for commit hashes, host/os/arch
// fingerprints, and experiment ids, and nothing that can smuggle path
// separators' tricks (.. is harmless: fields never become file paths) or
// control bytes into logs.
func validField(v string) bool {
	if v == "" || len(v) > maxFieldLen {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-' || c == '/' || c == ':' || c == '+':
		default:
			return false
		}
	}
	return true
}

// validHash accepts a 64-char lowercase hex content hash.
func validHash(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// parseUploadMeta validates the identity fields of an upload request.
// validateBody checks the payload against its declared wire format.
// Historically every upload was a JSON document and that stays the
// default; a schema with the "go-benchfmt/" prefix declares the standard
// Go benchmark TEXT format instead, which only has to be non-empty valid
// UTF-8 (so stored snapshots always render as text when queried back).
// A schema with the "sweep/" prefix declares a tcsweep design-space
// document, which must be JSON whose top-level schema field matches the
// declared schema — a mislabelled sweep is rejected at the door rather
// than discovered by the first query that tries to parse it.
func validateBody(meta perfstore.Meta, body []byte) error {
	if len(body) == 0 {
		return errors.New("body must be non-empty")
	}
	if strings.HasPrefix(meta.Schema, "go-benchfmt/") {
		if !utf8.Valid(body) {
			return errors.New("benchfmt body must be valid UTF-8 text")
		}
		return nil
	}
	if strings.HasPrefix(meta.Schema, "sweep/") {
		var doc struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return errors.New("sweep body must be a JSON document")
		}
		if doc.Schema != meta.Schema {
			return fmt.Errorf("sweep body declares schema %q but the upload declares %q", doc.Schema, meta.Schema)
		}
		return nil
	}
	if !json.Valid(body) {
		return errors.New("body must be valid JSON (or declare a text schema such as go-benchfmt/v1)")
	}
	return nil
}

func parseUploadMeta(vals url.Values) (perfstore.Meta, error) {
	var m perfstore.Meta
	for _, f := range []struct {
		name     string
		dst      *string
		required bool
	}{
		{"kind", &m.Kind, true},
		{"machine", &m.Machine, true},
		{"commit", &m.Commit, true},
		{"experiment", &m.Experiment, true},
		{"schema", &m.Schema, false},
	} {
		v := vals.Get(f.name)
		if v == "" {
			if f.required {
				return perfstore.Meta{}, fmt.Errorf("missing required query parameter %q", f.name)
			}
			continue
		}
		if !validField(v) {
			return perfstore.Meta{}, fmt.Errorf("invalid %s %q: 1-%d chars of [A-Za-z0-9._/:+-]", f.name, v, maxFieldLen)
		}
		*f.dst = v
	}
	return m, nil
}

// parseQuery validates filter parameters shared by query and trend.
func parseQuery(vals url.Values) (perfstore.Query, error) {
	var q perfstore.Query
	for _, f := range []struct {
		name string
		dst  *string
	}{
		{"kind", &q.Kind},
		{"machine", &q.Machine},
		{"commit", &q.Commit},
		{"experiment", &q.Experiment},
	} {
		v := vals.Get(f.name)
		if v == "" {
			continue
		}
		if !validField(v) {
			return perfstore.Query{}, fmt.Errorf("invalid %s %q", f.name, v)
		}
		*f.dst = v
	}
	if v := vals.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > maxQueryLimit {
			return perfstore.Query{}, fmt.Errorf("invalid limit %q (0-%d)", v, maxQueryLimit)
		}
		q.Limit = n
	} else {
		q.Limit = 100
	}
	return q, nil
}
