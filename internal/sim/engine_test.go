package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/trace"
)

func step(e *Engine, r *trace.Record) bool {
	p := e.Predict(r)
	ok := p.Correct(r)
	e.Resolve(r, p)
	return ok
}

func condBr(pc uint64, taken bool) trace.Record {
	return trace.Record{PC: pc, Target: pc + 0x40, Class: trace.ClassCondDirect, Taken: taken}
}

func TestFirstEncounterMisses(t *testing.T) {
	e := NewEngine(DefaultConfig())
	r := trace.Record{PC: 0x100, Target: 0x200, Class: trace.ClassUncondDirect, Taken: true}
	if step(e, &r) {
		t.Fatal("first taken branch predicted despite empty BTB")
	}
	if !step(e, &r) {
		t.Fatal("second encounter of a direct jump mispredicted")
	}
}

func TestNotTakenBTBMissIsCorrect(t *testing.T) {
	e := NewEngine(DefaultConfig())
	r := condBr(0x100, false)
	if !step(e, &r) {
		t.Fatal("a not-taken branch absent from the BTB must predict correctly (fall-through)")
	}
}

func TestConditionalDirectionLearning(t *testing.T) {
	e := NewEngine(DefaultConfig())
	r := condBr(0x100, true)
	step(e, &r) // allocate BTB entry, train
	correct := 0
	for i := 0; i < 20; i++ {
		if step(e, &r) {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("always-taken conditional: %d/20 correct", correct)
	}
}

func TestReturnAddressStackPrediction(t *testing.T) {
	e := NewEngine(DefaultConfig())
	call := trace.Record{PC: 0x100, Target: 0x800, Class: trace.ClassCall, Taken: true}
	ret := trace.Record{PC: 0x900, Target: 0x104, Class: trace.ClassReturn, Taken: true}
	// Warm the BTB so both are detected.
	step(e, &call)
	step(e, &ret)
	if !step(e, &call) {
		t.Fatal("known call mispredicted")
	}
	if !step(e, &ret) {
		t.Fatal("return mispredicted despite matching RAS entry")
	}
}

// TestTargetCacheBeatsBTBOnAlternatingJump is the mechanism of the whole
// paper in miniature: a jump alternating between two targets defeats the
// BTB (predict-last-target is always wrong) but is perfectly predictable
// once pattern history distinguishes its two occurrences.
func TestTargetCacheBeatsBTBOnAlternatingJump(t *testing.T) {
	mkJump := func(i int) (trace.Record, trace.Record) {
		// A conditional branch whose direction reveals the upcoming
		// target, followed by the indirect jump.
		tgt := uint64(0x1000)
		taken := i%2 == 0
		if taken {
			tgt = 0x2000
		}
		return condBr(0x50, taken),
			trace.Record{PC: 0x100, Target: tgt, Class: trace.ClassIndJump, Taken: true}
	}

	runIt := func(cfg Config) float64 {
		e := NewEngine(cfg)
		misses, total := 0, 0
		for i := 0; i < 400; i++ {
			c, j := mkJump(i)
			step(e, &c)
			if i >= 100 {
				total++
				if !step(e, &j) {
					misses++
				}
			} else {
				step(e, &j)
			}
		}
		return float64(misses) / float64(total)
	}

	base := runIt(DefaultConfig())
	if base < 0.9 {
		t.Fatalf("BTB should mispredict an alternating jump: rate %.2f", base)
	}
	tc := runIt(DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(9) },
	))
	if tc > 0.05 {
		t.Fatalf("target cache should nail an alternating jump: rate %.2f", tc)
	}
}

func TestTaggedMissFallsBackToBTB(t *testing.T) {
	cfg := DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagged(core.TaggedConfig{
				Entries: 16, Ways: 2, Scheme: core.SchemeHistoryXor, HistBits: 9,
			})
		},
		func() history.Provider { return history.NewPatternProvider(9) },
	)
	e := NewEngine(cfg)
	j := trace.Record{PC: 0x100, Target: 0x1000, Class: trace.ClassIndJump, Taken: true}
	step(e, &j) // allocate BTB + TC under history 0
	// Shift history so the TC misses, then the BTB's last target must be
	// used — which is correct here.
	c := condBr(0x50, true)
	step(e, &c)
	p := e.Predict(&j)
	if p.FromTC {
		t.Fatal("expected a tagged-cache miss under fresh history")
	}
	if !p.HasTarget || p.Target != 0x1000 {
		t.Fatalf("BTB fallback missing: %+v", p)
	}
}

func TestEngineReset(t *testing.T) {
	cfg := DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: 64, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(6) },
	)
	e := NewEngine(cfg)
	j := trace.Record{PC: 0x100, Target: 0x1000, Class: trace.ClassIndJump, Taken: true}
	step(e, &j)
	e.Reset()
	p := e.Predict(&j)
	if p.HasTarget {
		t.Fatalf("prediction after reset: %+v", p)
	}
}

func TestEngineRequiresHistoryWithTC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("target cache without history accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.NewTargetCache = func() core.TargetCache {
		return core.NewTagless(core.TaglessConfig{Entries: 64, Scheme: core.SchemeGshare})
	}
	NewEngine(cfg)
}

func TestRunAccuracyCounters(t *testing.T) {
	// A small synthetic trace exercising every class.
	var recs []trace.Record
	for i := 0; i < 50; i++ {
		recs = append(recs,
			trace.Record{PC: 0x10, Class: trace.ClassOther, Op: trace.OpInt},
			condBr(0x20, true),
			trace.Record{PC: 0x30, Target: 0x500, Class: trace.ClassCall, Taken: true},
			trace.Record{PC: 0x510, Target: 0x34, Class: trace.ClassReturn, Taken: true},
			trace.Record{PC: 0x40, Target: 0x600, Class: trace.ClassIndJump, Taken: true},
		)
	}
	factory := trace.FactoryFunc(func() trace.Source {
		return trace.NewSliceSource(recs)
	})
	res := RunAccuracy(factory, int64(len(recs)), DefaultConfig())
	if res.Instructions != int64(len(recs)) {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.Branches != int64(len(recs)/5*4) {
		t.Fatalf("branches = %d", res.Branches)
	}
	if res.Indirect.Predictions != 50 || res.Returns.Predictions != 50 ||
		res.Conditional.Predictions != 50 || res.Direct.Predictions != 50 {
		t.Fatalf("per-class counts wrong: %+v", res)
	}
	// The monomorphic indirect jump should be near-perfect after warmup.
	if res.Indirect.Mispredicts > 2 {
		t.Fatalf("monomorphic indirect mispredicts = %d", res.Indirect.Mispredicts)
	}
	if res.Overall.Predictions != res.Branches {
		t.Fatal("overall counter does not cover all branches")
	}
}
