package core

import "repro/internal/cache"

// LastTarget is the BTB's prediction policy factored into a TargetCache: a
// pc-indexed table holding each jump's most recent target, ignoring
// history. It is the base component for hybrid predictors and a useful
// experimental control.
type LastTarget struct {
	c *cache.Cache[uint64]
}

// NewLastTarget returns a last-target predictor with the given geometry.
func NewLastTarget(entries, ways int) *LastTarget {
	return &LastTarget{c: cache.New[uint64](entries/ways, ways)}
}

func (l *LastTarget) index(pc uint64) (int, uint64) {
	word := pc >> 2
	sets := uint64(l.c.Sets())
	return int(word % sets), word / sets
}

// Predict implements TargetCache (hist is ignored).
func (l *LastTarget) Predict(pc, hist uint64) (uint64, bool) {
	set, tag := l.index(pc)
	if v, ok := l.c.Lookup(set, tag); ok {
		return *v, true
	}
	return 0, false
}

// Update implements TargetCache.
func (l *LastTarget) Update(pc, hist, target uint64) {
	set, tag := l.index(pc)
	v, _ := l.c.Insert(set, tag)
	*v = target
}

// CostBits implements TargetCache.
func (l *LastTarget) CostBits() int { return l.c.Entries() * 32 }

// Reset implements TargetCache.
func (l *LastTarget) Reset() { l.c.Reset() }

var _ TargetCache = (*LastTarget)(nil)

// Chooser is a hybrid indirect-target predictor in the spirit of the
// authors' own branch-classification work (Chang, Hao, Yeh & Patt, MICRO
// 1994) and McFarling's combining predictor: two component predictors run
// side by side and a per-jump 2-bit meta counter selects which one's
// prediction to use. A monomorphic jump settles on the cheap last-target
// component; a history-correlated jump settles on the target cache — so
// the hybrid avoids the target cache's warm-up and interference losses on
// easy jumps while keeping its wins on hard ones.
type Chooser struct {
	// A is preferred when the meta counter is low, B when high.
	A, B TargetCache
	meta []uint8
	mask uint64
}

// NewChooser combines two component predictors with a meta table of
// metaEntries 2-bit counters (power of two), initialised neutral-toward-B.
func NewChooser(a, b TargetCache, metaEntries int) *Chooser {
	if metaEntries <= 0 || metaEntries&(metaEntries-1) != 0 {
		panic("core: chooser meta size must be a positive power of two")
	}
	c := &Chooser{A: a, B: b, meta: make([]uint8, metaEntries),
		mask: uint64(metaEntries - 1)}
	for i := range c.meta {
		c.meta[i] = 2 // weakly prefer B (the history component)
	}
	return c
}

func (c *Chooser) idx(pc uint64) int { return int((pc >> 2) & c.mask) }

// Predict implements TargetCache: the meta counter picks the component;
// if the chosen component has no prediction, the other is consulted.
func (c *Chooser) Predict(pc, hist uint64) (uint64, bool) {
	first, second := c.A, c.B
	if c.meta[c.idx(pc)] >= 2 {
		first, second = c.B, c.A
	}
	if tgt, ok := first.Predict(pc, hist); ok {
		return tgt, true
	}
	return second.Predict(pc, hist)
}

// Update implements TargetCache: both components train on every jump, and
// the meta counter moves toward whichever component was right when they
// disagree.
func (c *Chooser) Update(pc, hist, target uint64) {
	aTgt, aOK := c.A.Predict(pc, hist)
	bTgt, bOK := c.B.Predict(pc, hist)
	aRight := aOK && aTgt == target
	bRight := bOK && bTgt == target
	i := c.idx(pc)
	switch {
	case bRight && !aRight:
		if c.meta[i] < 3 {
			c.meta[i]++
		}
	case aRight && !bRight:
		if c.meta[i] > 0 {
			c.meta[i]--
		}
	}
	c.A.Update(pc, hist, target)
	c.B.Update(pc, hist, target)
}

// CostBits implements TargetCache (components plus 2 bits per meta entry).
func (c *Chooser) CostBits() int {
	return c.A.CostBits() + c.B.CostBits() + 2*len(c.meta)
}

// Reset implements TargetCache.
func (c *Chooser) Reset() {
	c.A.Reset()
	c.B.Reset()
	for i := range c.meta {
		c.meta[i] = 2
	}
}

var _ TargetCache = (*Chooser)(nil)

// DefaultChooser returns the canonical hybrid: a 128-entry last-target
// table backing a 256-entry 4-way History-XOR tagged target cache.
func DefaultChooser() *Chooser {
	return NewChooser(
		NewLastTarget(128, 2),
		NewTagged(TaggedConfig{
			Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9,
		}),
		256)
}
