package sim

import (
	"context"

	"repro/internal/cbt"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunCBT measures the case block table's indirect-jump target prediction
// accuracy over a trace. The CBT is consulted for indirect jumps only; a
// CBT miss counts as a misprediction (no BTB fallback), isolating the
// mechanism itself as the paper's Section 2 discussion does.
func RunCBT(factory trace.Factory, budget int64, cfg cbt.Config) stats.Counter {
	c, _ := RunCBTCtx(context.Background(), factory, budget, cfg)
	return c
}

// RunCBTCtx is RunCBT under a context. The returned error is non-nil when
// the run stopped early on cancellation or a corrupt trace source; the
// counter covers the records processed before the stop. Memoized replays
// run on the batched decode-once path.
func RunCBTCtx(ctx context.Context, factory trace.Factory, budget int64, cfg cbt.Config) (stats.Counter, error) {
	if bs, ok := blocksFor(factory); ok {
		return runCBTBlocks(ctx, bs, budget, cfg)
	}
	table := cbt.New(cfg)
	var c stats.Counter
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	var n int64
	for src.Next(&r) {
		n++
		if n&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return c, err
			}
		}
		if !r.Class.IsTargetCachePredicted() {
			continue
		}
		tgt, ok := table.Predict(r.PC, r.Addr)
		c.Record(ok && tgt == r.Target)
		table.Update(&r)
	}
	return c, trace.SourceErr(src)
}

// runCBTBlocks is the CBT driver over decoded batches: indirect jumps are
// found with a one-byte class scan, and only those records materialize.
func runCBTBlocks(ctx context.Context, bs trace.BlockSource, budget int64, cfg cbt.Config) (stats.Counter, error) {
	table := cbt.New(cfg)
	var c stats.Counter
	limit := budget
	if limit < 0 {
		limit = 0
	}
	effEnd := limit
	if clean := bs.CleanLen(); clean < effEnd {
		effEnd = clean
	}
	var n int64
	var r trace.Record
	for bi := 0; n < effEnd; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			return c, err
		}
		meta := blk.Meta
		m := len(meta)
		if rem := effEnd - n; int64(m) > rem {
			m = int(rem)
		}
		base := n
		for i := 0; i < m; i++ {
			n = base + int64(i) + 1
			if n&ctxCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return c, err
				}
			}
			cls := trace.Class(meta[i] & trace.MetaClassMask)
			if cls != trace.ClassIndJump && cls != trace.ClassIndCall {
				continue
			}
			blk.Record(i, &r)
			tgt, ok := table.Predict(r.PC, r.Addr)
			c.Record(ok && tgt == r.Target)
			table.Update(&r)
		}
	}
	if limit > bs.CleanLen() {
		return c, bs.TailErr()
	}
	return c, nil
}
