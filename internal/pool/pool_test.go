package pool

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]atomic.Int32, n)
			Run(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times, want 1", workers, n, i, got)
				}
			}
		}
	}
}

func TestRunSerialPreservesOrder(t *testing.T) {
	var order []int
	Run(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestRunZeroItems: an empty queue returns immediately without invoking
// fn, at any worker count (including degenerate ones).
func TestRunZeroItems(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 8} {
		calls := 0
		Run(workers, 0, func(i int) { calls++ })
		if calls != 0 {
			t.Fatalf("workers=%d n=0: fn called %d times", workers, calls)
		}
		Run(workers, -3, func(i int) { calls++ })
		if calls != 0 {
			t.Fatalf("workers=%d n=-3: fn called %d times", workers, calls)
		}
	}
}

// TestRunSingleWorkerStaysOnCaller: workers <= 1 must run every item on
// the calling goroutine — callers rely on this for zero-overhead serial
// runs (and it is what makes single-worker schedules trivially
// deterministic).
func TestRunSingleWorkerStaysOnCaller(t *testing.T) {
	for _, workers := range []int{-1, 0, 1} {
		caller := goroutineID(t)
		Run(workers, 5, func(i int) {
			if got := goroutineID(t); got != caller {
				t.Fatalf("workers=%d: item %d ran on goroutine %s, caller is %s", workers, i, got, caller)
			}
		})
	}
}

// goroutineID extracts the current goroutine's id from a stack header;
// test-only introspection.
func goroutineID(t *testing.T) string {
	t.Helper()
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// The header is "goroutine N [state]:..."; the id ends at the second
	// space.
	fields := strings.Fields(string(buf))
	if len(fields) < 2 {
		t.Fatalf("unparseable stack header %q", buf)
	}
	return fields[1]
}

// TestRunMoreWorkersThanItems: worker count far above the item count must
// still execute every item exactly once and spawn no more goroutines than
// items (observable as peak concurrency <= n).
func TestRunMoreWorkersThanItems(t *testing.T) {
	const n = 3
	hits := make([]atomic.Int32, n)
	var cur, peak atomic.Int32
	Run(64, n, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		hits[i].Add(1)
		runtime.Gosched()
		cur.Add(-1)
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times, want 1", i, got)
		}
	}
	if p := peak.Load(); p > n {
		t.Fatalf("observed %d concurrent calls over %d items", p, n)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int32
	Run(workers, 200, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}
