// Package trace defines the instruction-trace representation shared by every
// simulator in this repository.
//
// A trace is a stream of Record values, one per retired instruction, in
// program order. The accuracy simulators (internal/sim) look only at the
// control-flow fields; the timing simulator (internal/cpu) additionally uses
// the functional-unit class and register operands.
package trace

import "fmt"

// Class categorises an instruction's control-flow behaviour using the
// taxonomy of the paper's introduction: branches are conditional or
// unconditional crossed with direct or indirect, and only three of the four
// combinations occur in practice (conditional direct, unconditional direct,
// unconditional indirect). Returns are indirect jumps but are tracked
// separately because they are handled by the return address stack rather
// than the target cache.
type Class uint8

const (
	// ClassOther marks a non-control-flow instruction.
	ClassOther Class = iota
	// ClassCondDirect is a conditional branch with a static target.
	ClassCondDirect
	// ClassUncondDirect is an unconditional jump with a static target.
	ClassUncondDirect
	// ClassCall is a direct call (jump-to-subroutine). Its fall-through
	// address is pushed on the return address stack.
	ClassCall
	// ClassReturn is a subroutine return; an indirect jump predicted by the
	// return address stack, not the target cache.
	ClassReturn
	// ClassIndJump is an unconditional indirect jump (e.g. a jump-table
	// dispatch). This is the class the target cache predicts.
	ClassIndJump
	// ClassIndCall is an indirect call (function-pointer or virtual call).
	// Like ClassIndJump it is predicted by the target cache, but it also
	// pushes a return address.
	ClassIndCall

	numClasses = int(ClassIndCall) + 1
)

// String returns the short human-readable name of the class.
func (c Class) String() string {
	switch c {
	case ClassOther:
		return "other"
	case ClassCondDirect:
		return "cond-direct"
	case ClassUncondDirect:
		return "uncond-direct"
	case ClassCall:
		return "call"
	case ClassReturn:
		return "return"
	case ClassIndJump:
		return "ind-jump"
	case ClassIndCall:
		return "ind-call"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// IsBranch reports whether the class is any control-flow instruction.
func (c Class) IsBranch() bool { return c != ClassOther }

// IsIndirect reports whether the class has a dynamically computed target.
func (c Class) IsIndirect() bool {
	return c == ClassIndJump || c == ClassIndCall || c == ClassReturn
}

// IsTargetCachePredicted reports whether the class is predicted by the
// target cache. Returns are excluded: "although return instructions
// technically are indirect jumps, they are not handled with the target cache
// because they are effectively handled with the return address stack".
func (c Class) IsTargetCachePredicted() bool {
	return c == ClassIndJump || c == ClassIndCall
}

// IsCall reports whether the class pushes a return address.
func (c Class) IsCall() bool { return c == ClassCall || c == ClassIndCall }

// OpClass categorises an instruction by the functional-unit class it
// occupies in the timing model, matching Table 3 of the paper.
type OpClass uint8

const (
	// OpInt covers integer add, subtract and logic operations (latency 1).
	OpInt OpClass = iota
	// OpFPAdd covers FP add, subtract and convert (latency 3).
	OpFPAdd
	// OpMul covers FP and integer multiply (latency 3).
	OpMul
	// OpDiv covers FP and integer divide (latency 8).
	OpDiv
	// OpLoad covers memory loads (latency 1 plus cache behaviour).
	OpLoad
	// OpStore covers memory stores (latency 1).
	OpStore
	// OpBitField covers shift and bit-testing operations (latency 1).
	OpBitField
	// OpBranch covers all control instructions (latency 1).
	OpBranch

	// NumOpClasses is the number of functional-unit classes.
	NumOpClasses = int(OpBranch) + 1
)

// String returns the Table-3 name of the op class.
func (o OpClass) String() string {
	switch o {
	case OpInt:
		return "Integer"
	case OpFPAdd:
		return "FP Add"
	case OpMul:
		return "FP/INT Mul"
	case OpDiv:
		return "FP/INT Div"
	case OpLoad:
		return "Load"
	case OpStore:
		return "Store"
	case OpBitField:
		return "Bit Field"
	case OpBranch:
		return "Branch"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(o))
	}
}

// Record describes one retired instruction.
//
// For control-flow instructions (Class != ClassOther), Taken reports whether
// the instruction redirected the stream, Target is the address actually
// jumped to when taken, and NextPC is the address of the following
// instruction in program order (Target when taken, the fall-through
// otherwise). For non-branches Taken is false and Target is zero.
//
// Dst, Src1 and Src2 are register operands encoded as register number plus
// one, with zero meaning "none"; Addr is the effective address for loads and
// stores. These fields feed the timing model's dependence tracking and data
// cache and are ignored by the accuracy simulators.
type Record struct {
	PC     uint64
	Target uint64
	Addr   uint64
	Class  Class
	Op     OpClass
	Taken  bool
	Dst    uint8
	Src1   uint8
	Src2   uint8
}

// FallThrough returns the address of the next sequential instruction.
// Instructions are word-sized and word-aligned, as assumed by the paper's
// path-history discussion ("the least significant bits from each address are
// ignored because instructions are aligned on word boundaries").
func (r *Record) FallThrough() uint64 { return r.PC + 4 }

// NextPC returns the address of the instruction that follows r in the
// dynamic instruction stream.
func (r *Record) NextPC() uint64 {
	if r.Taken {
		return r.Target
	}
	return r.FallThrough()
}
