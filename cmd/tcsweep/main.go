// Command tcsweep runs resumable design-space sweeps: it expands a
// declarative JSON grid spec into (predictor configuration, workload)
// points, simulates them all with work-stealing parallelism and the
// shared capture store, and reports the per-workload Pareto frontier of
// accuracy versus storage bits.
//
// Points sharing a workload and history scheme are fused into gangs: one
// trace pass updates up to -gang predictor instances in lockstep, with
// results byte-identical to per-point simulation at any width.
//
// Usage:
//
//	tcsweep -example > sweep.json
//	tcsweep -spec sweep.json
//	tcsweep -spec sweep.json -workers 8 -resume sweep.manifest
//	tcsweep -spec sweep.json -csv all-points.csv -doc frontier.json
//	tcsweep -spec sweep.json -doc frontier.json -upload http://host:8344 -commit $(git rev-parse HEAD)
//	tcsweep -spec sweep.json -expand
//	tcsweep -spec sweep.json -gang 8 -benchfmt sweep.txt -count 5 -warmup 1
//
// With -resume, completed shards are checkpointed atomically: an
// interrupted run — Ctrl-C, SIGTERM, or kill -9 — restarts where it left
// off, and the final report is byte-identical to an uninterrupted run at
// any worker count. -expand prints the planned gang grouping alongside
// the point list, so the memory footprint of a gang width is predictable
// before simulating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/perfstore/client"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath = flag.String("spec", "", "grid spec JSON file (\"-\" reads stdin)")
		example  = flag.Bool("example", false, "print an example grid spec and exit")
		expand   = flag.Bool("expand", false, "expand the spec, print its points, and exit without simulating")
		workers  = flag.Int("workers", 0, "concurrent simulation workers (0 = one per CPU, 1 = serial)")
		shard    = flag.Int("shard", 0, "points per checkpoint shard (default 32)")
		resume   = flag.String("resume", "", "manifest path: completed shards are recorded there and skipped on restart")
		gang     = flag.Int("gang", 0, "points fused per trace pass (0 = auto width from a memory budget, 1 = no fusion)")
		csvPath  = flag.String("csv", "", "write every swept point (with frontier flags) as CSV to this file")
		docPath  = flag.String("doc", "", "write the sweep/v1 result document as JSON to this file")
		telemOut = flag.String("telemetry", "", "write sweep run metrics as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress lines on stderr")
		throttle = flag.Duration("throttle", 0, "sleep this long after each completed shard (pacing aid for interrupt/resume exercises)")

		benchFmt = flag.String("benchfmt", "", "write per-rep sweep wall time in the standard Go benchmark format to this file")
		count    = flag.Int("count", 1, "repetitions of the whole sweep; each rep adds one result line to -benchfmt")
		warmup   = flag.Int("warmup", 0, "unrecorded warm-up repetitions before the -count recorded ones (prime capture memos)")

		uploadURL = flag.String("upload", "", "tcperf server base URL; uploads the sweep/v1 document after the run")
		commit    = flag.String("commit", "", "commit id to tag the upload with (required by -upload)")
		outbox    = flag.String("outbox", "", "spool directory for uploads when the tcperf server is unreachable")
	)
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		return 2
	}

	if *example {
		fmt.Print(sweep.ExampleSpec)
		return 0
	}
	if *specPath == "" {
		return fail("tcsweep: -spec is required (try -example for a template); workloads: %v", workload.Names())
	}
	if *workers < 0 {
		return fail("tcsweep: -workers must be non-negative, got %d", *workers)
	}
	if *shard < 0 {
		return fail("tcsweep: -shard must be non-negative, got %d", *shard)
	}
	if *gang < 0 {
		return fail("tcsweep: -gang must be non-negative, got %d", *gang)
	}
	if *count < 1 {
		return fail("tcsweep: -count must be at least 1, got %d", *count)
	}
	if *warmup < 0 {
		return fail("tcsweep: -warmup must be non-negative, got %d", *warmup)
	}
	if (*count > 1 || *warmup > 0) && *benchFmt == "" {
		return fail("tcsweep: -count/-warmup only make sense with -benchfmt")
	}
	if *benchFmt != "" && *resume != "" {
		return fail("tcsweep: -benchfmt repetitions cannot be combined with -resume (resumed reps would skip the simulation being timed)")
	}
	if *uploadURL != "" && *commit == "" {
		return fail("tcsweep: -upload needs -commit to tag the results")
	}
	if *uploadURL == "" && *outbox != "" {
		return fail("tcsweep: -outbox only makes sense with -upload")
	}

	var data []byte
	var err error
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return fail("tcsweep: %v", err)
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return fail("tcsweep: %v", err)
	}

	if *expand {
		ex, err := spec.Expand()
		if err != nil {
			return fail("tcsweep: %v", err)
		}
		for _, p := range ex.Points {
			fmt.Println(p.Key())
		}
		fmt.Fprintf(os.Stderr, "tcsweep: %d points (%d invalid combinations skipped)\n",
			len(ex.Points), ex.SkippedInvalid)
		printGangPlan(ex.Points, *shard, *gang)
		return 0
	}

	opts := sweep.Options{
		Workers:      *workers,
		ShardSize:    *shard,
		ManifestPath: *resume,
		GangWidth:    *gang,
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *throttle > 0 {
		opts.AfterShard = func(completed, total int) { time.Sleep(*throttle) }
	}

	// First Ctrl-C or SIGTERM cancels the run context: in-flight shards
	// stop at the kernels' next poll, clean shards stay recorded in the
	// manifest, and the process exits asking to be resumed. A second
	// signal terminates the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	// -count reruns the whole sweep, each rep an independent wall-clock
	// sample for tcbenchdiff's significance tests, after -warmup
	// unrecorded reps have primed the capture memos. Results are
	// deterministic, so every rep's outcome is identical; only the
	// recorded timings vary.
	var (
		outcome *sweep.Outcome
		wall    time.Duration
		walls   []time.Duration
	)
	for rep := 1 - *warmup; rep <= *count; rep++ {
		start := time.Now()
		outcome, err = sweep.Run(ctx, spec, opts)
		wall = time.Since(start)
		if err != nil {
			if ctx.Err() != nil && *resume != "" {
				fmt.Fprintf(os.Stderr, "tcsweep: %v\ntcsweep: rerun with -resume %s to finish\n", err, *resume)
				return 1
			}
			return fail("tcsweep: %v", err)
		}
		if rep >= 1 {
			walls = append(walls, wall)
		}
	}

	report := outcome.Report()
	report.Render(os.Stdout)

	if *csvPath != "" {
		if err := writeFileAtomic(*csvPath, func(w io.Writer) error { return report.WriteCSV(w) }); err != nil {
			return fail("tcsweep: %v", err)
		}
	}
	var docBytes []byte
	if *docPath != "" || *uploadURL != "" {
		docBytes, err = report.Document().Encode()
		if err != nil {
			return fail("tcsweep: %v", err)
		}
	}
	if *docPath != "" {
		if err := writeFileAtomic(*docPath, func(w io.Writer) error {
			_, werr := w.Write(docBytes)
			return werr
		}); err != nil {
			return fail("tcsweep: %v", err)
		}
	}

	if *benchFmt != "" {
		if err := writeBenchFmt(*benchFmt, spec.Name, spec.Budget, *gang, *workers, *commit, walls, outcome); err != nil {
			return fail("tcsweep: %v", err)
		}
	}

	if *telemOut != "" {
		frontier := 0
		for _, row := range report.Rows {
			if row.Frontier {
				frontier++
			}
		}
		replayCalls, captureCount := workload.MemoCounters()
		metrics := telemetry.NewSweepMetrics(telemetry.SweepInfo{
			Spec:           spec.Name,
			Fingerprint:    outcome.Fingerprint,
			Workers:        *workers,
			Wall:           wall,
			Points:         len(outcome.Results),
			FrontierPoints: frontier,
			SkippedInvalid: outcome.SkippedInvalid,
			Shards:         outcome.Shards,
			ResumedShards:  outcome.ResumedShards,
			Instructions:   outcome.SimulatedInstructions,
			MemoCaptures:   captureCount,
			MemoHits:       replayCalls - captureCount,
			GangWidth:      *gang,
			FusedGangs:     outcome.FusedGangs,
			FusedPoints:    outcome.FusedPoints,
			DirectPoints:   outcome.DirectPoints,
			GangFallbacks:  outcome.GangFallbacks,
		})
		if err := writeFileAtomic(*telemOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(metrics)
		}); err != nil {
			return fail("tcsweep: %v", err)
		}
	}

	if *uploadURL != "" {
		if err := uploadDoc(*uploadURL, *outbox, *commit, spec.Name, docBytes); err != nil {
			return fail("tcsweep: upload: %v", err)
		}
	}
	return 0
}

// printGangPlan summarizes the planned gang grouping on stderr: trace
// passes per workload, gang-width distribution, and the largest gang's
// predictor-state footprint, so the memory cost of a width is visible
// before anything simulates.
func printGangPlan(points []sweep.Point, shardSize, width int) {
	plans := sweep.PlanGangs(points, shardSize, width)
	mode := fmt.Sprintf("width %d", width)
	if width == 0 {
		mode = "auto width"
	}
	fmt.Fprintf(os.Stderr, "tcsweep: gang plan (%s):\n", mode)
	for _, pl := range plans {
		widths := make([]int, 0, len(pl.Gangs))
		for w := range pl.Gangs {
			widths = append(widths, w)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(widths)))
		var parts []string
		for _, w := range widths {
			parts = append(parts, fmt.Sprintf("%dx%d-point", pl.Gangs[w], w))
		}
		fmt.Fprintf(os.Stderr, "tcsweep:   %-8s %4d points in %4d passes (%s), peak gang state %s\n",
			pl.Workload, pl.Points, pl.Passes, strings.Join(parts, ", "), formatBytes(pl.MaxStateBytes))
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// writeBenchFmt writes one benchfmt result line per recorded rep:
// wall-clock as ns/op plus the run's work and amortization counters. The
// benchmark name carries only the spec, so snapshots taken at different
// gang widths diff cleanly under tcbenchdiff; the width lands in the
// file-level config lines.
func writeBenchFmt(path, specName string, budget int64, gang, workers int, commit string, walls []time.Duration, outcome *sweep.Outcome) error {
	return writeFileAtomic(path, func(out io.Writer) error {
		cfg := []benchfmt.Config{
			{Key: "suite", Value: "tcsweep"},
			{Key: "gang-width", Value: fmt.Sprint(gang)},
			{Key: "workers", Value: fmt.Sprint(workers)},
			{Key: "budget", Value: fmt.Sprint(budget)},
		}
		if commit != "" {
			cfg = append(cfg, benchfmt.Config{Key: "commit", Value: commit})
		}
		w := benchfmt.NewWriter(out)
		passes := outcome.FusedGangs + outcome.DirectPoints
		for _, wall := range walls {
			res := benchfmt.Result{
				FullName: "BenchmarkSweep/exp=sweep-" + specName,
				Iters:    1,
				Values: []benchfmt.Value{
					{Value: float64(wall.Nanoseconds()), Unit: "ns/op"},
					{Value: float64(len(outcome.Results)), Unit: "points/op"},
					{Value: float64(passes), Unit: "passes/op"},
					{Value: float64(outcome.SimulatedInstructions), Unit: "instrs/op"},
				},
				Config: cfg,
			}
			if err := w.Write(&res); err != nil {
				return err
			}
		}
		return nil
	})
}

// uploadDoc ships the sweep/v1 document to a tcperf server, flushing any
// spooled leftovers first. Content-hash IDs make re-uploading the same
// sweep a no-op on the server.
func uploadDoc(baseURL, outbox, commit, specName string, body []byte) error {
	c, err := client.New(client.Config{BaseURL: baseURL, Outbox: outbox})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if outbox != "" {
		if sent, remaining, ferr := c.FlushOutbox(ctx); ferr == nil && sent > 0 {
			fmt.Fprintf(os.Stderr, "tcsweep: flushed %d spooled uploads (%d left)\n", sent, remaining)
		}
	}
	res, err := c.Do(ctx, client.Upload{
		Kind: "sweep", Machine: client.Fingerprint(), Commit: commit,
		Experiment: specName, Schema: sweep.DocumentSchema, Body: body,
	})
	if err != nil {
		return err
	}
	switch {
	case res.Spooled:
		fmt.Fprintf(os.Stderr, "tcsweep: sweep upload spooled to %s (server unreachable)\n", res.SpoolPath)
	case res.Duplicate:
		fmt.Fprintf(os.Stderr, "tcsweep: sweep already uploaded (%s)\n", res.ID)
	default:
		fmt.Fprintf(os.Stderr, "tcsweep: uploaded sweep as %s\n", res.ID)
	}
	return nil
}

// writeFileAtomic writes via a temp file + rename, so an interrupt or
// error mid-write never leaves a truncated file at path.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
