package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// The gcc workload is a compiler-like pass driver. Its defining property —
// the opposite of perl's — is a *large number of static indirect jumps*:
// a driver walks an IR node array, dispatching each node to one of many
// small pass functions through a function table (one indirect call site),
// and every pass function contains its own switch over node kinds with its
// own jump table (one indirect jump site per function). Node kinds follow a
// Markov chain over the node stream, and each function tests kind bits with
// conditional branches before its switch, so global pattern history carries
// real signal about the upcoming target, as it does for compilers walking
// correlated trees.

const (
	gccFuncs     = 64
	gccNodes     = 4096
	gccRandWords = 4096
)

// gcc register conventions.
const (
	gZ     = isa.Reg(31)
	gNB    = isa.Reg(1) // node array base
	gNI    = isa.Reg(2) // node index
	gKind  = isa.Reg(3) // current node kind
	gFn    = isa.Reg(4) // current node pass-function index
	gFlags = isa.Reg(5) // current node flags
	gAcc   = isa.Reg(6)
	gT1    = isa.Reg(7)
	gRC    = isa.Reg(8) // random cursor
	gRB    = isa.Reg(9) // random base
	gT2    = isa.Reg(10)
	gT3    = isa.Reg(11)
	gFD    = isa.Reg(12) // function-dispatch table base
	gT4    = isa.Reg(17)
	gN     = isa.Reg(20) // node count
)

// gccKindCounts returns each pass function's switch size, spread like
// Figure 2's histogram: many functions see only a couple of node kinds,
// a few see dozens.
func gccKindCounts(rng *rand.Rand) []int {
	counts := make([]int, gccFuncs)
	for i := range counts {
		switch {
		case i < 20:
			counts[i] = 2
		case i < 32:
			counts[i] = 3 + rng.Intn(2) // 3-4
		case i < 44:
			counts[i] = 5 + rng.Intn(4) // 5-8
		case i < 54:
			counts[i] = 9 + rng.Intn(8) // 9-16
		case i < 60:
			counts[i] = 17 + rng.Intn(8) // 17-24
		default:
			counts[i] = 25 + rng.Intn(10) // 25-34
		}
	}
	return counts
}

// gccNodeStream generates the IR node array. Both the pass-function index
// and the node kind evolve as mostly-deterministic chains on the previous
// node's (fn, kind) state — the local correlation a tree walk exhibits and
// the signal history-based predictors learn — with a noise floor that keeps
// prediction imperfect. Flags are derived from the kind (plus two random
// bits), so the driver's flag tests expose kind information the way real
// predicate checks do.
func gccNodeStream(rng *rand.Rand, kindCounts []int) []int64 {
	// fnMap[f][kbits] is the deterministic next pass function.
	fnMap := make([][4]int, gccFuncs)
	for f := range fnMap {
		for kb := 0; kb < 4; kb++ {
			fnMap[f][kb] = rng.Intn(gccFuncs)
		}
	}
	// kindPerm[f] is function f's deterministic kind successor.
	kindPerm := make([][]int, gccFuncs)
	for f := range kindPerm {
		kindPerm[f] = rng.Perm(kindCounts[f])
	}
	nodes := make([]int64, 0, gccNodes*3)
	fn, kind := 0, 0
	for i := 0; i < gccNodes; i++ {
		if rng.Float64() < 0.94 {
			fn = fnMap[fn][kind&3]
		} else {
			fn = rng.Intn(gccFuncs)
		}
		k := kindCounts[fn]
		if rng.Float64() < 0.93 {
			kind = kindPerm[fn][kind%k]
		} else {
			kind = rng.Intn(k)
		}
		flags := int64(kind)
		if rng.Intn(8) == 0 { // rare uncorrelated predicate
			flags |= 1 << 6
		}
		nodes = append(nodes, int64(kind), int64(fn), flags)
	}
	return nodes
}

func gccCaseLabel(fn, kind int) string { return fmt.Sprintf("f%d_k%d", fn, kind) }

func buildGcc() *isa.Program {
	rng := rand.New(rand.NewSource(0x6cc) /* fixed: deterministic workload */)
	b := isa.NewBuilder("gcc", 0x40000)

	kindCounts := gccKindCounts(rng)
	nodes := gccNodeStream(rng, kindCounts)

	nodesBase := b.Words(len(nodes))
	for i, w := range nodes {
		b.SetWord(nodesBase+int64(i)*8, w)
	}
	fdispBase := b.Words(gccFuncs)
	ktabBase := make([]int64, gccFuncs)
	for f := 0; f < gccFuncs; f++ {
		ktabBase[f] = b.Words(kindCounts[f])
	}
	randBase := b.Words(gccRandWords)
	for i := 0; i < gccRandWords; i++ {
		b.SetWord(randBase+int64(i)*8, int64(rng.Uint64()>>1))
	}

	b.Label("init")
	b.LoadImm(gZ, 0)
	b.LoadImm(gNB, nodesBase)
	b.LoadImm(gFD, fdispBase)
	b.LoadImm(gRB, randBase)
	b.LoadImm(gRC, 0)
	b.LoadImm(gAcc, 1)
	b.LoadImm(gNI, 0)
	b.LoadImm(gN, gccNodes)

	// Driver loop: fetch node fields, run data-dependent driver work, then
	// dispatch to the node's pass function (indirect call, gccFuncs
	// targets).
	b.Label("loop")
	b.Br(isa.CondGE, gNI, gN, "done")
	b.ALUI(isa.AluMul, gT1, gNI, 24)
	b.ALU(isa.AluAdd, gT1, gNB, gT1)
	b.Load(gKind, gT1, 0)
	b.Load(gFn, gT1, 8)
	b.Load(gFlags, gT1, 16)
	// Flag tests: flags carry kind bits (signal) plus two genuinely random
	// bits (noise) — compilers test a mix of correlated and uncorrelated
	// predicates between dispatches.
	b.ALUI(isa.AluAnd, gT2, gFlags, 1)
	b.Br(isa.CondEQ, gT2, gZ, "d1")
	b.ALUI(isa.AluAdd, gAcc, gAcc, 1)
	b.Label("d1")
	b.ALUI(isa.AluAnd, gT2, gFlags, 0x40)
	b.Br(isa.CondEQ, gT2, gZ, "d2")
	b.ALUI(isa.AluXor, gAcc, gAcc, 5)
	b.Label("d2")
	// Per-node background work: fixed-trip loop over random data.
	b.LoadImm(gT2, 3)
	b.Label("dwork")
	gccEmitRand(b, gT4)
	b.ALU(isa.AluAdd, gAcc, gAcc, gT4)
	b.ALUI(isa.AluSub, gT2, gT2, 1)
	b.Br(isa.CondNE, gT2, gZ, "dwork")
	// Pass-selection predicates: the driver tests properties that depend
	// on which pass will run (fn bits), exposing them to pattern history
	// before the dispatch.
	b.ALUI(isa.AluAnd, gT2, gFn, 1)
	b.Br(isa.CondEQ, gT2, gZ, "d3")
	b.ALUI(isa.AluAdd, gAcc, gAcc, 2)
	b.Label("d3")
	b.ALUI(isa.AluAnd, gT2, gFn, 2)
	b.Br(isa.CondEQ, gT2, gZ, "d4")
	b.ALUI(isa.AluXor, gAcc, gAcc, 9)
	b.Label("d4")
	// Dispatch.
	b.ALUI(isa.AluSll, gT1, gFn, 3)
	b.ALU(isa.AluAdd, gT1, gFD, gT1)
	b.Load(gT3, gT1, 0)
	b.CallIndSel(gT3, gFn)
	b.ALUI(isa.AluAdd, gNI, gNI, 1)
	b.Jmp("loop")

	b.Label("done")
	b.Halt()

	// Pass functions. Each tests kind bits (exposing the kind to pattern
	// history), then switches on the kind through its own jump table — the
	// per-function static indirect jump sites.
	for f := 0; f < gccFuncs; f++ {
		k := kindCounts[f]
		b.Label(fmt.Sprintf("fn%d", f))
		b.ALUI(isa.AluAnd, gT2, gKind, 1)
		b.Br(isa.CondEQ, gT2, gZ, fmt.Sprintf("fa%d", f))
		b.ALUI(isa.AluAdd, gAcc, gAcc, int64(f))
		b.Label(fmt.Sprintf("fa%d", f))
		if k > 4 {
			b.ALUI(isa.AluAnd, gT2, gKind, 2)
			b.Br(isa.CondEQ, gT2, gZ, fmt.Sprintf("fb%d", f))
			b.ALUI(isa.AluXor, gAcc, gAcc, int64(f))
			b.Label(fmt.Sprintf("fb%d", f))
		}
		if k > 8 {
			b.ALUI(isa.AluAnd, gT2, gKind, 4)
			b.Br(isa.CondEQ, gT2, gZ, fmt.Sprintf("fc%d", f))
			b.ALUI(isa.AluAdd, gAcc, gAcc, int64(2*f+1))
			b.Label(fmt.Sprintf("fc%d", f))
		}
		b.ALUI(isa.AluSll, gT1, gKind, 3)
		b.ALUI(isa.AluAdd, gT1, gT1, ktabBase[f])
		b.Load(gT3, gT1, 0)
		b.JmpIndSel(gT3, gKind)
		for kind := 0; kind < k; kind++ {
			b.Label(gccCaseLabel(f, kind))
			// Case-block work, varying by case so target blocks differ.
			switch kind % 3 {
			case 0:
				b.ALUI(isa.AluAdd, gAcc, gAcc, int64(kind+1))
				b.ALUI(isa.AluSll, gT2, gAcc, 1)
				b.ALU(isa.AluXor, gAcc, gAcc, gT2)
			case 1:
				gccEmitRand(b, gT2)
				b.ALU(isa.AluAdd, gAcc, gAcc, gT2)
				b.ALUI(isa.AluSrl, gT2, gAcc, 2)
				b.ALU(isa.AluOr, gAcc, gAcc, gT2)
			default:
				b.ALUI(isa.AluMul, gT2, gAcc, 3)
				b.ALUI(isa.AluAdd, gAcc, gT2, int64(kind))
			}
			b.Jmp(fmt.Sprintf("fx%d", f))
		}
		b.Label(fmt.Sprintf("fx%d", f))
		b.Ret()
	}

	prog := b.SetEntry("init").MustBuild()

	// Patch dispatch tables.
	for f := 0; f < gccFuncs; f++ {
		addr, ok := b.AddrOfLabel(fmt.Sprintf("fn%d", f))
		if !ok {
			panic("gcc: missing function label")
		}
		prog.Data[(fdispBase+int64(f)*8)/8] = int64(addr)
		for kind := 0; kind < kindCounts[f]; kind++ {
			caddr, ok := b.AddrOfLabel(gccCaseLabel(f, kind))
			if !ok {
				panic("gcc: missing case label")
			}
			prog.Data[(ktabBase[f]+int64(kind)*8)/8] = int64(caddr)
		}
	}
	return prog
}

// gccEmitRand advances the shared random cursor and loads a word into dst.
func gccEmitRand(b *isa.Builder, dst isa.Reg) {
	b.ALUI(isa.AluAdd, gRC, gRC, 1)
	b.ALUI(isa.AluAnd, gRC, gRC, gccRandWords-1)
	b.ALUI(isa.AluSll, gT1, gRC, 3)
	b.ALU(isa.AluAdd, gT1, gRB, gT1)
	b.Load(dst, gT1, 0)
}

var gccWorkload = register(&Workload{
	Name:        "gcc",
	Description: "compiler-like pass driver: 65 static indirect jump sites over Markov-correlated IR nodes",
	build:       buildGcc,
})
