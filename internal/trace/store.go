package trace

// Out-of-core columnar trace store: the TCSTORE1 on-disk format holds a
// capture as compressed (or raw) structure-of-arrays block groups in the
// exact Blocks column layout, so budgets far beyond RAM replay in flat
// memory. A Store reads groups lazily through an io.ReaderAt, decodes them
// into ordinary Blocks batches, and keeps a bounded LRU cache of decoded
// groups; the simulation kernels iterate it through the same BlockSource
// interface the in-memory path uses.
//
// File layout (all integers little-endian):
//
//	magic            8  bytes  "TCSTORE1"
//	group 0..G-1     per group: encoded payload | uint32 CRC32(payload)
//	index            per group: int64 offset | uint32 encLen | uint32 recs
//	footer          44  bytes  int64 indexOff | uint32 groups |
//	                           int64 totalRecs | uint32 flags |
//	                           uint32 blockLen | uint32 groupRecs |
//	                           uint32 CRC32(index) | 8 bytes "TCSTEND1"
//
// A group payload is, before optional compression:
//
//	uint32 recs | PC[recs]×8 | Target[recs]×8 | Addr[recs]×8 |
//	Meta[recs] | Dst[recs] | Src1[recs] | Src2[recs]
//
// Every byte of the file is covered by a check: group payloads and the
// index carry CRC32s, and the footer fields are cross-validated against
// the file size, the block layout constants, and each other. Damage never
// panics: it surfaces as an ErrCorrupt from OpenStore or from BlockAt on
// the affected group, mirroring the in-memory decoder's contract.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

const (
	storeMagic    = "TCSTORE1"
	storeEndMagic = "TCSTEND1"
	// storeFooterLen is the fixed footer size.
	storeFooterLen = 8 + 4 + 8 + 4 + 4 + 4 + 4 + 8
	// storeIndexEntryLen is one index entry: offset, encoded length,
	// record count.
	storeIndexEntryLen = 8 + 4 + 4
	// storeFlagFlate marks flate-compressed group payloads.
	storeFlagFlate = 1 << 0
	// storeGroupRecords is the default records per group: 16 blocks,
	// ~1.8 MB of raw columns — large enough to amortise a read syscall,
	// small enough that a bounded cache holds tens of groups.
	storeGroupRecords = 16 * BlockLen
	// storeDefaultCacheBytes bounds the decoded-group LRU cache when the
	// caller passes no explicit budget.
	storeDefaultCacheBytes = 64 << 20
)

// storeBytesPerRecord is the raw column footprint of one record.
const storeBytesPerRecord = 3*8 + 4

// StoreOptions configure WriteStore.
type StoreOptions struct {
	// Compress flate-compresses every group payload. Decoding costs more
	// per cache miss; the file is typically 2-4× smaller.
	Compress bool
	// GroupRecords is the records per block group; 0 means the default
	// (16 blocks). It must be a positive multiple of BlockLen.
	GroupRecords int
}

// WriteStore drains src into w in the TCSTORE1 format and returns the
// record count written. The stream is written strictly forward (no
// seeking), so w can be a pipe or a growing file.
func WriteStore(w io.Writer, src Source, opts StoreOptions) (int64, error) {
	groupRecs := opts.GroupRecords
	if groupRecs == 0 {
		groupRecs = storeGroupRecords
	}
	if groupRecs <= 0 || groupRecs%BlockLen != 0 {
		return 0, fmt.Errorf("trace: store group size %d is not a positive multiple of %d", groupRecs, BlockLen)
	}
	sw := &storeWriter{
		w:         w,
		groupRecs: groupRecs,
		compress:  opts.Compress,
		pc:        make([]uint64, 0, groupRecs),
		target:    make([]uint64, 0, groupRecs),
		addr:      make([]uint64, 0, groupRecs),
		meta:      make([]uint8, 0, groupRecs),
		dst:       make([]uint8, 0, groupRecs),
		src1:      make([]uint8, 0, groupRecs),
		src2:      make([]uint8, 0, groupRecs),
	}
	if err := sw.writeRaw([]byte(storeMagic)); err != nil {
		return 0, err
	}
	var r Record
	for src.Next(&r) {
		if err := sw.add(&r); err != nil {
			return sw.n, err
		}
	}
	if err := SourceErr(src); err != nil {
		return sw.n, err
	}
	if err := sw.finish(); err != nil {
		return sw.n, err
	}
	return sw.n, nil
}

type storeGroupMeta struct {
	off    int64
	encLen uint32
	recs   uint32
}

type storeWriter struct {
	w         io.Writer
	off       int64
	n         int64
	groupRecs int
	compress  bool
	index     []storeGroupMeta

	pc, target, addr      []uint64
	meta, dst, src1, src2 []uint8
	payload, encoded      []byte
	flateW                *flate.Writer
}

func (sw *storeWriter) writeRaw(b []byte) error {
	n, err := sw.w.Write(b)
	sw.off += int64(n)
	return err
}

func (sw *storeWriter) add(r *Record) error {
	sw.pc = append(sw.pc, r.PC)
	sw.target = append(sw.target, r.Target)
	sw.addr = append(sw.addr, r.Addr)
	mb := uint8(r.Class) | uint8(r.Op)<<MetaOpShift
	if r.Taken {
		mb |= MetaTaken
	}
	sw.meta = append(sw.meta, mb)
	sw.dst = append(sw.dst, r.Dst)
	sw.src1 = append(sw.src1, r.Src1)
	sw.src2 = append(sw.src2, r.Src2)
	sw.n++
	if len(sw.meta) == sw.groupRecs {
		return sw.flushGroup()
	}
	return nil
}

// flushGroup encodes the pending records as one group and writes it.
func (sw *storeWriter) flushGroup() error {
	recs := len(sw.meta)
	if recs == 0 {
		return nil
	}
	raw := sw.payload[:0]
	raw = binary.LittleEndian.AppendUint32(raw, uint32(recs))
	for _, v := range sw.pc {
		raw = binary.LittleEndian.AppendUint64(raw, v)
	}
	for _, v := range sw.target {
		raw = binary.LittleEndian.AppendUint64(raw, v)
	}
	for _, v := range sw.addr {
		raw = binary.LittleEndian.AppendUint64(raw, v)
	}
	raw = append(raw, sw.meta...)
	raw = append(raw, sw.dst...)
	raw = append(raw, sw.src1...)
	raw = append(raw, sw.src2...)
	sw.payload = raw

	enc := raw
	if sw.compress {
		var buf bytes.Buffer
		buf.Grow(len(raw) / 2)
		if sw.flateW == nil {
			zw, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err != nil {
				return err
			}
			sw.flateW = zw
		} else {
			sw.flateW.Reset(&buf)
		}
		if _, err := sw.flateW.Write(raw); err != nil {
			return err
		}
		if err := sw.flateW.Close(); err != nil {
			return err
		}
		sw.encoded = buf.Bytes()
		enc = sw.encoded
	}

	sw.index = append(sw.index, storeGroupMeta{off: sw.off, encLen: uint32(len(enc)), recs: uint32(recs)})
	if err := sw.writeRaw(enc); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(enc))
	if err := sw.writeRaw(crc[:]); err != nil {
		return err
	}
	sw.pc, sw.target, sw.addr = sw.pc[:0], sw.target[:0], sw.addr[:0]
	sw.meta, sw.dst, sw.src1, sw.src2 = sw.meta[:0], sw.dst[:0], sw.src1[:0], sw.src2[:0]
	return nil
}

func (sw *storeWriter) finish() error {
	if err := sw.flushGroup(); err != nil {
		return err
	}
	indexOff := sw.off
	idx := make([]byte, 0, len(sw.index)*storeIndexEntryLen)
	for _, g := range sw.index {
		idx = binary.LittleEndian.AppendUint64(idx, uint64(g.off))
		idx = binary.LittleEndian.AppendUint32(idx, g.encLen)
		idx = binary.LittleEndian.AppendUint32(idx, g.recs)
	}
	if err := sw.writeRaw(idx); err != nil {
		return err
	}
	var flags uint32
	if sw.compress {
		flags |= storeFlagFlate
	}
	foot := make([]byte, 0, storeFooterLen)
	foot = binary.LittleEndian.AppendUint64(foot, uint64(indexOff))
	foot = binary.LittleEndian.AppendUint32(foot, uint32(len(sw.index)))
	foot = binary.LittleEndian.AppendUint64(foot, uint64(sw.n))
	foot = binary.LittleEndian.AppendUint32(foot, flags)
	foot = binary.LittleEndian.AppendUint32(foot, BlockLen)
	foot = binary.LittleEndian.AppendUint32(foot, uint32(sw.groupRecs))
	foot = binary.LittleEndian.AppendUint32(foot, crc32.ChecksumIEEE(idx))
	foot = append(foot, storeEndMagic...)
	return sw.writeRaw(foot)
}

// ---- reader ----

// Store is a lazily decoded TCSTORE1 capture. It implements BlockSource
// (and through it Factory), so every simulation kernel and cursor runs
// over it unchanged; block groups are decoded on demand and held in a
// bounded LRU cache. All methods are safe for concurrent use.
type Store struct {
	r        io.ReaderAt
	closer   io.Closer
	size     int64
	compress bool

	groups     []storeGroupMeta
	groupRecs  int
	blocksPerG int
	nblocks    int
	n          int64

	cacheCap int64
	mu       sync.Mutex
	cached   map[int]*storeCacheEntry
	lruHead  *storeCacheEntry // most recent
	lruTail  *storeCacheEntry // next victim
	cacheUse int64

	hits, misses, evictions atomic.Int64
}

type storeCacheEntry struct {
	gi         int
	blocks     []Block
	bytes      int64
	prev, next *storeCacheEntry
}

// corruptf builds a store ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// OpenStore opens a TCSTORE1 capture from r (size bytes long), validating
// the footer and index. cacheBytes bounds the decoded-group LRU cache
// (<= 0 selects the 64 MB default). Group payloads are validated lazily:
// damage inside a group surfaces as an ErrCorrupt from BlockAt.
func OpenStore(r io.ReaderAt, size int64, cacheBytes int64) (*Store, error) {
	if cacheBytes <= 0 {
		cacheBytes = storeDefaultCacheBytes
	}
	if size < int64(len(storeMagic))+storeFooterLen {
		return nil, corruptf("store file too small (%d bytes)", size)
	}
	head := make([]byte, len(storeMagic))
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("trace: store header: %w", err)
	}
	if string(head) != storeMagic {
		return nil, corruptf("bad store magic %q", head)
	}
	foot := make([]byte, storeFooterLen)
	if _, err := r.ReadAt(foot, size-storeFooterLen); err != nil {
		return nil, fmt.Errorf("trace: store footer: %w", err)
	}
	if string(foot[storeFooterLen-8:]) != storeEndMagic {
		return nil, corruptf("bad store end magic %q", foot[storeFooterLen-8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	groupCount := int64(binary.LittleEndian.Uint32(foot[8:]))
	totalRecs := int64(binary.LittleEndian.Uint64(foot[12:]))
	flags := binary.LittleEndian.Uint32(foot[20:])
	blockLen := binary.LittleEndian.Uint32(foot[24:])
	groupRecs := int64(binary.LittleEndian.Uint32(foot[28:]))
	indexCRC := binary.LittleEndian.Uint32(foot[32:])
	if blockLen != BlockLen {
		return nil, corruptf("store block length %d, want %d", blockLen, BlockLen)
	}
	if flags&^uint32(storeFlagFlate) != 0 {
		return nil, corruptf("unknown store flags %#x", flags)
	}
	if groupRecs <= 0 || groupRecs%BlockLen != 0 {
		return nil, corruptf("store group size %d not a multiple of %d", groupRecs, BlockLen)
	}
	idxLen := groupCount * storeIndexEntryLen
	if indexOff < int64(len(storeMagic)) || indexOff+idxLen != size-storeFooterLen {
		return nil, corruptf("store index [%d,+%d) inconsistent with file size %d", indexOff, idxLen, size)
	}
	idx := make([]byte, idxLen)
	if _, err := r.ReadAt(idx, indexOff); err != nil {
		return nil, fmt.Errorf("trace: store index: %w", err)
	}
	if crc := crc32.ChecksumIEEE(idx); crc != indexCRC {
		return nil, corruptf("store index checksum %#x, want %#x", crc, indexCRC)
	}
	s := &Store{
		r:          r,
		size:       size,
		compress:   flags&storeFlagFlate != 0,
		groupRecs:  int(groupRecs),
		blocksPerG: int(groupRecs / BlockLen),
		cacheCap:   cacheBytes,
		cached:     make(map[int]*storeCacheEntry),
	}
	end := int64(len(storeMagic))
	var sum int64
	for gi := int64(0); gi < groupCount; gi++ {
		e := idx[gi*storeIndexEntryLen:]
		g := storeGroupMeta{
			off:    int64(binary.LittleEndian.Uint64(e[0:])),
			encLen: binary.LittleEndian.Uint32(e[8:]),
			recs:   binary.LittleEndian.Uint32(e[12:]),
		}
		if g.off != end || g.encLen == 0 {
			return nil, corruptf("store group %d at offset %d, want %d", gi, g.off, end)
		}
		if g.recs == 0 || int64(g.recs) > groupRecs {
			return nil, corruptf("store group %d holds %d records, group size %d", gi, g.recs, groupRecs)
		}
		if gi < groupCount-1 && int64(g.recs) != groupRecs {
			return nil, corruptf("store group %d short (%d of %d records) before last", gi, g.recs, groupRecs)
		}
		end = g.off + int64(g.encLen) + 4
		sum += int64(g.recs)
		s.groups = append(s.groups, g)
		s.nblocks += int(int64(g.recs)+BlockLen-1) / BlockLen
	}
	if end != indexOff {
		return nil, corruptf("store groups end at %d, index at %d", end, indexOff)
	}
	if sum != totalRecs {
		return nil, corruptf("store records %d, footer claims %d", sum, totalRecs)
	}
	s.n = totalRecs
	return s, nil
}

// OpenStoreFile opens a TCSTORE1 file from disk; Close releases it.
func OpenStoreFile(path string, cacheBytes int64) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := OpenStore(f, st.Size(), cacheBytes)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.closer = f
	return s, nil
}

// Close releases the underlying file, if the Store owns one.
func (s *Store) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// Len returns the record count the store holds.
func (s *Store) Len() int64 { return s.n }

// CleanLen implements BlockSource. The index is validated at open, so the
// claimed count is deliverable; group-payload damage surfaces as a
// BlockAt error at the affected group instead.
func (s *Store) CleanLen() int64 { return s.n }

// TailErr implements BlockSource; see CleanLen.
func (s *Store) TailErr() error { return nil }

// NumBlocks implements BlockSource.
func (s *Store) NumBlocks() int { return s.nblocks }

// SizeBytes returns the on-disk file size.
func (s *Store) SizeBytes() int64 { return s.size }

// Compressed reports whether group payloads are flate-compressed.
func (s *Store) Compressed() bool { return s.compress }

// BlockAt implements BlockSource, decoding the containing group on demand.
// The returned block remains valid even after the group is evicted from
// the cache (eviction drops the cache's reference; live readers keep
// theirs), so concurrent readers never observe reuse.
func (s *Store) BlockAt(i int) (*Block, error) {
	gi := i / s.blocksPerG
	bi := i % s.blocksPerG
	blocks, err := s.group(gi)
	if err != nil {
		return nil, err
	}
	if bi >= len(blocks) {
		return nil, corruptf("store block %d beyond group %d (%d blocks)", i, gi, len(blocks))
	}
	return &blocks[bi], nil
}

// group returns group gi's decoded blocks, from cache when possible.
func (s *Store) group(gi int) ([]Block, error) {
	s.mu.Lock()
	if e, ok := s.cached[gi]; ok {
		s.lruTouch(e)
		blocks := e.blocks
		s.mu.Unlock()
		s.hits.Add(1)
		storeHits.Add(1)
		return blocks, nil
	}
	s.mu.Unlock()
	s.misses.Add(1)
	storeMisses.Add(1)

	blocks, bytes, err := s.decodeGroup(gi)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if e, ok := s.cached[gi]; ok {
		// Another goroutine decoded the same group concurrently; keep the
		// incumbent so both readers share one copy.
		s.lruTouch(e)
		blocks = e.blocks
		s.mu.Unlock()
		return blocks, nil
	}
	e := &storeCacheEntry{gi: gi, blocks: blocks, bytes: bytes}
	s.cached[gi] = e
	s.lruInsert(e)
	s.cacheUse += bytes
	for s.cacheUse > s.cacheCap && s.lruTail != nil && s.lruTail != e {
		victim := s.lruTail
		s.lruRemove(victim)
		delete(s.cached, victim.gi)
		s.cacheUse -= victim.bytes
		s.evictions.Add(1)
		storeEvictions.Add(1)
	}
	s.mu.Unlock()
	return blocks, nil
}

// lruInsert pushes e to the head (most recently used). Caller holds mu.
func (s *Store) lruInsert(e *storeCacheEntry) {
	e.prev, e.next = nil, s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

// lruRemove unlinks e. Caller holds mu.
func (s *Store) lruRemove(e *storeCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruTouch moves e to the head. Caller holds mu.
func (s *Store) lruTouch(e *storeCacheEntry) {
	if s.lruHead == e {
		return
	}
	s.lruRemove(e)
	s.lruInsert(e)
}

// decodeGroup reads, checks and decodes one group into Blocks batches.
func (s *Store) decodeGroup(gi int) ([]Block, int64, error) {
	g := s.groups[gi]
	enc := make([]byte, int(g.encLen)+4)
	if _, err := s.r.ReadAt(enc, g.off); err != nil {
		return nil, 0, fmt.Errorf("trace: store group %d read: %w", gi, err)
	}
	wantCRC := binary.LittleEndian.Uint32(enc[g.encLen:])
	enc = enc[:g.encLen]
	if crc := crc32.ChecksumIEEE(enc); crc != wantCRC {
		return nil, 0, corruptf("store group %d checksum %#x, want %#x", gi, crc, wantCRC)
	}
	recs := int(g.recs)
	rawLen := 4 + recs*storeBytesPerRecord
	raw := enc
	if s.compress {
		raw = make([]byte, rawLen)
		zr := flate.NewReader(bytes.NewReader(enc))
		if _, err := io.ReadFull(zr, raw); err != nil {
			return nil, 0, corruptf("store group %d inflate: %v", gi, err)
		}
		// The payload must end exactly where the column layout says.
		if n, _ := zr.Read(make([]byte, 1)); n != 0 {
			return nil, 0, corruptf("store group %d inflates past %d bytes", gi, rawLen)
		}
	}
	if len(raw) != rawLen {
		return nil, 0, corruptf("store group %d payload %d bytes, want %d", gi, len(raw), rawLen)
	}
	if got := int(binary.LittleEndian.Uint32(raw)); got != recs {
		return nil, 0, corruptf("store group %d payload claims %d records, index %d", gi, got, recs)
	}

	// Carve all column storage from two exact-size slabs rather than the
	// shared columnArena: the arena over-provisions to its fixed slab size,
	// and a cached group pins whatever slab its blocks were carved from —
	// exact slabs keep the LRU's byte accounting equal to the bytes
	// actually held.
	nblocks := (recs + BlockLen - 1) / BlockLen
	blocks := make([]Block, 0, nblocks)
	slab64 := make([]uint64, 3*recs)
	slab8 := make([]uint8, 4*recs)
	pcCol := raw[4:]
	tgtCol := pcCol[recs*8:]
	addrCol := tgtCol[recs*8:]
	metaCol := addrCol[recs*8 : recs*8+recs]
	dstCol := addrCol[recs*8+recs:]
	src1Col := dstCol[recs:]
	src2Col := src1Col[recs:]
	for done := 0; done < recs; {
		n := BlockLen
		if rem := recs - done; rem < n {
			n = rem
		}
		u64, u8 := slab64, slab8
		slab64, slab8 = u64[3*n:], u8[4*n:]
		blk := Block{
			PC:     u64[0*n : 1*n : 1*n],
			Target: u64[1*n : 2*n : 2*n],
			Addr:   u64[2*n : 3*n : 3*n],
			Meta:   u8[0*n : 1*n : 1*n],
			Dst:    u8[1*n : 2*n : 2*n],
			Src1:   u8[2*n : 3*n : 3*n],
			Src2:   u8[3*n : 4*n : 4*n],
		}
		for j := 0; j < n; j++ {
			blk.PC[j] = binary.LittleEndian.Uint64(pcCol[(done+j)*8:])
			blk.Target[j] = binary.LittleEndian.Uint64(tgtCol[(done+j)*8:])
			blk.Addr[j] = binary.LittleEndian.Uint64(addrCol[(done+j)*8:])
		}
		copy(blk.Meta, metaCol[done:done+n])
		copy(blk.Dst, dstCol[done:done+n])
		copy(blk.Src1, src1Col[done:done+n])
		copy(blk.Src2, src2Col[done:done+n])
		for j := 0; j < n; j++ {
			mb := blk.Meta[j]
			if int(mb&MetaClassMask) >= numClasses || int(mb>>MetaOpShift&MetaOpMask) >= NumOpClasses {
				return nil, 0, corruptf("store group %d record %d: invalid meta byte %#x", gi, done+j, mb)
			}
		}
		blocks = append(blocks, blk)
		done += n
	}
	return blocks, int64(recs) * storeBytesPerRecord, nil
}

// Open implements Factory, returning a streaming cursor over the store.
func (s *Store) Open() Source { return &storeCursor{s: s} }

var (
	_ Factory     = (*Store)(nil)
	_ BlockSource = (*Store)(nil)
)

// storeCursor is a Source over a Store's records. Like Cursor and
// BatchCursor it yields the clean prefix and then surfaces the decode
// error, so the three cursor kinds are stream-for-stream interchangeable.
type storeCursor struct {
	s   *Store
	bi  int
	blk *Block
	i   int
	err error
}

// Next implements Source.
func (c *storeCursor) Next(r *Record) bool {
	if c.err != nil {
		return false
	}
	for {
		if c.blk != nil && c.i < c.blk.Len() {
			c.blk.Record(c.i, r)
			c.i++
			return true
		}
		if c.blk != nil {
			c.bi++
		}
		if c.bi >= c.s.NumBlocks() {
			return false
		}
		blk, err := c.s.BlockAt(c.bi)
		if err != nil {
			c.err = err
			return false
		}
		c.blk, c.i = blk, 0
	}
}

// Err returns the first decode error encountered, or nil on clean end.
func (c *storeCursor) Err() error { return c.err }

var _ ErrSource = (*storeCursor)(nil)

// CacheStats reports a store's decoded-group cache activity.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

// CacheStats returns this store's cache counters.
func (s *Store) CacheStats() CacheStats {
	return CacheStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Evictions: s.evictions.Load()}
}

// Package-wide store cache counters, aggregated across every Store for
// run-level telemetry.
var storeHits, storeMisses, storeEvictions atomic.Int64

// StoreCacheCounters returns process-wide store cache activity.
func StoreCacheCounters() CacheStats {
	return CacheStats{Hits: storeHits.Load(), Misses: storeMisses.Load(), Evictions: storeEvictions.Load()}
}
