package bench

import (
	"fmt"
	"strings"
	"testing"
)

func tinyParams() Params {
	return Params{AccuracyBudget: 60_000, TimingBudget: 40_000}
}

func TestRegistryAndLookup(t *testing.T) {
	all := All()
	if len(all) < 11 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "figures1-8", "figures12-13",
	} {
		if _, err := ByID(want); err != nil {
			t.Errorf("missing paper experiment %q: %v", want, err)
		}
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes each experiment at tiny budgets and
// checks it renders at least one non-empty table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	p := tinyParams()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				out := tab.String()
				if len(tab.Rows) == 0 {
					t.Fatalf("empty table:\n%s", out)
				}
				if !strings.Contains(out, "%") && e.ID != "table3" {
					t.Fatalf("no percentages rendered:\n%s", out)
				}
			}
		})
	}
}

// TestTable1Shape checks Table 1 covers all eight workloads.
func TestTable1Shape(t *testing.T) {
	e, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(tinyParams())
	if len(tables) != 1 || len(tables[0].Rows) != 8 {
		t.Fatalf("table1 should have 8 rows, got %d", len(tables[0].Rows))
	}
	names := []string{"compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp"}
	for i, row := range tables[0].Rows {
		if row[0] != names[i] {
			t.Errorf("row %d benchmark %q, want %q", i, row[0], names[i])
		}
	}
}

// TestTable4QualitativeOrdering asserts the paper's Table 4 findings hold
// at moderate budget: gshare is the best tagless scheme for both
// benchmarks.
func TestTable4QualitativeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, err := ByID("table4")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(Params{AccuracyBudget: 500_000, TimingBudget: 100_000})
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("table4 rows = %d", len(rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscanf(s, &v); err != nil {
			t.Fatalf("bad cell %q: %v", s, err)
		}
		return v
	}
	gshare := rows[3]
	for _, col := range []int{1, 2} {
		g := parse(gshare[col])
		for r := 0; r < 3; r++ {
			if parse(rows[r][col])+0.5 < g {
				t.Errorf("scheme %s (%s) beats gshare (%s) in column %d",
					rows[r][0], rows[r][col], gshare[col], col)
			}
		}
	}
}

// fmtSscanf parses "12.34%" into a float.
func fmtSscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}
