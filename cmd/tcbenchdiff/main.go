// tcbenchdiff compares two per-experiment benchmark JSON files written by
// `tcsim -benchjson` (or `make bench-json`) and prints a per-experiment
// speedup table: old wall time, new wall time, and the ratio between them.
//
// It exits non-zero when any experiment regresses by more than the
// tolerance (default 10%), so CI and pre-merge checks can gate on "no
// experiment got meaningfully slower". Experiments faster than -min-ms in
// the old file are reported but never fail the check: at sub-millisecond
// scale the numbers are scheduler jitter, not simulation work.
//
// Each side accepts a comma-separated list of files from repeated runs;
// per experiment the minimum wall time across the list is used. Min-of-N
// is the standard defence against one-off scheduler noise: the fastest
// observed run is the closest estimate of the code's actual cost.
//
// Usage:
//
//	tcbenchdiff [-tolerance 0.10] [-min-ms 5] OLD.json NEW.json
//	tcbenchdiff OLD1.json,OLD2.json,OLD3.json NEW1.json,NEW2.json,NEW3.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/perfstore/client"
)

// entry mirrors one experiment's record in the bench JSON.
type entry struct {
	WallMS       float64 `json:"wall_ms"`
	Cells        int64   `json:"cells"`
	Instructions int64   `json:"instructions"`
}

func load(path string) (map[string]entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]entry
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// loadMin loads a comma-separated list of bench JSON files and keeps, per
// experiment, the entry with the minimum wall time across the list. An
// experiment missing from some files is kept from the files that have it.
func loadMin(arg string) (map[string]entry, error) {
	min := map[string]entry{}
	for _, path := range strings.Split(arg, ",") {
		m, err := load(path)
		if err != nil {
			return nil, err
		}
		for name, e := range m {
			if best, ok := min[name]; !ok || e.WallMS < best.WallMS {
				min[name] = e
			}
		}
	}
	return min, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "maximum allowed slowdown per experiment (0.10 = 10%)")
	minMS := flag.Float64("min-ms", 5, "experiments faster than this in OLD are informational only")
	uploadURL := flag.String("upload", "", "tcperf server base URL; uploads each NEW snapshot after the diff")
	commit := flag.String("commit", "", "commit id to tag uploads with (required by -upload)")
	experiment := flag.String("experiment", "all", "experiment tag for uploads")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tcbenchdiff [flags] OLD.json[,OLD2.json,...] NEW.json[,NEW2.json,...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *uploadURL != "" && *commit == "" {
		fmt.Fprintln(os.Stderr, "tcbenchdiff: -upload needs -commit to tag the results")
		os.Exit(2)
	}
	oldM, err := loadMin(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcbenchdiff:", err)
		os.Exit(1)
	}
	newM, err := loadMin(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcbenchdiff:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)

	var oldTotal, newTotal float64
	var regressions []string
	fmt.Printf("%-18s %10s %10s %8s\n", "experiment", "old ms", "new ms", "speedup")
	for _, name := range names {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			fmt.Printf("%-18s %10.1f %10s %8s\n", name, o.WallMS, "-", "gone")
			continue
		}
		oldTotal += o.WallMS
		newTotal += n.WallMS
		ratio := "-"
		if n.WallMS > 0 {
			ratio = fmt.Sprintf("%.2fx", o.WallMS/n.WallMS)
		}
		note := ""
		switch {
		case o.WallMS < *minMS:
			note = "  (below min-ms, informational)"
		case n.WallMS > o.WallMS*(1+*tolerance):
			note = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1fms -> %.1fms (+%.0f%%)", name, o.WallMS, n.WallMS, (n.WallMS/o.WallMS-1)*100))
		}
		fmt.Printf("%-18s %10.1f %10.1f %8s%s\n", name, o.WallMS, n.WallMS, ratio, note)
	}
	for _, name := range sortedNewOnly(oldM, newM) {
		fmt.Printf("%-18s %10s %10.1f %8s\n", name, "-", newM[name].WallMS, "new")
	}
	if newTotal > 0 {
		fmt.Printf("%-18s %10.1f %10.1f %7.2fx\n", "TOTAL", oldTotal, newTotal, oldTotal/newTotal)
	}
	// Upload before the regression verdict: a regressed measurement is
	// still a measurement, and the trend endpoint is how regressions get
	// spotted across commits in the first place.
	if *uploadURL != "" {
		if err := uploadNew(*uploadURL, *commit, *experiment, flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "tcbenchdiff: upload:", err)
			os.Exit(1)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "tcbenchdiff: %d experiment(s) regressed more than %.0f%%:\n", len(regressions), *tolerance*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// uploadNew ships each NEW-side snapshot file to a tcperf server as a
// kind=benchjson record, byte-for-byte as tcsim wrote it, so the server's
// trend endpoint sees exactly the numbers the diff did.
func uploadNew(baseURL, commit, experiment, arg string) error {
	c, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	machine := client.Fingerprint()
	for _, path := range strings.Split(arg, ",") {
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		res, err := c.Do(ctx, client.Upload{
			Kind: "benchjson", Machine: machine, Commit: commit, Experiment: experiment, Body: body,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if res.Duplicate {
			fmt.Fprintf(os.Stderr, "tcbenchdiff: %s already uploaded (%s)\n", path, res.ID)
		} else {
			fmt.Fprintf(os.Stderr, "tcbenchdiff: uploaded %s as %s\n", path, res.ID)
		}
	}
	return nil
}

// sortedNewOnly returns the experiments present only in newM, sorted.
func sortedNewOnly(oldM, newM map[string]entry) []string {
	var names []string
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
