package workload

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestReplayCapturesOncePerKey hammers one (workload, budget) key from many
// goroutines and asserts the VM ran exactly once and every caller saw the
// same capture.
func TestReplayCapturesOncePerKey(t *testing.T) {
	ResetMemo()
	w, err := ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 20_000
	before := CaptureCount()
	reps := make([]*trace.Replay, 16)
	var wg sync.WaitGroup
	for i := range reps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i] = w.Replay(budget)
		}()
	}
	wg.Wait()
	if got := CaptureCount() - before; got != 1 {
		t.Fatalf("capture count = %d, want 1", got)
	}
	for i, rep := range reps {
		if rep != reps[0] {
			t.Fatalf("goroutine %d got a different Replay pointer", i)
		}
	}
	if reps[0].Len() != budget {
		t.Fatalf("captured %d records, want %d", reps[0].Len(), budget)
	}
	// A different budget is a different key: one more capture.
	w.Replay(budget / 2)
	if got := CaptureCount() - before; got != 2 {
		t.Fatalf("capture count after second key = %d, want 2", got)
	}
	keys, bytes := MemoStats()
	if keys != 2 || bytes <= 0 {
		t.Fatalf("MemoStats = %d keys, %d bytes; want 2 keys and nonzero bytes", keys, bytes)
	}
}

// TestReplayMatchesLiveVM asserts the memoized capture is record-for-record
// identical to a fresh VM pass — the invariant that makes replay-backed
// experiment cells byte-identical to VM-backed ones.
func TestReplayMatchesLiveVM(t *testing.T) {
	for _, name := range []string{"perl", "gcc", "compress"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const budget = 10_000
		live := trace.Collect(trace.NewLimit(w.Open(), budget))
		replayed := trace.Collect(w.Replay(budget).Open())
		if len(live) != len(replayed) {
			t.Fatalf("%s: live %d records, replay %d", name, len(live), len(replayed))
		}
		for i := range live {
			if live[i] != replayed[i] {
				t.Fatalf("%s: record %d: live %+v, replay %+v", name, i, live[i], replayed[i])
			}
		}
	}
}

// TestConcurrentProgramBuild races Program/Open/Replay across all
// workloads; under -race this is the audit that build-once program state
// (including synth.go's post-build jump-table patching) is safely
// published.
func TestConcurrentProgramBuild(t *testing.T) {
	ws := append(All(), Extras()...)
	var wg sync.WaitGroup
	for _, w := range ws {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if p := w.Program(); p == nil {
					t.Error("nil program")
				}
				var r trace.Record
				src := trace.NewLimit(w.Open(), 2_000)
				for src.Next(&r) {
				}
				if rep := w.Replay(1_000); rep.Len() != 1_000 {
					t.Errorf("%s: replay len %d", w.Name, rep.Len())
				}
			}()
		}
	}
	wg.Wait()
}
