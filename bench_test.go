package repro_test

// One testing.B benchmark per paper table and figure: each runs the
// corresponding experiment end to end (at reduced budgets so `go test
// -bench=.` completes quickly) and reports the key quantity the paper's
// table reports as a custom metric. For full-scale numbers, run
// `go run ./cmd/tcsim -exp all` or raise the budgets via -benchtime.

import (
	"testing"

	"repro"
)

// benchParams keeps benchmark iterations fast while preserving the
// qualitative results (rates are stable well below these budgets).
func benchParams() repro.ExperimentParams {
	return repro.ExperimentParams{AccuracyBudget: 300_000, TimingBudget: 200_000}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := repro.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(p)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9") }
func BenchmarkFigures1to8(b *testing.B) {
	runExperiment(b, "figures1-8")
}
func BenchmarkFigures12and13(b *testing.B) {
	runExperiment(b, "figures12-13")
}
func BenchmarkAblationHistory(b *testing.B) { runExperiment(b, "ablation-history") }
func BenchmarkBudgetTable(b *testing.B)     { runExperiment(b, "budget") }
func BenchmarkCxx(b *testing.B)             { runExperiment(b, "cxx") }
func BenchmarkFollowups(b *testing.B)       { runExperiment(b, "followups") }
func BenchmarkSensitivity(b *testing.B)     { runExperiment(b, "sensitivity") }
func BenchmarkRAS(b *testing.B)             { runExperiment(b, "ras") }
func BenchmarkContextSwitch(b *testing.B)   { runExperiment(b, "context-switch") }
func BenchmarkWrongPath(b *testing.B)       { runExperiment(b, "wrongpath") }
func BenchmarkVerifyClaims(b *testing.B)    { runExperiment(b, "verify") }
func BenchmarkCBTComparison(b *testing.B)   { runExperiment(b, "cbt") }

// Micro-benchmarks for the core structures: cost per prediction, the
// quantity that would gate a hardware-modelled fetch stage in software.

func BenchmarkTaglessPredict(b *testing.B) {
	tc := repro.NewTagless(repro.TaglessConfig{Entries: 512, Scheme: repro.SchemeGshare})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%4096) << 2
		tc.Update(pc, uint64(i), pc+64)
		tc.Predict(pc, uint64(i))
	}
}

func BenchmarkTaggedPredict(b *testing.B) {
	tc := repro.NewTagged(repro.TaggedConfig{
		Entries: 256, Ways: 4, Scheme: repro.SchemeHistoryXor, HistBits: 9,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%4096) << 2
		tc.Update(pc, uint64(i), pc+64)
		tc.Predict(pc, uint64(i))
	}
}

// BenchmarkAccuracySim measures accuracy-simulation throughput
// (instructions per op reported as ns/instr via b.N scaling).
func BenchmarkAccuracySim(b *testing.B) {
	w, err := repro.WorkloadByName("perl")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repro.RunAccuracy(w, 100_000, repro.BaselineConfig())
	}
}

// BenchmarkTimingSim measures timing-simulation throughput.
func BenchmarkTimingSim(b *testing.B) {
	w, err := repro.WorkloadByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	machine := repro.DefaultMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repro.RunTiming(w, 100_000, repro.BaselineConfig(), machine)
	}
}

// BenchmarkTable5Serial and BenchmarkTable5Parallel measure the cell
// scheduler: the same experiment with its cells run one at a time versus
// on an 8-worker pool over the shared memoized traces. On a multi-core
// machine the parallel variant should approach a GOMAXPROCS-fold speedup;
// outputs are byte-identical either way.
func runExperimentParallel(b *testing.B, id string, parallel int) {
	b.Helper()
	e, err := repro.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := benchParams()
	p.Parallel = parallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tables := e.Run(p); len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTable5Serial(b *testing.B)   { runExperimentParallel(b, "table5", 1) }
func BenchmarkTable5Parallel(b *testing.B) { runExperimentParallel(b, "table5", 8) }
