// Package bench defines one reproducible experiment per table and figure in
// the paper's evaluation (Tables 1-9, Figures 1-8 and 12-13), plus ablation
// sweeps beyond the paper. Each experiment runs the relevant simulations
// and renders plain-text tables with the same rows/series the paper
// reports.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Params control experiment scale. The defaults run every experiment in
// seconds; raise the budgets for tighter estimates.
type Params struct {
	// AccuracyBudget is the instruction budget per accuracy simulation.
	AccuracyBudget int64
	// TimingBudget is the instruction budget per timing simulation.
	TimingBudget int64
	// EventModel switches the timing experiments from the fast one-pass
	// model to the event-driven validation model (slower, structurally
	// explicit; the two agree on all reported orderings).
	EventModel bool
	// Parallel is the number of simulation cells each experiment runs
	// concurrently: 0 means one worker per CPU, 1 runs serially. Results
	// are gathered positionally, so rendered tables are byte-identical at
	// every setting.
	Parallel int
	// Segments is the number of concurrent segments an accuracy cell may
	// split its capture into (sim.RunAccuracySegmentedCtx): 0 picks
	// automatically — split only when idle workers outnumber queued
	// cells — 1 disables splitting, N forces up to N. Results are
	// byte-identical at every setting.
	Segments int
	// Telemetry, when non-nil, collects per-site predictor statistics,
	// misprediction events and run-level metrics: every simulation cell
	// gets a private collector, merged into the recorder when the cell
	// completes. Nil (the default) disables collection; the disabled cost
	// is one nil check per resolved indirect jump.
	Telemetry *telemetry.Recorder

	// ctx cancels in-flight simulation cells; nil means Background. Set
	// it with WithContext so the zero Params stays usable.
	ctx context.Context
	// experiment labels cells for CellError reporting; the suite runner
	// sets it per experiment via forExperiment.
	experiment string
	// cell identifies the simulation cell this Params copy was minted
	// for; the cell scheduler sets it so kernels can attribute telemetry.
	cell cellID
	// fails, when non-nil, collects every CellError across experiments
	// for the run-level exit digest.
	fails *failureLog
	// segs is the segment count resolved by the cell scheduler for the
	// current cell group (cellSegments applied to the queue length).
	segs int
}

// workers resolves Parallel to a concrete worker count.
func (p Params) workers() int {
	if p.Parallel > 0 {
		return p.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Workers is the resolved worker-pool size (Parallel, or one per CPU when
// unset) — the value telemetry.RunInfo wants.
func (p Params) Workers() int { return p.workers() }

// shareBudget is the largest per-cell budget in play: any capture of at
// least this many records serves every cell of the workload (drivers
// clamp to their own budget), so the memo keeps one capture per workload
// instead of one per (workload, budget).
func (p Params) shareBudget() int64 {
	if p.AccuracyBudget > p.TimingBudget {
		return p.AccuracyBudget
	}
	return p.TimingBudget
}

// cellSegments resolves Segments for a group of `cells` queued cells.
// Automatic mode splits only when workers would otherwise idle (fewer
// cells than workers), giving each cell roughly the spare workers, capped
// at 8 — beyond that, priming overhead outweighs the extra overlap.
func (p Params) cellSegments(cells int) int {
	if p.Segments == 1 {
		return 1
	}
	if p.Segments > 1 {
		return p.Segments
	}
	w := p.workers()
	if cells <= 0 || w <= cells {
		return 1
	}
	s := (w + cells - 1) / cells
	if s > 8 {
		s = 8
	}
	return s
}

// WithContext returns a copy of p whose simulation cells observe ctx:
// cancellation stops in-flight kernels at the next poll boundary and marks
// not-yet-started cells as cancelled, so experiments still render (with
// ERR rows) and the run can summarise what completed.
func (p Params) WithContext(ctx context.Context) Params {
	p.ctx = ctx
	return p
}

// Context returns the params' context, Background when unset.
func (p Params) Context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// forExperiment returns a copy of p labelled with the experiment id and
// wired to the run-level failure log.
func (p Params) forExperiment(id string, fails *failureLog) Params {
	p.experiment = id
	p.fails = fails
	return p
}

// forCell returns a copy of p minted for one simulation cell; telemetry
// collected by the cell's kernels is attributed to id.
func (p Params) forCell(id cellID) Params {
	p.cell = id
	return p
}

// startCollector returns a fresh telemetry collector for the current
// cell, nil when telemetry is disabled.
func (p Params) startCollector() *telemetry.Collector {
	return p.Telemetry.NewCollector()
}

// mergeCollector folds a cell kernel's collector into the run-level
// recorder under the cell's "experiment/workload/config" key. Callers
// defer it so partial telemetry from failed cells still lands.
func (p Params) mergeCollector(col *telemetry.Collector) {
	if col == nil {
		return
	}
	p.Telemetry.Merge(telemetry.Key{
		Experiment: p.experiment,
		Workload:   p.cell.Workload,
		Config:     p.cell.Config,
	}, col)
}

// DefaultParams returns budgets that run the full suite quickly while
// keeping rates stable.
func DefaultParams() Params {
	return Params{AccuracyBudget: 2_000_000, TimingBudget: 1_000_000}
}

// Experiment is one paper table or figure.
type Experiment struct {
	// ID is the command-line name, e.g. "table4" or "figures12-13".
	ID string
	// Title describes the experiment.
	Title string
	// Run executes the experiment and returns rendered tables.
	Run func(p Params) []*stats.Table
}

var experiments []*Experiment

func registerExperiment(e *Experiment) *Experiment {
	experiments = append(experiments, e)
	return e
}

// experimentOrder is the canonical presentation order: the paper's tables
// and figures first, then the extensions, with the claims verifier last.
var experimentOrder = []string{
	"table1", "figures1-8", "table2", "table3", "table4", "table5",
	"table6", "table7", "table8", "table9", "figures12-13",
	"ablation-history", "budget", "cbt", "context-switch", "cxx", "followups", "ras",
	"sensitivity", "wrongpath", "verify",
}

// All returns every experiment in canonical (paper-first) order.
func All() []*Experiment {
	rank := make(map[string]int, len(experimentOrder))
	for i, id := range experimentOrder {
		rank[id] = i
	}
	out := make([]*Experiment, len(experiments))
	copy(out, experiments)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iOK := rank[out[i].ID]
		rj, jOK := rank[out[j].ID]
		if iOK && jOK {
			return ri < rj
		}
		if iOK != jOK {
			return iOK // ranked experiments before unranked ones
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByID returns the named experiment.
func ByID(id string) (*Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// ---- shared helpers ----

// pct formats a fraction as a percentage.
func pct(v float64) string { return stats.Percent(v) }

// timingContext runs the BTB-only machine at most once per workload and
// caches the result for the duration of one experiment. It is safe for
// concurrent use by parallel cells: the first cell needing a workload's
// baseline computes it under a per-workload once while later cells block
// on the same once, so no work is duplicated.
type timingContext struct {
	p      Params
	cpuCfg cpu.Config

	mu   sync.Mutex
	base map[string]*baselineCell
}

type baselineCell struct {
	once   sync.Once
	cycles int64
	err    error
}

func newTimingContext(p Params) *timingContext {
	return &timingContext{p: p, base: make(map[string]*baselineCell), cpuCfg: cpu.DefaultConfig()}
}

// globalBaselines memoizes successful BTB-only baseline cycle counts across
// experiments: the count is a pure function of the key, and several
// experiments rerun the identical baseline machine on the identical
// workload. The memo is consulted only when telemetry is disabled — with
// telemetry on, every experiment must still run its own baseline so its
// "btb-baseline" collector entry is populated. Failures are never stored,
// so an injected fault in one experiment's baseline cell cannot leak into
// another experiment.
var globalBaselines sync.Map // baselineKey -> int64 cycles

type baselineKey struct {
	workload   string
	budget     int64
	eventModel bool
	cpuCfg     cpu.Config
}

// run executes one timing simulation on the configured model, reading the
// workload's memoized trace replay rather than a live VM. col, when
// non-nil, receives the run's telemetry (threaded through the engine so
// both timing models are instrumented identically). Kernel errors
// (corrupt replay, cancellation, deadlock guard) come back in Result.Err;
// callers decide whether to abort their cell.
func (tc *timingContext) run(w *workload.Workload, cfg sim.Config, col *telemetry.Collector) cpu.Result {
	cfg.Telemetry = col
	engine := sim.NewEngine(cfg)
	rep := w.ReplayPrefix(tc.p.TimingBudget, tc.p.shareBudget())
	var res cpu.Result
	if tc.p.EventModel {
		res = cpu.NewEvent(tc.cpuCfg, engine).RunCtx(tc.p.Context(), rep.Open(), tc.p.TimingBudget)
	} else {
		res = cpu.New(tc.cpuCfg, engine).RunReplayCtx(tc.p.Context(), rep, tc.p.TimingBudget)
	}
	instructionsSim.Add(res.Instructions)
	return res
}

func (tc *timingContext) baseline(w *workload.Workload) int64 {
	var gkey baselineKey
	if tc.p.Telemetry == nil {
		gkey = baselineKey{
			workload: w.Name, budget: tc.p.TimingBudget,
			eventModel: tc.p.EventModel, cpuCfg: tc.cpuCfg,
		}
		if v, ok := globalBaselines.Load(gkey); ok {
			return v.(int64)
		}
	}
	tc.mu.Lock()
	c, ok := tc.base[w.Name]
	if !ok {
		c = &baselineCell{}
		tc.base[w.Name] = c
	}
	tc.mu.Unlock()
	c.once.Do(func() {
		// A panicking baseline must not leave later cells reading cycles=0
		// as if it succeeded: capture the failure so every dependent cell
		// aborts with it.
		defer func() {
			if v := recover(); v != nil {
				c.err, _ = recoveredErr(v)
			}
		}()
		// The baseline runs once per workload, inside whichever cell gets
		// there first — so its telemetry is attributed under a fixed
		// "btb-baseline" key rather than the racing cell's, keeping
		// reports identical at any worker count.
		col := tc.p.Telemetry.NewCollector()
		defer tc.p.Telemetry.Merge(telemetry.Key{
			Experiment: tc.p.experiment, Workload: w.Name, Config: "btb-baseline",
		}, col)
		res := tc.run(w, sim.DefaultConfig(), col)
		if res.Err != nil {
			c.err = res.Err
			return
		}
		c.cycles = res.Cycles
	})
	if c.err != nil {
		abortCell(fmt.Errorf("BTB baseline for %s: %w", w.Name, c.err))
	}
	if tc.p.Telemetry == nil {
		globalBaselines.Store(gkey, c.cycles)
	}
	return c.cycles
}

// reduction runs the machine with the given target-cache configuration and
// returns the execution-time reduction versus the BTB-only baseline. p is
// the calling cell's Params (for telemetry attribution).
func (tc *timingContext) reduction(p Params, w *workload.Workload, cfg sim.Config) float64 {
	base := tc.baseline(w)
	col := p.startCollector()
	defer p.mergeCollector(col)
	res := tc.run(w, cfg, col)
	if res.Err != nil {
		abortCell(res.Err)
	}
	return stats.Reduction(float64(base), float64(res.Cycles))
}

// tcConfig builds a sim.Config with the given target cache and history
// constructors.
func tcConfig(newTC func() core.TargetCache, newHist func() history.Provider) sim.Config {
	return sim.DefaultConfig().WithTargetCache(newTC, newHist)
}

// taglessGshare is the tagless target cache used throughout Tables 5-6.
func taglessGshare(entries int) func() core.TargetCache {
	return func() core.TargetCache {
		return core.NewTagless(core.TaglessConfig{Entries: entries, Scheme: core.SchemeGshare})
	}
}

// pattern returns a pattern-history constructor.
func pattern(bits int) func() history.Provider {
	return func() history.Provider { return history.NewPatternProvider(bits) }
}

// path returns a path-history constructor.
func path(cfg history.PathConfig) func() history.Provider {
	return func() history.Provider { return history.NewPath(cfg) }
}

// pathSchemes are the five path-history variants of Tables 5, 6 and 8,
// in the paper's column order.
func pathSchemes(bits, bitsPerTarget, addrBitOffset int) []struct {
	Name string
	Cfg  history.PathConfig
} {
	base := history.PathConfig{
		Bits:          bits,
		BitsPerTarget: bitsPerTarget,
		AddrBitOffset: addrBitOffset,
	}
	mk := func(per bool, f history.PathFilter) history.PathConfig {
		c := base
		c.PerAddress = per
		c.Filter = f
		return c
	}
	return []struct {
		Name string
		Cfg  history.PathConfig
	}{
		{"per-addr", mk(true, 0)},
		{"branch", mk(false, history.FilterBranch)},
		{"control", mk(false, history.FilterControl)},
		{"ind jmp", mk(false, history.FilterIndJmp)},
		{"call/ret", mk(false, history.FilterCallRet)},
	}
}
