package bench

import (
	"testing"
)

// TestExperimentsDeterministic runs a representative accuracy experiment
// and a representative timing experiment twice and requires bit-identical
// tables: workloads are seeded, predictors are state machines, and the
// timing models contain no wall-clock or map-iteration dependence.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments twice")
	}
	p := Params{AccuracyBudget: 100_000, TimingBudget: 60_000}
	for _, id := range []string{"table2", "figures12-13", "followups"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a := e.Run(p)
		b := e.Run(p)
		if len(a) != len(b) {
			t.Fatalf("%s: table counts differ", id)
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%s: table %d differs between runs:\n--- first\n%s\n--- second\n%s",
					id, i, a[i], b[i])
			}
		}
	}
}

// TestEventModelMatchesFastOnOrderings re-runs the figures12-13 experiment
// on both timing models and checks the paper claim (tagged >= tagless at
// high associativity; the reverse at 1-way) holds under each.
func TestEventModelMatchesFastOnOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure experiment on two models")
	}
	e, err := ByID("figures12-13")
	if err != nil {
		t.Fatal(err)
	}
	for _, event := range []bool{false, true} {
		p := Params{AccuracyBudget: 100_000, TimingBudget: 150_000, EventModel: event}
		tables := e.Run(p)
		for _, tab := range tables {
			first := tab.Rows[0]
			last := tab.Rows[len(tab.Rows)-1]
			var taglessLo, taggedLo, taglessHi, taggedHi float64
			mustParse(t, first[1], &taglessLo)
			mustParse(t, first[2], &taggedLo)
			mustParse(t, last[1], &taglessHi)
			mustParse(t, last[2], &taggedHi)
			if taggedLo > taglessLo+1.0 {
				t.Errorf("event=%v %s: 1-way tagged (%v) should not beat tagless (%v) clearly",
					event, tab.Title, taggedLo, taglessLo)
			}
			if taggedHi < taglessHi-1.0 {
				t.Errorf("event=%v %s: 16-way tagged (%v) should not lose to tagless (%v)",
					event, tab.Title, taggedHi, taglessHi)
			}
		}
	}
}

func mustParse(t *testing.T, cell string, v *float64) {
	t.Helper()
	if _, err := fmtSscanf(cell, v); err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
}
