package history

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestPatternShift(t *testing.T) {
	p := NewPattern(4)
	outcomes := []bool{true, false, true, true}
	for _, o := range outcomes {
		p.Update(o)
	}
	// Most recent in LSB: 1,0,1,1 -> 0b1011.
	if got := p.Value(); got != 0b1011 {
		t.Fatalf("pattern = %#b, want 0b1011", got)
	}
	p.Update(false)
	// Oldest bit falls off: 0,1,1,0 -> 0b0110.
	if got := p.Value(); got != 0b0110 {
		t.Fatalf("pattern after shift = %#b, want 0b0110", got)
	}
	p.Reset()
	if p.Value() != 0 {
		t.Fatal("reset did not clear")
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
}

func TestPatternMaskProperty(t *testing.T) {
	f := func(updates []bool) bool {
		p := NewPattern(9)
		for _, u := range updates {
			p.Update(u)
		}
		return p.Value() < 1<<9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternBadLengthPanics(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPattern(%d) did not panic", n)
				}
			}()
			NewPattern(n)
		}()
	}
}

func TestPathConfigValidate(t *testing.T) {
	good := PathConfig{Bits: 9, BitsPerTarget: 1, AddrBitOffset: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []PathConfig{
		{Bits: 0, BitsPerTarget: 1},
		{Bits: 65, BitsPerTarget: 1},
		{Bits: 4, BitsPerTarget: 0},
		{Bits: 4, BitsPerTarget: 5},
		{Bits: 9, BitsPerTarget: 1, AddrBitOffset: -1},
		{Bits: 9, BitsPerTarget: 1, AddrBitOffset: 63},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPathFilterMatches(t *testing.T) {
	cases := []struct {
		f    PathFilter
		c    trace.Class
		want bool
	}{
		{FilterControl, trace.ClassCondDirect, true},
		{FilterControl, trace.ClassUncondDirect, true},
		{FilterControl, trace.ClassIndJump, true},
		{FilterControl, trace.ClassOther, false},
		{FilterBranch, trace.ClassCondDirect, true},
		{FilterBranch, trace.ClassIndJump, false},
		{FilterCallRet, trace.ClassCall, true},
		{FilterCallRet, trace.ClassReturn, true},
		{FilterCallRet, trace.ClassIndCall, true},
		{FilterCallRet, trace.ClassCondDirect, false},
		{FilterIndJmp, trace.ClassIndJump, true},
		{FilterIndJmp, trace.ClassIndCall, true},
		{FilterIndJmp, trace.ClassReturn, false},
	}
	for _, tc := range cases {
		if got := tc.f.Matches(tc.c); got != tc.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", tc.f, tc.c, got, tc.want)
		}
	}
}

func TestGlobalPathShifting(t *testing.T) {
	p := NewPath(PathConfig{Bits: 6, BitsPerTarget: 2, AddrBitOffset: 2,
		Filter: FilterIndJmp})
	r := trace.Record{Class: trace.ClassIndJump, Taken: true, Target: 0b1100} // bits 2..3 = 0b11
	p.Observe(&r)
	if got := p.Value(0); got != 0b11 {
		t.Fatalf("path = %#b, want 0b11", got)
	}
	r.Target = 0b0100 // bits 2..3 = 0b01
	p.Observe(&r)
	if got := p.Value(0); got != 0b1101 {
		t.Fatalf("path = %#b, want 0b1101", got)
	}
	// Non-matching classes must not shift.
	r2 := trace.Record{Class: trace.ClassCondDirect, Taken: true, Target: 0xfff}
	p.Observe(&r2)
	if got := p.Value(0); got != 0b1101 {
		t.Fatalf("filtered class shifted history: %#b", got)
	}
}

func TestGlobalPathNotTakenUsesFallThrough(t *testing.T) {
	p := NewPath(PathConfig{Bits: 4, BitsPerTarget: 4, AddrBitOffset: 2,
		Filter: FilterBranch})
	r := trace.Record{PC: 0x100, Target: 0x200, Class: trace.ClassCondDirect, Taken: false}
	p.Observe(&r)
	want := (r.FallThrough() >> 2) & 0xf
	if got := p.Value(0); got != want {
		t.Fatalf("not-taken path = %#x, want %#x", got, want)
	}
}

func TestPerAddressPath(t *testing.T) {
	p := NewPath(PathConfig{Bits: 4, BitsPerTarget: 1, AddrBitOffset: 2, PerAddress: true})
	a := trace.Record{PC: 0x100, Target: 0x4, Class: trace.ClassIndJump, Taken: true}
	b := trace.Record{PC: 0x200, Target: 0x0, Class: trace.ClassIndJump, Taken: true}
	p.Observe(&a)
	p.Observe(&b)
	if got := p.Value(0x100); got != 1 {
		t.Fatalf("per-addr history for 0x100 = %d, want 1", got)
	}
	if got := p.Value(0x200); got != 0 {
		t.Fatalf("per-addr history for 0x200 = %d, want 0", got)
	}
	if got := p.Value(0x999); got != 0 {
		t.Fatalf("unseen jump history = %d, want 0", got)
	}
	// Conditional branches must not touch per-address registers.
	c := trace.Record{PC: 0x100, Target: 0x4, Class: trace.ClassCondDirect, Taken: true}
	p.Observe(&c)
	if got := p.Value(0x100); got != 1 {
		t.Fatalf("conditional branch updated per-addr history: %d", got)
	}
	p.Reset()
	if got := p.Value(0x100); got != 0 {
		t.Fatal("reset did not clear per-address registers")
	}
}

func TestPathMaskProperty(t *testing.T) {
	f := func(targets []uint32) bool {
		p := NewPath(PathConfig{Bits: 9, BitsPerTarget: 3, AddrBitOffset: 2,
			Filter: FilterControl})
		for _, tg := range targets {
			r := trace.Record{Class: trace.ClassUncondDirect, Taken: true,
				Target: uint64(tg)}
			p.Observe(&r)
		}
		return p.Value(0) < 1<<9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternProvider(t *testing.T) {
	p := NewPatternProvider(4)
	cond := trace.Record{Class: trace.ClassCondDirect, Taken: true}
	other := trace.Record{Class: trace.ClassIndJump, Taken: true, Target: 4}
	p.Observe(&cond)
	p.Observe(&other) // must not shift
	if got := p.Value(0x1234); got != 1 {
		t.Fatalf("provider value = %d, want 1", got)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPathName(t *testing.T) {
	per := PathConfig{Bits: 9, BitsPerTarget: 1, PerAddress: true}
	if per.Name() != "per-addr" {
		t.Fatalf("Name = %q", per.Name())
	}
	glob := PathConfig{Bits: 9, BitsPerTarget: 1, Filter: FilterIndJmp}
	if glob.Name() != "ind jmp" {
		t.Fatalf("Name = %q", glob.Name())
	}
}
