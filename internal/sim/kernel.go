package sim

import (
	"context"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/trace"
)

// Batched accuracy kernel: when the trace factory is a decoded replay
// (the memoized captures every experiment cell runs over), the accuracy
// drivers switch from the streaming Cursor loop to this kernel. It differs
// from the generic loop in two ways, neither observable in the results:
//
//   - Decode-once iteration. Records come from trace.Blocks — the capture
//     varint-decoded a single time process-wide — and non-branch records
//     are skipped with a one-byte class check, never materializing a
//     Record.
//   - Devirtualization. The per-branch Predict/Resolve sequence is
//     inlined here and instantiated per concrete (target cache, history)
//     pair, so the hot path is direct calls on concrete structs instead
//     of interface dispatch through core.TargetCache/history.Provider.
//
// The inlined sequence must mirror Engine.Predict/Engine.Resolve exactly;
// TestKernelMatchesGenericLoop and the bench golden report pin the
// equivalence, and internal/sim's overhead test cross-checks the counters
// against an independently maintained copy of the generic loop.

// targetCache is the compile-time constraint for the kernel's target-cache
// parameter: the hot subset of core.TargetCache.
type targetCache interface {
	Predict(pc, hist uint64) (target uint64, ok bool)
	Update(pc, hist, target uint64)
}

// historySource is the hot subset of history.Provider.
type historySource interface {
	Value(pc uint64) uint64
	Observe(r *trace.Record)
}

// noTC and noHist instantiate the kernel for the BTB-only baseline
// (Config.NewTargetCache == nil). Their no-op methods inline to nothing,
// reproducing the nil-interface guards in Engine.Predict/Resolve.
type noTC struct{}

func (noTC) Predict(pc, hist uint64) (uint64, bool) { return 0, false }
func (noTC) Update(pc, hist, target uint64)         {}

type noHist struct{}

func (noHist) Value(pc uint64) uint64  { return 0 }
func (noHist) Observe(r *trace.Record) {}

// blocksFor unwraps the decoded-batch representation behind a factory: a
// memoized Replay (decoded once, cached), an explicit Blocks, or any
// other BlockSource such as the out-of-core trace.Store.
func blocksFor(factory trace.Factory) (trace.BlockSource, bool) {
	switch f := factory.(type) {
	case *trace.Replay:
		return f, true
	case trace.BlockSource:
		return f, true
	}
	return nil, false
}

// runAccuracyBlocks dispatches the batched kernel over the concrete
// (target cache, history) pair the engine was built with. Unlisted pairs
// (the followup predictors: cascaded, ITTAGE, chooser) fall back to an
// interface-typed instantiation of the same kernel — still decode-once,
// just without devirtualized predictor calls.
func runAccuracyBlocks(ctx context.Context, bs trace.BlockSource, budget, flushInterval int64, cfg Config) AccuracyResult {
	engine := NewEngine(cfg)
	return runAccuracyEngine(ctx, bs, 0, budget, flushInterval, engine)
}

// runAccuracyEngine dispatches an already-constructed engine over records
// [start, budget); the segmented driver uses start to resume a primed
// engine at its seam, the plain path passes start = 0.
func runAccuracyEngine(ctx context.Context, bs trace.BlockSource, start, budget, flushInterval int64, engine *Engine) AccuracyResult {
	switch tc := engine.TC.(type) {
	case nil:
		return accuracyKernel(ctx, bs, start, budget, flushInterval, engine, noTC{}, noHist{})
	case *core.Tagless:
		return dispatchHist(ctx, bs, start, budget, flushInterval, engine, tc)
	case *core.Tagged:
		return dispatchHist(ctx, bs, start, budget, flushInterval, engine, tc)
	case *core.Cascaded:
		return dispatchHist(ctx, bs, start, budget, flushInterval, engine, tc)
	case *core.ITTAGE:
		return dispatchHist(ctx, bs, start, budget, flushInterval, engine, tc)
	case *core.Chooser:
		return dispatchHist(ctx, bs, start, budget, flushInterval, engine, tc)
	}
	return accuracyKernel[core.TargetCache, history.Provider](ctx, bs, start, budget, flushInterval, engine, engine.TC, engine.Hist)
}

// dispatchHist instantiates the kernel over the engine's concrete history
// type for an already-resolved target cache.
func dispatchHist[TC targetCache](ctx context.Context, bs trace.BlockSource, start, budget, flushInterval int64, engine *Engine, tc TC) AccuracyResult {
	switch h := engine.Hist.(type) {
	case history.PatternProvider:
		return accuracyKernel(ctx, bs, start, budget, flushInterval, engine, tc, h)
	case *history.Path:
		return accuracyKernel(ctx, bs, start, budget, flushInterval, engine, tc, h)
	}
	return accuracyKernel[TC, history.Provider](ctx, bs, start, budget, flushInterval, engine, tc, engine.Hist)
}

// accuracyKernel is the batched, devirtualized accuracy loop over records
// [start, budget). tc and hist are the engine's own target cache and
// history, passed at their concrete types; engine is retained for Reset
// (flush intervals) and telemetry. Instruction indices (context polls,
// flush points, telemetry clocks) are absolute trace positions, so a
// segment kernel behaves exactly like the same span of a streaming run;
// res.Instructions counts only the records processed in the span.
func accuracyKernel[TC targetCache, H historySource](
	ctx context.Context, bs trace.BlockSource, start, budget, flushInterval int64,
	engine *Engine, tc TC, hist H,
) AccuracyResult {
	var res AccuracyResult
	btbT, ras, dir, tel := engine.BTB, engine.RAS, engine.Dir, engine.Tel

	limit := budget
	if limit < 0 {
		limit = 0
	}
	if start < 0 {
		start = 0
	}
	// The block layout invariant (block i covers records [i*BlockLen,
	// i*BlockLen+len)) lets the kernel seek straight to the seam block.
	effEnd := limit
	if clean := bs.CleanLen(); clean < effEnd {
		effEnd = clean
	}
	if start > effEnd {
		start = effEnd
	}
	insns := start
	var r trace.Record
	for bi := int(start / trace.BlockLen); insns < effEnd; bi++ {
		blk, err := bs.BlockAt(bi)
		if err != nil {
			res.Instructions = insns - start
			res.Err = err
			return res
		}
		base := int64(bi) * trace.BlockLen
		meta := blk.Meta
		m := len(meta)
		if rem := effEnd - base; int64(m) > rem {
			m = int(rem)
		}
		lo := 0
		if base < insns {
			lo = int(insns - base)
		}
		// Reslice the columns to the iteration length once so i < m
		// proves every access in range (no per-access bounds checks).
		meta = meta[:m]
		pcs := blk.PC[:m]
		tgts := blk.Target[:m]
		addrs := blk.Addr[:m]
		for i := lo; i < m; i++ {
			insns = base + int64(i) + 1
			if insns&ctxCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					res.Instructions = insns - start
					res.Err = err
					return res
				}
			}
			if flushInterval > 0 && insns%flushInterval == 0 {
				engine.Reset()
			}
			mb := meta[i]
			cls := trace.Class(mb & trace.MetaClassMask)
			if cls == trace.ClassOther {
				continue
			}
			res.Branches++
			// Lean materialization: only the fields the predictors read
			// (the register operands stay zero; no consumer below looks
			// at them).
			r.PC = pcs[i]
			r.Target = tgts[i]
			r.Addr = addrs[i]
			r.Class = cls
			r.Op = trace.OpClass(mb >> trace.MetaOpShift & trace.MetaOpMask)
			r.Taken = mb&trace.MetaTaken != 0

			// ---- Engine.Predict, inlined at concrete types ----
			// The history value is computed lazily: only indirect jumps
			// consume it, and hist is not mutated until Observe below, so
			// deferring the read cannot change its value.
			var pTaken, pHasTarget, pFromTC, phOK bool
			var pTarget, ph uint64
			entry, bref, hit := btbT.Probe(r.PC)
			if hit {
				if entry.Class == trace.ClassCondDirect {
					pTaken = dir.Predict(r.PC)
				} else {
					pTaken = true
				}
				if pTaken {
					switch entry.Class {
					case trace.ClassReturn:
						if addr, ok := ras.Peek(); ok {
							pTarget, pHasTarget = addr, true
						}
					case trace.ClassIndJump, trace.ClassIndCall:
						ph = hist.Value(r.PC)
						phOK = true
						if tgt, ok := tc.Predict(r.PC, ph); ok {
							pTarget, pHasTarget, pFromTC = tgt, true, true
						} else {
							pTarget, pHasTarget = entry.Target, true
						}
					default:
						pTarget, pHasTarget = entry.Target, true
					}
				}
			}
			correct := pTaken == r.Taken && (!r.Taken || (pHasTarget && pTarget == r.Target))

			switch cls {
			case trace.ClassCondDirect:
				res.Conditional.Record(correct)
			case trace.ClassUncondDirect, trace.ClassCall:
				res.Direct.Record(correct)
			case trace.ClassReturn:
				res.Returns.Record(correct)
			case trace.ClassIndJump, trace.ClassIndCall:
				res.Indirect.Record(correct)
				if pFromTC {
					res.TCCovered++
				}
			}
			res.Overall.Record(correct)

			// ---- Engine.Resolve, inlined at concrete types ----
			if (cls == trace.ClassIndJump || cls == trace.ClassIndCall) && !phOK {
				ph = hist.Value(r.PC)
			}
			if tel != nil && (cls == trace.ClassIndJump || cls == trace.ClassIndCall) {
				tel.SetClock(insns)
				tel.Indirect(r.PC, ph, pTarget, pTaken && pHasTarget, r.Target, correct)
			}
			if cls == trace.ClassCall || cls == trace.ClassIndCall {
				ras.Push(r.FallThrough())
			}
			if cls == trace.ClassReturn {
				ras.Pop()
			}
			if cls == trace.ClassCondDirect {
				dir.Update(r.PC, r.Taken)
			}
			if cls == trace.ClassIndJump || cls == trace.ClassIndCall {
				tc.Update(r.PC, ph, r.Target)
			}
			hist.Observe(&r)
			if hit {
				btbT.UpdateHit(bref, &r)
			} else {
				btbT.Update(&r)
			}
		}
	}
	res.Instructions = insns - start
	// The streaming loop surfaces a decode error only when the budget
	// reaches past the cleanly decoded prefix (a Limit that stops earlier
	// never touches the damage). Mirror that exactly.
	if limit > bs.CleanLen() {
		res.Err = bs.TailErr()
	}
	return res
}
