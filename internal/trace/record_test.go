package trace

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                                      Class
		isBranch, isIndirect, isTCPred, isCall bool
	}{
		{ClassOther, false, false, false, false},
		{ClassCondDirect, true, false, false, false},
		{ClassUncondDirect, true, false, false, false},
		{ClassCall, true, false, false, true},
		{ClassReturn, true, true, false, false},
		{ClassIndJump, true, true, true, false},
		{ClassIndCall, true, true, true, true},
	}
	for _, tc := range cases {
		if got := tc.c.IsBranch(); got != tc.isBranch {
			t.Errorf("%v.IsBranch() = %v, want %v", tc.c, got, tc.isBranch)
		}
		if got := tc.c.IsIndirect(); got != tc.isIndirect {
			t.Errorf("%v.IsIndirect() = %v, want %v", tc.c, got, tc.isIndirect)
		}
		if got := tc.c.IsTargetCachePredicted(); got != tc.isTCPred {
			t.Errorf("%v.IsTargetCachePredicted() = %v, want %v", tc.c, got, tc.isTCPred)
		}
		if got := tc.c.IsCall(); got != tc.isCall {
			t.Errorf("%v.IsCall() = %v, want %v", tc.c, got, tc.isCall)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassOther; c <= ClassIndCall; c++ {
		if s := c.String(); s == "" || s[0] == 'C' && s != "Class(7)" {
			// All real classes have lowercase names.
			if s[0] >= 'A' && s[0] <= 'Z' {
				t.Errorf("class %d has unexpected name %q", c, s)
			}
		}
	}
	if got := Class(200).String(); got != "Class(200)" {
		t.Errorf("unknown class name = %q", got)
	}
	if got := OpClass(200).String(); got != "OpClass(200)" {
		t.Errorf("unknown op class name = %q", got)
	}
	for op := 0; op < NumOpClasses; op++ {
		if OpClass(op).String() == "" {
			t.Errorf("op class %d has empty name", op)
		}
	}
}

func TestRecordNextPC(t *testing.T) {
	r := Record{PC: 0x1000, Target: 0x2000, Taken: true}
	if got := r.NextPC(); got != 0x2000 {
		t.Errorf("taken NextPC = %#x, want 0x2000", got)
	}
	r.Taken = false
	if got := r.NextPC(); got != 0x1004 {
		t.Errorf("not-taken NextPC = %#x, want 0x1004", got)
	}
	if got := r.FallThrough(); got != 0x1004 {
		t.Errorf("FallThrough = %#x, want 0x1004", got)
	}
}
