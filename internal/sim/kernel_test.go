package sim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/trace"
	"repro/internal/workload"
)

// opaqueFactory hides a capture's concrete type from RunAccuracyCtx's
// dispatch, forcing the streaming reference loop over the same records the
// batched kernel consumes.
type opaqueFactory struct{ rep trace.Factory }

func (f opaqueFactory) Open() trace.Source { return f.rep.Open() }

// kernelConfigs covers every dispatch arm in runAccuracyBlocks: the
// BTB-only baseline, each devirtualized (target cache, history) pairing,
// and a cache outside the switch that lands on the interface-typed
// fallback instantiation.
func kernelConfigs() map[string]Config {
	return map[string]Config{
		"baseline": DefaultConfig(),
		"tagless-pattern": DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
			},
			func() history.Provider { return history.NewPatternProvider(9) },
		),
		"tagged-path": DefaultConfig().WithTargetCache(
			func() core.TargetCache {
				return core.NewTagged(core.TaggedConfig{Entries: 512, Ways: 4, HistBits: 9})
			},
			func() history.Provider {
				return history.NewPath(history.PathConfig{Bits: 9, BitsPerTarget: 3, AddrBitOffset: 2})
			},
		),
		"cascaded": DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewCascaded(core.DefaultCascadedConfig()) },
			func() history.Provider { return history.NewPatternProvider(9) },
		),
		"ittage": DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewITTAGE(core.DefaultITTAGEConfig()) },
			func() history.Provider { return history.NewPatternProvider(9) },
		),
		"fallback-lasttarget": DefaultConfig().WithTargetCache(
			func() core.TargetCache { return core.NewLastTarget(256, 2) },
			func() history.Provider { return history.NewPatternProvider(9) },
		),
	}
}

// TestKernelMatchesGenericLoop pins the batched devirtualized accuracy
// kernel against the streaming reference loop: identical AccuracyResult,
// field for field, for every dispatch arm, with and without periodic
// flushes.
func TestKernelMatchesGenericLoop(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60_000
	rep := trace.Capture(trace.NewLimit(w.Open(), budget))
	ctx := context.Background()
	for name, cfg := range kernelConfigs() {
		for _, flush := range []int64{0, 7_777} {
			got := RunAccuracyWithFlushesCtx(ctx, rep, budget, flush, cfg)
			want := RunAccuracyWithFlushesCtx(ctx, opaqueFactory{rep}, budget, flush, cfg)
			if got != want {
				t.Errorf("%s flush=%d: kernel result diverges\n  kernel  %+v\n  generic %+v", name, flush, got, want)
			}
		}
	}
}

// BenchmarkRunAccuracy measures accuracy-simulation throughput over a
// memoized replay (the batched devirtualized kernel) for the BTB-only
// baseline and a target-cache configuration, with the streaming reference
// loop alongside for comparison.
func BenchmarkRunAccuracy(b *testing.B) {
	const budget = 1_000_000
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	rep := w.Replay(budget)
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"baseline", DefaultConfig()},
		{"tagless-pattern", kernelConfigs()["tagless-pattern"]},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunAccuracy(rep, budget, c.cfg)
			}
			b.ReportMetric(float64(budget*int64(b.N))/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
		b.Run(c.name+"-streaming", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunAccuracy(opaqueFactory{rep}, budget, c.cfg)
			}
			b.ReportMetric(float64(budget*int64(b.N))/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// TestKernelErrorContract pins the kernel's corrupt-replay behaviour
// against the streaming loop: same partial counters, and the same
// ErrCorrupt surfaced only when the budget reaches past the cleanly
// decoded prefix.
func TestKernelErrorContract(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 20_000))
	buf := rep.Bytes()
	damaged := trace.NewReplayBytes(buf[:len(buf)*3/4], rep.Len())
	cfg := kernelConfigs()["tagless-pattern"]
	ctx := context.Background()
	for _, budget := range []int64{1_000, rep.Len()} {
		got := RunAccuracyCtx(ctx, damaged, budget, cfg)
		want := RunAccuracyCtx(ctx, opaqueFactory{damaged}, budget, cfg)
		gotErr, wantErr := got.Err, want.Err
		got.Err, want.Err = nil, nil
		if got != want {
			t.Errorf("budget %d: counters diverge\n  kernel  %+v\n  generic %+v", budget, got, want)
		}
		switch {
		case gotErr == nil && wantErr == nil:
		case gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error():
			t.Errorf("budget %d: error mismatch: kernel %v, generic %v", budget, gotErr, wantErr)
		}
	}
}
