package benchproc

import (
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const sweepFile = `suite: tcsim
model: fast
BenchmarkSuite/exp=table4/workload=cxx 1 5e+09 ns/op
BenchmarkSuite/exp=table4/workload=perl 1 4e+09 ns/op
BenchmarkSuite/exp=table5/workload=cxx 1 3e+09 ns/op
model: event
BenchmarkSuite/exp=table5/workload=cxx 1 6e+09 ns/op
`

func parseSweep(t *testing.T) []benchfmt.Result {
	t.Helper()
	results, probs, err := benchfmt.ReadAll(strings.NewReader(sweepFile), "sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("problems: %v", probs)
	}
	return results
}

func TestFilter(t *testing.T) {
	results := parseSweep(t)
	cases := []struct {
		expr string
		want []int // indices of matching results
	}{
		{"", []int{0, 1, 2, 3}},
		{"workload:cxx", []int{0, 2, 3}},
		{"workload:cxx exp:table4", []int{0}},
		{"exp:table4,table5", []int{0, 1, 2, 3}},
		{"!workload:perl", []int{0, 2, 3}},
		{"model:event", []int{3}},
		{"workload:cxx !model:event", []int{0, 2}},
		{"table4", []int{0, 1}}, // bare word: substring of the full name
		{"nosuchkey:x", nil},
		{"!nosuchkey:x", []int{0, 1, 2, 3}}, // negated missing key matches
	}
	for _, c := range cases {
		f, err := NewFilter(c.expr)
		if err != nil {
			t.Fatalf("NewFilter(%q): %v", c.expr, err)
		}
		var got []int
		for i := range results {
			if f.Match(&results[i]) {
				got = append(got, i)
			}
		}
		if !equalInts(got, c.want) {
			t.Errorf("filter %q matched %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestFilterErrors(t *testing.T) {
	for _, expr := range []string{":v", "key:", "!"} {
		if _, err := NewFilter(expr); err == nil {
			t.Errorf("NewFilter(%q) succeeded, want error", expr)
		}
	}
}

func TestProjection(t *testing.T) {
	results := parseSweep(t)
	cases := []struct {
		spec string
		want []string
	}{
		{"exp", []string{"table4", "table4", "table5", "table5"}},
		{"exp,workload", []string{"table4/cxx", "table4/perl", "table5/cxx", "table5/cxx"}},
		{".name,model", []string{"BenchmarkSuite/fast", "BenchmarkSuite/fast", "BenchmarkSuite/fast", "BenchmarkSuite/event"}},
		{"missing", []string{"?", "?", "?", "?"}},
	}
	for _, c := range cases {
		p, err := NewProjection(c.spec)
		if err != nil {
			t.Fatalf("NewProjection(%q): %v", c.spec, err)
		}
		for i := range results {
			if got := p.Project(&results[i]); got != c.want[i] {
				t.Errorf("projection %q on result %d = %q, want %q", c.spec, i, got, c.want[i])
			}
		}
	}
}

func TestProjectionErrors(t *testing.T) {
	for _, spec := range []string{"", "a,,b", " , "} {
		if _, err := NewProjection(spec); err == nil {
			t.Errorf("NewProjection(%q) succeeded, want error", spec)
		}
	}
}

// TestProjectionDeterminism pins the property the CI determinism check
// relies on: parsing the same file twice and projecting every result
// yields identical key sequences — no map-iteration order, no hidden
// state.
func TestProjectionDeterminism(t *testing.T) {
	p, err := NewProjection("exp,workload,model")
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	for trial := 0; trial < 10; trial++ {
		results := parseSweep(t)
		keys := make([]string, len(results))
		for i := range results {
			keys[i] = p.Project(&results[i])
		}
		if trial == 0 {
			first = keys
			continue
		}
		for i := range keys {
			if keys[i] != first[i] {
				t.Fatalf("trial %d: projection %d = %q, first parse said %q", trial, i, keys[i], first[i])
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
