// Command tcperf is the long-running results server for the simulation
// suite: it accepts concurrent uploads of `tcsim -benchjson` and
// `-telemetry`/`-sites` JSON, stores them durably in a sharded
// append-only store keyed by (machine fingerprint, commit, experiment),
// and serves query/trend endpoints over them.
//
// Usage:
//
//	tcperf serve -dir /var/lib/tcperf [-addr :8123] [-queue 32] [-max-body-mb 16]
//	tcperf fsck  -dir /var/lib/tcperf [-fix]
//
// The durability contract (see DESIGN.md "tcperf service & durability
// contract"): an upload acknowledged with 200 has been fsynced and
// survives any crash, including kill -9; retries are idempotent
// (content-hash keys); overload sheds with 429 + Retry-After instead of
// buffering unboundedly; SIGINT/SIGTERM drain gracefully — in-flight
// uploads finish and ack, new ones are cleanly rejected, and the process
// exits 0 with every acknowledged byte on disk.
//
// `tcperf fsck` verifies a store directory offline: every record CRC and
// content hash is re-checked, torn tails (normal crash damage) are
// reported and, with -fix, truncated exactly as a server restart would.
// Exit codes: 0 clean, 1 issues found, 2 usage or I/O errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/perfstore"
	"repro/internal/perfstore/perfserver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "fsck":
		return runFsck(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "tcperf: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tcperf serve -dir DIR [-addr :8123] [flags]   run the results server
  tcperf fsck  -dir DIR [-fix]                  verify a store offline
`)
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("tcperf serve", flag.ContinueOnError)
	var (
		dir          = fs.String("dir", "", "store directory (required)")
		addr         = fs.String("addr", ":8123", "listen address (host:port; port 0 picks a free port)")
		shards       = fs.Int("shards", 8, "shard count when creating a new store")
		segmentMB    = fs.Int("segment-mb", 64, "rotate a shard's segment past this size (MB)")
		queue        = fs.Int("queue", 32, "concurrent uploads admitted before shedding with 429")
		maxBodyMB    = fs.Int("max-body-mb", 16, "largest accepted upload body (MB)")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-connection read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-connection write timeout")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "how long a signal-triggered drain waits for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "tcperf: "+format+"\n", args...)
		return 2
	}
	if *dir == "" {
		return fail("serve needs -dir")
	}
	if *queue <= 0 || *maxBodyMB <= 0 || *segmentMB <= 0 || *shards <= 0 {
		return fail("-queue, -max-body-mb, -segment-mb and -shards must be positive")
	}

	store, err := perfstore.Open(*dir, perfstore.Options{
		Shards:          *shards,
		SegmentMaxBytes: int64(*segmentMB) << 20,
	})
	if err != nil {
		return fail("opening store: %v", err)
	}
	defer store.Close()
	for _, note := range store.RepairNotes() {
		fmt.Fprintf(os.Stderr, "tcperf: repaired torn tail in %s (%d bytes dropped past offset %d)\n",
			note.Path, note.LostBytes, note.CleanLen)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "tcperf: store %s: %d records across %d shards\n", *dir, st.Records, st.Shards)

	api := perfserver.New(store, perfserver.Config{
		QueueDepth:   *queue,
		MaxBodyBytes: int64(*maxBodyMB) << 20,
		RetryAfter:   *retryAfter,
	})
	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       60 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("listen %s: %v", *addr, err)
	}
	// The e2e harness and scripts parse this line to learn the bound port.
	fmt.Fprintf(os.Stderr, "tcperf: listening on %s\n", ln.Addr())

	// Container and CI shutdowns send SIGTERM, interactive ones SIGINT:
	// both get the same graceful drain. A second signal kills the process
	// the default way (the handler unregisters once the context fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail("serve: %v", err)
		}
		return 0
	case <-ctx.Done():
		stop()
	}

	// Drain: acknowledged uploads are already durable (fsync before ack);
	// in-flight requests get drainTimeout to finish and ack; anything
	// arriving now is rejected with 503 + Retry-After so clients retry
	// against the restarted server.
	api.StartDrain()
	fmt.Fprintf(os.Stderr, "tcperf: draining (in-flight requests get %v)\n", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "tcperf: drain timeout, closing: %v\n", err)
		srv.Close()
	}
	if err := store.Close(); err != nil {
		return fail("closing store: %v", err)
	}
	snap := api.Snapshot()
	fmt.Fprintf(os.Stderr, "tcperf: drained: %d accepted, %d duplicates, %d shed(429), %d rejected during drain; %d records durable\n",
		snap.Server.Accepted, snap.Server.Duplicates, snap.Server.Shed429, snap.Server.DrainReject, snap.Store.Records)
	return 0
}

func runFsck(args []string) int {
	fs := flag.NewFlagSet("tcperf fsck", flag.ContinueOnError)
	var (
		dir    = fs.String("dir", "", "store directory (required)")
		fix    = fs.Bool("fix", false, "truncate torn tails back to the last durable record")
		asJSON = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tcperf: fsck needs -dir")
		return 2
	}
	rep, err := perfstore.Fsck(*dir, perfstore.FsckOptions{Fix: *fix})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcperf: fsck: %v\n", err)
		return 2
	}
	if *asJSON {
		writeReportJSON(rep)
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.Clean() {
		return 1
	}
	return 0
}

func writeReportJSON(rep *perfstore.FsckReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
