package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader throws arbitrary bytes at the parser. Invariants:
//
//   - never panic, never loop (the harness enforces both);
//   - whatever parses must survive a write → reparse round trip
//     bit-identically (the Writer and Reader agree on the format);
//   - problems and results are disjoint: every returned result carries
//     a positive iteration count and complete value-unit pairs.
//
// Seeds cover real tcsim -benchfmt output plus the classic malformed
// shapes: truncated lines, unit-less values, non-UTF-8 names, counts
// that overflow int64, exotic float syntax.
func FuzzReader(f *testing.F) {
	f.Add([]byte("suite: tcsim\naccuracy-budget: 2000000\nBenchmarkSuite/exp=table2 1 1.0352e+10 ns/op 42 cells/op 2e+06 instrs/op\n"))
	f.Add([]byte("BenchmarkSuite/exp=table1 1 5210400000 ns/op 40 cells/op 2000000 instrs/op\nBenchmarkSuite/exp=table1 1 5190000000 ns/op 40 cells/op 2000000 instrs/op\n"))
	f.Add([]byte("goos: linux\ngoarch: amd64\nBenchmarkDecode/size=1024-8 100 12.5 ns/op 4096 B/op 12 allocs/op\n"))
	f.Add([]byte("BenchmarkX 10"))
	f.Add([]byte("BenchmarkX 10 12.5"))
	f.Add([]byte("BenchmarkX 99999999999999999999999 1 ns/op"))
	f.Add([]byte("BenchmarkX 1 NaN ns/op\nBenchmarkX 1 +Inf ns/op\nBenchmarkX 1 -0 ns/op"))
	f.Add([]byte("Benchmark\xff\xfe 1 2 ns/op\ncommit: \xc3\x28\n"))
	f.Add([]byte("key: value\nkey:\nkey:   spaced   \n::\n:\n"))
	f.Add([]byte("BenchmarkA/b=c/d=e-16 1 0x1p-3 ns/op"))
	f.Add([]byte(strings.Repeat("BenchmarkLong 1 1 ns/op\n", 100)))

	f.Fuzz(func(t *testing.T, data []byte) {
		results, probs, err := ReadAll(bytes.NewReader(data), "fuzz")
		if err != nil {
			// Only I/O-shaped errors (line too long) are allowed here.
			if !strings.Contains(err.Error(), "token too long") {
				t.Fatalf("unexpected reader error: %v", err)
			}
			return
		}
		for _, r := range results {
			if r.Iters <= 0 {
				t.Fatalf("result with non-positive iters: %+v", r)
			}
			if len(r.Values) == 0 {
				t.Fatalf("result with no values: %+v", r)
			}
			for _, v := range r.Values {
				if v.Unit == "" {
					t.Fatalf("value without unit: %+v", r)
				}
			}
			// Lookup and projections must not panic on any parsed name.
			r.Lookup(".name")
			r.Lookup(".fullname")
			r.NameKeys()
		}
		for _, p := range probs {
			if p.Line <= 0 {
				t.Fatalf("problem without line number: %+v", p)
			}
		}

		// Round trip: write the parsed results and reparse; the two
		// parses must agree bit-for-bit.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range results {
			if err := w.Write(&results[i]); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		again, probs2, err := ReadAll(bytes.NewReader(buf.Bytes()), "fuzz-rt")
		if err != nil {
			t.Fatalf("reparse error: %v\ninput:\n%s", err, buf.String())
		}
		if len(probs2) != 0 {
			t.Fatalf("reparse produced problems %v\ninput:\n%s", probs2, buf.String())
		}
		if !resultsEqual(results, again) {
			t.Fatalf("round trip drifted\nwrote:\n%s", buf.String())
		}
	})
}
