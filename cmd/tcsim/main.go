// Command tcsim runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	tcsim -list
//	tcsim -exp table4
//	tcsim -exp all -n 5000000 -t 2000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list), or \"all\"")
		list   = flag.Bool("list", false, "list experiments and exit")
		nAcc   = flag.Int64("n", 0, "accuracy-simulation instruction budget (default 2M)")
		nTime  = flag.Int64("t", 0, "timing-simulation instruction budget (default 1M)")
		model  = flag.String("model", "fast", "timing model: fast | event")
		format = flag.String("format", "text", "output format: text | json | csv")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	params := bench.DefaultParams()
	if *nAcc > 0 {
		params.AccuracyBudget = *nAcc
	}
	if *nTime > 0 {
		params.TimingBudget = *nTime
	}
	switch *model {
	case "fast":
	case "event":
		params.EventModel = true
	default:
		fmt.Fprintf(os.Stderr, "unknown timing model %q (want fast or event)\n", *model)
		os.Exit(2)
	}

	var toRun []*bench.Experiment
	if *exp == "all" {
		toRun = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	type jsonExperiment struct {
		ID     string         `json:"id"`
		Title  string         `json:"title"`
		Tables []*stats.Table `json:"tables"`
	}
	var jsonOut []jsonExperiment

	for _, e := range toRun {
		tables := e.Run(params)
		switch *format {
		case "json":
			jsonOut = append(jsonOut, jsonExperiment{e.ID, e.Title, tables})
		case "csv":
			for _, table := range tables {
				fmt.Printf("# %s: %s\n", e.ID, table.Title)
				if err := table.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		case "text":
			fmt.Printf("== %s: %s ==\n\n", e.ID, e.Title)
			for _, table := range tables {
				table.Render(os.Stdout)
				fmt.Println()
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown output format %q\n", *format)
			os.Exit(2)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
