package stats

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	b := &BarChart{Title: "H", Width: 10}
	b.Add("1", 0.5)
	b.Add(">=30", 1.0)
	b.Add("2", 0.0)
	out := b.String()
	if !strings.Contains(out, "H") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar should be full width:\n%s", out)
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Errorf("half bar should be half width:\n%s", out)
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
	if !strings.Contains(lines[2], "100.0%") {
		t.Errorf("percent label missing:\n%s", out)
	}
}

func TestBarChartEmpty(t *testing.T) {
	b := &BarChart{}
	if out := b.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	b := &BarChart{Width: 20}
	b.Add("big", 1.0)
	b.Add("tiny", 0.001)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("non-zero value should render at least one mark:\n%s", out)
	}
}
