package sim_test

// External test package: sim must not import workload (workloads depend on
// the VM, the simulators depend only on traces), so the cross-package
// concurrency check lives out here. It is the `go test -race` probe for the
// parallel experiment runner's core assumption — many simulations reading
// one shared immutable replay buffer at once.

import (
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestConcurrentAccuracyOverSharedReplay runs many accuracy simulations
// concurrently against one memoized replay and requires every run to agree
// with a serial reference run. Under -race this also proves the replay
// cursors share no mutable state.
func TestConcurrentAccuracyOverSharedReplay(t *testing.T) {
	const budget = 50_000
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Replay(budget)
	ref := sim.RunAccuracy(rep, budget, sim.DefaultConfig())

	const goroutines = 8
	results := make([]sim.AccuracyResult, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = sim.RunAccuracy(rep, budget, sim.DefaultConfig())
		}()
	}
	wg.Wait()
	for i, res := range results {
		if res != ref {
			t.Errorf("goroutine %d: result %+v differs from serial reference %+v", i, res, ref)
		}
	}
}
