package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The paper's future work, made concrete: "for object oriented programs
// where more indirect branches may be executed, tagged caches should
// provide even greater performance benefits. In the future, we will
// evaluate the performance benefit of target caches for C++ benchmarks."
var cxxExperiment = registerExperiment(&Experiment{
	ID:    "cxx",
	Title: "Future work: target caches on a C++-style virtual-call workload",
	Run: func(p Params) []*stats.Table {
		w, err := workload.ByName("cxx")
		if err != nil {
			panic(err)
		}
		tctx := newTimingContext(p)
		base := sim.RunAccuracy(w, p.AccuracyBudget, sim.DefaultConfig())

		t := stats.NewTable(
			"C++-style workload (virtual calls through vtables): misprediction and execution time",
			"Predictor", "ind mispred", "time saved")
		t.AddRow("BTB (1K, 4-way)", pct(base.IndirectMispredictRate()), "-")
		add := func(name string, cfg sim.Config) {
			acc := sim.RunAccuracy(w, p.AccuracyBudget, cfg)
			t.AddRow(name, pct(acc.IndirectMispredictRate()),
				pct(tctx.reduction(w, cfg)))
		}
		// Virtual-call targets correlate with the *path* of recent call
		// targets (composite object structure), so all variants here use
		// ind-jmp path history; tagged caches can store history beyond
		// the index width in their tags — the paper's conjecture.
		mkPath := func(bits, bitsPerTarget int) func() history.Provider {
			return path(history.PathConfig{
				Bits: bits, BitsPerTarget: bitsPerTarget, AddrBitOffset: 2,
				Filter: history.FilterIndJmp,
			})
		}
		mkTagged := func(ways, histBits int) func() core.TargetCache {
			return func() core.TargetCache {
				return core.NewTagged(core.TaggedConfig{
					Entries: 256, Ways: ways,
					Scheme: core.SchemeHistoryXor, HistBits: histBits,
				})
			}
		}
		add("tagless gshare (512), path 9x1", tcConfig(taglessGshare(512), mkPath(9, 1)))
		add("tagless gshare (512), path 9x3", tcConfig(taglessGshare(512), mkPath(9, 3)))
		add("tagged xor (256, 4-way), path 9x3", tcConfig(mkTagged(4, 9), mkPath(9, 3)))
		add("tagged xor (256, 4-way), path 16x4", tcConfig(mkTagged(4, 16), mkPath(16, 4)))
		add("tagged xor (256, 16-way), path 24x2", tcConfig(mkTagged(16, 24), mkPath(24, 2)))
		add("ittage, path 64x4", tcConfig(func() core.TargetCache {
			return core.NewITTAGE(core.DefaultITTAGEConfig())
		}, mkPath(64, 4)))
		t.AddNote("paper conclusion: for OO programs, tagged caches should provide even greater benefits")
		t.AddNote("tags hold history beyond the index width: the 16-way/24-bit tagged cache and ITTAGE exploit it")
		return []*stats.Table{t}
	},
})

// Follow-up designs that grew out of this paper: the cascaded predictor
// (Driesen & Hölzle 1998) and an ITTAGE-style predictor (Seznec 2011),
// compared on all nine workloads against the paper's structures.
var followupsExperiment = registerExperiment(&Experiment{
	ID:    "followups",
	Title: "Lineage: target cache vs cascaded predictor vs ITTAGE-style (misprediction rate)",
	Run: func(p Params) []*stats.Table {
		t := stats.NewTable(
			"Indirect-jump misprediction rate (all with 1K 4-way BTB front end)",
			"Benchmark", "BTB only", "target cache", "hybrid", "cascaded", "ittage")
		tcCfg := tcConfig(func() core.TargetCache {
			return core.NewTagged(core.TaggedConfig{
				Entries: 256, Ways: 4, Scheme: core.SchemeHistoryXor, HistBits: 9,
			})
		}, pattern(9))
		hybridCfg := tcConfig(func() core.TargetCache {
			return core.DefaultChooser()
		}, pattern(9))
		cascCfg := tcConfig(func() core.TargetCache {
			return core.NewCascaded(core.DefaultCascadedConfig())
		}, pattern(9))
		ittageCfg := tcConfig(func() core.TargetCache {
			return core.NewITTAGE(core.DefaultITTAGEConfig())
		}, path(history.PathConfig{
			Bits: 64, BitsPerTarget: 1, AddrBitOffset: 2,
			Filter: history.FilterControl,
		}))

		ws := workload.All()
		ws = append(ws, workload.Extras()...)
		for _, w := range ws {
			base := sim.RunAccuracy(w, p.AccuracyBudget, sim.DefaultConfig())
			tc := sim.RunAccuracy(w, p.AccuracyBudget, tcCfg)
			hyb := sim.RunAccuracy(w, p.AccuracyBudget, hybridCfg)
			casc := sim.RunAccuracy(w, p.AccuracyBudget, cascCfg)
			itt := sim.RunAccuracy(w, p.AccuracyBudget, ittageCfg)
			t.AddRow(w.Name,
				pct(base.IndirectMispredictRate()),
				pct(tc.IndirectMispredictRate()),
				pct(hyb.IndirectMispredictRate()),
				pct(casc.IndirectMispredictRate()),
				pct(itt.IndirectMispredictRate()))
		}
		t.AddNote("hybrid = last-target + tagged cache with a 2-bit meta chooser; cascaded = filtered 2-stage (Driesen & Hölzle); ittage = geometric-history tables (Seznec)")
		return []*stats.Table{t}
	},
})

// Wrong-path execution: the event-driven model can fetch and execute real
// speculative instructions after each misprediction (vm-backed workloads
// expose checkpoint/rollback), so mispredicted indirect jumps also pollute
// the data cache. This experiment measures whether the paper's headline —
// the target cache's execution-time reduction — survives that added
// fidelity.
var wrongPathExperiment = registerExperiment(&Experiment{
	ID:    "wrongpath",
	Title: "Ablation: wrong-path fetch modeling (event-driven model)",
	Run: func(p Params) []*stats.Table {
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		t := stats.NewTable(
			"Execution-time reduction with and without wrong-path fetch (event model)",
			"Benchmark", "reduction (no wrong path)", "reduction (wrong path)",
			"extra dcache accesses")
		for _, w := range workload.PerlGcc() {
			run := func(cfg sim.Config, wrongPath bool) cpu.Result {
				mc := cpu.DefaultConfig()
				mc.ModelWrongPath = wrongPath
				return cpu.NewEvent(mc, sim.NewEngine(cfg)).Run(w.Open(), p.TimingBudget)
			}
			baseClean := run(sim.DefaultConfig(), false)
			tcClean := run(tcCfg, false)
			baseWP := run(sim.DefaultConfig(), true)
			tcWP := run(tcCfg, true)
			t.AddRow(w.Name,
				pct(stats.Reduction(float64(baseClean.Cycles), float64(tcClean.Cycles))),
				pct(stats.Reduction(float64(baseWP.Cycles), float64(tcWP.Cycles))),
				pct(float64(baseWP.DCacheAccesses)/float64(baseClean.DCacheAccesses)-1))
		}
		t.AddNote("wrong-path loads use the speculative machine's real addresses (VM checkpoint/rollback)")
		return []*stats.Table{t}
	},
})

// Context switches wipe predictor state; this ablation resets the whole
// front end every N instructions and reports the indirect misprediction
// rate, quantifying how much of the target cache's advantage survives
// frequent switching (a standard objection to history-based predictors).
var contextSwitchExperiment = registerExperiment(&Experiment{
	ID:    "context-switch",
	Title: "Ablation: predictor flush interval vs indirect misprediction rate",
	Run: func(p Params) []*stats.Table {
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		var out []*stats.Table
		for _, w := range workload.PerlGcc() {
			t := stats.NewTable(
				fmt.Sprintf("Context switches (%s): flush interval vs indirect misprediction", w.Name),
				"flush every", "BTB", "target cache")
			for _, interval := range []int64{0, 1_000_000, 100_000, 10_000, 1_000} {
				label := "never"
				if interval > 0 {
					label = fmt.Sprintf("%d instr", interval)
				}
				base := sim.RunAccuracyWithFlushes(w, p.AccuracyBudget, interval, sim.DefaultConfig())
				tc := sim.RunAccuracyWithFlushes(w, p.AccuracyBudget, interval, tcCfg)
				t.AddRow(label,
					pct(base.IndirectMispredictRate()),
					pct(tc.IndirectMispredictRate()))
			}
			t.AddNote("a history-indexed cache must re-learn one entry per (jump, history) pair after each flush")
			out = append(out, t)
		}
		return out
	},
})

// The paper handles returns with a return address stack rather than the
// target cache ("they are effectively handled with the return address
// stack"); this ablation quantifies that choice: how deep must the RAS be
// before return mispredictions vanish on recursion-heavy workloads?
var rasExperiment = registerExperiment(&Experiment{
	ID:    "ras",
	Title: "Ablation: return address stack depth vs return misprediction rate",
	Run: func(p Params) []*stats.Table {
		names := []string{"xlisp", "gosearch", "perl"}
		t := stats.NewTable(
			"Return misprediction rate by RAS depth",
			append([]string{"RAS depth"}, names...)...)
		for _, depth := range []int{1, 2, 4, 8, 16, 32, 64} {
			row := []string{fmt.Sprintf("%d", depth)}
			for _, name := range names {
				w, err := workload.ByName(name)
				if err != nil {
					panic(err)
				}
				cfg := sim.DefaultConfig()
				cfg.RASDepth = depth
				res := sim.RunAccuracy(w, p.AccuracyBudget, cfg)
				row = append(row, pct(res.Returns.MispredictRate()))
			}
			t.AddRow(row...)
		}
		t.AddNote("the paper's decision to exclude returns from the target cache presumes a deep-enough RAS")
		return []*stats.Table{t}
	},
})

// Sensitivity of the target cache's benefit to machine aggressiveness —
// the paper's introduction in experiment form: "as the issue rate and
// pipeline depth of high performance superscalar processors increase, the
// amount of speculative work issued also increases", so better indirect
// prediction matters more on wider, deeper machines.
var sensitivityExperiment = registerExperiment(&Experiment{
	ID:    "sensitivity",
	Title: "Ablation: execution-time reduction vs machine aggressiveness",
	Run: func(p Params) []*stats.Table {
		machines := []struct {
			name   string
			mutate func(*cpu.Config)
		}{
			{"2-wide, 32-window, depth 3", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 2, 32, 3
			}},
			{"4-wide, 64-window, depth 4", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 4, 64, 4
			}},
			{"8-wide, 128-window, depth 5 (paper)", func(c *cpu.Config) {}},
			{"16-wide, 256-window, depth 8", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 16, 256, 8
			}},
			{"16-wide, 256-window, depth 14", func(c *cpu.Config) {
				c.Width, c.Window, c.FrontEndDepth = 16, 256, 14
			}},
		}
		tcCfg := tcConfig(taglessGshare(512), pattern(9))
		var out []*stats.Table
		for _, w := range workload.PerlGcc() {
			t := stats.NewTable(
				fmt.Sprintf("Sensitivity (%s): target-cache benefit by machine", w.Name),
				"machine", "base IPC", "tc IPC", "time saved", "mispredict stall share")
			for _, m := range machines {
				cfg := cpu.DefaultConfig()
				m.mutate(&cfg)
				base := cpu.Run(w.Open(), p.TimingBudget, sim.NewEngine(sim.DefaultConfig()), cfg)
				tc := cpu.Run(w.Open(), p.TimingBudget, sim.NewEngine(tcCfg), cfg)
				t.AddRow(m.name,
					fmt.Sprintf("%.2f", base.IPC()),
					fmt.Sprintf("%.2f", tc.IPC()),
					pct(stats.Reduction(float64(base.Cycles), float64(tc.Cycles))),
					pct(float64(base.MispredictStallCycles)/float64(base.Cycles)))
			}
			t.AddNote("paper intro: wider/deeper machines lose more to indirect-jump mispredictions")
			out = append(out, t)
		}
		return out
	},
})
