package sim

import (
	"testing"

	"repro/internal/cbt"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRunCBTOracleVsStale(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300_000
	oracleCfg := cbt.DefaultConfig()
	oracleCfg.Oracle = true
	oracle := RunCBT(w, budget, oracleCfg)
	stale := RunCBT(w, budget, cbt.DefaultConfig())

	if oracle.Predictions == 0 || oracle.Predictions != stale.Predictions {
		t.Fatalf("prediction counts: oracle %d stale %d",
			oracle.Predictions, stale.Predictions)
	}
	// The oracle CBT knows the dispatch value: near-perfect. The stale CBT
	// has only the last computed value: on an interpreter it's as bad as a
	// BTB (the paper's Section 2 point).
	if oracle.MispredictRate() > 0.02 {
		t.Errorf("oracle CBT mispredict %.2f%%, want < 2%%", 100*oracle.MispredictRate())
	}
	if stale.MispredictRate() < 0.5 {
		t.Errorf("stale CBT mispredict %.2f%%, want > 50%% on perl", 100*stale.MispredictRate())
	}
}

func TestRunCBTCountsOnlyTargetCachePopulation(t *testing.T) {
	recs := []trace.Record{
		{PC: 0x10, Class: trace.ClassCondDirect, Taken: true, Target: 0x40},
		{PC: 0x20, Class: trace.ClassReturn, Taken: true, Target: 0x44},
		{PC: 0x30, Addr: 1, Class: trace.ClassIndJump, Taken: true, Target: 0x80},
	}
	factory := trace.FactoryFunc(func() trace.Source { return trace.NewSliceSource(recs) })
	c := RunCBT(factory, int64(len(recs)), cbt.DefaultConfig())
	if c.Predictions != 1 {
		t.Fatalf("CBT counted %d predictions, want 1 (indirect jumps only)", c.Predictions)
	}
}
