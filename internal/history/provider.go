package history

import "repro/internal/trace"

// Provider is the interface the prediction drivers use to obtain the branch
// history that indexes a target cache, abstracting over pattern history and
// the path-history variants.
type Provider interface {
	// Value returns the history used to predict the indirect jump at pc.
	Value(pc uint64) uint64
	// Observe records a resolved instruction into the history.
	Observe(r *trace.Record)
	// Len returns the history length in bits.
	Len() int
	// Reset clears the history.
	Reset()
}

// PatternProvider adapts Pattern to Provider: the global register is shared
// by all branches and updated with conditional-branch outcomes.
type PatternProvider struct {
	*Pattern
}

// NewPatternProvider returns a Provider over an n-bit global pattern
// history register.
func NewPatternProvider(n int) PatternProvider {
	return PatternProvider{NewPattern(n)}
}

// Value implements Provider; pattern history is global so pc is ignored.
func (p PatternProvider) Value(pc uint64) uint64 { return p.Pattern.Value() }

// Observe implements Provider, shifting in conditional-branch outcomes.
func (p PatternProvider) Observe(r *trace.Record) {
	if r.Class == trace.ClassCondDirect {
		p.Pattern.Update(r.Taken)
	}
}

var (
	_ Provider = PatternProvider{}
	_ Provider = (*Path)(nil)
)
