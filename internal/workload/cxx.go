package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// The cxx workload is the paper's future-work section made concrete: "for
// object oriented programs where more indirect branches may be executed,
// tagged caches should provide even greater performance benefits. In the
// future, we will evaluate the performance benefit of target caches for
// C++ benchmarks."
//
// It is a virtual-call-heavy program in the style Calder & Grunwald and
// Driesen & Hölzle studied: a class hierarchy of shapes, objects laid out
// in memory with a vtable pointer in their first word, and a driver that
// walks heterogeneous containers invoking virtual methods. Every virtual
// call site performs the real double load (object -> vtable -> method)
// before its indirect call, so dispatch values flow through memory exactly
// as compiled C++ does. Receiver class sequences have container locality
// (runs) plus a polymorphic tail, the regime where BTBs do poorly and
// history helps.

const (
	cxxClasses   = 12
	cxxMethods   = 3 // update / area / describe
	cxxObjects   = 2048
	cxxRandWords = 4096
)

// cxx register conventions.
const (
	cZ   = isa.Reg(31)
	cOB  = isa.Reg(1) // object-pointer array base
	cOI  = isa.Reg(2) // object index
	cObj = isa.Reg(3) // current object pointer (this)
	cVT  = isa.Reg(4) // vtable pointer
	cM   = isa.Reg(5) // method address
	cAcc = isa.Reg(6)
	cT1  = isa.Reg(7)
	cRC  = isa.Reg(8)
	cRB  = isa.Reg(9)
	cT2  = isa.Reg(10)
	cT3  = isa.Reg(11)
	cCls = isa.Reg(12) // class id of the receiver (for trace selectors)
	cT4  = isa.Reg(17)
	cN   = isa.Reg(20) // object count
)

func cxxEmitRand(b *isa.Builder, dst isa.Reg) {
	b.ALUI(isa.AluAdd, cRC, cRC, 1)
	b.ALUI(isa.AluAnd, cRC, cRC, cxxRandWords-1)
	b.ALUI(isa.AluSll, cT1, cRC, 3)
	b.ALU(isa.AluAdd, cT1, cRB, cT1)
	b.Load(dst, cT1, 0)
}

// cxxReceiverStream assigns a class to each container slot. Object graphs
// are built from composite "group templates" — a Car is always Wheel,
// Wheel, Body, Glass; a Paragraph is Run, Run, Run, Image — so the
// container is a concatenation of template instances, chosen by a
// mostly-deterministic successor chain with a random tail. Within a
// template the class sequence (including its internal repeats) is fixed:
// that is the regularity history-based predictors exploit in OO code and
// a last-target BTB cannot.
func cxxReceiverStream(rng *rand.Rand) []int {
	const numTemplates = 12
	templates := make([][]int, numTemplates)
	for t := range templates {
		n := 3 + rng.Intn(8)
		seq := make([]int, 0, n)
		cls := rng.Intn(cxxClasses)
		for len(seq) < n {
			// Composite parts repeat (two Wheels, three Runs).
			rep := 1 + rng.Intn(3)
			for r := 0; r < rep && len(seq) < n; r++ {
				seq = append(seq, cls)
			}
			cls = rng.Intn(cxxClasses)
		}
		templates[t] = seq
	}
	succ := rng.Perm(numTemplates)

	classes := make([]int, 0, cxxObjects)
	cur := 0
	for len(classes) < cxxObjects {
		if rng.Float64() < 0.95 {
			cur = succ[cur]
		} else {
			cur = rng.Intn(numTemplates)
		}
		classes = append(classes, templates[cur]...)
	}
	return classes[:cxxObjects]
}

func buildCxx() *isa.Program {
	rng := rand.New(rand.NewSource(0xCC7) /* fixed: deterministic workload */)
	b := isa.NewBuilder("cxx", 0x140000)

	// vtables: one per class, cxxMethods slots each (patched after build).
	vtables := make([]int64, cxxClasses)
	for c := range vtables {
		vtables[c] = b.Words(cxxMethods)
	}
	// Objects: [vtable, fieldA, fieldB], pointer array indexes them.
	classes := cxxReceiverStream(rng)
	objPtrs := b.Words(cxxObjects)
	for i, cls := range classes {
		obj := b.Words(3)
		b.SetWord(obj, vtables[cls])
		// Object state correlates with its class (shapes of one kind have
		// similar data), so the driver's field tests expose class
		// information the way real predicates do.
		field := int64(rng.Intn(500))*2 + int64(cls&1)
		b.SetWord(obj+8, field)
		b.SetWord(obj+16, int64(cls))
		b.SetWord(objPtrs+int64(i)*8, obj)
	}
	randBase := b.Words(cxxRandWords)
	for i := 0; i < cxxRandWords; i++ {
		b.SetWord(randBase+int64(i)*8, int64(rng.Uint64()>>1))
	}

	b.Label("init")
	b.LoadImm(cZ, 0)
	b.LoadImm(cOB, objPtrs)
	b.LoadImm(cRB, randBase)
	b.LoadImm(cRC, 0)
	b.LoadImm(cAcc, 1)
	b.LoadImm(cOI, 0)
	b.LoadImm(cN, cxxObjects)

	// virtualCall emits the compiled shape of obj->method(): load the
	// vtable pointer, load the method slot, indirect call. The class id
	// (object field 2) is recorded as the dispatch selector.
	virtualCall := func(method int) {
		b.Load(cVT, cObj, 0)
		b.Load(cCls, cObj, 16)
		b.Load(cM, cVT, int64(method)*8)
		b.CallIndSel(cM, cCls)
	}

	// Driver: for each object, update it; for odd field values, also ask
	// for its area — a second, less-frequent virtual site whose receiver
	// correlates with the first's.
	b.Label("loop")
	b.Br(isa.CondGE, cOI, cN, "done")
	b.ALUI(isa.AluSll, cT1, cOI, 3)
	b.ALU(isa.AluAdd, cT1, cOB, cT1)
	b.Load(cObj, cT1, 0)
	b.ALUI(isa.AluAdd, cOI, cOI, 1)
	// Per-object background work.
	b.LoadImm(cT2, 2)
	b.Label("work")
	cxxEmitRand(b, cT4)
	b.ALU(isa.AluAdd, cAcc, cAcc, cT4)
	b.ALUI(isa.AluSub, cT2, cT2, 1)
	b.Br(isa.CondNE, cT2, cZ, "work")
	virtualCall(0) // obj->update()
	b.Load(cT2, cObj, 8)
	b.ALUI(isa.AluAnd, cT2, cT2, 1)
	b.Br(isa.CondEQ, cT2, cZ, "noarea")
	virtualCall(1) // obj->area()
	b.Label("noarea")
	// Every 64th object gets described (a cold third site).
	b.ALUI(isa.AluAnd, cT2, cOI, 63)
	b.Br(isa.CondNE, cT2, cZ, "nodesc")
	virtualCall(2) // obj->describe()
	b.Label("nodesc")
	b.Jmp("loop")

	b.Label("done")
	b.Halt()

	// Method bodies: one per (class, method); distinct lengths per class
	// so targets are genuinely different code.
	for cls := 0; cls < cxxClasses; cls++ {
		for m := 0; m < cxxMethods; m++ {
			b.Label(fmt.Sprintf("m%d_%d", cls, m))
			b.Load(cT3, cObj, 8)
			switch m {
			case 0: // update: mutate the field, preserving its parity
				// (the parity encodes the class; updates change magnitude,
				// not kind).
				b.ALUI(isa.AluAdd, cT3, cT3, int64(2*(cls+1)))
				b.ALUI(isa.AluSrl, cT4, cT3, uint64Shift(cls))
				b.ALUI(isa.AluSll, cT4, cT4, 1)
				b.ALU(isa.AluAdd, cT3, cT3, cT4)
				b.Store(cObj, 8, cT3)
			case 1: // area: class-specific arithmetic
				b.ALUI(isa.AluMul, cT4, cT3, int64(cls+2))
				b.ALU(isa.AluAdd, cAcc, cAcc, cT4)
				if cls%3 == 0 {
					b.ALUI(isa.AluMul, cT4, cT4, 3)
					b.ALU(isa.AluXor, cAcc, cAcc, cT4)
				}
			default: // describe: longer body
				for i := 0; i < 4+cls%4; i++ {
					b.ALUI(isa.AluAdd, cAcc, cAcc, int64(16*cls+i))
				}
			}
			b.Ret()
		}
	}

	prog := b.SetEntry("init").MustBuild()

	for cls := 0; cls < cxxClasses; cls++ {
		for m := 0; m < cxxMethods; m++ {
			addr, ok := b.AddrOfLabel(fmt.Sprintf("m%d_%d", cls, m))
			if !ok {
				panic("cxx: missing method label")
			}
			prog.Data[(vtables[cls]+int64(m)*8)/8] = int64(addr)
		}
	}
	return prog
}

// uint64Shift keeps per-class shift amounts in a sane range.
func uint64Shift(cls int) int64 { return int64(cls%5 + 1) }

var cxxWorkload = register(&Workload{
	Name:        "cxx",
	Description: "C++-style virtual-call workload (paper future work): 3 call sites x 12 classes via vtables",
	Extra:       true,
	build:       buildCxx,
})
