package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = Record{
			PC:     rng.Uint64(),
			Target: rng.Uint64(),
			Addr:   rng.Uint64(),
			Class:  Class(rng.Intn(numClasses)),
			Op:     OpClass(rng.Intn(NumOpClasses)),
			Taken:  rng.Intn(2) == 0,
			Dst:    uint8(rng.Intn(33)),
			Src1:   uint8(rng.Intn(33)),
			Src2:   uint8(rng.Intn(33)),
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	n, err := Copy(w, NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("wrote %d records, want 1000", n)
	}
	r := NewReader(&buf)
	got := Collect(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := Collect(r); len(got) != 0 {
		t.Fatalf("empty trace produced %d records", len(got))
	}
	if err := r.Err(); err != nil {
		t.Fatalf("empty trace read error: %v", err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	var rec Record
	if r.Next(&rec) {
		t.Fatal("bad magic accepted")
	}
	if r.Err() == nil {
		t.Fatal("bad magic produced no error")
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := Record{PC: 42}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-5]))
	var out Record
	if r.Next(&out) {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncated trace produced no error")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(pc, tgt, addr uint64, class, op, dst, s1, s2 uint8, taken bool) bool {
		in := Record{
			PC: pc, Target: tgt, Addr: addr,
			Class: Class(class % uint8(numClasses)),
			Op:    OpClass(op % uint8(NumOpClasses)),
			Taken: taken, Dst: dst, Src1: s1, Src2: s2,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(&in); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		var out Record
		return r.Next(&out) && out == in && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
