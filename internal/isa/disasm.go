package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a program's code segment as assembly text, one
// instruction per line with the address in a trailing comment, so the
// output is valid input to Assemble (the data segment is not recoverable
// from a Program's code and is omitted). Labels are synthesised as
// L<index> at every direct branch target.
func Disassemble(p *Program) string {
	targets := map[int]bool{}
	for _, in := range p.Code {
		switch in.Op {
		case OpBr, OpJmp, OpCall:
			targets[in.Target] = true
		}
	}
	label := func(i int) string { return fmt.Sprintf("L%d", i) }

	var b strings.Builder
	fmt.Fprintf(&b, ".name %s\n.base %#x\n.text\n", p.Name, p.Base)
	for i, in := range p.Code {
		if targets[i] || i == p.Entry {
			fmt.Fprintf(&b, "%s:", label(i))
			if i == p.Entry {
				b.WriteString(" ; entry")
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %-28s ; %#08x\n", disasmInstr(&in, label), p.AddrOf(i))
	}
	return b.String()
}

var aluNames = map[AluOp]string{
	AluAdd: "add", AluSub: "sub", AluAnd: "and", AluOr: "or",
	AluXor: "xor", AluMul: "mul", AluDiv: "div", AluSll: "sll", AluSrl: "srl",
}

var condNames = map[Cond]string{
	CondEQ: "beq", CondNE: "bne", CondLT: "blt", CondGE: "bge",
}

func disasmInstr(in *Instr, label func(int) string) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpRet:
		return "ret"
	case OpALU:
		return fmt.Sprintf("%-5s r%d, r%d, r%d", aluNames[in.Alu], in.Dst, in.Src1, in.Src2)
	case OpALUI:
		return fmt.Sprintf("%-5s r%d, r%d, %d", aluNames[in.Alu]+"i", in.Dst, in.Src1, in.Imm)
	case OpLoadImm:
		return fmt.Sprintf("%-5s r%d, %d", "li", in.Dst, in.Imm)
	case OpLoad:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", "ld", in.Dst, in.Imm, in.Src1)
	case OpStore:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", "st", in.Src2, in.Imm, in.Src1)
	case OpBr:
		return fmt.Sprintf("%-5s r%d, r%d, %s", condNames[in.Cond], in.Src1, in.Src2, label(in.Target))
	case OpJmp:
		return fmt.Sprintf("%-5s %s", "j", label(in.Target))
	case OpCall:
		return fmt.Sprintf("%-5s %s", "call", label(in.Target))
	case OpJmpInd, OpCallInd:
		name := "jr"
		if in.Op == OpCallInd {
			name = "callr"
		}
		if in.Sel != 0 {
			return fmt.Sprintf("%-5s r%d, r%d", name, in.Src1, in.Sel-1)
		}
		return fmt.Sprintf("%-5s r%d", name, in.Src1)
	default:
		return fmt.Sprintf("??? op=%d", in.Op)
	}
}
