package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestModelsAgree cross-validates the fast one-pass timing model against
// the event-driven model: same instruction counts, cycle counts within a
// modest tolerance, and — what the experiments depend on — the same
// direction and similar magnitude for the target cache's benefit.
func TestModelsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four timing simulations")
	}
	const budget = 200_000
	tcCfg := sim.DefaultConfig().WithTargetCache(
		func() core.TargetCache {
			return core.NewTagless(core.TaglessConfig{Entries: 512, Scheme: core.SchemeGshare})
		},
		func() history.Provider { return history.NewPatternProvider(9) },
	)
	for _, name := range []string{"perl", "gcc"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		reduction := func(run func(cfg sim.Config) Result) (float64, Result, Result) {
			base := run(sim.DefaultConfig())
			tc := run(tcCfg)
			return 1 - float64(tc.Cycles)/float64(base.Cycles), base, tc
		}

		fastRed, fastBase, _ := reduction(func(cfg sim.Config) Result {
			return New(DefaultConfig(), sim.NewEngine(cfg)).Run(w.Open(), budget)
		})
		evRed, evBase, _ := reduction(func(cfg sim.Config) Result {
			return NewEvent(DefaultConfig(), sim.NewEngine(cfg)).Run(w.Open(), budget)
		})

		if fastBase.Instructions != evBase.Instructions {
			t.Fatalf("%s: instruction counts differ: %d vs %d",
				name, fastBase.Instructions, evBase.Instructions)
		}
		if fastBase.Mispredicts != evBase.Mispredicts {
			t.Errorf("%s: mispredict counts differ: %d vs %d (same engine, same trace)",
				name, fastBase.Mispredicts, evBase.Mispredicts)
		}
		ratio := float64(fastBase.Cycles) / float64(evBase.Cycles)
		if ratio < 0.6 || ratio > 1.67 {
			t.Errorf("%s: cycle counts diverge: fast=%d event=%d (ratio %.2f)",
				name, fastBase.Cycles, evBase.Cycles, ratio)
		}
		if (fastRed > 0) != (evRed > 0) {
			t.Errorf("%s: models disagree on the target cache's benefit: %.2f%% vs %.2f%%",
				name, 100*fastRed, 100*evRed)
		}
		if diff := fastRed - evRed; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s: reduction estimates far apart: fast %.2f%% event %.2f%%",
				name, 100*fastRed, 100*evRed)
		}
		t.Logf("%s: fast %d cycles (red %.2f%%), event %d cycles (red %.2f%%)",
			name, fastBase.Cycles, 100*fastRed, evBase.Cycles, 100*evRed)
	}
}

// TestEventModelBasics checks structural sanity of the event model alone.
func TestEventModelBasics(t *testing.T) {
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	res := NewEvent(DefaultConfig(), sim.NewEngine(sim.DefaultConfig())).Run(w.Open(), 50_000)
	if res.Instructions != 50_000 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.Cycles <= res.Instructions/int64(DefaultConfig().Width) {
		t.Fatalf("cycles %d below the width bound", res.Cycles)
	}
	if ipc := res.IPC(); ipc <= 0 || ipc > 8 {
		t.Fatalf("IPC %.2f implausible", ipc)
	}
}
