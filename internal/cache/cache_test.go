package cache

import (
	"math/rand"
	"testing"
)

func TestBasicInsertLookup(t *testing.T) {
	c := New[int](4, 2)
	if c.Sets() != 4 || c.Ways() != 2 || c.Entries() != 8 {
		t.Fatalf("geometry wrong: %d sets %d ways", c.Sets(), c.Ways())
	}
	if _, ok := c.Lookup(0, 1); ok {
		t.Fatal("lookup hit in empty cache")
	}
	v, evicted := c.Insert(0, 1)
	if evicted {
		t.Fatal("insert into empty set evicted")
	}
	*v = 42
	got, ok := c.Lookup(0, 1)
	if !ok || *got != 42 {
		t.Fatalf("lookup after insert: ok=%v v=%v", ok, got)
	}
	// Re-insert keeps the payload.
	v2, evicted := c.Insert(0, 1)
	if evicted || *v2 != 42 {
		t.Fatalf("re-insert: evicted=%v v=%d", evicted, *v2)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](1, 2)
	*must(c.Insert(0, 10)) = 10
	*must(c.Insert(0, 20)) = 20
	c.Lookup(0, 10) // make 10 most recently used
	_, evicted := c.Insert(0, 30)
	if !evicted {
		t.Fatal("full set insert did not evict")
	}
	if _, ok := c.Peek(0, 20); ok {
		t.Fatal("LRU entry 20 survived eviction")
	}
	if _, ok := c.Peek(0, 10); !ok {
		t.Fatal("MRU entry 10 was evicted")
	}
}

func must[V any](v *V, _ bool) *V { return v }

func TestInvalidate(t *testing.T) {
	c := New[int](2, 2)
	c.Insert(1, 7)
	if !c.Invalidate(1, 7) {
		t.Fatal("invalidate missed present entry")
	}
	if c.Invalidate(1, 7) {
		t.Fatal("invalidate hit absent entry")
	}
	if _, ok := c.Lookup(1, 7); ok {
		t.Fatal("invalidated entry still present")
	}
}

func TestReset(t *testing.T) {
	c := New[int](2, 2)
	c.Insert(0, 1)
	c.Lookup(0, 1)
	c.Lookup(0, 9)
	c.Reset()
	if _, ok := c.Peek(0, 1); ok {
		t.Fatal("entry survived reset")
	}
	h, m, e := c.Stats()
	if h != 0 || m != 0 || e != 0 {
		t.Fatalf("stats survived reset: %d/%d/%d", h, m, e)
	}
}

func TestStatsCounting(t *testing.T) {
	c := New[int](1, 1)
	c.Lookup(0, 1) // miss
	c.Insert(0, 1)
	c.Lookup(0, 1) // hit
	c.Insert(0, 2) // evict
	h, m, e := c.Stats()
	if h != 1 || m != 1 || e != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", h, m, e)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 1) did not panic")
		}
	}()
	New[int](0, 1)
}

// TestTickSemantics pins the documented LRU clock rule: the tick advances
// exactly once per refreshing operation (Lookup hit, Insert, Touch,
// LookupWay hit, TouchWay) and never on misses or Peeks.
func TestTickSemantics(t *testing.T) {
	c := New[int](2, 2)
	at := func(want uint64, step string) {
		t.Helper()
		if c.tick != want {
			t.Fatalf("after %s: tick = %d, want %d", step, c.tick, want)
		}
	}
	c.Lookup(0, 1) // miss
	at(0, "lookup miss")
	c.Peek(0, 1)
	at(0, "peek")
	c.Insert(0, 1)
	at(1, "insert")
	c.Lookup(0, 1) // hit
	at(2, "lookup hit")
	c.LookupWay(0, 9) // miss
	at(2, "lookupway miss")
	_, way, _ := c.LookupWay(0, 1) // hit
	at(3, "lookupway hit")
	c.TouchWay(0, way)
	at(4, "touchway")
	c.Touch(0, 1) // found
	at(5, "touch found")
	c.Touch(0, 2) // allocated
	at(6, "touch allocate")
	c.Invalidate(0, 2)
	at(6, "invalidate")
}

// TestEvictionOrder pins the victim-selection rule: the first invalid way
// wins; with every way valid, the minimum lastUse wins, first way on ties.
func TestEvictionOrder(t *testing.T) {
	c := New[int](1, 4)
	// Fill ways 0..3 in order; each Insert stamps a fresher tick, so way 0
	// is LRU.
	for tag := uint64(10); tag < 14; tag++ {
		c.Insert(0, tag)
	}
	// Refresh way 0 (tag 10): way 1 (tag 11) becomes LRU.
	c.Lookup(0, 10)
	c.Insert(0, 99)
	if _, ok := c.Peek(0, 11); ok {
		t.Fatal("LRU entry 11 survived eviction")
	}
	for _, tag := range []uint64{10, 12, 13, 99} {
		if _, ok := c.Peek(0, tag); !ok {
			t.Fatalf("entry %d unexpectedly evicted", tag)
		}
	}
	// Invalidate way 2 (tag 12): the invalid way must be preferred over
	// the LRU valid entry.
	c.Invalidate(0, 12)
	_, _, evBefore := c.Stats()
	if _, evicted := c.Insert(0, 77); evicted {
		t.Fatal("insert with an invalid way evicted a valid entry")
	}
	if _, _, ev := c.Stats(); ev != evBefore {
		t.Fatalf("evictions = %d, want %d (filling an invalid way is not an eviction)", ev, evBefore)
	}
}

// TestIndexOf checks the power-of-two mask/shift fast path against the
// div/mod reference for both geometries.
func TestIndexOf(t *testing.T) {
	pow2 := New[int](8, 2)
	odd := New[int](6, 2)
	for _, addr := range []uint64{0, 1, 5, 8, 63, 64, 1 << 40, 0xdeadbeef} {
		if s, tag := pow2.IndexOf(addr); s != int(addr%8) || tag != addr/8 {
			t.Fatalf("pow2 IndexOf(%#x) = (%d,%#x), want (%d,%#x)", addr, s, tag, addr%8, addr/8)
		}
		if s, tag := odd.IndexOf(addr); s != int(addr%6) || tag != addr/6 {
			t.Fatalf("odd IndexOf(%#x) = (%d,%#x), want (%d,%#x)", addr, s, tag, addr%6, addr/6)
		}
	}
}

// TestLookupWayMatchesLookup drives LookupWay/TouchWay and plain Lookup
// caches with the same stream and requires identical hits, stats, and
// eviction behaviour — the equivalence the BTB's probe path relies on.
func TestLookupWayMatchesLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := New[int](4, 2)
	b := New[int](4, 2)
	for op := 0; op < 10000; op++ {
		set := rng.Intn(4)
		tag := uint64(rng.Intn(6))
		switch rng.Intn(3) {
		case 0: // lookup, refreshing via TouchWay on the a-side when it hits
			_, way, hitA := a.LookupWay(set, tag)
			_, hitB := b.Lookup(set, tag)
			if hitA != hitB {
				t.Fatalf("op %d: LookupWay hit=%v, Lookup hit=%v", op, hitA, hitB)
			}
			if hitA {
				// Model the probe/update-hit pattern: refresh the same line
				// again on both sides.
				a.TouchWay(set, way)
				b.Touch(set, tag)
			}
		case 1:
			a.Insert(set, tag)
			b.Insert(set, tag)
		case 2:
			a.Touch(set, tag)
			b.Touch(set, tag)
		}
	}
	ha, ma, ea := a.Stats()
	hb, mb, eb := b.Stats()
	if ha != hb || ma != mb || ea != eb {
		t.Fatalf("stats diverge: way-based %d/%d/%d, plain %d/%d/%d", ha, ma, ea, hb, mb, eb)
	}
	if a.tick != b.tick {
		t.Fatalf("tick diverges: way-based %d, plain %d", a.tick, b.tick)
	}
}

// TestTouchMatchesPeekLookupInsert drives Touch and the two-pass
// Peek/Lookup-or-Insert pattern it replaced with the same stream,
// requiring identical payload contents, stats and ticks.
func TestTouchMatchesPeekLookupInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := New[int](2, 4)
	b := New[int](2, 4)
	for op := 0; op < 10000; op++ {
		set := rng.Intn(2)
		tag := uint64(rng.Intn(10))
		va, existedA := a.Touch(set, tag)
		var vb *int
		existedB := false
		if _, ok := b.Peek(set, tag); ok {
			vb, existedB = must(b.Lookup(set, tag)), true
		} else {
			vb, _ = b.Insert(set, tag)
		}
		if existedA != existedB {
			t.Fatalf("op %d: Touch existed=%v, reference existed=%v", op, existedA, existedB)
		}
		if *va != *vb {
			t.Fatalf("op %d: payloads diverge: %d vs %d", op, *va, *vb)
		}
		*va = op
		*vb = op
	}
	ha, ma, ea := a.Stats()
	hb, mb, eb := b.Stats()
	if ha != hb || ea != eb || ma != mb {
		t.Fatalf("stats diverge: touch %d/%d/%d, reference %d/%d/%d", ha, ma, ea, hb, mb, eb)
	}
	if a.tick != b.tick {
		t.Fatalf("tick diverges: touch %d, reference %d", a.tick, b.tick)
	}
}

// referenceSet is a naive model of one set used to cross-check LRU
// behaviour under random operations.
type referenceSet struct {
	order []uint64 // most recent last
	ways  int
}

func (r *referenceSet) touch(tag uint64) bool {
	for i, t := range r.order {
		if t == tag {
			r.order = append(append(r.order[:i:i], r.order[i+1:]...), tag)
			return true
		}
	}
	return false
}

func (r *referenceSet) insert(tag uint64) {
	if r.touch(tag) {
		return
	}
	if len(r.order) == r.ways {
		r.order = r.order[1:]
	}
	r.order = append(r.order, tag)
}

// TestLRUAgainstReferenceModel drives the cache and a reference model with
// the same random operation stream and checks hit/miss agreement.
func TestLRUAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ways := range []int{1, 2, 4, 8} {
		c := New[struct{}](1, ways)
		ref := &referenceSet{ways: ways}
		for op := 0; op < 10000; op++ {
			tag := uint64(rng.Intn(ways * 3))
			if rng.Intn(2) == 0 {
				_, hit := c.Lookup(0, tag)
				refHit := ref.touch(tag)
				if hit != refHit {
					t.Fatalf("ways=%d op=%d lookup(%d): cache %v, reference %v",
						ways, op, tag, hit, refHit)
				}
			} else {
				c.Insert(0, tag)
				ref.insert(tag)
			}
		}
	}
}
