// Package benchproc slices benchmark results along their structured
// dimensions, after x/perf/benchproc's filter/projection design: a
// Filter decides which results participate, a Projection maps each
// result to the group it belongs to. Together they turn a flat stream
// of benchfmt results into the rows of a comparison table:
//
//	-filter "workload:cxx table:4" -group-by experiment
//
// Keys resolve through benchfmt.Result.Lookup: ".name" (benchmark
// family), ".fullname", sub-name keys ("/exp=table2"), then file
// configuration lines — so the same expression works over tcsim
// output, stock `go test -bench` output, and anything else in the
// standard format.
package benchproc

import (
	"fmt"
	"strings"

	"repro/internal/benchfmt"
)

// A Filter matches results against an expression.
//
// Grammar: space-separated terms, ANDed. Each term is
//
//	[!]key:value[,value...]   key equals any listed value (OR)
//	[!]word                   substring match on the full name
//
// and "!" negates the term. A key a result does not have never matches
// (and its negation always does). The empty expression matches all.
type Filter struct {
	terms []filterTerm
}

type filterTerm struct {
	negate bool
	key    string // empty for bare-word terms
	vals   []string
}

// NewFilter parses a filter expression.
func NewFilter(expr string) (*Filter, error) {
	f := &Filter{}
	for _, tok := range strings.Fields(expr) {
		term := filterTerm{}
		if strings.HasPrefix(tok, "!") {
			term.negate = true
			tok = tok[1:]
		}
		if tok == "" {
			return nil, fmt.Errorf("benchproc: empty filter term in %q", expr)
		}
		if i := strings.IndexByte(tok, ':'); i >= 0 {
			term.key = tok[:i]
			rest := tok[i+1:]
			if term.key == "" {
				return nil, fmt.Errorf("benchproc: filter term %q has empty key", tok)
			}
			if rest == "" {
				return nil, fmt.Errorf("benchproc: filter term %q has empty value", tok)
			}
			term.vals = strings.Split(rest, ",")
		} else {
			term.vals = []string{tok}
		}
		f.terms = append(f.terms, term)
	}
	return f, nil
}

// Match reports whether the result passes every term.
func (f *Filter) Match(r *benchfmt.Result) bool {
	for _, term := range f.terms {
		if term.matches(r) == term.negate {
			return false
		}
	}
	return true
}

func (t *filterTerm) matches(r *benchfmt.Result) bool {
	if t.key == "" {
		return strings.Contains(r.FullName, t.vals[0])
	}
	got, ok := r.Lookup(t.key)
	if !ok {
		return false
	}
	for _, v := range t.vals {
		if got == v {
			return true
		}
	}
	return false
}

// A Projection extracts a composite group key from results: a
// comma-separated field list, e.g. "exp" or ".name,workload".
type Projection struct {
	fields []string
}

// NewProjection parses a projection spec. Fields must be non-empty.
func NewProjection(spec string) (*Projection, error) {
	p := &Projection{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("benchproc: empty field in projection %q", spec)
		}
		p.fields = append(p.fields, field)
	}
	if len(p.fields) == 0 {
		return nil, fmt.Errorf("benchproc: empty projection")
	}
	return p, nil
}

// Fields returns the projection's field names, in order.
func (p *Projection) Fields() []string { return p.fields }

// Project maps a result to its group key: the projected field values
// joined with "/", in field order. A field the result does not have
// projects as "?". Equal keys mean same group; the mapping is a pure
// function of the result's content, so two parses of the same file
// always produce identical keys.
func (p *Projection) Project(r *benchfmt.Result) string {
	parts := make([]string, len(p.fields))
	for i, field := range p.fields {
		if v, ok := r.Lookup(field); ok {
			parts[i] = v
		} else {
			parts[i] = "?"
		}
	}
	return strings.Join(parts, "/")
}
