package benchmath

import (
	"errors"
	"math"
	"sort"
)

// The Mann-Whitney U test asks: are these two samples drawn from the
// same distribution, or is one stochastically larger? It ranks the
// pooled measurements and tests how unevenly the ranks split, so it
// needs no normality assumption — the right choice for benchmark wall
// times, whose long scheduler-noise tails break t-tests.
//
// Small tie-free samples get the exact U distribution (enumerated by
// dynamic programming); larger or tied samples use the normal
// approximation with the standard tie correction and a continuity
// correction. Two-sided p-values throughout.

// exactLimit bounds the per-sample size for the exact distribution. The
// DP is O(n1*n2*(n1*n2)); at 12x12 it is ~20k cells, instant.
const exactLimit = 12

// ErrEmptySample reports a test on an empty sample.
var ErrEmptySample = errors.New("benchmath: empty sample")

// TestResult reports a Mann-Whitney U test.
type TestResult struct {
	// N1, N2 are the sample sizes.
	N1, N2 int
	// U is sample 1's U statistic (tie mid-ranks included).
	U float64
	// P is the two-sided p-value.
	P float64
	// Method is "exact" or "normal".
	Method string
}

// Significant reports whether the test rejects "same distribution" at
// level alpha (e.g. 0.05).
func (r TestResult) Significant(alpha float64) bool { return r.P < alpha }

// MannWhitneyUTest runs a two-sided Mann-Whitney U test on two samples.
func MannWhitneyUTest(x, y []float64) (TestResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return TestResult{}, ErrEmptySample
	}
	type obs struct {
		v     float64
		first bool
	}
	pool := make([]obs, 0, n1+n2)
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	// Mid-ranks: a run of t equal values spanning ranks i+1..i+t all get
	// rank (i+1 + i+t)/2. Track tie run lengths for the variance
	// correction.
	n := n1 + n2
	r1 := 0.0 // rank sum of sample 1
	tieTerm := 0.0
	hasTies := false
	for i := 0; i < n; {
		j := i
		for j < n && pool[j].v == pool[i].v {
			j++
		}
		t := j - i
		if t > 1 {
			hasTies = true
			tf := float64(t)
			tieTerm += tf*tf*tf - tf
		}
		rank := float64(i+1+j) / 2 // average of ranks i+1 .. j
		for k := i; k < j; k++ {
			if pool[k].first {
				r1 += rank
			}
		}
		i = j
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	res := TestResult{N1: n1, N2: n2, U: u1}

	if !hasTies && n1 <= exactLimit && n2 <= exactLimit {
		res.Method = "exact"
		res.P = exactP(n1, n2, u1)
		return res, nil
	}
	res.Method = "normal"
	mu := float64(n1) * float64(n2) / 2
	nf := float64(n)
	sigma2 := float64(n1) * float64(n2) / 12 * ((nf + 1) - tieTerm/(nf*(nf-1)))
	if sigma2 <= 0 {
		// Every pooled value identical: the samples are indistinguishable.
		res.P = 1
		return res, nil
	}
	d := u1 - mu
	switch { // continuity correction toward the mean
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(sigma2)
	res.P = math.Erfc(math.Abs(z) / math.Sqrt2) // 2*(1 - Phi(|z|))
	return res, nil
}

// exactP computes the two-sided p-value from the exact null distribution
// of U for tie-free samples: twice the lower tail of min(U1, U2),
// clamped to 1.
func exactP(n1, n2 int, u1 float64) float64 {
	umax := n1 * n2
	u2 := float64(umax) - u1
	uMin := int(math.Min(u1, u2)) // tie-free U is integral
	counts := uCounts(n1, n2)
	total, tail := 0.0, 0.0
	for u, c := range counts {
		total += c
		if u <= uMin {
			tail += c
		}
	}
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// uCounts enumerates the null distribution of U1 for sample sizes
// (n1, n2): counts[u] is the number of rank arrangements with U1 = u.
// Classic DP on the recurrence c(i, j, u) = c(i-1, j, u-j) + c(i, j-1, u)
// — the largest pooled value belongs either to sample 1 (beating all j
// of sample 2's remaining values) or to sample 2.
func uCounts(n1, n2 int) []float64 {
	umax := n1 * n2
	// cur[j][u] = count for (i, j); iterate i = 0..n1.
	cur := make([][]float64, n2+1)
	for j := range cur {
		cur[j] = make([]float64, umax+1)
		cur[j][0] = 1 // i = 0: only u = 0
	}
	for i := 1; i <= n1; i++ {
		next := make([][]float64, n2+1)
		for j := 0; j <= n2; j++ {
			next[j] = make([]float64, umax+1)
			for u := 0; u <= i*j; u++ {
				c := 0.0
				if u >= j {
					c += cur[j][u-j] // largest value from sample 1
				}
				if j > 0 {
					c += next[j-1][u] // largest value from sample 2
				}
				next[j][u] = c
			}
		}
		cur = next
	}
	return cur[n2]
}
