package history

import (
	"math/rand"
	"testing"
)

// TestAddrTableBasics covers point get/put, overwrite, the zero-value read
// for absent keys, and the dedicated zero-key slot.
func TestAddrTableBasics(t *testing.T) {
	tbl := newAddrTable()
	if got := tbl.get(0x40); got != 0 {
		t.Fatalf("get(absent) = %#x, want 0", got)
	}
	tbl.put(0x40, 7)
	tbl.put(0x44, 9)
	if got := tbl.get(0x40); got != 7 {
		t.Fatalf("get(0x40) = %d, want 7", got)
	}
	tbl.put(0x40, 11) // overwrite must not grow len
	if got := tbl.get(0x40); got != 11 {
		t.Fatalf("get after overwrite = %d, want 11", got)
	}
	if tbl.len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.len())
	}
	// pc==0 lives in the dedicated pair, not a sentinel-biased slot.
	if got := tbl.get(0); got != 0 {
		t.Fatalf("get(0) on empty zero slot = %d, want 0", got)
	}
	tbl.put(0, 5)
	if got := tbl.get(0); got != 5 {
		t.Fatalf("get(0) = %d, want 5", got)
	}
	if tbl.len() != 3 {
		t.Fatalf("len with zero key = %d, want 3", tbl.len())
	}
}

// TestAddrTableGrowAndReset forces several doublings and checks every
// entry survives rehashing, then that reset empties the table.
func TestAddrTableGrowAndReset(t *testing.T) {
	tbl := newAddrTable()
	const n = 1000 // well past 3/4 of the 64-slot initial capacity
	for i := uint64(1); i <= n; i++ {
		tbl.put(i*4, i^0xabc)
	}
	if tbl.len() != n {
		t.Fatalf("len = %d, want %d", tbl.len(), n)
	}
	for i := uint64(1); i <= n; i++ {
		if got := tbl.get(i * 4); got != i^0xabc {
			t.Fatalf("get(%#x) = %#x, want %#x after grow", i*4, got, i^0xabc)
		}
	}
	tbl.reset()
	if tbl.len() != 0 {
		t.Fatalf("len after reset = %d, want 0", tbl.len())
	}
	for i := uint64(1); i <= n; i++ {
		if got := tbl.get(i * 4); got != 0 {
			t.Fatalf("get(%#x) = %#x after reset, want 0", i*4, got)
		}
	}
}

// TestAddrTableMatchesMap drives the table and a built-in map with the
// same random operation stream — the table replaced the map on the path
// history's hot path and must be read-for-read identical.
func TestAddrTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := newAddrTable()
	ref := map[uint64]uint64{}
	for op := 0; op < 50_000; op++ {
		// Word-aligned clustered keys, including 0, mimic real PCs.
		key := uint64(rng.Intn(512)) * 4
		switch rng.Intn(3) {
		case 0:
			if got, want := tbl.get(key), ref[key]; got != want {
				t.Fatalf("op %d: get(%#x) = %#x, map says %#x", op, key, got, want)
			}
		case 1:
			val := rng.Uint64()
			tbl.put(key, val)
			ref[key] = val
		case 2:
			if tbl.len() != len(ref) {
				t.Fatalf("op %d: len = %d, map has %d", op, tbl.len(), len(ref))
			}
		}
	}
}
