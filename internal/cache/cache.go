// Package cache provides a generic set-associative tagged store with
// true-LRU replacement. It is the shared substrate for the BTB, the tagged
// target cache, and the timing model's data cache.
package cache

import "fmt"

type line[V any] struct {
	valid   bool
	tag     uint64
	lastUse uint64
	val     V
}

// Cache is a set-associative array of tagged entries holding payloads of
// type V. Callers own the index/tag split: Lookup and Insert take a set
// index (which must be < Sets()) and a full tag.
type Cache[V any] struct {
	sets [][]line[V]
	ways int
	tick uint64

	// Statistics.
	hits      int64
	misses    int64
	evictions int64
}

// New returns a cache with numSets sets of ways entries each. It panics if
// either dimension is non-positive; set counts need not be powers of two.
func New[V any](numSets, ways int) *Cache[V] {
	if numSets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %dx%d", numSets, ways))
	}
	sets := make([][]line[V], numSets)
	backing := make([]line[V], numSets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &Cache[V]{sets: sets, ways: ways}
}

// Sets returns the number of sets.
func (c *Cache[V]) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache[V]) Ways() int { return c.ways }

// Entries returns the total entry count (sets × ways).
func (c *Cache[V]) Entries() int { return len(c.sets) * c.ways }

// Lookup searches set for tag. On a hit it refreshes the entry's LRU state
// and returns a pointer to the payload; the pointer is valid until the next
// Insert into the same set.
func (c *Cache[V]) Lookup(set int, tag uint64) (*V, bool) {
	c.tick++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			c.hits++
			return &ln.val, true
		}
	}
	c.misses++
	return nil, false
}

// Peek searches set for tag without touching LRU state or statistics.
func (c *Cache[V]) Peek(set int, tag uint64) (*V, bool) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return &ln.val, true
		}
	}
	return nil, false
}

// Insert returns a pointer to the payload for tag in set, allocating an
// entry if absent. Allocation prefers an invalid way and otherwise evicts
// the least-recently-used entry (a fresh zero V is installed on allocation).
// The returned bool reports whether an existing valid entry was evicted.
func (c *Cache[V]) Insert(set int, tag uint64) (*V, bool) {
	c.tick++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			return &ln.val, false
		}
	}
	var victim *line[V]
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if !ln.valid {
			victim = ln
			break
		}
		if victim == nil || ln.lastUse < victim.lastUse {
			victim = ln
		}
	}
	evicted := victim.valid
	if evicted {
		c.evictions++
	}
	var zero V
	victim.valid = true
	victim.tag = tag
	victim.lastUse = c.tick
	victim.val = zero
	return &victim.val, evicted
}

// Invalidate removes tag from set, reporting whether it was present.
func (c *Cache[V]) Invalidate(set int, tag uint64) bool {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return true
		}
	}
	return false
}

// Reset invalidates every entry and clears statistics.
func (c *Cache[V]) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line[V]{}
		}
	}
	c.tick, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}

// Stats returns lookup hits, lookup misses and eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}
