package trace_test

// Fuzz targets for the trace decoders, pinning down the failure contract
// of ErrCorrupt: on arbitrary input — including truncated and bit-flipped
// real captures, which the seed corpus is built from — a decoder must
// never panic, must report any failure as an ErrCorrupt-wrapped error,
// and must round-trip whatever it decodes cleanly.
//
// This file lives in an external test package so it can import
// internal/workload (which imports trace) to seed from real captured
// traces rather than synthetic records.

import (
	"bytes"
	"testing"

	"errors"

	"repro/internal/trace"
	"repro/internal/workload"
)

// captureSeed encodes a real workload's first few thousand instructions
// with enc and returns the file bytes.
func captureSeed(f *testing.F, name string, enc func(src trace.Source) ([]byte, error)) []byte {
	f.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		f.Fatal(err)
	}
	b, err := enc(trace.NewLimit(w.Open(), 4_000))
	if err != nil {
		f.Fatal(err)
	}
	return b
}

func encodeV1(src trace.Source) ([]byte, error) {
	var buf bytes.Buffer
	_, err := trace.Copy(trace.NewWriter(&buf), src)
	return buf.Bytes(), err
}

func encodeV2(src trace.Source) ([]byte, error) {
	var buf bytes.Buffer
	_, err := trace.CopyV2(trace.NewWriterV2(&buf), src)
	return buf.Bytes(), err
}

// addDamagedVariants seeds the corpus with the intact capture plus the
// damage shapes the harness injects: truncation at interesting cuts and a
// bit flip in the header, early, and late in the record stream.
func addDamagedVariants(f *testing.F, seed []byte) {
	f.Add(seed)
	for _, cut := range []int{0, 4, 8, len(seed) / 2, len(seed) - 1} {
		if cut >= 0 && cut <= len(seed) {
			f.Add(append([]byte(nil), seed[:cut]...))
		}
	}
	for _, at := range []int{5, 16, len(seed) / 2, len(seed) - 3} {
		if at >= 0 && at < len(seed) {
			flipped := append([]byte(nil), seed...)
			flipped[at] ^= 0x80
			f.Add(flipped)
		}
	}
}

// drain decodes src to exhaustion and asserts the decoder failure
// contract; it returns the cleanly decoded records.
func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var recs []trace.Record
	var r trace.Record
	for src.Next(&r) {
		recs = append(recs, r)
	}
	if err := trace.SourceErr(src); err != nil && !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
	}
	if src.Next(&r) {
		t.Fatal("Next returned true after reporting end of stream")
	}
	return recs
}

// roundTrip re-encodes recs with enc, decodes the result with dec, and
// asserts the records survive unchanged: what a reader accepts must be
// exactly re-encodable.
func roundTrip(t *testing.T, recs []trace.Record, enc func(trace.Source) ([]byte, error), dec func([]byte) trace.Source) {
	t.Helper()
	b, err := enc(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	src := dec(b)
	got := drain(t, src)
	if err := trace.SourceErr(src); err != nil {
		t.Fatalf("re-encoded stream does not decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d changed in round trip:\n  got  %+v\n  want %+v", i, got[i], recs[i])
		}
	}
}

func FuzzReaderV1(f *testing.F) {
	addDamagedVariants(f, captureSeed(f, "gcc", encodeV1))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := trace.NewReader(bytes.NewReader(data))
		recs := drain(t, src)
		if trace.SourceErr(src) == nil && len(recs) > 0 {
			roundTrip(t, recs, encodeV1, func(b []byte) trace.Source {
				return trace.NewReader(bytes.NewReader(b))
			})
		}
	})
}

func FuzzReaderV2(f *testing.F) {
	addDamagedVariants(f, captureSeed(f, "gcc", encodeV2))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := trace.NewReaderV2(bytes.NewReader(data))
		recs := drain(t, src)
		if trace.SourceErr(src) == nil && len(recs) > 0 {
			roundTrip(t, recs, encodeV2, func(b []byte) trace.Source {
				return trace.NewReaderV2(bytes.NewReader(b))
			})
		}
	})
}

// FuzzAutoReader hits the version sniffing plus whichever decoder it
// selects, so header damage (the one region the per-version fuzzers read
// through a fixed prefix) is explored too.
func FuzzAutoReader(f *testing.F) {
	addDamagedVariants(f, captureSeed(f, "perl", encodeV1))
	addDamagedVariants(f, captureSeed(f, "perl", encodeV2))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := trace.NewAutoReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, trace.ErrCorrupt) {
				t.Fatalf("NewAutoReader error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		drain(t, src)
	})
}

// FuzzStore covers the out-of-core TCSTORE reader: arbitrary bytes —
// seeded with intact, truncated and bit-flipped images of a real capture,
// raw and compressed — must never panic, must reject damage with
// ErrCorrupt (at open or at the damaged group), and whatever reads
// cleanly must re-encode to the same record count.
func FuzzStore(f *testing.F) {
	w, err := workload.ByName("gcc")
	if err != nil {
		f.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := trace.WriteStore(&buf, trace.NewLimit(w.Open(), 10_000), trace.StoreOptions{
			Compress:     compress,
			GroupRecords: 4096,
		}); err != nil {
			f.Fatal(err)
		}
		addDamagedVariants(f, buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := trace.OpenStore(bytes.NewReader(data), int64(len(data)), 1<<20)
		if err != nil {
			if !errors.Is(err, trace.ErrCorrupt) {
				t.Fatalf("OpenStore error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		recs := drain(t, s.Open())
		if int64(len(recs)) == s.Len() {
			var out bytes.Buffer
			n, err := trace.WriteStore(&out, trace.NewSliceSource(recs), trace.StoreOptions{GroupRecords: 4096})
			if err != nil || n != s.Len() {
				t.Fatalf("re-encode: n=%d err=%v, want %d", n, err, s.Len())
			}
		}
	})
}

// FuzzCursor covers the in-memory replay decoder — the path the
// fault-injection harness corrupts — where the buffer carries no header
// and the record count is tracked out of band.
func FuzzCursor(f *testing.F) {
	w, err := workload.ByName("go")
	if err != nil {
		f.Fatal(err)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 4_000))
	seed := rep.Bytes()
	for _, cut := range []int{0, 1, len(seed) / 2, len(seed) - 1} {
		f.Add(append([]byte(nil), seed[:cut]...), rep.Len())
	}
	f.Add(seed, rep.Len())
	f.Add(seed, rep.Len()+1)
	f.Add(seed, rep.Len()-1)
	flipped := append([]byte(nil), seed...)
	flipped[len(seed)/3] ^= 0xFF
	f.Add(flipped, rep.Len())
	f.Fuzz(func(t *testing.T, data []byte, n int64) {
		src := trace.NewReplayBytes(data, n).Open()
		recs := drain(t, src)
		if err := trace.SourceErr(src); err == nil && int64(len(recs)) != n {
			t.Fatalf("clean cursor decoded %d records, claimed %d", len(recs), n)
		}
	})
}
