package core

// Approximate in-memory footprints of the predictor structures, used by
// the sweep engine's gang planner to bound how many predictor instances
// it fuses into one trace pass. These price the Go heap representation —
// table slices plus per-entry bookkeeping — not the architectural budget
// (that is CostBits). Estimates only need to be the right order of
// magnitude: the planner divides a soft memory budget by the largest
// member to pick a gang width, so a factor-of-two error moves the width
// by at most one power of two.

// cacheLineBytes approximates one line of cache.Cache[uint64]: tag,
// payload and LRU tick, padded.
const cacheLineBytes = 32

// ApproxStateBytes estimates the heap footprint of NewTagless(c).
func (c TaglessConfig) ApproxStateBytes() int64 {
	return int64(c.Entries) * 8
}

// ApproxStateBytes estimates the heap footprint of NewTagged(c).
func (c TaggedConfig) ApproxStateBytes() int64 {
	return int64(c.Entries) * cacheLineBytes
}

// ApproxStateBytes estimates the heap footprint of NewCascaded(c).
func (c CascadedConfig) ApproxStateBytes() int64 {
	return int64(c.Stage1Entries)*cacheLineBytes + c.Stage2.ApproxStateBytes()
}

// ApproxStateBytes estimates the heap footprint of NewITTAGE(c): the base
// last-target table plus one ittageEntry (~24 bytes padded) per tagged
// table entry.
func (c ITTAGEConfig) ApproxStateBytes() int64 {
	return int64(c.BaseEntries)*8 + int64(len(c.HistLens))*int64(c.TableEntries)*24
}
