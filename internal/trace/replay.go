package trace

import (
	"encoding/binary"
	"fmt"
)

// Trace memoization: the experiment suite replays each workload's
// deterministic trace many times (once per predictor configuration), and
// re-running the VM for every pass dominates wall-clock. A Recorder
// captures one pass into a compact in-memory buffer — the v2 codec's
// delta/varint record layout, without the file header — and the resulting
// Replay hands out any number of independent, allocation-free Cursors over
// it. The buffer is immutable once Finish returns, so concurrent cursors
// are race-free by construction.

// Recorder encodes records into an in-memory buffer in the v2 record
// layout. Use Capture for the common drain-a-source case.
type Recorder struct {
	buf      []byte
	n        int64
	prevPC   uint64
	prevAddr uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{buf: make([]byte, 0, 1<<16)} }

// Record appends one record.
func (rec *Recorder) Record(r *Record) {
	var flags byte
	if r.Taken {
		flags |= 1
	}
	hasTarget := r.Target != 0
	if hasTarget {
		flags |= 2
	}
	hasAddr := r.Addr != 0
	if hasAddr {
		flags |= 4
	}
	hasRegs := r.Dst != 0 || r.Src1 != 0 || r.Src2 != 0
	if hasRegs {
		flags |= 8
	}
	b := append(rec.buf, flags, byte(r.Class)|byte(r.Op)<<4)
	b = binary.AppendUvarint(b, zigzag(int64(r.PC-rec.prevPC)))
	if hasTarget {
		b = binary.AppendUvarint(b, zigzag(int64(r.Target-r.PC)))
	}
	if hasAddr {
		b = binary.AppendUvarint(b, zigzag(int64(r.Addr-rec.prevAddr)))
		rec.prevAddr = r.Addr
	}
	if hasRegs {
		b = append(b, r.Dst, r.Src1, r.Src2)
	}
	rec.prevPC = r.PC
	rec.buf = b
	rec.n++
}

// Finish seals the recorder into an immutable Replay. The recorder must
// not be used afterwards.
func (rec *Recorder) Finish() *Replay {
	rep := &Replay{buf: rec.buf, n: rec.n}
	rec.buf = nil
	return rep
}

// Capture drains src into a new Replay.
func Capture(src Source) *Replay {
	rec := NewRecorder()
	var r Record
	for src.Next(&r) {
		rec.Record(&r)
	}
	return rec.Finish()
}

// Replay is an immutable captured trace. It implements Factory: each Open
// returns an independent cursor positioned at the first record, so one
// capture serves any number of concurrent simulation passes.
type Replay struct {
	buf []byte
	n   int64
}

// Len returns the number of records captured.
func (rep *Replay) Len() int64 { return rep.n }

// Size returns the encoded buffer size in bytes.
func (rep *Replay) Size() int { return len(rep.buf) }

// Open implements Factory, returning a fresh cursor over the capture.
func (rep *Replay) Open() Source { return &Cursor{rep: rep} }

var _ Factory = (*Replay)(nil)

// Cursor is a read-only decoding position within a Replay. Next performs
// no allocation; distinct cursors over one Replay may be advanced from
// different goroutines concurrently.
type Cursor struct {
	rep      *Replay
	pos      int
	prevPC   uint64
	prevAddr uint64
}

// Reset rewinds the cursor to the start of the capture.
func (c *Cursor) Reset() { c.pos, c.prevPC, c.prevAddr = 0, 0, 0 }

func (c *Cursor) uvarint(buf []byte) uint64 {
	v, n := binary.Uvarint(buf[c.pos:])
	if n <= 0 {
		panic(fmt.Sprintf("trace: corrupt replay buffer at offset %d", c.pos))
	}
	c.pos += n
	return v
}

// Next implements Source.
func (c *Cursor) Next(r *Record) bool {
	buf := c.rep.buf
	if c.pos >= len(buf) {
		return false
	}
	flags, classOp := buf[c.pos], buf[c.pos+1]
	c.pos += 2
	*r = Record{
		Class: Class(classOp & 0xf),
		Op:    OpClass(classOp >> 4),
		Taken: flags&1 != 0,
	}
	r.PC = c.prevPC + uint64(unzig(c.uvarint(buf)))
	c.prevPC = r.PC
	if flags&2 != 0 {
		r.Target = r.PC + uint64(unzig(c.uvarint(buf)))
	}
	if flags&4 != 0 {
		r.Addr = c.prevAddr + uint64(unzig(c.uvarint(buf)))
		c.prevAddr = r.Addr
	}
	if flags&8 != 0 {
		r.Dst, r.Src1, r.Src2 = buf[c.pos], buf[c.pos+1], buf[c.pos+2]
		c.pos += 3
	}
	return true
}
