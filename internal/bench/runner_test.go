package bench

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// suiteParams keeps runner tests fast: accuracy-only budgets small enough
// that a full sub-suite runs in well under a second.
func suiteParams() Params {
	p := DefaultParams()
	p.AccuracyBudget = 50_000
	p.TimingBudget = 20_000
	return p
}

// suiteExperiments is a small but representative slice of the suite: one
// accuracy experiment, one timing experiment (exercises timingContext),
// and the claims verifier is deliberately excluded for speed.
func suiteExperiments(t *testing.T) []*Experiment {
	t.Helper()
	var out []*Experiment
	for _, id := range []string{"table2", "table9", "cbt"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func runSuite(t *testing.T, ctx context.Context, opts SuiteOptions) (*SuiteResult, string) {
	t.Helper()
	var buf bytes.Buffer
	opts.Out = &buf
	res, err := RunSuite(ctx, opts)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	return res, buf.String()
}

func TestSuiteOutputDeterministic(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		opts := SuiteOptions{Experiments: suiteExperiments(t), Params: suiteParams(), Format: format}
		res1, out1 := runSuite(t, context.Background(), opts)
		opts.Params.Parallel = 1
		res2, out2 := runSuite(t, context.Background(), opts)
		if out1 != out2 {
			t.Errorf("format %s: parallel and serial output differ", format)
		}
		if len(res1.Failures) != 0 || len(res2.Failures) != 0 {
			t.Errorf("format %s: unexpected failures: %v %v", format, res1.Failures, res2.Failures)
		}
	}
}

func TestSuiteResumeByteIdentical(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		exps := suiteExperiments(t)
		opts := SuiteOptions{Experiments: exps, Params: suiteParams(), Format: format}
		_, want := runSuite(t, context.Background(), opts)

		// First run: only the first two experiments complete (as if the
		// process died before the third).
		manifest := filepath.Join(t.TempDir(), "run.json")
		partial := opts
		partial.Experiments = exps[:2]
		partial.ManifestPath = manifest
		runSuite(t, context.Background(), partial)

		// Second run: full list against the manifest.
		full := opts
		full.ManifestPath = manifest
		res, got := runSuite(t, context.Background(), full)
		if got != want {
			t.Errorf("format %s: resumed output differs from uninterrupted run", format)
		}
		if len(res.Resumed) != 2 {
			t.Errorf("format %s: resumed %v, want the first two experiments", format, res.Resumed)
		}
	}
}

func TestSuiteInterruptAndResume(t *testing.T) {
	exps := suiteExperiments(t)
	opts := SuiteOptions{Experiments: exps, Params: suiteParams(), Format: "text"}
	_, want := runSuite(t, context.Background(), opts)

	// Interrupt after the first experiment completes: the rest are
	// skipped and reported as such.
	manifest := filepath.Join(t.TempDir(), "run.json")
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := opts
	interrupted.ManifestPath = manifest
	interrupted.OnExperiment = func(ExperimentReport) { cancel() }
	res, _ := runSuite(t, ctx, interrupted)
	if !res.Interrupted {
		t.Fatal("expected an interrupted result")
	}
	if len(res.Skipped) != len(exps)-1 {
		t.Fatalf("skipped %v, want %d experiments", res.Skipped, len(exps)-1)
	}
	if digest := res.Digest(); !strings.Contains(digest, "interrupted") {
		t.Fatalf("digest missing interruption note: %q", digest)
	}

	// Resume: the completed experiment replays from the manifest, the
	// rest compute fresh; output matches the uninterrupted run exactly.
	resume := opts
	resume.ManifestPath = manifest
	res2, got := runSuite(t, context.Background(), resume)
	if got != want {
		t.Error("resumed output differs from uninterrupted run")
	}
	if len(res2.Resumed) != 1 {
		t.Errorf("resumed %v, want exactly the first experiment", res2.Resumed)
	}
}

func TestSuiteTimeoutMarksCellsAndRetriesOnResume(t *testing.T) {
	exps := suiteExperiments(t)
	manifest := filepath.Join(t.TempDir(), "run.json")
	opts := SuiteOptions{
		Experiments:  exps,
		Params:       suiteParams(),
		Format:       "text",
		Timeout:      time.Nanosecond,
		ManifestPath: manifest,
	}
	res, out := runSuite(t, context.Background(), opts)
	if res.Completed != len(exps) {
		t.Fatalf("completed %d of %d experiments; timeouts must not abort the suite", res.Completed, len(exps))
	}
	if len(res.Failures) == 0 {
		t.Fatal("expected deadline failures")
	}
	for _, ce := range res.Failures {
		if !errors.Is(ce.Err, context.DeadlineExceeded) {
			t.Fatalf("failure %v, want context.DeadlineExceeded", ce)
		}
	}
	if !strings.Contains(out, "ERR") {
		t.Fatal("timed-out cells should render as ERR")
	}

	// Nothing clean was checkpointed, so a resume without the deadline
	// recomputes everything and matches a healthy run.
	clean := SuiteOptions{Experiments: exps, Params: suiteParams(), Format: "text"}
	_, want := runSuite(t, context.Background(), clean)
	resume := clean
	resume.ManifestPath = manifest
	res2, got := runSuite(t, context.Background(), resume)
	if got != want {
		t.Error("post-timeout resume differs from a healthy run")
	}
	if len(res2.Resumed) != 0 {
		t.Errorf("resumed %v, want none (timed-out experiments must re-run)", res2.Resumed)
	}
}

func TestSuiteManifestFingerprintMismatch(t *testing.T) {
	exps := suiteExperiments(t)[:1]
	manifest := filepath.Join(t.TempDir(), "run.json")
	opts := SuiteOptions{Experiments: exps, Params: suiteParams(), Format: "text", ManifestPath: manifest}
	runSuite(t, context.Background(), opts)

	changed := opts
	changed.Params.AccuracyBudget++
	changed.Out = &bytes.Buffer{}
	if _, err := RunSuite(context.Background(), changed); err == nil {
		t.Fatal("expected a fingerprint-mismatch error")
	}
}

func TestSuiteUnknownFormat(t *testing.T) {
	_, err := RunSuite(context.Background(), SuiteOptions{Format: "yaml", Params: suiteParams()})
	if err == nil {
		t.Fatal("expected an unknown-format error")
	}
}
