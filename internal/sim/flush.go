package sim

import (
	"context"

	"repro/internal/trace"
)

// RunAccuracyWithFlushes is RunAccuracy with the entire front end reset
// every flushInterval instructions, modelling context switches that wipe
// predictor state. It measures how quickly each structure re-warms: the
// BTB needs one encounter per jump, a history-indexed target cache one
// encounter per (jump, history) pair, so frequent switches erode the
// target cache's advantage first — a classic objection the experiment
// quantifies.
func RunAccuracyWithFlushes(factory trace.Factory, budget, flushInterval int64, cfg Config) AccuracyResult {
	return RunAccuracyWithFlushesCtx(context.Background(), factory, budget, flushInterval, cfg)
}

// RunAccuracyWithFlushesCtx is RunAccuracyWithFlushes under a context; see
// RunAccuracyCtx for the cancellation contract. Memoized replays run on
// the batched decode-once kernel, like RunAccuracyCtx.
func RunAccuracyWithFlushesCtx(ctx context.Context, factory trace.Factory, budget, flushInterval int64, cfg Config) AccuracyResult {
	if bs, ok := blocksFor(factory); ok {
		return runAccuracyBlocks(ctx, bs, budget, flushInterval, cfg)
	}
	engine := NewEngine(cfg)
	var res AccuracyResult
	src := trace.NewLimit(factory.Open(), budget)
	var r trace.Record
	for src.Next(&r) {
		res.Instructions++
		if res.Instructions&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				res.Err = err
				return res
			}
		}
		if flushInterval > 0 && res.Instructions%flushInterval == 0 {
			engine.Reset()
		}
		if !r.Class.IsBranch() {
			continue
		}
		res.Branches++
		p := engine.Predict(&r)
		correct := p.Correct(&r)
		switch r.Class {
		case trace.ClassCondDirect:
			res.Conditional.Record(correct)
		case trace.ClassUncondDirect, trace.ClassCall:
			res.Direct.Record(correct)
		case trace.ClassReturn:
			res.Returns.Record(correct)
		case trace.ClassIndJump, trace.ClassIndCall:
			res.Indirect.Record(correct)
			if p.FromTC {
				res.TCCovered++
			}
			engine.Tel.SetClock(res.Instructions)
		}
		res.Overall.Record(correct)
		engine.Resolve(&r, p)
	}
	res.Err = trace.SourceErr(src)
	return res
}
