package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/benchmath"
	"repro/internal/perfstore/client"
)

// uploadAll ships the NEW-side snapshots byte-for-byte (so the server's
// record is exactly what the diff read) plus one "benchdiff" document
// carrying the statistical rows — medians, CI bounds, p-values,
// verdicts — which is what server-side regression detection on the
// trend endpoint will consume.
func uploadAll(opts options, newArg string, rows []row) error {
	c, err := client.New(client.Config{BaseURL: opts.uploadURL})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	machine := client.Fingerprint()
	for _, path := range strings.Split(newArg, ",") {
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		kind, schema := "benchfmt", "go-benchfmt/v1"
		if isLegacyJSON(body) {
			kind, schema = "benchjson", ""
		}
		res, err := c.Do(ctx, client.Upload{
			Kind: kind, Machine: machine, Commit: opts.commit, Experiment: opts.experiment,
			Schema: schema, Body: body,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		reportUpload(path, res)
	}

	doc, err := json.Marshal(diffDoc(opts, rows))
	if err != nil {
		return err
	}
	res, err := c.Do(ctx, client.Upload{
		Kind: "benchdiff", Machine: machine, Commit: opts.commit, Experiment: opts.experiment,
		Schema: "benchdiff/v1", Body: doc,
	})
	if err != nil {
		return fmt.Errorf("diff rows: %w", err)
	}
	reportUpload("diff rows", res)
	return nil
}

func reportUpload(what string, res client.Result) {
	if res.Duplicate {
		fmt.Fprintf(os.Stderr, "tcbenchdiff: %s already uploaded (%s)\n", what, res.ID)
	} else {
		fmt.Fprintf(os.Stderr, "tcbenchdiff: uploaded %s as %s\n", what, res.ID)
	}
}

// diffDoc converts rows into the benchdiff/v1 upload document. P is a
// pointer because rows without a test (gone/new) carry NaN, which JSON
// cannot represent; they upload as null.
func diffDoc(opts options, rows []row) any {
	type jsonRow struct {
		Key     string       `json:"key"`
		Old     *summaryJSON `json:"old,omitempty"`
		New     *summaryJSON `json:"new,omitempty"`
		P       *float64     `json:"p,omitempty"`
		Delta   float64      `json:"delta"`
		Verdict verdict      `json:"verdict"`
	}
	out := struct {
		Alpha      float64   `json:"alpha"`
		Tolerance  float64   `json:"tolerance"`
		Confidence float64   `json:"confidence"`
		Rows       []jsonRow `json:"rows"`
	}{opts.alpha, opts.tolerance, opts.confidence, make([]jsonRow, 0, len(rows))}
	for _, r := range rows {
		jr := jsonRow{Key: r.Key, Old: summarize(r.Old), New: summarize(r.New), Delta: r.Delta, Verdict: r.Verdict}
		if !math.IsNaN(r.P) {
			p := r.P
			jr.P = &p
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// summaryJSON is the stable wire shape for one side's statistics, in
// milliseconds.
type summaryJSON struct {
	N          int     `json:"n"`
	CenterMS   float64 `json:"center_ms"`
	LoMS       float64 `json:"lo_ms"`
	HiMS       float64 `json:"hi_ms"`
	Confidence float64 `json:"ci_confidence"`
}

func summarize(s *benchmath.Summary) *summaryJSON {
	if s == nil {
		return nil
	}
	return &summaryJSON{N: s.N, CenterMS: s.Center, LoMS: s.Lo, HiMS: s.Hi, Confidence: s.Confidence}
}
