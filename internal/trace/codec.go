package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-disk trace format is a small header followed by fixed-width
// little-endian records. It exists so cmd/tracegen can persist workload
// traces for external inspection and so runs can be replayed bit-exactly.

const (
	codecMagic   = 0x54435452 // "TCTR"
	codecVersion = 1
	recordSize   = 8 + 8 + 8 + 1 + 1 + 1 + 1 + 1 + 1 // 30 bytes
)

// Writer encodes records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	buf   [recordSize]byte
	wrote bool
}

// NewWriter returns a Writer emitting the trace file header lazily on the
// first record (or on Flush for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (tw *Writer) writeHeader() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], codecVersion)
	_, err := tw.w.Write(hdr[:])
	tw.wrote = true
	return err
}

// Write appends one record.
func (tw *Writer) Write(r *Record) error {
	if !tw.wrote {
		if err := tw.writeHeader(); err != nil {
			return err
		}
	}
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:], r.PC)
	binary.LittleEndian.PutUint64(b[8:], r.Target)
	binary.LittleEndian.PutUint64(b[16:], r.Addr)
	b[24] = byte(r.Class)
	b[25] = byte(r.Op)
	if r.Taken {
		b[26] = 1
	} else {
		b[26] = 0
	}
	b[27] = r.Dst
	b[28] = r.Src1
	b[29] = r.Src2
	_, err := tw.w.Write(b)
	return err
}

// Flush writes any buffered data (and the header, if no record was written).
func (tw *Writer) Flush() error {
	if !tw.wrote {
		if err := tw.writeHeader(); err != nil {
			return err
		}
	}
	return tw.w.Flush()
}

// Reader decodes a trace file produced by Writer. It implements Source.
type Reader struct {
	r      *bufio.Reader
	buf    [recordSize]byte
	err    error
	header bool
}

// NewReader returns a Reader over r. Header validation happens on the first
// Next call; use Err to observe decode errors after Next returns false.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) readHeader() error {
	var hdr [8]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != codecMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != codecVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, got)
	}
	tr.header = true
	return nil
}

// Next implements Source.
func (tr *Reader) Next(r *Record) bool {
	if tr.err != nil {
		return false
	}
	if !tr.header {
		if err := tr.readHeader(); err != nil {
			tr.err = err
			return false
		}
	}
	b := tr.buf[:]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if !errors.Is(err, io.EOF) {
			// A partial record means the stream was cut mid-write.
			tr.err = fmt.Errorf("%w: truncated record: %v", ErrCorrupt, err)
		}
		return false
	}
	if int(b[24]) >= numClasses || int(b[25]) >= NumOpClasses {
		tr.err = fmt.Errorf("%w: invalid class %#x / op %#x", ErrCorrupt, b[24], b[25])
		return false
	}
	r.PC = binary.LittleEndian.Uint64(b[0:])
	r.Target = binary.LittleEndian.Uint64(b[8:])
	r.Addr = binary.LittleEndian.Uint64(b[16:])
	r.Class = Class(b[24])
	r.Op = OpClass(b[25])
	r.Taken = b[26] != 0
	r.Dst = b[27]
	r.Src1 = b[28]
	r.Src2 = b[29]
	return true
}

// Err returns the first decode error encountered, or nil on clean EOF.
func (tr *Reader) Err() error { return tr.err }

// Copy drains src into w, returning the number of records copied.
func Copy(w *Writer, src Source) (int64, error) {
	var r Record
	var n int64
	for src.Next(&r) {
		if err := w.Write(&r); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Flush()
}
