package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table renders rows of strings as an aligned plain-text table with a title
// and column headers, in the spirit of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	// Trailer is verbatim text rendered after the notes (e.g. an ASCII
	// chart of the same data for the paper's figures).
	Trailer string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept; short rows
// are padded when rendered.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line rendered after the table body.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// cellWidth measures a cell in runes, not bytes, so non-ASCII cells (ö,
// µ, —) don't inflate their column. Combining marks and East Asian wide
// glyphs still count as one column each; the tables here don't use them.
func cellWidth(s string) int { return utf8.RuneCountInString(s) }

func (t *Table) widths() []int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Headers {
		if cellWidth(h) > w[i] {
			w[i] = cellWidth(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if cellWidth(c) > w[i] {
				w[i] = cellWidth(c)
			}
		}
	}
	return w
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := t.widths()
	total := 0
	for _, x := range widths {
		total += x + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := strings.Repeat("-", total)
	fmt.Fprintln(w, line)
	if len(t.Headers) > 0 {
		t.renderRow(w, widths, t.Headers)
		fmt.Fprintln(w, line)
	}
	for _, r := range t.Rows {
		t.renderRow(w, widths, r)
	}
	fmt.Fprintln(w, line)
	for _, n := range t.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	if t.Trailer != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, t.Trailer)
	}
}

func (t *Table) renderRow(w io.Writer, widths []int, cells []string) {
	var b strings.Builder
	for i, width := range widths {
		c := ""
		if i < len(cells) {
			c = cells[i]
		}
		// Pad by rune count ourselves: fmt's %*s pads by byte length, which
		// misaligns columns containing multi-byte runes.
		gap := width - cellWidth(c)
		if gap < 0 {
			gap = 0
		}
		// Left-align the first column (row labels), right-align data.
		if i == 0 {
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", gap))
		} else {
			b.WriteString(strings.Repeat(" ", gap))
			b.WriteString(c)
		}
		b.WriteString("  ")
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as CSV (header row first, notes and trailer
// omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MarshalJSON emits the table as a structured object.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.Title, t.Headers, t.Rows, t.Notes})
}
