package cbt

import (
	"testing"

	"repro/internal/trace"
)

func jump(pc, value, target uint64) trace.Record {
	return trace.Record{PC: pc, Addr: value, Target: target,
		Class: trace.ClassIndJump, Taken: true}
}

func TestOracleCBTLearnsMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Oracle = true
	c := New(cfg)
	// value 1 -> 0x100, value 2 -> 0x200.
	r1 := jump(0x1000, 1, 0x100)
	r2 := jump(0x1000, 2, 0x200)
	c.Update(&r1)
	c.Update(&r2)
	if got, ok := c.Predict(0x1000, 1); !ok || got != 0x100 {
		t.Fatalf("oracle predict(1) = %#x, %v", got, ok)
	}
	if got, ok := c.Predict(0x1000, 2); !ok || got != 0x200 {
		t.Fatalf("oracle predict(2) = %#x, %v", got, ok)
	}
	if _, ok := c.Predict(0x1000, 3); ok {
		t.Fatal("oracle predicted unseen value")
	}
}

func TestStaleValueCBT(t *testing.T) {
	c := New(DefaultConfig())
	if _, ok := c.Predict(0x1000, 1); ok {
		t.Fatal("prediction before any update")
	}
	r1 := jump(0x1000, 1, 0x100)
	c.Update(&r1)
	// Without the oracle, the prediction uses the LAST computed value (1)
	// regardless of the current value (2).
	got, ok := c.Predict(0x1000, 2)
	if !ok || got != 0x100 {
		t.Fatalf("stale predict = %#x, %v (want the value-1 target)", got, ok)
	}
}

func TestCBTIgnoresNonIndirect(t *testing.T) {
	c := New(DefaultConfig())
	r := trace.Record{PC: 0x1000, Addr: 1, Target: 0x100,
		Class: trace.ClassCondDirect, Taken: true}
	c.Update(&r)
	if _, ok := c.Predict(0x1000, 1); ok {
		t.Fatal("conditional branch trained the CBT")
	}
}

func TestCBTDistinguishesJumps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Oracle = true
	c := New(cfg)
	rA := jump(0x1000, 1, 0x100)
	rB := jump(0x2000, 1, 0x900)
	c.Update(&rA)
	c.Update(&rB)
	if got, _ := c.Predict(0x1000, 1); got != 0x100 {
		t.Fatalf("jump A corrupted by jump B: %#x", got)
	}
	if got, _ := c.Predict(0x2000, 1); got != 0x900 {
		t.Fatalf("jump B wrong: %#x", got)
	}
}

func TestCBTReset(t *testing.T) {
	c := New(DefaultConfig())
	r := jump(0x1000, 1, 0x100)
	c.Update(&r)
	c.Reset()
	if _, ok := c.Predict(0x1000, 1); ok {
		t.Fatal("entry survived reset")
	}
}
