package perfserver

// Fuzzing the upload request surface: the meta parser and the full
// handler path. Whatever hostile query strings and bodies arrive, the
// server must never panic, and everything it accepts must round-trip
// byte-identical through the store.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"testing"

	"repro/internal/perfstore"
)

func jsonDecode(raw []byte, v any) error { return json.Unmarshal(raw, v) }

func FuzzParseUploadMeta(f *testing.F) {
	f.Add("benchjson", "host/linux/amd64/8", "6674f86", "table2")
	f.Add("telemetry", "m", "deadbeef", "all")
	f.Add("", "", "", "")
	f.Add("a b", "..", "c\x00d", "�")
	f.Fuzz(func(t *testing.T, kind, machine, commit, experiment string) {
		vals := url.Values{}
		if kind != "" {
			vals.Set("kind", kind)
		}
		if machine != "" {
			vals.Set("machine", machine)
		}
		if commit != "" {
			vals.Set("commit", commit)
		}
		if experiment != "" {
			vals.Set("experiment", experiment)
		}
		m, err := parseUploadMeta(vals)
		if err != nil {
			return
		}
		// Accepted fields obey the documented contract exactly.
		for _, v := range []string{m.Kind, m.Machine, m.Commit, m.Experiment} {
			if !validField(v) {
				t.Fatalf("parseUploadMeta accepted invalid field %q", v)
			}
		}
	})
}

// fuzzStack is one store+server shared across fuzz iterations (a fresh
// store per exec would turn the fuzzer into a mkdir benchmark).
var fuzzStack struct {
	once sync.Once
	srv  *Server
}

func fuzzServer(f *testing.F) *Server {
	fuzzStack.once.Do(func() {
		dir, err := os.MkdirTemp("", "perfserver-fuzz-*")
		if err != nil {
			f.Fatal(err)
		}
		store, err := perfstore.Open(dir, perfstore.Options{Shards: 2})
		if err != nil {
			f.Fatal(err)
		}
		fuzzStack.srv = New(store, Config{MaxBodyBytes: 1 << 20})
	})
	return fuzzStack.srv
}

func FuzzUploadHandler(f *testing.F) {
	f.Add("kind=benchjson&machine=m1&commit=c1&experiment=table2",
		[]byte(`{"table2":{"wall_ms":1042.7,"cells":30}}`))
	f.Add("kind=telemetry&machine=host/linux/amd64/8&commit=abc&experiment=all",
		[]byte(`{"run":{"workers":8},"cells":[{"sites":[{"pc":4199088}]}]}`))
	f.Add("kind=sites&machine=m&commit=c&experiment=e", []byte(`not json`))
	f.Add("", []byte(`{}`))
	f.Fuzz(func(t *testing.T, rawQuery string, body []byte) {
		srv := fuzzServer(f)
		h := srv.Handler()
		req := httptest.NewRequest(http.MethodPost, "/api/v1/upload", bytes.NewReader(body))
		req.URL.RawQuery = rawQuery
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			return // rejected is fine; not panicking is the property
		}
		var ack UploadResponse
		if err := jsonDecode(rr.Body.Bytes(), &ack); err != nil {
			t.Fatalf("200 with undecodable ack: %v", err)
		}
		// Anything acknowledged must read back byte-identical.
		req2 := httptest.NewRequest(http.MethodGet, "/api/v1/record/"+ack.ID, nil)
		rr2 := httptest.NewRecorder()
		h.ServeHTTP(rr2, req2)
		if rr2.Code != http.StatusOK {
			t.Fatalf("acknowledged record %s not readable: %d", ack.ID, rr2.Code)
		}
		got, _ := io.ReadAll(rr2.Body)
		if !bytes.Equal(got, body) {
			t.Fatalf("round trip mismatch: put %q, got %q", body, got)
		}
	})
}
