package bench

import (
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cell scheduling: every experiment decomposes into independent simulation
// cells — each a pure function of a memoized replay cursor and a predictor
// configuration. Experiments enqueue cells into a cellGroup, each cell
// writing its result into a pre-allocated slot; run executes them on a
// bounded worker pool and the experiment then renders its tables from the
// slots in enqueue order. Because rendering is serial and positional, the
// output is byte-identical at any worker count, including 1.
//
// Cells are fault-isolated: a panic or an abortCell inside one cell marks
// only that cell's slot with a CellError. The experiment renders the
// affected rows as ERR, appends a failure footer, and every other cell's
// output is unchanged. Failure footers list cells in enqueue order, so
// they too are byte-identical at any worker count.

// TestCellHook, when non-nil, runs at the start of every cell with the
// cell's "experiment/workload/config" label. It exists for the
// fault-injection harness (internal/faultinject), which uses it to panic,
// delay, or block inside chosen cells. Set it only from tests, and only
// while no experiments are running.
var TestCellHook func(label string)

// cellID labels one simulation cell within an experiment.
type cellID struct {
	Workload string
	Config   string
}

// cid builds a cellID for a workload/configuration pair.
func cid(w *workload.Workload, config string) cellID {
	return cellID{Workload: w.Name, Config: config}
}

func (id cellID) String() string {
	switch {
	case id.Workload == "":
		return id.Config
	case id.Config == "":
		return id.Workload
	default:
		return id.Workload + "/" + id.Config
	}
}

// cellStatus records whether a cell completed; slots embed it so renderers
// can ask any slot whether its value is trustworthy.
type cellStatus struct {
	cerr *CellError
}

// ok reports whether the cell completed without error.
func (s *cellStatus) ok() bool { return s.cerr == nil }

// slot holds one cell's result plus its completion status.
type slot[T any] struct {
	cellStatus
	val T
}

type groupCell struct {
	id cellID
	st *cellStatus
	fn func(Params)
}

type cellGroup struct {
	workers    int
	experiment string
	p          Params
	cells      []groupCell
	errs       []*CellError // failures from completed runs, enqueue order
}

func newCellGroup(p Params) *cellGroup {
	return &cellGroup{workers: p.workers(), experiment: p.experiment, p: p}
}

// do enqueues one cell under id and returns its status. The cell body
// receives a Params copy minted for the cell (so kernels can attribute
// telemetry). Cells must not depend on each other's slots.
func (g *cellGroup) do(id cellID, fn func(Params)) *cellStatus {
	st := &cellStatus{}
	g.cells = append(g.cells, groupCell{id: id, st: st, fn: fn})
	return st
}

// cell enqueues fn under id and returns the slot its result lands in once
// run returns.
func cell[T any](g *cellGroup, id cellID, fn func(Params) T) *slot[T] {
	s := &slot[T]{}
	g.cells = append(g.cells, groupCell{id: id, st: &s.cellStatus, fn: func(p Params) { s.val = fn(p) }})
	return s
}

// exec runs one cell, converting panics and aborts into a CellError on the
// cell's status instead of unwinding the worker.
func (g *cellGroup) exec(c *groupCell) {
	g.p.Telemetry.CellStarted()
	start := time.Now()
	defer func() {
		g.p.Telemetry.AddBusy(time.Since(start))
		if v := recover(); v != nil {
			err, stack := recoveredErr(v)
			c.st.cerr = &CellError{
				Experiment: g.experiment,
				Workload:   c.id.Workload,
				Config:     c.id.Config,
				Err:        err,
				Stack:      stack,
			}
			g.p.Telemetry.CellFailed()
			if stack != "" {
				// A raw panic (not a structured abortCell) was contained.
				g.p.Telemetry.CellRecovered()
			}
		}
	}()
	if err := g.p.Context().Err(); err != nil {
		// Already cancelled: mark the cell without starting its simulation.
		abortCell(err)
	}
	if hook := TestCellHook; hook != nil {
		hook((&CellError{Experiment: g.experiment, Workload: c.id.Workload, Config: c.id.Config}).CellLabel())
	}
	c.fn(g.p.forCell(c.id))
}

// run executes all enqueued cells, at most g.workers at a time, and clears
// the queue. It returns only when every cell has finished; failures are
// appended to g.errs in enqueue order.
func (g *cellGroup) run() {
	cells := g.cells
	g.cells = nil
	cellsExecuted.Add(int64(len(cells)))
	// Resolve intra-cell segmentation for this batch: with fewer cells
	// than workers, accuracy cells split their captures so the idle
	// workers help the critical path. Resolution happens here (not per
	// cell) so the count depends only on the queue length, never on
	// scheduling order.
	g.p.segs = g.p.cellSegments(len(cells))
	pool.Run(g.workers, len(cells), func(i int) { g.exec(&cells[i]) })
	for i := range cells {
		if ce := cells[i].st.cerr; ce != nil {
			g.errs = append(g.errs, ce)
		}
	}
	if g.p.fails != nil {
		g.p.fails.add(g.errs...)
	}
}

// finish appends the experiment's failure footer (as notes on the last
// table, so it survives text and JSON rendering) and returns the tables.
// With no failures it is the identity, so healthy experiments render
// exactly as before.
func (g *cellGroup) finish(tables []*stats.Table) []*stats.Table {
	if len(g.errs) == 0 || len(tables) == 0 {
		return tables
	}
	t := tables[len(tables)-1]
	t.AddNote("%d cell(s) failed; affected entries render as ERR", len(g.errs))
	for _, ce := range g.errs {
		t.AddNote("ERR %s: %v", ce.CellLabel(), ce.Err)
	}
	return tables
}

// ---- ERR-aware render helpers ----

// pctCell renders a percentage slot, or ERR when its cell failed.
func pctCell(s *slot[float64]) string {
	if !s.ok() {
		return "ERR"
	}
	return pct(s.val)
}

// errRow returns n "ERR" columns for a row whose backing cell failed.
func errRow(n int) []string {
	row := make([]string, n)
	for i := range row {
		row[i] = "ERR"
	}
	return row
}

// ---- process-wide counters (the perf measurement hook) ----

var (
	cellsExecuted   atomic.Int64
	instructionsSim atomic.Int64
)

// RunStats counts simulation work done process-wide; tcsim diffs snapshots
// around each experiment for its stderr summary and bench snapshots.
type RunStats struct {
	// Cells is the number of simulation cells executed.
	Cells int64
	// Instructions is the number of instructions pushed through the
	// accuracy and timing simulators.
	Instructions int64
}

// SnapshotStats returns the current counter values.
func SnapshotStats() RunStats {
	return RunStats{Cells: cellsExecuted.Load(), Instructions: instructionsSim.Load()}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s RunStats) Sub(earlier RunStats) RunStats {
	return RunStats{Cells: s.Cells - earlier.Cells, Instructions: s.Instructions - earlier.Instructions}
}

// ---- replay-backed simulation kernels ----
//
// All experiment cells go through these wrappers: they swap the live VM for
// the workload's memoized trace replay (so the VM runs at most once per
// (workload, budget) key across the whole suite), account simulated
// instructions, and abort the cell on kernel errors (corrupt replay,
// cancellation) so the failure lands in the cell's slot rather than
// propagating garbage into rendered tables.

// runAccuracy is sim.RunAccuracy over the memoized replay, segmented
// across spare workers when the cell scheduler resolved a split (with
// telemetry enabled the kernel falls back to the plain path itself).
func runAccuracy(w *workload.Workload, p Params, cfg sim.Config) sim.AccuracyResult {
	col := p.startCollector()
	defer p.mergeCollector(col)
	cfg.Telemetry = col
	res := sim.RunAccuracySegmentedCtx(p.Context(), w.ReplayPrefix(p.AccuracyBudget, p.shareBudget()), p.AccuracyBudget, p.segs, cfg)
	instructionsSim.Add(res.Instructions)
	if res.Err != nil {
		abortCell(res.Err)
	}
	return res
}

// runAccuracyFlushes is sim.RunAccuracyWithFlushes over the memoized
// replay.
func runAccuracyFlushes(w *workload.Workload, p Params, interval int64, cfg sim.Config) sim.AccuracyResult {
	col := p.startCollector()
	defer p.mergeCollector(col)
	cfg.Telemetry = col
	res := sim.RunAccuracyWithFlushesCtx(p.Context(), w.ReplayPrefix(p.AccuracyBudget, p.shareBudget()), p.AccuracyBudget, interval, cfg)
	instructionsSim.Add(res.Instructions)
	if res.Err != nil {
		abortCell(res.Err)
	}
	return res
}

// runTiming is the fast one-pass timing model over the memoized replay
// with an explicit machine configuration.
func runTiming(w *workload.Workload, p Params, cfg sim.Config, mc cpu.Config) cpu.Result {
	col := p.startCollector()
	defer p.mergeCollector(col)
	cfg.Telemetry = col
	res := cpu.New(mc, sim.NewEngine(cfg)).RunReplayCtx(p.Context(), w.ReplayPrefix(p.TimingBudget, p.shareBudget()), p.TimingBudget)
	instructionsSim.Add(res.Instructions)
	if res.Err != nil {
		abortCell(res.Err)
	}
	return res
}

// runTraceStats consumes the memoized replay into trace statistics,
// iterating the decode-once batches rather than re-decoding the capture.
func runTraceStats(w *workload.Workload, p Params) *trace.Stats {
	bs := w.ReplayPrefix(p.AccuracyBudget, p.shareBudget())
	st, err := trace.NewStats().ConsumeBatches(bs, p.AccuracyBudget)
	instructionsSim.Add(p.AccuracyBudget)
	if err != nil {
		abortCell(err)
	}
	return st
}
