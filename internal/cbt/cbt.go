// Package cbt implements the case block table of Kaeli & Emma, the
// related-work mechanism the paper compares the target cache against
// (Section 2). The CBT records, for each value of a SWITCH/CASE statement's
// case block variable, the corresponding case address — in effect
// dynamically generating a jump table.
//
// The paper notes two limitations: compilers already generate jump tables,
// and on out-of-order machines the case block variable's value is usually
// not yet known when the indirect jump is fetched. This implementation
// models both regimes: in oracle mode the value is always available at
// prediction time (Kaeli's oracle CBT); otherwise the most recently
// *computed* value for the jump is used, modelling the stale value an
// out-of-order front end would actually have.
package cbt

import (
	"repro/internal/cache"
	"repro/internal/trace"
)

// Config describes a case block table.
type Config struct {
	// Sets and Ways give the table geometry; entries are keyed by jump
	// address and case-variable value.
	Sets, Ways int
	// Oracle makes the dispatch value available at prediction time. A real
	// out-of-order machine rarely has it, so Oracle=false predicts with
	// the last computed value for the jump.
	Oracle bool
}

// DefaultConfig returns a 256x4 CBT.
func DefaultConfig() Config { return Config{Sets: 256, Ways: 4} }

// CBT is a case block table.
type CBT struct {
	cfg       Config
	table     *cache.Cache[uint64] // (pc,value) -> case address
	lastValue map[uint64]uint64    // pc -> last computed dispatch value
}

// New returns a CBT for cfg.
func New(cfg Config) *CBT {
	return &CBT{
		cfg:       cfg,
		table:     cache.New[uint64](cfg.Sets, cfg.Ways),
		lastValue: make(map[uint64]uint64),
	}
}

func (c *CBT) key(pc, value uint64) (int, uint64) {
	k := (pc >> 2) ^ (value * 0x9e3779b97f4a7c15)
	return int(k % uint64(c.cfg.Sets)), k / uint64(c.cfg.Sets)
}

// Predict returns the CBT's predicted target for the indirect jump at pc.
// value is the jump's true dispatch value this dynamic instance (the trace
// records it in Record.Addr); it is consulted only in oracle mode.
func (c *CBT) Predict(pc, value uint64) (uint64, bool) {
	if !c.cfg.Oracle {
		var ok bool
		value, ok = c.lastValue[pc]
		if !ok {
			return 0, false
		}
	}
	set, tag := c.key(pc, value)
	t, ok := c.table.Lookup(set, tag)
	if !ok {
		return 0, false
	}
	return *t, true
}

// Update records a resolved indirect jump: the mapping value→target is
// installed and the jump's last computed value is remembered.
func (c *CBT) Update(r *trace.Record) {
	if !r.Class.IsTargetCachePredicted() {
		return
	}
	set, tag := c.key(r.PC, r.Addr)
	t, _ := c.table.Insert(set, tag)
	*t = r.Target
	c.lastValue[r.PC] = r.Addr
}

// Reset clears the table.
func (c *CBT) Reset() {
	c.table.Reset()
	c.lastValue = make(map[uint64]uint64)
}
