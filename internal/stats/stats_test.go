package stats

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.MispredictRate() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty counter rates should be 0")
	}
	c.Record(true)
	c.Record(false)
	c.Record(false)
	c.Record(true)
	if c.Predictions != 4 || c.Mispredicts != 2 {
		t.Fatalf("counter = %+v", c)
	}
	if got := c.MispredictRate(); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
	var d Counter
	d.Record(false)
	c.Add(d)
	if c.Predictions != 5 || c.Mispredicts != 3 {
		t.Fatalf("after Add: %+v", c)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.6603); got != "66.03%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(0); got != "0.00%" {
		t.Fatalf("Percent(0) = %q", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(200, 150); got != 0.25 {
		t.Fatalf("Reduction = %v, want 0.25", got)
	}
	if got := Reduction(0, 10); got != 0 {
		t.Fatalf("Reduction with zero base = %v", got)
	}
	if got := Reduction(100, 110); got != -0.1 {
		t.Fatalf("negative reduction = %v, want -0.1", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("My Title", "Benchmark", "Rate")
	tab.AddRow("perl", "76.40%")
	tab.AddRow("gcc", "66.00%")
	tab.AddNote("n=%d", 2)
	out := tab.String()
	for _, want := range []string{"My Title", "Benchmark", "Rate", "perl", "76.40%", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, rule, header, rule, 2 rows, rule, note.
	if len(lines) != 8 {
		t.Fatalf("rendered %d lines, want 8:\n%s", len(lines), out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "extra")
	out := tab.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
	if !strings.Contains(out, "only-one") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}
