package vm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// wrongPathProg: a main path that stores to memory and a side function the
// wrong path will wander into.
func wrongPathProg() *isa.Program {
	b := isa.NewBuilder("wp", 0)
	b.LoadImm(1, 0)   // data address
	b.LoadImm(2, 7)   // value
	b.Store(1, 0, 2)  // mem[0] = 7
	b.LoadImm(3, 100) // r3 = 100
	b.Nop()
	b.Halt()
	b.Label("side")
	b.LoadImm(3, 999)  // clobber r3
	b.LoadImm(2, 55)   //
	b.Store(1, 0, 2)   // clobber mem[0]
	b.Store(1, 800, 2) // grow memory
	b.ALUI(isa.AluAdd, 4, 3, 1)
	b.Ret() // faults: empty call stack on the wrong path
	b.Word(0)
	return b.MustBuild()
}

func TestWrongPathRollback(t *testing.T) {
	p := wrongPathProg()
	m := New(p)
	var r trace.Record
	// Execute the first four instructions of the real path.
	for i := 0; i < 4; i++ {
		if !m.Next(&r) {
			t.Fatal("main path ended early")
		}
	}
	memLenBefore := len(m.mem)

	addr := p.AddrOf(6) // "side" label
	if !m.StartWrongPath(addr) {
		t.Fatal("StartWrongPath rejected a valid code address")
	}
	if !m.InWrongPath() {
		t.Fatal("InWrongPath false during speculation")
	}
	// Run the wrong path to its natural death (the stray ret).
	n := 0
	for m.Next(&r) {
		n++
		if n > 100 {
			t.Fatal("wrong path did not terminate")
		}
	}
	if n == 0 {
		t.Fatal("wrong path executed nothing")
	}
	if m.Halted() || m.Err() != nil {
		t.Fatalf("wrong-path fault leaked into architectural state: halted=%v err=%v",
			m.Halted(), m.Err())
	}
	m.EndWrongPath()

	// Architectural state must be exactly as before.
	if got := m.Reg(3); got != 100 {
		t.Errorf("r3 = %d, want 100", got)
	}
	if got := m.Reg(2); got != 7 {
		t.Errorf("r2 = %d, want 7", got)
	}
	if got := m.mem[0]; got != 7 {
		t.Errorf("mem[0] = %d, want 7", got)
	}
	if len(m.mem) != memLenBefore {
		t.Errorf("memory grew across rollback: %d -> %d", memLenBefore, len(m.mem))
	}
	// The real path resumes where it left off (instruction 4: Nop).
	if !m.Next(&r) || r.Op != trace.OpInt || r.PC != p.AddrOf(4) {
		t.Fatalf("resume record = %+v, want the Nop at %#x", r, p.AddrOf(4))
	}
}

func TestWrongPathRejectsBadAddress(t *testing.T) {
	m := New(wrongPathProg())
	if m.StartWrongPath(0x999999) {
		t.Fatal("bad address accepted")
	}
	if m.InWrongPath() {
		t.Fatal("machine entered speculation on failure")
	}
}

func TestWrongPathNoNesting(t *testing.T) {
	p := wrongPathProg()
	m := New(p)
	if !m.StartWrongPath(p.AddrOf(6)) {
		t.Fatal("first StartWrongPath failed")
	}
	if m.StartWrongPath(p.AddrOf(0)) {
		t.Fatal("nested StartWrongPath accepted")
	}
	m.EndWrongPath()
	if m.InWrongPath() {
		t.Fatal("EndWrongPath did not clear speculation")
	}
	m.EndWrongPath() // must be a safe no-op
}

func TestWrongPathStepsRestored(t *testing.T) {
	p := wrongPathProg()
	m := New(p)
	var r trace.Record
	m.Next(&r)
	m.Next(&r)
	before := m.Steps()
	m.StartWrongPath(p.AddrOf(6))
	m.Next(&r)
	m.Next(&r)
	m.EndWrongPath()
	if m.Steps() != before {
		t.Fatalf("steps = %d, want %d", m.Steps(), before)
	}
}

func TestLoopingWrongPathDoesNotRestart(t *testing.T) {
	p := wrongPathProg()
	l := NewLooping(p)
	var r trace.Record
	for i := 0; i < 3; i++ {
		if !l.Next(&r) {
			t.Fatal("looping ended early")
		}
	}
	if !l.StartWrongPath(p.AddrOf(6)) {
		t.Fatal("StartWrongPath via Looping failed")
	}
	for l.Next(&r) {
	}
	if l.Err() != nil {
		t.Fatalf("wrong-path death surfaced as error: %v", l.Err())
	}
	l.EndWrongPath()
	// The stream resumes (and later restarts at halt) as usual.
	count := 0
	for i := 0; i < 20; i++ {
		if l.Next(&r) {
			count++
		}
	}
	if count != 20 {
		t.Fatalf("looping stream broken after wrong path: %d records", count)
	}
}
