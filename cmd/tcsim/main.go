// Command tcsim runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	tcsim -list
//	tcsim -exp table4
//	tcsim -exp all -n 5000000 -t 2000000 -parallel 4
//	tcsim -exp all -timeout 2m -resume run.json
//	tcsim -exp all -parallel 8 -segments 4
//	tcsim -exp all -n 100000000 -trace-store /tmp/tc -spill-mb 256
//
// The suite is fault tolerant: a failing simulation cell marks only its
// own rows as ERR, every other experiment still runs, and tcsim exits
// non-zero with a failure digest on stderr. Ctrl-C drains gracefully
// (partial results plus a summary; a second Ctrl-C kills immediately),
// and -resume records completed experiments so a restarted run only
// recomputes what is missing — byte-identical to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/benchfmt"
	"repro/internal/perfstore/client"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list experiments and exit")
		nAcc       = flag.Int64("n", 0, "accuracy-simulation instruction budget (default 2M)")
		nTime      = flag.Int64("t", 0, "timing-simulation instruction budget (default 1M)")
		model      = flag.String("model", "fast", "timing model: fast | event")
		format     = flag.String("format", "text", "output format: text | json | csv")
		parallel   = flag.Int("parallel", 0, "simulation cells run concurrently per experiment (0 = one per CPU, 1 = serial)")
		segments   = flag.Int("segments", 0, "segments an accuracy cell's replay splits into (0 = auto from spare workers, 1 = off)")
		traceStore = flag.String("trace-store", "", "spill large captures to columnar trace-store files in this directory")
		spillMB    = flag.Int("spill-mb", 256, "with -trace-store: captures above this in-memory size (MB) spill to disk")
		timeout    = flag.Duration("timeout", 0, "per-experiment deadline (0 = none); timed-out cells render ERR")
		resume     = flag.String("resume", "", "run manifest path: completed experiments are recorded there and replayed on restart")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON  = flag.String("benchjson", "", "write per-experiment wall time and work counters to this JSON file")
		benchFmt   = flag.String("benchfmt", "", "write per-experiment results in the standard Go benchmark format to this file")
		count      = flag.Int("count", 1, "repetitions of the whole suite; each rep adds one result set to -benchfmt")
		warmup     = flag.Int("warmup", 0, "unrecorded warm-up repetitions before the -count recorded ones (prime caches and capture memos)")
		quiet      = flag.Bool("quiet", false, "suppress the per-experiment summary on stderr")
		telemOut   = flag.String("telemetry", "", "write per-site predictor statistics and run metrics to this JSON file")
		events     = flag.Int("events", 0, "misprediction events retained per simulation cell (0 = no event log)")
		sites      = flag.Bool("sites", false, "print the per-site misprediction report after the experiment tables")
		sitesTop   = flag.Int("sites-top", 10, "sites shown per cell in the -sites report (0 = all)")
		uploadURL  = flag.String("upload", "", "tcperf server base URL; uploads the -benchjson and -telemetry outputs after the run")
		commit     = flag.String("commit", "", "commit id to tag uploads with (required by -upload)")
		outbox     = flag.String("outbox", "", "spool directory for uploads when the tcperf server is unreachable")
	)
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		return 2
	}

	// Validate everything up front: a bad flag must fail before any
	// simulation starts, not minutes into a run. Explicitly-set
	// non-positive budgets are rejected rather than silently replaced by
	// defaults.
	var usageErr string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			if *nAcc <= 0 {
				usageErr = fmt.Sprintf("-n must be positive, got %d", *nAcc)
			}
		case "t":
			if *nTime <= 0 {
				usageErr = fmt.Sprintf("-t must be positive, got %d", *nTime)
			}
		case "parallel":
			if *parallel <= 0 {
				usageErr = fmt.Sprintf("-parallel must be positive, got %d", *parallel)
			}
		case "timeout":
			if *timeout <= 0 {
				usageErr = fmt.Sprintf("-timeout must be positive, got %v", *timeout)
			}
		case "segments":
			if *segments < 0 {
				usageErr = fmt.Sprintf("-segments must be non-negative, got %d", *segments)
			}
		case "spill-mb":
			if *spillMB <= 0 {
				usageErr = fmt.Sprintf("-spill-mb must be positive, got %d", *spillMB)
			}
			if *traceStore == "" {
				usageErr = "-spill-mb needs -trace-store"
			}
		case "events":
			if *events < 0 {
				usageErr = fmt.Sprintf("-events must be non-negative, got %d", *events)
			}
		case "sites-top":
			if *sitesTop < 0 {
				usageErr = fmt.Sprintf("-sites-top must be non-negative, got %d", *sitesTop)
			}
		case "count":
			if *count < 1 {
				usageErr = fmt.Sprintf("-count must be at least 1, got %d", *count)
			}
		case "warmup":
			if *warmup < 0 {
				usageErr = fmt.Sprintf("-warmup must be non-negative, got %d", *warmup)
			}
		}
	})
	if usageErr != "" {
		return fail("tcsim: %s", usageErr)
	}
	switch *model {
	case "fast", "event":
	default:
		return fail("tcsim: unknown timing model %q (want fast or event)", *model)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		return fail("tcsim: unknown output format %q (want text, json or csv)", *format)
	}
	if *uploadURL != "" {
		if *benchJSON == "" && *telemOut == "" && *benchFmt == "" {
			return fail("tcsim: -upload needs -benchjson, -benchfmt or -telemetry (there is nothing else to upload)")
		}
		if *commit == "" {
			return fail("tcsim: -upload needs -commit to tag the results")
		}
	} else if *outbox != "" {
		return fail("tcsim: -outbox only makes sense with -upload")
	} else if *commit != "" && *benchFmt == "" {
		return fail("tcsim: -commit only makes sense with -upload or -benchfmt")
	}
	if *count > 1 || *warmup > 0 {
		// Repetitions exist to collect independent samples for the
		// significance-testing tcbenchdiff; a resume manifest would replay
		// reps 2..N from disk (zero-cost, zero-information samples) and
		// the telemetry recorder would merge N runs into one report.
		if *resume != "" {
			return fail("tcsim: -count/-warmup cannot be combined with -resume")
		}
		if *telemOut != "" || *sites {
			return fail("tcsim: -count/-warmup cannot be combined with -telemetry or -sites")
		}
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	params := bench.DefaultParams()
	if *nAcc > 0 {
		params.AccuracyBudget = *nAcc
	}
	if *nTime > 0 {
		params.TimingBudget = *nTime
	}
	if *parallel > 0 {
		params.Parallel = *parallel
	}
	params.EventModel = *model == "event"
	params.Segments = *segments

	if *traceStore != "" {
		// A record's in-memory SoA footprint is ~28 bytes (three u64 columns
		// plus four byte columns), so the MB threshold converts to a record
		// budget above which captures stream to disk instead.
		const approxBytesPerRecord = 3*8 + 4
		workload.ConfigureSpill(workload.SpillConfig{
			Dir:       *traceStore,
			Threshold: int64(*spillMB) << 20 / approxBytesPerRecord,
			Compress:  true,
		})
	}

	// Telemetry is collected only when some output wants it; otherwise the
	// recorder stays nil and the simulators skip collection entirely.
	var recorder *telemetry.Recorder
	if *telemOut != "" || *sites {
		recorder = telemetry.NewRecorder(telemetry.Config{Events: *events})
		params.Telemetry = recorder
	} else if *events > 0 {
		return fail("tcsim: -events needs a sink; add -telemetry or -sites")
	}

	var toRun []*bench.Experiment
	if *exp == "all" {
		toRun = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			return fail("%v", err)
		}
		toRun = append(toRun, e)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
		defer pprof.StopCPUProfile()
	}

	// First Ctrl-C or SIGTERM (what container runtimes and CI cancellers
	// send) cancels the run context: in-flight kernels stop at their next
	// poll, the suite renders what it has and summarises. Once the context
	// fires, the handler is unregistered, so a second signal terminates
	// the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	benchOut := make(map[string]bench.ExperimentReport, len(toRun))
	var fmtReports []bench.ExperimentReport
	var logw *os.File
	if !*quiet {
		logw = os.Stderr
	}
	before := bench.SnapshotStats()
	start := time.Now()
	// -count reruns the whole suite, each rep an independent sample for
	// tcbenchdiff's significance tests, after -warmup unrecorded reps
	// that prime the capture memos (a cold first rep pays the one-time
	// capture cost and would pollute the sample with a huge outlier).
	// Only the first recorded rep renders tables (the output is
	// byte-identical across reps by construction); every recorded rep
	// appends its reports to the -benchfmt result set. benchjson keeps
	// the final rep: its memoized captures are warm, making it the
	// steadier single-number snapshot.
	var res *bench.SuiteResult
	var digests []string
	for rep := 1 - *warmup; rep <= *count; rep++ {
		recorded := rep >= 1
		opts := bench.SuiteOptions{
			Experiments:  toRun,
			Params:       params,
			Format:       *format,
			Timeout:      *timeout,
			ManifestPath: *resume,
			Out:          io.Discard,
		}
		if recorded {
			opts.OnExperiment = func(r bench.ExperimentReport) {
				benchOut[r.ID] = r
				fmtReports = append(fmtReports, r)
			}
		}
		if rep == 1 {
			opts.Out = os.Stdout
		}
		if logw != nil {
			opts.Log = logw
			switch {
			case !recorded:
				fmt.Fprintf(logw, "tcsim: warm-up rep %d/%d\n", rep+*warmup, *warmup)
			case *count > 1:
				fmt.Fprintf(logw, "tcsim: rep %d/%d\n", rep, *count)
			}
		}
		var err error
		res, err = bench.RunSuite(ctx, opts)
		if err != nil {
			return fail("tcsim: %v", err)
		}
		if d := res.Digest(); d != "" {
			if *count > 1 || *warmup > 0 {
				d = fmt.Sprintf("rep %d/%d: %s", rep, *count, d)
			}
			digests = append(digests, d)
		}
		if res.Interrupted {
			break
		}
	}
	wall := time.Since(start)
	work := bench.SnapshotStats().Sub(before)

	if !*quiet {
		if segs := sim.SegmentCounters(); segs.SegmentedRuns > 0 {
			fmt.Fprintf(os.Stderr, "tcsim: segmented %d runs into %d segments (%d warm-up instructions)\n",
				segs.SegmentedRuns, segs.SegmentsExecuted, segs.WarmupInstructions)
		}
		if spilledCaptures, spilledBytes := workload.SpillStats(); spilledCaptures > 0 {
			cache := trace.StoreCacheCounters()
			fmt.Fprintf(os.Stderr, "tcsim: spilled %d captures (%d bytes on disk); store cache %d hits / %d misses / %d evictions\n",
				spilledCaptures, spilledBytes, cache.Hits, cache.Misses, cache.Evictions)
		}
	}

	// Telemetry and benchjson outputs are written even when the run was
	// interrupted (partial telemetry covers the cells that finished), and
	// atomically (temp + rename), so a drained SIGINT run always leaves
	// valid JSON behind — never a truncated file.
	var telemReport *telemetry.Report
	if recorder != nil {
		replayCalls, captureCount := workload.MemoCounters()
		_, memoBytes := workload.MemoStats()
		segs := sim.SegmentCounters()
		cache := trace.StoreCacheCounters()
		spilledCaptures, spilledBytes := workload.SpillStats()
		rep := recorder.Report(telemetry.RunInfo{
			Workers:             params.Workers(),
			Wall:                wall,
			Instructions:        work.Instructions,
			MemoCaptures:        captureCount,
			MemoHits:            replayCalls - captureCount,
			MemoBytes:           memoBytes,
			SegmentedRuns:       segs.SegmentedRuns,
			SegmentsExecuted:    segs.SegmentsExecuted,
			WarmupInstructions:  segs.WarmupInstructions,
			StoreCacheHits:      cache.Hits,
			StoreCacheMisses:    cache.Misses,
			StoreCacheEvictions: cache.Evictions,
			SpilledCaptures:     spilledCaptures,
			SpilledBytes:        spilledBytes,
			Interrupted:         res.Interrupted,
		})
		telemReport = rep
		if *sites {
			fmt.Println("== telemetry: per-site indirect-jump report ==")
			fmt.Println()
			if err := rep.WriteSites(os.Stdout, *sitesTop); err != nil {
				return fail("tcsim: %v", err)
			}
		}
		if *telemOut != "" {
			if err := writeJSONFile(*telemOut, rep); err != nil {
				return fail("%v", err)
			}
		}
	}

	if *benchJSON != "" {
		if err := writeJSONFile(*benchJSON, benchOut); err != nil {
			return fail("%v", err)
		}
	}
	if *benchFmt != "" {
		if err := writeBenchFmt(*benchFmt, fmtReports, params, *model, *commit); err != nil {
			return fail("%v", err)
		}
	}
	// Uploads run on their own context: the run context is already
	// cancelled after a drained interrupt, and partial results are still
	// worth shipping. With -outbox an unreachable server spools instead of
	// failing the run.
	if *uploadURL != "" {
		if err := uploadResults(*uploadURL, *outbox, *commit, *exp, benchOut, *benchJSON != "", telemReport, *telemOut != "", *benchFmt); err != nil {
			return fail("tcsim: upload: %v", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail("%v", err)
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail("%v", err)
		}
	}

	if len(digests) > 0 {
		for _, d := range digests {
			fmt.Fprint(os.Stderr, "tcsim: "+d)
		}
		if *resume != "" && (res.Interrupted || len(res.Failures) > 0) {
			fmt.Fprintf(os.Stderr, "tcsim: rerun with -resume %s to finish the remaining experiments\n", *resume)
		}
		return 1
	}
	return 0
}

// writeBenchFmt writes the accumulated per-experiment reports in the
// standard Go benchmark text format (atomically: temp + rename), one
// result line per (experiment, rep) in completion order, preceded by the
// run configuration. The file is what stock benchstat — and this repo's
// tcbenchdiff — consume.
func writeBenchFmt(path string, reports []bench.ExperimentReport, params bench.Params, model, commit string) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	cfg := []benchfmt.Config{
		{Key: "suite", Value: "tcsim"},
		{Key: "model", Value: model},
		{Key: "accuracy-budget", Value: fmt.Sprint(params.AccuracyBudget)},
		{Key: "timing-budget", Value: fmt.Sprint(params.TimingBudget)},
	}
	if commit != "" {
		cfg = append(cfg, benchfmt.Config{Key: "commit", Value: commit})
	}
	w := benchfmt.NewWriter(f)
	for _, r := range reports {
		res := benchfmt.Result{
			FullName: "BenchmarkSuite/exp=" + r.ID,
			Iters:    1,
			Values: []benchfmt.Value{
				{Value: r.WallMS * 1e6, Unit: "ns/op"},
				{Value: float64(r.Cells), Unit: "cells/op"},
				{Value: float64(r.Instructions), Unit: "instrs/op"},
			},
			Config: cfg,
		}
		if err == nil {
			err = w.Write(&res)
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

// uploadResults ships the run's JSON outputs to a tcperf server: any
// spooled leftovers first, then the benchjson and telemetry documents,
// tagged with this machine's fingerprint, the given commit, and the
// experiment selector. Content-hash IDs make re-running the same upload a
// no-op on the server.
func uploadResults(baseURL, outbox, commit, exp string, benchOut map[string]bench.ExperimentReport, haveBench bool, telem *telemetry.Report, haveTelem bool, benchFmtPath string) error {
	c, err := client.New(client.Config{BaseURL: baseURL, Outbox: outbox})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if outbox != "" {
		if sent, remaining, ferr := c.FlushOutbox(ctx); ferr == nil && sent > 0 {
			fmt.Fprintf(os.Stderr, "tcsim: flushed %d spooled uploads (%d left)\n", sent, remaining)
		}
	}
	machine := client.Fingerprint()
	upload := func(kind, schema string, body []byte) error {
		res, err := c.Do(ctx, client.Upload{
			Kind: kind, Machine: machine, Commit: commit, Experiment: exp, Schema: schema, Body: body,
		})
		if err != nil {
			return err
		}
		switch {
		case res.Spooled:
			fmt.Fprintf(os.Stderr, "tcsim: %s upload spooled to %s (server unreachable)\n", kind, res.SpoolPath)
		case res.Duplicate:
			fmt.Fprintf(os.Stderr, "tcsim: %s already uploaded (%s)\n", kind, res.ID)
		default:
			fmt.Fprintf(os.Stderr, "tcsim: uploaded %s as %s\n", kind, res.ID)
		}
		return nil
	}
	if haveBench {
		body, err := json.Marshal(benchOut)
		if err != nil {
			return err
		}
		if err := upload("benchjson", "", body); err != nil {
			return err
		}
	}
	if haveTelem && telem != nil {
		body, err := json.Marshal(telem)
		if err != nil {
			return err
		}
		if err := upload("telemetry", "", body); err != nil {
			return err
		}
	}
	if benchFmtPath != "" {
		// Byte-for-byte as written, so the server's record is exactly the
		// file local tooling diffs against.
		body, err := os.ReadFile(benchFmtPath)
		if err != nil {
			return err
		}
		if err := upload("benchfmt", "go-benchfmt/v1", body); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONFile writes v as indented JSON via a temp file + rename, so an
// interrupt or error mid-write never leaves a truncated file at path.
func writeJSONFile(path string, v any) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
