package trace_test

// Differential tests for the decode-once batched replay: a BatchCursor
// over Replay.Blocks() must be stream-for-stream interchangeable with a
// streaming Cursor over the same buffer — same records in order, and on a
// damaged buffer the same ErrCorrupt surfaced only after the cleanly
// decoded prefix. The capture-vs-decode test additionally pins that the
// Blocks a fresh capture builds inline are identical to what decodeBlocks
// recovers from the encoded buffer.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// damagedVariants returns the intact buffer plus the damage shapes the
// fault-injection harness uses: truncations at interesting cuts, bit flips
// early/middle/late, and off-by-one record counts.
func damagedVariants(seed []byte, n int64) []struct {
	name string
	buf  []byte
	n    int64
} {
	var out []struct {
		name string
		buf  []byte
		n    int64
	}
	add := func(name string, buf []byte, n int64) {
		out = append(out, struct {
			name string
			buf  []byte
			n    int64
		}{name, buf, n})
	}
	add("intact", seed, n)
	for _, cut := range []int{0, 1, 4, len(seed) / 2, len(seed) - 1} {
		if cut >= 0 && cut <= len(seed) {
			add(fmt.Sprintf("cut%d", cut), append([]byte(nil), seed[:cut]...), n)
		}
	}
	for _, at := range []int{0, 5, 16, len(seed) / 2, len(seed) - 3} {
		if at >= 0 && at < len(seed) {
			flipped := append([]byte(nil), seed...)
			flipped[at] ^= 0x80
			add(fmt.Sprintf("flip%d", at), flipped, n)
		}
	}
	add("countShort", seed, n-1)
	add("countLong", seed, n+1)
	return out
}

// drainAll drains src, returning the records and the final error.
func drainAll(src trace.Source) ([]trace.Record, error) {
	var recs []trace.Record
	var r trace.Record
	for src.Next(&r) {
		recs = append(recs, r)
	}
	return recs, trace.SourceErr(src)
}

// assertSameStream asserts the two decoders produced identical record
// streams and identical errors (both nil, or equal messages both wrapping
// ErrCorrupt).
func assertSameStream(t *testing.T, cRecs, bRecs []trace.Record, cErr, bErr error) {
	t.Helper()
	if len(cRecs) != len(bRecs) {
		t.Fatalf("cursor decoded %d records, batch cursor %d", len(cRecs), len(bRecs))
	}
	for i := range cRecs {
		if cRecs[i] != bRecs[i] {
			t.Fatalf("record %d differs:\n  cursor %+v\n  batch  %+v", i, cRecs[i], bRecs[i])
		}
	}
	switch {
	case cErr == nil && bErr == nil:
	case cErr == nil || bErr == nil:
		t.Fatalf("error mismatch: cursor %v, batch cursor %v", cErr, bErr)
	default:
		if !errors.Is(cErr, trace.ErrCorrupt) || !errors.Is(bErr, trace.ErrCorrupt) {
			t.Fatalf("errors do not wrap ErrCorrupt: cursor %v, batch cursor %v", cErr, bErr)
		}
		if cErr.Error() != bErr.Error() {
			t.Fatalf("error text differs:\n  cursor %v\n  batch  %v", cErr, bErr)
		}
	}
}

// TestBatchCursorMatchesCursor runs the streaming and batched decoders
// over real workload captures and their damaged variants, requiring
// identical record streams and identical failure reporting.
func TestBatchCursorMatchesCursor(t *testing.T) {
	for _, name := range []string{"gcc", "go"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rep := trace.Capture(trace.NewLimit(w.Open(), 4_000))
		for _, v := range damagedVariants(rep.Bytes(), rep.Len()) {
			t.Run(name+"/"+v.name, func(t *testing.T) {
				vr := trace.NewReplayBytes(v.buf, v.n)
				cRecs, cErr := drainAll(vr.Open())
				bRecs, bErr := drainAll(vr.Blocks().Open())
				assertSameStream(t, cRecs, bRecs, cErr, bErr)
			})
		}
	}
}

// TestCaptureBlocksMatchDecode pins the capture-time block builder against
// decodeBlocks: the Blocks a fresh capture carries must be
// record-for-record identical to decoding its encoded buffer from scratch.
func TestCaptureBlocksMatchDecode(t *testing.T) {
	for _, budget := range []int64{0, 1, 100, trace.BlockLen, trace.BlockLen + 1, 10_000} {
		t.Run(fmt.Sprint(budget), func(t *testing.T) {
			w, err := workload.ByName("perl")
			if err != nil {
				t.Fatal(err)
			}
			rep := trace.CaptureSized(trace.NewLimit(w.Open(), budget), budget)
			built := rep.Blocks()
			decoded := trace.NewReplayBytes(rep.Bytes(), rep.Len()).Blocks()
			if built.Len() != decoded.Len() {
				t.Fatalf("built %d records, decoded %d", built.Len(), decoded.Len())
			}
			if built.NumBlocks() != decoded.NumBlocks() {
				t.Fatalf("built %d blocks, decoded %d", built.NumBlocks(), decoded.NumBlocks())
			}
			if built.Err() != nil || decoded.Err() != nil {
				t.Fatalf("clean capture reported errors: built %v, decoded %v", built.Err(), decoded.Err())
			}
			var br, dr trace.Record
			for bi := 0; bi < built.NumBlocks(); bi++ {
				b, d := built.Block(bi), decoded.Block(bi)
				if b.Len() != d.Len() {
					t.Fatalf("block %d: built len %d, decoded len %d", bi, b.Len(), d.Len())
				}
				for i := 0; i < b.Len(); i++ {
					b.Record(i, &br)
					d.Record(i, &dr)
					if br != dr {
						t.Fatalf("block %d record %d differs:\n  built   %+v\n  decoded %+v", bi, i, br, dr)
					}
				}
			}
		})
	}
}

// TestBlocksAccessors pins the Meta byte accessors against full Record
// materialization.
func TestBlocksAccessors(t *testing.T) {
	w, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	bs := trace.Capture(trace.NewLimit(w.Open(), 4_000)).Blocks()
	var r trace.Record
	for bi := 0; bi < bs.NumBlocks(); bi++ {
		blk := bs.Block(bi)
		for i := 0; i < blk.Len(); i++ {
			blk.Record(i, &r)
			if blk.Class(i) != r.Class || blk.Op(i) != r.Op || blk.Taken(i) != r.Taken {
				t.Fatalf("block %d record %d: accessors (%v,%v,%v) disagree with Record %+v",
					bi, i, blk.Class(i), blk.Op(i), blk.Taken(i), r)
			}
		}
	}
}

// FuzzBlocks feeds arbitrary buffers and record counts to both decoders,
// asserting they never panic and never disagree.
func FuzzBlocks(f *testing.F) {
	w, err := workload.ByName("go")
	if err != nil {
		f.Fatal(err)
	}
	rep := trace.Capture(trace.NewLimit(w.Open(), 4_000))
	seed := rep.Bytes()
	for _, v := range damagedVariants(seed, rep.Len()) {
		f.Add(v.buf, v.n)
	}
	f.Fuzz(func(t *testing.T, data []byte, n int64) {
		vr := trace.NewReplayBytes(data, n)
		cRecs, cErr := drainAll(vr.Open())
		bRecs, bErr := drainAll(vr.Blocks().Open())
		assertSameStream(t, cRecs, bRecs, cErr, bErr)
	})
}
