// Command tcsweep runs resumable design-space sweeps: it expands a
// declarative JSON grid spec into (predictor configuration, workload)
// points, simulates them all with work-stealing parallelism and the
// shared capture store, and reports the per-workload Pareto frontier of
// accuracy versus storage bits.
//
// Usage:
//
//	tcsweep -example > sweep.json
//	tcsweep -spec sweep.json
//	tcsweep -spec sweep.json -workers 8 -resume sweep.manifest
//	tcsweep -spec sweep.json -csv all-points.csv -doc frontier.json
//	tcsweep -spec sweep.json -doc frontier.json -upload http://host:8344 -commit $(git rev-parse HEAD)
//	tcsweep -spec sweep.json -expand
//
// With -resume, completed shards are checkpointed atomically: an
// interrupted run — Ctrl-C, SIGTERM, or kill -9 — restarts where it left
// off, and the final report is byte-identical to an uninterrupted run at
// any worker count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/perfstore/client"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath = flag.String("spec", "", "grid spec JSON file (\"-\" reads stdin)")
		example  = flag.Bool("example", false, "print an example grid spec and exit")
		expand   = flag.Bool("expand", false, "expand the spec, print its points, and exit without simulating")
		workers  = flag.Int("workers", 0, "concurrent simulation workers (0 = one per CPU, 1 = serial)")
		shard    = flag.Int("shard", 0, "points per checkpoint shard (default 32)")
		resume   = flag.String("resume", "", "manifest path: completed shards are recorded there and skipped on restart")
		csvPath  = flag.String("csv", "", "write every swept point (with frontier flags) as CSV to this file")
		docPath  = flag.String("doc", "", "write the sweep/v1 result document as JSON to this file")
		telemOut = flag.String("telemetry", "", "write sweep run metrics as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress lines on stderr")
		throttle = flag.Duration("throttle", 0, "sleep this long after each completed shard (pacing aid for interrupt/resume exercises)")

		uploadURL = flag.String("upload", "", "tcperf server base URL; uploads the sweep/v1 document after the run")
		commit    = flag.String("commit", "", "commit id to tag the upload with (required by -upload)")
		outbox    = flag.String("outbox", "", "spool directory for uploads when the tcperf server is unreachable")
	)
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		return 2
	}

	if *example {
		fmt.Print(sweep.ExampleSpec)
		return 0
	}
	if *specPath == "" {
		return fail("tcsweep: -spec is required (try -example for a template); workloads: %v", workload.Names())
	}
	if *workers < 0 {
		return fail("tcsweep: -workers must be non-negative, got %d", *workers)
	}
	if *shard < 0 {
		return fail("tcsweep: -shard must be non-negative, got %d", *shard)
	}
	if *uploadURL != "" && *commit == "" {
		return fail("tcsweep: -upload needs -commit to tag the results")
	}
	if *uploadURL == "" && *outbox != "" {
		return fail("tcsweep: -outbox only makes sense with -upload")
	}

	var data []byte
	var err error
	if *specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return fail("tcsweep: %v", err)
	}
	spec, err := sweep.ParseSpec(data)
	if err != nil {
		return fail("tcsweep: %v", err)
	}

	if *expand {
		ex, err := spec.Expand()
		if err != nil {
			return fail("tcsweep: %v", err)
		}
		for _, p := range ex.Points {
			fmt.Println(p.Key())
		}
		fmt.Fprintf(os.Stderr, "tcsweep: %d points (%d invalid combinations skipped)\n",
			len(ex.Points), ex.SkippedInvalid)
		return 0
	}

	opts := sweep.Options{
		Workers:      *workers,
		ShardSize:    *shard,
		ManifestPath: *resume,
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *throttle > 0 {
		opts.AfterShard = func(completed, total int) { time.Sleep(*throttle) }
	}

	// First Ctrl-C or SIGTERM cancels the run context: in-flight shards
	// stop at the kernels' next poll, clean shards stay recorded in the
	// manifest, and the process exits asking to be resumed. A second
	// signal terminates the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	start := time.Now()
	outcome, err := sweep.Run(ctx, spec, opts)
	wall := time.Since(start)
	if err != nil {
		if ctx.Err() != nil && *resume != "" {
			fmt.Fprintf(os.Stderr, "tcsweep: %v\ntcsweep: rerun with -resume %s to finish\n", err, *resume)
			return 1
		}
		return fail("tcsweep: %v", err)
	}

	report := outcome.Report()
	report.Render(os.Stdout)

	if *csvPath != "" {
		if err := writeFileAtomic(*csvPath, func(w io.Writer) error { return report.WriteCSV(w) }); err != nil {
			return fail("tcsweep: %v", err)
		}
	}
	var docBytes []byte
	if *docPath != "" || *uploadURL != "" {
		docBytes, err = report.Document().Encode()
		if err != nil {
			return fail("tcsweep: %v", err)
		}
	}
	if *docPath != "" {
		if err := writeFileAtomic(*docPath, func(w io.Writer) error {
			_, werr := w.Write(docBytes)
			return werr
		}); err != nil {
			return fail("tcsweep: %v", err)
		}
	}

	if *telemOut != "" {
		frontier := 0
		for _, row := range report.Rows {
			if row.Frontier {
				frontier++
			}
		}
		replayCalls, captureCount := workload.MemoCounters()
		metrics := telemetry.NewSweepMetrics(telemetry.SweepInfo{
			Spec:           spec.Name,
			Fingerprint:    outcome.Fingerprint,
			Workers:        *workers,
			Wall:           wall,
			Points:         len(outcome.Results),
			FrontierPoints: frontier,
			SkippedInvalid: outcome.SkippedInvalid,
			Shards:         outcome.Shards,
			ResumedShards:  outcome.ResumedShards,
			Instructions:   outcome.SimulatedInstructions,
			MemoCaptures:   captureCount,
			MemoHits:       replayCalls - captureCount,
		})
		if err := writeFileAtomic(*telemOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(metrics)
		}); err != nil {
			return fail("tcsweep: %v", err)
		}
	}

	if *uploadURL != "" {
		if err := uploadDoc(*uploadURL, *outbox, *commit, spec.Name, docBytes); err != nil {
			return fail("tcsweep: upload: %v", err)
		}
	}
	return 0
}

// uploadDoc ships the sweep/v1 document to a tcperf server, flushing any
// spooled leftovers first. Content-hash IDs make re-uploading the same
// sweep a no-op on the server.
func uploadDoc(baseURL, outbox, commit, specName string, body []byte) error {
	c, err := client.New(client.Config{BaseURL: baseURL, Outbox: outbox})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if outbox != "" {
		if sent, remaining, ferr := c.FlushOutbox(ctx); ferr == nil && sent > 0 {
			fmt.Fprintf(os.Stderr, "tcsweep: flushed %d spooled uploads (%d left)\n", sent, remaining)
		}
	}
	res, err := c.Do(ctx, client.Upload{
		Kind: "sweep", Machine: client.Fingerprint(), Commit: commit,
		Experiment: specName, Schema: sweep.DocumentSchema, Body: body,
	})
	if err != nil {
		return err
	}
	switch {
	case res.Spooled:
		fmt.Fprintf(os.Stderr, "tcsweep: sweep upload spooled to %s (server unreachable)\n", res.SpoolPath)
	case res.Duplicate:
		fmt.Fprintf(os.Stderr, "tcsweep: sweep already uploaded (%s)\n", res.ID)
	default:
		fmt.Fprintf(os.Stderr, "tcsweep: uploaded sweep as %s\n", res.ID)
	}
	return nil
}

// writeFileAtomic writes via a temp file + rename, so an interrupt or
// error mid-write never leaves a truncated file at path.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
