package trace

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// writeStore encodes recs as a TCSTORE1 byte image.
func writeStore(t testing.TB, recs []Record, opts StoreOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteStore(&buf, NewSliceSource(recs), opts)
	if err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("WriteStore wrote %d records, want %d", n, len(recs))
	}
	return buf.Bytes()
}

func openStore(t testing.TB, img []byte, cacheBytes int64) *Store {
	t.Helper()
	s, err := OpenStore(bytes.NewReader(img), int64(len(img)), cacheBytes)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	// A partial final group and a partial final block, to cover both
	// boundary shapes.
	recs := randomRecords(2*BlockLen+2*BlockLen+BlockLen/2+17, 21)
	for _, tc := range []struct {
		name string
		opts StoreOptions
	}{
		{"raw", StoreOptions{GroupRecords: 2 * BlockLen}},
		{"flate", StoreOptions{Compress: true, GroupRecords: 2 * BlockLen}},
		{"default-group", StoreOptions{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := writeStore(t, recs, tc.opts)
			s := openStore(t, img, 0)
			if s.Len() != int64(len(recs)) {
				t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
			}
			if s.Compressed() != tc.opts.Compress {
				t.Fatalf("Compressed = %v", s.Compressed())
			}
			got := Collect(s.Open())
			if len(got) != len(recs) {
				t.Fatalf("decoded %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
				}
			}
			// BlockAt must match the in-memory Blocks decomposition
			// block-for-block (the layout invariant kernels rely on).
			bs := Capture(NewSliceSource(recs)).Blocks()
			if s.NumBlocks() != bs.NumBlocks() {
				t.Fatalf("NumBlocks = %d, want %d", s.NumBlocks(), bs.NumBlocks())
			}
			for bi := 0; bi < bs.NumBlocks(); bi++ {
				sb, err := s.BlockAt(bi)
				if err != nil {
					t.Fatalf("BlockAt(%d): %v", bi, err)
				}
				mb := bs.Block(bi)
				if sb.Len() != mb.Len() {
					t.Fatalf("block %d: len %d, want %d", bi, sb.Len(), mb.Len())
				}
				var a, b Record
				for i := 0; i < sb.Len(); i++ {
					sb.Record(i, &a)
					mb.Record(i, &b)
					if a != b {
						t.Fatalf("block %d record %d: got %+v, want %+v", bi, i, a, b)
					}
				}
			}
		})
	}
}

func TestStoreEmpty(t *testing.T) {
	img := writeStore(t, nil, StoreOptions{})
	s := openStore(t, img, 0)
	if s.Len() != 0 || s.NumBlocks() != 0 {
		t.Fatalf("empty store: Len=%d NumBlocks=%d", s.Len(), s.NumBlocks())
	}
	var r Record
	if s.Open().Next(&r) {
		t.Fatal("empty store produced a record")
	}
}

// TestStoreDamage flips bits and truncates a store image, asserting the
// reader's contract: no panic, and either the file is rejected with
// ErrCorrupt (at open or at first damaged group) or every record still
// reads back exactly — damage is never silently misread.
func TestStoreDamage(t *testing.T) {
	recs := randomRecords(3*BlockLen+100, 5)
	for _, compress := range []bool{false, true} {
		img := writeStore(t, recs, StoreOptions{Compress: compress, GroupRecords: BlockLen})

		check := func(t *testing.T, damaged []byte) {
			s, err := OpenStore(bytes.NewReader(damaged), int64(len(damaged)), 0)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("open error does not wrap ErrCorrupt: %v", err)
				}
				return
			}
			src := s.Open()
			var got []Record
			var r Record
			for src.Next(&r) {
				got = append(got, r)
			}
			if err := SourceErr(src); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("read error does not wrap ErrCorrupt: %v", err)
				}
				return
			}
			if len(got) != len(recs) {
				t.Fatalf("damaged store read cleanly but returned %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("damaged store read cleanly but record %d differs", i)
				}
			}
		}

		// Every byte of the magic, index and footer; a stride through the
		// group payloads and CRCs.
		var offs []int
		for o := 0; o < 8 && o < len(img); o++ {
			offs = append(offs, o)
		}
		for o := len(img) - storeFooterLen - 4*storeIndexEntryLen; o < len(img); o++ {
			if o >= 0 {
				offs = append(offs, o)
			}
		}
		for o := 8; o < len(img); o += 499 {
			offs = append(offs, o)
		}
		for _, o := range offs {
			for _, bit := range []byte{0x01, 0x80} {
				flipped := append([]byte(nil), img...)
				flipped[o] ^= bit
				check(t, flipped)
			}
		}
		for _, cut := range []int{0, 7, 8, len(img) / 3, len(img) - storeFooterLen, len(img) - 1} {
			if cut >= 0 && cut <= len(img) {
				check(t, img[:cut])
			}
		}
	}
}

func TestStoreLRUCache(t *testing.T) {
	recs := randomRecords(4*BlockLen, 9)
	img := writeStore(t, recs, StoreOptions{GroupRecords: BlockLen})
	// Cache sized for exactly two decoded groups.
	s := openStore(t, img, 2*BlockLen*storeBytesPerRecord)

	readBlock := func(i int) {
		if _, err := s.BlockAt(i); err != nil {
			t.Fatalf("BlockAt(%d): %v", i, err)
		}
	}
	readBlock(0) // miss
	readBlock(0) // hit
	readBlock(1) // miss
	readBlock(2) // miss, evicts group 0
	readBlock(0) // miss again
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions < 1 {
		t.Fatalf("cache stats %+v, want 1 hit, 4 misses, >=1 eviction", st)
	}

	// Concurrent readers over a thrashing cache: under -race this pins
	// that eviction never invalidates blocks another goroutine holds.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for bi := 0; bi < s.NumBlocks(); bi++ {
					i := bi
					if g%2 == 1 {
						i = s.NumBlocks() - 1 - bi
					}
					blk, err := s.BlockAt(i)
					if err != nil {
						t.Errorf("BlockAt(%d): %v", i, err)
						return
					}
					var r Record
					blk.Record(0, &r)
					if r.PC != recs[i*BlockLen].PC {
						t.Errorf("block %d: pc %#x, want %#x", i, r.PC, recs[i*BlockLen].PC)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreBadGroupSize(t *testing.T) {
	if _, err := WriteStore(&bytes.Buffer{}, NewSliceSource(nil), StoreOptions{GroupRecords: 100}); err == nil {
		t.Fatal("WriteStore accepted a group size that is not a block multiple")
	}
}

func TestWriteStorePropagatesSourceError(t *testing.T) {
	recs := randomRecords(BlockLen, 3)
	rep := Capture(NewSliceSource(recs))
	buf := rep.Bytes()
	damaged := NewReplayBytes(buf[:len(buf)/2], rep.Len())
	var out bytes.Buffer
	if _, err := WriteStore(&out, damaged.Open(), StoreOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("WriteStore over damaged source: err=%v, want ErrCorrupt", err)
	}
}

func TestConsumeBatchesMatchesConsumeBlocks(t *testing.T) {
	recs := randomRecords(2*BlockLen+345, 13)
	rep := Capture(NewSliceSource(recs))
	want := NewStats().ConsumeBlocks(rep.Blocks())

	img := writeStore(t, recs, StoreOptions{Compress: true, GroupRecords: BlockLen})
	s := openStore(t, img, 0)
	got, err := NewStats().ConsumeBatches(s, 0)
	if err != nil {
		t.Fatalf("ConsumeBatches: %v", err)
	}
	if *sumStats(got) != *sumStats(want) {
		t.Fatalf("stats differ: got %+v, want %+v", sumStats(got), sumStats(want))
	}
	if got.StaticIndJumps() != want.StaticIndJumps() {
		t.Fatalf("static ind jumps %d, want %d", got.StaticIndJumps(), want.StaticIndJumps())
	}

	// A limit stops exactly at the requested record count.
	limited, err := NewStats().ConsumeBatches(s, BlockLen+7)
	if err != nil {
		t.Fatalf("ConsumeBatches limited: %v", err)
	}
	if limited.Instructions != BlockLen+7 {
		t.Fatalf("limited Instructions = %d, want %d", limited.Instructions, BlockLen+7)
	}

	// A damaged capture yields its clean prefix, erroring only when the
	// limit reaches past it.
	buf := rep.Bytes()
	damaged := NewReplayBytes(buf[:len(buf)-20], rep.Len())
	clean := damaged.CleanLen()
	if clean >= rep.Len() || clean == 0 {
		t.Fatalf("damaged capture clean length %d of %d", clean, rep.Len())
	}
	if _, err := NewStats().ConsumeBatches(damaged, clean); err != nil {
		t.Fatalf("ConsumeBatches within clean prefix: %v", err)
	}
	if _, err := NewStats().ConsumeBatches(damaged, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ConsumeBatches past clean prefix: err=%v, want ErrCorrupt", err)
	}
}

// sumStats projects the comparable scalar fields.
func sumStats(s *Stats) *struct {
	I, B, C, U, Ca, R, IJ int64
	Op                    [NumOpClasses]int64
} {
	return &struct {
		I, B, C, U, Ca, R, IJ int64
		Op                    [NumOpClasses]int64
	}{s.Instructions, s.Branches, s.CondDirect, s.UncondDirect, s.Calls, s.Returns, s.IndJumps, s.OpMix}
}
