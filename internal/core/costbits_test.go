package core

import "testing"

// TestConfigCostBits pins the per-config storage accounting across every
// predictor family the sweep engine prices. Each expectation is computed
// from the documented per-entry formula, so a change to the accounting
// must be deliberate (it shifts every Pareto frontier).
func TestConfigCostBits(t *testing.T) {
	tests := []struct {
		name string
		bits int
		want int
	}{
		// Tagless: 32 x entries, any scheme.
		{"tagless GAg 512", TaglessConfig{Entries: 512, Scheme: SchemeGAg}.CostBits(), 32 * 512},
		{"tagless gshare 64", TaglessConfig{Entries: 64, Scheme: SchemeGshare}.CostBits(), 32 * 64},
		{"tagless GAs 512", TaglessConfig{Entries: 512, Scheme: SchemeGAs, HistBits: 7, AddrBits: 2}.CostBits(), 32 * 512},

		// Tagged: entries x (32 target + tag + lru + valid). TagBits 0
		// means a full 32-bit tag; Ways=1 has no LRU bits.
		{"tagged 256/4w full tag", TaggedConfig{Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9}.CostBits(),
			256 * (32 + 32 + 2 + 1)},
		{"tagged 256/1w full tag", TaggedConfig{Entries: 256, Ways: 1, Scheme: SchemeAddress, HistBits: 9}.CostBits(),
			256 * (32 + 32 + 0 + 1)},
		{"tagged 512/8w 10-bit tag", TaggedConfig{Entries: 512, Ways: 8, Scheme: SchemeHistoryConcat, HistBits: 16, TagBits: 10}.CostBits(),
			512 * (32 + 10 + 3 + 1)},
		{"tagged wide tag clamps to 32", TaggedConfig{Entries: 128, Ways: 2, Scheme: SchemeHistoryXor, HistBits: 9, TagBits: 48}.CostBits(),
			128 * (32 + 32 + 1 + 1)},

		// Cascaded: 32-bit stage-1 last targets plus the tagged stage 2.
		{"cascaded default", DefaultCascadedConfig().CostBits(),
			128*32 + 256*(32+32+2+1)},

		// ITTAGE: 32-bit base table plus per tagged entry
		// 32 target + tag + 2 conf + 2 useful + 1 valid, per history table.
		{"ittage default", DefaultITTAGEConfig().CostBits(),
			256*32 + 5*128*(32+9+2+2+1)},
		{"ittage 3 tables", ITTAGEConfig{BaseEntries: 128, TableEntries: 64, HistLens: []int{2, 8, 32}, TagBits: 7}.CostBits(),
			128*32 + 3*64*(32+7+2+2+1)},
	}
	for _, tt := range tests {
		if tt.bits != tt.want {
			t.Errorf("%s: CostBits = %d, want %d", tt.name, tt.bits, tt.want)
		}
	}
}

// TestInstanceCostBitsMatchesConfig proves the instances delegate to their
// configs, so pricing a geometry without instantiating it can never drift
// from what a built predictor reports.
func TestInstanceCostBitsMatchesConfig(t *testing.T) {
	tl := TaglessConfig{Entries: 256, Scheme: SchemeGshare}
	if NewTagless(tl).CostBits() != tl.CostBits() {
		t.Error("tagless instance CostBits != config CostBits")
	}
	tg := TaggedConfig{Entries: 256, Ways: 4, Scheme: SchemeHistoryXor, HistBits: 9, TagBits: 12}
	if NewTagged(tg).CostBits() != tg.CostBits() {
		t.Error("tagged instance CostBits != config CostBits")
	}
	ca := DefaultCascadedConfig()
	if NewCascaded(ca).CostBits() != ca.CostBits() {
		t.Error("cascaded instance CostBits != config CostBits")
	}
	it := DefaultITTAGEConfig()
	if NewITTAGE(it).CostBits() != it.CostBits() {
		t.Error("ittage instance CostBits != config CostBits")
	}
}
