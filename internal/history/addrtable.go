package history

// addrTable is a power-of-two open-addressing hash table from instruction
// address to history register, replacing the built-in map on the per-address
// path history's hot path. The per-address scheme does exactly three
// operations — point get, point put, clear — so linear probing with
// Fibonacci hashing beats the general-purpose map: no hashing interface, no
// bucket overflow chains, and the whole table is two flat slices.
//
// A zero key marks an empty slot; the (never observed in practice) pc==0
// register is carried in a dedicated pair so no sentinel bias exists.
type addrTable struct {
	keys []uint64
	vals []uint64
	n    int // live entries, excluding the zero-key slot

	zeroVal uint64
	hasZero bool
}

// addrTableMinSize is the initial capacity; a power of two.
const addrTableMinSize = 64

func newAddrTable() *addrTable {
	return &addrTable{
		keys: make([]uint64, addrTableMinSize),
		vals: make([]uint64, addrTableMinSize),
	}
}

// slot returns the probe start for key: Fibonacci hashing spreads the
// word-aligned, clustered instruction addresses across the table.
func (t *addrTable) slot(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15) >> 32 & uint64(len(t.keys)-1))
}

// get returns the history for key, or zero when absent (matching the map's
// zero-value read).
func (t *addrTable) get(key uint64) uint64 {
	if key == 0 {
		return t.zeroVal
	}
	mask := len(t.keys) - 1
	for i := t.slot(key); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i]
		}
		if k == 0 {
			return 0
		}
	}
}

// put stores the history for key, growing at 3/4 load so probe chains stay
// short.
func (t *addrTable) put(key, val uint64) {
	if key == 0 {
		t.zeroVal, t.hasZero = val, true
		return
	}
	mask := len(t.keys) - 1
	for i := t.slot(key); ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			t.vals[i] = val
			return
		}
		if k == 0 {
			t.keys[i] = key
			t.vals[i] = val
			t.n++
			if t.n >= len(t.keys)*3/4 {
				t.grow()
			}
			return
		}
	}
}

func (t *addrTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, len(oldKeys)*2)
	t.vals = make([]uint64, len(oldKeys)*2)
	mask := len(t.keys) - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := t.slot(k)
		for t.keys[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}

// reset clears the table, keeping the current capacity.
func (t *addrTable) reset() {
	clear(t.keys)
	clear(t.vals)
	t.n = 0
	t.zeroVal, t.hasZero = 0, false
}

// len returns the number of stored registers.
func (t *addrTable) len() int {
	n := t.n
	if t.hasZero {
		n++
	}
	return n
}
