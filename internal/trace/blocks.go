package trace

// Decode-once batched replay: the experiment suite replays one memoized
// capture through dozens of simulation cells, and profiling shows the
// per-cell varint decode in Cursor.Next dominating the suite's wall clock.
// Blocks decodes a Replay's buffer exactly once into immutable
// structure-of-arrays batches that every cell then iterates with plain
// slice loads — no varint work, no per-record branch on field presence,
// and a one-byte class/op/taken summary that lets kernels skip non-branch
// records without materializing a Record at all.
//
// The batch layout is parallel slices of BlockLen records each: pc, target
// and effective address as uint64 slices, the register operands as byte
// slices, and a packed Meta byte per record (class, op class, taken bit).
// Blocks are immutable once built; any number of goroutines may iterate
// them concurrently, matching the Cursor guarantee.

// BlockLen is the record capacity of one Block. Each block's column data
// spans ~112KB, large enough to amortise loop setup and small enough to
// stay cache-friendly.
const BlockLen = 4096

// Meta byte layout: bits 0-3 the Class, bits 4-6 the OpClass, bit 7 the
// taken flag. Together with the value columns this reconstructs the full
// Record (the v2 flag bits are derivable: a zero Target/Addr/register
// column entry means the field was absent).
const (
	MetaClassMask = 0x0f
	MetaOpShift   = 4
	MetaOpMask    = 0x07
	MetaTaken     = 0x80
)

// Block is one structure-of-arrays batch of decoded records. All slices
// share the same length. The slices are exported so hot simulation kernels
// can index the columns directly; they are shared and must be treated as
// read-only.
type Block struct {
	PC     []uint64
	Target []uint64
	Addr   []uint64
	Meta   []uint8
	Dst    []uint8
	Src1   []uint8
	Src2   []uint8
}

// Len returns the number of records in the block.
func (b *Block) Len() int { return len(b.Meta) }

// Class returns record i's control-flow class.
func (b *Block) Class(i int) Class { return Class(b.Meta[i] & MetaClassMask) }

// Op returns record i's functional-unit class.
func (b *Block) Op(i int) OpClass { return OpClass(b.Meta[i] >> MetaOpShift & MetaOpMask) }

// Taken reports whether record i redirected the instruction stream.
func (b *Block) Taken(i int) bool { return b.Meta[i]&MetaTaken != 0 }

// Record materializes record i into *r.
func (b *Block) Record(i int, r *Record) {
	m := b.Meta[i]
	*r = Record{
		PC:     b.PC[i],
		Target: b.Target[i],
		Addr:   b.Addr[i],
		Class:  Class(m & MetaClassMask),
		Op:     OpClass(m >> MetaOpShift & MetaOpMask),
		Taken:  m&MetaTaken != 0,
		Dst:    b.Dst[i],
		Src1:   b.Src1[i],
		Src2:   b.Src2[i],
	}
}

// BlockSource is a randomly addressable decoded capture: the abstraction
// the batched simulation kernels iterate. Implementations are an in-memory
// Blocks (or the Replay wrapping one) and the out-of-core Store, which
// decodes block groups lazily from a file. All implementations obey the
// same layout invariant: block i covers records [i*BlockLen, i*BlockLen +
// BlockAt(i).Len()), i.e. every block except the last holds exactly
// BlockLen records — kernels rely on this to seek to a record index
// without scanning.
//
// Len is the record count the source claims to hold; CleanLen is the count
// BlockAt can actually deliver (smaller when the underlying bytes were
// damaged), and TailErr is the decode error a streaming cursor would
// report after yielding the clean prefix. File-backed sources may instead
// surface damage as a BlockAt error at the affected block. The kernel
// contract for a budget-limited run mirrors the streaming loop exactly:
// process min(budget, CleanLen) records, then report TailErr only when
// budget > CleanLen.
type BlockSource interface {
	Factory
	// Len returns the record count the source claims to hold.
	Len() int64
	// CleanLen returns the number of records deliverable through BlockAt.
	CleanLen() int64
	// NumBlocks returns the batch count covering the clean prefix.
	NumBlocks() int
	// BlockAt returns batch i, decoding it on demand for file-backed
	// sources. A non-nil error wraps ErrCorrupt and identifies the
	// damaged region; the returned block stays valid after later calls.
	BlockAt(i int) (*Block, error)
	// TailErr returns the decode error that truncated the capture, or nil.
	TailErr() error
}

// Blocks is a fully decoded capture: the batched form of a Replay. It is
// immutable after construction and safe for concurrent iteration.
type Blocks struct {
	blocks []Block
	n      int64
	// err records where decoding stopped short: the same ErrCorrupt error
	// a Cursor reports at that position. The decoded prefix is valid.
	err error
}

// Len returns the number of cleanly decoded records.
func (bs *Blocks) Len() int64 { return bs.n }

// CleanLen implements BlockSource; for an in-memory Blocks every record
// counted by Len is deliverable.
func (bs *Blocks) CleanLen() int64 { return bs.n }

// Err returns the decode error that truncated the capture, or nil when the
// whole buffer decoded cleanly.
func (bs *Blocks) Err() error { return bs.err }

// TailErr implements BlockSource; it is Err under the interface's name.
func (bs *Blocks) TailErr() error { return bs.err }

// NumBlocks returns the batch count.
func (bs *Blocks) NumBlocks() int { return len(bs.blocks) }

// Block returns batch i.
func (bs *Blocks) Block(i int) *Block { return &bs.blocks[i] }

// BlockAt implements BlockSource; in-memory batches never fail.
func (bs *Blocks) BlockAt(i int) (*Block, error) { return &bs.blocks[i], nil }

// Open implements Factory, returning a fresh BatchCursor over the decoded
// records.
func (bs *Blocks) Open() Source { return &BatchCursor{bs: bs} }

var (
	_ Factory     = (*Blocks)(nil)
	_ BlockSource = (*Blocks)(nil)
)

// columnArena hands out block columns carved from large slabs. Profiling
// the experiment suite shows per-block column allocation (7 fresh slices
// every 4096 records) dominating capture cost — mostly page-fault and
// allocator overhead on the many small makes. One slab covers
// arenaBlocks=64 blocks (6 MB of uint64 columns, 1 MB of byte columns),
// cutting the allocation count 64× while keeping each block's columns
// contiguous. Slices are carved with full-slice expressions so a block can
// never grow into its neighbour's storage.
type columnArena struct {
	u64 []uint64
	u8  []uint8
}

const arenaBlocks = 64

// alloc returns a zeroed Block with column capacity n.
func (a *columnArena) alloc(n int) Block {
	if len(a.u64) < 3*n || len(a.u8) < 4*n {
		a.u64 = make([]uint64, 3*BlockLen*arenaBlocks)
		a.u8 = make([]uint8, 4*BlockLen*arenaBlocks)
	}
	u64, u8 := a.u64, a.u8
	a.u64, a.u8 = u64[3*n:], u8[4*n:]
	return Block{
		PC:     u64[0*n : 1*n : 1*n],
		Target: u64[1*n : 2*n : 2*n],
		Addr:   u64[2*n : 3*n : 3*n],
		Meta:   u8[0*n : 1*n : 1*n],
		Dst:    u8[1*n : 2*n : 2*n],
		Src1:   u8[2*n : 3*n : 3*n],
		Src2:   u8[3*n : 4*n : 4*n],
	}
}

// decodeBlocks decodes every record in rep into batches. A decode failure
// stops the scan and is recorded verbatim, so iterating the result yields
// exactly the records (and then the error) a streaming Cursor yields.
//
// The loop is Cursor.Next inlined to write the column slices directly:
// same checks, same failure messages, same offsets — the differential and
// fuzz tests in blocks_test.go compare the two decoders record-for-record
// over damaged buffers to pin that equivalence. Writing columns in place
// (instead of materializing a Record and copying it) and taking a
// single-byte fast path on the varints roughly halves the one-time decode
// cost of a capture.
func decodeBlocks(rep *Replay) *Blocks {
	rep.ensureBuf()
	bs := &Blocks{}
	cur := Cursor{rep: rep}
	buf := rep.buf
	var arena columnArena
	var blk *Block
	filled := 0
	var prevPC, prevAddr uint64
	for {
		// ---- Cursor.Next, record header ----
		if cur.pos >= len(buf) {
			if cur.decoded != rep.n {
				cur.fail(cur.pos, "truncated replay (%d of %d records)", cur.decoded, rep.n)
			}
			break
		}
		if cur.decoded >= rep.n {
			cur.fail(cur.pos, "replay decodes past %d records", rep.n)
			break
		}
		start := cur.pos
		if cur.pos+2 > len(buf) {
			cur.fail(start, "truncated record header")
			break
		}
		flags, classOp := buf[cur.pos], buf[cur.pos+1]
		if flags&0xf0 != 0 {
			cur.fail(start, "invalid flags %#x", flags)
			break
		}
		if int(classOp&0xf) >= numClasses || int(classOp>>4) >= NumOpClasses {
			cur.fail(start, "invalid class byte %#x", classOp)
			break
		}
		cur.pos += 2

		// ---- field varints, with a one-byte fast path ----
		var pc, target, addr uint64
		var d uint64
		if cur.pos < len(buf) && buf[cur.pos] < 0x80 {
			d = uint64(buf[cur.pos])
			cur.pos++
		} else if v, ok := cur.uvarint(buf); ok {
			d = v
		} else {
			cur.fail(cur.pos, "invalid pc varint")
			break
		}
		pc = prevPC + uint64(unzig(d))
		prevPC = pc
		if flags&2 != 0 {
			if cur.pos < len(buf) && buf[cur.pos] < 0x80 {
				d = uint64(buf[cur.pos])
				cur.pos++
			} else if v, ok := cur.uvarint(buf); ok {
				d = v
			} else {
				cur.fail(cur.pos, "invalid target varint")
				break
			}
			target = pc + uint64(unzig(d))
		}
		if flags&4 != 0 {
			if cur.pos < len(buf) && buf[cur.pos] < 0x80 {
				d = uint64(buf[cur.pos])
				cur.pos++
			} else if v, ok := cur.uvarint(buf); ok {
				d = v
			} else {
				cur.fail(cur.pos, "invalid addr varint")
				break
			}
			addr = prevAddr + uint64(unzig(d))
			prevAddr = addr
		}

		// ---- column writes ----
		if blk == nil || filled == len(blk.Meta) {
			// A fresh block sized to what remains of the claimed record
			// count (>= 1: the decodes-past-n check above guarantees it).
			// Full-length, zeroed columns: absent fields (target, addr,
			// registers) keep the zero the codec implies, store-free.
			capHint := BlockLen
			if rem := rep.n - bs.n; rem < int64(capHint) {
				capHint = int(rem)
			}
			bs.blocks = append(bs.blocks, arena.alloc(capHint))
			blk = &bs.blocks[len(bs.blocks)-1]
			filled = 0
		}
		if flags&8 != 0 {
			if cur.pos+3 > len(buf) {
				cur.fail(cur.pos, "truncated register bytes")
				break
			}
			blk.Dst[filled] = buf[cur.pos]
			blk.Src1[filled] = buf[cur.pos+1]
			blk.Src2[filled] = buf[cur.pos+2]
			cur.pos += 3
		}
		blk.PC[filled] = pc
		blk.Target[filled] = target
		blk.Addr[filled] = addr
		// classOp already packs class (bits 0-3) and op (bits 4-6) in the
		// Meta layout; only the taken bit is added.
		mb := classOp
		if flags&1 != 0 {
			mb |= MetaTaken
		}
		blk.Meta[filled] = mb
		filled++
		bs.n++
		cur.decoded++
	}
	if blk != nil {
		blk.truncate(filled)
	}
	if len(bs.blocks) > 0 && bs.blocks[len(bs.blocks)-1].Len() == 0 {
		bs.blocks = bs.blocks[:len(bs.blocks)-1]
	}
	bs.err = cur.Err()
	return bs
}

// blockBuilder accumulates records into batches during capture. A fresh
// capture has every Record in hand as it is encoded, so building the
// batched form inline costs one column store per field instead of the
// full varint decode pass decodeBlocks would spend recovering the same
// values from the buffer just written. The result is indistinguishable
// from decodeBlocks on the finished buffer (the capture-vs-decode
// differential test in blocks_test.go pins this): the codec round-trips
// every field exactly, and absent fields encode as zero both ways.
type blockBuilder struct {
	bs     Blocks
	filled int
	arena  columnArena
}

// add appends one record.
func (b *blockBuilder) add(r *Record) {
	if b.filled == BlockLen || len(b.bs.blocks) == 0 {
		b.bs.blocks = append(b.bs.blocks, b.arena.alloc(BlockLen))
		b.filled = 0
	}
	blk := &b.bs.blocks[len(b.bs.blocks)-1]
	i := b.filled
	blk.PC[i] = r.PC
	blk.Target[i] = r.Target
	blk.Addr[i] = r.Addr
	blk.Dst[i] = r.Dst
	blk.Src1[i] = r.Src1
	blk.Src2[i] = r.Src2
	mb := uint8(r.Class) | uint8(r.Op)<<MetaOpShift
	if r.Taken {
		mb |= MetaTaken
	}
	blk.Meta[i] = mb
	b.filled++
	b.bs.n++
}

// finish seals the builder into an immutable Blocks.
func (b *blockBuilder) finish() *Blocks {
	if n := len(b.bs.blocks); n > 0 {
		b.bs.blocks[n-1].truncate(b.filled)
	}
	out := b.bs
	b.bs = Blocks{}
	return &out
}

// ByteSize returns the resident size of the decoded columns in bytes
// (3 uint64 and 4 byte columns per record), the figure memory accounting
// wants for an in-memory capture.
func (bs *Blocks) ByteSize() int64 { return bs.n * (3*8 + 4) }

// truncate seals a block's columns at its decoded length.
func (b *Block) truncate(n int) {
	b.PC = b.PC[:n]
	b.Target = b.Target[:n]
	b.Addr = b.Addr[:n]
	b.Meta = b.Meta[:n]
	b.Dst = b.Dst[:n]
	b.Src1 = b.Src1[:n]
	b.Src2 = b.Src2[:n]
}

// Blocks returns the capture decoded into batches, decoding on first call
// and returning the cached result afterwards. Every caller (and every
// simulation cell sharing this Replay through the workload memo) sees the
// same immutable Blocks, so the buffer is varint-decoded exactly once per
// capture for the life of the process.
func (rep *Replay) Blocks() *Blocks {
	rep.blocksOnce.Do(func() { rep.blocks = decodeBlocks(rep) })
	return rep.blocks
}

// BatchCursor is an allocation-free Source over a decoded Blocks. Like
// Cursor it yields the capture's records in order and surfaces the decode
// error (if the underlying buffer was damaged) only after the cleanly
// decoded prefix has been consumed, so the two cursors are stream-for-
// stream interchangeable. Distinct cursors may run concurrently.
type BatchCursor struct {
	bs  *Blocks
	bi  int
	i   int
	err error
}

// NewBatchCursor returns a cursor positioned at the first record.
func NewBatchCursor(bs *Blocks) *BatchCursor { return &BatchCursor{bs: bs} }

// Reset rewinds the cursor to the start and clears any reported error.
func (c *BatchCursor) Reset() { *c = BatchCursor{bs: c.bs} }

// Err returns the decode error encountered, or nil on clean end.
func (c *BatchCursor) Err() error { return c.err }

var _ ErrSource = (*BatchCursor)(nil)

// Next implements Source.
func (c *BatchCursor) Next(r *Record) bool {
	if c.err != nil {
		return false
	}
	bs := c.bs
	for c.bi < len(bs.blocks) {
		blk := &bs.blocks[c.bi]
		if c.i < len(blk.Meta) {
			blk.Record(c.i, r)
			c.i++
			return true
		}
		c.bi++
		c.i = 0
	}
	c.err = bs.err
	return false
}
