package isa

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Assemble parses the toy ISA's textual assembly into a Program. The
// syntax (full example in testdata and the examples tree):
//
//	; comments run to end of line
//	.name demo          ; program name
//	.base 0x1000        ; code base address
//
//	.data               ; data directives (word addresses assigned in order)
//	tbl:   .words 4             ; reserve 4 zero words
//	vals:  .word 7, 9, -1       ; initialised words
//	jtab:  .word &h0, &h1       ; code-label addresses (jump table)
//	rnd:   .rand 256 0xbeef     ; 256 seeded pseudo-random words
//
//	.text               ; instructions
//	start: li   r1, vals        ; load immediate (number or data label)
//	       ld   r2, 8(r1)       ; load word
//	       st   r2, 0(r1)       ; store word
//	       add  r3, r1, r2      ; ALU: add sub and or xor mul div sll srl
//	       addi r3, r1, 4       ;   immediate forms: <op>i
//	       beq  r1, r2, start   ; branches: beq bne blt bge
//	       j    start           ; direct jump / call / ret
//	       call fn
//	       jr   r5              ; indirect jump (register)
//	       jr   r5, r3          ;   with a selector register for the trace
//	       callr r5             ; indirect call (optionally with selector)
//	       nop
//	       halt
//
// The entry point is the label `start` if defined, else the first
// instruction.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		name:     "asm",
		base:     0x1000,
		dataSyms: map[string]int64{},
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	return a.finish()
}

type dataFixup struct {
	wordIndex int
	label     string
	line      int
}

type assembler struct {
	name     string
	base     uint64
	b        *Builder
	data     []int64
	dataSyms map[string]int64
	dataFix  []dataFixup
	inData   bool
	sawText  bool
	hasStart bool
}

func (a *assembler) parse(src string) error {
	// First pass collects directives that must precede the Builder
	// (.name/.base may appear anywhere before .text).
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		line := stripComment(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == ".name" && len(fields) == 2 {
			a.name = fields[1]
		}
		if fields[0] == ".base" && len(fields) == 2 {
			v, err := parseInt(fields[1])
			if err != nil || v < 0 || v%4 != 0 {
				return fmt.Errorf("line %d: bad .base %q", i+1, fields[1])
			}
			a.base = uint64(v)
		}
	}
	a.b = NewBuilder(a.name, a.base)

	for i, raw := range lines {
		if err := a.parseLine(stripComment(raw), i+1); err != nil {
			return err
		}
	}
	return nil
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

func (a *assembler) parseLine(line string, n int) error {
	if line == "" {
		return nil
	}
	// Leading label.
	if i := strings.IndexByte(line, ':'); i >= 0 && isIdent(line[:i]) {
		label := line[:i]
		if a.inData {
			if _, dup := a.dataSyms[label]; dup {
				return fmt.Errorf("line %d: duplicate data label %q", n, label)
			}
			a.dataSyms[label] = int64(len(a.data)) * 8
		} else {
			if label == "start" {
				a.hasStart = true
			}
			a.b.Label(label)
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch op {
	case ".name", ".base":
		return nil // handled in the pre-pass
	case ".data":
		a.inData = true
		return nil
	case ".text":
		a.inData = false
		a.sawText = true
		return nil
	}
	if a.inData {
		return a.parseData(op, rest, n)
	}
	return a.parseInstr(op, rest, n)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) parseData(op, rest string, n int) error {
	switch op {
	case ".word":
		for _, f := range splitArgs(rest) {
			if strings.HasPrefix(f, "&") {
				a.dataFix = append(a.dataFix, dataFixup{len(a.data), f[1:], n})
				a.data = append(a.data, 0)
				continue
			}
			if addr, ok := a.dataSyms[f]; ok {
				a.data = append(a.data, addr)
				continue
			}
			v, err := parseInt(f)
			if err != nil {
				return fmt.Errorf("line %d: bad word %q", n, f)
			}
			a.data = append(a.data, v)
		}
		return nil
	case ".words":
		v, err := parseInt(rest)
		if err != nil || v < 0 || v > 1<<24 {
			return fmt.Errorf("line %d: bad .words count %q", n, rest)
		}
		a.data = append(a.data, make([]int64, v)...)
		return nil
	case ".rand":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: .rand wants <count> <seed>", n)
		}
		count, err1 := parseInt(fields[0])
		seed, err2 := parseInt(fields[1])
		if err1 != nil || err2 != nil || count < 0 || count > 1<<24 {
			return fmt.Errorf("line %d: bad .rand arguments", n)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := int64(0); i < count; i++ {
			a.data = append(a.data, int64(rng.Uint64()>>1))
		}
		return nil
	default:
		return fmt.Errorf("line %d: unknown data directive %q", n, op)
	}
}

// aluOps maps mnemonics to ALU functions.
var aluOps = map[string]AluOp{
	"add": AluAdd, "sub": AluSub, "and": AluAnd, "or": AluOr,
	"xor": AluXor, "mul": AluMul, "div": AluDiv, "sll": AluSll, "srl": AluSrl,
}

// branchOps maps mnemonics to conditions.
var branchOps = map[string]Cond{
	"beq": CondEQ, "bne": CondNE, "blt": CondLT, "bge": CondGE,
}

func (a *assembler) parseInstr(op, rest string, n int) error {
	args := splitArgs(rest)
	bad := func() error {
		return fmt.Errorf("line %d: bad operands for %q: %q", n, op, rest)
	}
	if alu, ok := aluOps[op]; ok {
		if len(args) != 3 {
			return bad()
		}
		d, e1 := a.reg(args[0])
		s1, e2 := a.reg(args[1])
		s2, e3 := a.reg(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return bad()
		}
		a.b.ALU(alu, d, s1, s2)
		return nil
	}
	if strings.HasSuffix(op, "i") {
		if alu, ok := aluOps[strings.TrimSuffix(op, "i")]; ok {
			if len(args) != 3 {
				return bad()
			}
			d, e1 := a.reg(args[0])
			s1, e2 := a.reg(args[1])
			imm, e3 := a.imm(args[2])
			if e1 != nil || e2 != nil || e3 != nil {
				return bad()
			}
			a.b.ALUI(alu, d, s1, imm)
			return nil
		}
	}
	if cond, ok := branchOps[op]; ok {
		if len(args) != 3 {
			return bad()
		}
		s1, e1 := a.reg(args[0])
		s2, e2 := a.reg(args[1])
		if e1 != nil || e2 != nil || !isIdent(args[2]) {
			return bad()
		}
		a.b.Br(cond, s1, s2, args[2])
		return nil
	}
	switch op {
	case "nop":
		a.b.Nop()
	case "halt":
		a.b.Halt()
	case "ret":
		a.b.Ret()
	case "li":
		if len(args) != 2 {
			return bad()
		}
		d, e1 := a.reg(args[0])
		imm, e2 := a.imm(args[1])
		if e1 != nil || e2 != nil {
			return bad()
		}
		a.b.LoadImm(d, imm)
	case "ld", "st":
		if len(args) != 2 {
			return bad()
		}
		r1, e1 := a.reg(args[0])
		base, off, e2 := a.memOperand(args[1])
		if e1 != nil || e2 != nil {
			return bad()
		}
		if op == "ld" {
			a.b.Load(r1, base, off)
		} else {
			a.b.Store(base, off, r1)
		}
	case "j", "call":
		if len(args) != 1 || !isIdent(args[0]) {
			return bad()
		}
		if op == "j" {
			a.b.Jmp(args[0])
		} else {
			a.b.Call(args[0])
		}
	case "jr", "callr":
		if len(args) != 1 && len(args) != 2 {
			return bad()
		}
		r, err := a.reg(args[0])
		if err != nil {
			return bad()
		}
		var sel Reg
		hasSel := len(args) == 2
		if hasSel {
			sel, err = a.reg(args[1])
			if err != nil {
				return bad()
			}
		}
		switch {
		case op == "jr" && hasSel:
			a.b.JmpIndSel(r, sel)
		case op == "jr":
			a.b.JmpInd(r)
		case hasSel:
			a.b.CallIndSel(r, sel)
		default:
			a.b.CallInd(r)
		}
	default:
		return fmt.Errorf("line %d: unknown instruction %q", n, op)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) reg(s string) (Reg, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 || v >= NumRegs {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return Reg(v), nil
}

// imm parses an immediate: a number or a data label.
func (a *assembler) imm(s string) (int64, error) {
	if addr, ok := a.dataSyms[s]; ok {
		return addr, nil
	}
	v, err := parseInt(s)
	if err != nil {
		return 0, fmt.Errorf("isa: bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "off(rN)".
func (a *assembler) memOperand(s string) (Reg, int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("isa: bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := a.imm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := a.reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func (a *assembler) finish() (*Program, error) {
	if !a.sawText {
		return nil, fmt.Errorf("isa: %s: no .text section", a.name)
	}
	for _, w := range a.data {
		a.b.Word(w)
	}
	if a.hasStart {
		a.b.SetEntry("start")
	}
	prog, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	for _, f := range a.dataFix {
		addr, ok := a.b.AddrOfLabel(f.label)
		if !ok {
			return nil, fmt.Errorf("line %d: undefined code label &%s", f.line, f.label)
		}
		prog.Data[f.wordIndex] = int64(addr)
	}
	return prog, nil
}
