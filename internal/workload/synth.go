package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// The five remaining SPECint95 stand-ins (compress, go, ijpeg, m88ksim,
// vortex) are generated from a common parameterised template: an event loop
// over a long fixed script, where each event runs profile-sized background
// work, occasionally calls helpers, then dispatches through one of a small
// number of per-site jump tables. Each site's target sequence follows a
// mostly-deterministic successor chain (the signal history-based predictors
// learn) with per-profile noise at generation time and optional runtime
// jitter drawn from the advancing random table (a floor no predictor can
// learn). Profiles are tuned so static site counts, targets-per-site and
// baseline BTB misprediction land near the paper's Table 1 / Figures 1-8.

type synthSite struct {
	targets int
	weight  int
}

type synthProfile struct {
	name        string
	description string
	seed        int64
	sites       []synthSite
	// runProb is the probability an event repeats its site's previous
	// target — the consecutive-repeat structure that gives a BTB its hits.
	runProb float64
	// det is the probability a non-repeating event follows its site's
	// deterministic successor chain rather than being random.
	det float64
	// domProb, when positive, replaces the successor chain with a
	// dominant-target process: each non-repeating event picks target 0
	// with probability domProb and a random other target otherwise (the
	// mostly-monomorphic-with-excursions shape of compress and ijpeg that
	// motivates Calder & Grunwald's 2-bit update strategy).
	domProb float64
	// jitterMask enables runtime target perturbation when
	// rand & jitterMask == 0; negative disables it.
	jitterMask int64
	// workTrips is the fixed trip count of the per-event work loop. The
	// loop folds random *data*; its control flow is deterministic so it
	// contributes instructions, not history pollution.
	workTrips int64
	// noiseMask adds one data-dependent conditional branch per event,
	// taken when rand & noiseMask == 0; negative disables it.
	noiseMask int64
	// extraStraight adds straight-line ALU instructions per event.
	extraStraight int
	// callMask: events with index & callMask == 0 call a helper
	// (two helpers, chosen by another index bit, so call targets vary).
	callMask int64
	events   int
}

// synth register conventions.
const (
	sZ    = isa.Reg(31)
	sEB   = isa.Reg(1) // script base
	sEI   = isa.Reg(2) // event index
	sSite = isa.Reg(3) // current site id
	sTgt  = isa.Reg(4) // current target id
	sAcc  = isa.Reg(6)
	sT1   = isa.Reg(7)
	sRC   = isa.Reg(8)
	sRB   = isa.Reg(9)
	sT2   = isa.Reg(10)
	sT3   = isa.Reg(11)
	sT4   = isa.Reg(17)
	sNE   = isa.Reg(20) // event count
)

const synthRandWords = 4096

func synthEmitRand(b *isa.Builder, dst isa.Reg) {
	b.ALUI(isa.AluAdd, sRC, sRC, 1)
	b.ALUI(isa.AluAnd, sRC, sRC, synthRandWords-1)
	b.ALUI(isa.AluSll, sT1, sRC, 3)
	b.ALU(isa.AluAdd, sT1, sRB, sT1)
	b.Load(dst, sT1, 0)
}

// synthScript generates the event stream: (site, target) pairs.
func (p *synthProfile) synthScript(rng *rand.Rand) []int64 {
	totalWeight := 0
	for _, s := range p.sites {
		totalWeight += s.weight
	}
	// Per-site deterministic successor chains (random permutations).
	succ := make([][]int, len(p.sites))
	cur := make([]int, len(p.sites))
	for i, s := range p.sites {
		succ[i] = rng.Perm(s.targets)
	}
	script := make([]int64, 0, p.events*2)
	for e := 0; e < p.events; e++ {
		w := rng.Intn(totalWeight)
		site := 0
		for i, s := range p.sites {
			if w < s.weight {
				site = i
				break
			}
			w -= s.weight
		}
		nt := p.sites[site].targets
		switch r := rng.Float64(); {
		case r < p.runProb:
			// repeat the site's previous target
		case p.domProb > 0:
			if rng.Float64() < p.domProb || nt == 1 {
				cur[site] = 0
			} else {
				cur[site] = 1 + rng.Intn(nt-1)
			}
		case r < p.runProb+(1-p.runProb)*p.det:
			cur[site] = succ[site][cur[site]]
		default:
			cur[site] = rng.Intn(nt)
		}
		script = append(script, int64(site), int64(cur[site]))
	}
	return script
}

func (p *synthProfile) build() *isa.Program {
	rng := rand.New(rand.NewSource(p.seed))
	b := isa.NewBuilder(p.name, 0xc0000)

	script := p.synthScript(rng)
	scriptBase := b.Words(len(script))
	for i, w := range script {
		b.SetWord(scriptBase+int64(i)*8, w)
	}
	tabBase := make([]int64, len(p.sites))
	for i, s := range p.sites {
		tabBase[i] = b.Words(s.targets)
	}
	randBase := b.Words(synthRandWords)
	for i := 0; i < synthRandWords; i++ {
		b.SetWord(randBase+int64(i)*8, int64(rng.Uint64()>>1))
	}

	b.Label("init")
	b.LoadImm(sZ, 0)
	b.LoadImm(sEB, scriptBase)
	b.LoadImm(sRB, randBase)
	b.LoadImm(sRC, 0)
	b.LoadImm(sAcc, 1)
	b.LoadImm(sEI, 0)
	b.LoadImm(sNE, int64(p.events))

	b.Label("loop")
	b.Br(isa.CondGE, sEI, sNE, "done")
	b.ALUI(isa.AluSll, sT1, sEI, 4) // 2 words per event
	b.ALU(isa.AluAdd, sT1, sEB, sT1)
	b.Load(sSite, sT1, 0)
	b.Load(sTgt, sT1, 8)
	b.ALUI(isa.AluAdd, sEI, sEI, 1)

	// Data-dependent noise branch (unlearnable, biased).
	if p.noiseMask >= 0 {
		synthEmitRand(b, sT2)
		b.ALUI(isa.AluAnd, sT2, sT2, p.noiseMask)
		b.Br(isa.CondNE, sT2, sZ, "nonoise")
		b.ALUI(isa.AluAdd, sAcc, sAcc, 13)
		b.Label("nonoise")
	}

	// Background work loop (fixed trips, random data).
	b.LoadImm(sT2, p.workTrips)
	b.Label("work")
	synthEmitRand(b, sT4)
	b.ALU(isa.AluAdd, sAcc, sAcc, sT4)
	b.ALUI(isa.AluSub, sT2, sT2, 1)
	b.Br(isa.CondNE, sT2, sZ, "work")
	for i := 0; i < p.extraStraight; i++ {
		switch i % 3 {
		case 0:
			b.ALUI(isa.AluAdd, sAcc, sAcc, int64(i+1))
		case 1:
			b.ALUI(isa.AluSll, sT4, sAcc, 1)
		default:
			b.ALU(isa.AluXor, sAcc, sAcc, sT4)
		}
	}

	// Helper calls: two helpers picked by an event-index bit.
	if p.callMask >= 0 {
		b.ALUI(isa.AluAnd, sT2, sEI, p.callMask)
		b.Br(isa.CondNE, sT2, sZ, "nocall")
		b.ALUI(isa.AluAnd, sT2, sEI, p.callMask+1) // next bit up
		b.Br(isa.CondNE, sT2, sZ, "call2")
		b.Call("helper1")
		b.Jmp("nocall")
		b.Label("call2")
		b.Call("helper2")
		b.Label("nocall")
	}

	// Dispatch-value predicates, placed just before the dispatch so their
	// outcomes sit inside a short pattern-history window — the way real
	// code tests the value it is about to switch on.
	b.ALUI(isa.AluAnd, sT2, sTgt, 1)
	b.Br(isa.CondEQ, sT2, sZ, "sigA")
	b.ALUI(isa.AluAdd, sAcc, sAcc, 1)
	b.Label("sigA")
	b.ALUI(isa.AluAnd, sT2, sTgt, 2)
	b.Br(isa.CondEQ, sT2, sZ, "sigB")
	b.ALUI(isa.AluXor, sAcc, sAcc, 3)
	b.Label("sigB")
	b.ALUI(isa.AluAnd, sT2, sTgt, 4)
	b.Br(isa.CondEQ, sT2, sZ, "sigC")
	b.ALUI(isa.AluAdd, sAcc, sAcc, 5)
	b.Label("sigC")

	// Site dispatch if-chain, then the per-site indirect jump.
	for i := range p.sites {
		b.LoadImm(sT3, int64(i))
		b.Br(isa.CondEQ, sSite, sT3, fmt.Sprintf("site%d", i))
	}
	b.Jmp("cont") // unreachable guard

	for i, s := range p.sites {
		b.Label(fmt.Sprintf("site%d", i))
		if p.jitterMask >= 0 && s.targets > 1 {
			synthEmitRand(b, sT2)
			b.ALUI(isa.AluAnd, sT2, sT2, p.jitterMask)
			b.Br(isa.CondNE, sT2, sZ, fmt.Sprintf("nojit%d", i))
			b.ALUI(isa.AluAdd, sTgt, sTgt, 1)
			b.LoadImm(sT3, int64(s.targets))
			b.Br(isa.CondLT, sTgt, sT3, fmt.Sprintf("nojit%d", i))
			b.LoadImm(sTgt, 0)
			b.Label(fmt.Sprintf("nojit%d", i))
		}
		b.ALUI(isa.AluSll, sT1, sTgt, 3)
		b.ALUI(isa.AluAdd, sT1, sT1, tabBase[i])
		b.Load(sT3, sT1, 0)
		b.JmpIndSel(sT3, sTgt)
		for t := 0; t < s.targets; t++ {
			b.Label(fmt.Sprintf("t%d_%d", i, t))
			// Target blocks: distinct small work.
			b.ALUI(isa.AluAdd, sAcc, sAcc, int64(16*i+t+1))
			b.ALUI(isa.AluSrl, sT4, sAcc, int64(t%5+1))
			b.ALU(isa.AluXor, sAcc, sAcc, sT4)
			b.Jmp("cont")
		}
	}
	b.Label("cont")
	b.Jmp("loop")

	b.Label("done")
	b.Halt()

	// Helpers with internal branches and a return (RAS traffic).
	for h := 1; h <= 2; h++ {
		b.Label(fmt.Sprintf("helper%d", h))
		synthEmitRand(b, sT2)
		b.ALUI(isa.AluAnd, sT4, sT2, 1)
		b.Br(isa.CondEQ, sT4, sZ, fmt.Sprintf("h%d_a", h))
		b.ALU(isa.AluAdd, sAcc, sAcc, sT2)
		b.Label(fmt.Sprintf("h%d_a", h))
		b.ALUI(isa.AluMul, sT4, sAcc, int64(2*h+1))
		b.ALU(isa.AluXor, sAcc, sAcc, sT4)
		b.Ret()
	}

	prog := b.SetEntry("init").MustBuild()

	for i, s := range p.sites {
		for t := 0; t < s.targets; t++ {
			addr, ok := b.AddrOfLabel(fmt.Sprintf("t%d_%d", i, t))
			if !ok {
				panic("synth: missing target label")
			}
			prog.Data[(tabBase[i]+int64(t)*8)/8] = int64(addr)
		}
	}
	return prog
}

func registerSynth(p synthProfile) *Workload {
	return register(&Workload{
		Name:        p.name,
		Description: p.description,
		build:       p.build,
	})
}

var (
	compressWorkload = registerSynth(synthProfile{
		name:        "compress",
		description: "loop-dominated coder: rare, mostly monomorphic indirect jumps",
		seed:        0xc0,
		sites: []synthSite{
			{targets: 1, weight: 5}, {targets: 1, weight: 3},
			{targets: 2, weight: 2}, {targets: 3, weight: 1},
		},
		runProb: 0.1, domProb: 0.86, jitterMask: 63, noiseMask: 3,
		workTrips: 14, extraStraight: 24, callMask: 3,
		events: 4096,
	})

	goWorkload = registerSynth(synthProfile{
		name:        "go",
		description: "game-tree evaluator: several moderately polymorphic, weakly predictable jumps",
		seed:        0x60,
		sites: []synthSite{
			{targets: 4, weight: 3}, {targets: 6, weight: 2},
			{targets: 8, weight: 1}, {targets: 2, weight: 2},
			{targets: 1, weight: 1},
		},
		runProb: 0.45, det: 0.75, jitterMask: 15, noiseMask: 1,
		workTrips: 8, extraStraight: 12, callMask: 3,
		events: 4096,
	})

	ijpegWorkload = registerSynth(synthProfile{
		name:        "ijpeg",
		description: "image coder: heavy inner loops, few lightly polymorphic jumps",
		seed:        0x13e6,
		sites: []synthSite{
			{targets: 1, weight: 6}, {targets: 2, weight: 3},
			{targets: 4, weight: 1},
		},
		runProb: 0.2, domProb: 0.97, jitterMask: 255, noiseMask: 7,
		workTrips: 20, extraStraight: 30, callMask: 7,
		events: 4096,
	})

	m88ksimWorkload = registerSynth(synthProfile{
		name:        "m88ksim",
		description: "CPU simulator: one hot 16-target opcode dispatch over a looping simulated program",
		seed:        0x88,
		sites: []synthSite{
			{targets: 16, weight: 6}, {targets: 2, weight: 1},
			{targets: 3, weight: 1},
		},
		runProb: 0.35, det: 0.93, jitterMask: 127, noiseMask: 7,
		workTrips: 10, extraStraight: 16, callMask: 3,
		events: 4096,
	})

	vortexWorkload = registerSynth(synthProfile{
		name:        "vortex",
		description: "OO database: call-heavy, highly skewed (predictable) indirect jumps",
		seed:        0x70,
		sites: []synthSite{
			{targets: 2, weight: 4}, {targets: 3, weight: 2},
			{targets: 4, weight: 1}, {targets: 1, weight: 2},
		},
		runProb: 0.85, det: 0.97, jitterMask: 511, noiseMask: 3,
		workTrips: 10, extraStraight: 20, callMask: 1,
		events: 4096,
	})
)
